/**
 * @file
 * Persistence tests for the decoded-artifact file format: a saved
 * artifact loads back replay-identical, and every corruption mode --
 * wrong magic, version skew, truncation, flipped payload bytes, key
 * mismatch -- is rejected with a null return (never a crash), after
 * which the caller's rebuild path works.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "trace/artifact_file.hh"
#include "trace/decoded_trace.hh"
#include "workload/spec95.hh"

using namespace mbbp;

namespace
{

class ArtifactFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "mbbp_artifact_test.mbbpart";
        std::remove(path_.c_str());

        trace_ = specTrace("compress", 20000);
        geom_ = ICacheConfig::normal(4);
        dec_ = DecodedTrace::build(trace_, geom_);
        key_ = ArtifactKey::of("compress", 20000, geom_);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string readAll() const
    {
        std::ifstream in(path_, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }

    void writeAll(const std::string &bytes) const
    {
        std::ofstream out(path_, std::ios::binary |
                                     std::ios::trunc);
        out << bytes;
    }

    std::string path_;
    InMemoryTrace trace_;
    ICacheConfig geom_;
    DecodedTrace dec_;
    ArtifactKey key_;
};

/** Every column and derived accessor must match the built artifact. */
void
expectReplayIdentical(const DecodedTrace &a, const DecodedTrace &b)
{
    ASSERT_EQ(a.numBlocks(), b.numBlocks());
    ASSERT_EQ(a.insts().size(), b.insts().size());
    for (std::size_t i = 0; i < a.insts().size(); ++i)
        EXPECT_TRUE(a.insts()[i] == b.insts()[i]) << "inst " << i;
    for (std::size_t i = 0; i < a.numBlocks(); ++i) {
        EXPECT_EQ(a.startPc(i), b.startPc(i));
        EXPECT_EQ(a.nextPc(i), b.nextPc(i));
        EXPECT_EQ(a.condOutcomes(i), b.condOutcomes(i));
        EXPECT_EQ(a.numInsts(i), b.numInsts(i));
        EXPECT_EQ(a.numConds(i), b.numConds(i));
        EXPECT_EQ(a.numNotTakenConds(i), b.numNotTakenConds(i));
        EXPECT_EQ(a.numBranches(i), b.numBranches(i));
        EXPECT_EQ(a.numNearConds(i), b.numNearConds(i));
        EXPECT_EQ(a.rasOp(i), b.rasOp(i));
        ASSERT_EQ(a.windowLen(i), b.windowLen(i));
        for (unsigned k = 0; k < a.windowLen(i); ++k) {
            EXPECT_EQ(a.windowCodes(i, true)[k],
                      b.windowCodes(i, true)[k]);
            EXPECT_EQ(a.windowCodes(i, false)[k],
                      b.windowCodes(i, false)[k]);
        }
        FetchBlock fa = a.block(i);
        FetchBlock fb = b.block(i);
        EXPECT_EQ(fa.startPc, fb.startPc);
        EXPECT_EQ(fa.count, fb.count);
        EXPECT_EQ(fa.exitIdx, fb.exitIdx);
        EXPECT_EQ(fa.nextPc, fb.nextPc);
    }
    // The rehydrated static image answers identically.
    for (std::size_t i = 0; i < a.insts().size(); ++i) {
        StaticInfo ia = a.image().lookup(a.insts()[i].pc);
        StaticInfo ib = b.image().lookup(b.insts()[i].pc);
        EXPECT_EQ(ia.cls, ib.cls);
        EXPECT_EQ(ia.target, ib.target);
        EXPECT_EQ(ia.hasStaticTarget, ib.hasStaticTarget);
    }
}

TEST_F(ArtifactFileTest, RoundTripIsReplayIdentical)
{
    ASSERT_TRUE(saveDecodedArtifact(path_, key_, dec_));
    std::shared_ptr<const DecodedTrace> loaded =
        loadDecodedArtifact(path_, key_, geom_);
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(loaded->mapped());
    EXPECT_FALSE(dec_.mapped());
    expectReplayIdentical(dec_, *loaded);
}

TEST_F(ArtifactFileTest, MissingFileLoadsNull)
{
    EXPECT_EQ(loadDecodedArtifact(path_, key_, geom_), nullptr);
}

TEST_F(ArtifactFileTest, WrongMagicRejected)
{
    ASSERT_TRUE(saveDecodedArtifact(path_, key_, dec_));
    std::string bytes = readAll();
    bytes[0] ^= 0x5a;
    writeAll(bytes);
    EXPECT_EQ(loadDecodedArtifact(path_, key_, geom_), nullptr);
}

TEST_F(ArtifactFileTest, VersionSkewRejected)
{
    ASSERT_TRUE(saveDecodedArtifact(path_, key_, dec_));
    std::string bytes = readAll();
    bytes[8] = static_cast<char>(bytes[8] + 1);  // version field
    writeAll(bytes);
    EXPECT_EQ(loadDecodedArtifact(path_, key_, geom_), nullptr);
}

TEST_F(ArtifactFileTest, TruncationRejectedAtEveryPrefix)
{
    ASSERT_TRUE(saveDecodedArtifact(path_, key_, dec_));
    std::string bytes = readAll();
    // A sparse ladder of prefixes: empty, mid-header, mid-section
    // table, mid-payload, one-byte-short.
    for (std::size_t keep :
         { std::size_t{ 0 }, std::size_t{ 13 }, std::size_t{ 100 },
           bytes.size() / 2, bytes.size() - 1 }) {
        writeAll(bytes.substr(0, keep));
        EXPECT_EQ(loadDecodedArtifact(path_, key_, geom_), nullptr)
            << "prefix of " << keep << " bytes was accepted";
    }
}

TEST_F(ArtifactFileTest, PayloadCorruptionRejected)
{
    ASSERT_TRUE(saveDecodedArtifact(path_, key_, dec_));
    std::string bytes = readAll();
    bytes[bytes.size() / 2] ^= 0x01;
    writeAll(bytes);
    EXPECT_EQ(loadDecodedArtifact(path_, key_, geom_), nullptr);
}

TEST_F(ArtifactFileTest, GarbageFileRejected)
{
    writeAll(std::string(4096, '\x7f'));
    EXPECT_EQ(loadDecodedArtifact(path_, key_, geom_), nullptr);
}

TEST_F(ArtifactFileTest, KeyMismatchRejected)
{
    ASSERT_TRUE(saveDecodedArtifact(path_, key_, dec_));
    ArtifactKey other = key_;
    other.instructions = 999;
    EXPECT_EQ(loadDecodedArtifact(path_, other, geom_), nullptr);
}

TEST_F(ArtifactFileTest, RejectThenRebuildThenReload)
{
    // The service's recovery path: a corrupt file is rejected, the
    // artifact is rebuilt and re-saved over it, and the new file
    // loads.
    ASSERT_TRUE(saveDecodedArtifact(path_, key_, dec_));
    writeAll(std::string(100, 'j'));
    EXPECT_EQ(loadDecodedArtifact(path_, key_, geom_), nullptr);

    DecodedTrace rebuilt = DecodedTrace::build(trace_, geom_);
    ASSERT_TRUE(saveDecodedArtifact(path_, key_, rebuilt));
    std::shared_ptr<const DecodedTrace> loaded =
        loadDecodedArtifact(path_, key_, geom_);
    ASSERT_NE(loaded, nullptr);
    expectReplayIdentical(rebuilt, *loaded);
}

TEST(ArtifactStoreTest, StoreRoundTripAndCounters)
{
    std::string dir = ::testing::TempDir() + "mbbp_store_test";
    ArtifactStore store(dir);

    InMemoryTrace trace = specTrace("swim", 10000);
    ICacheConfig geom = ICacheConfig::extended(4);
    DecodedTrace dec = DecodedTrace::build(trace, geom);
    ArtifactKey key = ArtifactKey::of("swim", 10000, geom);

    EXPECT_EQ(store.load(key, geom), nullptr);      // miss
    store.save(key, dec);
    std::shared_ptr<const DecodedTrace> loaded =
        store.load(key, geom);                      // hit
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(loaded->mapped());
    EXPECT_EQ(loaded->numBlocks(), dec.numBlocks());

    std::remove(store.pathFor(key).c_str());
}

TEST(ArtifactKeyTest, FileNameEncodesIdentity)
{
    ICacheConfig geom = ICacheConfig::normal(4);
    ArtifactKey a = ArtifactKey::of("gcc", 400000, geom);
    ArtifactKey b = ArtifactKey::of("gcc", 400000, geom);
    EXPECT_EQ(a.fileName(), b.fileName());
    EXPECT_NE(a.fileName(),
              ArtifactKey::of("gcc", 400001, geom).fileName());
    EXPECT_NE(a.fileName(),
              ArtifactKey::of("li", 400000, geom).fileName());
    ICacheConfig wider = ICacheConfig::normal(8);
    EXPECT_NE(a.fileName(),
              ArtifactKey::of("gcc", 400000, wider).fileName());
}

} // namespace

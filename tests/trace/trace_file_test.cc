/** @file Round-trip and robustness tests for the binary trace format. */

#include "trace/trace_file.hh"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "mbbp_trace_test.bin";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

std::vector<DynInst>
mixedInsts()
{
    return {
        { 0x1000, InstClass::NonBranch, false, 0 },
        { 0x1001, InstClass::CondBranch, false, 0x1010 },
        { 0x1002, InstClass::CondBranch, true, 0x1010 },
        { 0x1010, InstClass::Call, true, 0x2000 },
        { 0x2000, InstClass::Return, true, 0x1011 },
        { 0x1011, InstClass::IndirectJump, true, 0x3000 },
        { 0xffffffffffull, InstClass::Jump, true, 0x1000 },
    };
}

TEST_F(TraceFileTest, RoundTripPreservesEverything)
{
    InMemoryTrace original(mixedInsts());
    {
        TraceFileWriter w(path_);
        w.writeAll(original);
        EXPECT_EQ(w.recordsWritten(), original.size());
    }

    TraceFileReader r(path_);
    InMemoryTrace read = captureTrace(r);
    ASSERT_EQ(read.size(), original.size());
    for (std::size_t i = 0; i < read.size(); ++i)
        EXPECT_EQ(read.at(i), original.at(i)) << "record " << i;
}

TEST_F(TraceFileTest, NotTakenConditionalKeepsStaticTarget)
{
    // The format stores targets for every control instruction so the
    // recovery paths can be modeled from a re-read trace.
    InMemoryTrace original;
    original.append({ 0x1, InstClass::CondBranch, false, 0x99 });
    {
        TraceFileWriter w(path_);
        w.writeAll(original);
    }
    TraceFileReader r(path_);
    DynInst inst;
    ASSERT_TRUE(r.next(inst));
    EXPECT_EQ(inst.target, 0x99u);
    EXPECT_FALSE(inst.taken);
}

TEST_F(TraceFileTest, ReaderResetReplays)
{
    {
        TraceFileWriter w(path_);
        for (const auto &i : mixedInsts())
            w.write(i);
    }
    TraceFileReader r(path_);
    InMemoryTrace first = captureTrace(r);
    r.reset();
    InMemoryTrace second = captureTrace(r);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first.at(i), second.at(i));
}

TEST_F(TraceFileTest, EmptyTraceRoundTrips)
{
    {
        TraceFileWriter w(path_);
    }
    TraceFileReader r(path_);
    DynInst inst;
    EXPECT_FALSE(r.next(inst));
}

TEST_F(TraceFileTest, BadMagicIsFatal)
{
    {
        std::ofstream out(path_, std::ios::binary);
        out << "NOTATRACEFILE???";
    }
    EXPECT_DEATH({ TraceFileReader r(path_); }, "magic");
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_DEATH({ TraceFileReader r("/nonexistent/file.bin"); },
                 "cannot open");
}

TEST_F(TraceFileTest, TruncatedRecordIsFatal)
{
    {
        TraceFileWriter w(path_);
        w.write({ 0x1, InstClass::Jump, true, 0x2 });
    }
    // Chop the file mid-record.
    std::ifstream in(path_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 4));
    out.close();

    EXPECT_DEATH(
        {
            TraceFileReader r(path_);
            DynInst inst;
            while (r.next(inst)) {
            }
        },
        "truncated");
}

} // namespace
} // namespace mbbp

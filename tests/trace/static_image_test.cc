/** @file Unit tests for the static program image. */

#include "trace/static_image.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(StaticImage, UnknownPcIsNonBranch)
{
    StaticImage img;
    StaticInfo info = img.lookup(0x1234);
    EXPECT_EQ(info.cls, InstClass::NonBranch);
    EXPECT_FALSE(info.hasStaticTarget);
}

TEST(StaticImage, DirectBranchKeepsStaticTarget)
{
    StaticImage img;
    img.add({ 0x10, InstClass::CondBranch, false, 0x99 });
    StaticInfo info = img.lookup(0x10);
    EXPECT_EQ(info.cls, InstClass::CondBranch);
    EXPECT_TRUE(info.hasStaticTarget);
    EXPECT_EQ(info.target, 0x99u);
}

TEST(StaticImage, IndirectTargetIsNotStatic)
{
    StaticImage img;
    img.add({ 0x10, InstClass::IndirectJump, true, 0x99 });
    StaticInfo info = img.lookup(0x10);
    EXPECT_EQ(info.cls, InstClass::IndirectJump);
    EXPECT_FALSE(info.hasStaticTarget);
    EXPECT_EQ(info.target, 0x99u);  // last dynamic target remembered
}

TEST(StaticImage, FromTraceCoversAllPcs)
{
    InMemoryTrace t;
    t.append({ 0x1, InstClass::NonBranch, false, 0 });
    t.append({ 0x2, InstClass::Jump, true, 0x10 });
    t.append({ 0x10, InstClass::Return, true, 0x3 });
    StaticImage img = StaticImage::fromTrace(t);
    EXPECT_EQ(img.size(), 3u);
    EXPECT_EQ(img.lookup(0x2).cls, InstClass::Jump);
    EXPECT_EQ(img.lookup(0x10).cls, InstClass::Return);
}

TEST(StaticImage, RepeatedExecutionIsIdempotent)
{
    StaticImage img;
    img.add({ 0x10, InstClass::CondBranch, true, 0x50 });
    img.add({ 0x10, InstClass::CondBranch, false, 0x50 });
    EXPECT_EQ(img.size(), 1u);
    EXPECT_EQ(img.lookup(0x10).target, 0x50u);
}

} // namespace
} // namespace mbbp

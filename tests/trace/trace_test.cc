/** @file Unit tests for the trace abstraction. */

#include "trace/trace.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

std::vector<DynInst>
sampleInsts()
{
    return {
        { 0x10, InstClass::NonBranch, false, 0 },
        { 0x11, InstClass::CondBranch, true, 0x20 },
        { 0x20, InstClass::NonBranch, false, 0 },
        { 0x21, InstClass::Call, true, 0x40 },
        { 0x40, InstClass::IndirectJump, true, 0x50 },
        { 0x50, InstClass::Return, true, 0x22 },
        { 0x22, InstClass::CondBranch, false, 0x60 },
    };
}

TEST(InMemoryTrace, IteratesInOrder)
{
    InMemoryTrace t(sampleInsts());
    DynInst inst;
    std::size_t n = 0;
    while (t.next(inst)) {
        EXPECT_EQ(inst, t.at(n));
        ++n;
    }
    EXPECT_EQ(n, t.size());
}

TEST(InMemoryTrace, ResetReplays)
{
    InMemoryTrace t(sampleInsts());
    DynInst first, again;
    ASSERT_TRUE(t.next(first));
    t.reset();
    ASSERT_TRUE(t.next(again));
    EXPECT_EQ(first, again);
}

TEST(InMemoryTrace, AppendGrows)
{
    InMemoryTrace t;
    EXPECT_TRUE(t.empty());
    t.append({ 1, InstClass::NonBranch, false, 0 });
    EXPECT_EQ(t.size(), 1u);
}

TEST(InMemoryTrace, SummaryCounts)
{
    InMemoryTrace t(sampleInsts());
    auto s = t.summarize();
    EXPECT_EQ(s.instructions, 7u);
    EXPECT_EQ(s.condBranches, 2u);
    EXPECT_EQ(s.condTaken, 1u);
    EXPECT_EQ(s.calls, 1u);
    EXPECT_EQ(s.returns, 1u);
    EXPECT_EQ(s.indirect, 1u);
    EXPECT_EQ(s.controlTransfers, 4u);
    EXPECT_DOUBLE_EQ(s.condDensity(), 2.0 / 7.0);
    EXPECT_DOUBLE_EQ(s.takenRate(), 0.5);
}

TEST(InMemoryTrace, EmptySummaryIsZero)
{
    InMemoryTrace t;
    auto s = t.summarize();
    EXPECT_EQ(s.instructions, 0u);
    EXPECT_DOUBLE_EQ(s.condDensity(), 0.0);
    EXPECT_DOUBLE_EQ(s.takenRate(), 0.0);
}

TEST(CaptureTrace, RespectsLimit)
{
    InMemoryTrace src(sampleInsts());
    InMemoryTrace out = captureTrace(src, 3);
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(out.at(0), src.at(0));
}

TEST(CaptureTrace, ZeroLimitDrainsAll)
{
    InMemoryTrace src(sampleInsts());
    InMemoryTrace out = captureTrace(src, 0);
    EXPECT_EQ(out.size(), src.size());
}

} // namespace
} // namespace mbbp

/**
 * @file
 * Tests for the DecodedTrace replay artifact: the precomputed block
 * index, derived per-block facts, and BIT window codes must agree
 * exactly with the reference per-run decomposition (BlockStream +
 * FetchBlock helpers + trueWindowCodes), and the frozen StaticImage
 * must answer lookups identically to the hash-map path.
 */

#include "trace/decoded_trace.hh"

#include <gtest/gtest.h>

#include "fetch/engine_common.hh"
#include "fetch/exit_predict.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

/** The three Table 6 geometries for a given width. */
std::vector<ICacheConfig>
geometries()
{
    return { ICacheConfig::normal(8), ICacheConfig::extended(8),
             ICacheConfig::selfAligned(8), ICacheConfig::normal(16) };
}

class DecodedTraceTest : public ::testing::Test
{
  protected:
    DecodedTraceTest() : trace_(specTrace("gcc", 40000)) {}

    InMemoryTrace trace_;
};

TEST_F(DecodedTraceTest, BlockIndexMatchesBlockStream)
{
    for (const ICacheConfig &geom : geometries()) {
        DecodedTrace dec = DecodedTrace::build(trace_, geom);

        ICacheModel cache(geom);
        TraceCursor cursor(trace_);
        BlockStream stream(cursor, cache);
        OwnedBlock ref;
        std::size_t i = 0;
        while (stream.next(ref)) {
            ASSERT_LT(i, dec.numBlocks());
            const FetchBlock got = dec.block(i);
            EXPECT_EQ(got.startPc, ref.startPc);
            EXPECT_EQ(got.nextPc, ref.nextPc);
            EXPECT_EQ(got.exitIdx, ref.exitIdx);
            ASSERT_EQ(got.size(), ref.size());
            for (unsigned j = 0; j < got.size(); ++j) {
                EXPECT_EQ(got[j].pc, ref.insts[j].pc);
                EXPECT_EQ(got[j].cls, ref.insts[j].cls);
                EXPECT_EQ(got[j].taken, ref.insts[j].taken);
                EXPECT_EQ(got[j].target, ref.insts[j].target);
            }
            ++i;
        }
        EXPECT_EQ(i, dec.numBlocks());
        ASSERT_GT(i, 0u);
    }
}

TEST_F(DecodedTraceTest, DerivedFactsMatchBlockHelpers)
{
    const ICacheConfig geom = ICacheConfig::normal(8);
    DecodedTrace dec = DecodedTrace::build(trace_, geom);
    const unsigned line_size = geom.lineSize;

    for (std::size_t i = 0; i < dec.numBlocks(); ++i) {
        const FetchBlock blk = dec.block(i);
        EXPECT_EQ(dec.condOutcomes(i), blk.condOutcomes());
        EXPECT_EQ(dec.numConds(i), blk.numConds());
        EXPECT_EQ(dec.numNotTakenConds(i), blk.numNotTakenConds());
        EXPECT_EQ(dec.numInsts(i), blk.size());

        FetchStats ref, got;
        countBlockStats(ref, blk, line_size);
        got.instructions = dec.numInsts(i);
        got.blocksFetched = 1;
        got.branchesExecuted = dec.numBranches(i);
        got.condExecuted = dec.numConds(i);
        got.nearBlockConds = dec.numNearConds(i);
        EXPECT_EQ(got, ref);

        RasOp expect_op = RasOp::None;
        if (const DynInst *e = blk.exitInst()) {
            if (isCall(e->cls))
                expect_op = RasOp::Push;
            else if (isReturn(e->cls))
                expect_op = RasOp::Pop;
        }
        EXPECT_EQ(dec.rasOp(i), expect_op);
    }
}

TEST_F(DecodedTraceTest, WindowCodesMatchTrueWindowCodes)
{
    for (const ICacheConfig &geom : geometries()) {
        DecodedTrace dec = DecodedTrace::build(trace_, geom);
        ICacheModel cache(geom);
        const unsigned line_size = cache.lineSize();

        for (std::size_t i = 0; i < dec.numBlocks(); ++i) {
            const Addr start = dec.startPc(i);
            const unsigned cap = dec.windowLen(i);
            ASSERT_EQ(cap, cache.capacityAt(start));
            for (bool near_block : { false, true }) {
                BitVector ref = trueWindowCodes(
                    dec.image(), start, cap, line_size, near_block);
                const BitCode *got = dec.windowCodes(i, near_block);
                ASSERT_EQ(ref.size(), cap);
                for (unsigned j = 0; j < cap; ++j)
                    EXPECT_EQ(got[j], ref[j])
                        << "block " << i << " slot " << j
                        << " near=" << near_block;
            }
        }
    }
}

TEST_F(DecodedTraceTest, FrozenImageMatchesMapLookups)
{
    // The artifact's image is frozen (sorted flat array, branchless
    // lookup); an incrementally built image answers through the map.
    StaticImage reference;
    for (const auto &inst : trace_.insts())
        reference.add({ inst.pc, inst.cls, inst.taken, inst.target });
    ASSERT_FALSE(reference.frozen());

    DecodedTrace dec =
        DecodedTrace::build(trace_, ICacheConfig::normal(8));
    ASSERT_TRUE(dec.image().frozen());

    for (const auto &inst : trace_.insts()) {
        // Probe the PC itself and its neighbors (misses exercise the
        // not-found path of the branchless search).
        for (Addr pc : { inst.pc, inst.pc + 1, inst.pc - 1 }) {
            StaticInfo a = dec.image().lookup(pc);
            StaticInfo b = reference.lookup(pc);
            EXPECT_EQ(a.cls, b.cls);
            EXPECT_EQ(a.target, b.target);
        }
    }
    StaticInfo miss = dec.image().lookup(0);
    EXPECT_EQ(miss.cls, InstClass::NonBranch);
}

TEST_F(DecodedTraceTest, GeometryCompatibilityIgnoresBanks)
{
    ICacheConfig geom = ICacheConfig::normal(8);
    DecodedTrace dec = DecodedTrace::build(trace_, geom);

    ICacheConfig banks = geom;
    banks.numBanks = 2;
    EXPECT_TRUE(dec.geometryCompatible(banks));

    EXPECT_FALSE(dec.geometryCompatible(ICacheConfig::extended(8)));
    EXPECT_FALSE(dec.geometryCompatible(ICacheConfig::normal(16)));
}

TEST_F(DecodedTraceTest, ArtifactIsSelfContained)
{
    // The artifact must survive its source trace: views point into
    // the artifact's own instruction copy.
    DecodedTrace dec;
    {
        InMemoryTrace local = specTrace("compress", 20000);
        dec = DecodedTrace::build(local, ICacheConfig::normal(8));
    }
    ASSERT_GT(dec.numBlocks(), 0u);
    uint64_t insts = 0;
    for (std::size_t i = 0; i < dec.numBlocks(); ++i)
        insts += dec.block(i).size();
    EXPECT_LE(insts, dec.insts().size());
}

} // namespace
} // namespace mbbp

/**
 * @file
 * Calibration regression tests: each synthetic benchmark's
 * conditional-branch predictability must stay in its tuned band, so
 * workload edits cannot silently drift the suite out of the paper's
 * regime (SPECint ~91.5 %, SPECfp ~97.3 % at h = 10).
 */

#include <gtest/gtest.h>

#include "core/mbbp.hh"

namespace mbbp
{
namespace
{

struct Band
{
    const char *name;
    double lo;
    double hi;
};

class AccuracyBands : public ::testing::TestWithParam<Band>
{
};

TEST_P(AccuracyBands, BlockedAccuracyWithinBand)
{
    const Band &b = GetParam();
    InMemoryTrace t = specTrace(b.name, 120000);
    AccuracyResult r = blockedPhtAccuracy(t, 10,
                                          ICacheConfig::normal(8));
    EXPECT_GE(r.accuracy(), b.lo) << b.name;
    EXPECT_LE(r.accuracy(), b.hi) << b.name;
}

// Bands are deliberately generous (+-3% around the tuned value) --
// they catch structural regressions, not noise.
INSTANTIATE_TEST_SUITE_P(
    Suite, AccuracyBands,
    ::testing::Values(
        Band{ "go", 0.78, 0.88 },        // worst of the suite
        Band{ "m88ksim", 0.89, 0.96 },
        Band{ "gcc", 0.86, 0.94 },
        Band{ "compress", 0.89, 0.96 },
        Band{ "li", 0.90, 0.97 },
        Band{ "ijpeg", 0.92, 0.99 },
        Band{ "perl", 0.86, 0.95 },
        Band{ "vortex", 0.90, 0.97 },
        Band{ "tomcatv", 0.95, 1.00 },
        Band{ "swim", 0.95, 1.00 },
        Band{ "su2cor", 0.93, 1.00 },
        Band{ "hydro2d", 0.95, 1.00 },
        Band{ "mgrid", 0.95, 1.00 },
        Band{ "applu", 0.94, 1.00 },
        Band{ "turb3d", 0.90, 1.00 },
        Band{ "apsi", 0.94, 1.00 },
        Band{ "fpppp", 0.91, 1.00 },
        Band{ "wave5", 0.94, 1.00 }),
    [](const auto &info) { return std::string(info.param.name); });

TEST(Calibration, IntFpRegimeSplit)
{
    // Relative ordering the whole evaluation depends on: fp codes
    // are more predictable and fetch faster.
    AccuracyResult int_total, fp_total;
    for (const auto &name : specIntNames()) {
        InMemoryTrace t = specTrace(name, 60000);
        int_total.accumulate(
            blockedPhtAccuracy(t, 10, ICacheConfig::normal(8)));
    }
    for (const auto &name : specFpNames()) {
        InMemoryTrace t = specTrace(name, 60000);
        fp_total.accumulate(
            blockedPhtAccuracy(t, 10, ICacheConfig::normal(8)));
    }
    EXPECT_GT(fp_total.accuracy(), int_total.accuracy() + 0.02);
}

} // namespace
} // namespace mbbp

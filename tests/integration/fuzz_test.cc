/**
 * @file
 * Randomized-workload fuzzing: generate programs from randomized
 * profiles and assert that every engine preserves its invariants on
 * all of them. Catches segmentation/accounting bugs that curated
 * workloads miss.
 */

#include <gtest/gtest.h>

#include "core/mbbp.hh"
#include "workload/interpreter.hh"

namespace mbbp
{
namespace
{

/** Derive a pseudo-random but deterministic profile from a seed. */
WorkloadProfile
randomProfile(uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    WorkloadProfile p;
    p.name = "fuzz" + std::to_string(seed);
    p.seed = seed;
    p.numFunctions = static_cast<uint32_t>(rng.uniformRange(2, 80));
    p.minBlocksPerFn = 2;
    p.maxBlocksPerFn =
        static_cast<uint32_t>(rng.uniformRange(3, 40));
    p.mainBlocks = static_cast<uint32_t>(rng.uniformRange(4, 60));
    p.meanBody = 0.5 + 12.0 * rng.uniformReal();
    p.maxBody = static_cast<uint32_t>(rng.uniformRange(4, 48));
    p.wFallThrough = rng.uniformReal();
    p.wCond = 0.5 + 5.0 * rng.uniformReal();
    p.wJump = rng.uniformReal();
    p.wCall = rng.uniformReal() * 2.0;
    p.wReturn = rng.uniformReal() * 0.4;
    p.wIndirectJump = rng.uniformReal() * 0.5;
    p.wIndirectCall = rng.uniformReal() * 0.2;
    p.wLoop = rng.uniformReal() * 6.0;
    p.wBias = 0.2 + rng.uniformReal() * 3.0;
    p.wPattern = rng.uniformReal();
    p.wCorrelated = rng.uniformReal();
    p.minTrip = static_cast<uint32_t>(rng.uniformRange(1, 4));
    p.maxTrip =
        p.minTrip + static_cast<uint32_t>(rng.uniformRange(1, 150));
    p.loopBackSpan = static_cast<uint32_t>(rng.uniformRange(1, 8));
    p.minLoopBody = static_cast<uint32_t>(rng.uniformRange(0, 12));
    p.nestIterBudget =
        static_cast<uint64_t>(rng.uniformRange(64, 4000));
    p.biasLo = 0.55 + 0.35 * rng.uniformReal();
    p.biasHi = p.biasLo + (0.999 - p.biasLo) * rng.uniformReal();
    p.hardFrac = 0.4 * rng.uniformReal();
    p.corrDistMax =
        static_cast<uint8_t>(rng.uniformRange(1, 14));
    p.corrWidthMax = static_cast<uint8_t>(rng.uniformRange(1, 4));
    p.corrNoise = 0.1 * rng.uniformReal();
    p.indirectFanoutMax =
        static_cast<uint32_t>(rng.uniformRange(2, 10));
    p.mainCallBoost = 1.0 + 10.0 * rng.uniformReal();
    p.mainLoopScale = 0.1 + 0.9 * rng.uniformReal();
    return p;
}

class FuzzedWorkloads : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzedWorkloads, AllEnginesKeepInvariants)
{
    WorkloadProfile prof = randomProfile(GetParam());
    Program prog = generateProgram(prof);   // validates internally
    Interpreter interp(prog, prof.seed + 17);
    InMemoryTrace trace = captureTrace(interp, 30000);
    ASSERT_EQ(trace.size(), 30000u);

    for (unsigned blocks : { 1u, 2u, 3u }) {
        SimConfig cfg;
        cfg.numBlocks = blocks;
        FetchStats s = FetchSimulator(cfg).run(trace);
        ASSERT_GT(s.instructions, 0u);
        ASSERT_LE(s.instructions, trace.size());
        ASSERT_EQ(s.fetchCycles(), s.fetchRequests +
                                       s.totalPenaltyCycles() +
                                       s.icacheMissCycles);
        ASSERT_LE(s.blocksFetched, s.fetchRequests * blocks);
        ASSERT_LE(s.ipb(), 8.0 + 1e-9);
        ASSERT_LE(s.condDirectionWrong, s.condExecuted);
    }

    // The two-ahead comparator engine must also survive anything.
    FetchStats ta = TwoAheadEngine(FetchEngineConfig{}).run(trace);
    ASSERT_GT(ta.instructions, 0u);
    ASSERT_EQ(ta.fetchCycles(), ta.fetchRequests +
                                    ta.totalPenaltyCycles() +
                                    ta.icacheMissCycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedWorkloads,
                         ::testing::Range(uint64_t{ 1 },
                                          uint64_t{ 13 }));

} // namespace
} // namespace mbbp

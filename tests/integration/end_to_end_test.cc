/**
 * @file
 * Integration tests: the paper's qualitative claims, checked end to
 * end through the public API on the synthetic suite.
 */

#include <gtest/gtest.h>

#include "core/mbbp.hh"

namespace mbbp
{
namespace
{

class EndToEnd : public ::testing::Test
{
  protected:
    static TraceCache &
    traces()
    {
        static TraceCache cache(80000);
        return cache;
    }

    static FetchStats
    runOn(const SimConfig &cfg, const std::string &name)
    {
        return FetchSimulator(cfg).run(traces().get(name));
    }
};

TEST_F(EndToEnd, DualBlockBeatsSingleBlock)
{
    // The headline claim: two-block fetching raises the effective
    // fetch rate substantially (±40% int / ±70% fp in Table 6).
    for (const char *name : { "gcc", "li", "swim", "mgrid" }) {
        SimConfig one;
        one.numBlocks = 1;
        SimConfig two;
        two.numBlocks = 2;
        double ipc1 = runOn(one, name).ipcF();
        double ipc2 = runOn(two, name).ipcF();
        EXPECT_GT(ipc2, ipc1 * 1.15) << name;
    }
}

TEST_F(EndToEnd, SelfAlignedBeatsExtendedBeatsNormal)
{
    // Table 6's ordering, on suite aggregates.
    double ipb[3];
    int i = 0;
    for (ICacheConfig icache : { ICacheConfig::normal(8),
                                 ICacheConfig::extended(8),
                                 ICacheConfig::selfAligned(8) }) {
        SimConfig cfg;
        cfg.numBlocks = 1;
        cfg.engine.icache = icache;
        FetchStats total;
        for (const char *name : { "gcc", "go", "swim", "applu" })
            total.accumulate(runOn(cfg, name));
        ipb[i++] = total.ipb();
    }
    EXPECT_LT(ipb[0], ipb[1]);      // normal < extended
    EXPECT_LT(ipb[1], ipb[2]);      // extended < self-aligned
}

TEST_F(EndToEnd, FpFetchesFasterThanInt)
{
    SimConfig cfg = SimConfig::paperDefault();
    cfg.engine.icache = ICacheConfig::selfAligned(8);
    cfg.engine.numSelectTables = 8;
    FetchStats fp = runOn(cfg, "hydro2d");
    FetchStats in = runOn(cfg, "go");
    EXPECT_GT(fp.ipcF(), in.ipcF());
    EXPECT_LT(fp.bep(), in.bep());
}

TEST_F(EndToEnd, SelfAlignedDualBlockReachesPaperRates)
{
    // "the self-aligned cache achieves 10.9 IPC_f for the floating
    // point benchmarks... over 8 IPC_f for the entire SPEC95 suite."
    SimConfig cfg = SimConfig::paperDefault();
    cfg.engine.icache = ICacheConfig::selfAligned(8);
    cfg.engine.numSelectTables = 8;
    FetchStats fp_total, all_total;
    for (const auto &name : specAllNames()) {
        FetchStats s = runOn(cfg, name);
        all_total.accumulate(s);
        if (specProfile(name).isFloat)
            fp_total.accumulate(s);
    }
    EXPECT_GT(fp_total.ipcF(), 9.0);
    EXPECT_GT(all_total.ipcF(), 7.0);
}

TEST_F(EndToEnd, ConditionalMispredictionDominatesBep)
{
    // Figure 9: "The most significant BEP contribution is from
    // misprediction of conditional branches. Misselection is the
    // next most significant."
    SimConfig cfg = SimConfig::paperDefault();
    cfg.engine.icache = ICacheConfig::selfAligned(8);
    cfg.engine.numSelectTables = 8;
    FetchStats total;
    for (const auto &name : specIntNames())
        total.accumulate(runOn(cfg, name));
    double cond = total.bepOf(PenaltyKind::CondMispredict);
    for (PenaltyKind k : { PenaltyKind::ReturnMispredict,
                           PenaltyKind::Misselect,
                           PenaltyKind::MisfetchIndirect,
                           PenaltyKind::MisfetchImmediate,
                           PenaltyKind::GhrMispredict,
                           PenaltyKind::BankConflict })
        EXPECT_GT(cond, total.bepOf(k)) << penaltyKindName(k);
}

TEST_F(EndToEnd, NearBlockCoversMostConditionals)
{
    // Section 4.4: "About 70% of the conditional branches are
    // near-block targets."
    SimConfig cfg = SimConfig::paperDefault();
    FetchStats total;
    for (const auto &name : specIntNames())
        total.accumulate(runOn(cfg, name));
    EXPECT_GT(total.nearBlockFraction(), 0.5);
    EXPECT_LT(total.nearBlockFraction(), 0.95);
}

TEST_F(EndToEnd, BiggerTargetArraysReduceMisfetch)
{
    // Table 5's monotone trend.
    SimConfig small = SimConfig::paperDefault();
    small.engine.targetEntries = 64;
    SimConfig large = SimConfig::paperDefault();
    large.engine.targetEntries = 512;
    FetchStats s_small, s_large;
    for (const auto &name : specIntNames()) {
        s_small.accumulate(runOn(small, name));
        s_large.accumulate(runOn(large, name));
    }
    double mf_small =
        s_small.bepOf(PenaltyKind::MisfetchImmediate) +
        s_small.bepOf(PenaltyKind::MisfetchIndirect);
    double mf_large =
        s_large.bepOf(PenaltyKind::MisfetchImmediate) +
        s_large.bepOf(PenaltyKind::MisfetchIndirect);
    EXPECT_LT(mf_large, mf_small);
    EXPECT_GE(s_large.ipcF(), s_small.ipcF());
}

TEST_F(EndToEnd, TraceFileRoundTripGivesIdenticalResults)
{
    // The binary trace format is a faithful transport: running the
    // simulator on a re-read trace reproduces every metric.
    const InMemoryTrace &orig = traces().get("perl");
    std::string path = ::testing::TempDir() + "mbbp_e2e_trace.bin";
    {
        TraceFileWriter w(path);
        w.writeAll(orig);
    }
    TraceFileReader reader(path);
    InMemoryTrace reread = captureTrace(reader);
    std::remove(path.c_str());

    SimConfig cfg = SimConfig::paperDefault();
    FetchStats a = FetchSimulator(cfg).run(orig);
    FetchStats b = FetchSimulator(cfg).run(reread);
    EXPECT_EQ(a.fetchCycles(), b.fetchCycles());
    EXPECT_EQ(a.totalPenaltyCycles(), b.totalPenaltyCycles());
    EXPECT_EQ(a.instructions, b.instructions);
}

} // namespace
} // namespace mbbp

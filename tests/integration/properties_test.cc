/**
 * @file
 * Property-based sweeps: engine invariants that must hold for every
 * configuration x workload combination.
 */

#include <gtest/gtest.h>

#include "core/mbbp.hh"

namespace mbbp
{
namespace
{

struct SweepParam
{
    const char *label;
    const char *program;
    unsigned num_blocks;
    unsigned history_bits;
    unsigned num_sts;
    bool double_select;
    bool near_block;
    CacheType cache;
    TargetKind target;
    std::size_t target_entries;
    std::size_t bit_entries;
    std::size_t icache_lines = 0;
};

class EngineSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    static TraceCache &
    traces()
    {
        static TraceCache cache(40000);
        return cache;
    }
};

TEST_P(EngineSweep, InvariantsHold)
{
    const SweepParam &p = GetParam();
    SimConfig cfg;
    cfg.numBlocks = p.num_blocks;
    cfg.engine.historyBits = p.history_bits;
    cfg.engine.numSelectTables = p.num_sts;
    cfg.engine.doubleSelect = p.double_select;
    cfg.engine.nearBlock = p.near_block;
    cfg.engine.targetKind = p.target;
    cfg.engine.targetEntries = p.target_entries;
    cfg.engine.bitEntries = p.bit_entries;
    cfg.engine.icacheLines = p.icache_lines;
    switch (p.cache) {
      case CacheType::Normal:
        cfg.engine.icache = ICacheConfig::normal(8);
        break;
      case CacheType::Extended:
        cfg.engine.icache = ICacheConfig::extended(8);
        break;
      case CacheType::SelfAligned:
        cfg.engine.icache = ICacheConfig::selfAligned(8);
        break;
    }

    const InMemoryTrace &trace = traces().get(p.program);
    FetchStats s = FetchSimulator(cfg).run(trace);

    // Every instruction of every fetched block is accounted for.
    EXPECT_GT(s.instructions, 0u);
    EXPECT_LE(s.instructions, trace.size());
    EXPECT_GE(s.instructions, trace.size() - 64);   // tail drop only

    // Cycle accounting: penalties and i-cache stalls only ever add
    // to the request count.
    EXPECT_GE(s.fetchCycles(), s.fetchRequests);
    EXPECT_EQ(s.fetchCycles(), s.fetchRequests +
                                   s.totalPenaltyCycles() +
                                   s.icacheMissCycles);
    if (p.icache_lines == 0)
        EXPECT_EQ(s.icacheMissCycles, 0u);
    else
        EXPECT_GT(s.icacheAccesses, 0u);

    // A fetch request returns at most numBlocks blocks.
    EXPECT_LE(s.blocksFetched, s.fetchRequests * p.num_blocks);

    // Rates are bounded by the hardware's capability.
    EXPECT_LE(s.ipb(), 8.0 + 1e-9);
    EXPECT_LE(s.ipcF(), 8.0 * p.num_blocks + 1e-9);
    EXPECT_GT(s.ipcF(), 0.0);

    // Branch accounting is consistent.
    EXPECT_LE(s.condExecuted, s.branchesExecuted);
    EXPECT_LE(s.condDirectionWrong, s.condExecuted);
    EXPECT_LE(s.nearBlockConds, s.condExecuted);

    // Penalty-kind applicability (Table 3's n/a cells).
    auto events = [&](PenaltyKind k) {
        return s.penaltyEvents[static_cast<std::size_t>(k)];
    };
    if (p.num_blocks == 1) {
        EXPECT_EQ(events(PenaltyKind::Misselect), 0u);
        EXPECT_EQ(events(PenaltyKind::GhrMispredict), 0u);
        EXPECT_EQ(events(PenaltyKind::BankConflict), 0u);
    }
    if (p.double_select || p.bit_entries == 0)
        EXPECT_EQ(events(PenaltyKind::BitMispredict), 0u);

    // Determinism: a second run is bit-identical.
    FetchStats again = FetchSimulator(cfg).run(trace);
    EXPECT_EQ(again.fetchCycles(), s.fetchCycles());
    EXPECT_EQ(again.totalPenaltyCycles(), s.totalPenaltyCycles());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineSweep,
    ::testing::Values(
        SweepParam{ "single_normal", "gcc", 1, 10, 1, false, false,
                    CacheType::Normal, TargetKind::Nls, 256, 0 },
        SweepParam{ "single_extended", "go", 1, 10, 1, false, false,
                    CacheType::Extended, TargetKind::Nls, 256, 0 },
        SweepParam{ "single_aligned_near", "li", 1, 10, 1, false,
                    true, CacheType::SelfAligned, TargetKind::Nls,
                    256, 0 },
        SweepParam{ "single_finite_bit", "perl", 1, 10, 1, false,
                    false, CacheType::Normal, TargetKind::Nls, 256,
                    256 },
        SweepParam{ "single_btb", "vortex", 1, 10, 1, false, false,
                    CacheType::Normal, TargetKind::Btb, 32, 0 },
        SweepParam{ "dual_normal", "gcc", 2, 10, 1, false, false,
                    CacheType::Normal, TargetKind::Nls, 256, 0 },
        SweepParam{ "dual_aligned_8st", "compress", 2, 10, 8, false,
                    false, CacheType::SelfAligned, TargetKind::Nls,
                    256, 0 },
        SweepParam{ "dual_double_select", "li", 2, 10, 4, true,
                    false, CacheType::SelfAligned, TargetKind::Nls,
                    256, 0 },
        SweepParam{ "dual_btb_near", "ijpeg", 2, 11, 2, false, true,
                    CacheType::Normal, TargetKind::Btb, 64, 0 },
        SweepParam{ "dual_short_history", "swim", 2, 6, 1, false,
                    false, CacheType::Normal, TargetKind::Nls, 64,
                    0 },
        SweepParam{ "dual_long_history", "mgrid", 2, 12, 8, false,
                    false, CacheType::Extended, TargetKind::Nls, 512,
                    0 },
        SweepParam{ "dual_fp_double", "tomcatv", 2, 9, 8, true,
                    false, CacheType::Extended, TargetKind::Btb, 16,
                    0 },
        SweepParam{ "triple_aligned", "li", 3, 10, 8, false, false,
                    CacheType::SelfAligned, TargetKind::Nls, 256,
                    0 },
        SweepParam{ "quad_normal", "swim", 4, 10, 4, false, false,
                    CacheType::Normal, TargetKind::Nls, 256, 0 },
        SweepParam{ "triple_near_finite_bit", "gcc", 3, 10, 2, false,
                    true, CacheType::Normal, TargetKind::Nls, 128,
                    512 },
        SweepParam{ "dual_finite_icache", "perl", 2, 10, 1, false,
                    false, CacheType::Normal, TargetKind::Nls, 256,
                    0, 256 },
        SweepParam{ "single_finite_icache_aligned", "applu", 1, 10,
                    1, false, false, CacheType::SelfAligned,
                    TargetKind::Nls, 256, 0, 512 }),
    [](const auto &info) { return std::string(info.param.label); });

/** History-length sweep on one program: accuracy is monotone-ish. */
class HistorySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HistorySweep, AccuracyWithinBounds)
{
    unsigned h = GetParam();
    InMemoryTrace t = specTrace("li", 40000);
    AccuracyResult r = blockedPhtAccuracy(t, h,
                                          ICacheConfig::normal(8));
    EXPECT_GT(r.accuracy(), 0.75);
    EXPECT_LE(r.accuracy(), 1.0);
    EXPECT_GT(r.condBranches, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Lengths, HistorySweep,
                         ::testing::Values(6, 7, 8, 9, 10, 11, 12));

} // namespace
} // namespace mbbp

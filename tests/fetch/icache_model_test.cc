/** @file Unit tests for the i-cache organizations of Section 4.5. */

#include "fetch/icache_model.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(ICacheConfig, PaperConfigurations)
{
    // Table 6: normal 8/8, extended 16/8, self-aligned 8/16 banks.
    ICacheConfig n = ICacheConfig::normal(8);
    EXPECT_EQ(n.lineSize, 8u);
    EXPECT_EQ(n.numBanks, 8u);
    ICacheConfig e = ICacheConfig::extended(8);
    EXPECT_EQ(e.lineSize, 16u);
    EXPECT_EQ(e.numBanks, 8u);
    ICacheConfig a = ICacheConfig::selfAligned(8);
    EXPECT_EQ(a.lineSize, 8u);
    EXPECT_EQ(a.numBanks, 16u);
}

TEST(ICacheModel, NormalCapacityShrinksWithOffset)
{
    ICacheModel m(ICacheConfig::normal(8));
    EXPECT_EQ(m.capacityAt(0x40), 8u);
    EXPECT_EQ(m.capacityAt(0x41), 7u);
    EXPECT_EQ(m.capacityAt(0x47), 1u);
}

TEST(ICacheModel, ExtendedCapacityOnlyShrinksNearLineEnd)
{
    ICacheModel m(ICacheConfig::extended(8));
    EXPECT_EQ(m.capacityAt(0x40), 8u);
    EXPECT_EQ(m.capacityAt(0x47), 8u);
    EXPECT_EQ(m.capacityAt(0x48), 8u);
    EXPECT_EQ(m.capacityAt(0x49), 7u);
    EXPECT_EQ(m.capacityAt(0x4f), 1u);
}

TEST(ICacheModel, SelfAlignedAlwaysFullWidth)
{
    ICacheModel m(ICacheConfig::selfAligned(8));
    for (Addr pc = 0x40; pc < 0x50; ++pc)
        EXPECT_EQ(m.capacityAt(pc), 8u);
}

TEST(ICacheModel, LinesTouched)
{
    ICacheModel m(ICacheConfig::selfAligned(8));
    auto one = m.linesTouched(0x40, 8);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 0x40u / 8);

    auto two = m.linesTouched(0x44, 8);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], 8u);
    EXPECT_EQ(two[1], 9u);

    // Zero-length still touches the line of the start address.
    EXPECT_EQ(m.linesTouched(0x44, 0).size(), 1u);
}

TEST(ICacheModel, BankMapping)
{
    ICacheModel m(ICacheConfig::normal(8));   // 8 banks
    EXPECT_EQ(m.bankOf(0), 0u);
    EXPECT_EQ(m.bankOf(7), 7u);
    EXPECT_EQ(m.bankOf(8), 0u);
}

TEST(ICacheModel, BankConflictDetection)
{
    ICacheModel m(ICacheConfig::normal(8));
    // Lines 0 and 8 share bank 0: conflict.
    EXPECT_TRUE(m.bankConflict(0 * 8, 8, 8 * 8, 8));
    // Lines 0 and 1: different banks.
    EXPECT_FALSE(m.bankConflict(0 * 8, 8, 1 * 8, 8));
    // The same line twice is a single read, not a conflict.
    EXPECT_FALSE(m.bankConflict(0 * 8, 8, 0 * 8 + 3, 5));
}

TEST(ICacheModel, SelfAlignedConflictAcrossSpans)
{
    ICacheModel m(ICacheConfig::selfAligned(8));  // 16 banks
    // Block A touches lines 8,9; block B touches lines 24,25:
    // 8 % 16 == 24 % 16 -> conflict.
    EXPECT_TRUE(m.bankConflict(0x44, 8, 0xc4, 8));
    // Consecutive blocks rarely conflict with 16 banks.
    EXPECT_FALSE(m.bankConflict(0x44, 8, 0x4c, 8));
}

TEST(ICacheModelDeath, Validation)
{
    EXPECT_DEATH(ICacheModel m({ CacheType::Normal, 6, 8, 8 }),
                 "power");
    EXPECT_DEATH(ICacheModel m({ CacheType::Normal, 8, 4, 8 }),
                 "line");
}

} // namespace
} // namespace mbbp

/**
 * @file
 * Replay-equivalence tests: every engine must produce field-exact
 * FetchStats whether it decodes its own throwaway artifact from the
 * raw trace or replays a shared precomputed DecodedTrace -- across
 * the configuration corners that exercise different per-block state
 * (near-block encoding, finite BIT, delayed PHT training, double
 * selection, finite i-cache contents).
 */

#include <gtest/gtest.h>

#include <list>

#include "core/suite_runner.hh"
#include "fetch/dual_block_engine.hh"
#include "fetch/multi_block_engine.hh"
#include "fetch/single_block_engine.hh"
#include "fetch/two_ahead_engine.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

/** Configuration corners worth replaying. */
std::vector<FetchEngineConfig>
corners(bool allow_double_select)
{
    std::vector<FetchEngineConfig> cfgs;

    cfgs.emplace_back();                    // paper defaults

    FetchEngineConfig near;
    near.nearBlock = true;
    cfgs.push_back(near);

    FetchEngineConfig finite_bit;
    finite_bit.bitEntries = 64;
    cfgs.push_back(finite_bit);

    FetchEngineConfig delayed;
    delayed.delayedPhtUpdate = true;
    cfgs.push_back(delayed);

    FetchEngineConfig near_delayed;
    near_delayed.nearBlock = true;
    near_delayed.nearBlockStoredOffset = true;
    near_delayed.delayedPhtUpdate = true;
    cfgs.push_back(near_delayed);

    FetchEngineConfig finite_cache;
    finite_cache.icacheLines = 64;
    finite_cache.icacheAssoc = 2;
    finite_cache.icacheMissPenalty = 6;
    cfgs.push_back(finite_cache);

    FetchEngineConfig self_aligned;
    self_aligned.icache = ICacheConfig::selfAligned(8);
    cfgs.push_back(self_aligned);

    if (allow_double_select) {
        FetchEngineConfig dsel;
        dsel.doubleSelect = true;
        cfgs.push_back(dsel);

        FetchEngineConfig dsel_near;
        dsel_near.doubleSelect = true;
        dsel_near.nearBlock = true;
        cfgs.push_back(dsel_near);
    }
    return cfgs;
}

class DecodeEquivalenceTest : public ::testing::Test
{
  protected:
    DecodeEquivalenceTest() : trace_(specTrace("go", 30000)) {}

    /** One shared artifact per geometry, as the sweep runner keeps. */
    const DecodedTrace &shared(const ICacheConfig &geom)
    {
        for (auto &d : artifacts_)
            if (d.geometryCompatible(geom))
                return d;
        artifacts_.push_back(DecodedTrace::build(trace_, geom));
        return artifacts_.back();
    }

    InMemoryTrace trace_;
    std::list<DecodedTrace> artifacts_;
};

TEST_F(DecodeEquivalenceTest, SingleBlockEngine)
{
    for (const FetchEngineConfig &cfg : corners(false)) {
        SingleBlockEngine engine(cfg);
        FetchStats per_run = engine.run(trace_);
        FetchStats replay = engine.run(shared(cfg.icache));
        EXPECT_EQ(per_run, replay);
    }
}

TEST_F(DecodeEquivalenceTest, DualBlockEngine)
{
    for (const FetchEngineConfig &cfg : corners(true)) {
        DualBlockEngine engine(cfg);
        FetchStats per_run = engine.run(trace_);
        FetchStats replay = engine.run(shared(cfg.icache));
        EXPECT_EQ(per_run, replay);
    }
}

TEST_F(DecodeEquivalenceTest, MultiBlockEngine)
{
    for (unsigned n = 1; n <= 4; ++n) {
        for (const FetchEngineConfig &cfg : corners(false)) {
            MultiBlockEngine engine(cfg, n);
            FetchStats per_run = engine.run(trace_);
            FetchStats replay = engine.run(shared(cfg.icache));
            EXPECT_EQ(per_run, replay) << "n=" << n;
        }
    }
}

TEST_F(DecodeEquivalenceTest, TwoAheadEngine)
{
    for (const FetchEngineConfig &cfg : corners(false)) {
        TwoAheadEngine engine(cfg);
        FetchStats per_run = engine.run(trace_);
        FetchStats replay = engine.run(shared(cfg.icache));
        EXPECT_EQ(per_run, replay);
    }
}

TEST(DecodeEquivalenceSuite, TraceCacheMemoizesPerGeometry)
{
    TraceCache traces(20000);
    ICacheConfig geom = ICacheConfig::normal(8);
    std::shared_ptr<const DecodedTrace> a = traces.decoded("li", geom);

    // Same key -> the same artifact object, even across bank counts.
    ICacheConfig banked = geom;
    banked.numBanks = 2;
    EXPECT_EQ(a.get(), traces.decoded("li", banked).get());

    // Different geometry or trace -> a different artifact.
    EXPECT_NE(a.get(),
              traces.decoded("li", ICacheConfig::extended(8)).get());
    EXPECT_NE(a.get(), traces.decoded("perl", geom).get());

    // The artifact replays the cached trace.
    EXPECT_EQ(a->insts().size(), traces.get("li").insts().size());
}

TEST(DecodeEquivalenceSuite, RunSuiteSharedDecodeIsByteIdentical)
{
    TraceCache traces(20000);
    SimConfig cfg = SimConfig::paperDefault();
    const std::vector<std::string> names{ "gcc", "swim" };

    SuiteResult shared = runSuite(cfg, traces, names, true);
    SuiteResult per_run = runSuite(cfg, traces, names, false);

    ASSERT_EQ(shared.perProgram.size(), per_run.perProgram.size());
    for (const auto &[name, stats] : shared.perProgram)
        EXPECT_EQ(stats, per_run.perProgram.at(name)) << name;
    EXPECT_EQ(shared.allTotal, per_run.allTotal);
    EXPECT_EQ(shared.intTotal, per_run.intTotal);
    EXPECT_EQ(shared.fpTotal, per_run.fpTotal);
}

} // namespace
} // namespace mbbp

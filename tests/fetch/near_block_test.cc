/**
 * @file
 * Tests for the near-block machinery: the 3-bit encoding end to end
 * and the Section 3.1 stored-offset option for second-block near
 * targets.
 */

#include <gtest/gtest.h>

#include "fetch/dual_block_engine.hh"
#include "fetch/single_block_engine.hh"
#include "util/random.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

/**
 * A loop whose only control is a near (same-line-region) conditional:
 * with near-block encoding the target array is never consulted, so a
 * 1-entry array loses nothing.
 */
InMemoryTrace
nearLoop(unsigned reps)
{
    InMemoryTrace t;
    for (unsigned r = 0; r < reps; ++r) {
        for (unsigned i = 0; i < 5; ++i)
            t.append({ 0x1000 + i, InstClass::NonBranch, false, 0 });
        // Taken back to the same line's start: CondSameLine... the
        // target 0x1000 is in the previous... 0x1005 -> 0x1000 stays
        // in line 0x200 (same line).
        t.append({ 0x1005, InstClass::CondBranch, true, 0x1000 });
    }
    // Terminate with enough straight-line code to flush the last
    // block out of the stream.
    for (unsigned i = 0; i < 16; ++i)
        t.append({ 0x1000 + i, InstClass::NonBranch,
                   false, 0 });
    return t;
}

TEST(NearBlock, NearTargetsNeedNoTargetArray)
{
    InMemoryTrace t = nearLoop(200);
    FetchEngineConfig tiny;
    tiny.targetEntries = 1;     // useless target array
    tiny.nearBlock = true;
    SingleBlockEngine near_engine(tiny);
    FetchStats near_stats = near_engine.run(t);
    auto imm = static_cast<std::size_t>(
        PenaltyKind::MisfetchImmediate);
    EXPECT_EQ(near_stats.penaltyEvents[imm], 0u);

    // Without near-block encoding the same loop needs the array; a
    // 1-entry array aliased by nothing still works here, so starve
    // it with a second competing branch line instead: simply verify
    // near flagging counted the branches.
    EXPECT_GT(near_stats.nearBlockConds, 100u);
}

TEST(NearBlock, StoredOffsetModeMatchesComputedOnStableCode)
{
    // When every near target's offset is stable, the stored-offset
    // and compute-late options behave identically.
    InMemoryTrace t = specTrace("ijpeg", 50000);
    FetchEngineConfig computed;
    computed.nearBlock = true;
    FetchEngineConfig stored = computed;
    stored.nearBlockStoredOffset = true;

    FetchStats a = DualBlockEngine(computed).run(t);
    FetchStats b = DualBlockEngine(stored).run(t);
    // Stored offsets can only add misselects, never remove any.
    auto missel = static_cast<std::size_t>(PenaltyKind::Misselect);
    EXPECT_GE(b.penaltyEvents[missel], a.penaltyEvents[missel]);
    EXPECT_LE(b.ipcF(), a.ipcF() + 1e-9);
}

TEST(NearBlock, StoredOffsetNeverBeatsComputedOnTheSuite)
{
    // The stored log2(b) offset bits can only go stale (different
    // near branches aliasing one select-table context); late
    // computation is exact. Across the suite the stored-offset
    // option must never win.
    for (const char *name : { "gcc", "li", "perl" }) {
        InMemoryTrace t = specTrace(name, 40000);
        FetchEngineConfig computed;
        computed.nearBlock = true;
        FetchEngineConfig stored = computed;
        stored.nearBlockStoredOffset = true;
        FetchStats a = DualBlockEngine(computed).run(t);
        FetchStats b = DualBlockEngine(stored).run(t);
        EXPECT_GE(b.totalPenaltyCycles(), a.totalPenaltyCycles())
            << name;
    }
}

TEST(NearBlock, SingleEngineTracksBbrPeak)
{
    InMemoryTrace t = specTrace("li", 30000);
    SingleBlockEngine engine(FetchEngineConfig{});
    FetchStats s = engine.run(t);
    EXPECT_GT(s.bbrPeak, 0u);
    EXPECT_LE(s.bbrPeak, 5u * 8u);
}

} // namespace
} // namespace mbbp

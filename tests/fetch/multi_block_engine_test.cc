/** @file Behavioral tests for the N-block (Section 5) extension. */

#include "fetch/multi_block_engine.hh"

#include <gtest/gtest.h>

#include "fetch/dual_block_engine.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

InMemoryTrace
straightLine(unsigned count)
{
    InMemoryTrace t;
    for (unsigned i = 0; i < count; ++i)
        t.append({ 0x1000 + i, InstClass::NonBranch, false, 0 });
    return t;
}

TEST(MultiBlockEngine, StraightLineScalesWithGroupSize)
{
    InMemoryTrace t = straightLine(4000);
    for (unsigned n : { 1u, 2u, 3u, 4u }) {
        MultiBlockEngine engine(FetchEngineConfig{}, n);
        FetchStats s = engine.run(t);
        EXPECT_EQ(s.totalPenaltyCycles(), 0u) << n;
        // Requests approach blocks / n.
        EXPECT_NEAR(static_cast<double>(s.blocksFetched) /
                        static_cast<double>(s.fetchRequests),
                    static_cast<double>(n), 0.1)
            << n;
        EXPECT_GT(s.ipcF(), 8.0 * n * 0.95) << n;
    }
}

TEST(MultiBlockEngine, MatchesDualEngineCycleCounts)
{
    // With n = 2 the multi-block engine models the same mechanism as
    // the dedicated dual-block engine (modulo BBR bookkeeping, which
    // costs no cycles); their accounting must agree closely.
    InMemoryTrace t = specTrace("li", 50000);
    FetchStats dual = DualBlockEngine(FetchEngineConfig{}).run(t);
    FetchStats multi =
        MultiBlockEngine(FetchEngineConfig{}, 2).run(t);
    EXPECT_EQ(multi.fetchRequests, dual.fetchRequests);
    EXPECT_EQ(multi.blocksFetched, dual.blocksFetched);
    EXPECT_EQ(multi.totalPenaltyCycles(), dual.totalPenaltyCycles());
    EXPECT_EQ(multi.condDirectionWrong, dual.condDirectionWrong);
}

TEST(MultiBlockEngine, MoreBlocksRaiseRawFetchRate)
{
    // The Section 5 promise: prediction bandwidth scales. On a
    // predictable fp workload the effective rate keeps climbing.
    InMemoryTrace t = specTrace("mgrid", 60000);
    FetchEngineConfig cfg;
    cfg.icache = ICacheConfig::selfAligned(8);
    cfg.numSelectTables = 8;
    double prev = 0.0;
    for (unsigned blocks : { 1u, 2u, 3u }) {
        FetchStats s = MultiBlockEngine(cfg, blocks).run(t);
        EXPECT_GT(s.ipcF(), prev) << blocks;
        prev = s.ipcF();
    }
}

TEST(MultiBlockEngine, DeeperSlotsPayMore)
{
    // Cold target arrays: the same misfetch costs more when detected
    // on a deeper slot (Table 3 extrapolation).
    PenaltyModel m(false);
    EXPECT_EQ(m.cycles(PenaltyKind::MisfetchImmediate, 2), 3u);
    EXPECT_EQ(m.cycles(PenaltyKind::MisfetchImmediate, 3), 4u);
    EXPECT_EQ(m.cycles(PenaltyKind::Misselect, 2), 2u);
    EXPECT_EQ(m.cycles(PenaltyKind::Misselect, 3), 3u);
    EXPECT_EQ(m.cycles(PenaltyKind::ReturnMispredict, 3), 7u);
}

TEST(MultiBlockEngine, RunsOnBtbBackend)
{
    InMemoryTrace t = specTrace("compress", 30000);
    FetchEngineConfig cfg;
    cfg.targetKind = TargetKind::Btb;
    cfg.targetEntries = 64;
    FetchStats s = MultiBlockEngine(cfg, 4).run(t);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_GT(s.ipcF(), 1.0);
}

TEST(MultiBlockEngine, Deterministic)
{
    InMemoryTrace t = specTrace("perl", 30000);
    FetchStats a = MultiBlockEngine(FetchEngineConfig{}, 3).run(t);
    FetchStats b = MultiBlockEngine(FetchEngineConfig{}, 3).run(t);
    EXPECT_EQ(a.fetchCycles(), b.fetchCycles());
}

TEST(MultiBlockEngineDeath, ConfigValidation)
{
    FetchEngineConfig cfg;
    EXPECT_DEATH(MultiBlockEngine e(cfg, 0), "blocks");
    EXPECT_DEATH(MultiBlockEngine e(cfg, 5), "blocks");
    cfg.doubleSelect = true;
    EXPECT_DEATH(MultiBlockEngine e(cfg, 3), "single selection");
}

} // namespace
} // namespace mbbp

/** @file Unit tests for fetch-block segmentation. */

#include "fetch/block.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

InMemoryTrace
straightLine(Addr start, unsigned n)
{
    InMemoryTrace t;
    for (unsigned i = 0; i < n; ++i)
        t.append({ start + i, InstClass::NonBranch, false, 0 });
    return t;
}

TEST(BlockStream, CapacityCutsStraightLineCode)
{
    InMemoryTrace t = straightLine(0x40, 20);
    ICacheModel cache(ICacheConfig::normal(8));
    BlockStream bs(t, cache);
    OwnedBlock blk;
    ASSERT_TRUE(bs.next(blk));
    EXPECT_EQ(blk.startPc, 0x40u);
    EXPECT_EQ(blk.size(), 8u);
    EXPECT_FALSE(blk.endsTaken());
    EXPECT_EQ(blk.nextPc, 0x48u);
    ASSERT_TRUE(bs.next(blk));
    EXPECT_EQ(blk.startPc, 0x48u);
    // The final partial block (unknown successor) is dropped.
    EXPECT_FALSE(bs.next(blk));
    EXPECT_EQ(bs.blocksProduced(), 2u);
}

TEST(BlockStream, MisalignedEntryShortensBlock)
{
    InMemoryTrace t = straightLine(0x45, 16);
    ICacheModel cache(ICacheConfig::normal(8));
    BlockStream bs(t, cache);
    OwnedBlock blk;
    ASSERT_TRUE(bs.next(blk));
    EXPECT_EQ(blk.size(), 3u);      // 0x45..0x47
    EXPECT_EQ(blk.nextPc, 0x48u);
}

TEST(BlockStream, TakenTransferEndsBlock)
{
    InMemoryTrace t;
    t.append({ 0x40, InstClass::NonBranch, false, 0 });
    t.append({ 0x41, InstClass::Jump, true, 0x80 });
    t.append({ 0x80, InstClass::NonBranch, false, 0 });
    t.append({ 0x81, InstClass::NonBranch, false, 0 });
    ICacheModel cache(ICacheConfig::normal(8));
    BlockStream bs(t, cache);
    OwnedBlock blk;
    ASSERT_TRUE(bs.next(blk));
    EXPECT_EQ(blk.size(), 2u);
    EXPECT_TRUE(blk.endsTaken());
    EXPECT_EQ(blk.exitIdx, 1);
    EXPECT_EQ(blk.exitInst()->cls, InstClass::Jump);
    EXPECT_EQ(blk.nextPc, 0x80u);
}

TEST(BlockStream, NotTakenCondStaysInside)
{
    // Only *taken* transfers end a block; not-taken conditionals are
    // exactly why multiple branch prediction is needed.
    InMemoryTrace t;
    t.append({ 0x40, InstClass::CondBranch, false, 0x100 });
    t.append({ 0x41, InstClass::CondBranch, false, 0x100 });
    t.append({ 0x42, InstClass::CondBranch, true, 0x100 });
    t.append({ 0x100, InstClass::NonBranch, false, 0 });
    ICacheModel cache(ICacheConfig::normal(8));
    BlockStream bs(t, cache);
    OwnedBlock blk;
    ASSERT_TRUE(bs.next(blk));
    EXPECT_EQ(blk.size(), 3u);
    EXPECT_EQ(blk.exitIdx, 2);
    EXPECT_EQ(blk.numConds(), 3u);
    EXPECT_EQ(blk.numNotTakenConds(), 2u);
    // Outcomes bit i = i-th conditional: N N T -> 0b100.
    EXPECT_EQ(blk.condOutcomes(), 0b100u);
}

TEST(BlockStream, SelfAlignedSpansLines)
{
    InMemoryTrace t = straightLine(0x44, 20);
    ICacheModel cache(ICacheConfig::selfAligned(8));
    BlockStream bs(t, cache);
    OwnedBlock blk;
    ASSERT_TRUE(bs.next(blk));
    EXPECT_EQ(blk.size(), 8u);      // full width despite offset 4
    EXPECT_EQ(blk.nextPc, 0x4cu);
}

TEST(BlockStream, ExtendedLineHoldsMisalignedBlock)
{
    InMemoryTrace t = straightLine(0x44, 20);
    ICacheModel cache(ICacheConfig::extended(8));
    BlockStream bs(t, cache);
    OwnedBlock blk;
    ASSERT_TRUE(bs.next(blk));
    EXPECT_EQ(blk.size(), 8u);      // 0x44..0x4b within the 16-line
}

TEST(BlockStream, EmptyTrace)
{
    InMemoryTrace t;
    ICacheModel cache(ICacheConfig::normal(8));
    BlockStream bs(t, cache);
    OwnedBlock blk;
    EXPECT_FALSE(bs.next(blk));
}

TEST(FetchBlock, ExitInstNullWhenFallThrough)
{
    OwnedBlock blk;
    blk.insts.push_back({ 0x1, InstClass::NonBranch, false, 0 });
    blk.exitIdx = -1;
    EXPECT_EQ(blk.exitInst(), nullptr);
}

} // namespace
} // namespace mbbp

/**
 * @file
 * The select table's GHR-update information (Section 3.1) and the
 * Section 4.3 rationale for multiple select tables: "the correct
 * target depends on the entering position in a block, so multiple
 * select tables help identify which target should be selected."
 *
 * A note on why these tests use suite workloads rather than a
 * hand-built minimal stream: a GHR penalty requires the stored
 * selector to match while the stored not-taken count differs, at a
 * context whose predecessor's target array was NOT just updated with
 * the same information -- in any short deterministic construction the
 * target-array check (squash) and the GHR-info mismatch observe the
 * *same* offset-change events and cancel exactly. Real control flow
 * decorrelates them through longer re-visit distances, which is what
 * these tests rely on.
 */

#include <gtest/gtest.h>

#include "fetch/dual_block_engine.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

FetchStats
runWith(const std::string &program, unsigned num_sts)
{
    InMemoryTrace t = specTrace(program, 100000);
    FetchEngineConfig cfg;
    cfg.numSelectTables = num_sts;
    return DualBlockEngine(cfg).run(t);
}

uint64_t
events(const FetchStats &s, PenaltyKind k)
{
    return s.penaltyEvents[static_cast<std::size_t>(k)];
}

TEST(GhrPenalty, OccursNaturally)
{
    // Blocks reached at varying entering positions under one ST give
    // matching selectors with stale not-taken counts.
    FetchStats s = runWith("ijpeg", 1);
    EXPECT_GT(events(s, PenaltyKind::GhrMispredict), 20u);
}

TEST(GhrPenalty, MultipleSelectTablesReduceGhrEvents)
{
    // Section 4.3: the entering position selects the table, so the
    // per-offset GHR information stops thrashing.
    FetchStats one = runWith("ijpeg", 1);
    FetchStats eight = runWith("ijpeg", 8);
    EXPECT_LT(events(eight, PenaltyKind::GhrMispredict),
              events(one, PenaltyKind::GhrMispredict) / 2);
}

TEST(GhrPenalty, MultipleSelectTablesReduceMisselectsToo)
{
    for (const char *name : { "gcc", "perl" }) {
        FetchStats one = runWith(name, 1);
        FetchStats eight = runWith(name, 8);
        EXPECT_LT(events(eight, PenaltyKind::Misselect),
                  events(one, PenaltyKind::Misselect))
            << name;
    }
}

TEST(GhrPenalty, GhrEventsAreMinorNextToMisselects)
{
    // Figure 9's ordering: the ghr component of BEP is small
    // relative to misselection.
    FetchStats s = runWith("gcc", 8);
    EXPECT_LT(events(s, PenaltyKind::GhrMispredict),
              events(s, PenaltyKind::Misselect));
}

} // namespace
} // namespace mbbp

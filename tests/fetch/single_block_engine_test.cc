/** @file Behavioral tests for the single-block fetch engine. */

#include "fetch/single_block_engine.hh"

#include <gtest/gtest.h>

#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

/** N straight-line instructions starting at an aligned address. */
InMemoryTrace
straightLine(unsigned n)
{
    InMemoryTrace t;
    for (unsigned i = 0; i < n; ++i)
        t.append({ 0x1000 + i, InstClass::NonBranch, false, 0 });
    return t;
}

/** A loop body repeated: body-1 plain insts + a backward branch. */
InMemoryTrace
steadyLoop(unsigned body, unsigned reps)
{
    InMemoryTrace t;
    for (unsigned r = 0; r < reps; ++r)
        for (unsigned i = 0; i < body; ++i) {
            bool last = i + 1 == body;
            t.append({ 0x1000 + i,
                       last ? InstClass::Jump : InstClass::NonBranch,
                       last, last ? 0x1000 : 0 });
        }
    return t;
}

FetchEngineConfig
defaults()
{
    return FetchEngineConfig{};
}

TEST(SingleBlockEngine, StraightLineCodeIsPenaltyFree)
{
    InMemoryTrace t = straightLine(800);
    SingleBlockEngine engine(defaults());
    FetchStats s = engine.run(t);
    EXPECT_EQ(s.totalPenaltyCycles(), 0u);
    EXPECT_EQ(s.blocksFetched, s.fetchRequests);
    EXPECT_DOUBLE_EQ(s.ipb(), 8.0);
    EXPECT_DOUBLE_EQ(s.ipcF(), 8.0);
}

TEST(SingleBlockEngine, SteadyLoopOnlyPaysColdMisses)
{
    // An 8-instruction loop ending in a jump: the first encounter
    // misfetches (cold NLS), afterwards everything is predicted.
    InMemoryTrace t = steadyLoop(8, 200);
    SingleBlockEngine engine(defaults());
    FetchStats s = engine.run(t);
    auto imm = static_cast<std::size_t>(
        PenaltyKind::MisfetchImmediate);
    EXPECT_EQ(s.penaltyEvents[imm], 1u);    // cold target only
    EXPECT_EQ(s.totalPenaltyCycles(), 1u);
    EXPECT_EQ(s.condDirectionWrong, 0u);
}

TEST(SingleBlockEngine, IndirectColdMissCostsFour)
{
    InMemoryTrace t;
    for (unsigned r = 0; r < 50; ++r)
        for (unsigned i = 0; i < 8; ++i) {
            bool last = i + 1 == 8;
            t.append({ 0x1000 + i,
                       last ? InstClass::IndirectJump
                            : InstClass::NonBranch,
                       last, last ? 0x1000 : 0 });
        }
    SingleBlockEngine engine(defaults());
    FetchStats s = engine.run(t);
    auto ind = static_cast<std::size_t>(PenaltyKind::MisfetchIndirect);
    EXPECT_EQ(s.penaltyEvents[ind], 1u);
    EXPECT_EQ(s.penaltyCycles[ind], 4u);    // Table 3, block 1
}

TEST(SingleBlockEngine, CallsAndReturnsUseTheRas)
{
    // main calls f (every 8 insts) and f returns: after the cold
    // misses, the RAS predicts every return.
    InMemoryTrace t;
    for (unsigned r = 0; r < 100; ++r) {
        for (unsigned i = 0; i < 7; ++i)
            t.append({ 0x1000 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x1007, InstClass::Call, true, 0x2000 });
        for (unsigned i = 0; i < 7; ++i)
            t.append({ 0x2000 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x2007, InstClass::Return, true, 0x1008 });
        for (unsigned i = 0; i < 8; ++i)
            t.append({ 0x1008 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x1010, InstClass::Jump, true, 0x1000 });
    }
    SingleBlockEngine engine(defaults());
    FetchStats s = engine.run(t);
    auto ret = static_cast<std::size_t>(PenaltyKind::ReturnMispredict);
    EXPECT_EQ(s.penaltyEvents[ret], 0u);
    // Only the two cold direct-target misses (call, jump).
    auto imm = static_cast<std::size_t>(
        PenaltyKind::MisfetchImmediate);
    EXPECT_EQ(s.penaltyEvents[imm], 2u);
}

TEST(SingleBlockEngine, MispredictedTakenPaysRefetchExtra)
{
    // A conditional that alternates with period 2 but whose history
    // is hidden (same PHT entry): drive it to mispredict. Simpler: a
    // branch not-taken 3x then taken 1x within one block position
    // mispredicts on the taken occurrence (counter saturated at
    // not-taken).
    InMemoryTrace t;
    for (unsigned r = 0; r < 50; ++r) {
        for (unsigned k = 0; k < 4; ++k) {
            bool taken = k == 3;
            t.append({ 0x1000, InstClass::NonBranch, false, 0 });
            t.append({ 0x1001, InstClass::CondBranch, taken, 0x1000 });
            if (!taken) {
                for (unsigned i = 2; i < 7; ++i)
                    t.append({ 0x1000 + i, InstClass::NonBranch,
                               false, 0 });
                t.append({ 0x1007, InstClass::Jump, true, 0x1000 });
            }
        }
    }
    SingleBlockEngine engine(defaults());
    FetchStats s = engine.run(t);
    EXPECT_GT(s.condDirectionWrong, 0u);
    auto cond = static_cast<std::size_t>(PenaltyKind::CondMispredict);
    EXPECT_GT(s.penaltyCycles[cond], 0u);
}

TEST(SingleBlockEngine, FiniteBitTablePaysAliasingPenalty)
{
    // Two lines that alias in a 1-entry BIT table, with different
    // type vectors: every alternation flips the entry.
    InMemoryTrace t;
    for (unsigned r = 0; r < 50; ++r) {
        // Line A at 0x1000: ends with jump to line B.
        for (unsigned i = 0; i < 7; ++i)
            t.append({ 0x1000 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x1007, InstClass::Jump, true, 0x2000 });
        // Line B at 0x2000: jump at position 3 back to line A.
        for (unsigned i = 0; i < 3; ++i)
            t.append({ 0x2000 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x2003, InstClass::Jump, true, 0x1000 });
    }
    FetchEngineConfig cfg = defaults();
    cfg.bitEntries = 1;
    SingleBlockEngine engine(cfg);
    FetchStats s = engine.run(t);
    auto bit = static_cast<std::size_t>(PenaltyKind::BitMispredict);
    EXPECT_GT(s.penaltyEvents[bit], 50u);

    // A perfect BIT on the same trace pays none.
    FetchEngineConfig perfect = defaults();
    SingleBlockEngine engine2(perfect);
    FetchStats s2 = engine2.run(t);
    EXPECT_EQ(s2.penaltyEvents[bit], 0u);
}

TEST(SingleBlockEngine, BtbBackendWorks)
{
    FetchEngineConfig cfg = defaults();
    cfg.targetKind = TargetKind::Btb;
    cfg.targetEntries = 32;
    InMemoryTrace t = specTrace("compress", 30000);
    SingleBlockEngine engine(cfg);
    FetchStats s = engine.run(t);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_GT(s.ipcF(), 1.0);
}

TEST(SingleBlockEngine, NearBlockReducesImmediateMisfetch)
{
    InMemoryTrace t = specTrace("gcc", 60000);
    FetchEngineConfig small = defaults();
    small.targetEntries = 16;   // starve the target array
    FetchEngineConfig near = small;
    near.nearBlock = true;
    FetchStats s_far = SingleBlockEngine(small).run(t);
    FetchStats s_near = SingleBlockEngine(near).run(t);
    auto imm = static_cast<std::size_t>(
        PenaltyKind::MisfetchImmediate);
    EXPECT_LT(s_near.penaltyCycles[imm], s_far.penaltyCycles[imm]);
}

TEST(SingleBlockEngineDeath, RejectsDoubleSelect)
{
    FetchEngineConfig cfg = defaults();
    cfg.doubleSelect = true;
    EXPECT_DEATH(SingleBlockEngine engine(cfg), "double");
}

} // namespace
} // namespace mbbp

/** @file Tests for the Seznec-style two-block-ahead fetch engine. */

#include "fetch/two_ahead_engine.hh"

#include <gtest/gtest.h>

#include "fetch/dual_block_engine.hh"
#include "util/random.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

TEST(TwoAheadEngine, PerfectOnAPeriodicSequence)
{
    // A fixed 4-block cycle: every two-ahead address repeats, so
    // after warmup there are no penalties at all.
    InMemoryTrace t;
    // Staggered bases so the four lines live in different banks.
    Addr bases[4] = { 0x1000, 0x2008, 0x3010, 0x4018 };
    for (unsigned r = 0; r < 300; ++r) {
        for (unsigned b = 0; b < 4; ++b) {
            for (unsigned i = 0; i < 7; ++i)
                t.append({ bases[b] + i, InstClass::NonBranch, false,
                           0 });
            t.append({ bases[b] + 7, InstClass::Jump, true,
                       bases[(b + 1) % 4] });
        }
    }
    TwoAheadEngine engine(FetchEngineConfig{});
    FetchStats s = engine.run(t);
    // Cold-table misses only.
    EXPECT_LT(s.totalPenaltyCycles(), 40u);
    EXPECT_NEAR(static_cast<double>(s.blocksFetched) /
                    static_cast<double>(s.fetchRequests),
                2.0, 0.05);
}

TEST(TwoAheadEngine, ComparableToSelectTableOnTheSuite)
{
    // "Its accuracy is as good as a single block fetching" -- the
    // two schemes land in the same IPC_f ballpark; the select
    // table's structural advantage is timing (parallel tag match),
    // which a cycle-accounting model cannot show, so neither engine
    // should dominate by a large factor.
    for (const char *name : { "li", "swim" }) {
        InMemoryTrace t = specTrace(name, 50000);
        FetchStats st_engine =
            DualBlockEngine(FetchEngineConfig{}).run(t);
        FetchStats ta_engine =
            TwoAheadEngine(FetchEngineConfig{}).run(t);
        EXPECT_GT(ta_engine.ipcF(), st_engine.ipcF() * 0.6) << name;
        EXPECT_LT(ta_engine.ipcF(), st_engine.ipcF() * 1.4) << name;
    }
}

TEST(TwoAheadEngine, ChargesCondPenaltyForDirectionErrors)
{
    // A random conditional: the two-ahead address keeps flipping.
    InMemoryTrace t;
    Rng rng(99);
    for (unsigned r = 0; r < 300; ++r) {
        bool taken = rng.bernoulli(0.5);
        for (unsigned i = 0; i < 7; ++i)
            t.append({ 0x1000 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x1007, InstClass::CondBranch, taken, 0x3000 });
        Addr base = taken ? 0x3000 : 0x1008;
        for (unsigned i = 0; i < 7; ++i)
            t.append({ base + i, InstClass::NonBranch, false, 0 });
        t.append({ base + 7, InstClass::Jump, true, 0x1000 });
    }
    TwoAheadEngine engine(FetchEngineConfig{});
    FetchStats s = engine.run(t);
    EXPECT_GT(s.condDirectionWrong, 50u);
}

TEST(TwoAheadEngine, Deterministic)
{
    InMemoryTrace t = specTrace("gcc", 30000);
    FetchStats a = TwoAheadEngine(FetchEngineConfig{}).run(t);
    FetchStats b = TwoAheadEngine(FetchEngineConfig{}).run(t);
    EXPECT_EQ(a.fetchCycles(), b.fetchCycles());
}

} // namespace
} // namespace mbbp

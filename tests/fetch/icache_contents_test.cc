/** @file Tests for the finite i-cache contents model. */

#include <gtest/gtest.h>

#include "fetch/icache_model.hh"
#include "fetch/dual_block_engine.hh"
#include "fetch/single_block_engine.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

TEST(ICacheContents, PerfectModeAlwaysHits)
{
    ICacheContents c(0, 2);
    EXPECT_TRUE(c.perfect());
    for (Addr line = 0; line < 1000; ++line)
        EXPECT_TRUE(c.access(line * 7919));
    EXPECT_EQ(c.misses(), 0u);
}

TEST(ICacheContents, ColdMissThenHit)
{
    ICacheContents c(8, 2);
    EXPECT_FALSE(c.access(5));
    EXPECT_TRUE(c.access(5));
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(ICacheContents, AssociativityHoldsConflicts)
{
    // 8 lines, 2-way => 4 sets; lines 0 and 4 share set 0 and can
    // coexist, a third conflicting line evicts the LRU.
    ICacheContents c(8, 2);
    c.access(0);
    c.access(4);
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(4));
    c.access(8);                // evicts line 0 (LRU)
    EXPECT_TRUE(c.access(8));   // still resident
    EXPECT_FALSE(c.access(0));  // was evicted; this refills it,
                                // evicting line 4 (now the LRU)
    EXPECT_FALSE(c.access(4));
}

TEST(ICacheContents, LruOrderRespected)
{
    ICacheContents c(4, 2);     // 2 sets
    c.access(0);
    c.access(2);
    (void)c.access(0);          // 0 now MRU
    c.access(4);                // same set as 0 and 2: evicts 2
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(2));
}

TEST(ICacheContentsDeath, Validation)
{
    EXPECT_DEATH(ICacheContents c(10, 4), "multiple");
    EXPECT_DEATH(ICacheContents c(24, 4), "power");
}

TEST(ICacheContents, EngineChargesMissCycles)
{
    InMemoryTrace t = specTrace("gcc", 40000);

    FetchEngineConfig perfect;
    FetchStats s_perfect = SingleBlockEngine(perfect).run(t);
    EXPECT_EQ(s_perfect.icacheMisses, 0u);
    EXPECT_EQ(s_perfect.icacheMissCycles, 0u);

    FetchEngineConfig finite;
    finite.icacheLines = 64;        // deliberately tiny
    finite.icacheAssoc = 2;
    finite.icacheMissPenalty = 10;
    FetchStats s_finite = SingleBlockEngine(finite).run(t);
    EXPECT_GT(s_finite.icacheMisses, 0u);
    EXPECT_EQ(s_finite.icacheMissCycles, s_finite.icacheMisses * 10);
    // Misses slow fetch but leave BEP's branch accounting unchanged.
    EXPECT_LT(s_finite.ipcF(), s_perfect.ipcF());
    EXPECT_EQ(s_finite.totalPenaltyCycles(),
              s_perfect.totalPenaltyCycles());
}

TEST(ICacheContents, BiggerCachesMissLess)
{
    InMemoryTrace t = specTrace("go", 40000);
    uint64_t prev = ~uint64_t{0};
    for (std::size_t lines : { 64u, 256u, 1024u, 4096u }) {
        FetchEngineConfig cfg;
        cfg.icacheLines = lines;
        FetchStats s = SingleBlockEngine(cfg).run(t);
        EXPECT_LE(s.icacheMisses, prev) << lines;
        prev = s.icacheMisses;
    }
}

TEST(DelayedPhtUpdate, SlightlyWorseNeverBetterOnPredictableCode)
{
    // Stale counters can only lose accuracy on a strongly biased
    // stream; on the suite the effect is small but non-negative.
    InMemoryTrace t = specTrace("vortex", 50000);
    FetchEngineConfig immediate;
    FetchEngineConfig delayed;
    delayed.delayedPhtUpdate = true;
    FetchStats a = SingleBlockEngine(immediate).run(t);
    FetchStats b = SingleBlockEngine(delayed).run(t);
    EXPECT_GE(b.condDirectionWrong + 50, a.condDirectionWrong);
    // And it must not change instruction accounting.
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.blocksFetched, b.blocksFetched);
}

TEST(DelayedPhtUpdate, WorksOnDualEngine)
{
    InMemoryTrace t = specTrace("li", 40000);
    FetchEngineConfig delayed;
    delayed.delayedPhtUpdate = true;
    FetchStats s = DualBlockEngine(delayed).run(t);
    EXPECT_GT(s.ipcF(), 1.0);
    // Determinism.
    FetchStats again = DualBlockEngine(delayed).run(t);
    EXPECT_EQ(s.fetchCycles(), again.fetchCycles());
}

} // namespace
} // namespace mbbp

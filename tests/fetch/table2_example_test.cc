/**
 * @file
 * The paper's Table 2 worked example, reproduced end to end.
 *
 * A line of eight instructions:
 *   pos 0  shift    BIT 000
 *   pos 1  branch   BIT 100 (cond, previous-line target), PHT 10
 *   pos 2  add      BIT 000
 *   pos 3  jump     BIT 010
 *   pos 4  sub      BIT 000
 *   pos 5  branch   BIT 011 (cond, long target), PHT 11
 *   pos 6  move     BIT 000
 *   pos 7  return   BIT 001
 *
 * Expected next-line selection per starting position:
 *   start 0,1 -> exit 1, previous line (near-block)
 *   start 2,3 -> exit 3, NLS(3)
 *   start 4,5 -> exit 5, NLS(5)
 *   start 6,7 -> exit 7, RAS
 */

#include <gtest/gtest.h>

#include "fetch/exit_predict.hh"

namespace mbbp
{
namespace
{

class Table2Example : public ::testing::Test
{
  protected:
    static constexpr Addr base = 0x40;  // line-aligned, L = 8

    Table2Example()
        : pht_({ 6, 8, 2, 1 })
    {
        image_.add({ base + 0, InstClass::NonBranch, false, 0 });
        // Conditional with a previous-line target (BIT 100).
        image_.add({ base + 1, InstClass::CondBranch, true,
                     base - 6 });
        image_.add({ base + 2, InstClass::NonBranch, false, 0 });
        image_.add({ base + 3, InstClass::Jump, true, 0x200 });
        image_.add({ base + 4, InstClass::NonBranch, false, 0 });
        // Conditional with a long target (BIT 011).
        image_.add({ base + 5, InstClass::CondBranch, true, 0x300 });
        image_.add({ base + 6, InstClass::NonBranch, false, 0 });
        image_.add({ base + 7, InstClass::Return, true, 0x123 });

        // PHT entry values from the table: position 1 = 10 (weakly
        // taken), position 5 = 11 (strongly taken).
        pht_.setCounterAt(idx_, 1, SatCounter(2, 2));
        pht_.setCounterAt(idx_, 5, SatCounter(2, 3));
    }

    ExitPrediction
    predictFrom(unsigned start)
    {
        unsigned capacity = 8 - start;
        BitVector codes = trueWindowCodes(image_, base + start,
                                          capacity, 8, true);
        return predictExit(codes, base + start, capacity, pht_, idx_);
    }

    StaticImage image_;
    BlockedPHT pht_;
    std::size_t idx_ = 0;
};

TEST_F(Table2Example, BitCodesMatchTable2Row)
{
    BitVector codes = trueWindowCodes(image_, base, 8, 8, true);
    BitCode expected[8] = {
        BitCode::NonBranch, BitCode::CondPrevLine, BitCode::NonBranch,
        BitCode::OtherBranch, BitCode::NonBranch, BitCode::CondLong,
        BitCode::NonBranch, BitCode::Return,
    };
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(codes[i], expected[i]) << "position " << i;
}

TEST_F(Table2Example, StartZeroAndOneExitAtTheFirstBranch)
{
    for (unsigned start : { 0u, 1u }) {
        ExitPrediction p = predictFrom(start);
        ASSERT_TRUE(p.found) << start;
        EXPECT_EQ(p.pc, base + 1) << start;
        // "line-": the near-block previous-line selection.
        EXPECT_EQ(p.src, SelSrc::LinePrev) << start;
        EXPECT_EQ(p.selector(8), (Selector{ SelSrc::LinePrev, 1 }));
    }
}

TEST_F(Table2Example, StartTwoAndThreeExitAtTheJump)
{
    for (unsigned start : { 2u, 3u }) {
        ExitPrediction p = predictFrom(start);
        ASSERT_TRUE(p.found) << start;
        EXPECT_EQ(p.pc, base + 3) << start;
        // "NLS(3)": target array at exit position 3.
        EXPECT_EQ(p.selector(8), (Selector{ SelSrc::Target, 3 }));
    }
}

TEST_F(Table2Example, StartFourAndFiveExitAtTheSecondBranch)
{
    for (unsigned start : { 4u, 5u }) {
        ExitPrediction p = predictFrom(start);
        ASSERT_TRUE(p.found) << start;
        EXPECT_EQ(p.pc, base + 5) << start;
        // "NLS(5)".
        EXPECT_EQ(p.selector(8), (Selector{ SelSrc::Target, 5 }));
    }
}

TEST_F(Table2Example, StartSixAndSevenExitAtTheReturn)
{
    for (unsigned start : { 6u, 7u }) {
        ExitPrediction p = predictFrom(start);
        ASSERT_TRUE(p.found) << start;
        EXPECT_EQ(p.pc, base + 7) << start;
        EXPECT_EQ(p.src, SelSrc::Ras) << start;
    }
}

TEST_F(Table2Example, SecondChanceKeepsPredictionAfterOneMiss)
{
    // "Since the pattern history indicates a 'second chance' bit, the
    // prediction will not change the next time the branch is
    // encountered": position 5 holds 11; one not-taken outcome drops
    // it to 10, still predicting taken, so the select replacement
    // stays NLS(5).
    const SatCounter &before = pht_.counterAt(idx_, 5);
    EXPECT_TRUE(before.secondChance());
    pht_.updateAt(idx_, base + 5, false);
    EXPECT_TRUE(pht_.predictAt(idx_, base + 5));
    ExitPrediction p = predictFrom(4);
    EXPECT_EQ(p.selector(8), (Selector{ SelSrc::Target, 5 }));

    // Position 1 holds 10 (no second chance): one miss flips it.
    pht_.updateAt(idx_, base + 1, false);
    EXPECT_FALSE(pht_.predictAt(idx_, base + 1));
    ExitPrediction q = predictFrom(0);
    // The not-taken branch is scanned through; the jump at 3 exits.
    EXPECT_EQ(q.selector(8), (Selector{ SelSrc::Target, 3 }));
    EXPECT_EQ(q.numNotTaken, 1);
}

} // namespace
} // namespace mbbp

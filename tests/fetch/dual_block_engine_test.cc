/** @file Behavioral tests for the dual-block fetch engine. */

#include "fetch/dual_block_engine.hh"

#include <gtest/gtest.h>

#include "util/random.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

InMemoryTrace
straightLine(unsigned n)
{
    InMemoryTrace t;
    for (unsigned i = 0; i < n; ++i)
        t.append({ 0x1000 + i, InstClass::NonBranch, false, 0 });
    return t;
}

TEST(DualBlockEngine, StraightLineFetchesTwoBlocksPerRequest)
{
    InMemoryTrace t = straightLine(1607);   // 200 full blocks
    DualBlockEngine engine(FetchEngineConfig{});
    FetchStats s = engine.run(t);
    EXPECT_EQ(s.totalPenaltyCycles(), 0u);
    // One priming request plus one request per pair.
    EXPECT_NEAR(static_cast<double>(s.blocksFetched) /
                    static_cast<double>(s.fetchRequests),
                2.0, 0.05);
    // Effective rate approaches 2 * b = 16.
    EXPECT_GT(s.ipcF(), 15.0);
}

TEST(DualBlockEngine, SequentialBlocksNeverBankConflict)
{
    InMemoryTrace t = straightLine(4000);
    DualBlockEngine engine(FetchEngineConfig{});
    FetchStats s = engine.run(t);
    auto bank = static_cast<std::size_t>(PenaltyKind::BankConflict);
    EXPECT_EQ(s.penaltyEvents[bank], 0u);
}

TEST(DualBlockEngine, SameBankPairsPayOneCycle)
{
    // Ping-pong between lines 0x1000 and 0x1040: with 8 banks both
    // map to bank (0x200 % 8) == (0x208 % 8) -- build pairs whose two
    // blocks collide.
    InMemoryTrace t;
    for (unsigned r = 0; r < 100; ++r) {
        for (unsigned i = 0; i < 7; ++i)
            t.append({ 0x1000 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x1007, InstClass::Jump, true, 0x1040 });
        for (unsigned i = 0; i < 7; ++i)
            t.append({ 0x1040 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x1047, InstClass::Jump, true, 0x1000 });
    }
    DualBlockEngine engine(FetchEngineConfig{});
    FetchStats s = engine.run(t);
    auto bank = static_cast<std::size_t>(PenaltyKind::BankConflict);
    EXPECT_GT(s.penaltyEvents[bank], 90u);
    EXPECT_EQ(s.penaltyCycles[bank], s.penaltyEvents[bank]);
}

TEST(DualBlockEngine, SteadySequenceHasNoMisselectsAfterWarmup)
{
    // A fixed 4-block cycle: selectors repeat exactly, so after the
    // cold pass the select table always agrees.
    InMemoryTrace t;
    Addr bases[4] = { 0x1000, 0x2000, 0x3000, 0x4000 };
    for (unsigned r = 0; r < 200; ++r) {
        for (unsigned b = 0; b < 4; ++b) {
            for (unsigned i = 0; i < 7; ++i)
                t.append({ bases[b] + i, InstClass::NonBranch, false,
                           0 });
            t.append({ bases[b] + 7, InstClass::Jump, true,
                       bases[(b + 1) % 4] });
        }
    }
    DualBlockEngine engine(FetchEngineConfig{});
    FetchStats s = engine.run(t);
    auto missel = static_cast<std::size_t>(PenaltyKind::Misselect);
    // Cold select-table entries miss once per distinct context, then
    // never again: a handful out of ~400 pair cycles.
    EXPECT_LT(s.penaltyEvents[missel], 10u);
    EXPECT_EQ(s.condDirectionWrong, 0u);
}

TEST(DualBlockEngine, RandomSecondBlockCausesMisselectsOrMispredicts)
{
    // Block B ends with a *data-random* conditional: no history
    // pattern predicts it, so whichever slot B's exit prediction
    // lands in, it keeps being wrong -- a direction mispredict when
    // checked as block 1, a misselect/mispredict when its selector
    // was cached in the select table.
    InMemoryTrace t;
    Rng rng(12345);
    for (unsigned r = 0; r < 300; ++r) {
        bool flip = rng.bernoulli(0.5);
        for (unsigned i = 0; i < 7; ++i)
            t.append({ 0x1000 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x1007, InstClass::Jump, true, 0x2000 });
        for (unsigned i = 0; i < 7; ++i)
            t.append({ 0x2000 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x2007, InstClass::CondBranch, flip, 0x3000 });
        if (flip) {
            for (unsigned i = 0; i < 7; ++i)
                t.append({ 0x3000 + i, InstClass::NonBranch, false,
                           0 });
            t.append({ 0x3007, InstClass::Jump, true, 0x1000 });
        } else {
            for (unsigned i = 0; i < 7; ++i)
                t.append({ 0x2008 + i, InstClass::NonBranch, false,
                           0 });
            t.append({ 0x200f, InstClass::Jump, true, 0x1000 });
        }

    }
    DualBlockEngine engine(FetchEngineConfig{});
    FetchStats s = engine.run(t);
    // The alternation is either a direction mispredict or a
    // misselect, depending on which slot B lands in -- both must be
    // well represented across 300 iterations.
    auto missel = static_cast<std::size_t>(PenaltyKind::Misselect);
    auto cond = static_cast<std::size_t>(PenaltyKind::CondMispredict);
    EXPECT_GT(s.penaltyEvents[missel] + s.penaltyEvents[cond], 50u);
}

TEST(DualBlockEngine, DoubleSelectionRunsAndChargesBothSlots)
{
    InMemoryTrace t = specTrace("li", 60000);
    FetchEngineConfig single;
    FetchEngineConfig dbl;
    dbl.doubleSelect = true;
    FetchStats s1 = DualBlockEngine(single).run(t);
    FetchStats s2 = DualBlockEngine(dbl).run(t);
    // Double selection adds first-slot misselects and never charges
    // BIT penalties; the paper found it roughly 10% slower.
    auto bit = static_cast<std::size_t>(PenaltyKind::BitMispredict);
    EXPECT_EQ(s2.penaltyEvents[bit], 0u);
    EXPECT_GT(s2.penaltyEvents[static_cast<std::size_t>(
                  PenaltyKind::Misselect)],
              s1.penaltyEvents[static_cast<std::size_t>(
                  PenaltyKind::Misselect)]);
    EXPECT_LT(s2.ipcF(), s1.ipcF());
}

TEST(DualBlockEngine, MoreSelectTablesNeverIdentifyWorse)
{
    InMemoryTrace t = specTrace("gcc", 60000);
    FetchEngineConfig one;
    one.numSelectTables = 1;
    FetchEngineConfig eight;
    eight.numSelectTables = 8;
    FetchStats s1 = DualBlockEngine(one).run(t);
    FetchStats s8 = DualBlockEngine(eight).run(t);
    // Section 4.3: increasing the number of STs improves performance.
    EXPECT_GE(s8.ipcF(), s1.ipcF() * 0.98);
}

TEST(DualBlockEngine, TracksBbrOccupancy)
{
    InMemoryTrace t = specTrace("compress", 30000);
    DualBlockEngine engine(FetchEngineConfig{});
    FetchStats s = engine.run(t);
    EXPECT_GT(s.bbrPeak, 0u);
    // Bounded by conditionals in the four-block resolution window.
    EXPECT_LE(s.bbrPeak, 5u * 8u);
}

TEST(DualBlockEngine, SuiteRunIsDeterministic)
{
    InMemoryTrace t = specTrace("perl", 30000);
    FetchStats a = DualBlockEngine(FetchEngineConfig{}).run(t);
    FetchStats b = DualBlockEngine(FetchEngineConfig{}).run(t);
    EXPECT_EQ(a.fetchCycles(), b.fetchCycles());
    EXPECT_EQ(a.totalPenaltyCycles(), b.totalPenaltyCycles());
}

} // namespace
} // namespace mbbp

/** @file Unit tests for address resolution and penalty classification. */

#include "fetch/engine_common.hh"

#include <gtest/gtest.h>

#include "predict/nls.hh"

namespace mbbp
{
namespace
{

OwnedBlock
blockEndingWith(Addr start, unsigned body, InstClass cls, bool taken,
                Addr target)
{
    OwnedBlock blk;
    blk.startPc = start;
    for (unsigned i = 0; i < body; ++i)
        blk.insts.push_back({ start + i, InstClass::NonBranch, false,
                              0 });
    blk.insts.push_back({ start + body, cls, taken, target });
    if (taken) {
        blk.exitIdx = static_cast<int>(body);
        blk.nextPc = target;
    } else {
        blk.exitIdx = -1;
        blk.nextPc = start + body + 1;
    }
    return blk;
}

class EngineCommonTest : public ::testing::Test
{
  protected:
    EngineCommonTest()
        : nls_(16, 8, true), ras_(8)
    {
    }

    StaticImage image_;
    NlsTargetArray nls_;
    ReturnAddressStack ras_;
};

TEST_F(EngineCommonTest, ResolveFallThrough)
{
    ExitPrediction p;   // found = false
    ResolvedTarget r = resolveAddress(p, 0x40, 8, image_, ras_, nls_,
                                      0x40, 0, 8);
    EXPECT_EQ(r.addr, 0x48u);
}

TEST_F(EngineCommonTest, ResolveRas)
{
    ras_.push(0x1234);
    ExitPrediction p;
    p.found = true;
    p.offset = 2;
    p.pc = 0x42;
    p.src = SelSrc::Ras;
    ResolvedTarget r = resolveAddress(p, 0x40, 8, image_, ras_, nls_,
                                      0x40, 0, 8);
    EXPECT_EQ(r.addr, 0x1234u);
}

TEST_F(EngineCommonTest, ResolveTargetArrayByPositionAndWhich)
{
    nls_.update(0x40, 2, 0, 0xaaa, false);
    nls_.update(0x40, 2, 1, 0xbbb, false);
    ExitPrediction p;
    p.found = true;
    p.offset = 2;
    p.pc = 0x42;
    p.src = SelSrc::Target;
    EXPECT_EQ(resolveAddress(p, 0x40, 8, image_, ras_, nls_, 0x40, 0,
                             8).addr, 0xaaau);
    EXPECT_EQ(resolveAddress(p, 0x40, 8, image_, ras_, nls_, 0x40, 1,
                             8).addr, 0xbbbu);
}

TEST_F(EngineCommonTest, ResolveNearUsesExactStaticTarget)
{
    image_.add({ 0x42, InstClass::CondBranch, true, 0x4d });
    ExitPrediction p;
    p.found = true;
    p.offset = 2;
    p.pc = 0x42;
    p.src = SelSrc::LineNext;
    ResolvedTarget r = resolveAddress(p, 0x40, 8, image_, ras_, nls_,
                                      0x40, 0, 8);
    EXPECT_EQ(r.addr, 0x4du);   // line index + immediate offset adder
}

TEST_F(EngineCommonTest, BothFallThroughIsCorrect)
{
    OwnedBlock blk;
    blk.startPc = 0x40;
    for (unsigned i = 0; i < 8; ++i)
        blk.insts.push_back({ 0x40 + i, InstClass::NonBranch, false,
                              0 });
    blk.exitIdx = -1;
    blk.nextPc = 0x48;
    ExitPrediction p;
    PredictOutcome out = compareWithActual(p, { 0x48, true }, blk.view());
    EXPECT_TRUE(out.correct);
}

TEST_F(EngineCommonTest, PredictedTakenTooEarlyIsCondWithRefetch)
{
    // Predicted exit at offset 1; the branch there was actually not
    // taken and the block continued: mispredicted-taken, plus the
    // Table 3 footnote re-fetch.
    OwnedBlock blk;
    blk.startPc = 0x40;
    blk.insts.push_back({ 0x40, InstClass::NonBranch, false, 0 });
    blk.insts.push_back({ 0x41, InstClass::CondBranch, false, 0x99 });
    blk.insts.push_back({ 0x42, InstClass::NonBranch, false, 0 });
    blk.exitIdx = -1;
    blk.nextPc = 0x43;
    ExitPrediction p;
    p.found = true;
    p.offset = 1;
    p.pc = 0x41;
    p.src = SelSrc::Target;
    PredictOutcome out = compareWithActual(p, { 0x99, true }, blk.view());
    EXPECT_FALSE(out.correct);
    EXPECT_EQ(out.kind, PenaltyKind::CondMispredict);
    EXPECT_TRUE(out.refetchExtra);
}

TEST_F(EngineCommonTest, MissedTakenExitIsCondNoRefetch)
{
    OwnedBlock blk = blockEndingWith(0x40, 2, InstClass::CondBranch,
                                     true, 0x99);
    ExitPrediction p;   // predicted fall-through
    PredictOutcome out = compareWithActual(p, { 0x48, true }, blk.view());
    EXPECT_FALSE(out.correct);
    EXPECT_EQ(out.kind, PenaltyKind::CondMispredict);
    EXPECT_FALSE(out.refetchExtra);
}

TEST_F(EngineCommonTest, WrongTargetClassifiesByExitClass)
{
    struct
    {
        InstClass cls;
        PenaltyKind kind;
    } cases[] = {
        { InstClass::Return, PenaltyKind::ReturnMispredict },
        { InstClass::IndirectJump, PenaltyKind::MisfetchIndirect },
        { InstClass::IndirectCall, PenaltyKind::MisfetchIndirect },
        { InstClass::Jump, PenaltyKind::MisfetchImmediate },
        { InstClass::Call, PenaltyKind::MisfetchImmediate },
        { InstClass::CondBranch, PenaltyKind::MisfetchImmediate },
    };
    for (auto &c : cases) {
        OwnedBlock blk = blockEndingWith(0x40, 2, c.cls, true, 0x99);
        ExitPrediction p;
        p.found = true;
        p.offset = 2;
        p.pc = 0x42;
        p.src = c.cls == InstClass::Return ? SelSrc::Ras
                                           : SelSrc::Target;
        PredictOutcome out = compareWithActual(p, { 0x55, true }, blk.view());
        EXPECT_FALSE(out.correct);
        EXPECT_EQ(out.kind, c.kind) << instClassName(c.cls);
    }
}

TEST_F(EngineCommonTest, RightExitRightTargetIsCorrect)
{
    OwnedBlock blk = blockEndingWith(0x40, 2, InstClass::Jump, true,
                                     0x99);
    ExitPrediction p;
    p.found = true;
    p.offset = 2;
    p.pc = 0x42;
    p.src = SelSrc::Target;
    PredictOutcome out = compareWithActual(p, { 0x99, true }, blk.view());
    EXPECT_TRUE(out.correct);
}

TEST_F(EngineCommonTest, ApplyRasOps)
{
    OwnedBlock call = blockEndingWith(0x40, 1, InstClass::Call, true,
                                      0x100);
    applyRasOp(ras_, call.view());
    EXPECT_EQ(ras_.depth(), 1u);
    EXPECT_EQ(ras_.top(), 0x42u);   // address after the call

    OwnedBlock ret = blockEndingWith(0x100, 0, InstClass::Return, true,
                                     0x42);
    applyRasOp(ras_, ret.view());
    EXPECT_EQ(ras_.depth(), 0u);

    OwnedBlock plain = blockEndingWith(0x42, 1, InstClass::Jump, true,
                                       0x60);
    applyRasOp(ras_, plain.view());
    EXPECT_EQ(ras_.depth(), 0u);
}

TEST_F(EngineCommonTest, TargetArrayUpdateSkipsReturnsAndNear)
{
    // Returns are RAS-predicted: never stored.
    OwnedBlock ret = blockEndingWith(0x40, 1, InstClass::Return, true,
                                     0x99);
    updateTargetArray(nls_, 0x40, 0, ret.view(), 8, false);
    EXPECT_EQ(nls_.predict(0x40, 1, 0).target, 0u);

    // Near conditional targets are computed, not stored -- but only
    // when near-block encoding is on.
    OwnedBlock near = blockEndingWith(0x40, 1, InstClass::CondBranch,
                                      true, 0x44);
    updateTargetArray(nls_, 0x40, 0, near.view(), 8, true);
    EXPECT_EQ(nls_.predict(0x40, 1, 0).target, 0u);
    updateTargetArray(nls_, 0x40, 0, near.view(), 8, false);
    EXPECT_EQ(nls_.predict(0x40, 1, 0).target, 0x44u);
}

TEST_F(EngineCommonTest, CountBlockStats)
{
    FetchStats stats;
    OwnedBlock blk;
    blk.startPc = 0x40;
    blk.insts.push_back({ 0x40, InstClass::NonBranch, false, 0 });
    blk.insts.push_back({ 0x41, InstClass::CondBranch, false, 0x44 });
    blk.insts.push_back({ 0x42, InstClass::CondBranch, false, 0x999 });
    blk.insts.push_back({ 0x43, InstClass::Call, true, 0x200 });
    blk.exitIdx = 3;
    blk.nextPc = 0x200;
    countBlockStats(stats, blk.view(), 8);
    EXPECT_EQ(stats.instructions, 4u);
    EXPECT_EQ(stats.blocksFetched, 1u);
    EXPECT_EQ(stats.branchesExecuted, 3u);
    EXPECT_EQ(stats.condExecuted, 2u);
    EXPECT_EQ(stats.nearBlockConds, 1u);    // 0x41 -> 0x44 same line
}

} // namespace
} // namespace mbbp

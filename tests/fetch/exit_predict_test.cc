/** @file Unit tests for the exit-prediction scan logic. */

#include "fetch/exit_predict.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

/** A PHT whose counters we can set per position. */
class ExitPredictTest : public ::testing::Test
{
  protected:
    ExitPredictTest()
        : pht_({ 6, 8, 2, 1 })
    {
    }

    void
    setTaken(unsigned pos, bool taken)
    {
        pht_.setCounterAt(idx_, pos,
                          SatCounter(2, taken ? 3 : 0));
    }

    BlockedPHT pht_;
    std::size_t idx_ = 0;
};

TEST_F(ExitPredictTest, AllNonBranchFallsThrough)
{
    BitVector codes(8, BitCode::NonBranch);
    ExitPrediction p = predictExit(codes, 0x40, 8, pht_, idx_);
    EXPECT_FALSE(p.found);
    EXPECT_EQ(p.src, SelSrc::FallThrough);
    EXPECT_EQ(p.numNotTaken, 0);
    EXPECT_FALSE(p.ghrInfo().endedTaken);
}

TEST_F(ExitPredictTest, ReturnStopsScan)
{
    BitVector codes(8, BitCode::NonBranch);
    codes[3] = BitCode::Return;
    codes[5] = BitCode::OtherBranch;    // must never be reached
    ExitPrediction p = predictExit(codes, 0x40, 8, pht_, idx_);
    EXPECT_TRUE(p.found);
    EXPECT_EQ(p.offset, 3u);
    EXPECT_EQ(p.pc, 0x43u);
    EXPECT_EQ(p.src, SelSrc::Ras);
}

TEST_F(ExitPredictTest, OtherBranchUsesTargetArray)
{
    BitVector codes(8, BitCode::NonBranch);
    codes[2] = BitCode::OtherBranch;
    ExitPrediction p = predictExit(codes, 0x40, 8, pht_, idx_);
    EXPECT_EQ(p.src, SelSrc::Target);
    EXPECT_EQ(p.offset, 2u);
}

TEST_F(ExitPredictTest, CondTakenPerPatternHistory)
{
    BitVector codes(8, BitCode::NonBranch);
    codes[1] = BitCode::CondLong;
    codes[4] = BitCode::CondLong;
    setTaken(1, false);
    setTaken(4, true);
    ExitPrediction p = predictExit(codes, 0x40, 8, pht_, idx_);
    EXPECT_TRUE(p.found);
    EXPECT_EQ(p.offset, 4u);
    EXPECT_EQ(p.src, SelSrc::Target);
    // One conditional scanned through as not taken.
    EXPECT_EQ(p.numNotTaken, 1);
    EXPECT_EQ(p.ghrInfo(), (GhrInfo{ 1, true }));
}

TEST_F(ExitPredictTest, NearCodesMapToLineSelectors)
{
    struct
    {
        BitCode code;
        SelSrc src;
    } cases[] = {
        { BitCode::CondPrevLine, SelSrc::LinePrev },
        { BitCode::CondSameLine, SelSrc::LineSame },
        { BitCode::CondNextLine, SelSrc::LineNext },
        { BitCode::CondNextLine2, SelSrc::LineNext2 },
    };
    for (auto &c : cases) {
        BitVector codes(8, BitCode::NonBranch);
        codes[2] = c.code;
        setTaken(2, true);
        ExitPrediction p = predictExit(codes, 0x40, 8, pht_, idx_);
        EXPECT_EQ(p.src, c.src);
    }
}

TEST_F(ExitPredictTest, AllCondNotTakenFallsThrough)
{
    BitVector codes(8, BitCode::CondLong);
    for (unsigned i = 0; i < 8; ++i)
        setTaken(i, false);
    ExitPrediction p = predictExit(codes, 0x40, 8, pht_, idx_);
    EXPECT_FALSE(p.found);
    EXPECT_EQ(p.numNotTaken, 8);
}

TEST_F(ExitPredictTest, WindowLengthRespected)
{
    BitVector codes(8, BitCode::NonBranch);
    codes[5] = BitCode::Return;
    ExitPrediction p = predictExit(codes, 0x40, 4, pht_, idx_);
    EXPECT_FALSE(p.found);      // return is outside the 4-wide window
}

TEST_F(ExitPredictTest, SelectorUsesLinePosition)
{
    BitVector codes(8, BitCode::NonBranch);
    codes[3] = BitCode::OtherBranch;
    // Block starting mid-line: pc 0x44 + 3 = 0x47, line pos 7.
    ExitPrediction p = predictExit(codes, 0x44, 4, pht_, idx_);
    Selector sel = p.selector(8);
    EXPECT_EQ(sel.src, SelSrc::Target);
    EXPECT_EQ(sel.pos, 7);
}

TEST(WindowCodes, TrueCodesComeFromStaticImage)
{
    StaticImage img;
    img.add({ 0x41, InstClass::CondBranch, false, 0x44 });
    img.add({ 0x42, InstClass::Return, true, 0x99 });
    BitVector codes = trueWindowCodes(img, 0x40, 4, 8, true);
    EXPECT_EQ(codes[0], BitCode::NonBranch);    // unknown pc
    EXPECT_EQ(codes[1], BitCode::CondSameLine);
    EXPECT_EQ(codes[2], BitCode::Return);
}

TEST(WindowCodes, BitTableStaleCodesDiffer)
{
    StaticImage img;
    img.add({ 0x40, InstClass::Jump, true, 0x80 });
    BitTable bit(4, 8);

    // Entry 0 was last written for aliasing line 4 (all non-branch).
    refreshBitEntries(bit, img, 4 * 8, 8, 8, false);
    BitVector stale = bitWindowCodes(bit, img, 0x40, 8, 8, false);
    EXPECT_EQ(stale[0], BitCode::NonBranch);    // stale view

    // After refreshing for line 8 (0x40/8), codes match the truth.
    refreshBitEntries(bit, img, 0x40, 8, 8, false);
    BitVector fresh = bitWindowCodes(bit, img, 0x40, 8, 8, false);
    EXPECT_EQ(fresh[0], BitCode::OtherBranch);
}

} // namespace
} // namespace mbbp

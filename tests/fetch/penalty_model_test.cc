/** @file Pins the entire Table 3 penalty matrix. */

#include "fetch/penalty_model.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

/** One Table 3 cell. */
struct Cell
{
    PenaltyKind kind;
    bool double_select;
    unsigned slot;
    unsigned cycles;
};

class Table3 : public ::testing::TestWithParam<Cell>
{
};

TEST_P(Table3, Matches)
{
    const Cell &c = GetParam();
    PenaltyModel m(c.double_select);
    EXPECT_EQ(m.cycles(c.kind, c.slot), c.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, Table3,
    ::testing::Values(
        // Conditional branch: 5 everywhere.
        Cell{ PenaltyKind::CondMispredict, false, 0, 5 },
        Cell{ PenaltyKind::CondMispredict, false, 1, 5 },
        Cell{ PenaltyKind::CondMispredict, true, 0, 5 },
        Cell{ PenaltyKind::CondMispredict, true, 1, 5 },
        // Return: 4 / 5.
        Cell{ PenaltyKind::ReturnMispredict, false, 0, 4 },
        Cell{ PenaltyKind::ReturnMispredict, false, 1, 5 },
        Cell{ PenaltyKind::ReturnMispredict, true, 0, 4 },
        Cell{ PenaltyKind::ReturnMispredict, true, 1, 5 },
        // Misfetch indirect: 4 / 5.
        Cell{ PenaltyKind::MisfetchIndirect, false, 0, 4 },
        Cell{ PenaltyKind::MisfetchIndirect, false, 1, 5 },
        Cell{ PenaltyKind::MisfetchIndirect, true, 0, 4 },
        Cell{ PenaltyKind::MisfetchIndirect, true, 1, 5 },
        // Misfetch immediate: 1 / 2.
        Cell{ PenaltyKind::MisfetchImmediate, false, 0, 1 },
        Cell{ PenaltyKind::MisfetchImmediate, false, 1, 2 },
        Cell{ PenaltyKind::MisfetchImmediate, true, 0, 1 },
        Cell{ PenaltyKind::MisfetchImmediate, true, 1, 2 },
        // Misselect: n/a / 1 single; 1 / 2 double.
        Cell{ PenaltyKind::Misselect, false, 0, 0 },
        Cell{ PenaltyKind::Misselect, false, 1, 1 },
        Cell{ PenaltyKind::Misselect, true, 0, 1 },
        Cell{ PenaltyKind::Misselect, true, 1, 2 },
        // GHR: same as misselect.
        Cell{ PenaltyKind::GhrMispredict, false, 0, 0 },
        Cell{ PenaltyKind::GhrMispredict, false, 1, 1 },
        Cell{ PenaltyKind::GhrMispredict, true, 0, 1 },
        Cell{ PenaltyKind::GhrMispredict, true, 1, 2 },
        // BIT: 1 / 1 single; n/a with double selection.
        Cell{ PenaltyKind::BitMispredict, false, 0, 1 },
        Cell{ PenaltyKind::BitMispredict, false, 1, 1 },
        Cell{ PenaltyKind::BitMispredict, true, 0, 0 },
        Cell{ PenaltyKind::BitMispredict, true, 1, 0 },
        // Bank conflict: 0 / 1.
        Cell{ PenaltyKind::BankConflict, false, 0, 0 },
        Cell{ PenaltyKind::BankConflict, false, 1, 1 },
        Cell{ PenaltyKind::BankConflict, true, 0, 0 },
        Cell{ PenaltyKind::BankConflict, true, 1, 1 }));

TEST(PenaltyModel, RefetchFootnoteIsOneCycle)
{
    EXPECT_EQ(PenaltyModel(false).refetchExtra(), 1u);
    EXPECT_EQ(PenaltyModel(true).refetchExtra(), 1u);
}

TEST(PenaltyModel, KindNamesAreStable)
{
    // Figure 9's legend keys off these names.
    EXPECT_STREQ(penaltyKindName(PenaltyKind::CondMispredict),
                 "mispredict");
    EXPECT_STREQ(penaltyKindName(PenaltyKind::Misselect),
                 "misselect");
    EXPECT_STREQ(penaltyKindName(PenaltyKind::BankConflict),
                 "bank-conflict");
}

TEST(PenaltyModelDeath, SlotRangeChecked)
{
    // Slots 2..7 are legal (the multi-block extension); beyond that
    // is a configuration bug.
    PenaltyModel m(false);
    EXPECT_EQ(m.cycles(PenaltyKind::CondMispredict, 2), 5u);
    EXPECT_DEATH((void)m.cycles(PenaltyKind::CondMispredict, 8),
                 "slot");
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the BEP / IPC_f metric bookkeeping. */

#include "fetch/fetch_stats.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(FetchStats, ChargeAccumulatesCyclesAndEvents)
{
    FetchStats s;
    s.charge(PenaltyKind::CondMispredict, 5);
    s.charge(PenaltyKind::CondMispredict, 6);
    s.charge(PenaltyKind::Misselect, 1);
    auto idx = static_cast<std::size_t>(PenaltyKind::CondMispredict);
    EXPECT_EQ(s.penaltyCycles[idx], 11u);
    EXPECT_EQ(s.penaltyEvents[idx], 2u);
    EXPECT_EQ(s.totalPenaltyCycles(), 12u);
}

TEST(FetchStats, FetchCyclesAddPenalties)
{
    FetchStats s;
    s.fetchRequests = 100;
    s.charge(PenaltyKind::BankConflict, 3);
    EXPECT_EQ(s.fetchCycles(), 103u);
}

TEST(FetchStats, BepIsPenaltyPerBranch)
{
    FetchStats s;
    s.branchesExecuted = 50;
    s.charge(PenaltyKind::CondMispredict, 25);
    EXPECT_DOUBLE_EQ(s.bep(), 0.5);
    EXPECT_DOUBLE_EQ(s.bepOf(PenaltyKind::CondMispredict), 0.5);
    EXPECT_DOUBLE_EQ(s.bepOf(PenaltyKind::Misselect), 0.0);
}

TEST(FetchStats, IpcFAndIpb)
{
    FetchStats s;
    s.instructions = 800;
    s.fetchRequests = 100;
    s.blocksFetched = 160;
    EXPECT_DOUBLE_EQ(s.ipcF(), 8.0);
    EXPECT_DOUBLE_EQ(s.ipb(), 5.0);
    s.charge(PenaltyKind::CondMispredict, 100);
    EXPECT_DOUBLE_EQ(s.ipcF(), 4.0);
}

TEST(FetchStats, EmptyStatsAreZeroNotNan)
{
    FetchStats s;
    EXPECT_DOUBLE_EQ(s.bep(), 0.0);
    EXPECT_DOUBLE_EQ(s.ipcF(), 0.0);
    EXPECT_DOUBLE_EQ(s.ipb(), 0.0);
    EXPECT_DOUBLE_EQ(s.nearBlockFraction(), 0.0);
}

TEST(FetchStats, AccumulateMergesTotals)
{
    FetchStats a, b;
    a.instructions = 10;
    a.fetchRequests = 2;
    a.branchesExecuted = 3;
    a.bbrPeak = 5;
    a.charge(PenaltyKind::Misselect, 1);
    b.instructions = 20;
    b.fetchRequests = 4;
    b.branchesExecuted = 7;
    b.bbrPeak = 2;
    b.charge(PenaltyKind::Misselect, 2);
    a.accumulate(b);
    EXPECT_EQ(a.instructions, 30u);
    EXPECT_EQ(a.fetchRequests, 6u);
    EXPECT_EQ(a.branchesExecuted, 10u);
    EXPECT_EQ(a.totalPenaltyCycles(), 3u);
    EXPECT_EQ(a.bbrPeak, 5u);   // max, not sum
}

TEST(FetchStats, NearBlockFraction)
{
    FetchStats s;
    s.condExecuted = 10;
    s.nearBlockConds = 7;
    EXPECT_DOUBLE_EQ(s.nearBlockFraction(), 0.7);
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the structured JSON event log. */

#include "obs/log.hh"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.hh"

namespace mbbp
{
namespace
{

/** EventLog is process-wide: route it to a temp file for the test's
 *  duration and silence it again afterwards. */
class ObsLog : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "mbbp_log_test_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".jsonl";
        std::remove(path_.c_str());
    }

    void TearDown() override
    {
        obs::EventLog::instance().configure(obs::LogLevel::Off, "");
        std::remove(path_.c_str());
    }

    std::vector<std::string> lines() const
    {
        std::ifstream in(path_);
        std::vector<std::string> out;
        std::string line;
        while (std::getline(in, line))
            out.push_back(line);
        return out;
    }

    std::string path_;
};

TEST_F(ObsLog, LevelNamesRoundTrip)
{
    EXPECT_STREQ(obs::logLevelName(obs::LogLevel::Debug), "debug");
    EXPECT_STREQ(obs::logLevelName(obs::LogLevel::Off), "off");
    EXPECT_EQ(obs::parseLogLevel("info"), obs::LogLevel::Info);
    EXPECT_EQ(obs::parseLogLevel("warning"), obs::LogLevel::Warn);
    EXPECT_EQ(obs::parseLogLevel("none"), obs::LogLevel::Off);
    EXPECT_FALSE(obs::parseLogLevel("loud").has_value());
}

TEST_F(ObsLog, DefaultLevelIsSilent)
{
    // A fresh process never configures the log in CLI tools; events
    // below the Off threshold must not open files or build strings.
    EXPECT_FALSE(
        obs::EventLog::instance().wants(obs::LogLevel::Error));
}

TEST_F(ObsLog, EventsRenderAsOneJsonObjectPerLine)
{
    obs::EventLog::instance().configure(obs::LogLevel::Info, path_);
    obs::LogEvent(obs::LogLevel::Info, "test.event")
        .str("text", "with \"quotes\" and\nnewline")
        .num("answer", uint64_t{ 42 })
        .num("ratio", 0.5)
        .boolean("flag", true)
        .job(7);

    std::vector<std::string> got = lines();
    ASSERT_EQ(got.size(), 1u);
    JsonValue doc = JsonValue::parse(got[0]);
    EXPECT_EQ(doc.find("level")->asString(), "info");
    EXPECT_EQ(doc.find("event")->asString(), "test.event");
    EXPECT_EQ(doc.find("text")->asString(),
              "with \"quotes\" and\nnewline");
    EXPECT_EQ(doc.find("answer")->asNumber(), 42.0);
    EXPECT_EQ(doc.find("ratio")->asNumber(), 0.5);
    EXPECT_TRUE(doc.find("flag")->asBool());
    EXPECT_EQ(doc.find("job")->asNumber(), 7.0);
    // ISO-8601 UTC with millisecond precision.
    const std::string &ts = doc.find("ts")->asString();
    ASSERT_EQ(ts.size(), 24u) << ts;
    EXPECT_EQ(ts[10], 'T');
    EXPECT_EQ(ts.back(), 'Z');
}

TEST_F(ObsLog, LevelThresholdFilters)
{
    obs::EventLog::instance().configure(obs::LogLevel::Warn, path_);
    obs::LogEvent(obs::LogLevel::Debug, "drop.debug");
    obs::LogEvent(obs::LogLevel::Info, "drop.info");
    obs::LogEvent(obs::LogLevel::Warn, "keep.warn");
    obs::LogEvent(obs::LogLevel::Error, "keep.error");

    std::vector<std::string> got = lines();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_NE(got[0].find("keep.warn"), std::string::npos);
    EXPECT_NE(got[1].find("keep.error"), std::string::npos);
}

TEST_F(ObsLog, ReconfigureAppendsToAnExistingFile)
{
    obs::EventLog::instance().configure(obs::LogLevel::Info, path_);
    obs::LogEvent(obs::LogLevel::Info, "first");
    // A daemon restart reopens the same path: append, don't truncate.
    obs::EventLog::instance().configure(obs::LogLevel::Info, path_);
    obs::LogEvent(obs::LogLevel::Info, "second");

    std::vector<std::string> got = lines();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_NE(got[0].find("first"), std::string::npos);
    EXPECT_NE(got[1].find("second"), std::string::npos);
}

TEST_F(ObsLog, UnwritablePathThrows)
{
    EXPECT_THROW(obs::EventLog::instance().configure(
                     obs::LogLevel::Info,
                     "/nonexistent-dir/event.log"),
                 std::runtime_error);
}

} // namespace
} // namespace mbbp

/** @file Histogram metric tests: bucket math, quantiles, striping,
 *  the accumulate-then-flush discipline, and snapshot plumbing. */

#include "obs/obs.hh"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

/** Every test starts and ends with a quiet, empty registry. */
class Histo : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setEnabled(false);
        obs::resetAll();
    }

    void TearDown() override
    {
        obs::setEnabled(false);
        obs::resetAll();
    }
};

TEST_F(Histo, BucketIndexIsLogTwoMagnitude)
{
    // Bucket 0 holds zeros; bucket b >= 1 holds [2^(b-1), 2^b).
    EXPECT_EQ(obs::histogramBucket(0), 0u);
    EXPECT_EQ(obs::histogramBucket(1), 1u);
    EXPECT_EQ(obs::histogramBucket(2), 2u);
    EXPECT_EQ(obs::histogramBucket(3), 2u);
    EXPECT_EQ(obs::histogramBucket(4), 3u);
    EXPECT_EQ(obs::histogramBucket(7), 3u);
    EXPECT_EQ(obs::histogramBucket(8), 4u);
    EXPECT_EQ(obs::histogramBucket(255), 8u);
    EXPECT_EQ(obs::histogramBucket(256), 9u);
    EXPECT_EQ(obs::histogramBucket(UINT64_MAX), 64u);
    // 65 buckets cover the whole range.
    EXPECT_LT(obs::histogramBucket(UINT64_MAX),
              obs::kHistogramBuckets);
}

TEST_F(Histo, BucketMaxIsInclusiveUpperBound)
{
    EXPECT_EQ(obs::histogramBucketMax(0), 0u);
    EXPECT_EQ(obs::histogramBucketMax(1), 1u);
    EXPECT_EQ(obs::histogramBucketMax(2), 3u);
    EXPECT_EQ(obs::histogramBucketMax(3), 7u);
    EXPECT_EQ(obs::histogramBucketMax(10), 1023u);
    EXPECT_EQ(obs::histogramBucketMax(64), UINT64_MAX);
    // Every value lands in the bucket whose bound covers it.
    for (uint64_t v : { 0ull, 1ull, 5ull, 100ull, 65536ull }) {
        unsigned b = obs::histogramBucket(v);
        EXPECT_LE(v, obs::histogramBucketMax(b));
        if (b > 0) {
            EXPECT_GT(v, obs::histogramBucketMax(b - 1));
        }
    }
}

TEST_F(Histo, HistogramDataAccumulatesLocally)
{
    obs::HistogramData d;
    EXPECT_TRUE(d.empty());
    d.record(0);
    d.record(3);
    d.record(1000);
    EXPECT_FALSE(d.empty());
    EXPECT_EQ(d.count, 3u);
    EXPECT_EQ(d.sum, 1003u);
    EXPECT_EQ(d.max, 1000u);
    EXPECT_EQ(d.buckets[0], 1u);
    EXPECT_EQ(d.buckets[obs::histogramBucket(3)], 1u);
    EXPECT_EQ(d.buckets[obs::histogramBucket(1000)], 1u);
}

TEST_F(Histo, EmptySampleQuantilesAreZero)
{
    obs::HistogramSample s;
    EXPECT_EQ(s.quantile(0.5), 0.0);
    EXPECT_EQ(s.quantile(0.99), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST_F(Histo, QuantileReturnsBucketBoundClampedToMax)
{
    obs::HistogramSample s;
    obs::HistogramData d;
    for (uint64_t v = 1; v <= 100; ++v)
        d.record(v);
    s.count = d.count;
    s.sum = d.sum;
    s.max = d.max;
    s.buckets = d.buckets;

    // rank 50 falls in bucket 6 ([32, 64), cumulative 63): the
    // estimate is that bucket's inclusive bound.
    EXPECT_EQ(s.quantile(0.50), 63.0);
    // High quantiles land in the last occupied bucket, whose bound
    // (127) clamps to the exact recorded max.
    EXPECT_EQ(s.quantile(0.90), 100.0);
    EXPECT_EQ(s.quantile(0.99), 100.0);
    EXPECT_EQ(s.quantile(1.00), 100.0);
    // Below-range q clamps to the first recorded value's bucket.
    EXPECT_EQ(s.quantile(0.0), 1.0);
    EXPECT_EQ(s.quantile(-3.0), 1.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5050.0 / 100.0);
}

TEST_F(Histo, QuantileOfAllZerosIsZero)
{
    obs::HistogramSample s;
    s.count = 5;
    s.buckets[0] = 5;
    EXPECT_EQ(s.quantile(0.5), 0.0);
    EXPECT_EQ(s.quantile(0.99), 0.0);
}

#ifndef MBBP_OBS_DISABLED

/** Registry lookup in a snapshot: registrations persist for the
 *  process lifetime, so tests must key on their own names rather
 *  than assume an otherwise-empty registry. */
const obs::HistogramSample *
findHist(const obs::Snapshot &snap, const std::string &name)
{
    for (const auto &h : snap.histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

TEST_F(Histo, DisabledRecordIsDropped)
{
    obs::Histogram &h = obs::histogram("test.hist.disabled");
    h.record(42);
    EXPECT_EQ(h.count(), 0u);
}

TEST_F(Histo, RecordSampleRoundTrips)
{
    obs::setEnabled(true);
    obs::Histogram &h = obs::histogram("test.hist.basic");
    h.record(0);
    h.record(1);
    h.record(6);
    h.record(100000);
    obs::HistogramSample s = h.sample();
    EXPECT_EQ(s.name, "test.hist.basic");
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(s.sum, 100007u);
    EXPECT_EQ(s.max, 100000u);
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[obs::histogramBucket(6)], 1u);
    EXPECT_EQ(s.buckets[obs::histogramBucket(100000)], 1u);
}

TEST_F(Histo, BulkAddMergesADistribution)
{
    obs::setEnabled(true);
    obs::Histogram &h = obs::histogram("test.hist.add");
    h.record(5);

    obs::HistogramData d;
    d.record(5);
    d.record(200);
    h.add(d);

    obs::HistogramSample s = h.sample();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.sum, 210u);
    EXPECT_EQ(s.max, 200u);
    EXPECT_EQ(s.buckets[obs::histogramBucket(5)], 2u);
}

TEST_F(Histo, FlushHistogramSkipsDisabledAndEmpty)
{
    obs::HistogramData d;
    d.record(7);

    // Disabled: nothing registers under this name.
    obs::flushHistogram("test.hist.flush", d);
    EXPECT_EQ(findHist(obs::snapshot(), "test.hist.flush"), nullptr);

    // Enabled but empty: still nothing.
    obs::setEnabled(true);
    obs::flushHistogram("test.hist.flush", obs::HistogramData{});
    EXPECT_EQ(findHist(obs::snapshot(), "test.hist.flush"), nullptr);

    // Enabled and non-empty: one merge.
    obs::flushHistogram("test.hist.flush", d);
    obs::Snapshot snap = obs::snapshot();
    const obs::HistogramSample *s =
        findHist(snap, "test.hist.flush");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->count, 1u);
    EXPECT_EQ(s->sum, 7u);
}

TEST_F(Histo, SnapshotSortsHistogramsByName)
{
    obs::setEnabled(true);
    obs::histogram("test.hist.zz").record(1);
    obs::histogram("test.hist.aa").record(2);
    obs::histogram("test.hist.mm").record(3);
    obs::Snapshot snap = obs::snapshot();
    ASSERT_NE(findHist(snap, "test.hist.aa"), nullptr);
    ASSERT_NE(findHist(snap, "test.hist.mm"), nullptr);
    ASSERT_NE(findHist(snap, "test.hist.zz"), nullptr);
    EXPECT_TRUE(std::is_sorted(
        snap.histograms.begin(), snap.histograms.end(),
        [](const auto &a, const auto &b) { return a.name < b.name; }));
}

TEST_F(Histo, ResetZeroesEverything)
{
    obs::setEnabled(true);
    obs::Histogram &h = obs::histogram("test.hist.reset");
    h.record(9);
    h.record(1 << 20);
    h.reset();
    obs::HistogramSample s = h.sample();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.sum, 0u);
    EXPECT_EQ(s.max, 0u);

    h.record(3);
    obs::resetAll();
    EXPECT_EQ(h.count(), 0u);
}

TEST_F(Histo, StripedRecordsSurviveManyThreads)
{
    obs::setEnabled(true);
    obs::Histogram &h = obs::histogram("test.hist.threads");
    constexpr unsigned kThreads = 8;    // < kStripes: counts exact
    constexpr uint64_t kPerThread = 5000;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t)
        workers.emplace_back([&h] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                h.record(i & 1023);
        });
    for (auto &w : workers)
        w.join();

    obs::HistogramSample s = h.sample();
    EXPECT_EQ(s.count, kThreads * kPerThread);
    EXPECT_EQ(s.max, 1023u);
    // Each thread records the same value set, so the merged sum is
    // exactly kThreads times one thread's.
    uint64_t one = 0;
    for (uint64_t i = 0; i < kPerThread; ++i)
        one += i & 1023;
    EXPECT_EQ(s.sum, kThreads * one);
}

#else // MBBP_OBS_DISABLED

TEST_F(Histo, CompiledOutLayerIsInert)
{
    obs::Histogram &h = obs::histogram("test.hist.off");
    obs::setEnabled(true);      // must stay off
    h.record(42);
    obs::HistogramData d;
    d.record(7);
    h.add(d);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sample().count, 0u);
    obs::flushHistogram("test.hist.off", d);
    EXPECT_TRUE(obs::snapshot().histograms.empty());
}

#endif // MBBP_OBS_DISABLED

} // namespace
} // namespace mbbp

/** @file Bench regression gate tests: glob matching, document
 *  flattening, rule judgment in both directions, and the report
 *  writers. */

#include "obs/bench_diff.hh"

#include <gtest/gtest.h>

#include "util/json.hh"

namespace mbbp
{
namespace
{

using obs::DiffDirection;
using obs::DiffStatus;
using obs::MetricRule;

TEST(GlobMatch, CoversWholeTextWithStars)
{
    EXPECT_TRUE(obs::globMatch("abc", "abc"));
    EXPECT_FALSE(obs::globMatch("abc", "abcd"));
    EXPECT_FALSE(obs::globMatch("abc", "ab"));
    EXPECT_TRUE(obs::globMatch("*", ""));
    EXPECT_TRUE(obs::globMatch("*", "anything.at[3].all"));
    EXPECT_TRUE(obs::globMatch("modes[*].wallSeconds",
                               "modes[3].wallSeconds"));
    EXPECT_FALSE(obs::globMatch("modes[*].wallSeconds",
                                "modes[3].threads"));
    EXPECT_TRUE(obs::globMatch("metrics.counters.*",
                               "metrics.counters.engine.dual.runs"));
    // '*' crosses dots: one star spans whole dotted tails.
    EXPECT_TRUE(obs::globMatch("a.*.z", "a.b.c.d.z"));
    EXPECT_FALSE(obs::globMatch("a.*.z", "a.b.c.d.y"));
    // Multiple stars backtrack; matching is case-sensitive.
    EXPECT_TRUE(obs::globMatch("*Seconds*", "modes[0].wallSeconds"));
    EXPECT_FALSE(obs::globMatch("*seconds*", "modes[0].wallSeconds"));
    EXPECT_FALSE(obs::globMatch("*Seconds*x", "wallSeconds"));
}

TEST(FlattenScalars, WalksObjectsArraysAndBools)
{
    JsonValue doc = JsonValue::parse(R"({
        "a": 1.5,
        "nested": { "b": 2, "deep": { "c": 3 } },
        "arr": [ 10, { "d": 11 } ],
        "flag": true,
        "label": "skipped",
        "nothing": null
    })");
    auto flat = obs::flattenScalars(doc);
    ASSERT_EQ(flat.size(), 6u);
    EXPECT_EQ(flat[0].first, "a");
    EXPECT_EQ(flat[0].second, 1.5);
    EXPECT_EQ(flat[1].first, "nested.b");
    EXPECT_EQ(flat[2].first, "nested.deep.c");
    EXPECT_EQ(flat[3].first, "arr[0]");
    EXPECT_EQ(flat[3].second, 10.0);
    EXPECT_EQ(flat[4].first, "arr[1].d");
    EXPECT_EQ(flat[5].first, "flag");
    EXPECT_EQ(flat[5].second, 1.0);     // bools gate as 0/1
}

/** Find one path's verdict in a diff result. */
const obs::MetricDiff *
diffFor(const obs::BenchDiffResult &r, const std::string &path)
{
    for (const auto &d : r.diffs)
        if (d.path == path)
            return &d;
    return nullptr;
}

obs::BenchDiffResult
diffDocs(const std::string &baseline, const std::string &current,
         const std::vector<MetricRule> &rules)
{
    return obs::diffBenchJson(JsonValue::parse(baseline),
                              JsonValue::parse(current), rules);
}

TEST(BenchDiff, ExactRuleFailsOnAnyDrift)
{
    std::vector<MetricRule> rules = {
        { "count", DiffDirection::Exact, 0.0 },
    };
    EXPECT_FALSE(diffDocs(R"({"count": 7})", R"({"count": 7})", rules)
                     .hasRegression());
    obs::BenchDiffResult r =
        diffDocs(R"({"count": 7})", R"({"count": 8})", rules);
    EXPECT_TRUE(r.hasRegression());
    ASSERT_NE(diffFor(r, "count"), nullptr);
    EXPECT_EQ(diffFor(r, "count")->status, DiffStatus::Regression);
}

TEST(BenchDiff, HigherBetterToleratesNoiseBothWays)
{
    std::vector<MetricRule> rules = {
        { "speedup", DiffDirection::HigherBetter, 0.20 },
    };
    // Within the band either way: Ok.
    EXPECT_EQ(
        diffFor(diffDocs(R"({"speedup": 2.0})", R"({"speedup": 1.7})",
                         rules),
                "speedup")
            ->status,
        DiffStatus::Ok);
    // Below baseline * (1 - tol): Regression.
    obs::BenchDiffResult worse = diffDocs(R"({"speedup": 2.0})",
                                          R"({"speedup": 1.5})",
                                          rules);
    EXPECT_EQ(diffFor(worse, "speedup")->status,
              DiffStatus::Regression);
    EXPECT_EQ(worse.regressions, 1u);
    EXPECT_LT(diffFor(worse, "speedup")->relDelta, 0.0);
    // Above baseline * (1 + tol): Improved, never fails.
    obs::BenchDiffResult better = diffDocs(R"({"speedup": 2.0})",
                                           R"({"speedup": 2.6})",
                                           rules);
    EXPECT_EQ(diffFor(better, "speedup")->status,
              DiffStatus::Improved);
    EXPECT_FALSE(better.hasRegression());
    EXPECT_EQ(better.improvements, 1u);
}

TEST(BenchDiff, LowerBetterIsTheMirrorImage)
{
    std::vector<MetricRule> rules = {
        { "overhead", DiffDirection::LowerBetter, 0.10 },
    };
    EXPECT_EQ(diffFor(diffDocs(R"({"overhead": 1.0})",
                               R"({"overhead": 1.2})", rules),
                      "overhead")
                  ->status,
              DiffStatus::Regression);
    EXPECT_EQ(diffFor(diffDocs(R"({"overhead": 1.0})",
                               R"({"overhead": 0.8})", rules),
                      "overhead")
                  ->status,
              DiffStatus::Improved);
}

TEST(BenchDiff, FirstMatchingRuleWins)
{
    std::vector<MetricRule> rules = {
        { "m.wall", DiffDirection::Ignore, 0.0 },
        { "m.*", DiffDirection::Exact, 0.0 },
    };
    obs::BenchDiffResult r =
        diffDocs(R"({"m": {"wall": 1, "jobs": 4}})",
                 R"({"m": {"wall": 99, "jobs": 4}})", rules);
    EXPECT_FALSE(r.hasRegression());
    EXPECT_EQ(diffFor(r, "m.wall")->status, DiffStatus::Ignored);
    EXPECT_EQ(diffFor(r, "m.wall")->rule, "m.wall");
    EXPECT_EQ(diffFor(r, "m.jobs")->status, DiffStatus::Ok);
    EXPECT_EQ(diffFor(r, "m.jobs")->rule, "m.*");
}

TEST(BenchDiff, RemovedMetricsAreInformationalOnly)
{
    // A metric that vanished -- even a gated one -- reads as
    // "removed", not as a regression: the gate judges only metrics
    // both documents measured, so renames and retired metrics never
    // fail the build.
    std::vector<MetricRule> rules = {
        { "gone", DiffDirection::Exact, 0.0 },
    };
    obs::BenchDiffResult r =
        diffDocs(R"({"gone": 1, "kept": 2})", R"({"kept": 2})",
                 rules);
    EXPECT_FALSE(r.hasRegression());
    ASSERT_NE(diffFor(r, "gone"), nullptr);
    EXPECT_EQ(diffFor(r, "gone")->status, DiffStatus::Removed);
    EXPECT_FALSE(diffFor(r, "gone")->hasCurrent);
    // Unruled metrics never gate, present or not.
    EXPECT_EQ(diffFor(r, "kept")->status, DiffStatus::Info);

    // The human-readable report calls both sides out.
    std::string text = obs::benchDiffReportText(r);
    EXPECT_NE(text.find("removed gone"), std::string::npos);
    EXPECT_NE(text.find("0 regression(s)"), std::string::npos);
}

TEST(BenchDiff, RemovedUnderIgnoreRuleStaysIgnored)
{
    std::vector<MetricRule> rules = {
        { "wall", DiffDirection::Ignore, 0.0 },
    };
    obs::BenchDiffResult r =
        diffDocs(R"({"wall": 1.5})", R"({})", rules);
    EXPECT_EQ(diffFor(r, "wall")->status, DiffStatus::Ignored);
    EXPECT_FALSE(r.hasRegression());
}

TEST(BenchDiff, DefaultRulesBandTheBatchedSpeedups)
{
    obs::BenchDiffResult r = diffDocs(
        R"({"batchedSpeedup1T": 4.0, "batchedSpeedup8T": 4.0})",
        R"({"batchedSpeedup1T": 3.5, "batchedSpeedup8T": 1.5})",
        obs::defaultPerfSweepRules());
    // Within the noise band: fine. Collapsed: a regression.
    EXPECT_EQ(diffFor(r, "batchedSpeedup1T")->status, DiffStatus::Ok);
    EXPECT_EQ(diffFor(r, "batchedSpeedup8T")->status,
              DiffStatus::Regression);
}

TEST(BenchDiff, NewMetricsAreInformationalOnly)
{
    std::vector<MetricRule> rules = {
        { "*", DiffDirection::Exact, 0.0 },
    };
    obs::BenchDiffResult r =
        diffDocs(R"({"old": 1})", R"({"old": 1, "new": 5})", rules);
    EXPECT_FALSE(r.hasRegression());
    ASSERT_NE(diffFor(r, "new"), nullptr);
    EXPECT_EQ(diffFor(r, "new")->status, DiffStatus::Added);
    EXPECT_FALSE(diffFor(r, "new")->hasBaseline);
}

TEST(BenchDiff, DefaultRulesGateACraftedPerfSweepDoc)
{
    // A miniature BENCH_perf_sweep.json shape: deterministic fields
    // exact, wall clocks free, speedups banded.
    const std::string baseline = R"({
        "jobs": 16, "byteIdentical": true,
        "hardwareThreads": 8,
        "modes": [ { "threads": 1, "wallSeconds": 2.0 } ],
        "decodeOnceSpeedup1T": 2.0,
        "threadSpeedupShared": 3.5,
        "metrics": { "counters": { "engine.single.runs": 64,
                                   "sweep.pool.steal": 17 },
                     "timers": { "sweep.job": { "calls": 64,
                                                "totalNs": 5 } } }
    })";
    const std::string current = R"({
        "jobs": 16, "byteIdentical": true,
        "hardwareThreads": 2,
        "modes": [ { "threads": 1, "wallSeconds": 9.0 } ],
        "decodeOnceSpeedup1T": 0.9,
        "threadSpeedupShared": 1.1,
        "metrics": { "counters": { "engine.single.runs": 65,
                                   "sweep.pool.steal": 99 },
                     "timers": { "sweep.job": { "calls": 64,
                                                "totalNs": 9999 } } }
    })";
    obs::BenchDiffResult r =
        diffDocs(baseline, current, obs::defaultPerfSweepRules());

    // Regressions: the speedup collapse and the counter drift.
    EXPECT_EQ(diffFor(r, "decodeOnceSpeedup1T")->status,
              DiffStatus::Regression);
    EXPECT_EQ(
        diffFor(r, "metrics.counters.engine.single.runs")->status,
        DiffStatus::Regression);
    // Host-dependent noise never gates.
    EXPECT_EQ(diffFor(r, "hardwareThreads")->status,
              DiffStatus::Ignored);
    EXPECT_EQ(diffFor(r, "modes[0].wallSeconds")->status,
              DiffStatus::Ignored);
    EXPECT_EQ(diffFor(r, "threadSpeedupShared")->status,
              DiffStatus::Ignored);
    EXPECT_EQ(diffFor(r, "metrics.counters.sweep.pool.steal")->status,
              DiffStatus::Ignored);
    EXPECT_EQ(diffFor(r, "metrics.timers.sweep.job.totalNs")->status,
              DiffStatus::Ignored);
    // Shape fields stayed exact.
    EXPECT_EQ(diffFor(r, "jobs")->status, DiffStatus::Ok);
    EXPECT_EQ(diffFor(r, "byteIdentical")->status, DiffStatus::Ok);
    EXPECT_EQ(r.regressions, 2u);
}

TEST(BenchDiff, SelfDiffIsAlwaysClean)
{
    const std::string doc = R"({
        "jobs": 4, "decodeOnceSpeedup1T": 1.8,
        "metrics": { "counters": { "a.b": 3 } }
    })";
    obs::BenchDiffResult r =
        diffDocs(doc, doc, obs::defaultPerfSweepRules());
    EXPECT_FALSE(r.hasRegression());
    EXPECT_EQ(r.improvements, 0u);
    for (const auto &d : r.diffs)
        EXPECT_NE(d.status, DiffStatus::Regression) << d.path;
}

TEST(BenchDiff, ParseRulesRoundTripsAndValidates)
{
    JsonValue doc = JsonValue::parse(R"({ "rules": [
        { "pattern": "a.*", "direction": "higher_better",
          "tolerance": 0.25 },
        { "pattern": "b", "direction": "ignore" },
        { "pattern": "c", "direction": "exact" },
        { "pattern": "d", "direction": "lower_better",
          "tolerance": 0.5 }
    ] })");
    std::vector<MetricRule> rules = obs::parseRules(doc);
    ASSERT_EQ(rules.size(), 4u);
    EXPECT_EQ(rules[0].pattern, "a.*");
    EXPECT_EQ(rules[0].dir, DiffDirection::HigherBetter);
    EXPECT_DOUBLE_EQ(rules[0].tolerance, 0.25);
    EXPECT_EQ(rules[1].dir, DiffDirection::Ignore);
    EXPECT_EQ(rules[2].dir, DiffDirection::Exact);
    EXPECT_EQ(rules[3].dir, DiffDirection::LowerBetter);

    EXPECT_THROW(obs::parseRules(JsonValue::parse(R"({"x": 1})")),
                 std::runtime_error);
    EXPECT_THROW(obs::parseRules(JsonValue::parse(
                     R"({"rules": [ { "direction": "exact" } ]})")),
                 std::runtime_error);
    EXPECT_THROW(obs::parseRules(JsonValue::parse(
                     R"({"rules": [ { "pattern": "p",
                                      "direction": "sideways" } ]})")),
                 std::runtime_error);
}

TEST(BenchDiff, ReportsAreStableAndParseable)
{
    std::vector<MetricRule> rules = {
        { "up", DiffDirection::HigherBetter, 0.1 },
        { "n", DiffDirection::Exact, 0.0 },
    };
    obs::BenchDiffResult r = diffDocs(R"({"up": 2.0, "n": 3})",
                                      R"({"up": 1.0, "n": 3})",
                                      rules);
    std::string json = obs::benchDiffReportJson(r);
    EXPECT_EQ(json, obs::benchDiffReportJson(r));    // byte-stable

    JsonValue parsed = JsonValue::parse(json);
    ASSERT_TRUE(parsed.isObject());
    ASSERT_NE(parsed.find("regressions"), nullptr);
    EXPECT_EQ(parsed.find("regressions")->asNumber(), 1.0);
    ASSERT_NE(parsed.find("diffs"), nullptr);
    EXPECT_TRUE(parsed.find("diffs")->isArray());

    std::string text = obs::benchDiffReportText(r);
    EXPECT_NE(text.find("up"), std::string::npos);
    EXPECT_NE(text.find("regression"), std::string::npos);
}

} // namespace
} // namespace mbbp

/** @file Unit tests for obs::Domain scoping and chain flushing. */

#include "obs/obs.hh"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/attribution.hh"
#include "util/json.hh"

namespace mbbp
{
namespace
{

/** Clean default-domain slate; domains under test are locals. */
class ObsDomain : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setEnabled(true);
        obs::setTracing(false);
        obs::resetAll();
    }

    void TearDown() override
    {
        obs::setEnabled(false);
        obs::setTracing(false);
        obs::setAttributionEnabled(false);
        obs::resetAll();
    }
};

#ifndef MBBP_OBS_DISABLED

TEST_F(ObsDomain, InstrumentsAreIsolatedBetweenDomains)
{
    obs::Domain a("a");
    obs::Domain b("b");
    a.counter("test.iso").add(3);
    b.counter("test.iso").add(5);
    EXPECT_EQ(a.counter("test.iso").value(), 3u);
    EXPECT_EQ(b.counter("test.iso").value(), 5u);
    EXPECT_EQ(obs::counter("test.iso").value(), 0u);
    EXPECT_NE(&a.counter("test.iso"), &b.counter("test.iso"));
}

TEST_F(ObsDomain, CurrentDomainDefaultsToTheProcessDomain)
{
    EXPECT_EQ(&obs::currentDomain(), &obs::defaultDomain());
    EXPECT_EQ(obs::defaultDomain().parent(), nullptr);
}

TEST_F(ObsDomain, ScopedDomainInstallsAndRestores)
{
    obs::Domain job("job");
    {
        obs::ScopedDomain scope(&job);
        EXPECT_EQ(&obs::currentDomain(), &job);
        {
            // Null means "keep whatever is current".
            obs::ScopedDomain keep(nullptr);
            EXPECT_EQ(&obs::currentDomain(), &job);
        }
        EXPECT_EQ(&obs::currentDomain(), &job);
    }
    EXPECT_EQ(&obs::currentDomain(), &obs::defaultDomain());
}

TEST_F(ObsDomain, FlushCounterWalksTheParentChain)
{
    obs::Domain job("job", &obs::defaultDomain());
    {
        obs::ScopedDomain scope(&job);
        obs::flushCounter("test.chain", 7);
    }
    // The job's isolated share and the process aggregate both count.
    EXPECT_EQ(job.counter("test.chain").value(), 7u);
    EXPECT_EQ(obs::counter("test.chain").value(), 7u);
}

TEST_F(ObsDomain, ParentlessDomainDoesNotLeakToTheDefault)
{
    obs::Domain detached("detached");
    {
        obs::ScopedDomain scope(&detached);
        obs::flushCounter("test.detached", 4);
    }
    EXPECT_EQ(detached.counter("test.detached").value(), 4u);
    EXPECT_EQ(obs::counter("test.detached").value(), 0u);
}

TEST_F(ObsDomain, FlushHistogramReachesEveryChainDomain)
{
    obs::Domain job("job", &obs::defaultDomain());
    obs::HistogramData local;
    local.record(100);
    local.record(1000);
    {
        obs::ScopedDomain scope(&job);
        obs::flushHistogram("test.hist", local);
    }
    EXPECT_EQ(job.histogram("test.hist").count(), 2u);
    EXPECT_EQ(obs::histogram("test.hist").count(), 2u);
}

TEST_F(ObsDomain, NamedScopedTimerFlushesIntoTheChain)
{
    obs::Domain job("job", &obs::defaultDomain());
    {
        obs::ScopedDomain scope(&job);
        obs::ScopedTimer span("test.chained_timer");
    }
    EXPECT_EQ(job.timer("test.chained_timer").calls(), 1u);
    EXPECT_EQ(obs::timer("test.chained_timer").calls(), 1u);
}

TEST_F(ObsDomain, CurrentDomainIsPerThread)
{
    obs::Domain a("a", &obs::defaultDomain());
    obs::Domain b("b", &obs::defaultDomain());
    auto work = [](obs::Domain *d, uint64_t n) {
        obs::ScopedDomain scope(d);
        obs::flushCounter("test.threaded", n);
    };
    std::thread ta(work, &a, 11);
    std::thread tb(work, &b, 22);
    ta.join();
    tb.join();
    EXPECT_EQ(a.counter("test.threaded").value(), 11u);
    EXPECT_EQ(b.counter("test.threaded").value(), 22u);
    EXPECT_EQ(obs::counter("test.threaded").value(), 33u);
}

TEST_F(ObsDomain, SpansLandOnlyInTracingDomains)
{
    obs::Domain job("job", &obs::defaultDomain());
    job.setTracing(true);
    ASSERT_FALSE(obs::defaultDomain().tracingOn());
    {
        obs::ScopedDomain scope(&job);
        obs::ScopedTimer span("test.span", "labelled");
    }
    EXPECT_EQ(job.spanCount(), 1u);
    EXPECT_EQ(obs::spanCount(), 0u);
}

TEST_F(ObsDomain, SpanLimitDropsAndCounts)
{
    obs::Domain job("job");
    job.setTracing(true);
    job.setSpanLimit(2);
    for (unsigned i = 0; i < 5; ++i)
        job.recordSpan("s" + std::to_string(i), 0, i * 10, 5);
    EXPECT_EQ(job.spanCount(), 2u);
    EXPECT_EQ(job.counter("obs.spans_dropped").value(), 3u);
}

TEST_F(ObsDomain, ChromeTraceEmbedsTraceIdAndLabel)
{
    obs::Domain job("job-7");
    job.setTracing(true);
    job.recordSpan("phase", 1, 1000, 500);
    JsonValue doc =
        JsonValue::parse(job.chromeTraceJson("abc123"));
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->size(), 1u);
    const JsonValue *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("traceId")->asString(), "abc123");
    EXPECT_EQ(other->find("domain")->asString(), "job-7");

    // Without a trace id the document omits otherData entirely, so
    // the default-domain export is byte-compatible with before.
    JsonValue bare = JsonValue::parse(job.chromeTraceJson());
    EXPECT_EQ(bare.find("otherData"), nullptr);
}

TEST_F(ObsDomain, AttributionFlushWalksTheChain)
{
    obs::Domain job("job", &obs::defaultDomain());
    obs::setAttributionEnabled(true);
    {
        obs::ScopedDomain scope(&job);
        obs::AttributionSink sink;
        sink.record(0x1000, 2, obs::LossCause::PhtDirection, 9);
        sink.record(0x1000, 2, obs::LossCause::PhtDirection, 7);
        sink.flush();
    }
    EXPECT_EQ(job.attribution().totalEvents(), 2u);
    EXPECT_EQ(obs::attributedEvents(), 2u);
    std::vector<obs::AttributionRow> rows = job.attribution().rows(0);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].blockPc, 0x1000u);
    EXPECT_EQ(rows[0].slot, 2u);
    EXPECT_EQ(rows[0].cycles, 16u);
}

TEST_F(ObsDomain, SnapshotCoversOnlyTheDomainsOwnInstruments)
{
    obs::Domain job("job", &obs::defaultDomain());
    obs::counter("test.global_only").add(1);
    job.counter("test.job_only").add(1);
    obs::Snapshot snap = job.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "test.job_only");
}

TEST_F(ObsDomain, ResetClearsInstrumentsSpansAndAttribution)
{
    obs::Domain job("job");
    job.setTracing(true);
    job.counter("test.reset").add(5);
    job.recordSpan("s", 0, 0, 1);
    job.attribution().mergeCell(8, 1, 2, {});
    job.reset();
    EXPECT_EQ(job.counter("test.reset").value(), 0u);
    EXPECT_EQ(job.spanCount(), 0u);
    EXPECT_EQ(job.attribution().totalEvents(), 0u);
}

#else // MBBP_OBS_DISABLED

TEST_F(ObsDomain, DisabledDomainIsInert)
{
    obs::Domain job("job", &obs::defaultDomain());
    {
        obs::ScopedDomain scope(&job);
        obs::flushCounter("test.off", 5);
        obs::ScopedTimer span("test.off_timer");
    }
    EXPECT_EQ(job.counter("test.off").value(), 0u);
    EXPECT_EQ(job.spanCount(), 0u);
    EXPECT_TRUE(job.snapshot().counters.empty());
    JsonValue doc = JsonValue::parse(job.chromeTraceJson("id"));
    EXPECT_EQ(doc.find("traceEvents")->size(), 0u);
}

#endif // MBBP_OBS_DISABLED

} // namespace
} // namespace mbbp

/** @file Unit tests for the OpenMetrics exposition and validator. */

#include "obs/prom.hh"

#include <string>

#include <gtest/gtest.h>

#include "obs/obs.hh"

namespace mbbp
{
namespace
{

/** A hand-built snapshot keeps these tests independent of the live
 *  registry (and identical under MBBP_OBS_DISABLED). */
obs::Snapshot
sampleSnapshot()
{
    obs::Snapshot snap;

    obs::CounterSample c;
    c.name = "predict.pht.lookup";
    c.value = 1234;
    snap.counters.push_back(c);

    obs::GaugeSample g;
    g.name = "pool.queue-depth";    // '-' must sanitize to '_'
    g.value = 3;
    g.peak = 9;
    snap.gauges.push_back(g);

    obs::TimerSample t;
    t.name = "sweep.run";
    t.calls = 2;
    t.totalNs = 5000;
    snap.timers.push_back(t);

    obs::HistogramSample h;
    h.name = "serve.http.request_latency_us";
    h.buckets[0] = 1;   // value 0
    h.buckets[3] = 2;   // values in [4, 7]
    h.buckets[7] = 1;   // values in [64, 127]
    h.count = 4;
    h.sum = 140;
    h.max = 100;
    snap.histograms.push_back(h);

    return snap;
}

TEST(Prom, NameSanitization)
{
    EXPECT_EQ(obs::promName("a.b.c"), "a_b_c");
    EXPECT_EQ(obs::promName("with-dash"), "with_dash");
    EXPECT_EQ(obs::promName("ok_name:sub"), "ok_name:sub");
    // A leading digit is invalid in Prometheus; prefixed instead.
    EXPECT_EQ(obs::promName("9lives"), "_9lives");
}

TEST(Prom, ExpositionCarriesEveryInstrumentKind)
{
    std::string text = obs::openMetricsText(sampleSnapshot());

    EXPECT_NE(text.find("# TYPE predict_pht_lookup_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("predict_pht_lookup_total 1234"),
              std::string::npos);
    EXPECT_NE(text.find("pool_queue_depth 3"), std::string::npos);
    EXPECT_NE(text.find("pool_queue_depth_peak 9"),
              std::string::npos);
    EXPECT_NE(text.find("sweep_run_calls_total 2"),
              std::string::npos);
    EXPECT_NE(text.find("sweep_run_ns_total 5000"),
              std::string::npos);
    EXPECT_NE(
        text.find("# TYPE serve_http_request_latency_us histogram"),
        std::string::npos);
    EXPECT_NE(text.find(
                  "serve_http_request_latency_us_bucket{le=\"+Inf\"}"
                  " 4"),
              std::string::npos);
    EXPECT_NE(text.find("serve_http_request_latency_us_sum 140"),
              std::string::npos);
    EXPECT_NE(text.find("serve_http_request_latency_us_count 4"),
              std::string::npos);
    // Terminated, exactly once, at the end.
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(Prom, HistogramBucketsAreCumulative)
{
    std::string text = obs::openMetricsText(sampleSnapshot());
    // Bucket 0 (le="0") holds 1; bucket 3 (le="7") must be 1+2=3.
    EXPECT_NE(text.find(
                  "serve_http_request_latency_us_bucket{le=\"0\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find(
                  "serve_http_request_latency_us_bucket{le=\"7\"} 3"),
              std::string::npos);
    EXPECT_NE(
        text.find(
            "serve_http_request_latency_us_bucket{le=\"127\"} 4"),
        std::string::npos);
}

TEST(Prom, GeneratedExpositionValidates)
{
    std::string err;
    EXPECT_TRUE(
        obs::validateExposition(obs::openMetricsText(sampleSnapshot()),
                                err))
        << err;
    // The trivial document -- empty snapshot -- also validates.
    EXPECT_TRUE(obs::validateExposition(
        obs::openMetricsText(obs::Snapshot{}), err))
        << err;
}

TEST(Prom, ValidatorRejectsMissingEof)
{
    std::string err;
    EXPECT_FALSE(obs::validateExposition(
        "# TYPE a_total counter\na_total 1\n", err));
    EXPECT_NE(err.find("EOF"), std::string::npos);
}

TEST(Prom, ValidatorRejectsSampleBeforeType)
{
    std::string err;
    EXPECT_FALSE(obs::validateExposition(
        "a_total 1\n# TYPE a_total counter\n# EOF\n", err));
}

TEST(Prom, ValidatorRejectsUnparseableValue)
{
    std::string err;
    EXPECT_FALSE(obs::validateExposition(
        "# TYPE a_total counter\na_total banana\n# EOF\n", err));
}

TEST(Prom, ValidatorRejectsNonCumulativeHistogram)
{
    std::string doc =
        "# TYPE h histogram\n"
        "h_bucket{le=\"1\"} 5\n"
        "h_bucket{le=\"2\"} 3\n"     // decreasing: invalid
        "h_bucket{le=\"+Inf\"} 5\n"
        "h_sum 9\n"
        "h_count 5\n"
        "# EOF\n";
    std::string err;
    EXPECT_FALSE(obs::validateExposition(doc, err));
}

TEST(Prom, ValidatorRejectsInfBucketCountMismatch)
{
    std::string doc =
        "# TYPE h histogram\n"
        "h_bucket{le=\"1\"} 2\n"
        "h_bucket{le=\"+Inf\"} 2\n"
        "h_sum 2\n"
        "h_count 3\n"                // != +Inf bucket: invalid
        "# EOF\n";
    std::string err;
    EXPECT_FALSE(obs::validateExposition(doc, err));
}

TEST(Prom, ValidatorAcceptsContentAfterTypeGap)
{
    // Families may interleave freely as long as each sample follows
    // its own TYPE line.
    std::string doc =
        "# TYPE a_total counter\n"
        "# TYPE b gauge\n"
        "a_total 1\n"
        "b 2\n"
        "# EOF\n";
    std::string err;
    EXPECT_TRUE(obs::validateExposition(doc, err)) << err;
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the observability layer. */

#include "obs/obs.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.hh"

namespace mbbp
{
namespace
{

/** Every test runs with a clean slate and leaves the layer off. */
class Obs : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setEnabled(false);
        obs::setTracing(false);
        obs::resetAll();
    }

    void TearDown() override
    {
        obs::setEnabled(false);
        obs::setTracing(false);
        obs::resetAll();
    }
};

TEST_F(Obs, DisabledCounterStaysZero)
{
    obs::Counter &c = obs::counter("test.disabled");
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 0u);
}

TEST_F(Obs, EnabledCounterAccumulates)
{
    obs::setEnabled(true);
    obs::Counter &c = obs::counter("test.counter");
    c.add();
    c.add(9);
#ifndef MBBP_OBS_DISABLED
    EXPECT_EQ(c.value(), 10u);
#else
    EXPECT_EQ(c.value(), 0u);
#endif
}

TEST_F(Obs, RegistryReturnsSameInstrument)
{
    obs::Counter &a = obs::counter("test.same");
    obs::Counter &b = obs::counter("test.same");
    EXPECT_EQ(&a, &b);
}

TEST_F(Obs, FlushCounterSkipsZeroAndDisabled)
{
    obs::flushCounter("test.flush", 5);     // disabled: dropped
    obs::setEnabled(true);
    obs::flushCounter("test.flush", 0);     // zero: dropped
    obs::flushCounter("test.flush", 7);
#ifndef MBBP_OBS_DISABLED
    EXPECT_EQ(obs::counter("test.flush").value(), 7u);
#endif
}

TEST_F(Obs, GaugeTracksValueAndPeak)
{
    obs::setEnabled(true);
    obs::Gauge &g = obs::gauge("test.gauge");
    g.set(5);
    g.set(12);
    g.set(3);
#ifndef MBBP_OBS_DISABLED
    EXPECT_EQ(g.value(), 3u);
    EXPECT_EQ(g.peak(), 12u);
#endif
}

TEST_F(Obs, TimerRecordsCallsAndTime)
{
    obs::setEnabled(true);
    obs::Timer &t = obs::timer("test.timer");
    t.record(100);
    t.record(250);
#ifndef MBBP_OBS_DISABLED
    EXPECT_EQ(t.calls(), 2u);
    EXPECT_EQ(t.totalNs(), 350u);
#endif
}

TEST_F(Obs, ScopedTimerMeasuresNonNegativeInterval)
{
    obs::setEnabled(true);
    obs::Timer &t = obs::timer("test.scoped");
    {
        obs::ScopedTimer span(t);
    }
#ifndef MBBP_OBS_DISABLED
    EXPECT_EQ(t.calls(), 1u);
#endif
}

TEST_F(Obs, ScopedTimerWhileDisabledRecordsNothing)
{
    obs::Timer &t = obs::timer("test.scoped.off");
    {
        obs::ScopedTimer span(t, "label");
    }
    EXPECT_EQ(t.calls(), 0u);
}

TEST_F(Obs, SnapshotIsNameSorted)
{
    obs::setEnabled(true);
    obs::counter("test.zzz").add();
    obs::counter("test.aaa").add();
    obs::counter("test.mmm").add();
    obs::Snapshot snap = obs::snapshot();
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
}

TEST_F(Obs, ResetAllZeroesEverything)
{
    obs::setEnabled(true);
    obs::counter("test.reset.c").add(4);
    obs::gauge("test.reset.g").set(4);
    obs::timer("test.reset.t").record(4);
    obs::resetAll();
    EXPECT_EQ(obs::counter("test.reset.c").value(), 0u);
    EXPECT_EQ(obs::gauge("test.reset.g").peak(), 0u);
    EXPECT_EQ(obs::timer("test.reset.t").totalNs(), 0u);
    EXPECT_EQ(obs::spanCount(), 0u);
}

TEST_F(Obs, StripedCountsSurviveManyThreads)
{
    // 8 threads x 1000 adds: with <= kStripes counting threads the
    // striped cells must not lose a single increment.
    obs::setEnabled(true);
    obs::Counter &c = obs::counter("test.striped");
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < 1000; ++i)
                c.add();
        });
    for (auto &t : threads)
        t.join();
#ifndef MBBP_OBS_DISABLED
    EXPECT_EQ(c.value(), 8000u);
#endif
}

TEST_F(Obs, ChromeTraceIsValidJson)
{
    obs::setEnabled(true);
    obs::setTracing(true);
    obs::Timer &t = obs::timer("test.trace");
    {
        obs::ScopedTimer span(t, "outer");
        obs::ScopedTimer inner(t, "inner \"quoted\"");
    }
    JsonValue doc = JsonValue::parse(obs::chromeTraceJson());
    ASSERT_TRUE(doc.isObject());
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
#ifndef MBBP_OBS_DISABLED
    ASSERT_EQ(events->size(), 2u);
    EXPECT_EQ(obs::spanCount(), 2u);
    for (const JsonValue &e : events->items()) {
        EXPECT_EQ(e.find("ph")->asString(), "X");
        EXPECT_GE(e.find("dur")->asNumber(), 0.0);
        EXPECT_FALSE(e.find("name")->asString().empty());
    }
#else
    EXPECT_EQ(events->size(), 0u);
#endif
}

TEST_F(Obs, ChromeTraceFileRoundTripsThroughTheParser)
{
    // --trace-out writes via writeChromeTrace: parse the FILE back
    // through JsonValue, with labels chosen to catch escaping and
    // trailing-comma bugs that a string-level check can miss.
    obs::setEnabled(true);
    obs::setTracing(true);
    obs::Timer &t = obs::timer("test.trace.file");
    {
        obs::ScopedTimer a(t, "back\\slash");
        obs::ScopedTimer b(t, "multi\nline\ttabbed");
        obs::ScopedTimer c(t, "quoted \"name\" {with, commas}");
    }

    std::string path =
        ::testing::TempDir() + "mbbp_obs_trace_roundtrip.json";
    obs::writeChromeTrace(path);

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    JsonValue doc = JsonValue::parse(ss.str());

    ASSERT_TRUE(doc.isObject());
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
#ifndef MBBP_OBS_DISABLED
    ASSERT_EQ(events->size(), 3u);
    // The awkward labels must survive the write/parse cycle intact.
    std::vector<std::string> names;
    for (const JsonValue &e : events->items())
        names.push_back(e.find("name")->asString());
    std::sort(names.begin(), names.end());
    std::vector<std::string> expected = {
        "back\\slash",
        "multi\nline\ttabbed",
        "quoted \"name\" {with, commas}",
    };
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(names, expected);
#else
    EXPECT_EQ(events->size(), 0u);
#endif
    std::remove(path.c_str());
}

TEST_F(Obs, TracingOffRecordsNoSpans)
{
    obs::setEnabled(true);
    obs::Timer &t = obs::timer("test.nospans");
    {
        obs::ScopedTimer span(t, "should not appear");
    }
    EXPECT_EQ(obs::spanCount(), 0u);
}

} // namespace
} // namespace mbbp

/** @file Per-branch attribution tests: sink discipline, report
 *  ordering, and the table == aggregate-FetchStats invariant across
 *  every fetch engine. */

#include "obs/attribution.hh"

#include <gtest/gtest.h>

#include "fetch/dual_block_engine.hh"
#include "fetch/engine_common.hh"
#include "fetch/multi_block_engine.hh"
#include "fetch/single_block_engine.hh"
#include "fetch/two_ahead_engine.hh"
#include "sweep/sweep_runner.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

using obs::LossCause;

TEST(LossCause, NamesAreStableTokens)
{
    EXPECT_STREQ(obs::lossCauseName(LossCause::PhtDirection),
                 "pht_direction");
    EXPECT_STREQ(obs::lossCauseName(LossCause::BitType), "bit_type");
    EXPECT_STREQ(obs::lossCauseName(LossCause::Target), "target");
    EXPECT_STREQ(obs::lossCauseName(LossCause::Ras), "ras");
    EXPECT_STREQ(obs::lossCauseName(LossCause::Select), "select");
    EXPECT_STREQ(obs::lossCauseName(LossCause::Ghr), "ghr");
}

TEST(LossCause, DominantCausePicksMaxAndBreaksTiesLow)
{
    obs::AttributionRow row;
    row.byCause[static_cast<std::size_t>(LossCause::Ras)] = 5;
    row.byCause[static_cast<std::size_t>(LossCause::Select)] = 9;
    EXPECT_EQ(row.dominantCause(), LossCause::Select);

    obs::AttributionRow tie;
    tie.byCause[static_cast<std::size_t>(LossCause::Target)] = 4;
    tie.byCause[static_cast<std::size_t>(LossCause::Ghr)] = 4;
    EXPECT_EQ(tie.dominantCause(), LossCause::Target);
}

TEST(LossCause, PenaltyKindsMapOntoCauses)
{
    EXPECT_EQ(lossCauseOf(PenaltyKind::CondMispredict),
              LossCause::PhtDirection);
    EXPECT_EQ(lossCauseOf(PenaltyKind::ReturnMispredict),
              LossCause::Ras);
    EXPECT_EQ(lossCauseOf(PenaltyKind::MisfetchIndirect),
              LossCause::Target);
    EXPECT_EQ(lossCauseOf(PenaltyKind::MisfetchImmediate),
              LossCause::Target);
    EXPECT_EQ(lossCauseOf(PenaltyKind::Misselect),
              LossCause::Select);
    EXPECT_EQ(lossCauseOf(PenaltyKind::GhrMispredict),
              LossCause::Ghr);
    EXPECT_EQ(lossCauseOf(PenaltyKind::BitMispredict),
              LossCause::BitType);
}

TEST(Attribution, MispredictEventsExcludeBankConflicts)
{
    FetchStats s;
    s.charge(PenaltyKind::CondMispredict, 4);
    s.charge(PenaltyKind::Misselect, 1);
    s.charge(PenaltyKind::BankConflict, 1);
    s.charge(PenaltyKind::BankConflict, 1);
    EXPECT_EQ(mispredictEvents(s), 2u);
}

#ifndef MBBP_OBS_DISABLED

/** Attribution off and empty before and after every test. */
class Attr : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setAttributionEnabled(false);
        obs::resetAttribution();
    }

    void TearDown() override
    {
        obs::setAttributionEnabled(false);
        obs::resetAttribution();
    }
};

TEST_F(Attr, DisabledSinkRecordsNothing)
{
    obs::AttributionSink sink;
    EXPECT_FALSE(sink.enabled());
    sink.record(0x1000, 0, LossCause::PhtDirection, 4);
    sink.flush();
    EXPECT_EQ(obs::attributedEvents(), 0u);
    EXPECT_TRUE(obs::attributionRows(0).empty());
}

TEST_F(Attr, SinkCapturesTheSwitchAtConstruction)
{
    obs::AttributionSink sink;
    obs::setAttributionEnabled(true);
    // Enabled after construction: this run stays unattributed.
    sink.record(0x1000, 0, LossCause::PhtDirection, 4);
    sink.flush();
    EXPECT_EQ(obs::attributedEvents(), 0u);
}

TEST_F(Attr, RecordFlushAndRowsRoundTrip)
{
    obs::setAttributionEnabled(true);
    {
        obs::AttributionSink sink;
        ASSERT_TRUE(sink.enabled());
        sink.record(0x1000, 0, LossCause::PhtDirection, 3);
        sink.record(0x1000, 0, LossCause::PhtDirection, 3);
        sink.record(0x2000, 1, LossCause::Ras, 7);
        // Destructor flushes.
    }
    EXPECT_EQ(obs::attributedEvents(), 3u);
    auto by_cause = obs::attributedEventsByCause();
    EXPECT_EQ(
        by_cause[static_cast<std::size_t>(LossCause::PhtDirection)],
        2u);
    EXPECT_EQ(by_cause[static_cast<std::size_t>(LossCause::Ras)],
              1u);

    std::vector<obs::AttributionRow> rows = obs::attributionRows(0);
    ASSERT_EQ(rows.size(), 2u);
    // Cycles-descending: 0x2000 (7 cycles) before 0x1000 (6).
    EXPECT_EQ(rows[0].blockPc, 0x2000u);
    EXPECT_EQ(rows[0].slot, 1u);
    EXPECT_EQ(rows[0].events, 1u);
    EXPECT_EQ(rows[0].cycles, 7u);
    EXPECT_EQ(rows[0].dominantCause(), LossCause::Ras);
    EXPECT_EQ(rows[1].blockPc, 0x1000u);
    EXPECT_EQ(rows[1].events, 2u);
    EXPECT_EQ(rows[1].cycles, 6u);

    // top_n truncates after ordering.
    EXPECT_EQ(obs::attributionRows(1).size(), 1u);
    EXPECT_EQ(obs::attributionRows(1)[0].blockPc, 0x2000u);

    obs::resetAttribution();
    EXPECT_EQ(obs::attributedEvents(), 0u);
    EXPECT_TRUE(obs::attributionRows(0).empty());
}

TEST_F(Attr, RowOrderBreaksTiesByEventsThenAddressThenSlot)
{
    obs::setAttributionEnabled(true);
    obs::AttributionSink sink;
    // All three sites cost 4 cycles total.
    sink.record(0x3000, 0, LossCause::Select, 2);
    sink.record(0x3000, 0, LossCause::Select, 2);   // 2 events
    sink.record(0x2000, 1, LossCause::Select, 4);   // 1 event
    sink.record(0x2000, 0, LossCause::Select, 4);   // 1 event
    sink.flush();

    std::vector<obs::AttributionRow> rows = obs::attributionRows(0);
    ASSERT_EQ(rows.size(), 3u);
    // More events first; then lower address; then lower slot.
    EXPECT_EQ(rows[0].blockPc, 0x3000u);
    EXPECT_EQ(rows[1].blockPc, 0x2000u);
    EXPECT_EQ(rows[1].slot, 0u);
    EXPECT_EQ(rows[2].blockPc, 0x2000u);
    EXPECT_EQ(rows[2].slot, 1u);
}

TEST_F(Attr, SlotsAreMaskedIntoTheKey)
{
    obs::setAttributionEnabled(true);
    obs::AttributionSink sink;
    sink.record(0x4000, 9, LossCause::Ghr, 1);  // 9 & 7 == 1
    sink.flush();
    std::vector<obs::AttributionRow> rows = obs::attributionRows(0);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].blockPc, 0x4000u);
    EXPECT_EQ(rows[0].slot, 1u);
}

/** The acceptance invariant: for any engine and trace, the table's
 *  event total equals the aggregate FetchStats mispredict count, and
 *  each cause bucket matches the corresponding penalty categories. */
void
expectTableMatchesStats(const FetchStats &s, const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(obs::attributedEvents(), mispredictEvents(s));

    auto by_cause = obs::attributedEventsByCause();
    auto ev = [&s](PenaltyKind k) {
        return s.penaltyEvents[static_cast<std::size_t>(k)];
    };
    auto at = [&by_cause](LossCause c) {
        return by_cause[static_cast<std::size_t>(c)];
    };
    EXPECT_EQ(at(LossCause::PhtDirection),
              ev(PenaltyKind::CondMispredict));
    EXPECT_EQ(at(LossCause::Ras), ev(PenaltyKind::ReturnMispredict));
    EXPECT_EQ(at(LossCause::Target),
              ev(PenaltyKind::MisfetchIndirect) +
                  ev(PenaltyKind::MisfetchImmediate));
    EXPECT_EQ(at(LossCause::Select), ev(PenaltyKind::Misselect));
    EXPECT_EQ(at(LossCause::Ghr), ev(PenaltyKind::GhrMispredict));
    EXPECT_EQ(at(LossCause::BitType),
              ev(PenaltyKind::BitMispredict));
}

TEST_F(Attr, EveryEngineAttributesExactlyItsMispredicts)
{
    obs::setAttributionEnabled(true);
    constexpr std::size_t kInsts = 40000;
    for (const char *bench : { "gcc", "compress" }) {
        InMemoryTrace t = specTrace(bench, kInsts);

        struct Case
        {
            const char *label;
            FetchStats stats;
        };
        std::vector<Case> cases;

        FetchEngineConfig cfg;
        cases.push_back(
            { "single", SingleBlockEngine(cfg).run(t) });
        cases.push_back({ "dual", DualBlockEngine(cfg).run(t) });
        FetchEngineConfig dsel = cfg;
        dsel.doubleSelect = true;
        cases.push_back(
            { "dual+doubleSelect", DualBlockEngine(dsel).run(t) });
        cases.push_back(
            { "multi-3", MultiBlockEngine(cfg, 3).run(t) });
        cases.push_back(
            { "two-ahead", TwoAheadEngine(cfg).run(t) });

        // Each engine flushed its sink at end of run; the runs above
        // accumulate into one table, so check incrementally.
        uint64_t expected_events = 0;
        FetchStats combined;
        for (const Case &c : cases) {
            expected_events += mispredictEvents(c.stats);
            for (unsigned k = 0; k < numPenaltyKinds; ++k) {
                combined.penaltyEvents[k] += c.stats.penaltyEvents[k];
                combined.penaltyCycles[k] += c.stats.penaltyCycles[k];
            }
            SCOPED_TRACE(bench);
            SCOPED_TRACE(c.label);
            EXPECT_GT(mispredictEvents(c.stats), 0u)
                << "trace too tame to exercise attribution";
        }
        {
            SCOPED_TRACE(bench);
            expectTableMatchesStats(combined, "all engines");
        }
        obs::resetAttribution();
    }
}

TEST_F(Attr, SweepMergesAreThreadCountInvariant)
{
    obs::setAttributionEnabled(true);
    SweepSpec spec;
    spec.setName("attr-determinism");
    spec.setBenchmarks({ "gcc", "compress" });
    spec.addAxis("numBlocks", { "1", "2" });
    TraceCache traces(6000);

    SweepOptions serial;
    serial.threads = 1;
    runSweep(spec, traces, serial);
    std::vector<obs::AttributionRow> rows1 = obs::attributionRows(0);
    ASSERT_FALSE(rows1.empty());

    obs::resetAttribution();
    SweepOptions wide;
    wide.threads = 4;
    runSweep(spec, traces, wide);
    std::vector<obs::AttributionRow> rows4 = obs::attributionRows(0);

    ASSERT_EQ(rows1.size(), rows4.size());
    for (std::size_t i = 0; i < rows1.size(); ++i) {
        EXPECT_EQ(rows1[i].blockPc, rows4[i].blockPc);
        EXPECT_EQ(rows1[i].slot, rows4[i].slot);
        EXPECT_EQ(rows1[i].events, rows4[i].events);
        EXPECT_EQ(rows1[i].cycles, rows4[i].cycles);
        EXPECT_EQ(rows1[i].byCause, rows4[i].byCause);
    }
}

#else // MBBP_OBS_DISABLED

TEST(Attr, CompiledOutAttributionIsInert)
{
    obs::setAttributionEnabled(true);
    EXPECT_FALSE(obs::attributionEnabled());
    obs::AttributionSink sink;
    EXPECT_FALSE(sink.enabled());
    sink.record(0x1000, 0, LossCause::PhtDirection, 4);
    sink.flush();
    EXPECT_EQ(obs::attributedEvents(), 0u);
    EXPECT_TRUE(obs::attributionRows(0).empty());
}

#endif // MBBP_OBS_DISABLED

} // namespace
} // namespace mbbp

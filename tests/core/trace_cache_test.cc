/**
 * @file
 * TraceCache decoded-artifact budget tests: LRU eviction under a byte
 * budget, shared ownership across eviction, and the resident-bytes
 * gauge.
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/suite_runner.hh"
#include "obs/obs.hh"

namespace mbbp
{
namespace
{

constexpr std::size_t kInsts = 2000;

/** Resident footprint of one artifact of this trace and geometry. */
std::size_t
oneArtifactBytes(const std::string &name, const ICacheConfig &geom)
{
    TraceCache probe(kInsts);
    (void)probe.decoded(name, geom);
    return probe.decodedResidentBytes();
}

TEST(TraceCacheBudget, UnboundedCacheKeepsEverything)
{
    TraceCache traces(kInsts);
    EXPECT_EQ(traces.decodedBudgetBytes(), 0u);

    ICacheConfig geom = ICacheConfig::normal(8);
    auto a = traces.decoded("gcc", geom);
    auto b = traces.decoded("swim", geom);
    auto c = traces.decoded("gcc", ICacheConfig::normal(4));

    EXPECT_EQ(traces.decodedEvictions(), 0u);
    EXPECT_EQ(traces.decodedResidentBytes(),
              a->bytes() + b->bytes() + c->bytes());
    EXPECT_EQ(a.get(), traces.decoded("gcc", geom).get());
    EXPECT_EQ(b.get(), traces.decoded("swim", geom).get());
}

TEST(TraceCacheBudget, EvictsLeastRecentlyUsedArtifact)
{
    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t one = oneArtifactBytes("gcc", geom);
    ASSERT_GT(one, 0u);

    // Room for roughly two same-shape artifacts, not three.
    TraceCache traces(kInsts, 2 * one + one / 2);
    auto a = traces.decoded("gcc", geom);
    auto b = traces.decoded("swim", geom);
    (void)traces.decoded("gcc", geom);      // refresh a: b is now LRU
    (void)traces.decoded("li", geom);       // over budget: b evicted

    EXPECT_EQ(traces.decodedEvictions(), 1u);
    EXPECT_LE(traces.decodedResidentBytes(),
              traces.decodedBudgetBytes());

    // The recently-used artifact survived in place...
    EXPECT_EQ(a.get(), traces.decoded("gcc", geom).get());
    // ...and the victim is rebuilt as a new object on re-request.
    EXPECT_NE(b.get(), traces.decoded("swim", geom).get());
}

TEST(TraceCacheBudget, SharedOwnershipOutlivesEviction)
{
    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t one = oneArtifactBytes("gcc", geom);

    // Budget of one artifact: every new decode evicts the previous.
    TraceCache traces(kInsts, one);
    auto a = traces.decoded("gcc", geom);
    std::size_t a_insts = a->insts().size();
    ASSERT_GT(a_insts, 0u);

    (void)traces.decoded("swim", geom);
    EXPECT_GE(traces.decodedEvictions(), 1u);

    // The evicted artifact is still fully usable through the handle
    // handed out before eviction...
    EXPECT_EQ(a->insts().size(), a_insts);
    EXPECT_GT(a->numBlocks(), 0u);
    // ...while the cache no longer remembers it.
    EXPECT_NE(a.get(), traces.decoded("gcc", geom).get());
}

TEST(TraceCacheBudget, FreshArtifactIsNeverTheVictim)
{
    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t one = oneArtifactBytes("gcc", geom);

    // A budget smaller than any artifact cannot hold the newest
    // entry either, but the newest entry must survive its own
    // insertion (the caller was promised it) -- the cache simply
    // stays over budget until the next decode.
    TraceCache traces(kInsts, one / 2);
    auto a = traces.decoded("gcc", geom);
    EXPECT_EQ(traces.decodedEvictions(), 0u);
    EXPECT_EQ(traces.decodedResidentBytes(), a->bytes());
    EXPECT_EQ(a.get(), traces.decoded("gcc", geom).get());
}

#ifndef MBBP_OBS_DISABLED

TEST(TraceCacheBudget, PublishesResidentBytesGauge)
{
    obs::resetAll();
    obs::setEnabled(true);

    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t one = oneArtifactBytes("gcc", geom);
    TraceCache traces(kInsts, one);
    (void)traces.decoded("gcc", geom);
    EXPECT_EQ(obs::gauge("trace.cache.resident_bytes").value(),
              traces.decodedResidentBytes());

    (void)traces.decoded("swim", geom);     // evicts gcc
    EXPECT_EQ(obs::gauge("trace.cache.resident_bytes").value(),
              traces.decodedResidentBytes());
    EXPECT_GE(traces.decodedEvictions(), 1u);

    obs::setEnabled(false);
    obs::resetAll();
}

#endif // MBBP_OBS_DISABLED

} // namespace
} // namespace mbbp

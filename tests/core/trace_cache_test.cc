/**
 * @file
 * TraceCache decoded-artifact budget tests: LRU eviction under a byte
 * budget, shared ownership across eviction, and the resident-bytes
 * gauge.
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/suite_runner.hh"
#include "obs/obs.hh"

namespace mbbp
{
namespace
{

constexpr std::size_t kInsts = 2000;

/** Resident footprint of one artifact of this trace and geometry. */
std::size_t
oneArtifactBytes(const std::string &name, const ICacheConfig &geom)
{
    TraceCache probe(kInsts);
    (void)probe.decoded(name, geom);
    return probe.decodedResidentBytes();
}

TEST(TraceCacheBudget, UnboundedCacheKeepsEverything)
{
    TraceCache traces(kInsts);
    EXPECT_EQ(traces.decodedBudgetBytes(), 0u);

    ICacheConfig geom = ICacheConfig::normal(8);
    auto a = traces.decoded("gcc", geom);
    auto b = traces.decoded("swim", geom);
    auto c = traces.decoded("gcc", ICacheConfig::normal(4));

    EXPECT_EQ(traces.decodedEvictions(), 0u);
    EXPECT_EQ(traces.decodedResidentBytes(),
              a->bytes() + b->bytes() + c->bytes());
    EXPECT_EQ(a.get(), traces.decoded("gcc", geom).get());
    EXPECT_EQ(b.get(), traces.decoded("swim", geom).get());
}

TEST(TraceCacheBudget, EvictsLeastRecentlyUsedArtifact)
{
    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t one = oneArtifactBytes("gcc", geom);
    ASSERT_GT(one, 0u);

    // Room for roughly two same-shape artifacts, not three.
    TraceCache traces(kInsts, 2 * one + one / 2);
    auto a = traces.decoded("gcc", geom);
    auto b = traces.decoded("swim", geom);
    (void)traces.decoded("gcc", geom);      // refresh a: b is now LRU
    (void)traces.decoded("li", geom);       // over budget: b evicted

    EXPECT_EQ(traces.decodedEvictions(), 1u);
    EXPECT_LE(traces.decodedResidentBytes(),
              traces.decodedBudgetBytes());

    // The recently-used artifact survived in place...
    EXPECT_EQ(a.get(), traces.decoded("gcc", geom).get());
    // ...and the victim is rebuilt as a new object on re-request.
    EXPECT_NE(b.get(), traces.decoded("swim", geom).get());
}

TEST(TraceCacheBudget, SharedOwnershipOutlivesEviction)
{
    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t one = oneArtifactBytes("gcc", geom);

    // Budget of one artifact: every new decode evicts the previous.
    TraceCache traces(kInsts, one);
    auto a = traces.decoded("gcc", geom);
    std::size_t a_insts = a->insts().size();
    ASSERT_GT(a_insts, 0u);

    (void)traces.decoded("swim", geom);
    EXPECT_GE(traces.decodedEvictions(), 1u);

    // The evicted artifact is still fully usable through the handle
    // handed out before eviction...
    EXPECT_EQ(a->insts().size(), a_insts);
    EXPECT_GT(a->numBlocks(), 0u);
    // ...while the cache no longer remembers it.
    EXPECT_NE(a.get(), traces.decoded("gcc", geom).get());
}

TEST(TraceCacheBudget, FreshArtifactIsNeverTheVictim)
{
    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t one = oneArtifactBytes("gcc", geom);

    // A budget smaller than any artifact cannot hold the newest
    // entry either, but the newest entry must survive its own
    // insertion (the caller was promised it) -- the cache simply
    // stays over budget until the next decode.
    TraceCache traces(kInsts, one / 2);
    auto a = traces.decoded("gcc", geom);
    EXPECT_EQ(traces.decodedEvictions(), 0u);
    EXPECT_EQ(traces.decodedResidentBytes(), a->bytes());
    EXPECT_EQ(a.get(), traces.decoded("gcc", geom).get());
}

TEST(SharedDecodedBudget, OneBudgetBoundsSeveralCaches)
{
    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t gccB = oneArtifactBytes("gcc", geom);
    std::size_t swimB = oneArtifactBytes("swim", geom);
    std::size_t liB = oneArtifactBytes("li", geom);
    ASSERT_GT(gccB, 0u);

    // Two caches, ONE budget one byte too small for all three
    // artifacts: the *global* resident total is what eviction
    // bounds, however the artifacts distribute across the members.
    auto budget =
        std::make_shared<DecodedBudget>(gccB + swimB + liB - 1);
    TraceCache a(kInsts, budget);
    TraceCache b(kInsts, budget);
    EXPECT_EQ(a.decodedBudgetBytes(), budget->budgetBytes());

    (void)a.decoded("gcc", geom);
    (void)b.decoded("swim", geom);
    EXPECT_EQ(budget->residentBytes(), gccB + swimB);
    EXPECT_EQ(budget->evictions(), 0u);

    // The third artifact overflows the shared budget by one byte;
    // the victim is the globally-oldest (gcc, which lives in the
    // OTHER cache), and one eviction restores the bound.
    (void)b.decoded("li", geom);
    EXPECT_EQ(budget->evictions(), 1u);
    EXPECT_LE(budget->residentBytes(), budget->budgetBytes());
    EXPECT_EQ(a.decodedEvictions(), 1u);
    EXPECT_EQ(b.decodedEvictions(), 0u);
    EXPECT_EQ(a.decodedResidentBytes() + b.decodedResidentBytes(),
              budget->residentBytes());
}

TEST(SharedDecodedBudget, RecencyIsComparableAcrossCaches)
{
    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t gccB = oneArtifactBytes("gcc", geom);
    std::size_t swimB = oneArtifactBytes("swim", geom);
    std::size_t liB = oneArtifactBytes("li", geom);

    auto budget =
        std::make_shared<DecodedBudget>(gccB + swimB + liB - 1);
    TraceCache a(kInsts, budget);
    TraceCache b(kInsts, budget);

    auto gcc = a.decoded("gcc", geom);
    (void)b.decoded("swim", geom);
    (void)a.decoded("gcc", geom);   // refresh: swim is now global LRU
    (void)a.decoded("li", geom);    // over budget: b's swim evicted

    EXPECT_EQ(a.decodedEvictions(), 0u);
    EXPECT_EQ(b.decodedEvictions(), 1u);
    // The refreshed artifact survived in place in its home cache.
    EXPECT_EQ(gcc.get(), a.decoded("gcc", geom).get());
}

TEST(SharedDecodedBudget, DetachReturnsResidentBytes)
{
    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t gccB = oneArtifactBytes("gcc", geom);
    std::size_t swimB = oneArtifactBytes("swim", geom);

    auto budget =
        std::make_shared<DecodedBudget>(10 * (gccB + swimB));
    TraceCache keeper(kInsts, budget);
    (void)keeper.decoded("gcc", geom);
    EXPECT_EQ(budget->residentBytes(), gccB);

    {
        TraceCache temp(kInsts, budget);
        (void)temp.decoded("swim", geom);
        EXPECT_EQ(budget->residentBytes(), gccB + swimB);
    }
    // A destroyed member hands its resident bytes back.
    EXPECT_EQ(budget->residentBytes(), gccB);
}

TEST(SharedDecodedBudget, NullBudgetFallsBackToPrivateUnbounded)
{
    TraceCache traces(kInsts, std::shared_ptr<DecodedBudget>());
    EXPECT_EQ(traces.decodedBudgetBytes(), 0u);
    ICacheConfig geom = ICacheConfig::normal(8);
    auto a = traces.decoded("gcc", geom);
    EXPECT_EQ(traces.decodedEvictions(), 0u);
    EXPECT_EQ(traces.decodedResidentBytes(), a->bytes());
}

#ifndef MBBP_OBS_DISABLED

TEST(TraceCacheBudget, PublishesResidentBytesGauge)
{
    obs::resetAll();
    obs::setEnabled(true);

    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t one = oneArtifactBytes("gcc", geom);
    TraceCache traces(kInsts, one);
    (void)traces.decoded("gcc", geom);
    EXPECT_EQ(obs::gauge("trace.cache.resident_bytes").value(),
              traces.decodedResidentBytes());

    (void)traces.decoded("swim", geom);     // evicts gcc
    EXPECT_EQ(obs::gauge("trace.cache.resident_bytes").value(),
              traces.decodedResidentBytes());
    EXPECT_GE(traces.decodedEvictions(), 1u);

    obs::setEnabled(false);
    obs::resetAll();
}

TEST(SharedDecodedBudget, GaugeCarriesTheCrossCacheTotal)
{
    obs::resetAll();
    obs::setEnabled(true);

    ICacheConfig geom = ICacheConfig::normal(8);
    std::size_t one = oneArtifactBytes("gcc", geom);
    auto budget = std::make_shared<DecodedBudget>(2 * one + one / 2);
    TraceCache a(kInsts, budget);
    TraceCache b(kInsts, budget);

    (void)a.decoded("gcc", geom);
    (void)b.decoded("swim", geom);
    EXPECT_EQ(obs::gauge("trace.cache.resident_bytes").value(),
              budget->residentBytes());

    (void)b.decoded("li", geom);    // cross-cache eviction
    EXPECT_EQ(obs::gauge("trace.cache.resident_bytes").value(),
              budget->residentBytes());
    EXPECT_LE(obs::gauge("trace.cache.resident_bytes").value(),
              budget->budgetBytes());

    obs::setEnabled(false);
    obs::resetAll();
}

#endif // MBBP_OBS_DISABLED

} // namespace
} // namespace mbbp

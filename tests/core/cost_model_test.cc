/** @file Pins the Section 5 / Table 7 cost estimates. */

#include "core/cost_model.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

/** The paper's reference parameters. */
CostParams
paperParams()
{
    return CostParams{};    // defaults are the Section 5 numbers
}

TEST(CostModel, ComponentCostsMatchSection5)
{
    CostModel m(paperParams());
    EXPECT_DOUBLE_EQ(CostModel::kbits(m.phtBits()), 16.0);
    EXPECT_DOUBLE_EQ(CostModel::kbits(m.stBits(false)), 8.0);
    EXPECT_DOUBLE_EQ(CostModel::kbits(m.nlsBits(false)), 20.0);
    EXPECT_DOUBLE_EQ(CostModel::kbits(m.bitBits()), 16.0);
    EXPECT_NEAR(CostModel::kbits(m.bbrBits()), 0.3, 0.05);
}

TEST(CostModel, TotalsMatchSection5)
{
    CostModel m(paperParams());
    // "single block total: 52 Kbits"
    EXPECT_NEAR(CostModel::kbits(m.singleBlockTotal()), 52.0, 0.5);
    // "dual block, single select total: 80 Kbits"
    EXPECT_NEAR(CostModel::kbits(m.dualSingleSelectTotal()), 80.0,
                0.5);
    // "dual block, double select total: 72 Kbits"
    EXPECT_NEAR(CostModel::kbits(m.dualDoubleSelectTotal()), 72.0,
                0.5);
}

TEST(CostModel, CostScalesLinearlyInBlockWidth)
{
    // Section 5: "As the number of instructions that can be predicted
    // in a block increase, the cost increases proportionally" -- the
    // scalable property that distinguishes this scheme from Yeh's
    // exponential branch address cache.
    CostParams p4 = paperParams();
    p4.blockWidth = 4;
    CostParams p16 = paperParams();
    p16.blockWidth = 16;
    CostModel m4(p4), m8(paperParams()), m16(p16);
    EXPECT_EQ(m8.phtBits(), 2 * m4.phtBits());
    EXPECT_EQ(m16.phtBits(), 2 * m8.phtBits());
    EXPECT_EQ(m8.nlsBits(false), 2 * m4.nlsBits(false));
    EXPECT_EQ(m8.bitBits(), 2 * m4.bitBits());
}

TEST(CostModel, HistoryGrowsPhTAndStExponentially)
{
    CostParams p = paperParams();
    p.historyBits = 11;
    CostModel big(p), base(paperParams());
    EXPECT_EQ(big.phtBits(), 2 * base.phtBits());
    EXPECT_EQ(big.stBits(false), 2 * base.stBits(false));
}

TEST(CostModel, NearBlockOffsetAddsStBits)
{
    CostParams p = paperParams();
    p.nearBlockOffset = true;
    CostModel with(p), without(paperParams());
    EXPECT_GT(with.stBits(false), without.stBits(false));
}

TEST(CostModel, MultipleTablesMultiply)
{
    CostParams p = paperParams();
    p.numSelectTables = 8;
    p.numPhts = 2;
    CostModel m(p), base(paperParams());
    EXPECT_EQ(m.stBits(false), 8 * base.stBits(false));
    EXPECT_EQ(m.phtBits(), 2 * base.phtBits());
}

} // namespace
} // namespace mbbp

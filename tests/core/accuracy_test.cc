/** @file Tests for the Figure 6 accuracy simulators. */

#include "core/accuracy.hh"

#include <gtest/gtest.h>

#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

TEST(Accuracy, ResultArithmetic)
{
    AccuracyResult r;
    r.condBranches = 200;
    r.mispredicts = 30;
    EXPECT_DOUBLE_EQ(r.missRate(), 0.15);
    EXPECT_DOUBLE_EQ(r.accuracy(), 0.85);
    AccuracyResult other{ 100, 10 };
    r.accumulate(other);
    EXPECT_EQ(r.condBranches, 300u);
    EXPECT_EQ(r.mispredicts, 40u);
}

TEST(Accuracy, EmptyTraceIsPerfect)
{
    InMemoryTrace t;
    AccuracyResult r = blockedPhtAccuracy(t, 10,
                                          ICacheConfig::normal(8));
    EXPECT_EQ(r.condBranches, 0u);
    EXPECT_DOUBLE_EQ(r.missRate(), 0.0);
}

TEST(Accuracy, BlockedLearnsABiasedBranch)
{
    InMemoryTrace t;
    for (unsigned r = 0; r < 500; ++r) {
        for (unsigned i = 0; i < 7; ++i)
            t.append({ 0x1000 + i, InstClass::NonBranch, false, 0 });
        t.append({ 0x1007, InstClass::CondBranch, true, 0x1000 });
    }
    AccuracyResult res = blockedPhtAccuracy(t, 10,
                                            ICacheConfig::normal(8));
    EXPECT_GT(res.accuracy(), 0.99);
}

TEST(Accuracy, BlockedMatchesScalarWithinTolerance)
{
    // The paper's central Figure 6 claim: "The difference in accuracy
    // between the scalar and blocked schemes across all variations
    // were small."
    for (const char *name : { "gcc", "li", "swim" }) {
        InMemoryTrace t = specTrace(name, 60000);
        AccuracyResult blocked =
            blockedPhtAccuracy(t, 10, ICacheConfig::normal(8));
        AccuracyResult scalar = scalarAccuracy(t, 10, 8);
        EXPECT_NEAR(blocked.accuracy(), scalar.accuracy(), 0.02)
            << name;
    }
}

TEST(Accuracy, LongerHistoryHelpsOnIntCode)
{
    // A small-footprint program whose correlated branches need the
    // longer window (with a large-footprint program and a short
    // trace, warmup of the larger table can mask the benefit).
    InMemoryTrace t = specTrace("compress", 120000);
    AccuracyResult short_h =
        blockedPhtAccuracy(t, 6, ICacheConfig::normal(8));
    AccuracyResult long_h =
        blockedPhtAccuracy(t, 12, ICacheConfig::normal(8));
    EXPECT_GT(long_h.accuracy(), short_h.accuracy());
}

TEST(Accuracy, SuiteRegimeMatchesPaper)
{
    // Section 4.1: SPECint95 ~91.5%, SPECfp95 ~97.3% at h = 10. Allow
    // a band around the paper's numbers for the synthetic stand-ins.
    AccuracyResult int_total, fp_total;
    for (const auto &name : specIntNames()) {
        InMemoryTrace t = specTrace(name, 60000);
        int_total.accumulate(
            blockedPhtAccuracy(t, 10, ICacheConfig::normal(8)));
    }
    for (const auto &name : specFpNames()) {
        InMemoryTrace t = specTrace(name, 60000);
        fp_total.accumulate(
            blockedPhtAccuracy(t, 10, ICacheConfig::normal(8)));
    }
    EXPECT_NEAR(int_total.accuracy(), 0.915, 0.035);
    EXPECT_NEAR(fp_total.accuracy(), 0.973, 0.02);
    EXPECT_GT(fp_total.accuracy(), int_total.accuracy());
}

} // namespace
} // namespace mbbp

/** @file Tests for the FetchSimulator facade. */

#include "core/fetch_simulator.hh"

#include <gtest/gtest.h>

#include "fetch/dual_block_engine.hh"
#include "fetch/single_block_engine.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

TEST(SimConfig, PaperDefaultMatchesSection4)
{
    SimConfig cfg = SimConfig::paperDefault();
    EXPECT_EQ(cfg.numBlocks, 2u);
    EXPECT_EQ(cfg.engine.historyBits, 10u);
    EXPECT_EQ(cfg.engine.numPhts, 1u);
    EXPECT_EQ(cfg.engine.targetKind, TargetKind::Nls);
    EXPECT_EQ(cfg.engine.targetEntries, 256u);
    EXPECT_EQ(cfg.engine.rasEntries, 32u);
    EXPECT_EQ(cfg.engine.numSelectTables, 1u);
    EXPECT_FALSE(cfg.engine.nearBlock);
    EXPECT_FALSE(cfg.engine.doubleSelect);
    EXPECT_EQ(cfg.engine.bitEntries, 0u);   // BIT in the i-cache
    EXPECT_EQ(cfg.engine.icache.type, CacheType::Normal);
    EXPECT_EQ(cfg.engine.icache.blockWidth, 8u);
}

TEST(FetchSimulator, DispatchesToSingleBlockEngine)
{
    InMemoryTrace t = specTrace("li", 20000);
    SimConfig cfg;
    cfg.numBlocks = 1;
    FetchStats via_facade = FetchSimulator(cfg).run(t);
    FetchStats direct = SingleBlockEngine(cfg.engine).run(t);
    EXPECT_EQ(via_facade.fetchCycles(), direct.fetchCycles());
    EXPECT_EQ(via_facade.totalPenaltyCycles(),
              direct.totalPenaltyCycles());
}

TEST(FetchSimulator, DispatchesToDualBlockEngine)
{
    InMemoryTrace t = specTrace("li", 20000);
    SimConfig cfg;
    cfg.numBlocks = 2;
    FetchStats via_facade = FetchSimulator(cfg).run(t);
    FetchStats direct = DualBlockEngine(cfg.engine).run(t);
    EXPECT_EQ(via_facade.fetchCycles(), direct.fetchCycles());
}

TEST(FetchSimulator, ThreeAndFourBlocksUseTheMultiEngine)
{
    InMemoryTrace t = specTrace("li", 20000);
    SimConfig cfg;
    cfg.numBlocks = 3;
    FetchStats via_facade = FetchSimulator(cfg).run(t);
    FetchStats direct = MultiBlockEngine(cfg.engine, 3).run(t);
    EXPECT_EQ(via_facade.fetchCycles(), direct.fetchCycles());
}

TEST(FetchSimulatorDeath, RejectsBadBlockCounts)
{
    SimConfig cfg;
    cfg.numBlocks = 5;
    EXPECT_DEATH(FetchSimulator sim(cfg), "blocks");

    SimConfig ds;
    ds.numBlocks = 1;
    ds.engine.doubleSelect = true;
    EXPECT_DEATH(FetchSimulator sim(ds), "double");
}

} // namespace
} // namespace mbbp

/** @file Tests for the JSON result export. */

#include "core/report.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(Report, StatsJsonContainsHeadlineMetrics)
{
    FetchStats s;
    s.instructions = 800;
    s.fetchRequests = 100;
    s.branchesExecuted = 50;
    s.charge(PenaltyKind::CondMispredict, 5);
    std::string json = statsToJson(s);
    EXPECT_NE(json.find("\"instructions\":800"), std::string::npos);
    EXPECT_NE(json.find("\"fetch_cycles\":105"), std::string::npos);
    EXPECT_NE(json.find("\"bep\":0.1"), std::string::npos);
    EXPECT_NE(json.find("\"mispredict\":{\"cycles\":5,\"events\":1}"),
              std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Report, SuiteJsonHasPerProgramAndTotals)
{
    TraceCache cache(5000);
    SimConfig cfg;
    SuiteResult r = runSuite(cfg, cache, { "compress", "swim" });
    std::string json = suiteResultToJson(r);
    EXPECT_NE(json.find("\"compress\""), std::string::npos);
    EXPECT_NE(json.find("\"swim\""), std::string::npos);
    EXPECT_NE(json.find("\"int_total\""), std::string::npos);
    EXPECT_NE(json.find("\"fp_total\""), std::string::npos);
    EXPECT_NE(json.find("\"all_total\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

} // namespace
} // namespace mbbp

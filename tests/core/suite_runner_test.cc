/** @file Tests for trace caching and suite aggregation. */

#include "core/suite_runner.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(TraceCache, GeneratesOnceAndReplays)
{
    TraceCache cache(5000);
    const InMemoryTrace &a = cache.get("compress");
    const InMemoryTrace &b = cache.get("compress");
    EXPECT_EQ(&a, &b);          // same object, not regenerated
    EXPECT_EQ(a.size(), 5000u);
}

TEST(SuiteRunner, SubsetRunsOnlyNamedPrograms)
{
    TraceCache cache(10000);
    SimConfig cfg;
    SuiteResult r = runSuite(cfg, cache, { "compress", "swim" });
    EXPECT_EQ(r.perProgram.size(), 2u);
    EXPECT_TRUE(r.perProgram.count("compress"));
    EXPECT_TRUE(r.perProgram.count("swim"));
}

TEST(SuiteRunner, AggregatesAreSumsOfPerProgram)
{
    TraceCache cache(10000);
    SimConfig cfg;
    SuiteResult r = runSuite(cfg, cache, { "compress", "li", "swim" });
    uint64_t insts = 0, cycles = 0;
    for (const auto &[name, s] : r.perProgram) {
        insts += s.instructions;
        cycles += s.fetchCycles();
    }
    EXPECT_EQ(r.allTotal.instructions, insts);
    EXPECT_EQ(r.allTotal.fetchCycles(), cycles);
    // compress and li are int, swim is fp.
    EXPECT_EQ(r.intTotal.instructions,
              r.perProgram.at("compress").instructions +
                  r.perProgram.at("li").instructions);
    EXPECT_EQ(r.fpTotal.instructions,
              r.perProgram.at("swim").instructions);
}

TEST(SuiteRunner, DefaultRunsWholeSuite)
{
    TraceCache cache(3000);
    SimConfig cfg;
    SuiteResult r = runSuite(cfg, cache);
    EXPECT_EQ(r.perProgram.size(), 18u);
    EXPECT_GT(r.intTotal.instructions, 0u);
    EXPECT_GT(r.fpTotal.instructions, 0u);
}

} // namespace
} // namespace mbbp

/**
 * @file
 * Multi-tenant JobManager tests: concurrently dispatched sweeps stay
 * byte-identical to serial in-process runs, identical resubmission is
 * served from the result cache without replaying, terminal-job
 * retention prunes oldest-first with a typed "expired" answer, and
 * ONE decoded-trace budget bounds the whole per-instruction-count
 * cache family.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/suite_runner.hh"
#include "serve/job_manager.hh"
#include "sweep/sweep_report.hh"
#include "sweep/sweep_runner.hh"

using namespace mbbp;
using namespace mbbp::serve;

namespace
{

const char *kSpecA =
    "{\"name\":\"cj-a\",\"benchmarks\":[\"compress\"],"
    "\"instructions\":20000,\"grid\":{\"historyBits\":[4,6]}}";

const char *kSpecB =
    "{\"name\":\"cj-b\",\"benchmarks\":[\"compress\"],"
    "\"instructions\":20000,\"grid\":{\"historyBits\":[8,10]}}";

/** kSpecA with different instructions: a second TraceCache entry. */
const char *kSpecHalf =
    "{\"name\":\"cj-half\",\"benchmarks\":[\"compress\"],"
    "\"instructions\":10000,\"grid\":{\"historyBits\":[4,6]}}";

ServiceLimits
concurrentLimits()
{
    ServiceLimits limits;
    limits.threads = 2;
    limits.maxActiveJobs = 2;
    limits.maxQueuedJobs = 8;
    return limits;
}

JobStatus
awaitTerminal(JobManager &jm, uint64_t id)
{
    std::optional<JobStatus> st = jm.status(id);
    while (st && !jobStateTerminal(st->state))
        st = jm.waitChange(id, st->seq);
    EXPECT_TRUE(st.has_value());
    return *st;
}

/** The exact bytes the daemon promises for @p specJson. */
std::string
serialReport(const char *specJson)
{
    SweepSpec spec = SweepSpec::fromJson(specJson);
    TraceCache traces(spec.instructions());
    SweepResult direct = runSweep(spec, traces, {});
    return sweepToJson(direct, SweepReportOptions{}) + "\n";
}

TEST(ConcurrentJobs, TwoConcurrentSweepsMatchSerialRuns)
{
    JobManager jm(concurrentLimits(), nullptr);
    SubmitOutcome a = jm.submit(kSpecA);
    SubmitOutcome b = jm.submit(kSpecB);
    ASSERT_TRUE(a.ok()) << a.message;
    ASSERT_TRUE(b.ok()) << b.message;

    EXPECT_EQ(awaitTerminal(jm, a.id).state, JobState::Done);
    EXPECT_EQ(awaitTerminal(jm, b.id).state, JobState::Done);

    // Concurrency must not leak into the bytes: each report is
    // byte-identical to a serial in-process run of its spec.
    EXPECT_EQ(*jm.result(a.id), serialReport(kSpecA));
    EXPECT_EQ(*jm.result(b.id), serialReport(kSpecB));
}

TEST(ConcurrentJobs, ManyInterleavedJobsAllFinishCorrectly)
{
    JobManager jm(concurrentLimits(), nullptr);
    std::string expectA = serialReport(kSpecA);
    std::string expectB = serialReport(kSpecB);

    std::vector<SubmitOutcome> outs;
    for (int i = 0; i < 6; ++i)
        outs.push_back(jm.submit(i % 2 ? kSpecB : kSpecA));
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(outs[i].ok()) << outs[i].message;
        EXPECT_EQ(awaitTerminal(jm, outs[i].id).state,
                  JobState::Done);
        EXPECT_EQ(*jm.result(outs[i].id), i % 2 ? expectB : expectA);
    }
}

TEST(ConcurrentJobs, IdenticalResubmissionServedFromCache)
{
    JobManager jm(concurrentLimits(), nullptr);
    SubmitOutcome first = jm.submit(kSpecA);
    ASSERT_TRUE(first.ok());
    EXPECT_FALSE(first.cached);
    JobStatus done = awaitTerminal(jm, first.id);
    ASSERT_EQ(done.state, JobState::Done);
    EXPECT_FALSE(done.cached);

    // The identical spec again: born Done, no queue, no replay.
    SubmitOutcome second = jm.submit(kSpecA);
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.cached);
    EXPECT_EQ(second.state, JobState::Done);
    EXPECT_NE(second.id, first.id);

    JobStatus st = *jm.status(second.id);
    EXPECT_EQ(st.state, JobState::Done);
    EXPECT_TRUE(st.cached);
    EXPECT_EQ(st.completedJobs, st.totalJobs);

    // Byte-identical to the first run's report.
    EXPECT_EQ(*jm.result(second.id), *jm.result(first.id));
    EXPECT_EQ(jm.resultCacheEntries(), 1u);
    EXPECT_GT(jm.resultCacheBytes(), 0u);

    // A different spec is NOT a hit.
    SubmitOutcome other = jm.submit(kSpecB);
    ASSERT_TRUE(other.ok());
    EXPECT_FALSE(other.cached);
    awaitTerminal(jm, other.id);
}

TEST(ConcurrentJobs, CacheDisabledByZeroEntries)
{
    ServiceLimits limits = concurrentLimits();
    limits.resultCacheEntries = 0;
    JobManager jm(limits, nullptr);
    SubmitOutcome first = jm.submit(kSpecA);
    ASSERT_TRUE(first.ok());
    awaitTerminal(jm, first.id);

    SubmitOutcome second = jm.submit(kSpecA);
    ASSERT_TRUE(second.ok());
    EXPECT_FALSE(second.cached);
    EXPECT_EQ(jm.resultCacheEntries(), 0u);
    awaitTerminal(jm, second.id);
}

TEST(ConcurrentJobs, CacheEvictsByEntryCount)
{
    ServiceLimits limits = concurrentLimits();
    limits.maxActiveJobs = 1;       // deterministic completion order
    limits.resultCacheEntries = 1;
    JobManager jm(limits, nullptr);

    SubmitOutcome a = jm.submit(kSpecA);
    awaitTerminal(jm, a.id);
    SubmitOutcome b = jm.submit(kSpecB);
    awaitTerminal(jm, b.id);
    EXPECT_EQ(jm.resultCacheEntries(), 1u);

    // kSpecA's entry was the LRU victim: resubmission re-runs.
    SubmitOutcome a2 = jm.submit(kSpecA);
    ASSERT_TRUE(a2.ok());
    EXPECT_FALSE(a2.cached);
    awaitTerminal(jm, a2.id);

    // kSpecA now re-cached; it serves the next resubmission.
    SubmitOutcome a3 = jm.submit(kSpecA);
    ASSERT_TRUE(a3.ok());
    EXPECT_TRUE(a3.cached);
}

TEST(ConcurrentJobs, RetentionPrunesOldestTerminalWithTypedExpiry)
{
    ServiceLimits limits = concurrentLimits();
    limits.maxActiveJobs = 1;
    limits.retainTerminalJobs = 1;
    limits.resultCacheEntries = 0;  // isolate retention behavior
    JobManager jm(limits, nullptr);

    SubmitOutcome a = jm.submit(kSpecA);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(awaitTerminal(jm, a.id).state, JobState::Done);
    EXPECT_TRUE(jm.result(a.id).has_value());
    EXPECT_FALSE(jm.expired(a.id));

    SubmitOutcome b = jm.submit(kSpecB);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(awaitTerminal(jm, b.id).state, JobState::Done);

    // The older terminal job is gone -- and says so distinctly.
    EXPECT_FALSE(jm.status(a.id).has_value());
    EXPECT_FALSE(jm.result(a.id).has_value());
    EXPECT_TRUE(jm.expired(a.id));
    EXPECT_FALSE(jm.cancel(a.id));

    // The newest terminal job is always kept.
    EXPECT_TRUE(jm.status(b.id).has_value());
    EXPECT_TRUE(jm.result(b.id).has_value());
    EXPECT_FALSE(jm.expired(b.id));
    EXPECT_EQ(jm.retainedTerminalJobs(), 1u);

    // Ids that never existed are unknown, not expired.
    EXPECT_FALSE(jm.expired(9999));
    EXPECT_FALSE(jm.expired(0));
}

TEST(ConcurrentJobs, RetentionByBytesKeepsNewestResult)
{
    ServiceLimits limits = concurrentLimits();
    limits.maxActiveJobs = 1;
    limits.resultCacheEntries = 0;
    limits.retainResultBytes = 1;   // any report overflows this
    JobManager jm(limits, nullptr);

    SubmitOutcome a = jm.submit(kSpecA);
    EXPECT_EQ(awaitTerminal(jm, a.id).state, JobState::Done);
    // Over byte budget, but the sole (= newest) result survives.
    EXPECT_TRUE(jm.result(a.id).has_value());

    SubmitOutcome b = jm.submit(kSpecB);
    EXPECT_EQ(awaitTerminal(jm, b.id).state, JobState::Done);
    EXPECT_TRUE(jm.expired(a.id));
    EXPECT_TRUE(jm.result(b.id).has_value());
}

TEST(ConcurrentJobs, OneDecodedBudgetAcrossInstructionCounts)
{
    // Measure each instruction count's decoded footprint with a
    // private cache first.
    std::size_t fullBytes = 0;
    std::size_t halfBytes = 0;
    {
        SweepSpec spec = SweepSpec::fromJson(kSpecA);
        TraceCache traces(20000);
        (void)runSweep(spec, traces, {});
        fullBytes = traces.decodedResidentBytes();
    }
    {
        SweepSpec spec = SweepSpec::fromJson(kSpecHalf);
        TraceCache traces(10000);
        (void)runSweep(spec, traces, {});
        halfBytes = traces.decodedResidentBytes();
    }
    ASSERT_GT(fullBytes, 0u);
    ASSERT_GT(halfBytes, 0u);

    // A budget that fits either footprint alone but not both: the
    // manager's whole cache family must stay within it even though
    // the two jobs hit two distinct per-instruction-count caches.
    ServiceLimits limits = concurrentLimits();
    limits.maxActiveJobs = 1;
    limits.decodedBudgetBytes = fullBytes + halfBytes / 2;
    JobManager jm(limits, nullptr);

    SubmitOutcome a = jm.submit(kSpecA);
    EXPECT_EQ(awaitTerminal(jm, a.id).state, JobState::Done);
    SubmitOutcome h = jm.submit(kSpecHalf);
    EXPECT_EQ(awaitTerminal(jm, h.id).state, JobState::Done);

    EXPECT_LE(jm.decodedResidentBytes(), limits.decodedBudgetBytes);
    EXPECT_GT(jm.decodedResidentBytes(), 0u);

    // Bounded memory must not corrupt results.
    EXPECT_EQ(*jm.result(a.id), serialReport(kSpecA));
    EXPECT_EQ(*jm.result(h.id), serialReport(kSpecHalf));
}

} // namespace

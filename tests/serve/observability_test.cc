/**
 * @file
 * Service-grade telemetry tests: per-job metric isolation under
 * concurrent dispatch (each job's counters equal a serial run of its
 * own spec, so their sum equals the serial-run total), trace-id
 * propagation into per-job chrome-trace documents, the per-job
 * metrics/trace lifecycle (live -> frozen -> expired), and the dual
 * JSON / OpenMetrics exposition over real loopback HTTP.
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/suite_runner.hh"
#include "obs/obs.hh"
#include "obs/prom.hh"
#include "serve/job_manager.hh"
#include "serve/server.hh"
#include "sweep/sweep_report.hh"
#include "sweep/sweep_runner.hh"
#include "util/json.hh"

using namespace mbbp;
using namespace mbbp::serve;

namespace
{

const char *kSpecA =
    "{\"name\":\"obs-a\",\"benchmarks\":[\"compress\"],"
    "\"instructions\":20000,\"grid\":{\"historyBits\":[4,6]}}";

const char *kSpecB =
    "{\"name\":\"obs-b\",\"benchmarks\":[\"compress\"],"
    "\"instructions\":20000,\"grid\":{\"historyBits\":[8,10]}}";

/** Metrics only register while obs is on (the daemon enables it at
 *  startup; tests must do the same). */
class ServeObservability : public ::testing::Test
{
  protected:
    void SetUp() override { obs::setEnabled(true); }
    void TearDown() override { obs::setEnabled(false); }
};

ServiceLimits
twoActiveLimits()
{
    ServiceLimits limits;
    limits.threads = 2;
    limits.maxActiveJobs = 2;
    limits.maxQueuedJobs = 8;
    return limits;
}

JobStatus
awaitTerminal(JobManager &jm, uint64_t id)
{
    std::optional<JobStatus> st = jm.status(id);
    while (st && !jobStateTerminal(st->state))
        st = jm.waitChange(id, st->seq);
    EXPECT_TRUE(st.has_value());
    return *st;
}

/** Value of counter @p name in @p snap, or 0. */
uint64_t
counterValue(const obs::Snapshot &snap, const std::string &name)
{
    for (const obs::CounterSample &c : snap.counters)
        if (c.name == name)
            return c.value;
    return 0;
}

/** Run @p specJson serially under a private domain and return that
 *  domain's snapshot -- the ground truth for one job's isolated
 *  share. */
obs::Snapshot
serialDomainSnapshot(const char *specJson)
{
    obs::Domain ref("serial-ref");
    SweepSpec spec = SweepSpec::fromJson(specJson);
    TraceCache traces(spec.instructions());
    SweepOptions opts;
    opts.domain = &ref;
    (void)runSweep(spec, traces, opts);
    return ref.snapshot();
}

TEST_F(ServeObservability, ConcurrentJobsReportIsolatedMetricSums)
{
    obs::Snapshot serialA = serialDomainSnapshot(kSpecA);
    obs::Snapshot serialB = serialDomainSnapshot(kSpecB);

    JobManager jm(twoActiveLimits(), nullptr);
    SubmitOutcome a = jm.submit(kSpecA, "trace-a");
    SubmitOutcome b = jm.submit(kSpecB, "trace-b");
    ASSERT_TRUE(a.ok()) << a.message;
    ASSERT_TRUE(b.ok()) << b.message;
    EXPECT_EQ(awaitTerminal(jm, a.id).state, JobState::Done);
    EXPECT_EQ(awaitTerminal(jm, b.id).state, JobState::Done);

    std::optional<obs::Snapshot> snapA = jm.jobMetrics(a.id);
    std::optional<obs::Snapshot> snapB = jm.jobMetrics(b.id);
    ASSERT_TRUE(snapA.has_value());
    ASSERT_TRUE(snapB.has_value());

#ifndef MBBP_OBS_DISABLED
    // Replay is deterministic, so each concurrently-run job's
    // isolated counters must equal a serial run of its own spec --
    // nothing leaked in from the sibling running on the same pool.
    // That also gives sum parity with two serial runs for free.
    std::vector<std::string> keys;
    for (const obs::CounterSample &c : serialA.counters)
        if (c.name.rfind("predict.", 0) == 0)
            keys.push_back(c.name);
    ASSERT_FALSE(keys.empty());
    for (const std::string &key : keys) {
        EXPECT_EQ(counterValue(*snapA, key),
                  counterValue(serialA, key))
            << key;
        EXPECT_EQ(counterValue(*snapB, key),
                  counterValue(serialB, key))
            << key;
    }

    // The configs differ (distinct historyBits), so B's PHT traffic
    // must differ from A's -- i.e. the isolation check above is not
    // vacuously comparing identical numbers.
    EXPECT_NE(counterValue(serialA, "predict.pht.lookup"), 0u);
#endif

    // Byte-identical results: telemetry is accounting, not behavior.
    SweepSpec specA = SweepSpec::fromJson(kSpecA);
    TraceCache traces(specA.instructions());
    SweepResult direct = runSweep(specA, traces, {});
    EXPECT_EQ(*jm.result(a.id),
              sweepToJson(direct, SweepReportOptions{}) + "\n");
}

TEST_F(ServeObservability, JobTraceCarriesTraceIdAndPhaseSpans)
{
    JobManager jm(twoActiveLimits(), nullptr);
    SubmitOutcome out = jm.submit(kSpecA, "trace-id-xyz");
    ASSERT_TRUE(out.ok());
    JobStatus done = awaitTerminal(jm, out.id);
    EXPECT_EQ(done.state, JobState::Done);
    EXPECT_EQ(done.traceId, "trace-id-xyz");

    std::optional<std::string> trace = jm.jobTrace(out.id);
    ASSERT_TRUE(trace.has_value());
    JsonValue doc = JsonValue::parse(*trace);
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

#ifndef MBBP_OBS_DISABLED
    const JsonValue *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("traceId")->asString(), "trace-id-xyz");

    std::vector<std::string> names;
    for (const JsonValue &e : events->items())
        names.push_back(e.find("name")->asString());
    auto has = [&](const std::string &n) {
        for (const std::string &name : names)
            if (name == n)
                return true;
        return false;
    };
    EXPECT_TRUE(has("job.queued"));
    EXPECT_TRUE(has("sweep run"));
    EXPECT_TRUE(has("job 1 run"));
#endif
}

TEST_F(ServeObservability, JobTelemetryLifecycle)
{
    JobManager jm(twoActiveLimits(), nullptr);

    // Unknown ids have no telemetry.
    EXPECT_FALSE(jm.jobMetrics(999).has_value());
    EXPECT_FALSE(jm.jobTrace(999).has_value());

    SubmitOutcome first = jm.submit(kSpecA, "t1");
    ASSERT_TRUE(first.ok());
    awaitTerminal(jm, first.id);

    // A cache-served resubmission never ran: its metrics exist but
    // are empty, and its trace is a well-formed empty document.
    SubmitOutcome cached = jm.submit(kSpecA, "t2");
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(cached.cached);
    std::optional<obs::Snapshot> snap = jm.jobMetrics(cached.id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_TRUE(snap->counters.empty());
    std::optional<std::string> trace = jm.jobTrace(cached.id);
    ASSERT_TRUE(trace.has_value());
    JsonValue doc = JsonValue::parse(*trace);
    EXPECT_EQ(doc.find("traceEvents")->size(), 0u);
}

TEST_F(ServeObservability, HttpMetricsNegotiatesJsonAndOpenMetrics)
{
    ServerConfig cfg;
    cfg.limits = twoActiveLimits();
    SweepServer server(cfg);
    uint16_t port = server.start();

    // Default stays JSON -- the pre-existing contract.
    HttpResult json = httpRequest(port, "GET", "/metrics");
    ASSERT_EQ(json.status, 200);
    EXPECT_NE(JsonValue::parse(json.body).find("metrics"), nullptr);

    // ?format=prometheus and Accept both yield valid exposition.
    std::string err;
    HttpResult text =
        httpRequest(port, "GET", "/metrics?format=prometheus");
    ASSERT_EQ(text.status, 200);
    EXPECT_TRUE(obs::validateExposition(text.body, err)) << err;

    HttpResult accepted =
        httpRequest(port, "GET", "/metrics", "",
                    { "Accept: application/openmetrics-text" });
    ASSERT_EQ(accepted.status, 200);
    EXPECT_TRUE(obs::validateExposition(accepted.body, err)) << err;

    // Unknown tokens are a typed 400, not silent JSON.
    HttpResult bad =
        httpRequest(port, "GET", "/metrics?format=xml");
    EXPECT_EQ(bad.status, 400);
    EXPECT_EQ(JsonValue::parse(bad.body).find("error")->asString(),
              "bad_format");
}

TEST_F(ServeObservability, HttpPerJobEndpointsRoundTrip)
{
    ServerConfig cfg;
    cfg.limits = twoActiveLimits();
    SweepServer server(cfg);
    uint16_t port = server.start();

    // Submit with a caller-supplied trace id; it must echo in the
    // submit response and every status document.
    HttpResult sub =
        httpRequest(port, "POST", "/jobs", kSpecA,
                    { "X-Trace-Id: e2e-trace-7" });
    ASSERT_EQ(sub.status, 202) << sub.body;
    JsonValue subDoc = JsonValue::parse(sub.body);
    EXPECT_EQ(subDoc.find("trace_id")->asString(), "e2e-trace-7");
    std::string id = std::to_string(
        static_cast<uint64_t>(subDoc.find("id")->asNumber()));

    std::string errBody;
    (void)httpStreamLines(
        port, "/jobs/" + id + "/stream",
        [&](const std::string &line) {
            JsonValue st = JsonValue::parse(line);
            const std::string &state =
                st.find("state")->asString();
            return state != "done" && state != "failed" &&
                   state != "cancelled";
        },
        errBody);

    HttpResult status = httpRequest(port, "GET", "/jobs/" + id);
    ASSERT_EQ(status.status, 200);
    EXPECT_EQ(
        JsonValue::parse(status.body).find("trace_id")->asString(),
        "e2e-trace-7");

    // Per-job metrics in both formats.
    HttpResult jm =
        httpRequest(port, "GET", "/jobs/" + id + "/metrics");
    ASSERT_EQ(jm.status, 200);
    JsonValue metricsDoc = JsonValue::parse(jm.body);
    const JsonValue *metrics = metricsDoc.find("metrics");
    ASSERT_NE(metrics, nullptr);
#ifndef MBBP_OBS_DISABLED
    const JsonValue *counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_NE(counters->find("predict.pht.lookup"), nullptr);
    // Per-job, not global: no HTTP-layer counters in a job snapshot.
    for (std::size_t i = 0; i < counters->size(); ++i)
        EXPECT_NE(counters->keyAt(i).rfind("serve.http.", 0), 0u)
            << counters->keyAt(i);
#endif

    std::string err;
    HttpResult jmText = httpRequest(
        port, "GET", "/jobs/" + id + "/metrics?format=text");
    ASSERT_EQ(jmText.status, 200);
    EXPECT_TRUE(obs::validateExposition(jmText.body, err)) << err;

    // The chrome-trace document parses and carries the trace id.
    HttpResult trace =
        httpRequest(port, "GET", "/jobs/" + id + "/trace");
    ASSERT_EQ(trace.status, 200);
    JsonValue traceDoc = JsonValue::parse(trace.body);
    ASSERT_NE(traceDoc.find("traceEvents"), nullptr);
    EXPECT_TRUE(traceDoc.find("traceEvents")->isArray());
#ifndef MBBP_OBS_DISABLED
    ASSERT_NE(traceDoc.find("otherData"), nullptr);
    EXPECT_EQ(
        traceDoc.find("otherData")->find("traceId")->asString(),
        "e2e-trace-7");
#endif

    // Telemetry endpoints 404 like any other job route.
    HttpResult missing =
        httpRequest(port, "GET", "/jobs/424242/metrics");
    EXPECT_EQ(missing.status, 404);
    HttpResult missingTrace =
        httpRequest(port, "GET", "/jobs/424242/trace");
    EXPECT_EQ(missingTrace.status, 404);
}

} // namespace

/**
 * @file
 * End-to-end service tests over real loopback HTTP: submit / stream
 * / result against a live SweepServer, the byte-parity contract with
 * sweep_cli's report path, restart-from-artifact-store reuse, hostile
 * request bodies, cancellation through the API, and /metrics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "serve/server.hh"
#include "sweep/sweep_report.hh"
#include "sweep/sweep_runner.hh"
#include "util/json.hh"

using namespace mbbp;
using namespace mbbp::serve;

namespace
{

const char *kSpec =
    "{\"name\":\"parity\",\"benchmarks\":[\"compress\",\"swim\"],"
    "\"instructions\":20000,\"grid\":{\"historyBits\":[4,6]}}";

ServerConfig
testConfig()
{
    ServerConfig cfg;
    cfg.limits.threads = 2;
    return cfg;
}

/** Submit and ride the stream to a terminal state; returns job id. */
uint64_t
submitAndWait(uint16_t port, const std::string &spec,
              std::string *finalState = nullptr)
{
    HttpResult res = httpRequest(port, "POST", "/jobs", spec);
    EXPECT_EQ(res.status, 202) << res.body;
    JsonValue doc = JsonValue::parse(res.body);
    uint64_t id =
        static_cast<uint64_t>(doc.find("id")->asNumber());

    std::string state;
    std::string err;
    int status = httpStreamLines(
        port, "/jobs/" + std::to_string(id) + "/stream",
        [&](const std::string &line) {
            JsonValue st = JsonValue::parse(line);
            state = st.find("state")->asString();
            return state != "done" && state != "failed" &&
                   state != "cancelled";
        },
        err);
    EXPECT_EQ(status, 200);
    if (finalState != nullptr)
        *finalState = state;
    return id;
}

TEST(SweepServerTest, EndToEndResultMatchesInProcessSweepByteForByte)
{
    SweepServer server(testConfig());
    uint16_t port = server.start();

    std::string state;
    uint64_t id = submitAndWait(port, kSpec, &state);
    EXPECT_EQ(state, "done");

    HttpResult result = httpRequest(
        port, "GET", "/jobs/" + std::to_string(id) + "/result");
    ASSERT_EQ(result.status, 200);

    SweepSpec spec = SweepSpec::fromJson(kSpec);
    TraceCache traces(20000);
    SweepResult direct = runSweep(spec, traces, {});
    EXPECT_EQ(result.body,
              sweepToJson(direct, SweepReportOptions{}) + "\n");
}

TEST(SweepServerTest, RestartReusesArtifactStoreWithIdenticalBytes)
{
    // Artifact counters are flush-style: they only register while
    // observability is on (the daemon always enables it).
    obs::setEnabled(true);

    std::string dir = ::testing::TempDir() + "mbbp_server_arts";
    std::string first;
    {
        ServerConfig cfg = testConfig();
        cfg.artifactDir = dir;
        SweepServer server(cfg);
        uint16_t port = server.start();
        uint64_t id = submitAndWait(port, kSpec);
        first = httpRequest(port, "GET",
                            "/jobs/" + std::to_string(id) +
                                "/result")
                    .body;
        server.stop();
    }
    {
        // A fresh daemon over the same store must mmap the decoded
        // artifacts (observable on /metrics) and produce the exact
        // same report.
        ServerConfig cfg = testConfig();
        cfg.artifactDir = dir;
        SweepServer server(cfg);
        uint16_t port = server.start();
        uint64_t id = submitAndWait(port, kSpec);
        std::string second =
            httpRequest(port, "GET",
                        "/jobs/" + std::to_string(id) + "/result")
                .body;
        EXPECT_EQ(first, second);

        std::string metrics =
            httpRequest(port, "GET", "/metrics").body;
        EXPECT_NE(metrics.find("artifact.store.hits"),
                  std::string::npos);
    }
}

TEST(SweepServerTest, TruncatedJsonBodyIsTypedBadSpec)
{
    SweepServer server(testConfig());
    uint16_t port = server.start();

    HttpResult res = httpRequest(port, "POST", "/jobs",
                                 "{\"name\":\"oops\", \"bench");
    EXPECT_EQ(res.status, 400);
    JsonValue doc = JsonValue::parse(res.body);
    EXPECT_EQ(doc.find("error")->asString(), "bad_spec");
    ASSERT_NE(doc.find("message"), nullptr);
}

TEST(SweepServerTest, AdmissionRejectionIsObservableOnMetrics)
{
    ServerConfig cfg = testConfig();
    cfg.limits.maxQueuedJobs = 1;
    SweepServer server(cfg);
    uint16_t port = server.start();
    server.jobs().setPaused(true);

    EXPECT_EQ(httpRequest(port, "POST", "/jobs", kSpec).status,
              202);
    HttpResult second = httpRequest(port, "POST", "/jobs", kSpec);
    EXPECT_EQ(second.status, 429);
    JsonValue doc = JsonValue::parse(second.body);
    EXPECT_EQ(doc.find("error")->asString(), "queue_full");

    std::string metrics = httpRequest(port, "GET", "/metrics").body;
    EXPECT_NE(metrics.find("serve.reject.queue_full"),
              std::string::npos);
    EXPECT_NE(metrics.find("serve.jobs.rejected"),
              std::string::npos);
}

TEST(SweepServerTest, CancelThroughApiReachesTerminalState)
{
    SweepServer server(testConfig());
    uint16_t port = server.start();
    server.jobs().setPaused(true);

    HttpResult res = httpRequest(port, "POST", "/jobs", kSpec);
    ASSERT_EQ(res.status, 202);
    JsonValue doc = JsonValue::parse(res.body);
    std::string id = std::to_string(
        static_cast<uint64_t>(doc.find("id")->asNumber()));

    HttpResult cancel =
        httpRequest(port, "POST", "/jobs/" + id + "/cancel");
    EXPECT_EQ(cancel.status, 200);
    JsonValue st = JsonValue::parse(cancel.body);
    EXPECT_EQ(st.find("state")->asString(), "cancelled");

    // Result of a cancelled job is a 409 conflict, not a report.
    HttpResult result =
        httpRequest(port, "GET", "/jobs/" + id + "/result");
    EXPECT_EQ(result.status, 409);

    // Cancellation is observable on /metrics.
    std::string metrics = httpRequest(port, "GET", "/metrics").body;
    EXPECT_NE(metrics.find("serve.jobs.cancelled"),
              std::string::npos);
}

TEST(SweepServerTest, UnknownRoutesAndIdsAre404)
{
    SweepServer server(testConfig());
    uint16_t port = server.start();

    EXPECT_EQ(httpRequest(port, "GET", "/nope").status, 404);
    EXPECT_EQ(httpRequest(port, "GET", "/jobs/777").status, 404);
    EXPECT_EQ(httpRequest(port, "GET", "/jobs/777/result").status,
              404);
    EXPECT_EQ(httpRequest(port, "POST", "/jobs/777/cancel").status,
              404);
    EXPECT_EQ(httpRequest(port, "GET", "/jobs/abc").status, 400);
    EXPECT_EQ(httpRequest(port, "GET", "/jobs").status, 405);
    EXPECT_EQ(httpRequest(port, "GET", "/shutdown").status, 405);
}

TEST(SweepServerTest, HealthzAndShutdownEndpoint)
{
    SweepServer server(testConfig());
    uint16_t port = server.start();

    HttpResult health = httpRequest(port, "GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "{\"status\":\"ok\"}\n");

    EXPECT_FALSE(server.shutdownRequested());
    EXPECT_EQ(httpRequest(port, "POST", "/shutdown").status, 200);
    EXPECT_TRUE(server.shutdownRequested());
    server.stop();
}

TEST(SweepServerTest, CachedResubmissionOverHttp)
{
    // Daemons always enable obs; the result-cache counters need it.
    obs::setEnabled(true);

    ServerConfig cfg = testConfig();
    cfg.limits.maxActiveJobs = 2;
    SweepServer server(cfg);
    uint16_t port = server.start();

    std::string state;
    uint64_t first = submitAndWait(port, kSpec, &state);
    ASSERT_EQ(state, "done");
    std::string firstDoc =
        httpRequest(port, "GET",
                    "/jobs/" + std::to_string(first) + "/result")
            .body;

    // Identical bytes again: the 202 body says done + cached, and
    // the result is available immediately without streaming.
    HttpResult res = httpRequest(port, "POST", "/jobs", kSpec);
    ASSERT_EQ(res.status, 202) << res.body;
    JsonValue doc = JsonValue::parse(res.body);
    EXPECT_EQ(doc.find("state")->asString(), "done");
    ASSERT_NE(doc.find("cached"), nullptr);
    EXPECT_TRUE(doc.find("cached")->asBool());
    uint64_t second =
        static_cast<uint64_t>(doc.find("id")->asNumber());

    HttpResult status = httpRequest(
        port, "GET", "/jobs/" + std::to_string(second));
    ASSERT_EQ(status.status, 200);
    JsonValue st = JsonValue::parse(status.body);
    EXPECT_EQ(st.find("state")->asString(), "done");
    ASSERT_NE(st.find("cached"), nullptr);

    HttpResult result = httpRequest(
        port, "GET", "/jobs/" + std::to_string(second) + "/result");
    ASSERT_EQ(result.status, 200);
    EXPECT_EQ(result.body, firstDoc);

    std::string metrics = httpRequest(port, "GET", "/metrics").body;
    EXPECT_NE(metrics.find("serve.result_cache.hits"),
              std::string::npos);
}

TEST(SweepServerTest, ExpiredJobIdAnswers404WithTypedReason)
{
    ServerConfig cfg = testConfig();
    cfg.limits.retainTerminalJobs = 1;
    cfg.limits.resultCacheEntries = 0;
    SweepServer server(cfg);
    uint16_t port = server.start();

    uint64_t a = submitAndWait(port, kSpec);
    uint64_t b = submitAndWait(port, kSpec);
    ASSERT_NE(a, b);

    // The older terminal job was pruned: 404, but distinctly typed.
    for (const std::string &suffix :
         { std::string(), std::string("/result") }) {
        HttpResult res = httpRequest(
            port, "GET", "/jobs/" + std::to_string(a) + suffix);
        EXPECT_EQ(res.status, 404);
        JsonValue doc = JsonValue::parse(res.body);
        EXPECT_EQ(doc.find("error")->asString(), "expired");
    }
    HttpResult cancel = httpRequest(
        port, "POST", "/jobs/" + std::to_string(a) + "/cancel");
    EXPECT_EQ(cancel.status, 404);
    EXPECT_EQ(JsonValue::parse(cancel.body).find("error")->asString(),
              "expired");

    // A never-issued id stays "unknown_job".
    HttpResult unknown = httpRequest(port, "GET", "/jobs/777777");
    EXPECT_EQ(unknown.status, 404);
    EXPECT_EQ(
        JsonValue::parse(unknown.body).find("error")->asString(),
        "unknown_job");

    // The newest job's report is still there.
    EXPECT_EQ(httpRequest(port, "GET",
                          "/jobs/" + std::to_string(b) + "/result")
                  .status,
              200);
}

TEST(SweepServerTest, MetricsBodyIsTheSharedSnapshotShape)
{
    SweepServer server(testConfig());
    uint16_t port = server.start();

    HttpResult res = httpRequest(port, "GET", "/metrics");
    ASSERT_EQ(res.status, 200);
    // Parses as JSON and has the exact top-level shape the CLI
    // --metrics block uses.
    JsonValue doc = JsonValue::parse(res.body);
    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_NE(metrics->find("counters"), nullptr);
    EXPECT_NE(metrics->find("gauges"), nullptr);
    EXPECT_NE(metrics->find("timers"), nullptr);
    EXPECT_NE(metrics->find("histograms"), nullptr);
}

} // namespace

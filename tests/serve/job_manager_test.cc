/**
 * @file
 * JobManager tests: admission control (typed rejections for
 * malformed specs, unknown benchmarks, over-budget sweeps and a full
 * queue), execution to a result byte-identical with an in-process
 * runSweep, cancellation of queued and running jobs within bounded
 * time, and shutdown semantics.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "serve/job_manager.hh"
#include "sweep/sweep_report.hh"
#include "sweep/sweep_runner.hh"

using namespace mbbp;
using namespace mbbp::serve;

namespace
{

/** A tiny sweep that still exercises real simulation. */
const char *kSpec =
    "{\"name\":\"jm\",\"benchmarks\":[\"compress\"],"
    "\"instructions\":20000,\"grid\":{\"historyBits\":[4,6]}}";

/** A bigger sweep, used to have something to cancel mid-flight. */
const char *kSlowSpec =
    "{\"name\":\"slow\",\"benchmarks\":[\"compress\",\"swim\"],"
    "\"instructions\":100000,"
    "\"grid\":{\"historyBits\":[4,6,8,10,12,14]}}";

ServiceLimits
tinyLimits()
{
    ServiceLimits limits;
    limits.threads = 2;
    limits.maxQueuedJobs = 2;
    return limits;
}

JobStatus
awaitTerminal(JobManager &jm, uint64_t id)
{
    std::optional<JobStatus> st = jm.status(id);
    while (st && !jobStateTerminal(st->state))
        st = jm.waitChange(id, st->seq);
    EXPECT_TRUE(st.has_value());
    return *st;
}

TEST(JobManagerTest, RunsToDoneWithParityResult)
{
    JobManager jm(tinyLimits(), nullptr);
    SubmitOutcome out = jm.submit(kSpec);
    ASSERT_TRUE(out.ok()) << out.message;

    JobStatus st = awaitTerminal(jm, out.id);
    EXPECT_EQ(st.state, JobState::Done);
    EXPECT_EQ(st.totalJobs, 2u);
    EXPECT_EQ(st.completedJobs, 2u);
    EXPECT_EQ(st.name, "jm");

    std::optional<std::string> doc = jm.result(out.id);
    ASSERT_TRUE(doc.has_value());

    // Byte-identical to running the same spec in-process.
    SweepSpec spec = SweepSpec::fromJson(kSpec);
    TraceCache traces(20000);
    SweepResult direct = runSweep(spec, traces, {});
    EXPECT_EQ(*doc, sweepToJson(direct, SweepReportOptions{}) + "\n");
}

TEST(JobManagerTest, MalformedJsonRejected400)
{
    JobManager jm(tinyLimits(), nullptr);
    SubmitOutcome out = jm.submit("{\"name\": \"trunca");
    EXPECT_EQ(out.httpStatus, 400);
    EXPECT_EQ(out.error, "bad_spec");
    EXPECT_FALSE(out.message.empty());
}

TEST(JobManagerTest, UnknownBenchmarkRejectedDistinctly)
{
    JobManager jm(tinyLimits(), nullptr);
    SubmitOutcome out = jm.submit(
        "{\"benchmarks\":[\"not_a_benchmark\"],"
        "\"grid\":{\"historyBits\":[4]}}");
    EXPECT_EQ(out.httpStatus, 400);
    EXPECT_EQ(out.error, "unknown_benchmark");
}

TEST(JobManagerTest, OversizedSweepRejected429)
{
    ServiceLimits limits = tinyLimits();
    limits.maxSweepJobs = 3;
    JobManager jm(limits, nullptr);
    SubmitOutcome out = jm.submit(
        "{\"benchmarks\":[\"compress\"],\"instructions\":20000,"
        "\"grid\":{\"historyBits\":[2,4,6,8]}}");
    EXPECT_EQ(out.httpStatus, 429);
    EXPECT_EQ(out.error, "sweep_too_large");
}

TEST(JobManagerTest, OversizedInstructionsRejected429)
{
    ServiceLimits limits = tinyLimits();
    limits.maxInstructions = 50000;
    JobManager jm(limits, nullptr);
    SubmitOutcome out = jm.submit(
        "{\"benchmarks\":[\"compress\"],\"instructions\":60000,"
        "\"grid\":{\"historyBits\":[4]}}");
    EXPECT_EQ(out.httpStatus, 429);
    EXPECT_EQ(out.error, "instructions_too_large");
}

TEST(JobManagerTest, OversizedSpecTextRejected413)
{
    ServiceLimits limits = tinyLimits();
    limits.maxSpecBytes = 64;
    JobManager jm(limits, nullptr);
    SubmitOutcome out = jm.submit(std::string(65, ' '));
    EXPECT_EQ(out.httpStatus, 413);
    EXPECT_EQ(out.error, "spec_too_large");
}

TEST(JobManagerTest, FullQueueRejected429)
{
    JobManager jm(tinyLimits(), nullptr);    // maxQueuedJobs = 2
    jm.setPaused(true);                      // nothing dispatches

    EXPECT_TRUE(jm.submit(kSpec).ok());
    EXPECT_TRUE(jm.submit(kSpec).ok());
    SubmitOutcome third = jm.submit(kSpec);
    EXPECT_EQ(third.httpStatus, 429);
    EXPECT_EQ(third.error, "queue_full");
    EXPECT_EQ(jm.queueDepth(), 2u);

    // Draining the queue reopens admission.
    jm.setPaused(false);
    SubmitOutcome fourth = jm.submit(kSpec);
    // Either accepted now or the queue is momentarily still full;
    // after the drain, admission must succeed.
    if (!fourth.ok()) {
        while (jm.queueDepth() > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        EXPECT_TRUE(jm.submit(kSpec).ok());
    }
}

TEST(JobManagerTest, CancelQueuedJobIsImmediate)
{
    JobManager jm(tinyLimits(), nullptr);
    jm.setPaused(true);
    SubmitOutcome out = jm.submit(kSpec);
    ASSERT_TRUE(out.ok());

    EXPECT_TRUE(jm.cancel(out.id));
    std::optional<JobStatus> st = jm.status(out.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Cancelled);
    EXPECT_EQ(jm.queueDepth(), 0u);

    jm.setPaused(false);
    EXPECT_FALSE(jm.result(out.id).has_value());
}

TEST(JobManagerTest, CancelRunningJobWithinBoundedTime)
{
    JobManager jm(tinyLimits(), nullptr);
    SubmitOutcome out = jm.submit(kSlowSpec);
    ASSERT_TRUE(out.ok());

    // Wait until it actually starts running.
    std::optional<JobStatus> st = jm.status(out.id);
    while (st && st->state == JobState::Queued)
        st = jm.waitChange(out.id, st->seq);
    ASSERT_TRUE(st.has_value());
    ASSERT_EQ(st->state, JobState::Running);

    auto begin = std::chrono::steady_clock::now();
    EXPECT_TRUE(jm.cancel(out.id));
    JobStatus final_st = awaitTerminal(jm, out.id);
    double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - begin)
            .count();

    EXPECT_EQ(final_st.state, JobState::Cancelled);
    // The checkpoint contract bounds the abort latency to roughly
    // one program replay; 30s is orders of magnitude above that,
    // while still failing fast if cancellation is broken (the full
    // sweep would take far longer than the replay it aborts).
    EXPECT_LT(seconds, 30.0);
    EXPECT_FALSE(jm.result(out.id).has_value());
}

TEST(JobManagerTest, CancelUnknownIdReturnsFalse)
{
    JobManager jm(tinyLimits(), nullptr);
    EXPECT_FALSE(jm.cancel(12345));
    EXPECT_FALSE(jm.status(12345).has_value());
    EXPECT_FALSE(jm.result(12345).has_value());
}

TEST(JobManagerTest, ShutdownCancelsQueuedAndRejectsNewJobs)
{
    JobManager jm(tinyLimits(), nullptr);
    jm.setPaused(true);
    SubmitOutcome queued = jm.submit(kSpec);
    ASSERT_TRUE(queued.ok());

    jm.shutdown();

    std::optional<JobStatus> st = jm.status(queued.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Cancelled);

    SubmitOutcome late = jm.submit(kSpec);
    EXPECT_EQ(late.httpStatus, 503);
    EXPECT_EQ(late.error, "shutting_down");
}

TEST(JobManagerTest, SequentialJobsShareOnePool)
{
    // Two jobs through the same manager both finish and agree with
    // each other (the TraceCache and pool are reused).
    JobManager jm(tinyLimits(), nullptr);
    SubmitOutcome a = jm.submit(kSpec);
    SubmitOutcome b = jm.submit(kSpec);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(awaitTerminal(jm, a.id).state, JobState::Done);
    EXPECT_EQ(awaitTerminal(jm, b.id).state, JobState::Done);
    EXPECT_EQ(*jm.result(a.id), *jm.result(b.id));
}

} // namespace

/**
 * @file
 * Loopback HTTP layer tests: request/response round trips, routing
 * of raw bytes, hostile input (malformed request lines, oversized
 * bodies, truncated requests) answered with errors instead of
 * crashes, and ndjson streaming.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/http.hh"

using namespace mbbp::serve;

namespace
{

/** An echo server: responds with "METHOD TARGET|BODY". */
class HttpTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        HttpServerConfig cfg;
        cfg.maxBodyBytes = 1024;
        port_ = server_.start(
            cfg, [](const HttpRequest &req, HttpConn &conn) {
                if (req.target == "/stream") {
                    conn.beginStream(200, "application/x-ndjson");
                    conn.writeChunk("one\n");
                    conn.writeChunk("two\n");
                    conn.writeChunk("three\n");
                    return;
                }
                if (req.target == "/throws")
                    throw std::runtime_error("handler exploded");
                conn.respond(200, "text/plain",
                             req.method + " " + req.target + "|" +
                                 req.body);
            });
    }

    /** Write raw bytes, read everything back. */
    std::string rawExchange(const std::string &bytes)
    {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port_);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return "";
        }
        (void)!::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        ::shutdown(fd, SHUT_WR);
        std::string out;
        char chunk[4096];
        ssize_t n;
        while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0)
            out.append(chunk, static_cast<std::size_t>(n));
        ::close(fd);
        return out;
    }

    HttpServer server_;
    uint16_t port_ = 0;
};

TEST_F(HttpTest, GetRoundTrip)
{
    HttpResult res = httpRequest(port_, "GET", "/hello");
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.body, "GET /hello|");
}

TEST_F(HttpTest, PostBodyRoundTrip)
{
    std::string body = "{\"k\":\"v with \\n and spaces\"}";
    HttpResult res = httpRequest(port_, "POST", "/jobs", body);
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.body, "POST /jobs|" + body);
}

TEST_F(HttpTest, LargeBodyWithinLimitSurvives)
{
    std::string body(1000, 'x');
    HttpResult res = httpRequest(port_, "POST", "/big", body);
    EXPECT_EQ(res.status, 200);
    EXPECT_EQ(res.body, "POST /big|" + body);
}

TEST_F(HttpTest, OversizedBodyRejected413)
{
    HttpResult res =
        httpRequest(port_, "POST", "/big", std::string(4096, 'y'));
    EXPECT_EQ(res.status, 413);
    EXPECT_NE(res.body.find("body_too_large"), std::string::npos);
}

TEST_F(HttpTest, MalformedRequestLineRejected400)
{
    std::string res = rawExchange("GARBAGE\r\n\r\n");
    EXPECT_NE(res.find("400"), std::string::npos);
    EXPECT_NE(res.find("malformed_request"), std::string::npos);
}

TEST_F(HttpTest, NonNumericContentLengthRejected400)
{
    std::string res = rawExchange(
        "POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    EXPECT_NE(res.find("400"), std::string::npos);
    EXPECT_NE(res.find("bad_content_length"), std::string::npos);
}

TEST_F(HttpTest, TruncatedBodyRejected400)
{
    // Claims 100 bytes, sends 5, then half-closes.
    std::string res = rawExchange(
        "POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\nhello");
    EXPECT_NE(res.find("400"), std::string::npos);
    EXPECT_NE(res.find("truncated_body"), std::string::npos);
}

TEST_F(HttpTest, TruncatedHeadersDropped)
{
    // Never finishes the header block; the server must just hang up.
    std::string res = rawExchange("GET /x HTTP/1.1\r\nHost: h");
    EXPECT_EQ(res, "");
}

TEST_F(HttpTest, HandlerExceptionBecomes500)
{
    HttpResult res = httpRequest(port_, "GET", "/throws");
    EXPECT_EQ(res.status, 500);
    EXPECT_NE(res.body.find("internal"), std::string::npos);
}

TEST_F(HttpTest, StreamDeliversLinesInOrder)
{
    std::vector<std::string> lines;
    std::string err;
    int status = httpStreamLines(
        port_, "/stream",
        [&](const std::string &line) {
            lines.push_back(line);
            return true;
        },
        err);
    EXPECT_EQ(status, 200);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], "one");
    EXPECT_EQ(lines[1], "two");
    EXPECT_EQ(lines[2], "three");
}

TEST_F(HttpTest, StreamEarlyStopIsClean)
{
    int seen = 0;
    std::string err;
    int status = httpStreamLines(
        port_, "/stream",
        [&](const std::string &) { return ++seen < 2; }, err);
    EXPECT_EQ(status, 200);
    EXPECT_EQ(seen, 2);
}

TEST_F(HttpTest, ConcurrentRequestsAllAnswered)
{
    std::vector<std::thread> threads;
    std::vector<int> status(8, 0);
    for (int i = 0; i < 8; ++i)
        threads.emplace_back([this, i, &status] {
            HttpResult res = httpRequest(
                port_, "GET", "/c" + std::to_string(i));
            status[static_cast<std::size_t>(i)] = res.status;
        });
    for (std::thread &t : threads)
        t.join();
    for (int s : status)
        EXPECT_EQ(s, 200);
}

TEST(HttpLifecycleTest, StopThenRestartOnNewPort)
{
    HttpServer a;
    uint16_t pa = a.start({}, [](const HttpRequest &,
                                 HttpConn &conn) {
        conn.respond(200, "text/plain", "a");
    });
    EXPECT_EQ(httpRequest(pa, "GET", "/").body, "a");
    a.stop();
    EXPECT_THROW(httpRequest(pa, "GET", "/"), std::runtime_error);

    HttpServer b;
    uint16_t pb = b.start({}, [](const HttpRequest &,
                                 HttpConn &conn) {
        conn.respond(200, "text/plain", "b");
    });
    EXPECT_EQ(httpRequest(pb, "GET", "/").body, "b");
}

TEST(HttpLifecycleTest, ConnectToClosedPortThrows)
{
    HttpServer s;
    uint16_t port = s.start({}, [](const HttpRequest &,
                                   HttpConn &conn) {
        conn.respond(200, "text/plain", "x");
    });
    s.stop();
    EXPECT_THROW(httpRequest(port, "GET", "/healthz"),
                 std::runtime_error);
}

} // namespace

/** @file Unit tests for the instruction taxonomy. */

#include "isa/inst.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(InstClass, ControlClassification)
{
    EXPECT_FALSE(isControl(InstClass::NonBranch));
    for (InstClass c : { InstClass::CondBranch, InstClass::Jump,
                         InstClass::Call, InstClass::IndirectJump,
                         InstClass::IndirectCall, InstClass::Return })
        EXPECT_TRUE(isControl(c));
}

TEST(InstClass, ConditionalVsUnconditional)
{
    EXPECT_TRUE(isCondBranch(InstClass::CondBranch));
    EXPECT_FALSE(isUnconditional(InstClass::CondBranch));
    EXPECT_FALSE(isUnconditional(InstClass::NonBranch));
    for (InstClass c : { InstClass::Jump, InstClass::Call,
                         InstClass::IndirectJump,
                         InstClass::IndirectCall, InstClass::Return })
        EXPECT_TRUE(isUnconditional(c));
}

TEST(InstClass, Calls)
{
    EXPECT_TRUE(isCall(InstClass::Call));
    EXPECT_TRUE(isCall(InstClass::IndirectCall));
    EXPECT_FALSE(isCall(InstClass::Jump));
    EXPECT_FALSE(isCall(InstClass::Return));
}

TEST(InstClass, IndirectVsDirect)
{
    EXPECT_TRUE(isIndirect(InstClass::IndirectJump));
    EXPECT_TRUE(isIndirect(InstClass::IndirectCall));
    // Returns are indirect in hardware but RAS-predicted; the
    // taxonomy keeps them separate.
    EXPECT_FALSE(isIndirect(InstClass::Return));
    EXPECT_FALSE(isIndirect(InstClass::CondBranch));

    EXPECT_TRUE(isDirect(InstClass::CondBranch));
    EXPECT_TRUE(isDirect(InstClass::Jump));
    EXPECT_TRUE(isDirect(InstClass::Call));
    EXPECT_FALSE(isDirect(InstClass::IndirectJump));
    EXPECT_FALSE(isDirect(InstClass::Return));
}

TEST(InstClass, Names)
{
    EXPECT_STREQ(instClassName(InstClass::NonBranch), "non-branch");
    EXPECT_STREQ(instClassName(InstClass::Return), "return");
    EXPECT_STREQ(instClassName(InstClass::CondBranch), "cond");
}

TEST(DynInst, TransfersControlOnlyWhenTaken)
{
    DynInst i;
    i.cls = InstClass::CondBranch;
    i.taken = false;
    EXPECT_FALSE(i.transfersControl());
    i.taken = true;
    EXPECT_TRUE(i.transfersControl());
}

TEST(DynInst, ToStringShowsTargetWhenTaken)
{
    DynInst i{ 0x100, InstClass::Jump, true, 0x200 };
    std::string s = i.toString();
    EXPECT_NE(s.find("jump"), std::string::npos);
    EXPECT_NE(s.find("200"), std::string::npos);

    DynInst n{ 0x100, InstClass::CondBranch, false, 0x200 };
    EXPECT_EQ(n.toString().find("->"), std::string::npos);
}

TEST(DynInst, EqualityIsFieldWise)
{
    DynInst a{ 1, InstClass::Jump, true, 2 };
    DynInst b = a;
    EXPECT_EQ(a, b);
    b.target = 3;
    EXPECT_NE(a, b);
}

} // namespace
} // namespace mbbp

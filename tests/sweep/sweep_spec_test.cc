/** @file Unit tests for sweep specifications and grid expansion. */

#include "sweep/sweep_spec.hh"

#include <algorithm>

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(ApplyConfigField, SetsKnownFields)
{
    SimConfig cfg;
    applyConfigField(cfg, "historyBits", "12");
    applyConfigField(cfg, "numBlocks", "3");
    applyConfigField(cfg, "targetKind", "btb");
    applyConfigField(cfg, "nearBlock", "true");
    EXPECT_EQ(cfg.engine.historyBits, 12u);
    EXPECT_EQ(cfg.numBlocks, 3u);
    EXPECT_EQ(cfg.engine.targetKind, TargetKind::Btb);
    EXPECT_TRUE(cfg.engine.nearBlock);
}

TEST(ApplyConfigField, UnknownFieldNamesTheField)
{
    SimConfig cfg;
    try {
        applyConfigField(cfg, "historyBitz", "10");
        FAIL() << "expected SweepError";
    } catch (const SweepError &e) {
        EXPECT_NE(std::string(e.what()).find("historyBitz"),
                  std::string::npos);
    }
}

TEST(ApplyConfigField, BadValueNamesTheField)
{
    SimConfig cfg;
    EXPECT_THROW(applyConfigField(cfg, "historyBits", "many"),
                 SweepError);
    EXPECT_THROW(applyConfigField(cfg, "nearBlock", "maybe"),
                 SweepError);
    EXPECT_THROW(applyConfigField(cfg, "cacheType", "fancy"),
                 SweepError);
}

TEST(SweepFieldNames, SortedAndNonEmpty)
{
    const auto &names = sweepFieldNames();
    ASSERT_FALSE(names.empty());
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_NE(std::find(names.begin(), names.end(), "historyBits"),
              names.end());
}

TEST(SweepSpec, GridExpandsRowMajorLastAxisFastest)
{
    SweepSpec spec;
    spec.addAxis("historyBits", { "6", "8" });
    spec.addAxis("numSelectTables", { "1", "2", "4" });

    EXPECT_EQ(spec.jobCount(), 6u);
    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 6u);

    const unsigned expect_h[] = { 6, 6, 6, 8, 8, 8 };
    const unsigned expect_st[] = { 1, 2, 4, 1, 2, 4 };
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].index, i);
        EXPECT_EQ(jobs[i].config.engine.historyBits, expect_h[i]);
        EXPECT_EQ(jobs[i].config.engine.numSelectTables,
                  expect_st[i]);
        ASSERT_EQ(jobs[i].params.size(), 2u);
        EXPECT_EQ(jobs[i].params[0].first, "historyBits");
        EXPECT_EQ(jobs[i].params[1].first, "numSelectTables");
    }
}

TEST(SweepSpec, PointsFollowTheGrid)
{
    SweepSpec spec;
    spec.addAxis("historyBits", { "6", "8" });
    spec.addPoint({ { "numBlocks", "4" } });

    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_EQ(jobs[2].config.numBlocks, 4u);
    ASSERT_EQ(jobs[2].params.size(), 1u);
    EXPECT_EQ(jobs[2].params[0].first, "numBlocks");
}

TEST(SweepSpec, BaseAppliesToEveryJob)
{
    SweepSpec spec;
    spec.setBase("numBlocks", "3");
    spec.addAxis("historyBits", { "6", "8" });

    for (const auto &job : spec.expand()) {
        EXPECT_EQ(job.config.numBlocks, 3u);
        // base assignments are not sweep params
        ASSERT_EQ(job.params.size(), 1u);
        EXPECT_EQ(job.params[0].first, "historyBits");
    }
}

TEST(SweepSpec, EmptySpecIsOneBaselineJob)
{
    // A grid of zero axes is the cartesian identity: one job with
    // the base (default) configuration and no sweep params.
    SweepSpec spec;
    EXPECT_EQ(spec.jobCount(), 1u);
    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_TRUE(jobs[0].params.empty());
}

TEST(SweepSpec, PointsAloneSkipTheBaselineJob)
{
    SweepSpec spec;
    spec.addPoint({ { "historyBits", "8" } });
    EXPECT_EQ(spec.jobCount(), 1u);
    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].config.engine.historyBits, 8u);
}

TEST(SweepSpec, EmptyAxisIsAnError)
{
    SweepSpec spec;
    spec.addAxis("historyBits", {});
    EXPECT_THROW(spec.expand(), SweepError);
}

TEST(SweepSpec, DuplicateAxisFieldIsAnError)
{
    SweepSpec spec;
    spec.addAxis("historyBits", { "6" });
    EXPECT_THROW(spec.addAxis("historyBits", { "8" }), SweepError);
}

TEST(SweepSpec, UnknownBenchmarkIsAnError)
{
    SweepSpec spec;
    EXPECT_THROW(spec.setBenchmarks({ "gcc", "no-such-benchmark" }),
                 SweepError);
}

TEST(SweepSpec, SingleValueAxesDegenerateToOneJob)
{
    SweepSpec spec;
    spec.addAxis("historyBits", { "10" });
    spec.addAxis("numBlocks", { "2" });
    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].config.engine.historyBits, 10u);
    EXPECT_EQ(jobs[0].config.numBlocks, 2u);
}

TEST(SweepSpec, BlockWidthAndCacheTypeComposeInEitherOrder)
{
    SweepSpec a, b;
    a.setBase("blockWidth", "16");
    a.addAxis("cacheType", { "extend" });
    b.setBase("cacheType", "extend");
    b.addAxis("blockWidth", { "16" });
    auto ja = a.expand(), jb = b.expand();
    ASSERT_EQ(ja.size(), 1u);
    ASSERT_EQ(jb.size(), 1u);
    EXPECT_EQ(ja[0].config.engine.icache.blockWidth, 16u);
    EXPECT_EQ(ja[0].config.engine.icache.blockWidth,
              jb[0].config.engine.icache.blockWidth);
    EXPECT_EQ(ja[0].config.engine.icache.type, CacheType::Extended);
    EXPECT_EQ(ja[0].config.engine.icache.type,
              jb[0].config.engine.icache.type);
}

TEST(SweepSpecJson, ParsesTheDocumentedForm)
{
    SweepSpec spec = SweepSpec::fromJson(R"({
        "name": "history-sweep",
        "benchmarks": ["gcc", "swim"],
        "instructions": 12345,
        "base": { "numBlocks": 2 },
        "grid": { "historyBits": [6, 8, 10] },
        "points": [ { "numBlocks": 1, "historyBits": 10 } ]
    })");
    EXPECT_EQ(spec.name(), "history-sweep");
    ASSERT_EQ(spec.benchmarks().size(), 2u);
    EXPECT_EQ(spec.benchmarks()[0], "gcc");
    EXPECT_EQ(spec.instructions(), 12345u);

    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].config.engine.historyBits, 6u);
    EXPECT_EQ(jobs[0].config.numBlocks, 2u);
    EXPECT_EQ(jobs[3].config.numBlocks, 1u);
    EXPECT_EQ(jobs[3].config.engine.historyBits, 10u);
}

TEST(SweepSpecJson, RejectsUnknownTopLevelKeys)
{
    EXPECT_THROW(SweepSpec::fromJson(R"({ "grid": {}, "axes": {} })"),
                 SweepError);
}

TEST(SweepSpecJson, RejectsUnknownConfigFieldsAtParseTime)
{
    EXPECT_THROW(
        SweepSpec::fromJson(R"({ "grid": { "notAField": [1] } })"),
        SweepError);
}

TEST(SweepSpecJson, WrapsMalformedJsonInSweepError)
{
    try {
        SweepSpec::fromJson("{ \"grid\": ");
        FAIL() << "expected SweepError";
    } catch (const SweepError &e) {
        EXPECT_FALSE(std::string(e.what()).empty());
    }
}

TEST(SweepSpecJson, MissingFileNamesThePath)
{
    try {
        SweepSpec::fromJsonFile("/nonexistent/sweep.json");
        FAIL() << "expected SweepError";
    } catch (const SweepError &e) {
        EXPECT_NE(std::string(e.what()).find("/nonexistent/sweep.json"),
                  std::string::npos);
    }
}

} // namespace
} // namespace mbbp

/**
 * @file
 * SweepOptions::domain tests: two sweeps multiplexed onto one shared
 * ThreadPool under different obs::Domains keep fully separate metric
 * shares (each equal to a serial run of the same spec), the parent
 * domain aggregates both, and the domain knob never changes a single
 * result byte.
 */

#include "sweep/sweep_runner.hh"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/suite_runner.hh"
#include "obs/obs.hh"
#include "sweep/sweep_report.hh"
#include "sweep/thread_pool.hh"

namespace mbbp
{
namespace
{

SweepSpec
specWith(const std::string &name, const std::string &bits)
{
    return SweepSpec::fromJson(
        "{\"name\":\"" + name +
        "\",\"benchmarks\":[\"compress\"],"
        "\"instructions\":20000,\"grid\":{\"historyBits\":[" +
        bits + "]}}");
}

uint64_t
counterValue(const obs::Snapshot &snap, const std::string &name)
{
    for (const obs::CounterSample &c : snap.counters)
        if (c.name == name)
            return c.value;
    return 0;
}

class SweepDomain : public ::testing::Test
{
  protected:
    void SetUp() override { obs::setEnabled(true); }
    void TearDown() override { obs::setEnabled(false); }
};

TEST_F(SweepDomain, ConcurrentSweepsOnOnePoolKeepSeparateShares)
{
    SweepSpec specA = specWith("dom-a", "4,6");
    SweepSpec specB = specWith("dom-b", "8,10");

    // Ground truth: each spec serially, each in a private domain.
    obs::Snapshot serialA;
    obs::Snapshot serialB;
    std::string bytesA;
    std::string bytesB;
    {
        obs::Domain ref("ref-a");
        TraceCache traces(20000);
        SweepOptions opts;
        opts.domain = &ref;
        SweepResult r = runSweep(specA, traces, opts);
        bytesA = sweepToJson(r, SweepReportOptions{});
        serialA = ref.snapshot();
    }
    {
        obs::Domain ref("ref-b");
        TraceCache traces(20000);
        SweepOptions opts;
        opts.domain = &ref;
        SweepResult r = runSweep(specB, traces, opts);
        bytesB = sweepToJson(r, SweepReportOptions{});
        serialB = ref.snapshot();
    }

    // Now both sweeps concurrently on ONE shared pool, with a shared
    // TraceCache, each under its own parented domain.
    obs::Domain parent("pool-parent");
    obs::Domain domA("conc-a", &parent);
    obs::Domain domB("conc-b", &parent);
    ThreadPool pool(2);
    TraceCache shared(20000);
    // Warm the cache first so neither concurrent sweep's domain is
    // charged the one-time trace generate/decode work -- which would
    // otherwise land on whichever job got there first.
    (void)shared.decoded("compress",
                         specA.expand()[0].config.engine.icache);

    std::string concA;
    std::string concB;
    std::thread ta([&] {
        SweepOptions opts;
        opts.pool = &pool;
        opts.domain = &domA;
        concA = sweepToJson(runSweep(specA, shared, opts),
                            SweepReportOptions{});
    });
    std::thread tb([&] {
        SweepOptions opts;
        opts.pool = &pool;
        opts.domain = &domB;
        concB = sweepToJson(runSweep(specB, shared, opts),
                            SweepReportOptions{});
    });
    ta.join();
    tb.join();

    // The domain knob is accounting only: bytes are unchanged.
    EXPECT_EQ(concA, bytesA);
    EXPECT_EQ(concB, bytesB);

#ifndef MBBP_OBS_DISABLED
    obs::Snapshot gotA = domA.snapshot();
    obs::Snapshot gotB = domB.snapshot();

    std::vector<std::string> keys;
    for (const obs::CounterSample &c : serialA.counters)
        if (c.name.rfind("predict.", 0) == 0)
            keys.push_back(c.name);
    ASSERT_FALSE(keys.empty());
    for (const std::string &key : keys) {
        uint64_t a = counterValue(serialA, key);
        uint64_t b = counterValue(serialB, key);
        // Isolation: each concurrent sweep's share equals its own
        // serial run exactly, and the parent holds the sum.
        EXPECT_EQ(counterValue(gotA, key), a) << key;
        EXPECT_EQ(counterValue(gotB, key), b) << key;
        EXPECT_EQ(counterValue(parent.snapshot(), key), a + b)
            << key;
    }
    EXPECT_NE(counterValue(serialA, "predict.pht.lookup"), 0u);
#endif
}

TEST_F(SweepDomain, NullDomainInheritsTheCallersCurrent)
{
    obs::Domain caller("caller");
    SweepSpec spec = specWith("dom-inherit", "4");
    TraceCache traces(20000);
    {
        obs::ScopedDomain scope(&caller);
        SweepOptions opts;    // domain left null
        (void)runSweep(spec, traces, opts);
    }
#ifndef MBBP_OBS_DISABLED
    EXPECT_NE(counterValue(caller.snapshot(),
                           "predict.pht.lookup"),
              0u);
#endif
}

} // namespace
} // namespace mbbp

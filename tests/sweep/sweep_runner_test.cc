/** @file Runner + report tests: determinism across thread counts. */

#include "sweep/sweep_runner.hh"

#include <atomic>

#include <gtest/gtest.h>

#include "sweep/sweep_report.hh"

namespace mbbp
{
namespace
{

// Short traces keep the whole suite-of-sweeps fast.
constexpr std::size_t kInsts = 6000;

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.setName("determinism");
    spec.setBenchmarks({ "gcc", "compress", "swim" });
    spec.addAxis("historyBits", { "6", "8" });
    spec.addAxis("numBlocks", { "1", "2" });
    return spec;
}

TEST(SweepRunner, ProducesOneResultPerJobInOrder)
{
    TraceCache traces(kInsts);
    SweepResult r = runSweep(smallSpec(), traces);
    ASSERT_EQ(r.jobs.size(), 4u);
    for (std::size_t i = 0; i < r.jobs.size(); ++i) {
        EXPECT_EQ(r.jobs[i].job.index, i);
        EXPECT_GT(r.jobs[i].result.allTotal.instructions, 0u);
        EXPECT_GE(r.jobs[i].seconds, 0.0);
    }
    EXPECT_EQ(r.name, "determinism");
    EXPECT_GT(r.wallSeconds, 0.0);
}

TEST(SweepRunner, ReportsAreByteIdenticalAcrossThreadCounts)
{
    TraceCache traces(kInsts);
    SweepOptions serial;
    serial.threads = 1;
    SweepOptions wide;
    wide.threads = 8;

    SweepResult r1 = runSweep(smallSpec(), traces, serial);
    SweepResult r8 = runSweep(smallSpec(), traces, wide);

    EXPECT_EQ(sweepToJson(r1), sweepToJson(r8));
    EXPECT_EQ(sweepToCsv(r1), sweepToCsv(r8));

    SweepReportOptions aggregates_only;
    aggregates_only.perProgram = false;
    EXPECT_EQ(sweepToJson(r1, aggregates_only),
              sweepToJson(r8, aggregates_only));
}

TEST(SweepRunner, TimedReportsRecordThreadCount)
{
    TraceCache traces(kInsts);
    SweepOptions wide;
    wide.threads = 3;
    SweepResult r = runSweep(smallSpec(), traces, wide);
    EXPECT_EQ(r.threads, 3u);

    SweepReportOptions timed;
    timed.timings = true;
    std::string json = sweepToJson(r, timed);
    EXPECT_NE(json.find("\"threads\":3"), std::string::npos);
    EXPECT_NE(json.find("wall_seconds"), std::string::npos);
}

TEST(SweepRunner, ProgressCallbackSeesEveryJobSerialized)
{
    TraceCache traces(kInsts);
    SweepOptions opts;
    opts.threads = 4;
    std::atomic<int> in_callback{ 0 };
    std::size_t calls = 0, last_completed = 0;
    bool overlapped = false;
    opts.progress = [&](const SweepProgress &p) {
        if (++in_callback != 1)
            overlapped = true;
        ++calls;
        last_completed = p.completed;
        EXPECT_EQ(p.total, 4u);
        EXPECT_NE(p.job, nullptr);
        --in_callback;
    };
    runSweep(smallSpec(), traces, opts);
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(last_completed, 4u);
    EXPECT_FALSE(overlapped);
}

TEST(SweepRunner, WorkerExceptionsPropagateToTheCaller)
{
    // The progress callback runs inside pool tasks, so a throw here
    // exercises the same capture-and-rethrow path a failing job
    // would take: it must surface from runSweep, not kill a worker.
    TraceCache traces(kInsts);
    SweepOptions opts;
    opts.threads = 2;
    opts.progress = [](const SweepProgress &) {
        throw std::runtime_error("observer failed");
    };
    EXPECT_THROW(runSweep(smallSpec(), traces, opts),
                 std::runtime_error);
}

TEST(SweepReport, CsvHasHeaderPlusRowPerScope)
{
    TraceCache traces(kInsts);
    SweepSpec spec;
    spec.setBenchmarks({ "gcc", "swim" });
    spec.addAxis("historyBits", { "6" });
    SweepResult r = runSweep(spec, traces);

    std::string csv = sweepToCsv(r);
    std::size_t lines = 0;
    for (char c : csv)
        if (c == '\n')
            ++lines;
    // header + (int, fp, all, gcc, swim) for the single job
    EXPECT_EQ(lines, 6u);
    EXPECT_EQ(csv.compare(0, 16, "job,historyBits,"), 0);
}

} // namespace
} // namespace mbbp

/** @file Runner + report tests: determinism across thread counts. */

#include "sweep/sweep_runner.hh"

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/bench_diff.hh"
#include "obs/obs.hh"
#include "sweep/sweep_report.hh"
#include "util/json.hh"

namespace mbbp
{
namespace
{

// Short traces keep the whole suite-of-sweeps fast.
constexpr std::size_t kInsts = 6000;

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.setName("determinism");
    spec.setBenchmarks({ "gcc", "compress", "swim" });
    spec.addAxis("historyBits", { "6", "8" });
    spec.addAxis("numBlocks", { "1", "2" });
    return spec;
}

TEST(SweepRunner, ProducesOneResultPerJobInOrder)
{
    TraceCache traces(kInsts);
    SweepResult r = runSweep(smallSpec(), traces);
    ASSERT_EQ(r.jobs.size(), 4u);
    for (std::size_t i = 0; i < r.jobs.size(); ++i) {
        EXPECT_EQ(r.jobs[i].job.index, i);
        EXPECT_GT(r.jobs[i].result.allTotal.instructions, 0u);
        EXPECT_GE(r.jobs[i].seconds, 0.0);
    }
    EXPECT_EQ(r.name, "determinism");
    EXPECT_GT(r.wallSeconds, 0.0);
}

TEST(SweepRunner, ReportsAreByteIdenticalAcrossThreadCounts)
{
    TraceCache traces(kInsts);
    SweepOptions serial;
    serial.threads = 1;
    SweepOptions wide;
    wide.threads = 8;

    SweepResult r1 = runSweep(smallSpec(), traces, serial);
    SweepResult r8 = runSweep(smallSpec(), traces, wide);

    EXPECT_EQ(sweepToJson(r1), sweepToJson(r8));
    EXPECT_EQ(sweepToCsv(r1), sweepToCsv(r8));

    SweepReportOptions aggregates_only;
    aggregates_only.perProgram = false;
    EXPECT_EQ(sweepToJson(r1, aggregates_only),
              sweepToJson(r8, aggregates_only));
}

TEST(SweepRunner, BatchedReplayReportsAreByteIdentical)
{
    // Three engine kinds x two history depths: the batched schedule
    // folds each kind's pair of jobs into one lockstep tile, and the
    // reports must come out byte-identical to the per-config path --
    // at one thread and at eight.
    TraceCache traces(kInsts);
    SweepSpec spec;
    spec.setName("batched-equivalence");
    spec.setBenchmarks({ "gcc", "compress", "swim" });
    spec.addAxis("numBlocks", { "1", "2", "4" });
    spec.addAxis("historyBits", { "6", "8" });

    SweepOptions plain;
    plain.threads = 1;
    SweepResult ref = runSweep(spec, traces, plain);

    SweepOptions batched1 = plain;
    batched1.batchedReplay = true;
    SweepOptions batched8 = batched1;
    batched8.threads = 8;

    SweepResult b1 = runSweep(spec, traces, batched1);
    SweepResult b8 = runSweep(spec, traces, batched8);

    EXPECT_EQ(sweepToJson(ref), sweepToJson(b1));
    EXPECT_EQ(sweepToJson(ref), sweepToJson(b8));
    EXPECT_EQ(sweepToCsv(ref), sweepToCsv(b1));
    EXPECT_EQ(sweepToCsv(ref), sweepToCsv(b8));
}

TEST(SweepRunner, BatchedReplayFallsBackOnMixedGeometry)
{
    // Every (numBlocks, blockWidth) point has a unique BatchKey, so
    // no tile forms and every job takes the per-config fallback; the
    // run must still succeed and match the plain path exactly.
    TraceCache traces(kInsts);
    SweepSpec spec;
    spec.setName("batched-fallback");
    spec.setBenchmarks({ "gcc", "swim" });
    spec.addAxis("numBlocks", { "1", "2" });
    spec.addAxis("blockWidth", { "4", "16" });

    SweepOptions plain;
    plain.threads = 2;
    SweepOptions batched = plain;
    batched.batchedReplay = true;

    SweepResult ref = runSweep(spec, traces, plain);
    SweepResult b = runSweep(spec, traces, batched);

    EXPECT_EQ(sweepToJson(ref), sweepToJson(b));
    EXPECT_EQ(sweepToCsv(ref), sweepToCsv(b));
}

TEST(SweepRunner, BatchedReplayRaggedTilesStayExact)
{
    // maxLanes=2 over a 3-lane group forces a ragged trailing tile;
    // mixing in a singleton geometry exercises tiles and fallback in
    // the same run.
    TraceCache traces(kInsts);
    SweepSpec spec;
    spec.setName("batched-ragged");
    spec.setBenchmarks({ "gcc", "compress" });
    spec.addAxis("numBlocks", { "2" });
    spec.addAxis("historyBits", { "4", "6", "8" });

    SweepOptions plain;
    plain.threads = 1;
    SweepOptions batched = plain;
    batched.batchedReplay = true;
    batched.batchTile.maxLanes = 2;

    SweepResult ref = runSweep(spec, traces, plain);
    SweepResult b = runSweep(spec, traces, batched);
    EXPECT_EQ(sweepToJson(ref), sweepToJson(b));
}

TEST(SweepRunner, BatchedProgressSeesEveryJobSerialized)
{
    TraceCache traces(kInsts);
    SweepOptions opts;
    opts.threads = 4;
    opts.batchedReplay = true;
    std::atomic<int> in_callback{ 0 };
    std::size_t calls = 0, last_completed = 0;
    bool overlapped = false;
    opts.progress = [&](const SweepProgress &p) {
        if (++in_callback != 1)
            overlapped = true;
        ++calls;
        last_completed = p.completed;
        EXPECT_EQ(p.total, 4u);
        EXPECT_NE(p.job, nullptr);
        --in_callback;
    };
    runSweep(smallSpec(), traces, opts);
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(last_completed, 4u);
    EXPECT_FALSE(overlapped);
}

TEST(SweepRunner, TimedReportsRecordThreadCount)
{
    TraceCache traces(kInsts);
    SweepOptions wide;
    wide.threads = 3;
    SweepResult r = runSweep(smallSpec(), traces, wide);
    EXPECT_EQ(r.threads, 3u);

    SweepReportOptions timed;
    timed.timings = true;
    std::string json = sweepToJson(r, timed);
    EXPECT_NE(json.find("\"threads\":3"), std::string::npos);
    EXPECT_NE(json.find("wall_seconds"), std::string::npos);
}

TEST(SweepRunner, ProgressCallbackSeesEveryJobSerialized)
{
    TraceCache traces(kInsts);
    SweepOptions opts;
    opts.threads = 4;
    std::atomic<int> in_callback{ 0 };
    std::size_t calls = 0, last_completed = 0;
    bool overlapped = false;
    opts.progress = [&](const SweepProgress &p) {
        if (++in_callback != 1)
            overlapped = true;
        ++calls;
        last_completed = p.completed;
        EXPECT_EQ(p.total, 4u);
        EXPECT_NE(p.job, nullptr);
        --in_callback;
    };
    runSweep(smallSpec(), traces, opts);
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(last_completed, 4u);
    EXPECT_FALSE(overlapped);
}

TEST(SweepRunner, WorkerExceptionsPropagateToTheCaller)
{
    // The progress callback runs inside pool tasks, so a throw here
    // exercises the same capture-and-rethrow path a failing job
    // would take: it must surface from runSweep, not kill a worker.
    TraceCache traces(kInsts);
    SweepOptions opts;
    opts.threads = 2;
    opts.progress = [](const SweepProgress &) {
        throw std::runtime_error("observer failed");
    };
    EXPECT_THROW(runSweep(smallSpec(), traces, opts),
                 std::runtime_error);
}

#ifndef MBBP_OBS_DISABLED

/** The "counters" subobject of a metrics-bearing report, filtered to
 *  the per-run-deterministic engine and predictor counts. Timers,
 *  pool scheduling counters and the trace cache's build counts are
 *  wall-clock or warmup shaped, so reset hygiene is asserted on the
 *  simulation counters only. */
std::vector<std::pair<std::string, double>>
reportSimCounters(const SweepResult &r)
{
    SweepReportOptions with_metrics;
    with_metrics.metrics = true;
    JsonValue doc = JsonValue::parse(sweepToJson(r, with_metrics));
    const JsonValue *metrics = doc.find("metrics");
    if (metrics == nullptr)
        return {};
    const JsonValue *counters = metrics->find("counters");
    if (counters == nullptr)
        return {};
    std::vector<std::pair<std::string, double>> sim;
    for (auto &[name, v] : obs::flattenScalars(*counters))
        if (name.rfind("engine.", 0) == 0 ||
            name.rfind("predict.", 0) == 0)
            sim.emplace_back(name, v);
    return sim;
}

TEST(SweepRunner, RegistryResetBetweenRunsKeepsMetricsFresh)
{
    // Two identical runs with an obs::resetAll() between them must
    // report identical counters: stale counts from the first run
    // must not leak into the second report's metrics block. A third
    // run WITHOUT the reset shows the leak this hygiene prevents.
    TraceCache traces(kInsts);
    SweepOptions serial;    // one thread: pool counters deterministic
    serial.threads = 1;

    obs::resetAll();
    obs::setEnabled(true);
    SweepResult r1 = runSweep(smallSpec(), traces, serial);
    auto counters1 = reportSimCounters(r1);
    ASSERT_FALSE(counters1.empty());

    obs::resetAll();
    SweepResult r2 = runSweep(smallSpec(), traces, serial);
    auto counters2 = reportSimCounters(r2);
    EXPECT_EQ(counters1, counters2);

    // No reset: the registry now reports two runs' worth of events
    // -- every simulation counter exactly doubles.
    SweepResult r3 = runSweep(smallSpec(), traces, serial);
    auto counters3 = reportSimCounters(r3);
    ASSERT_EQ(counters3.size(), counters1.size());
    for (std::size_t i = 0; i < counters1.size(); ++i) {
        EXPECT_EQ(counters3[i].first, counters1[i].first);
        EXPECT_EQ(counters3[i].second, 2.0 * counters1[i].second)
            << counters1[i].first;
    }

    obs::setEnabled(false);
    obs::resetAll();
}

#endif // MBBP_OBS_DISABLED

TEST(SweepReport, CsvHasHeaderPlusRowPerScope)
{
    TraceCache traces(kInsts);
    SweepSpec spec;
    spec.setBenchmarks({ "gcc", "swim" });
    spec.addAxis("historyBits", { "6" });
    SweepResult r = runSweep(spec, traces);

    std::string csv = sweepToCsv(r);
    std::size_t lines = 0;
    for (char c : csv)
        if (c == '\n')
            ++lines;
    // header + (int, fp, all, gcc, swim) for the single job
    EXPECT_EQ(lines, 6u);
    EXPECT_EQ(csv.compare(0, 16, "job,historyBits,"), 0);
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the work-stealing thread pool. */

#include "sweep/thread_pool.hh"

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{ 0 };
    for (int i = 0; i < 200; ++i)
        pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ZeroRequestsDefaultWorkerCount)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.numWorkers(), 1u);
    EXPECT_EQ(pool.numWorkers(), ThreadPool::defaultThreads());
}

TEST(ThreadPool, WaitWithNothingSubmittedReturns)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait();
}

TEST(ThreadPool, WorkersMaySubmitMoreWork)
{
    ThreadPool pool(3);
    std::atomic<int> count{ 0 };
    for (int i = 0; i < 8; ++i)
        pool.submit([&] {
            ++count;
            pool.submit([&] { ++count; });
        });
    pool.wait();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, TaskExceptionRethrownFromWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{ 0 };
    for (int i = 0; i < 10; ++i)
        pool.submit([&, i] {
            if (i == 3)
                throw std::runtime_error("task 3 failed");
            ++count;
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The failure must not cancel the rest of the batch.
    EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPool, PoolStaysUsableAfterException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    std::atomic<int> count{ 0 };
    for (int i = 0; i < 5; ++i)
        pool.submit([&] { ++count; });
    pool.wait();    // the old exception must not resurface
    EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, OneExceptionPerBatchAndThenCleared)
{
    // Which of several failing tasks runs first depends on stealing
    // order; exactly one exception must surface, and wait() must
    // clear it for the next batch.
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("alpha"); });
    pool.submit([] { throw std::runtime_error("beta"); });
    try {
        pool.wait();
        FAIL() << "wait() should have thrown";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        EXPECT_TRUE(what == "alpha" || what == "beta") << what;
    }
    pool.wait();    // nothing outstanding, nothing to rethrow
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> count{ 0 };
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ++count; });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, StressManyTinyTasksFromManyThreads)
{
    // Thousands of near-empty tasks submitted from workers and the
    // driver at once: the claim/publish race in workerLoop fires
    // constantly under this load, so the bounded-spin path (give the
    // claim back and re-wait) gets exercised without livelock. Run
    // under TSan/ASan in CI.
    ThreadPool pool(8);
    std::atomic<int> count{ 0 };
    constexpr int kOuter = 500;
    for (int i = 0; i < kOuter; ++i)
        pool.submit([&] {
            ++count;
            // Fan out from inside the pool: submits race the
            // claimants of their own tasks.
            for (int j = 0; j < 4; ++j)
                pool.submit([&] { ++count; });
        });
    pool.wait();
    EXPECT_EQ(count.load(), kOuter * 5);
}

TEST(ThreadPool, StressThrowingTasksAmongTinyTasks)
{
    // Throwing tasks interleaved with thousands of tiny ones: every
    // non-throwing task still runs, exactly one error surfaces, and
    // the pool drains cleanly afterwards.
    ThreadPool pool(8);
    std::atomic<int> count{ 0 };
    constexpr int kTasks = 2000;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&, i] {
            if (i % 97 == 0)
                throw std::runtime_error("stress");
            ++count;
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), kTasks - (kTasks + 96) / 97);

    // Reusable after the storm.
    pool.submit([&] { ++count; });
    pool.wait();
}

TEST(ParallelMap, ResultsLandInInputOrder)
{
    ThreadPool pool(4);
    std::vector<int> items;
    for (int i = 0; i < 100; ++i)
        items.push_back(i);
    auto out = parallelMap(pool, items, [](int v, std::size_t idx) {
        EXPECT_EQ(static_cast<std::size_t>(v), idx);
        return v * v;
    });
    ASSERT_EQ(out.size(), items.size());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, EmptyInputYieldsEmptyOutput)
{
    ThreadPool pool(2);
    std::vector<std::string> none;
    auto out = parallelMap(pool, none,
                           [](const std::string &s, std::size_t) {
                               return s.size();
                           });
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace mbbp

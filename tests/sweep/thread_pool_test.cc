/** @file Unit tests for the work-stealing thread pool. */

#include "sweep/thread_pool.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{ 0 };
    for (int i = 0; i < 200; ++i)
        pool.submit([&] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ZeroRequestsDefaultWorkerCount)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.numWorkers(), 1u);
    EXPECT_EQ(pool.numWorkers(), ThreadPool::defaultThreads());
}

TEST(ThreadPool, WaitWithNothingSubmittedReturns)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait();
}

TEST(ThreadPool, WorkersMaySubmitMoreWork)
{
    ThreadPool pool(3);
    std::atomic<int> count{ 0 };
    for (int i = 0; i < 8; ++i)
        pool.submit([&] {
            ++count;
            pool.submit([&] { ++count; });
        });
    pool.wait();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, TaskExceptionRethrownFromWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{ 0 };
    for (int i = 0; i < 10; ++i)
        pool.submit([&, i] {
            if (i == 3)
                throw std::runtime_error("task 3 failed");
            ++count;
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The failure must not cancel the rest of the batch.
    EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPool, PoolStaysUsableAfterException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    std::atomic<int> count{ 0 };
    for (int i = 0; i < 5; ++i)
        pool.submit([&] { ++count; });
    pool.wait();    // the old exception must not resurface
    EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, OneExceptionPerBatchAndThenCleared)
{
    // Which of several failing tasks runs first depends on stealing
    // order; exactly one exception must surface, and wait() must
    // clear it for the next batch.
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("alpha"); });
    pool.submit([] { throw std::runtime_error("beta"); });
    try {
        pool.wait();
        FAIL() << "wait() should have thrown";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        EXPECT_TRUE(what == "alpha" || what == "beta") << what;
    }
    pool.wait();    // nothing outstanding, nothing to rethrow
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> count{ 0 };
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ++count; });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, StressManyTinyTasksFromManyThreads)
{
    // Thousands of near-empty tasks submitted from workers and the
    // driver at once: the claim/publish race in workerLoop fires
    // constantly under this load, so the bounded-spin path (give the
    // claim back and re-wait) gets exercised without livelock. Run
    // under TSan/ASan in CI.
    ThreadPool pool(8);
    std::atomic<int> count{ 0 };
    constexpr int kOuter = 500;
    for (int i = 0; i < kOuter; ++i)
        pool.submit([&] {
            ++count;
            // Fan out from inside the pool: submits race the
            // claimants of their own tasks.
            for (int j = 0; j < 4; ++j)
                pool.submit([&] { ++count; });
        });
    pool.wait();
    EXPECT_EQ(count.load(), kOuter * 5);
}

TEST(ThreadPool, StressThrowingTasksAmongTinyTasks)
{
    // Throwing tasks interleaved with thousands of tiny ones: every
    // non-throwing task still runs, exactly one error surfaces, and
    // the pool drains cleanly afterwards.
    ThreadPool pool(8);
    std::atomic<int> count{ 0 };
    constexpr int kTasks = 2000;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&, i] {
            if (i % 97 == 0)
                throw std::runtime_error("stress");
            ++count;
        });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), kTasks - (kTasks + 96) / 97);

    // Reusable after the storm.
    pool.submit([&] { ++count; });
    pool.wait();
}

/** A manually-released latch for pinning a group "active". */
class Gate
{
  public:
    void open()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            open_ = true;
        }
        cv_.notify_all();
    }

    void await()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return open_; });
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool open_ = false;
};

TEST(TaskGroup, RunsTasksAndWaitsOnlyForItsOwn)
{
    ThreadPool pool(4);
    TaskGroup group(pool);
    std::atomic<int> count{ 0 };
    for (int i = 0; i < 100; ++i)
        group.submit([&] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), 100);
    EXPECT_EQ(pool.activeGroupCount(), 0u);

    // Reusable after the drain.
    group.submit([&] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), 101);
}

TEST(TaskGroup, ExceptionIsPerGroupNotPoolWide)
{
    ThreadPool pool(2);
    TaskGroup bad(pool);
    TaskGroup good(pool);
    std::atomic<int> count{ 0 };
    bad.submit([] { throw std::runtime_error("group error"); });
    for (int i = 0; i < 10; ++i)
        good.submit([&] { ++count; });
    EXPECT_THROW(bad.wait(), std::runtime_error);
    good.wait();                // must NOT rethrow bad's error
    EXPECT_EQ(count.load(), 10);
    bad.wait();                 // cleared after the rethrow
}

TEST(TaskGroup, LoneGroupGetsTheWholePool)
{
    ThreadPool pool(4);
    TaskGroup group(pool);
    Gate gate;
    std::atomic<int> running{ 0 };
    std::atomic<int> peak{ 0 };
    for (int i = 0; i < 8; ++i)
        group.submit([&] {
            int now = ++running;
            int prev = peak.load();
            while (now > prev && !peak.compare_exchange_weak(prev,
                                                             now))
                ;
            gate.await();
            --running;
        });
    // All four workers should eventually be busy with this group;
    // a lone group's share is the full pool.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (peak.load() < 4 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    gate.open();
    group.wait();
    EXPECT_EQ(peak.load(), 4);
    EXPECT_EQ(group.peakReleased(), 4u);
}

TEST(TaskGroup, ConcurrentGroupsAreBoundedToTheirShare)
{
    ThreadPool pool(4);

    // Pin one competitor active for the whole measurement.
    TaskGroup other(pool);
    Gate gate;
    other.submit([&] { gate.await(); });

    // With two equal-weight active groups on four workers each share
    // is ceil(4/2) = 2: however many tasks this group floods in, at
    // most two may ever be on the pool at once.
    TaskGroup group(pool);
    std::atomic<int> count{ 0 };
    for (int i = 0; i < 64; ++i)
        group.submit([&] { ++count; });
    group.wait();
    EXPECT_EQ(count.load(), 64);
    EXPECT_LE(group.peakReleased(), 2u);

    gate.open();
    other.wait();
    EXPECT_EQ(pool.activeGroupCount(), 0u);
}

TEST(TaskGroup, WeightsSkewTheShares)
{
    ThreadPool pool(4);

    // A weight-3 competitor squeezes a weight-1 group to
    // ceil(4 * 1 / 4) = 1 released task at a time.
    TaskGroup heavy(pool, 3);
    Gate gate;
    heavy.submit([&] { gate.await(); });

    TaskGroup light(pool, 1);
    std::atomic<int> count{ 0 };
    for (int i = 0; i < 32; ++i)
        light.submit([&] { ++count; });
    light.wait();
    EXPECT_EQ(count.load(), 32);
    EXPECT_EQ(light.peakReleased(), 1u);

    gate.open();
    heavy.wait();
    EXPECT_LE(heavy.peakReleased(), 3u);
}

TEST(TaskGroup, NarrowGroupIsNotStarvedByAWideOne)
{
    ThreadPool pool(4);

    // A wide group floods the pool with many small tasks; a narrow
    // group arriving afterwards must finish long before the flood
    // drains -- fair sharing, not FIFO behind 200 tasks.
    TaskGroup wide(pool);
    std::atomic<int> wideDone{ 0 };
    for (int i = 0; i < 200; ++i)
        wide.submit([&] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
            ++wideDone;
        });

    TaskGroup narrow(pool);
    std::atomic<int> narrowDone{ 0 };
    for (int i = 0; i < 4; ++i)
        narrow.submit([&] { ++narrowDone; });
    narrow.wait();

    EXPECT_EQ(narrowDone.load(), 4);
    // The wide group still had work left when the narrow one
    // finished: the narrow group did not queue behind all 200.
    EXPECT_LT(wideDone.load(), 200);
    wide.wait();
    EXPECT_EQ(wideDone.load(), 200);
}

TEST(TaskGroup, ShareGrowsBackWhenACompetitorDrains)
{
    ThreadPool pool(4);

    TaskGroup other(pool);
    Gate gate;
    other.submit([&] { gate.await(); });

    TaskGroup group(pool);
    std::atomic<int> count{ 0 };
    for (int i = 0; i < 16; ++i)
        group.submit([&] { ++count; });
    // other is pinned active; group may or may not have drained yet.
    EXPECT_GE(pool.activeGroupCount(), 1u);

    // Competitor drains; the survivor's next releases may use the
    // whole pool again (observable as released width above the old
    // two-way share on a fresh batch).
    gate.open();
    other.wait();
    group.wait();
    EXPECT_EQ(count.load(), 16);

    Gate gate2;
    std::atomic<int> running{ 0 };
    std::atomic<int> peak{ 0 };
    for (int i = 0; i < 8; ++i)
        group.submit([&] {
            int now = ++running;
            int prev = peak.load();
            while (now > prev && !peak.compare_exchange_weak(prev,
                                                             now))
                ;
            gate2.await();
            --running;
        });
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    while (peak.load() < 4 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    gate2.open();
    group.wait();
    EXPECT_EQ(peak.load(), 4);
}

TEST(ParallelMap, ResultsLandInInputOrder)
{
    ThreadPool pool(4);
    std::vector<int> items;
    for (int i = 0; i < 100; ++i)
        items.push_back(i);
    auto out = parallelMap(pool, items, [](int v, std::size_t idx) {
        EXPECT_EQ(static_cast<std::size_t>(v), idx);
        return v * v;
    });
    ASSERT_EQ(out.size(), items.size());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, EmptyInputYieldsEmptyOutput)
{
    ThreadPool pool(2);
    std::vector<std::string> none;
    auto out = parallelMap(pool, none,
                           [](const std::string &s, std::size_t) {
                               return s.size();
                           });
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace mbbp

/**
 * @file
 * Batched-vs-per-config equivalence: the config-batched replay
 * kernel must produce field-exact FetchStats and identical
 * attribution tables versus running each engine alone, across all
 * four engine kinds, multiple traces, ragged tiles, and the
 * configuration corners that exercise different lane state.
 */

#include "sweep/batch_replay.hh"

#include <gtest/gtest.h>

#include "fetch/dual_block_engine.hh"
#include "fetch/multi_block_engine.hh"
#include "fetch/single_block_engine.hh"
#include "fetch/two_ahead_engine.hh"
#include "obs/attribution.hh"
#include "obs/obs.hh"
#include "util/simd.hh"
#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

constexpr std::size_t kInsts = 25000;

/** Lane-state corners: everything that may vary within a tile. */
std::vector<FetchEngineConfig>
laneCorners(bool allow_double_select)
{
    std::vector<FetchEngineConfig> cfgs;

    cfgs.emplace_back();                    // paper defaults

    FetchEngineConfig small;
    small.historyBits = 6;
    small.numSelectTables = 4;
    cfgs.push_back(small);

    FetchEngineConfig near;
    near.nearBlock = true;
    cfgs.push_back(near);

    FetchEngineConfig finite_bit;
    finite_bit.bitEntries = 64;
    cfgs.push_back(finite_bit);

    FetchEngineConfig delayed;
    delayed.delayedPhtUpdate = true;
    cfgs.push_back(delayed);

    FetchEngineConfig near_delayed;
    near_delayed.nearBlock = true;
    near_delayed.nearBlockStoredOffset = true;
    near_delayed.delayedPhtUpdate = true;
    cfgs.push_back(near_delayed);

    FetchEngineConfig finite_cache;
    finite_cache.icacheLines = 64;
    finite_cache.icacheAssoc = 2;
    finite_cache.icacheMissPenalty = 6;
    cfgs.push_back(finite_cache);

    FetchEngineConfig btb;
    btb.targetKind = TargetKind::Btb;
    btb.targetEntries = 128;
    btb.btbAssoc = 4;
    cfgs.push_back(btb);

    if (allow_double_select) {
        FetchEngineConfig dsel;
        dsel.doubleSelect = true;
        cfgs.push_back(dsel);

        FetchEngineConfig dsel_near;
        dsel_near.doubleSelect = true;
        dsel_near.nearBlock = true;
        cfgs.push_back(dsel_near);
    }
    return cfgs;
}

std::vector<SimConfig>
simConfigs(const std::vector<FetchEngineConfig> &engines,
           unsigned num_blocks)
{
    std::vector<SimConfig> cfgs;
    for (const FetchEngineConfig &e : engines) {
        SimConfig c;
        c.engine = e;
        c.numBlocks = num_blocks;
        cfgs.push_back(c);
    }
    return cfgs;
}

class BatchReplayTest : public ::testing::Test
{
  protected:
    BatchReplayTest()
        : go_(specTrace("go", kInsts)),
          compress_(specTrace("compress", kInsts))
    {
    }

    const std::vector<const InMemoryTrace *> traces() const
    {
        return { &go_, &compress_ };
    }

    InMemoryTrace go_;
    InMemoryTrace compress_;
};

TEST_F(BatchReplayTest, SingleEngineFieldExact)
{
    for (const InMemoryTrace *trace : traces()) {
        std::vector<SimConfig> cfgs =
            simConfigs(laneCorners(false), 1);
        DecodedTrace dec =
            DecodedTrace::build(*trace, cfgs[0].engine.icache);
        std::vector<FetchStats> batched = batchReplay(cfgs, dec);
        ASSERT_EQ(batched.size(), cfgs.size());
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            SingleBlockEngine engine(cfgs[i].engine);
            EXPECT_EQ(engine.run(dec), batched[i]) << "lane " << i;
        }
    }
}

TEST_F(BatchReplayTest, DualEngineFieldExact)
{
    for (const InMemoryTrace *trace : traces()) {
        std::vector<SimConfig> cfgs = simConfigs(laneCorners(true), 2);
        DecodedTrace dec =
            DecodedTrace::build(*trace, cfgs[0].engine.icache);
        std::vector<FetchStats> batched = batchReplay(cfgs, dec);
        ASSERT_EQ(batched.size(), cfgs.size());
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            DualBlockEngine engine(cfgs[i].engine);
            EXPECT_EQ(engine.run(dec), batched[i]) << "lane " << i;
        }
    }
}

TEST_F(BatchReplayTest, MultiEngineFieldExact)
{
    for (unsigned n = 3; n <= 4; ++n) {
        for (const InMemoryTrace *trace : traces()) {
            std::vector<SimConfig> cfgs =
                simConfigs(laneCorners(false), n);
            DecodedTrace dec =
                DecodedTrace::build(*trace, cfgs[0].engine.icache);
            std::vector<FetchStats> batched = batchReplay(cfgs, dec);
            ASSERT_EQ(batched.size(), cfgs.size());
            for (std::size_t i = 0; i < cfgs.size(); ++i) {
                MultiBlockEngine engine(cfgs[i].engine, n);
                EXPECT_EQ(engine.run(dec), batched[i])
                    << "n=" << n << " lane " << i;
            }
        }
    }
}

TEST_F(BatchReplayTest, TwoAheadEngineFieldExact)
{
    for (const InMemoryTrace *trace : traces()) {
        std::vector<FetchEngineConfig> cfgs = laneCorners(false);
        DecodedTrace dec =
            DecodedTrace::build(*trace, cfgs[0].icache);
        std::vector<FetchStats> batched = batchReplayKind(
            BatchEngineKind::TwoAhead, cfgs, 2, dec);
        ASSERT_EQ(batched.size(), cfgs.size());
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            TwoAheadEngine engine(cfgs[i]);
            EXPECT_EQ(engine.run(dec), batched[i]) << "lane " << i;
        }
    }
}

TEST_F(BatchReplayTest, RaggedTileIsStillExact)
{
    // 5 lanes, max tile width 2: tiles (0,2) (2,2) (4,1) -- the last
    // tile is deliberately ragged.
    std::vector<FetchEngineConfig> engines;
    for (unsigned h : { 6u, 8u, 10u, 12u, 7u }) {
        FetchEngineConfig e;
        e.historyBits = h;
        engines.push_back(e);
    }
    std::vector<SimConfig> cfgs = simConfigs(engines, 2);
    DecodedTrace dec =
        DecodedTrace::build(go_, cfgs[0].engine.icache);

    BatchTileOptions opts;
    opts.maxLanes = 2;
    auto tiles = planBatchTiles(cfgs, opts);
    ASSERT_EQ(tiles.size(), 3u);
    EXPECT_EQ(tiles.back().second, 1u);

    std::vector<FetchStats> batched = batchReplay(cfgs, dec, opts);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        DualBlockEngine engine(cfgs[i].engine);
        EXPECT_EQ(engine.run(dec), batched[i]) << "lane " << i;
    }
}

TEST_F(BatchReplayTest, TinyBudgetDegradesToOneLanePerTile)
{
    std::vector<SimConfig> cfgs =
        simConfigs(laneCorners(false), 1);
    BatchTileOptions opts;
    opts.cacheBudgetBytes = 1;  // even one lane exceeds this
    auto tiles = planBatchTiles(cfgs, opts);
    ASSERT_EQ(tiles.size(), cfgs.size());
    for (std::size_t i = 0; i < tiles.size(); ++i) {
        EXPECT_EQ(tiles[i].first, i);
        EXPECT_EQ(tiles[i].second, 1u);
    }

    DecodedTrace dec =
        DecodedTrace::build(compress_, cfgs[0].engine.icache);
    std::vector<FetchStats> batched = batchReplay(cfgs, dec, opts);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        SingleBlockEngine engine(cfgs[i].engine);
        EXPECT_EQ(engine.run(dec), batched[i]) << "lane " << i;
    }
}

TEST_F(BatchReplayTest, SingleBankGeometryKeepsConflictsExact)
{
    // numBanks=1 makes every distinct-line pair conflict, stressing
    // the shared bank-conflict precompute on all engine kinds.
    FetchEngineConfig banked;
    banked.icache.numBanks = 1;
    FetchEngineConfig banked_small = banked;
    banked_small.historyBits = 7;
    std::vector<FetchEngineConfig> engines{ banked, banked_small };

    for (unsigned n : { 2u, 4u }) {
        std::vector<SimConfig> cfgs = simConfigs(engines, n);
        DecodedTrace dec =
            DecodedTrace::build(go_, cfgs[0].engine.icache);
        std::vector<FetchStats> batched = batchReplay(cfgs, dec);
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            FetchSimulator sim(cfgs[i]);
            EXPECT_EQ(sim.run(dec), batched[i])
                << "n=" << n << " lane " << i;
        }
    }
}

void
expectSameRows(const std::vector<obs::AttributionRow> &a,
               const std::vector<obs::AttributionRow> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].blockPc, b[i].blockPc) << "row " << i;
        EXPECT_EQ(a[i].slot, b[i].slot) << "row " << i;
        EXPECT_EQ(a[i].events, b[i].events) << "row " << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << "row " << i;
        EXPECT_EQ(a[i].byCause, b[i].byCause) << "row " << i;
    }
}

TEST_F(BatchReplayTest, AttributionTablesMatchPerConfig)
{
    std::vector<SimConfig> cfgs = simConfigs(laneCorners(true), 2);
    DecodedTrace dec =
        DecodedTrace::build(go_, cfgs[0].engine.icache);

    obs::setAttributionEnabled(true);
    obs::resetAttribution();
    for (const SimConfig &c : cfgs) {
        DualBlockEngine engine(c.engine);
        (void)engine.run(dec);
    }
    std::vector<obs::AttributionRow> per_config =
        obs::attributionRows(0);

    obs::resetAttribution();
    (void)batchReplay(cfgs, dec);
    std::vector<obs::AttributionRow> batched =
        obs::attributionRows(0);

    obs::setAttributionEnabled(false);
    obs::resetAttribution();

    EXPECT_FALSE(per_config.empty());
    expectSameRows(per_config, batched);
}

/** SoA-eligible lane variants (immediate update, NLS, perfect BIT/
 *  cache): the population that actually reaches the vector kernels,
 *  cycled so every lane differs in table geometry. */
std::vector<FetchEngineConfig>
soaVariants(std::size_t count)
{
    const unsigned hist[] = { 6, 8, 10, 12 };
    const unsigned sts[] = { 1, 2, 4, 8 };
    std::vector<FetchEngineConfig> cfgs;
    for (std::size_t i = 0; i < count; ++i) {
        FetchEngineConfig e;
        e.historyBits = hist[i % 4];
        e.numSelectTables = sts[(i / 4) % 4];
        e.nearBlock = i % 2 == 1;
        e.nearBlockStoredOffset = i % 4 == 3;
        cfgs.push_back(e);
    }
    return cfgs;
}

/** soaVariants plus the feature corners the full-coverage kernels
 *  own: delayed PHT update, finite BIT, double selection (Dual-only
 *  -- every other reference engine asserts against it), and their
 *  pairings, layered over the geometry cycling. */
std::vector<FetchEngineConfig>
cornerVariants(std::size_t count, bool allow_double_select)
{
    std::vector<FetchEngineConfig> cfgs = soaVariants(count);
    const unsigned bits[] = { 16, 64, 256, 1024 };
    for (std::size_t i = 0; i < count; ++i) {
        FetchEngineConfig &e = cfgs[i];
        switch (i % 5) {
          case 1:
            e.delayedPhtUpdate = true;
            break;
          case 2:
            e.bitEntries = bits[(i / 5) % 4];
            break;
          case 3:
            if (allow_double_select) {
                e.doubleSelect = true;
            } else {
                e.nearBlock = true;
                e.nearBlockStoredOffset = true;
                e.delayedPhtUpdate = true;
            }
            break;
          case 4:
            e.delayedPhtUpdate = true;
            e.bitEntries = bits[(i / 5) % 4];
            break;
          default:
            break;
        }
    }
    return cfgs;
}

/** Restore the process-wide dispatch on scope exit so one failing
 *  expectation cannot leak a forced level into other tests. */
struct SimdLevelGuard
{
    simd::Level saved = simd::activeLevel();
    ~SimdLevelGuard() { simd::setLevel(saved); }
};

TEST_F(BatchReplayTest, SimdVariantsMatchScalarFieldExact)
{
    // Every dispatch level the host supports must reproduce the
    // scalar kernel's FetchStats bit-for-bit, across all four engine
    // kinds, the delayed-update / double-select / finite-BIT feature
    // corners, and lane counts spanning sub-vector (1, 3), exactly
    // one vector (8), ragged multi-vector (17), and a full tile (64).
    struct KindCase
    {
        BatchEngineKind kind;
        unsigned numBlocks;
    };
    const KindCase kinds[] = {
        { BatchEngineKind::Single, 1 },
        { BatchEngineKind::Dual, 2 },
        { BatchEngineKind::Multi, 3 },
        { BatchEngineKind::TwoAhead, 2 },
    };
    const simd::Level wide[] = { simd::Level::Avx2,
                                 simd::Level::Avx512 };

    SimdLevelGuard guard;
    for (std::size_t lanes : { 1u, 3u, 8u, 17u, 64u }) {
        DecodedTrace dec =
            DecodedTrace::build(go_, FetchEngineConfig().icache);
        for (const KindCase &kc : kinds) {
            std::vector<FetchEngineConfig> engines = cornerVariants(
                lanes, kc.kind == BatchEngineKind::Dual);
            simd::setLevel(simd::Level::Scalar);
            std::vector<FetchStats> base = batchReplayKind(
                kc.kind, engines, kc.numBlocks, dec);
            ASSERT_EQ(base.size(), lanes);

            for (simd::Level l : wide) {
                simd::setLevel(l);
                if (simd::activeLevel() != l)
                    continue;       // host lacks this ISA level
                std::vector<FetchStats> got = batchReplayKind(
                    kc.kind, engines, kc.numBlocks, dec);
                ASSERT_EQ(got.size(), lanes);
                for (std::size_t i = 0; i < lanes; ++i)
                    EXPECT_EQ(got[i], base[i])
                        << batchEngineKindName(kc.kind) << " lanes="
                        << lanes << " level=" << simd::levelName(l)
                        << " lane " << i;
            }
        }
    }
}

TEST_F(BatchReplayTest, ScalarForcedStillMatchesSoloEngines)
{
    // Forcing the portable kernel must not change results versus the
    // solo engines -- the scalar SoA path is a distinct code path
    // from both the vector kernels and the reference BatchLane loop.
    SimdLevelGuard guard;
    simd::setLevel(simd::Level::Scalar);

    std::vector<FetchEngineConfig> engines = soaVariants(5);
    DecodedTrace dec = DecodedTrace::build(go_, engines[0].icache);

    std::vector<FetchStats> single = batchReplayKind(
        BatchEngineKind::Single, engines, 1, dec);
    std::vector<FetchStats> dual = batchReplayKind(
        BatchEngineKind::Dual, engines, 2, dec);
    for (std::size_t i = 0; i < engines.size(); ++i) {
        SingleBlockEngine se(engines[i]);
        EXPECT_EQ(se.run(dec), single[i]) << "lane " << i;
        DualBlockEngine de(engines[i]);
        EXPECT_EQ(de.run(dec), dual[i]) << "lane " << i;
    }
}

TEST_F(BatchReplayTest, InterleavedEligibilityKeepsReportOrder)
{
    // Alternating eligible / finite-icache (reference-path) lanes:
    // the tile splitter must merge the SoA and reference partitions
    // back by original position, not by partition order.
    std::vector<FetchEngineConfig> engines;
    for (unsigned i = 0; i < 9; ++i) {
        FetchEngineConfig e;
        e.historyBits = 6 + i % 5;
        if (i % 2 == 1) {
            e.icacheLines = 64;
            e.icacheAssoc = 2;
            e.icacheMissPenalty = 6;
        } else if (i % 4 == 2) {
            e.bitEntries = 64;
        }
        engines.push_back(e);
    }
    std::vector<SimConfig> cfgs = simConfigs(engines, 2);
    DecodedTrace dec =
        DecodedTrace::build(go_, cfgs[0].engine.icache);
    std::vector<FetchStats> batched = batchReplay(cfgs, dec);
    ASSERT_EQ(batched.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        DualBlockEngine engine(cfgs[i].engine);
        EXPECT_EQ(engine.run(dec), batched[i]) << "lane " << i;
    }
}

TEST_F(BatchReplayTest, BitArenaColumnsExactAcrossSizes)
{
    // Per-lane finite-BIT arenas from one-entry up to
    // larger-than-working-set, on every kind that consults the BIT,
    // under every dispatch level the host supports. Sanitizer builds
    // sweep the arena and true-code scratch columns for
    // out-of-bounds accesses here.
    std::vector<FetchEngineConfig> engines;
    for (unsigned i = 0; i < 12; ++i) {
        FetchEngineConfig e;
        e.historyBits = 6 + i % 4;
        e.bitEntries = 1u << (i % 10);      // 1 .. 512 lines
        e.nearBlock = i % 3 == 1;
        e.delayedPhtUpdate = i % 4 == 3;
        engines.push_back(e);
    }
    DecodedTrace dec = DecodedTrace::build(go_, engines[0].icache);

    std::vector<FetchStats> single, dual, multi;
    for (const FetchEngineConfig &e : engines) {
        single.push_back(SingleBlockEngine(e).run(dec));
        dual.push_back(DualBlockEngine(e).run(dec));
        multi.push_back(MultiBlockEngine(e, 3).run(dec));
    }

    SimdLevelGuard guard;
    const simd::Level levels[] = { simd::Level::Scalar,
                                   simd::Level::Avx2,
                                   simd::Level::Avx512 };
    for (simd::Level l : levels) {
        simd::setLevel(l);
        if (simd::activeLevel() != l)
            continue;           // host lacks this ISA level
        std::vector<FetchStats> got_single = batchReplayKind(
            BatchEngineKind::Single, engines, 1, dec);
        std::vector<FetchStats> got_dual = batchReplayKind(
            BatchEngineKind::Dual, engines, 2, dec);
        std::vector<FetchStats> got_multi = batchReplayKind(
            BatchEngineKind::Multi, engines, 3, dec);
        for (std::size_t i = 0; i < engines.size(); ++i) {
            EXPECT_EQ(got_single[i], single[i])
                << "single lane " << i << " level "
                << simd::levelName(l);
            EXPECT_EQ(got_dual[i], dual[i])
                << "dual lane " << i << " level "
                << simd::levelName(l);
            EXPECT_EQ(got_multi[i], multi[i])
                << "multi lane " << i << " level "
                << simd::levelName(l);
        }
    }
}

TEST_F(BatchReplayTest, CoverageGaugeAndFallbackCounters)
{
    // Three columnar lanes plus one finite-icache lane: coverage is
    // 750 per mille and the fallback reason is attributed.
    std::vector<FetchEngineConfig> engines = soaVariants(3);
    FetchEngineConfig finite_cache;
    finite_cache.icacheLines = 64;
    finite_cache.icacheAssoc = 2;
    engines.push_back(finite_cache);
    DecodedTrace dec =
        DecodedTrace::build(compress_, engines[0].icache);

    obs::setEnabled(true);
    const uint64_t total0 =
        obs::counter("sweep.soa.lanes.total").value();
    const uint64_t elig0 =
        obs::counter("sweep.soa.lanes.eligible").value();
    const uint64_t fall0 =
        obs::counter("sweep.soa.fallback.finite_icache").value();
    (void)batchReplayKind(BatchEngineKind::Single, engines, 1, dec);
    EXPECT_EQ(obs::gauge("sweep.soa.lane_coverage").value(), 750u);
    EXPECT_EQ(obs::counter("sweep.soa.lanes.total").value() - total0,
              4u);
    EXPECT_EQ(obs::counter("sweep.soa.lanes.eligible").value() -
                  elig0,
              3u);
    EXPECT_EQ(
        obs::counter("sweep.soa.fallback.finite_icache").value() -
            fall0,
        1u);

    // A fig7 shape (finite BIT everywhere) is fully columnar.
    std::vector<FetchEngineConfig> fig7 = soaVariants(4);
    for (FetchEngineConfig &e : fig7)
        e.bitEntries = 64;
    (void)batchReplayKind(BatchEngineKind::Dual, fig7, 2, dec);
    EXPECT_EQ(obs::gauge("sweep.soa.lane_coverage").value(), 1000u);
    obs::setEnabled(false);
}

TEST(BatchKeyTest, GroupsByEngineKindAndGeometry)
{
    SimConfig dual;
    SimConfig dual_other_lane = dual;
    dual_other_lane.engine.historyBits = 6;
    dual_other_lane.engine.nearBlock = true;
    EXPECT_EQ(BatchKey::of(dual), BatchKey::of(dual_other_lane));

    SimConfig single = dual;
    single.numBlocks = 1;
    EXPECT_NE(BatchKey::of(dual), BatchKey::of(single));

    SimConfig banked = dual;
    banked.engine.icache.numBanks = 2;
    EXPECT_NE(BatchKey::of(dual), BatchKey::of(banked));

    SimConfig extended = dual;
    extended.engine.icache = ICacheConfig::extended(8);
    EXPECT_NE(BatchKey::of(dual), BatchKey::of(extended));

    // operator< is a strict weak order consistent with ==.
    EXPECT_FALSE(BatchKey::of(dual) < BatchKey::of(dual_other_lane));
    EXPECT_TRUE(BatchKey::of(dual) < BatchKey::of(single) ||
                BatchKey::of(single) < BatchKey::of(dual));
}

TEST(BatchTilerTest, BudgetSplitsWideGrids)
{
    std::vector<SimConfig> cfgs;
    for (unsigned i = 0; i < 12; ++i) {
        SimConfig c;
        c.engine.historyBits = 12;      // ~16 KiB PHT + 64 KiB ST
        cfgs.push_back(c);
    }
    std::size_t lane =
        batchLaneFootprintBytes(BatchEngineKind::Dual,
                                cfgs[0].engine, 2);
    BatchTileOptions opts;
    opts.cacheBudgetBytes = 3 * lane;
    auto tiles = planBatchTiles(cfgs, opts);
    ASSERT_EQ(tiles.size(), 4u);
    std::size_t covered = 0;
    for (auto [first, count] : tiles) {
        EXPECT_EQ(first, covered);
        EXPECT_LE(count, 3u);
        covered += count;
    }
    EXPECT_EQ(covered, cfgs.size());
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the sweep report writers (CSV edge cases,
 *  metrics block). */

#include "sweep/sweep_report.hh"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/attribution.hh"
#include "obs/obs.hh"
#include "util/json.hh"

namespace mbbp
{
namespace
{

/** Minimal RFC-4180 reader: one record per inner vector. */
std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            row.push_back(cell);
            cell.clear();
        } else if (c == '\n') {
            row.push_back(cell);
            cell.clear();
            rows.push_back(row);
            row.clear();
        } else {
            cell += c;
        }
    }
    EXPECT_FALSE(quoted) << "unterminated quoted cell";
    if (!cell.empty() || !row.empty()) {
        row.push_back(cell);
        rows.push_back(row);
    }
    return rows;
}

SweepResult
oneJobResult(std::vector<SweepParam> params,
             std::vector<std::pair<std::string, FetchStats>> programs)
{
    SweepResult result;
    result.name = "report-test";
    SweepJobResult jr;
    jr.job.index = 0;
    jr.job.params = std::move(params);
    for (auto &[name, stats] : programs) {
        jr.result.perProgram[name] = stats;
        jr.result.allTotal.accumulate(stats);
        jr.result.intTotal.accumulate(stats);
        result.benchmarks.push_back(name);
    }
    result.jobs.push_back(std::move(jr));
    return result;
}

TEST(SweepCsv, SpecialCharParamsRoundTrip)
{
    // Field names and values with the three RFC-4180 troublemakers:
    // comma, double quote, newline. Every cell must survive a parse.
    SweepResult result = oneJobResult(
        { { "weird,field", "a,b" },
          { "quote\"field", "say \"hi\"" },
          { "multi\nline", "two\nlines" } },
        { { "gcc", FetchStats{} } });

    std::string csv = sweepToCsv(result, {});
    auto rows = parseCsv(csv);
    ASSERT_GE(rows.size(), 2u);
    const auto &header = rows[0];
    ASSERT_GE(header.size(), 4u);
    EXPECT_EQ(header[0], "job");
    EXPECT_EQ(header[1], "weird,field");
    EXPECT_EQ(header[2], "quote\"field");
    EXPECT_EQ(header[3], "multi\nline");
    // Every data row carries the escaped values back verbatim.
    for (std::size_t r = 1; r < rows.size(); ++r) {
        ASSERT_EQ(rows[r].size(), header.size()) << "row " << r;
        EXPECT_EQ(rows[r][1], "a,b");
        EXPECT_EQ(rows[r][2], "say \"hi\"");
        EXPECT_EQ(rows[r][3], "two\nlines");
    }
}

TEST(SweepCsv, PlainCellsStayUnquoted)
{
    SweepResult result = oneJobResult({ { "historyBits", "10" } },
                                      { { "gcc", FetchStats{} } });
    std::string csv = sweepToCsv(result, {});
    EXPECT_EQ(csv.find('"'), std::string::npos) << csv;
}

TEST(SweepCsv, ProgramNamedAllDistinctFromAggregateScope)
{
    // A benchmark literally named "all" must not produce a row that
    // collides with the all-programs aggregate scope.
    SweepResult result = oneJobResult(
        {}, { { "all", FetchStats{} }, { "gcc", FetchStats{} } });

    std::string csv = sweepToCsv(result, {});
    auto rows = parseCsv(csv);
    std::size_t scope_col = 1;      // no params: job,scope,...
    std::vector<std::string> scopes;
    for (std::size_t r = 1; r < rows.size(); ++r)
        scopes.push_back(rows[r][scope_col]);
    // Aggregates first (int, fp, all), then the programs.
    ASSERT_EQ(scopes.size(), 5u);
    EXPECT_EQ(scopes[0], "int");
    EXPECT_EQ(scopes[1], "fp");
    EXPECT_EQ(scopes[2], "all");
    EXPECT_EQ(scopes[3], "program:all");
    EXPECT_EQ(scopes[4], "gcc");
    // Exactly one bare "all" -- the aggregate.
    EXPECT_EQ(std::count(scopes.begin(), scopes.end(), "all"), 1);
}

TEST(SweepJson, MetricsBlockIsOptIn)
{
    SweepResult result =
        oneJobResult({}, { { "gcc", FetchStats{} } });

    std::string plain = sweepToJson(result, {});
    EXPECT_EQ(JsonValue::parse(plain).find("metrics"), nullptr);

    SweepReportOptions opts;
    opts.metrics = true;
    JsonValue doc = JsonValue::parse(sweepToJson(result, opts));
    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->isObject());
    EXPECT_NE(metrics->find("counters"), nullptr);
    EXPECT_NE(metrics->find("gauges"), nullptr);
    EXPECT_NE(metrics->find("timers"), nullptr);
}

TEST(SweepJson, AttributionBlockIsOptInAndBytePreserving)
{
    SweepResult result =
        oneJobResult({}, { { "gcc", FetchStats{} } });

    // Populate the attribution table: a default report must still be
    // byte-identical to one produced with an empty table, because
    // attributionTopN == 0 omits the block entirely.
    std::string before = sweepToJson(result, {});
#ifndef MBBP_OBS_DISABLED
    obs::setAttributionEnabled(true);
    {
        obs::AttributionSink sink;
        sink.record(0x1f80, 1, obs::LossCause::Select, 5);
        sink.record(0x2000, 0, obs::LossCause::PhtDirection, 4);
    }
    obs::setAttributionEnabled(false);
#endif
    EXPECT_EQ(sweepToJson(result, {}), before);
    EXPECT_EQ(JsonValue::parse(before).find("attribution"), nullptr);

    SweepReportOptions opts;
    opts.attributionTopN = 10;
    JsonValue doc = JsonValue::parse(sweepToJson(result, opts));
    const JsonValue *attr = doc.find("attribution");
    ASSERT_NE(attr, nullptr);
    ASSERT_TRUE(attr->isArray());
#ifndef MBBP_OBS_DISABLED
    ASSERT_EQ(attr->size(), 2u);
    // Cycles-descending: the select-loss site leads.
    const JsonValue &top = attr->items()[0];
    EXPECT_EQ(top.find("block")->asString(), "0x1f80");
    EXPECT_DOUBLE_EQ(top.find("slot")->asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(top.find("cycles")->asNumber(), 5.0);
    EXPECT_EQ(top.find("dominant")->asString(), "select");

    // The standalone CSV shows the same rows in the same order.
    std::string csv = attributionToCsv(10);
    auto rows = parseCsv(csv);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0][0], "block");
    EXPECT_EQ(rows[1][0], "0x1f80");
    EXPECT_EQ(rows[2][0], "0x2000");
    obs::resetAttribution();
#else
    EXPECT_EQ(attr->size(), 0u);
#endif
}

TEST(SweepJson, EngineCountersReachTheMetricsBlock)
{
    obs::setEnabled(true);
    obs::resetAll();
    obs::flushCounter("engine.test.synthetic", 3);

    SweepResult result =
        oneJobResult({}, { { "gcc", FetchStats{} } });
    SweepReportOptions opts;
    opts.metrics = true;
    JsonValue doc = JsonValue::parse(sweepToJson(result, opts));
    obs::setEnabled(false);
    obs::resetAll();

#ifndef MBBP_OBS_DISABLED
    const JsonValue *counters = doc.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *c = counters->find("engine.test.synthetic");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->asNumber(), 3.0);
#endif
}

} // namespace
} // namespace mbbp

/** @file Tests for the synthetic SPEC95 suite profiles. */

#include "workload/spec95.hh"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(Spec95, SuiteHasEighteenPrograms)
{
    EXPECT_EQ(specIntNames().size(), 8u);
    EXPECT_EQ(specFpNames().size(), 10u);
    EXPECT_EQ(specAllNames().size(), 18u);
    EXPECT_EQ(specSuite().size(), 18u);
}

TEST(Spec95, NamesAreDisjointAndClassified)
{
    const auto int_names = specIntNames();
    std::set<std::string> ints(int_names.begin(), int_names.end());
    for (const auto &name : specFpNames()) {
        EXPECT_EQ(ints.count(name), 0u);
        EXPECT_TRUE(specProfile(name).isFloat);
    }
    for (const auto &name : specIntNames())
        EXPECT_FALSE(specProfile(name).isFloat);
}

TEST(Spec95Death, UnknownProfileIsFatal)
{
    EXPECT_DEATH((void)specProfile("nonesuch"), "unknown");
}

TEST(Spec95, TraceIsDeterministic)
{
    InMemoryTrace a = specTrace("compress", 5000);
    InMemoryTrace b = specTrace("compress", 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.at(i), b.at(i));
}

TEST(Spec95, ProgramsDiffer)
{
    InMemoryTrace a = specTrace("go", 2000);
    InMemoryTrace b = specTrace("swim", 2000);
    std::size_t diff = 0;
    for (std::size_t i = 0; i < 2000; ++i)
        diff += !(a.at(i) == b.at(i));
    EXPECT_GT(diff, 1000u);
}

/** Every program must produce a stream in its class's regime. */
class SpecPrograms : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpecPrograms, StreamStatisticsAreSane)
{
    const std::string &name = GetParam();
    InMemoryTrace trace = specTrace(name, 80000);
    ASSERT_EQ(trace.size(), 80000u);

    auto s = trace.summarize();
    bool is_fp = specProfile(name).isFloat;

    // Conditional-branch density: SPECfp-like codes are sparse,
    // SPECint-like ones branchy.
    double density = s.condDensity();
    if (is_fp) {
        EXPECT_GT(density, 0.02) << name;
        EXPECT_LT(density, 0.20) << name;
    } else {
        EXPECT_GT(density, 0.06) << name;
        EXPECT_LT(density, 0.30) << name;
    }

    // Some calls and returns must appear, and they must balance
    // approximately over a long window.
    EXPECT_GT(s.calls, 0u) << name;
    EXPECT_GT(s.returns, 0u) << name;
    EXPECT_NEAR(static_cast<double>(s.calls),
                static_cast<double>(s.returns),
                0.2 * static_cast<double>(s.calls) + 50.0)
        << name;
}

INSTANTIATE_TEST_SUITE_P(All, SpecPrograms,
                         ::testing::ValuesIn(specAllNames()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace mbbp

/** @file Unit and property tests for the program generator. */

#include "workload/generator.hh"

#include <gtest/gtest.h>

#include "trace/trace.hh"
#include "workload/interpreter.hh"

namespace mbbp
{
namespace
{

TEST(Generator, DeterministicForProfile)
{
    WorkloadProfile prof;
    prof.seed = 1234;
    Program a = generateProgram(prof);
    Program b = generateProgram(prof);
    ASSERT_EQ(a.funcs.size(), b.funcs.size());
    EXPECT_EQ(a.staticInsts(), b.staticInsts());
    EXPECT_EQ(a.staticCondBranches(), b.staticCondBranches());
    for (std::size_t i = 0; i < a.funcs.size(); ++i)
        EXPECT_EQ(a.funcs[i].blocks.size(), b.funcs[i].blocks.size());
}

TEST(Generator, DifferentSeedsDiffer)
{
    WorkloadProfile a, b;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(generateProgram(a).staticInsts(),
              generateProgram(b).staticInsts());
}

TEST(Generator, MeanBodyControlsDensity)
{
    WorkloadProfile sparse, dense;
    sparse.seed = dense.seed = 3;
    sparse.meanBody = 12.0;
    dense.meanBody = 2.0;
    Program ps = generateProgram(sparse);
    Program pd = generateProgram(dense);
    double ds = static_cast<double>(ps.staticCondBranches()) /
                static_cast<double>(ps.staticInsts());
    double dd = static_cast<double>(pd.staticCondBranches()) /
                static_cast<double>(pd.staticInsts());
    EXPECT_LT(ds, dd);
}

TEST(Generator, MinLoopBodyEnforced)
{
    WorkloadProfile prof;
    prof.seed = 5;
    prof.minLoopBody = 10;
    Program p = generateProgram(prof);
    for (const auto &fn : p.funcs) {
        for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
            const auto &blk = fn.blocks[bi];
            if (blk.term.kind == TermKind::CondBranch &&
                blk.term.targetBlock <= bi) {
                EXPECT_GE(blk.bodyLen, 10u);
            }
        }
    }
}

/** Every profile variation must yield a valid, executable program. */
struct GenParam
{
    const char *label;
    uint64_t seed;
    double mean_body;
    double w_loop;
    double w_indirect;
    uint32_t functions;
};

class GeneratorSweep : public ::testing::TestWithParam<GenParam>
{
};

TEST_P(GeneratorSweep, ProducesValidExecutablePrograms)
{
    const GenParam &gp = GetParam();
    WorkloadProfile prof;
    prof.seed = gp.seed;
    prof.meanBody = gp.mean_body;
    prof.wLoop = gp.w_loop;
    prof.wIndirectJump = gp.w_indirect;
    prof.numFunctions = gp.functions;

    Program p = generateProgram(prof);  // validate() runs inside
    EXPECT_GT(p.staticInsts(), 0u);

    // The interpreter must run it indefinitely (stream never ends)
    // with bounded stack depth.
    Interpreter interp(p, 42);
    DynInst inst;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(interp.next(inst));
        ASSERT_LE(interp.stackDepth(), p.funcs.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorSweep,
    ::testing::Values(
        GenParam{ "default", 1, 4.0, 1.6, 0.12, 40 },
        GenParam{ "tiny", 2, 1.0, 1.6, 0.12, 2 },
        GenParam{ "loopy", 3, 6.0, 8.0, 0.0, 10 },
        GenParam{ "indirect", 4, 3.0, 0.5, 2.0, 30 },
        GenParam{ "bodies", 5, 20.0, 1.0, 0.1, 20 },
        GenParam{ "many_funcs", 6, 4.0, 1.0, 0.1, 120 }),
    [](const auto &info) { return info.param.label; });

} // namespace
} // namespace mbbp

/** @file Unit tests for the CFG interpreter. */

#include "workload/interpreter.hh"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "workload/generator.hh"

namespace mbbp
{
namespace
{

Program
smallProgram(uint64_t seed = 7)
{
    WorkloadProfile prof;
    prof.seed = seed;
    prof.numFunctions = 6;
    return generateProgram(prof);
}

TEST(Interpreter, DeterministicForSeed)
{
    Program p = smallProgram();
    Interpreter a(p, 5), b(p, 5);
    DynInst ia, ib;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(a.next(ia));
        ASSERT_TRUE(b.next(ib));
        ASSERT_EQ(ia, ib);
    }
}

TEST(Interpreter, ResetReplaysIdentically)
{
    Program p = smallProgram();
    Interpreter interp(p, 5);
    InMemoryTrace first = captureTrace(interp, 3000);
    interp.reset();
    InMemoryTrace second = captureTrace(interp, 3000);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first.at(i), second.at(i));
}

TEST(Interpreter, StreamIsSequentialBetweenTransfers)
{
    Program p = smallProgram();
    Interpreter interp(p, 5);
    DynInst prev, cur;
    ASSERT_TRUE(interp.next(prev));
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(interp.next(cur));
        if (prev.taken)
            ASSERT_EQ(cur.pc, prev.target);
        else
            ASSERT_EQ(cur.pc, prev.pc + 1);
        prev = cur;
    }
}

TEST(Interpreter, UnconditionalsAlwaysTaken)
{
    Program p = smallProgram();
    Interpreter interp(p, 5);
    DynInst inst;
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(interp.next(inst));
        if (isUnconditional(inst.cls))
            ASSERT_TRUE(inst.taken);
        if (inst.cls == InstClass::NonBranch)
            ASSERT_FALSE(inst.taken);
    }
}

TEST(Interpreter, CondBranchesCarryStaticTargets)
{
    Program p = smallProgram();
    Interpreter interp(p, 5);
    DynInst inst;
    std::map<Addr, Addr> seen;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(interp.next(inst));
        if (!isCondBranch(inst.cls))
            continue;
        ASSERT_NE(inst.target, 0u);
        auto [it, fresh] = seen.emplace(inst.pc, inst.target);
        if (!fresh)
            ASSERT_EQ(it->second, inst.target)
                << "cond target changed across executions";
    }
}

TEST(Interpreter, ReturnsMatchCalls)
{
    Program p = smallProgram();
    Interpreter interp(p, 5);
    DynInst inst;
    std::vector<Addr> shadow;   // expected return targets
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(interp.next(inst));
        if (isCall(inst.cls)) {
            shadow.push_back(inst.pc + 1);
        } else if (isReturn(inst.cls)) {
            ASSERT_FALSE(shadow.empty());
            ASSERT_EQ(inst.target, shadow.back());
            shadow.pop_back();
        }
    }
}

TEST(Interpreter, EmittedCountMatches)
{
    Program p = smallProgram();
    Interpreter interp(p, 5);
    captureTrace(interp, 1234);
    EXPECT_EQ(interp.emitted(), 1234u);
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the CFG program model. */

#include "workload/cfg.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

/** A minimal two-function program: main loops, f1 returns. */
Program
tinyProgram()
{
    Program p;
    p.mainFn = 0;
    p.behaviors.push_back(CondBehavior::loop(3));

    Function main_fn;
    main_fn.name = "main";
    BasicBlock b0;
    b0.bodyLen = 2;
    b0.term.kind = TermKind::Call;
    b0.term.calleeFn = 1;
    BasicBlock b1;
    b1.bodyLen = 1;
    b1.term.kind = TermKind::CondBranch;
    b1.term.behaviorId = 0;
    b1.term.targetBlock = 0;    // back edge (loop behavior)
    BasicBlock b2;
    b2.bodyLen = 0;
    b2.term.kind = TermKind::Jump;
    b2.term.targetBlock = 0;    // main loops forever
    main_fn.blocks = { b0, b1, b2 };

    Function f1;
    f1.name = "f1";
    BasicBlock c0;
    c0.bodyLen = 3;
    c0.term.kind = TermKind::FallThrough;
    BasicBlock c1;
    c1.bodyLen = 0;
    c1.term.kind = TermKind::Return;
    f1.blocks = { c0, c1 };

    p.funcs = { main_fn, f1 };
    return p;
}

TEST(Cfg, LayoutIsContiguous)
{
    Program p = tinyProgram();
    p.layout(0x100, 0);
    EXPECT_EQ(p.funcs[0].entry, 0x100u);
    EXPECT_EQ(p.funcs[0].blocks[0].startPc, 0x100u);
    // b0: 2 body + call = 3 instructions.
    EXPECT_EQ(p.funcs[0].blocks[1].startPc, 0x103u);
    // b1: 1 body + cond = 2.
    EXPECT_EQ(p.funcs[0].blocks[2].startPc, 0x105u);
    // b2: 0 body + jump = 1; f1 follows.
    EXPECT_EQ(p.funcs[1].entry, 0x106u);
    // c0 has no terminator instruction.
    EXPECT_EQ(p.funcs[1].blocks[1].startPc, 0x109u);
}

TEST(Cfg, LayoutPadding)
{
    Program p = tinyProgram();
    p.layout(0x100, 16);
    EXPECT_EQ(p.funcs[0].entry % 16, 0u);
    EXPECT_EQ(p.funcs[1].entry % 16, 0u);
}

TEST(Cfg, TermPcIsAfterBody)
{
    Program p = tinyProgram();
    p.layout(0x0, 0);
    const BasicBlock &b0 = p.funcs[0].blocks[0];
    EXPECT_EQ(b0.termPc(), b0.startPc + b0.bodyLen);
}

TEST(Cfg, SizeCounts)
{
    Program p = tinyProgram();
    p.layout();
    // 3 + 2 + 1 + 3 + 1 = 10 instructions.
    EXPECT_EQ(p.staticInsts(), 10u);
    EXPECT_EQ(p.staticCondBranches(), 1u);
}

TEST(Cfg, ValidateAcceptsWellFormed)
{
    Program p = tinyProgram();
    p.layout();
    p.validate();   // must not panic
}

TEST(CfgDeath, BackwardCondWithoutLoopBehavior)
{
    Program p = tinyProgram();
    p.behaviors[0] = CondBehavior::bias(0.5);
    p.layout();
    EXPECT_DEATH(p.validate(), "Loop");
}

TEST(CfgDeath, CallToLowerFunction)
{
    Program p = tinyProgram();
    p.funcs[0].blocks[0].term.calleeFn = 0;
    p.layout();
    EXPECT_DEATH(p.validate(), "higher function");
}

TEST(CfgDeath, MainMustLoop)
{
    Program p = tinyProgram();
    p.funcs[0].blocks[2].term.kind = TermKind::Return;
    p.layout();
    EXPECT_DEATH(p.validate(), "main");
}

TEST(CfgDeath, FallThroughOffEndOfFunction)
{
    Program p = tinyProgram();
    p.funcs[1].blocks[1].term.kind = TermKind::FallThrough;
    p.layout();
    EXPECT_DEATH(p.validate(), "");
}

TEST(CfgDeath, CondTargetOutOfRange)
{
    Program p = tinyProgram();
    p.funcs[0].blocks[1].term.targetBlock = 99;
    p.layout();
    EXPECT_DEATH(p.validate(), "out of range");
}

} // namespace
} // namespace mbbp

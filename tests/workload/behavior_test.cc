/** @file Unit tests for conditional-branch behavior models. */

#include "workload/behavior.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(Behavior, LoopTakenTripMinusOneTimes)
{
    CondBehavior b = CondBehavior::loop(4);
    CondState s;
    Rng rng(1);
    // Pattern per entry: T T T N, repeated.
    for (int rep = 0; rep < 3; ++rep) {
        for (int i = 0; i < 3; ++i)
            EXPECT_TRUE(evalCondBehavior(b, s, 0, rng));
        EXPECT_FALSE(evalCondBehavior(b, s, 0, rng));
    }
}

TEST(Behavior, LoopTripOneNeverTaken)
{
    CondBehavior b = CondBehavior::loop(1);
    CondState s;
    Rng rng(1);
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(evalCondBehavior(b, s, 0, rng));
}

TEST(Behavior, PatternRepeats)
{
    // Pattern 0b0110 of length 4: N T T N N T T N ...
    CondBehavior b = CondBehavior::patternOf(0b0110, 4);
    CondState s;
    Rng rng(1);
    bool expected[] = { false, true, true, false,
                        false, true, true, false };
    for (bool e : expected)
        EXPECT_EQ(evalCondBehavior(b, s, 0, rng), e);
}

TEST(Behavior, BiasMatchesProbability)
{
    CondBehavior b = CondBehavior::bias(0.8);
    CondState s;
    Rng rng(99);
    int taken = 0;
    for (int i = 0; i < 20000; ++i)
        taken += evalCondBehavior(b, s, 0, rng);
    EXPECT_NEAR(taken / 20000.0, 0.8, 0.02);
}

TEST(Behavior, CorrelatedIsParityOfWindow)
{
    // distance 2, width 2: parity of history bits [1..2].
    CondBehavior b = CondBehavior::correlated(2, 2, false, 0.0);
    CondState s;
    Rng rng(1);
    EXPECT_FALSE(evalCondBehavior(b, s, 0b000, rng));
    EXPECT_TRUE(evalCondBehavior(b, s, 0b010, rng));
    EXPECT_TRUE(evalCondBehavior(b, s, 0b100, rng));
    EXPECT_FALSE(evalCondBehavior(b, s, 0b110, rng));
    // Bit 0 (most recent) is outside the window.
    EXPECT_FALSE(evalCondBehavior(b, s, 0b001, rng));
}

TEST(Behavior, CorrelatedInvertFlips)
{
    CondBehavior plain = CondBehavior::correlated(1, 1, false, 0.0);
    CondBehavior inv = CondBehavior::correlated(1, 1, true, 0.0);
    CondState s;
    Rng rng(1);
    EXPECT_NE(evalCondBehavior(plain, s, 1, rng),
              evalCondBehavior(inv, s, 1, rng));
}

TEST(Behavior, CorrelatedNoiseFlipsSometimes)
{
    CondBehavior b = CondBehavior::correlated(1, 1, false, 0.25);
    CondState s;
    Rng rng(7);
    int flips = 0;
    for (int i = 0; i < 20000; ++i)
        flips += evalCondBehavior(b, s, 0, rng);   // parity(0) = false
    EXPECT_NEAR(flips / 20000.0, 0.25, 0.02);
}

TEST(Behavior, FactoriesValidate)
{
    EXPECT_DEATH((void)CondBehavior::loop(0), "trip");
    EXPECT_DEATH((void)CondBehavior::patternOf(1, 0), "length");
    EXPECT_DEATH((void)CondBehavior::correlated(0, 1, false, 0),
                 "distance");
    EXPECT_DEATH((void)CondBehavior::correlated(60, 10, false, 0),
                 "window");
}

} // namespace
} // namespace mbbp

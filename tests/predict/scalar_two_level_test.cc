/** @file Unit tests for the scalar two-level baseline predictor. */

#include "predict/scalar_two_level.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(ScalarTwoLevel, LearnsAnAlwaysTakenBranch)
{
    ScalarTwoLevel p({ 8, 8, 2, false });
    for (int i = 0; i < 10; ++i)
        p.update(0x40, true);
    EXPECT_TRUE(p.predict(0x40));
}

TEST(ScalarTwoLevel, LearnsAlternationViaHistory)
{
    // A branch alternating T N T N ... is captured by the history:
    // after warmup the counter under "last was T" learns N and vice
    // versa.
    ScalarTwoLevel p({ 8, 1, 2, false });
    bool outcome = false;
    int wrong = 0;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        if (i >= 100 && p.predict(0x10) != outcome)
            ++wrong;
        p.update(0x10, outcome);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(ScalarTwoLevel, PerAddrTablesIsolateBranches)
{
    // With 8 PHTs, branches 0x0 and 0x1 use different tables and
    // cannot alias each other even with identical history.
    ScalarTwoLevel p({ 4, 8, 2, false });
    // Drive both with opposite outcomes under the same history: the
    // history register is shared, so interleave evenly.
    for (int i = 0; i < 200; ++i) {
        p.update(0x0, true);
        p.update(0x1, false);
    }
    // Re-create the same history parity as during training.
    EXPECT_TRUE(p.predict(0x0));
    p.update(0x0, true);
    EXPECT_FALSE(p.predict(0x1));
}

TEST(ScalarTwoLevel, GshareModeUsesSingleTable)
{
    ScalarTwoLevel g({ 10, 8, 2, true });
    // gshare ignores numPhts for storage.
    EXPECT_EQ(g.storageBits(), (1u << 10) * 2u);
}

TEST(ScalarTwoLevel, StorageMatchesBlockedEquivalent)
{
    // The paper sizes the scalar baseline as 8 per-addr PHTs to match
    // a blocked PHT with b=8: 8 * 2^h * 2 bits.
    ScalarTwoLevel p({ 10, 8, 2, false });
    EXPECT_EQ(p.storageBits(), 8ull * (1ull << 10) * 2ull);
}

TEST(ScalarTwoLevel, HistoryAdvancesPerBranch)
{
    ScalarTwoLevel p({ 6, 1, 2, false });
    EXPECT_EQ(p.history().value(), 0u);
    p.update(0x1, true);
    p.update(0x2, false);
    p.update(0x3, true);
    EXPECT_EQ(p.history().value(), 0b101u);
}

TEST(ScalarTwoLevelDeath, NumPhtsMustBePowerOfTwo)
{
    EXPECT_DEATH(ScalarTwoLevel p({ 8, 3, 2, false }), "power");
}

} // namespace
} // namespace mbbp

/** @file Unit tests for bad branch recovery entries and pool. */

#include "predict/bbr.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(BbrEntry, CostBitsMatchTable4)
{
    BbrEntry e;     // no optional PHT block
    // 3 flag bits + PHT index (10) + corrected GHR (10)
    // + replacement selector (4 + 3) + corrected index (10) = 40.
    EXPECT_EQ(e.costBits(10, 8, false), 40u);
    // Full-address variant swaps 10 -> 30.
    EXPECT_EQ(e.costBits(10, 8, true), 60u);
}

TEST(BbrEntry, OptionalPhtBlockAdds2nBits)
{
    BbrEntry e;
    e.phtBlock.assign(8, SatCounter(2));
    EXPECT_EQ(e.costBits(10, 8, false), 40u + 16u);
}

TEST(BbrPool, AllocateReleaseCycle)
{
    BbrPool pool(4);
    BbrEntry e;
    e.predictedTaken = true;
    std::size_t id = pool.allocate(e);
    EXPECT_EQ(pool.inFlight(), 1u);
    EXPECT_TRUE(pool.entry(id).predictedTaken);
    pool.release(id);
    EXPECT_EQ(pool.inFlight(), 0u);
}

TEST(BbrPool, ReusesReleasedSlots)
{
    BbrPool pool(4);
    std::size_t a = pool.allocate({});
    pool.release(a);
    std::size_t b = pool.allocate({});
    EXPECT_EQ(a, b);
}

TEST(BbrPool, TracksPeakAndOverCapacity)
{
    BbrPool pool(2);
    std::vector<std::size_t> ids;
    for (int i = 0; i < 5; ++i)
        ids.push_back(pool.allocate({}));
    EXPECT_EQ(pool.peakInFlight(), 5u);
    // Demand exceeded nominal capacity on allocations 3, 4 and 5.
    EXPECT_EQ(pool.overCapacityEvents(), 3u);
    for (std::size_t id : ids)
        pool.release(id);
    EXPECT_EQ(pool.inFlight(), 0u);
    EXPECT_EQ(pool.peakInFlight(), 5u);
}

TEST(BbrPoolDeath, BadRelease)
{
    BbrPool pool(2);
    EXPECT_DEATH(pool.release(99), "bad BBR id");
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the Seznec two-block-ahead baseline. */

#include "predict/two_block_ahead.hh"

#include <gtest/gtest.h>

#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

TEST(TwoBlockAhead, PerfectOnAPeriodicBlockSequence)
{
    // Blocks A -> B -> C -> A ... : after warmup, predicting two
    // ahead from A always yields C.
    InMemoryTrace trace;
    auto block = [&](Addr base, Addr next) {
        trace.append({ base, InstClass::NonBranch, false, 0 });
        trace.append({ base + 1, InstClass::Jump, true, next });
    };
    for (int i = 0; i < 500; ++i) {
        block(0x100, 0x200);
        block(0x200, 0x300);
        block(0x300, 0x100);
    }
    TwoBlockAhead tba({ 10, 1024, 8 });
    TwoBlockAheadStats st = tba.simulate(trace);
    EXPECT_GT(st.secondPredictions, 1000u);
    EXPECT_GT(st.secondAccuracy(), 0.99);
}

TEST(TwoBlockAhead, ColdTableMispredicts)
{
    // A stream visiting fresh addresses gives no reuse to learn from.
    InMemoryTrace trace;
    for (int i = 0; i < 200; ++i) {
        Addr base = 0x1000 + 0x100 * i;
        trace.append({ base, InstClass::NonBranch, false, 0 });
        trace.append({ base + 1, InstClass::Jump, true,
                       base + 0x100 });
    }
    TwoBlockAhead tba({ 10, 1024, 8 });
    TwoBlockAheadStats st = tba.simulate(trace);
    EXPECT_LT(st.secondAccuracy(), 0.2);
}

TEST(TwoBlockAhead, ReasonableOnSyntheticWorkload)
{
    InMemoryTrace trace = specTrace("mgrid", 60000);
    TwoBlockAhead tba({ 10, 4096, 8 });
    TwoBlockAheadStats st = tba.simulate(trace);
    EXPECT_GT(st.blocks, 5000u);
    // A loop-dominated fp code is quite predictable two ahead.
    EXPECT_GT(st.secondAccuracy(), 0.6);
}

} // namespace
} // namespace mbbp

/** @file Unit tests for BIT codes (Table 1) and the BIT table. */

#include "predict/bit_table.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(BitCodes, Table1Encodings)
{
    // The 3-bit values match the paper's Table 1 exactly.
    EXPECT_EQ(static_cast<int>(BitCode::NonBranch), 0b000);
    EXPECT_EQ(static_cast<int>(BitCode::Return), 0b001);
    EXPECT_EQ(static_cast<int>(BitCode::OtherBranch), 0b010);
    EXPECT_EQ(static_cast<int>(BitCode::CondLong), 0b011);
    EXPECT_EQ(static_cast<int>(BitCode::CondPrevLine), 0b100);
    EXPECT_EQ(static_cast<int>(BitCode::CondSameLine), 0b101);
    EXPECT_EQ(static_cast<int>(BitCode::CondNextLine), 0b110);
    EXPECT_EQ(static_cast<int>(BitCode::CondNextLine2), 0b111);
}

TEST(BitCodes, Classification)
{
    EXPECT_TRUE(bitCodeIsCond(BitCode::CondLong));
    EXPECT_TRUE(bitCodeIsCond(BitCode::CondPrevLine));
    EXPECT_FALSE(bitCodeIsCond(BitCode::Return));
    EXPECT_FALSE(bitCodeIsNear(BitCode::CondLong));
    EXPECT_TRUE(bitCodeIsNear(BitCode::CondNextLine2));
    EXPECT_EQ(bitCodeNearDelta(BitCode::CondPrevLine), -1);
    EXPECT_EQ(bitCodeNearDelta(BitCode::CondSameLine), 0);
    EXPECT_EQ(bitCodeNearDelta(BitCode::CondNextLine), 1);
    EXPECT_EQ(bitCodeNearDelta(BitCode::CondNextLine2), 2);
}

TEST(BitCodes, ComputeNonBranchAndReturn)
{
    EXPECT_EQ(computeBitCode(InstClass::NonBranch, 0, 0, 8, true),
              BitCode::NonBranch);
    EXPECT_EQ(computeBitCode(InstClass::Return, 0, 0, 8, true),
              BitCode::Return);
}

TEST(BitCodes, AllUnconditionalJumpsAreOtherBranch)
{
    for (InstClass c : { InstClass::Jump, InstClass::Call,
                         InstClass::IndirectJump,
                         InstClass::IndirectCall })
        EXPECT_EQ(computeBitCode(c, 0x10, 0x80, 8, true),
                  BitCode::OtherBranch);
}

TEST(BitCodes, NearBlockDeltas)
{
    // Branch at pc 0x43 (line 8 with L=8). Targets per line delta:
    const Addr pc = 0x43;
    EXPECT_EQ(computeBitCode(InstClass::CondBranch, pc, 0x3a, 8, true),
              BitCode::CondPrevLine);
    EXPECT_EQ(computeBitCode(InstClass::CondBranch, pc, 0x46, 8, true),
              BitCode::CondSameLine);
    EXPECT_EQ(computeBitCode(InstClass::CondBranch, pc, 0x4c, 8, true),
              BitCode::CondNextLine);
    EXPECT_EQ(computeBitCode(InstClass::CondBranch, pc, 0x57, 8, true),
              BitCode::CondNextLine2);
    EXPECT_EQ(computeBitCode(InstClass::CondBranch, pc, 0x100, 8, true),
              BitCode::CondLong);
    EXPECT_EQ(computeBitCode(InstClass::CondBranch, pc, 0x20, 8, true),
              BitCode::CondLong);    // two lines back is long
}

TEST(BitCodes, NearBlockDisabledMakesAllCondLong)
{
    EXPECT_EQ(computeBitCode(InstClass::CondBranch, 0x43, 0x46, 8,
                             false),
              BitCode::CondLong);
}

TEST(BitTable, PerfectModeNeverStale)
{
    BitTable bit(0, 8);
    EXPECT_TRUE(bit.perfect());
    EXPECT_EQ(bit.lookup(5), nullptr);
    EXPECT_TRUE(bit.entryMatches(12345));
    EXPECT_EQ(bit.storageBits(), 0u);
}

TEST(BitTable, StoresAndAliases)
{
    BitTable bit(4, 8);
    BitVector codes_a(8, BitCode::NonBranch);
    codes_a[3] = BitCode::CondLong;
    bit.update(0, codes_a);
    EXPECT_TRUE(bit.entryMatches(0));
    ASSERT_NE(bit.lookup(0), nullptr);
    EXPECT_EQ((*bit.lookup(0))[3], BitCode::CondLong);

    // Line 4 aliases into the same entry (4 entries).
    BitVector codes_b(8, BitCode::Return);
    bit.update(4, codes_b);
    EXPECT_FALSE(bit.entryMatches(0));
    EXPECT_TRUE(bit.entryMatches(4));
    // The stale read returns line 4's codes for line 0.
    EXPECT_EQ((*bit.lookup(0))[0], BitCode::Return);
}

TEST(BitTable, StorageMatchesTable7)
{
    // 1024 entries x 8 instructions x 3 bits (near-block encoding)
    // -- the paper's 16 Kbit figure uses the 2-bit code; our table
    // provisions the 3-bit variant.
    BitTable bit(1024, 8);
    EXPECT_EQ(bit.storageBits(), 1024u * 8u * 3u);
}

TEST(BitTableDeath, EntriesMustBePowerOfTwo)
{
    EXPECT_DEATH(BitTable bit(3, 8), "power");
}

TEST(BitTableDeath, UpdateWidthChecked)
{
    BitTable bit(4, 8);
    BitVector wrong(4, BitCode::NonBranch);
    EXPECT_DEATH(bit.update(0, wrong), "width");
}

} // namespace
} // namespace mbbp

/** @file Unit tests for selectors and the select table. */

#include "predict/select_table.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(Selector, EncodingBitsMatchPaper)
{
    // Section 3: "A 3-bit selector can be used with a block width of
    // four. Four bits are required for b = 8."
    EXPECT_EQ(Selector::encodingBits(4), 3u);
    EXPECT_EQ(Selector::encodingBits(8), 4u);
    EXPECT_EQ(Selector::encodingBits(16), 5u);
}

TEST(Selector, EqualityIncludesPosition)
{
    Selector a{ SelSrc::Target, 3 };
    Selector b{ SelSrc::Target, 3 };
    Selector c{ SelSrc::Target, 4 };
    Selector d{ SelSrc::Ras, 3 };
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
}

TEST(Selector, ToStringNamesSource)
{
    EXPECT_EQ((Selector{ SelSrc::Target, 5 }).toString(), "target(5)");
    EXPECT_EQ((Selector{ SelSrc::Ras, 0 }).toString(), "ras");
    EXPECT_EQ((Selector{ SelSrc::FallThrough, 0 }).toString(), "fall");
    EXPECT_EQ((Selector{ SelSrc::LinePrev, 1 }).toString(), "line-(1)");
}

TEST(GhrInfoStruct, Equality)
{
    GhrInfo a{ 2, true }, b{ 2, true }, c{ 3, true }, d{ 2, false };
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
}

TEST(SelectTable, EntriesStartInvalid)
{
    SelectTable st(6, 1, false);
    EXPECT_FALSE(st.read(0, 0, 0).valid);
}

TEST(SelectTable, WriteReadRoundTrip)
{
    SelectTable st(6, 1, false);
    SelectEntry e{ { SelSrc::Target, 5 }, { 2, true }, 3, true };
    st.write(0, 17, 0, e);
    const SelectEntry &r = st.read(0, 17, 0);
    EXPECT_TRUE(r.valid);
    EXPECT_EQ(r.sel, e.sel);
    EXPECT_EQ(r.ghr, e.ghr);
    EXPECT_EQ(r.startOffset, 3);
}

TEST(SelectTable, MultipleTablesSelectedByStartAddress)
{
    SelectTable st(6, 4, false);
    EXPECT_EQ(st.tableOf(0x100), 0u);
    EXPECT_EQ(st.tableOf(0x101), 1u);
    EXPECT_EQ(st.tableOf(0x103), 3u);
    EXPECT_EQ(st.tableOf(0x104), 0u);

    // Same index, different tables: independent entries.
    SelectEntry e{ { SelSrc::Ras, 0 }, { 0, true }, 0, true };
    st.write(1, 5, 0, e);
    EXPECT_TRUE(st.read(1, 5, 0).valid);
    EXPECT_FALSE(st.read(0, 5, 0).valid);
}

TEST(SelectTable, DualSlotsIndependent)
{
    SelectTable st(6, 1, true);
    EXPECT_EQ(st.slots(), 2u);
    SelectEntry e{ { SelSrc::Target, 1 }, { 1, true }, 0, true };
    st.write(0, 3, 1, e);
    EXPECT_FALSE(st.read(0, 3, 0).valid);
    EXPECT_TRUE(st.read(0, 3, 1).valid);
}

TEST(SelectTable, StorageMatchesTable7)
{
    // 1024 entries x (4-bit selector + 3-bit count + 1 taken bit)
    // = 8 Kbits for the default single ST at b=8.
    SelectTable st(10, 1, false);
    EXPECT_EQ(st.storageBits(8, false), 8u * 1024u);
    // The dual ST doubles it; 8 STs multiply by eight.
    SelectTable dual(10, 1, true);
    EXPECT_EQ(dual.storageBits(8, false), 16u * 1024u);
    SelectTable eight(10, 8, false);
    EXPECT_EQ(eight.storageBits(8, false), 64u * 1024u);
}

TEST(SelectTableDeath, RangeChecks)
{
    SelectTable st(6, 2, false);
    SelectEntry e;
    EXPECT_DEATH(st.write(2, 0, 0, e), "table");
    EXPECT_DEATH(st.write(0, 1u << 6, 0, e), "index");
    EXPECT_DEATH(st.write(0, 0, 1, e), "slot");
    EXPECT_DEATH(SelectTable bad(6, 3, false), "power");
}

} // namespace
} // namespace mbbp

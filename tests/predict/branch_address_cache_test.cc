/** @file Unit tests for the Yeh branch-address-cache baseline. */

#include "predict/branch_address_cache.hh"

#include <gtest/gtest.h>

#include "workload/spec95.hh"

namespace mbbp
{
namespace
{

TEST(Bac, LookupCostIsExponential)
{
    // The core argument of Section 2: 2^k - 1 PHT reads for k
    // predictions per cycle.
    EXPECT_EQ(BranchAddressCache::lookupsPerCycle(1), 1u);
    EXPECT_EQ(BranchAddressCache::lookupsPerCycle(2), 3u);
    EXPECT_EQ(BranchAddressCache::lookupsPerCycle(3), 7u);
    EXPECT_EQ(BranchAddressCache::lookupsPerCycle(4), 15u);
}

TEST(Bac, StorageGrowsWithFanout)
{
    BacConfig two;
    two.branchesPerCycle = 2;
    BacConfig three = two;
    three.branchesPerCycle = 3;
    BranchAddressCache a(two), b(three);
    EXPECT_LT(a.storageBits(30), b.storageBits(30));
}

TEST(Bac, LearnsASteadyLoop)
{
    // A tight loop: block at 0x10..0x13 with a backward branch taken
    // 3 of 4 times; after warmup the BAC+PHT predict well.
    InMemoryTrace trace;
    for (int rep = 0; rep < 400; ++rep) {
        for (int it = 0; it < 4; ++it) {
            trace.append({ 0x10, InstClass::NonBranch, false, 0 });
            trace.append({ 0x11, InstClass::NonBranch, false, 0 });
            bool taken = it != 3;
            trace.append({ 0x12, InstClass::CondBranch, taken, 0x10 });
            if (!taken)
                trace.append({ 0x13, InstClass::Jump, true, 0x10 });
        }
    }
    BacConfig cfg;
    cfg.branchesPerCycle = 2;
    BranchAddressCache bac(cfg);
    BacStats st = bac.simulate(trace);
    EXPECT_GT(st.condBranches, 1000u);
    EXPECT_GT(st.condAccuracy(), 0.70);
    EXPECT_NEAR(st.phtLookupsPerCycle(), 3.0, 0.01);
}

TEST(Bac, RetainsScalarAccuracyOnSyntheticWorkload)
{
    InMemoryTrace trace = specTrace("vortex", 60000);
    BacConfig cfg;
    cfg.bacEntries = 4096;
    BranchAddressCache bac(cfg);
    BacStats st = bac.simulate(trace);
    // The scheme keeps two-level accuracy; on a predictable program
    // that lands well above 80%.
    EXPECT_GT(st.condAccuracy(), 0.80);
    EXPECT_GT(st.basicBlocks, 0u);
    EXPECT_GT(st.cycles, 0u);
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the global history register. */

#include "predict/history.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(GlobalHistory, ShiftInBuildsValue)
{
    GlobalHistory h(4);
    h.shiftIn(true);
    h.shiftIn(false);
    h.shiftIn(true);
    EXPECT_EQ(h.value(), 0b101u);
}

TEST(GlobalHistory, WidthMasksOldOutcomes)
{
    GlobalHistory h(3);
    for (int i = 0; i < 10; ++i)
        h.shiftIn(true);
    EXPECT_EQ(h.value(), 0b111u);
    h.shiftIn(false);
    EXPECT_EQ(h.value(), 0b110u);
}

TEST(GlobalHistory, BlockUpdateMatchesPaperExample)
{
    // Section 2: "if three branches are predicted not taken, not
    // taken, taken, then the GHR is shifted to the left three bits
    // and a '001' inserted."
    GlobalHistory h(10);
    // outcomes bit 0 = first executed branch (N), bit 2 = third (T).
    h.shiftInBlock(0b100, 3);
    EXPECT_EQ(h.value(), 0b001u);
}

TEST(GlobalHistory, BlockUpdateEqualsSequentialShifts)
{
    GlobalHistory a(8), b(8);
    // T N T N N
    bool outcomes[] = { true, false, true, false, false };
    uint64_t packed = 0;
    for (unsigned i = 0; i < 5; ++i) {
        a.shiftIn(outcomes[i]);
        packed |= static_cast<uint64_t>(outcomes[i]) << i;
    }
    b.shiftInBlock(packed, 5);
    EXPECT_EQ(a.value(), b.value());
}

TEST(GlobalHistory, EmptyBlockIsNoOp)
{
    GlobalHistory h(8);
    h.shiftIn(true);
    uint64_t before = h.value();
    h.shiftInBlock(0, 0);
    EXPECT_EQ(h.value(), before);
}

TEST(GlobalHistory, SetMasksToWidth)
{
    GlobalHistory h(4);
    h.set(0xff);
    EXPECT_EQ(h.value(), 0xfu);
}

TEST(GlobalHistory, GshareIndexXorsAddress)
{
    GlobalHistory h(8);
    h.set(0b10101010);
    // Address 0x40 with 3 offset bits -> 0b1000.
    EXPECT_EQ(h.index(0x40, 3), (0b10101010u ^ 0b1000u));
    // Index always fits the history width.
    EXPECT_LE(h.index(~0ull, 0), 0xffu);
}

TEST(GlobalHistoryDeath, BadWidth)
{
    EXPECT_DEATH(GlobalHistory h(0), "width");
    EXPECT_DEATH(GlobalHistory h(64), "width");
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the NLS target array. */

#include "predict/nls.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(Nls, StoresPerPositionTargets)
{
    NlsTargetArray nls(16, 8, false);
    nls.update(0x100, 3, 0, 0x500, false);
    nls.update(0x100, 5, 0, 0x600, true);

    TargetPrediction t3 = nls.predict(0x100, 3, 0);
    EXPECT_TRUE(t3.hit);
    EXPECT_EQ(t3.target, 0x500u);
    EXPECT_FALSE(t3.isCallTarget);

    TargetPrediction t5 = nls.predict(0x100, 5, 0);
    EXPECT_EQ(t5.target, 0x600u);
    EXPECT_TRUE(t5.isCallTarget);
}

TEST(Nls, TagLessProbesAlwaysHit)
{
    NlsTargetArray nls(16, 8, false);
    // Never written: still "hits" with whatever is stored (zero),
    // which shows up later as a misfetch -- the NLS property.
    TargetPrediction t = nls.predict(0x888, 2, 0);
    EXPECT_TRUE(t.hit);
    EXPECT_EQ(t.target, 0u);
}

TEST(Nls, AliasingOverwritesSilently)
{
    NlsTargetArray nls(4, 8, false);
    // Lines 0 and 4 share index 0 (4 entries, line = addr / 8).
    nls.update(0x00, 1, 0, 0xaaa, false);
    nls.update(4 * 8, 1, 0, 0xbbb, false);
    EXPECT_EQ(nls.predict(0x00, 1, 0).target, 0xbbbu);
}

TEST(Nls, IndexIgnoresLineOffset)
{
    NlsTargetArray nls(16, 8, false);
    nls.update(0x100, 2, 0, 0x77, false);
    // Same line, different offset within it: same entry.
    EXPECT_EQ(nls.predict(0x105, 2, 0).target, 0x77u);
}

TEST(Nls, DualArraysAreIndependent)
{
    NlsTargetArray nls(16, 8, true);
    nls.update(0x100, 3, 0, 0x111, false);
    nls.update(0x100, 3, 1, 0x222, false);
    EXPECT_EQ(nls.predict(0x100, 3, 0).target, 0x111u);
    EXPECT_EQ(nls.predict(0x100, 3, 1).target, 0x222u);
}

TEST(Nls, StorageMatchesTable7)
{
    // 256 entries x 8 positions x 10-bit line index = 20 Kbits.
    NlsTargetArray single(256, 8, false);
    EXPECT_EQ(single.storageBits(10), 20u * 1024u);
    // The dual target array doubles it.
    NlsTargetArray dual(256, 8, true);
    EXPECT_EQ(dual.storageBits(10), 40u * 1024u);
}

TEST(NlsDeath, ChecksRanges)
{
    NlsTargetArray nls(16, 8, false);
    EXPECT_DEATH(nls.update(0x100, 9, 0, 0x1, false), "position");
    EXPECT_DEATH((void)nls.predict(0x100, 0, 1), "array");
    EXPECT_DEATH(NlsTargetArray bad(10, 8, false), "power");
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the blocked pattern history table. */

#include "predict/blocked_pht.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(BlockedPHT, PositionWrapsAroundBlock)
{
    BlockedPHT pht({ 8, 8, 2, 1 });
    EXPECT_EQ(pht.position(0x100), 0u);
    EXPECT_EQ(pht.position(0x107), 7u);
    // Extended/self-aligned lines wrap: position 8 maps back to 0.
    EXPECT_EQ(pht.position(0x108), 0u);
}

TEST(BlockedPHT, CountersArePerPosition)
{
    BlockedPHT pht({ 6, 8, 2, 1 });
    GlobalHistory ghr(6);
    std::size_t idx = pht.index(ghr, 0x100);

    // Train position 0 taken, position 1 not taken, same entry.
    for (int i = 0; i < 4; ++i) {
        pht.updateAt(idx, 0x100, true);
        pht.updateAt(idx, 0x101, false);
    }
    EXPECT_TRUE(pht.predictAt(idx, 0x100));
    EXPECT_FALSE(pht.predictAt(idx, 0x101));
}

TEST(BlockedPHT, IndexDependsOnHistoryAndAddress)
{
    BlockedPHT pht({ 8, 8, 2, 1 });
    GlobalHistory a(8), b(8);
    b.shiftIn(true);
    EXPECT_NE(pht.index(a, 0x100), pht.index(b, 0x100));
    EXPECT_NE(pht.index(a, 0x100), pht.index(a, 0x108));
    // Offset bits within the block do not change the index.
    EXPECT_EQ(pht.index(a, 0x100), pht.index(a, 0x107));
}

TEST(BlockedPHT, IndexFitsTable)
{
    BlockedPHT pht({ 6, 8, 2, 1 });
    GlobalHistory ghr(6);
    ghr.set(0x3f);
    EXPECT_LT(pht.index(ghr, ~0ull), 1ull << 6);
}

TEST(BlockedPHT, MultiplePhtsSelectedByAddress)
{
    BlockedPHT pht({ 6, 8, 2, 4 });
    GlobalHistory ghr(6);
    // Blocks 0x100 and 0x108 differ in the table-select bits.
    EXPECT_NE(pht.index(ghr, 0x100), pht.index(ghr, 0x108));
    // Training one table must not leak into the other: drive table 0
    // strongly not-taken; table 1 keeps its weak-taken initial state.
    std::size_t i0 = pht.index(ghr, 0x100);
    std::size_t i1 = pht.index(ghr, 0x108);
    for (int i = 0; i < 4; ++i)
        pht.updateAt(i0, 0x100, false);
    EXPECT_FALSE(pht.predictAt(i0, 0x100));
    EXPECT_TRUE(pht.predictAt(i1, 0x108));
}

TEST(BlockedPHT, CounterAccessorsRoundTrip)
{
    BlockedPHT pht({ 6, 8, 2, 1 });
    SatCounter c(2, 3);
    pht.setCounterAt(5, 2, c);
    EXPECT_EQ(pht.counterAt(5, 2), c);
}

TEST(BlockedPHT, StorageMatchesTable7)
{
    // Table 7 / Section 5: 2^10 entries x 8 counters x 2 bits
    // = 16 Kbits.
    BlockedPHT pht({ 10, 8, 2, 1 });
    EXPECT_EQ(pht.storageBits(), 16u * 1024u);
}

TEST(BlockedPHT, InitialStateIsWeaklyTaken)
{
    // Counters start at the weak-taken boundary, the conventional
    // two-bit initialization.
    BlockedPHT pht({ 6, 8, 2, 1 });
    EXPECT_EQ(pht.counterAt(0, 0).count(), 2);
    EXPECT_TRUE(pht.predictAt(0, 0));
}

TEST(BlockedPHTDeath, BadConfig)
{
    EXPECT_DEATH(BlockedPHT p({ 8, 6, 2, 1 }), "power");
    EXPECT_DEATH(BlockedPHT p({ 8, 8, 2, 3 }), "power");
}

} // namespace
} // namespace mbbp

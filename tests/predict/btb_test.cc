/** @file Unit tests for the block BTB. */

#include "predict/btb.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(Btb, MissWithoutAllocation)
{
    Btb btb(16, 4, 8);
    EXPECT_FALSE(btb.predict(0x100, 3, 0).hit);
}

TEST(Btb, HitAfterUpdate)
{
    Btb btb(16, 4, 8);
    btb.update(0x100, 3, 0, 0x500, true);
    TargetPrediction t = btb.predict(0x100, 3, 0);
    EXPECT_TRUE(t.hit);
    EXPECT_EQ(t.target, 0x500u);
    EXPECT_TRUE(t.isCallTarget);
}

TEST(Btb, PositionsWithinEntry)
{
    Btb btb(16, 4, 8);
    btb.update(0x100, 1, 0, 0x111, false);
    btb.update(0x100, 6, 0, 0x666, false);
    EXPECT_EQ(btb.predict(0x100, 1, 0).target, 0x111u);
    EXPECT_EQ(btb.predict(0x100, 6, 0).target, 0x666u);
    // Unwritten position in a valid entry misses.
    EXPECT_FALSE(btb.predict(0x100, 4, 0).hit);
}

TEST(Btb, TagEncodesTargetNumber)
{
    // "A BTB entry can be for the first or second target" -- the two
    // logical arrays share entries but never collide.
    Btb btb(16, 4, 8);
    btb.update(0x100, 3, 0, 0x111, false);
    EXPECT_FALSE(btb.predict(0x100, 3, 1).hit);
    btb.update(0x100, 3, 1, 0x222, false);
    EXPECT_EQ(btb.predict(0x100, 3, 0).target, 0x111u);
    EXPECT_EQ(btb.predict(0x100, 3, 1).target, 0x222u);
}

TEST(Btb, SetAssociativityHoldsConflictingBlocks)
{
    // 16 entries, 4-way -> 4 sets. Lines 0, 4, 8, 12 map to set 0
    // and can all live simultaneously.
    Btb btb(16, 4, 8);
    for (Addr line : { 0, 4, 8, 12 })
        btb.update(line * 8, 0, 0, 0x1000 + line, false);
    for (Addr line : { 0, 4, 8, 12 })
        EXPECT_EQ(btb.predict(line * 8, 0, 0).target, 0x1000 + line);
}

TEST(Btb, LruEvictsColdestWay)
{
    Btb btb(16, 4, 8);   // 4 sets
    // Fill set 0 with lines 0,4,8,12; touch 0 to make 4 the LRU.
    for (Addr line : { 0, 4, 8, 12 })
        btb.update(line * 8, 0, 0, line, false);
    (void)btb.predict(0 * 8, 0, 0);
    // A fifth block in set 0 evicts line 4.
    btb.update(16 * 8, 0, 0, 0xf00, false);
    EXPECT_TRUE(btb.predict(0 * 8, 0, 0).hit);
    EXPECT_FALSE(btb.predict(4 * 8, 0, 0).hit);
    EXPECT_TRUE(btb.predict(16 * 8, 0, 0).hit);
}

TEST(Btb, AllocationClearsStaleSlots)
{
    Btb btb(4, 4, 8);    // one set
    btb.update(0 * 8, 2, 0, 0xaaa, false);
    // Evict via four new tags.
    for (Addr line : { 1, 2, 3, 4 })
        btb.update(line * 8, 0, 0, line, false);
    // Re-allocate line 0: old position-2 slot must not resurface.
    btb.update(0 * 8, 5, 0, 0xbbb, false);
    EXPECT_FALSE(btb.predict(0 * 8, 2, 0).hit);
    EXPECT_EQ(btb.predict(0 * 8, 5, 0).target, 0xbbbu);
}

TEST(BtbDeath, ConfigValidation)
{
    EXPECT_DEATH(Btb b(10, 4, 8), "multiple");
    EXPECT_DEATH(Btb b(24, 4, 8), "power");
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the return address stack. */

#include "predict/ras.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.push(0x10);
    ras.push(0x20);
    ras.push(0x30);
    EXPECT_EQ(ras.depth(), 3u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.pop(), 0x20u);
    EXPECT_EQ(ras.pop(), 0x10u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, TopAndSecondPeekWithoutPopping)
{
    ReturnAddressStack ras(8);
    ras.push(0x10);
    ras.push(0x20);
    EXPECT_EQ(ras.top(), 0x20u);
    EXPECT_EQ(ras.second(), 0x10u);
    EXPECT_EQ(ras.depth(), 2u);
}

TEST(Ras, OverflowWrapsAndLosesOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3);      // overwrites 0x1
    EXPECT_EQ(ras.overflows(), 1u);
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    // The oldest entry is gone; a further pop underflows.
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_GE(ras.underflows(), 1u);
}

TEST(Ras, UnderflowReturnsZeroAndCounts)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.top(), 0u);
    EXPECT_EQ(ras.second(), 0u);
    // Only the pop consumed an entry that wasn't there; the const
    // peeks are tracked separately (they used to double-count).
    EXPECT_EQ(ras.underflows(), 1u);
    EXPECT_EQ(ras.peekUnderflows(), 2u);
}

TEST(Ras, PeekThenPopUnderflowCountsOnce)
{
    // The engine's common pattern: consult top() speculatively, then
    // pop() at resolution. On an empty stack that is ONE underflow
    // event, not two.
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.top(), 0u);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.underflows(), 1u);
    EXPECT_EQ(ras.peekUnderflows(), 1u);
}

TEST(Ras, SecondPeekUnderflowsWithOneEntry)
{
    // One live entry: top() succeeds, second() peeks past the bottom.
    ReturnAddressStack ras(4);
    ras.push(0x40);
    EXPECT_EQ(ras.top(), 0x40u);
    EXPECT_EQ(ras.second(), 0u);
    EXPECT_EQ(ras.underflows(), 0u);
    EXPECT_EQ(ras.peekUnderflows(), 1u);
}

TEST(Ras, DeepCallChainWithWrap)
{
    // 32 entries (the paper's size): a 40-deep chain loses the 8
    // oldest frames but the newest 32 return correctly.
    ReturnAddressStack ras(32);
    for (Addr i = 0; i < 40; ++i)
        ras.push(0x1000 + i);
    EXPECT_EQ(ras.overflows(), 8u);
    for (Addr i = 39;; --i) {
        if (i < 8)
            break;
        EXPECT_EQ(ras.pop(), 0x1000 + i);
    }
}

TEST(RasDeath, ZeroCapacity)
{
    EXPECT_DEATH(ReturnAddressStack ras(0), "capacity");
}

} // namespace
} // namespace mbbp

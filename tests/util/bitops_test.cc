/** @file Unit tests for util/bitops.hh. */

#include "util/bitops.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(Bitops, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(32), 0xffffffffu);
    EXPECT_EQ(mask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(mask(64), ~0ull);
}

TEST(Bitops, BitsExtract)
{
    EXPECT_EQ(bits(0xabcd, 0, 4), 0xdu);
    EXPECT_EQ(bits(0xabcd, 4, 4), 0xcu);
    EXPECT_EQ(bits(0xabcd, 8, 8), 0xabu);
    EXPECT_EQ(bits(~0ull, 60, 4), 0xfu);
}

TEST(Bitops, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(Bitops, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(8), 3u);
    EXPECT_EQ(floorLog2(9), 3u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(8), 3u);
    EXPECT_EQ(ceilLog2(9), 4u);
}

TEST(Bitops, AlignUpDown)
{
    EXPECT_EQ(alignDown(17, 8), 16u);
    EXPECT_EQ(alignDown(16, 8), 16u);
    EXPECT_EQ(alignUp(17, 8), 24u);
    EXPECT_EQ(alignUp(16, 8), 16u);
    EXPECT_EQ(alignUp(0, 8), 0u);
}

TEST(Bitops, XorFold)
{
    // Folding to >= the value's width is identity.
    EXPECT_EQ(xorFold(0xab, 8), 0xabu);
    // 0x12 ^ 0x34 = 0x26
    EXPECT_EQ(xorFold(0x1234, 8), 0x26u);
    EXPECT_EQ(xorFold(0, 8), 0u);
    // Result always fits the fold width.
    for (uint64_t v : { 0x123456789abcdefull, ~0ull, 42ull })
        EXPECT_LE(xorFold(v, 10), mask(10));
}

/** Property sweep: alignDown <= v <= alignUp, both aligned. */
class AlignProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AlignProperty, Sandwich)
{
    uint64_t v = GetParam();
    for (uint64_t a : { 1ull, 2ull, 8ull, 64ull, 4096ull }) {
        EXPECT_LE(alignDown(v, a), v);
        EXPECT_GE(alignUp(v, a), v);
        EXPECT_EQ(alignDown(v, a) % a, 0u);
        EXPECT_EQ(alignUp(v, a) % a, 0u);
        EXPECT_LT(alignUp(v, a) - alignDown(v, a), 2 * a);
    }
}

INSTANTIATE_TEST_SUITE_P(Values, AlignProperty,
                         ::testing::Values(0, 1, 7, 8, 9, 63, 64, 65,
                                           4095, 4096, 123456789));

} // namespace
} // namespace mbbp

/** @file Unit tests for the saturating counter. */

#include "util/sat_counter.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(SatCounter, DefaultsToTwoBitNotTaken)
{
    SatCounter c;
    EXPECT_EQ(c.maxCount(), 3);
    EXPECT_EQ(c.count(), 0);
    EXPECT_FALSE(c.predictTaken());
}

TEST(SatCounter, InitialValueClamped)
{
    SatCounter c(2, 200);
    EXPECT_EQ(c.count(), 3);
}

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter c(2, 0);
    c.decrement();
    EXPECT_EQ(c.count(), 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.count(), 3);
}

TEST(SatCounter, TwoBitPredictionThreshold)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.predictTaken());     // 00
    c.increment();
    EXPECT_FALSE(c.predictTaken());     // 01
    c.increment();
    EXPECT_TRUE(c.predictTaken());      // 10
    c.increment();
    EXPECT_TRUE(c.predictTaken());      // 11
}

TEST(SatCounter, SecondChanceAtStrongEnds)
{
    // "Since the pattern history indicates a second chance bit, the
    // prediction will not change the next time" -- a strongly-taken
    // counter mispredicting once still predicts taken.
    SatCounter c(2, 3);
    EXPECT_TRUE(c.secondChance());
    c.update(false);    // mispredicted
    EXPECT_TRUE(c.predictTaken());
    EXPECT_FALSE(c.secondChance());
    c.update(false);
    EXPECT_FALSE(c.predictTaken());
}

TEST(SatCounter, UpdateDirection)
{
    SatCounter c(2, 1);
    c.update(true);
    EXPECT_EQ(c.count(), 2);
    c.update(false);
    EXPECT_EQ(c.count(), 1);
}

TEST(SatCounter, SetClamps)
{
    SatCounter c(3);
    c.set(200);
    EXPECT_EQ(c.count(), 7);
    c.set(4);
    EXPECT_EQ(c.count(), 4);
}

/** Width sweep: saturation and threshold hold for every width. */
class SatCounterWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidths, SaturationAndThreshold)
{
    unsigned nbits = GetParam();
    SatCounter c(nbits, 0);
    uint8_t maxv = static_cast<uint8_t>((1u << nbits) - 1);
    EXPECT_EQ(c.maxCount(), maxv);

    for (unsigned i = 0; i < 2u * maxv + 4; ++i)
        c.increment();
    EXPECT_EQ(c.count(), maxv);
    EXPECT_TRUE(c.predictTaken());
    EXPECT_TRUE(c.secondChance());

    for (unsigned i = 0; i < 2u * maxv + 4; ++i)
        c.decrement();
    EXPECT_EQ(c.count(), 0);
    EXPECT_FALSE(c.predictTaken());
    EXPECT_TRUE(c.secondChance());

    // Exactly the top half predicts taken.
    for (unsigned v = 0; v <= maxv; ++v) {
        c.set(static_cast<uint8_t>(v));
        EXPECT_EQ(c.predictTaken(), v > maxv / 2u);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidths,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

} // namespace
} // namespace mbbp

/** @file Unit tests for the JSON writer. */

#include "util/json.hh"

#include <cmath>

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(JsonWriter, EmptyObject)
{
    JsonWriter w;
    w.beginObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriter, ScalarsAndCommas)
{
    JsonWriter w;
    w.beginObject();
    w.value("a", uint64_t{ 1 });
    w.value("b", std::string("x"));
    w.value("c", true);
    w.value("d", int64_t{ -3 });
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\",\"c\":true,\"d\":-3}");
}

TEST(JsonWriter, NestedStructures)
{
    JsonWriter w;
    w.beginObject();
    w.beginObject("inner");
    w.value("k", uint64_t{ 2 });
    w.endObject();
    w.beginArray("list");
    w.element(uint64_t{ 1 });
    w.element(std::string("two"));
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"inner\":{\"k\":2},\"list\":[1,\"two\"]}");
}

TEST(JsonWriter, Escaping)
{
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
    EXPECT_EQ(JsonWriter::escape(std::string("a\x01") + "b"),
              "a\\u0001b");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginObject();
    w.value("nan", std::nan(""));
    w.endObject();
    EXPECT_EQ(w.str(), "{\"nan\":null}");
}

TEST(JsonWriterDeath, UnclosedContainerPanics)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_DEATH((void)w.str(), "unclosed");
}

TEST(JsonWriterDeath, UnbalancedEndPanics)
{
    JsonWriter w;
    EXPECT_DEATH(w.endObject(), "nothing open");
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the JSON writer and parser. */

#include "util/json.hh"

#include <clocale>
#include <cmath>
#include <iterator>
#include <locale>
#include <string>

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(JsonWriter, EmptyObject)
{
    JsonWriter w;
    w.beginObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriter, ScalarsAndCommas)
{
    JsonWriter w;
    w.beginObject();
    w.value("a", uint64_t{ 1 });
    w.value("b", std::string("x"));
    w.value("c", true);
    w.value("d", int64_t{ -3 });
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\",\"c\":true,\"d\":-3}");
}

TEST(JsonWriter, NestedStructures)
{
    JsonWriter w;
    w.beginObject();
    w.beginObject("inner");
    w.value("k", uint64_t{ 2 });
    w.endObject();
    w.beginArray("list");
    w.element(uint64_t{ 1 });
    w.element(std::string("two"));
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"inner\":{\"k\":2},\"list\":[1,\"two\"]}");
}

TEST(JsonWriter, Escaping)
{
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
    EXPECT_EQ(JsonWriter::escape(std::string("a\x01") + "b"),
              "a\\u0001b");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginObject();
    w.value("nan", std::nan(""));
    w.endObject();
    EXPECT_EQ(w.str(), "{\"nan\":null}");
}

TEST(JsonWriterDeath, UnclosedContainerPanics)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_DEATH((void)w.str(), "unclosed");
}

TEST(JsonWriterDeath, UnbalancedEndPanics)
{
    JsonWriter w;
    EXPECT_DEATH(w.endObject(), "nothing open");
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e2").asNumber(), -250.0);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, NumberLexemeIsPreserved)
{
    // 0.30000000000000004-style drift must not leak into sweep
    // params: scalarText is the source spelling, not a round-trip.
    EXPECT_EQ(JsonValue::parse("0.1").scalarText(), "0.1");
    EXPECT_EQ(JsonValue::parse("1e3").scalarText(), "1e3");
    EXPECT_EQ(JsonValue::parse("true").scalarText(), "true");
    EXPECT_EQ(JsonValue::parse("\"x\"").scalarText(), "x");
}

TEST(JsonParse, ArraysAndNesting)
{
    JsonValue v = JsonValue::parse("[1, [2, 3], {\"k\": 4}]");
    ASSERT_TRUE(v.isArray());
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v.items()[0].asNumber(), 1.0);
    EXPECT_EQ(v.items()[1].size(), 2u);
    EXPECT_DOUBLE_EQ(v.items()[2].find("k")->asNumber(), 4.0);
}

TEST(JsonParse, ObjectsPreserveSourceOrder)
{
    JsonValue v = JsonValue::parse(
        "{\"zebra\": 1, \"apple\": 2, \"mango\": 3}");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v.keyAt(0), "zebra");
    EXPECT_EQ(v.keyAt(1), "apple");
    EXPECT_EQ(v.keyAt(2), "mango");
    EXPECT_DOUBLE_EQ(v.memberAt(1).asNumber(), 2.0);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\nd\t")").asString(),
              "a\"b\\c\nd\t");
    EXPECT_EQ(JsonValue::parse(R"("Aé")").asString(),
              "A\xc3\xa9");
    // surrogate pair: U+1F600
    EXPECT_EQ(JsonValue::parse(R"("😀")").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonParse, DuplicateObjectKeyRejected)
{
    EXPECT_THROW(JsonValue::parse("{\"a\": 1, \"a\": 2}"),
                 JsonParseError);
}

TEST(JsonParse, ErrorsCarrySourcePosition)
{
    try {
        JsonValue::parse("{\n  \"a\": 1,\n  oops\n}");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_EQ(e.line(), 3u);
        EXPECT_GT(e.column(), 1u);
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    EXPECT_THROW(JsonValue::parse(""), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("[1,]"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("1 2"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("nul"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("01"), JsonParseError);
}

TEST(JsonParse, KindMismatchThrowsLogicError)
{
    JsonValue v = JsonValue::parse("42");
    EXPECT_THROW(v.asString(), std::logic_error);
    EXPECT_THROW(v.items(), std::logic_error);
    EXPECT_THROW(v.find("k"), std::logic_error);
    EXPECT_STREQ(JsonValue::kindName(JsonValue::Kind::Number),
                 "number");
}

/** A numpunct facet with ',' as decimal point and '.' grouping --
 *  the de_DE convention, available regardless of installed locales. */
struct CommaDecimal : std::numpunct<char>
{
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

/** RAII: comma-decimal C++ global locale plus, when the container
 *  has one installed, a comma-decimal C locale (LC_NUMERIC drives
 *  strtod/snprintf/ostringstream -- the historical corruption path
 *  for JSON numbers). */
class CommaLocaleGuard
{
  public:
    CommaLocaleGuard()
        : old_(std::locale::global(
              std::locale(std::locale::classic(),
                          new CommaDecimal)))
    {
        const char *current = std::setlocale(LC_NUMERIC, nullptr);
        savedC_ = current != nullptr ? current : "C";
        for (const char *name :
             { "de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
               "fr_FR.utf8", "de_DE", "fr_FR" }) {
            if (std::setlocale(LC_NUMERIC, name) != nullptr)
                break;
        }
    }

    ~CommaLocaleGuard()
    {
        std::setlocale(LC_NUMERIC, savedC_.c_str());
        std::locale::global(old_);
    }

  private:
    std::locale old_;
    std::string savedC_;
};

TEST(JsonLocale, NumbersRoundTripUnderCommaDecimalLocale)
{
    CommaLocaleGuard guard;

    const double vals[] = { 0.1,        -2.5,       1e-9,
                            6.02214076e23, 4.08601199, 1.0 / 3.0 };
    JsonWriter w;
    w.beginObject();
    w.beginArray("xs");
    for (double v : vals)
        w.element(v);
    w.endArray();
    w.value("k", 0.25);
    w.endObject();
    const std::string doc = w.str();

    // The writer must use '.' regardless of locale...
    EXPECT_NE(doc.find("\"k\":0.25"), std::string::npos) << doc;

    // ...and the parser must read the full lexeme back bit-exactly
    // (a locale-sensitive strtod would stop at the '.').
    JsonValue v = JsonValue::parse(doc);
    const auto &xs = v.find("xs")->items();
    ASSERT_EQ(xs.size(), std::size(vals));
    for (std::size_t i = 0; i < std::size(vals); ++i)
        EXPECT_EQ(xs[i].asNumber(), vals[i]) << doc;
    EXPECT_EQ(v.find("k")->asNumber(), 0.25);
}

TEST(JsonParse, OverflowSaturatesLikeStrtod)
{
    // Out-of-range lexemes keep the classic strtod saturation: huge
    // exponents pin to +/-infinity, tiny ones flush to zero.
    EXPECT_TRUE(std::isinf(JsonValue::parse("1e999").asNumber()));
    EXPECT_GT(JsonValue::parse("1e999").asNumber(), 0.0);
    EXPECT_LT(JsonValue::parse("-1e999").asNumber(), 0.0);
    EXPECT_EQ(JsonValue::parse("1e-999").asNumber(), 0.0);
    EXPECT_EQ(JsonValue::parse("0.0000").asNumber(), 0.0);
}

TEST(JsonParse, WriterOutputRoundTrips)
{
    JsonWriter w;
    w.beginObject();
    w.value("n", uint64_t{ 7 });
    w.beginArray("xs");
    w.element(1.5);
    w.element(std::string("two"));
    w.endArray();
    w.endObject();

    JsonValue v = JsonValue::parse(w.str());
    EXPECT_DOUBLE_EQ(v.find("n")->asNumber(), 7.0);
    EXPECT_EQ(v.find("xs")->items()[1].asString(), "two");
}

} // namespace
} // namespace mbbp

/**
 * @file
 * Runtime SIMD dispatch: the name/width tables, detection ordering,
 * and the setLevel clamp. Every expectation must hold identically on
 * a portable build (-DMBBP_SIMD=OFF) and on non-x86 hosts, where
 * detect() never leaves Level::Scalar.
 */

#include "util/simd.hh"

#include <gtest/gtest.h>

namespace mbbp::simd
{
namespace
{

/** Restore the process-wide dispatch level on scope exit so a
 *  failing expectation cannot leak a forced level into later
 *  tests. */
struct LevelGuard
{
    Level saved = activeLevel();
    ~LevelGuard() { setLevel(saved); }
};

TEST(SimdTest, LevelNames)
{
    EXPECT_STREQ(levelName(Level::Scalar), "scalar");
    EXPECT_STREQ(levelName(Level::Avx2), "avx2");
    EXPECT_STREQ(levelName(Level::Avx512), "avx512");
}

TEST(SimdTest, VectorLanesPerLevel)
{
    EXPECT_EQ(vectorLanes(Level::Scalar), 1u);
    EXPECT_EQ(vectorLanes(Level::Avx2), 4u);
    EXPECT_EQ(vectorLanes(Level::Avx512), 8u);
}

TEST(SimdTest, DetectIsStableAndBoundsActive)
{
    EXPECT_EQ(detect(), detect());
    EXPECT_LE(static_cast<int>(activeLevel()),
              static_cast<int>(detect()));
}

TEST(SimdTest, SetLevelClampsToDetected)
{
    LevelGuard guard;
    for (Level l : { Level::Scalar, Level::Avx2, Level::Avx512 }) {
        setLevel(l);
        Level expected = static_cast<int>(l) <=
                                 static_cast<int>(detect())
            ? l
            : detect();
        EXPECT_EQ(activeLevel(), expected)
            << "forced " << levelName(l);
    }
}

TEST(SimdTest, ScalarIsAlwaysForceable)
{
    LevelGuard guard;
    setLevel(Level::Scalar);
    EXPECT_EQ(activeLevel(), Level::Scalar);
}

} // namespace
} // namespace mbbp::simd

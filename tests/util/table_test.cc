/** @file Unit tests for the text-table formatter. */

#include "util/table.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t("demo");
    t.setHeader({ "name", "value" });
    t.addRow({ "a", "1" });
    t.addRow({ "long-name", "2" });
    std::string out = t.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t;
    t.setHeader({ "a", "b" });
    t.addRow({ "1", "2" });
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(TextTable, CsvQuotesSpecialCells)
{
    TextTable t;
    t.setHeader({ "a", "b" });
    t.addRow({ "x,y", "say \"hi\"" });
    EXPECT_EQ(t.renderCsv(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTable, CountsRowsAndCols)
{
    TextTable t;
    t.setHeader({ "x", "y", "z" });
    EXPECT_EQ(t.numCols(), 3u);
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({ "1", "2", "3" });
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(TextTable, FormatHelpers)
{
    EXPECT_EQ(TextTable::fmt(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(1.0, 1), "1.0");
    EXPECT_EQ(TextTable::fmt(uint64_t{ 42 }), "42");
    EXPECT_EQ(TextTable::fmt(int64_t{ -3 }), "-3");
}

TEST(TextTableDeath, RowWidthMismatchPanics)
{
    TextTable t;
    t.setHeader({ "a", "b" });
    EXPECT_DEATH(t.addRow({ "only-one" }), "cells");
}

TEST(TextTableDeath, EmptyHeaderPanics)
{
    TextTable t;
    EXPECT_DEATH(t.setHeader({}), "empty");
}

} // namespace
} // namespace mbbp

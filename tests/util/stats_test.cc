/** @file Unit tests for the statistics primitives. */

#include "util/stats.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c("events");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(c.name(), "events");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(DistStat, EmptyIsZero)
{
    DistStat d("d");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
}

TEST(DistStat, TracksMoments)
{
    DistStat d("d");
    for (double v : { 1.0, 2.0, 3.0, 4.0 })
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 10.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Histogram, BucketsAndClamp)
{
    Histogram h("h", 4);
    h.sample(0);
    h.sample(1, 2);
    h.sample(99);   // clamps into the last bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, Mean)
{
    Histogram h("h", 10);
    h.sample(2, 3);
    h.sample(4, 1);
    EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 3 + 4.0) / 4.0);
}

TEST(Ratios, SafeDivision)
{
    EXPECT_DOUBLE_EQ(ratio(1, 2), 0.5);
    EXPECT_DOUBLE_EQ(ratio(1, 0), 0.0);
    EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
    EXPECT_DOUBLE_EQ(percent(5, 0), 0.0);
}

} // namespace
} // namespace mbbp

/** @file Unit tests for the deterministic PRNG. */

#include "util/random.hh"

#include <gtest/gtest.h>

namespace mbbp
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, UniformIntInBounds)
{
    Rng r(7);
    for (uint64_t bound : { 1ull, 2ull, 10ull, 1000ull })
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.uniformInt(bound), bound);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = r.uniformRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniformReal();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(13);
    for (double p : { 0.1, 0.5, 0.9 }) {
        int hits = 0;
        for (int i = 0; i < 20000; ++i)
            hits += r.bernoulli(p);
        EXPECT_NEAR(hits / 20000.0, p, 0.02);
    }
}

TEST(Rng, WeightedPickRespectsWeights)
{
    Rng r(17);
    std::vector<double> w = { 1.0, 3.0, 0.0 };
    int counts[3] = { 0, 0, 0 };
    for (int i = 0; i < 20000; ++i)
        ++counts[r.weightedPick(w)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[1] / 20000.0, 0.75, 0.02);
}

TEST(Rng, GeometricCapAndMean)
{
    Rng r(19);
    uint64_t total = 0;
    for (int i = 0; i < 20000; ++i) {
        uint64_t v = r.geometric(0.25, 100);
        ASSERT_LE(v, 100u);
        total += v;
    }
    // Mean of failures before success at p=0.25 is 3.
    EXPECT_NEAR(static_cast<double>(total) / 20000.0, 3.0, 0.15);
}

TEST(RngDeath, WeightedPickAllZeroPanics)
{
    Rng r(1);
    std::vector<double> w = { 0.0, 0.0 };
    EXPECT_DEATH((void)r.weightedPick(w), "weight");
}

} // namespace
} // namespace mbbp

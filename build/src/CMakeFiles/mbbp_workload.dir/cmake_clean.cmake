file(REMOVE_RECURSE
  "CMakeFiles/mbbp_workload.dir/workload/behavior.cc.o"
  "CMakeFiles/mbbp_workload.dir/workload/behavior.cc.o.d"
  "CMakeFiles/mbbp_workload.dir/workload/cfg.cc.o"
  "CMakeFiles/mbbp_workload.dir/workload/cfg.cc.o.d"
  "CMakeFiles/mbbp_workload.dir/workload/generator.cc.o"
  "CMakeFiles/mbbp_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/mbbp_workload.dir/workload/interpreter.cc.o"
  "CMakeFiles/mbbp_workload.dir/workload/interpreter.cc.o.d"
  "CMakeFiles/mbbp_workload.dir/workload/spec95.cc.o"
  "CMakeFiles/mbbp_workload.dir/workload/spec95.cc.o.d"
  "libmbbp_workload.a"
  "libmbbp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbbp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

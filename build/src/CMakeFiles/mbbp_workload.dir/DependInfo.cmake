
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/behavior.cc" "src/CMakeFiles/mbbp_workload.dir/workload/behavior.cc.o" "gcc" "src/CMakeFiles/mbbp_workload.dir/workload/behavior.cc.o.d"
  "/root/repo/src/workload/cfg.cc" "src/CMakeFiles/mbbp_workload.dir/workload/cfg.cc.o" "gcc" "src/CMakeFiles/mbbp_workload.dir/workload/cfg.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/mbbp_workload.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/mbbp_workload.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/interpreter.cc" "src/CMakeFiles/mbbp_workload.dir/workload/interpreter.cc.o" "gcc" "src/CMakeFiles/mbbp_workload.dir/workload/interpreter.cc.o.d"
  "/root/repo/src/workload/spec95.cc" "src/CMakeFiles/mbbp_workload.dir/workload/spec95.cc.o" "gcc" "src/CMakeFiles/mbbp_workload.dir/workload/spec95.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mbbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

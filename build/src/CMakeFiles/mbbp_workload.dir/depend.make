# Empty dependencies file for mbbp_workload.
# This may be replaced when dependencies are built.

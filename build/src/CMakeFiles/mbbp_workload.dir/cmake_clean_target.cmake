file(REMOVE_RECURSE
  "libmbbp_workload.a"
)

# Empty dependencies file for mbbp_predict.
# This may be replaced when dependencies are built.

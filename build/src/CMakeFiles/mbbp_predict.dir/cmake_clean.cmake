file(REMOVE_RECURSE
  "CMakeFiles/mbbp_predict.dir/predict/bbr.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/bbr.cc.o.d"
  "CMakeFiles/mbbp_predict.dir/predict/bit_table.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/bit_table.cc.o.d"
  "CMakeFiles/mbbp_predict.dir/predict/blocked_pht.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/blocked_pht.cc.o.d"
  "CMakeFiles/mbbp_predict.dir/predict/branch_address_cache.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/branch_address_cache.cc.o.d"
  "CMakeFiles/mbbp_predict.dir/predict/btb.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/btb.cc.o.d"
  "CMakeFiles/mbbp_predict.dir/predict/history.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/history.cc.o.d"
  "CMakeFiles/mbbp_predict.dir/predict/nls.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/nls.cc.o.d"
  "CMakeFiles/mbbp_predict.dir/predict/ras.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/ras.cc.o.d"
  "CMakeFiles/mbbp_predict.dir/predict/scalar_two_level.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/scalar_two_level.cc.o.d"
  "CMakeFiles/mbbp_predict.dir/predict/select_table.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/select_table.cc.o.d"
  "CMakeFiles/mbbp_predict.dir/predict/two_block_ahead.cc.o"
  "CMakeFiles/mbbp_predict.dir/predict/two_block_ahead.cc.o.d"
  "libmbbp_predict.a"
  "libmbbp_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbbp_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

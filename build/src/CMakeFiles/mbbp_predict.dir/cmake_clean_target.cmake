file(REMOVE_RECURSE
  "libmbbp_predict.a"
)

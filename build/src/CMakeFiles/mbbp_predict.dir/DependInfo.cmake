
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/bbr.cc" "src/CMakeFiles/mbbp_predict.dir/predict/bbr.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/bbr.cc.o.d"
  "/root/repo/src/predict/bit_table.cc" "src/CMakeFiles/mbbp_predict.dir/predict/bit_table.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/bit_table.cc.o.d"
  "/root/repo/src/predict/blocked_pht.cc" "src/CMakeFiles/mbbp_predict.dir/predict/blocked_pht.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/blocked_pht.cc.o.d"
  "/root/repo/src/predict/branch_address_cache.cc" "src/CMakeFiles/mbbp_predict.dir/predict/branch_address_cache.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/branch_address_cache.cc.o.d"
  "/root/repo/src/predict/btb.cc" "src/CMakeFiles/mbbp_predict.dir/predict/btb.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/btb.cc.o.d"
  "/root/repo/src/predict/history.cc" "src/CMakeFiles/mbbp_predict.dir/predict/history.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/history.cc.o.d"
  "/root/repo/src/predict/nls.cc" "src/CMakeFiles/mbbp_predict.dir/predict/nls.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/nls.cc.o.d"
  "/root/repo/src/predict/ras.cc" "src/CMakeFiles/mbbp_predict.dir/predict/ras.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/ras.cc.o.d"
  "/root/repo/src/predict/scalar_two_level.cc" "src/CMakeFiles/mbbp_predict.dir/predict/scalar_two_level.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/scalar_two_level.cc.o.d"
  "/root/repo/src/predict/select_table.cc" "src/CMakeFiles/mbbp_predict.dir/predict/select_table.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/select_table.cc.o.d"
  "/root/repo/src/predict/two_block_ahead.cc" "src/CMakeFiles/mbbp_predict.dir/predict/two_block_ahead.cc.o" "gcc" "src/CMakeFiles/mbbp_predict.dir/predict/two_block_ahead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mbbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mbbp_isa.dir/isa/inst.cc.o"
  "CMakeFiles/mbbp_isa.dir/isa/inst.cc.o.d"
  "libmbbp_isa.a"
  "libmbbp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbbp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mbbp_isa.
# This may be replaced when dependencies are built.

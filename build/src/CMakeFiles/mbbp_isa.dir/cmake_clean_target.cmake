file(REMOVE_RECURSE
  "libmbbp_isa.a"
)

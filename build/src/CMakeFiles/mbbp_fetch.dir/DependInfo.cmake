
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fetch/block.cc" "src/CMakeFiles/mbbp_fetch.dir/fetch/block.cc.o" "gcc" "src/CMakeFiles/mbbp_fetch.dir/fetch/block.cc.o.d"
  "/root/repo/src/fetch/dual_block_engine.cc" "src/CMakeFiles/mbbp_fetch.dir/fetch/dual_block_engine.cc.o" "gcc" "src/CMakeFiles/mbbp_fetch.dir/fetch/dual_block_engine.cc.o.d"
  "/root/repo/src/fetch/engine_common.cc" "src/CMakeFiles/mbbp_fetch.dir/fetch/engine_common.cc.o" "gcc" "src/CMakeFiles/mbbp_fetch.dir/fetch/engine_common.cc.o.d"
  "/root/repo/src/fetch/exit_predict.cc" "src/CMakeFiles/mbbp_fetch.dir/fetch/exit_predict.cc.o" "gcc" "src/CMakeFiles/mbbp_fetch.dir/fetch/exit_predict.cc.o.d"
  "/root/repo/src/fetch/fetch_stats.cc" "src/CMakeFiles/mbbp_fetch.dir/fetch/fetch_stats.cc.o" "gcc" "src/CMakeFiles/mbbp_fetch.dir/fetch/fetch_stats.cc.o.d"
  "/root/repo/src/fetch/icache_model.cc" "src/CMakeFiles/mbbp_fetch.dir/fetch/icache_model.cc.o" "gcc" "src/CMakeFiles/mbbp_fetch.dir/fetch/icache_model.cc.o.d"
  "/root/repo/src/fetch/multi_block_engine.cc" "src/CMakeFiles/mbbp_fetch.dir/fetch/multi_block_engine.cc.o" "gcc" "src/CMakeFiles/mbbp_fetch.dir/fetch/multi_block_engine.cc.o.d"
  "/root/repo/src/fetch/penalty_model.cc" "src/CMakeFiles/mbbp_fetch.dir/fetch/penalty_model.cc.o" "gcc" "src/CMakeFiles/mbbp_fetch.dir/fetch/penalty_model.cc.o.d"
  "/root/repo/src/fetch/single_block_engine.cc" "src/CMakeFiles/mbbp_fetch.dir/fetch/single_block_engine.cc.o" "gcc" "src/CMakeFiles/mbbp_fetch.dir/fetch/single_block_engine.cc.o.d"
  "/root/repo/src/fetch/two_ahead_engine.cc" "src/CMakeFiles/mbbp_fetch.dir/fetch/two_ahead_engine.cc.o" "gcc" "src/CMakeFiles/mbbp_fetch.dir/fetch/two_ahead_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mbbp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

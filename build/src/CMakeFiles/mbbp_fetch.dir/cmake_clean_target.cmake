file(REMOVE_RECURSE
  "libmbbp_fetch.a"
)

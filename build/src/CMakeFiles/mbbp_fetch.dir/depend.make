# Empty dependencies file for mbbp_fetch.
# This may be replaced when dependencies are built.

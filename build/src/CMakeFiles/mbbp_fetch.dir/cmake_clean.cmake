file(REMOVE_RECURSE
  "CMakeFiles/mbbp_fetch.dir/fetch/block.cc.o"
  "CMakeFiles/mbbp_fetch.dir/fetch/block.cc.o.d"
  "CMakeFiles/mbbp_fetch.dir/fetch/dual_block_engine.cc.o"
  "CMakeFiles/mbbp_fetch.dir/fetch/dual_block_engine.cc.o.d"
  "CMakeFiles/mbbp_fetch.dir/fetch/engine_common.cc.o"
  "CMakeFiles/mbbp_fetch.dir/fetch/engine_common.cc.o.d"
  "CMakeFiles/mbbp_fetch.dir/fetch/exit_predict.cc.o"
  "CMakeFiles/mbbp_fetch.dir/fetch/exit_predict.cc.o.d"
  "CMakeFiles/mbbp_fetch.dir/fetch/fetch_stats.cc.o"
  "CMakeFiles/mbbp_fetch.dir/fetch/fetch_stats.cc.o.d"
  "CMakeFiles/mbbp_fetch.dir/fetch/icache_model.cc.o"
  "CMakeFiles/mbbp_fetch.dir/fetch/icache_model.cc.o.d"
  "CMakeFiles/mbbp_fetch.dir/fetch/multi_block_engine.cc.o"
  "CMakeFiles/mbbp_fetch.dir/fetch/multi_block_engine.cc.o.d"
  "CMakeFiles/mbbp_fetch.dir/fetch/penalty_model.cc.o"
  "CMakeFiles/mbbp_fetch.dir/fetch/penalty_model.cc.o.d"
  "CMakeFiles/mbbp_fetch.dir/fetch/single_block_engine.cc.o"
  "CMakeFiles/mbbp_fetch.dir/fetch/single_block_engine.cc.o.d"
  "CMakeFiles/mbbp_fetch.dir/fetch/two_ahead_engine.cc.o"
  "CMakeFiles/mbbp_fetch.dir/fetch/two_ahead_engine.cc.o.d"
  "libmbbp_fetch.a"
  "libmbbp_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbbp_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mbbp_trace.
# This may be replaced when dependencies are built.

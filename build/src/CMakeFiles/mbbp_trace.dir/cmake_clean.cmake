file(REMOVE_RECURSE
  "CMakeFiles/mbbp_trace.dir/trace/static_image.cc.o"
  "CMakeFiles/mbbp_trace.dir/trace/static_image.cc.o.d"
  "CMakeFiles/mbbp_trace.dir/trace/trace.cc.o"
  "CMakeFiles/mbbp_trace.dir/trace/trace.cc.o.d"
  "CMakeFiles/mbbp_trace.dir/trace/trace_file.cc.o"
  "CMakeFiles/mbbp_trace.dir/trace/trace_file.cc.o.d"
  "libmbbp_trace.a"
  "libmbbp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbbp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

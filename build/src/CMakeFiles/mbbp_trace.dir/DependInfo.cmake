
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/static_image.cc" "src/CMakeFiles/mbbp_trace.dir/trace/static_image.cc.o" "gcc" "src/CMakeFiles/mbbp_trace.dir/trace/static_image.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/mbbp_trace.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/mbbp_trace.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/mbbp_trace.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/mbbp_trace.dir/trace/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mbbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

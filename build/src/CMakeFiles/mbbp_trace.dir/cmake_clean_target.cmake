file(REMOVE_RECURSE
  "libmbbp_trace.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/json.cc" "src/CMakeFiles/mbbp_util.dir/util/json.cc.o" "gcc" "src/CMakeFiles/mbbp_util.dir/util/json.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/mbbp_util.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/mbbp_util.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/mbbp_util.dir/util/random.cc.o" "gcc" "src/CMakeFiles/mbbp_util.dir/util/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/mbbp_util.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/mbbp_util.dir/util/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/mbbp_util.dir/util/table.cc.o" "gcc" "src/CMakeFiles/mbbp_util.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

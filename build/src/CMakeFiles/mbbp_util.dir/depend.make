# Empty dependencies file for mbbp_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mbbp_util.dir/util/json.cc.o"
  "CMakeFiles/mbbp_util.dir/util/json.cc.o.d"
  "CMakeFiles/mbbp_util.dir/util/logging.cc.o"
  "CMakeFiles/mbbp_util.dir/util/logging.cc.o.d"
  "CMakeFiles/mbbp_util.dir/util/random.cc.o"
  "CMakeFiles/mbbp_util.dir/util/random.cc.o.d"
  "CMakeFiles/mbbp_util.dir/util/stats.cc.o"
  "CMakeFiles/mbbp_util.dir/util/stats.cc.o.d"
  "CMakeFiles/mbbp_util.dir/util/table.cc.o"
  "CMakeFiles/mbbp_util.dir/util/table.cc.o.d"
  "libmbbp_util.a"
  "libmbbp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbbp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

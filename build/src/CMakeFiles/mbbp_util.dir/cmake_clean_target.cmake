file(REMOVE_RECURSE
  "libmbbp_util.a"
)

file(REMOVE_RECURSE
  "libmbbp_core.a"
)

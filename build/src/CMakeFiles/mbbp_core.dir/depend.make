# Empty dependencies file for mbbp_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mbbp_core.dir/core/accuracy.cc.o"
  "CMakeFiles/mbbp_core.dir/core/accuracy.cc.o.d"
  "CMakeFiles/mbbp_core.dir/core/cost_model.cc.o"
  "CMakeFiles/mbbp_core.dir/core/cost_model.cc.o.d"
  "CMakeFiles/mbbp_core.dir/core/fetch_simulator.cc.o"
  "CMakeFiles/mbbp_core.dir/core/fetch_simulator.cc.o.d"
  "CMakeFiles/mbbp_core.dir/core/report.cc.o"
  "CMakeFiles/mbbp_core.dir/core/report.cc.o.d"
  "CMakeFiles/mbbp_core.dir/core/suite_runner.cc.o"
  "CMakeFiles/mbbp_core.dir/core/suite_runner.cc.o.d"
  "libmbbp_core.a"
  "libmbbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbbp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/predict_test[1]_include.cmake")
include("/root/repo/build/tests/fetch_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")

# Empty compiler generated dependencies file for fetch_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fetch_test.dir/fetch/block_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/block_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/dual_block_engine_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/dual_block_engine_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/engine_common_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/engine_common_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/exit_predict_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/exit_predict_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/fetch_stats_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/fetch_stats_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/ghr_penalty_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/ghr_penalty_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/icache_contents_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/icache_contents_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/icache_model_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/icache_model_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/multi_block_engine_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/multi_block_engine_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/near_block_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/near_block_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/penalty_model_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/penalty_model_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/single_block_engine_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/single_block_engine_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/table2_example_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/table2_example_test.cc.o.d"
  "CMakeFiles/fetch_test.dir/fetch/two_ahead_engine_test.cc.o"
  "CMakeFiles/fetch_test.dir/fetch/two_ahead_engine_test.cc.o.d"
  "fetch_test"
  "fetch_test.pdb"
  "fetch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fetch/block_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/block_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/block_test.cc.o.d"
  "/root/repo/tests/fetch/dual_block_engine_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/dual_block_engine_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/dual_block_engine_test.cc.o.d"
  "/root/repo/tests/fetch/engine_common_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/engine_common_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/engine_common_test.cc.o.d"
  "/root/repo/tests/fetch/exit_predict_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/exit_predict_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/exit_predict_test.cc.o.d"
  "/root/repo/tests/fetch/fetch_stats_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/fetch_stats_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/fetch_stats_test.cc.o.d"
  "/root/repo/tests/fetch/ghr_penalty_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/ghr_penalty_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/ghr_penalty_test.cc.o.d"
  "/root/repo/tests/fetch/icache_contents_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/icache_contents_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/icache_contents_test.cc.o.d"
  "/root/repo/tests/fetch/icache_model_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/icache_model_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/icache_model_test.cc.o.d"
  "/root/repo/tests/fetch/multi_block_engine_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/multi_block_engine_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/multi_block_engine_test.cc.o.d"
  "/root/repo/tests/fetch/near_block_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/near_block_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/near_block_test.cc.o.d"
  "/root/repo/tests/fetch/penalty_model_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/penalty_model_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/penalty_model_test.cc.o.d"
  "/root/repo/tests/fetch/single_block_engine_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/single_block_engine_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/single_block_engine_test.cc.o.d"
  "/root/repo/tests/fetch/table2_example_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/table2_example_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/table2_example_test.cc.o.d"
  "/root/repo/tests/fetch/two_ahead_engine_test.cc" "tests/CMakeFiles/fetch_test.dir/fetch/two_ahead_engine_test.cc.o" "gcc" "tests/CMakeFiles/fetch_test.dir/fetch/two_ahead_engine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mbbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_fetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/calibration_test.cc" "tests/CMakeFiles/integration_test.dir/integration/calibration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/calibration_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/fuzz_test.cc" "tests/CMakeFiles/integration_test.dir/integration/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fuzz_test.cc.o.d"
  "/root/repo/tests/integration/properties_test.cc" "tests/CMakeFiles/integration_test.dir/integration/properties_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/properties_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mbbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_fetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/isa_test.dir/isa/inst_test.cc.o"
  "CMakeFiles/isa_test.dir/isa/inst_test.cc.o.d"
  "isa_test"
  "isa_test.pdb"
  "isa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/bitops_test.cc" "tests/CMakeFiles/util_test.dir/util/bitops_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/bitops_test.cc.o.d"
  "/root/repo/tests/util/json_test.cc" "tests/CMakeFiles/util_test.dir/util/json_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/json_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/util_test.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/sat_counter_test.cc" "tests/CMakeFiles/util_test.dir/util/sat_counter_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/sat_counter_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/util_test.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/table_test.cc" "tests/CMakeFiles/util_test.dir/util/table_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mbbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_fetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/predict/bbr_test.cc" "tests/CMakeFiles/predict_test.dir/predict/bbr_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/bbr_test.cc.o.d"
  "/root/repo/tests/predict/bit_table_test.cc" "tests/CMakeFiles/predict_test.dir/predict/bit_table_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/bit_table_test.cc.o.d"
  "/root/repo/tests/predict/blocked_pht_test.cc" "tests/CMakeFiles/predict_test.dir/predict/blocked_pht_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/blocked_pht_test.cc.o.d"
  "/root/repo/tests/predict/branch_address_cache_test.cc" "tests/CMakeFiles/predict_test.dir/predict/branch_address_cache_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/branch_address_cache_test.cc.o.d"
  "/root/repo/tests/predict/btb_test.cc" "tests/CMakeFiles/predict_test.dir/predict/btb_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/btb_test.cc.o.d"
  "/root/repo/tests/predict/history_test.cc" "tests/CMakeFiles/predict_test.dir/predict/history_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/history_test.cc.o.d"
  "/root/repo/tests/predict/nls_test.cc" "tests/CMakeFiles/predict_test.dir/predict/nls_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/nls_test.cc.o.d"
  "/root/repo/tests/predict/ras_test.cc" "tests/CMakeFiles/predict_test.dir/predict/ras_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/ras_test.cc.o.d"
  "/root/repo/tests/predict/scalar_two_level_test.cc" "tests/CMakeFiles/predict_test.dir/predict/scalar_two_level_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/scalar_two_level_test.cc.o.d"
  "/root/repo/tests/predict/select_table_test.cc" "tests/CMakeFiles/predict_test.dir/predict/select_table_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/select_table_test.cc.o.d"
  "/root/repo/tests/predict/two_block_ahead_test.cc" "tests/CMakeFiles/predict_test.dir/predict/two_block_ahead_test.cc.o" "gcc" "tests/CMakeFiles/predict_test.dir/predict/two_block_ahead_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mbbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_fetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mbbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/predict_test.dir/predict/bbr_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/bbr_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/bit_table_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/bit_table_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/blocked_pht_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/blocked_pht_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/branch_address_cache_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/branch_address_cache_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/btb_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/btb_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/history_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/history_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/nls_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/nls_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/ras_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/ras_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/scalar_two_level_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/scalar_two_level_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/select_table_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/select_table_test.cc.o.d"
  "CMakeFiles/predict_test.dir/predict/two_block_ahead_test.cc.o"
  "CMakeFiles/predict_test.dir/predict/two_block_ahead_test.cc.o.d"
  "predict_test"
  "predict_test.pdb"
  "predict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

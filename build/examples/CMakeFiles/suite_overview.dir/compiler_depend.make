# Empty compiler generated dependencies file for suite_overview.
# This may be replaced when dependencies are built.

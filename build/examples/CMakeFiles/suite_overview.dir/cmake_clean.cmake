file(REMOVE_RECURSE
  "CMakeFiles/suite_overview.dir/suite_overview.cpp.o"
  "CMakeFiles/suite_overview.dir/suite_overview.cpp.o.d"
  "suite_overview"
  "suite_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

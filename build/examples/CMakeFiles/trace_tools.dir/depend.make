# Empty dependencies file for trace_tools.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/trace_tools.dir/trace_tools.cpp.o"
  "CMakeFiles/trace_tools.dir/trace_tools.cpp.o.d"
  "trace_tools"
  "trace_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/simulate_cli.dir/simulate_cli.cpp.o"
  "CMakeFiles/simulate_cli.dir/simulate_cli.cpp.o.d"
  "simulate_cli"
  "simulate_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for simulate_cli.
# This may be replaced when dependencies are built.

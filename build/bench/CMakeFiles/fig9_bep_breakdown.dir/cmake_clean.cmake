file(REMOVE_RECURSE
  "CMakeFiles/fig9_bep_breakdown.dir/fig9_bep_breakdown.cpp.o"
  "CMakeFiles/fig9_bep_breakdown.dir/fig9_bep_breakdown.cpp.o.d"
  "fig9_bep_breakdown"
  "fig9_bep_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_bep_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig9_bep_breakdown.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig7_bit_size.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_multiblock.dir/ext_multiblock.cpp.o"
  "CMakeFiles/ext_multiblock.dir/ext_multiblock.cpp.o.d"
  "ext_multiblock"
  "ext_multiblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

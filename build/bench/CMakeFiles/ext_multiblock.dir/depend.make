# Empty dependencies file for ext_multiblock.
# This may be replaced when dependencies are built.

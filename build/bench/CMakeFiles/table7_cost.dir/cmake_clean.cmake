file(REMOVE_RECURSE
  "CMakeFiles/table7_cost.dir/table7_cost.cpp.o"
  "CMakeFiles/table7_cost.dir/table7_cost.cpp.o.d"
  "table7_cost"
  "table7_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table7_cost.
# This may be replaced when dependencies are built.

# Empty dependencies file for table5_target_arrays.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table5_target_arrays.dir/table5_target_arrays.cpp.o"
  "CMakeFiles/table5_target_arrays.dir/table5_target_arrays.cpp.o.d"
  "table5_target_arrays"
  "table5_target_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_target_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_baselines.dir/ablation_baselines.cpp.o"
  "CMakeFiles/ablation_baselines.dir/ablation_baselines.cpp.o.d"
  "ablation_baselines"
  "ablation_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table6_cache_types.dir/table6_cache_types.cpp.o"
  "CMakeFiles/table6_cache_types.dir/table6_cache_types.cpp.o.d"
  "table6_cache_types"
  "table6_cache_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_cache_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

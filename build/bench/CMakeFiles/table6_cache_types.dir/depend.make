# Empty dependencies file for table6_cache_types.
# This may be replaced when dependencies are built.

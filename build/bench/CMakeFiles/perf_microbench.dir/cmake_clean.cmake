file(REMOVE_RECURSE
  "CMakeFiles/perf_microbench.dir/perf_microbench.cpp.o"
  "CMakeFiles/perf_microbench.dir/perf_microbench.cpp.o.d"
  "perf_microbench"
  "perf_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

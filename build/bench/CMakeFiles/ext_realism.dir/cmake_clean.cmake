file(REMOVE_RECURSE
  "CMakeFiles/ext_realism.dir/ext_realism.cpp.o"
  "CMakeFiles/ext_realism.dir/ext_realism.cpp.o.d"
  "ext_realism"
  "ext_realism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_realism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_realism.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig6_branch_accuracy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_branch_accuracy.dir/fig6_branch_accuracy.cpp.o"
  "CMakeFiles/fig6_branch_accuracy.dir/fig6_branch_accuracy.cpp.o.d"
  "fig6_branch_accuracy"
  "fig6_branch_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_branch_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

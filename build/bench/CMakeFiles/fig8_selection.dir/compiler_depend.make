# Empty compiler generated dependencies file for fig8_selection.
# This may be replaced when dependencies are built.

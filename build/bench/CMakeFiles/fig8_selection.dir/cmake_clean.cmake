file(REMOVE_RECURSE
  "CMakeFiles/fig8_selection.dir/fig8_selection.cpp.o"
  "CMakeFiles/fig8_selection.dir/fig8_selection.cpp.o.d"
  "fig8_selection"
  "fig8_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ext_pht_organizations.dir/ext_pht_organizations.cpp.o"
  "CMakeFiles/ext_pht_organizations.dir/ext_pht_organizations.cpp.o.d"
  "ext_pht_organizations"
  "ext_pht_organizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pht_organizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_pht_organizations.
# This may be replaced when dependencies are built.

/**
 * @file
 * Dual-block fetch engine: Figures 2-5. Two blocks are fetched per
 * cycle; while the pair (A, B) is read, the address of the next first
 * block comes from B's BIT+PHT exit prediction (or, with double
 * selection, from the dual select table), and the next second block's
 * address comes from the select table -- "predict our prediction".
 * Select predictions are verified one stage later against the then-
 * available BIT+PHT information (misselect / GHR penalties), targets
 * against the decoded branch (misfetch), directions at resolution
 * (conditional penalty). Both target arrays are indexed by the second
 * currently-fetching block.
 *
 * Model notes (see DESIGN.md):
 *  - correct-path, trace-driven: each wrong prediction charges its
 *    Table 3 penalty, then the engine continues from the right path;
 *  - a block-1 misprediction squashes the paired block-2 check (the
 *    pipeline is already redirecting), but training still happens;
 *  - the RAS is kept in program order, which is what the Section 3.1
 *    bypassing achieves in hardware.
 */

#ifndef MBBP_FETCH_DUAL_BLOCK_ENGINE_HH
#define MBBP_FETCH_DUAL_BLOCK_ENGINE_HH

#include "fetch/engine_common.hh"
#include "fetch/engine_config.hh"
#include "fetch/penalty_model.hh"
#include "predict/history.hh"

namespace mbbp
{

/** Trace-driven dual-block fetch simulator (single or double sel.). */
class DualBlockEngine
{
  public:
    explicit DualBlockEngine(const FetchEngineConfig &cfg);

    /**
     * Run the whole trace and return the metrics. Decodes a
     * throwaway replay artifact; use the DecodedTrace overload to
     * amortize the decode across runs.
     */
    FetchStats run(const InMemoryTrace &trace);

    /** Replay a precomputed artifact (byte-identical results). */
    FetchStats run(const DecodedTrace &dec);

    const FetchEngineConfig &config() const { return cfg_; }

  private:
    FetchEngineConfig cfg_;
};

} // namespace mbbp

#endif // MBBP_FETCH_DUAL_BLOCK_ENGINE_HH

#include "fetch/penalty_model.hh"

#include "util/logging.hh"

namespace mbbp
{

const char *
penaltyKindName(PenaltyKind k)
{
    switch (k) {
      case PenaltyKind::CondMispredict: return "mispredict";
      case PenaltyKind::ReturnMispredict: return "return";
      case PenaltyKind::MisfetchIndirect: return "misfetch-indirect";
      case PenaltyKind::MisfetchImmediate: return "misfetch-immediate";
      case PenaltyKind::Misselect: return "misselect";
      case PenaltyKind::GhrMispredict: return "ghr";
      case PenaltyKind::BitMispredict: return "bit";
      case PenaltyKind::BankConflict: return "bank-conflict";
      default: return "?";
    }
}

unsigned
PenaltyModel::cycles(PenaltyKind kind, unsigned slot) const
{
    mbbp_assert(slot <= 7, "slot out of range");
    switch (kind) {
      case PenaltyKind::CondMispredict:
        // Dominated by the four-cycle resolution; Table 3 keeps it
        // flat across slots.
        return 5;
      case PenaltyKind::ReturnMispredict:
      case PenaltyKind::MisfetchIndirect:
        return 4 + slot;
      case PenaltyKind::MisfetchImmediate:
        return 1 + slot;
      case PenaltyKind::Misselect:
      case PenaltyKind::GhrMispredict:
        // Single selection has no slot-0 select prediction (n/a in
        // Table 3); double selection shifts every check one stage
        // earlier in exchange for +1 detection latency.
        return doubleSelect_ ? slot + 1 : slot;
      case PenaltyKind::BitMispredict:
        return doubleSelect_ ? 0 : 1;   // n/a: no BIT in double sel.
      case PenaltyKind::BankConflict:
        return slot == 0 ? 0 : 1;
      default:
        mbbp_panic("bad penalty kind");
    }
}

} // namespace mbbp

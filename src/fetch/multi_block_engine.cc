#include "fetch/multi_block_engine.hh"

#include <memory>
#include <vector>

#include "predict/btb.hh"
#include "predict/nls.hh"
#include "util/logging.hh"

namespace mbbp
{

MultiBlockEngine::MultiBlockEngine(const FetchEngineConfig &cfg,
                                   unsigned num_blocks)
    : cfg_(cfg), numBlocks_(num_blocks)
{
    mbbp_assert(num_blocks >= 1 && num_blocks <= 4,
                "1..4 blocks per cycle supported");
    mbbp_assert(!cfg_.doubleSelect,
                "the multi-block engine models single selection");
}

FetchStats
MultiBlockEngine::run(const InMemoryTrace &trace)
{
    FetchStats stats;

    StaticImage image = StaticImage::fromTrace(trace);
    ICacheModel cache(cfg_.icache);
    const unsigned line_size = cache.lineSize();
    const unsigned n = numBlocks_;

    BlockedPHT pht({ cfg_.historyBits, cfg_.icache.blockWidth, 2,
                     cfg_.numPhts });
    GlobalHistory ghr(cfg_.historyBits);
    BitTable bit(cfg_.bitEntries, line_size);
    ReturnAddressStack ras(cfg_.rasEntries);
    PenaltyModel penalties(false);
    SelectTable st = SelectTable::withSlots(
        cfg_.historyBits, cfg_.numSelectTables, n > 1 ? n - 1 : 1);

    std::unique_ptr<TargetArray> ta;
    if (cfg_.targetKind == TargetKind::Nls) {
        ta = std::make_unique<NlsTargetArray>(
            NlsTargetArray::withArrays(cfg_.targetEntries, line_size,
                                       n));
    } else {
        ta = std::make_unique<Btb>(cfg_.targetEntries, cfg_.btbAssoc,
                                   line_size);
    }

    ICacheContents contents(cfg_.icacheLines, cfg_.icacheAssoc);
    PhtTrainer trainer(pht, cfg_.delayedPhtUpdate);

    TraceCursor cursor(trace);
    BlockStream stream(cursor, cache);

    // B: last block of the currently fetching group; its information
    // drives every prediction for the next group.
    FetchBlock B;
    if (!stream.next(B))
        return stats;
    ++stats.fetchRequests;
    countBlockStats(stats, B, line_size);
    touchICache(contents, cache, B, stats, cfg_.icacheMissPenalty);

    for (;;) {
        // Gather the next group.
        std::vector<FetchBlock> group;
        group.reserve(n);
        for (unsigned k = 0; k < n; ++k) {
            FetchBlock blk;
            if (!stream.next(blk))
                break;
            group.push_back(std::move(blk));
        }
        if (group.empty())
            break;
        mbbp_assert(group[0].startPc == B.nextPc,
                    "block stream out of sync");

        ++stats.fetchRequests;
        trainer.tick();
        for (const auto &blk : group) {
            countBlockStats(stats, blk, line_size);
            touchICache(contents, cache, blk, stats,
                        cfg_.icacheMissPenalty);
        }

        // Bank conflicts: each later block colliding with any earlier
        // block in the same cycle reads one cycle later.
        for (std::size_t j = 1; j < group.size(); ++j) {
            bool conflict = false;
            for (std::size_t i = 0; i < j && !conflict; ++i)
                conflict = cache.bankConflict(
                    group[i].startPc, group[i].size(),
                    group[j].startPc, group[j].size());
            if (conflict) {
                stats.charge(PenaltyKind::BankConflict,
                             penalties.cycles(
                                 PenaltyKind::BankConflict,
                                 static_cast<unsigned>(j)));
            }
        }

        // Slot 0: B's own exit via BIT+PHT, predicting group[0].
        std::size_t idx1 = pht.index(ghr, B.startPc);
        bool squashed = false;
        {
            unsigned cap = cache.capacityAt(B.startPc);
            BitVector codes = trueWindowCodes(image, B.startPc, cap,
                                              line_size,
                                              cfg_.nearBlock);
            ExitPrediction pred = predictExit(codes, B.startPc, cap,
                                              pht, idx1);
            if (!bit.perfect()) {
                BitVector stale = bitWindowCodes(bit, image, B.startPc,
                                                 cap, line_size,
                                                 cfg_.nearBlock);
                ExitPrediction pred_stale = predictExit(
                    stale, B.startPc, cap, pht, idx1);
                if (pred_stale.selector(line_size) !=
                    pred.selector(line_size)) {
                    stats.charge(PenaltyKind::BitMispredict,
                                 penalties.cycles(
                                     PenaltyKind::BitMispredict, 0));
                }
                refreshBitEntries(bit, image, B.startPc, cap,
                                  line_size, cfg_.nearBlock);
            }
            ResolvedTarget r =
                resolveAddress(pred, B.startPc, cap, image, ras, *ta,
                               B.startPc, 0, line_size);
            PredictOutcome out = compareWithActual(pred, r, B);
            if (!out.correct) {
                unsigned cycles = penalties.cycles(out.kind, 0);
                if (out.refetchExtra)
                    cycles += penalties.refetchExtra();
                stats.charge(out.kind, cycles);
                if (out.kind == PenaltyKind::CondMispredict)
                    ++stats.condDirectionWrong;
                squashed = true;
            }
            trainer.train(idx1, B);
            ghr.shiftInBlock(B.condOutcomes(), B.numConds());
            applyRasOp(ras, B);
            updateTargetArray(*ta, B.startPc, 0, B, line_size,
                              cfg_.nearBlock);
        }

        // Slots k = 1..: select-table predictions of group[k-1]'s
        // exit (the address of group[k]), all indexed by idx1.
        for (std::size_t k = 1; k < group.size(); ++k) {
            const FetchBlock &prev = group[k - 1];
            unsigned cap = cache.capacityAt(prev.startPc);
            std::size_t idxk = pht.index(ghr, prev.startPc);
            BitVector codes = trueWindowCodes(image, prev.startPc, cap,
                                              line_size,
                                              cfg_.nearBlock);
            ExitPrediction pred = predictExit(codes, prev.startPc, cap,
                                              pht, idxk);
            Selector sel_true = pred.selector(line_size);
            GhrInfo ghr_true = pred.ghrInfo();
            unsigned tab = st.tableOf(prev.startPc);
            unsigned slot = static_cast<unsigned>(k - 1);
            const SelectEntry &e = st.read(tab, idx1, slot);

            if (!squashed) {
                if (e.sel != sel_true) {
                    stats.charge(PenaltyKind::Misselect,
                                 penalties.cycles(
                                     PenaltyKind::Misselect,
                                     static_cast<unsigned>(k)));
                } else if (e.ghr != ghr_true) {
                    stats.charge(PenaltyKind::GhrMispredict,
                                 penalties.cycles(
                                     PenaltyKind::GhrMispredict,
                                     static_cast<unsigned>(k)));
                }
                ResolvedTarget r = resolveAddress(
                    pred, prev.startPc, cap, image, ras, *ta,
                    B.startPc, static_cast<unsigned>(k), line_size);
                PredictOutcome out = compareWithActual(pred, r, prev);
                if (!out.correct) {
                    unsigned cycles = penalties.cycles(
                        out.kind, static_cast<unsigned>(k));
                    if (out.refetchExtra)
                        cycles += penalties.refetchExtra();
                    stats.charge(out.kind, cycles);
                    if (out.kind == PenaltyKind::CondMispredict)
                        ++stats.condDirectionWrong;
                    squashed = true;
                }
            }
            st.write(tab, idx1, slot,
                     { sel_true, ghr_true,
                       static_cast<uint8_t>(prev.nextPc % line_size),
                       true });
            updateTargetArray(*ta, B.startPc,
                              static_cast<unsigned>(k), prev,
                              line_size, cfg_.nearBlock);

            trainer.train(idxk, prev);
            ghr.shiftInBlock(prev.condOutcomes(), prev.numConds());
            applyRasOp(ras, prev);
        }

        if (group.size() < n)
            break;      // stream exhausted mid-group
        B = std::move(group.back());
    }

    stats.rasOverflows = ras.overflows();
    return stats;
}

} // namespace mbbp

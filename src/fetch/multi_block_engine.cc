#include "fetch/multi_block_engine.hh"

#include <memory>
#include <vector>

#include "obs/obs.hh"
#include "predict/btb.hh"
#include "predict/nls.hh"
#include "util/logging.hh"

namespace mbbp
{

MultiBlockEngine::MultiBlockEngine(const FetchEngineConfig &cfg,
                                   unsigned num_blocks)
    : cfg_(cfg), numBlocks_(num_blocks)
{
    mbbp_assert(num_blocks >= 1 && num_blocks <= 4,
                "1..4 blocks per cycle supported");
    mbbp_assert(!cfg_.doubleSelect,
                "the multi-block engine models single selection");
}

FetchStats
MultiBlockEngine::run(const InMemoryTrace &trace)
{
    return run(DecodedTrace::build(trace, cfg_.icache));
}

FetchStats
MultiBlockEngine::run(const DecodedTrace &dec)
{
    FetchStats stats;
    mbbp_assert(dec.geometryCompatible(cfg_.icache),
                "decoded trace was cut for another geometry");

    const StaticImage &image = dec.image();
    ICacheModel cache(cfg_.icache);
    const unsigned line_size = cache.lineSize();
    const unsigned n = numBlocks_;

    BlockedPHT pht({ cfg_.historyBits, cfg_.icache.blockWidth, 2,
                     cfg_.numPhts });
    GlobalHistory ghr(cfg_.historyBits);
    BitTable bit(cfg_.bitEntries, line_size);
    ReturnAddressStack ras(cfg_.rasEntries);
    PenaltyModel penalties(false);
    SelectTable st = SelectTable::withSlots(
        cfg_.historyBits, cfg_.numSelectTables, n > 1 ? n - 1 : 1);

    std::unique_ptr<TargetArray> ta;
    if (cfg_.targetKind == TargetKind::Nls) {
        ta = std::make_unique<NlsTargetArray>(
            NlsTargetArray::withArrays(cfg_.targetEntries, line_size,
                                       n));
    } else {
        ta = std::make_unique<Btb>(cfg_.targetEntries, cfg_.btbAssoc,
                                   line_size);
    }

    ICacheContents contents(cfg_.icacheLines, cfg_.icacheAssoc);
    PhtTrainer trainer(pht, cfg_.delayedPhtUpdate);
    BitVector stale;        //!< scratch for finite-BIT codes

    obs::AttributionSink attr;
    FetchBandwidth bw("engine.multi");

    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return stats;

    // B: last block of the currently fetching group; its information
    // drives every prediction for the next group. The group itself is
    // just an index range into the precomputed block index -- no
    // per-cycle gathering or copying.
    std::size_t bi = 0;
    FetchBlock B = dec.block(bi);
    ++stats.fetchRequests;
    countBlockStats(stats, dec, bi);
    touchICache(contents, cache, B, stats, cfg_.icacheMissPenalty);
    bw.endRequest(stats.instructions, 1, false);

    for (;;) {
        // The next group: blocks [g_first, g_first + g_count).
        const std::size_t g_first = bi + 1;
        const std::size_t g_count =
            g_first < nblocks
                ? std::min<std::size_t>(n, nblocks - g_first) : 0;
        if (g_count == 0)
            break;
        mbbp_assert(dec.startPc(g_first) == B.nextPc,
                    "block index out of sync");

        ++stats.fetchRequests;
        const uint64_t ev0 = mispredictEvents(stats);
        const uint64_t insts0 = stats.instructions;
        trainer.tick();
        for (std::size_t j = 0; j < g_count; ++j) {
            countBlockStats(stats, dec, g_first + j);
            touchICache(contents, cache, dec.block(g_first + j),
                        stats, cfg_.icacheMissPenalty);
        }

        // Bank conflicts: each later block colliding with any earlier
        // block in the same cycle reads one cycle later.
        for (std::size_t j = 1; j < g_count; ++j) {
            bool conflict = false;
            for (std::size_t i = 0; i < j && !conflict; ++i)
                conflict = cache.bankConflict(
                    dec.startPc(g_first + i), dec.numInsts(g_first + i),
                    dec.startPc(g_first + j),
                    dec.numInsts(g_first + j));
            if (conflict) {
                stats.charge(PenaltyKind::BankConflict,
                             penalties.cycles(
                                 PenaltyKind::BankConflict,
                                 static_cast<unsigned>(j)));
            }
        }

        // Slot 0: B's own exit via BIT+PHT, predicting the group's
        // first block.
        std::size_t idx1 = pht.index(ghr, B.startPc);
        bool squashed = false;
        {
            unsigned cap = dec.windowLen(bi);
            const BitCode *codes = dec.windowCodes(bi, cfg_.nearBlock);
            ExitPrediction pred = predictExit(codes, cap, B.startPc,
                                              cap, pht, idx1);
            if (!bit.perfect()) {
                bitWindowCodesInto(bit, image, B.startPc, cap,
                                   line_size, cfg_.nearBlock, stale);
                ExitPrediction pred_stale = predictExit(
                    stale, B.startPc, cap, pht, idx1);
                if (pred_stale.selector(line_size) !=
                    pred.selector(line_size)) {
                    chargeMispredict(
                        stats, attr, B.startPc, 0,
                        PenaltyKind::BitMispredict,
                        penalties.cycles(PenaltyKind::BitMispredict,
                                         0));
                }
                refreshBitEntries(bit, image, B.startPc, cap,
                                  line_size, cfg_.nearBlock);
            }
            ResolvedTarget r =
                resolveAddress(pred, B.startPc, cap, image, ras, *ta,
                               B.startPc, 0, line_size);
            PredictOutcome out = compareWithActual(pred, r, B);
            if (!out.correct) {
                unsigned cycles = penalties.cycles(out.kind, 0);
                if (out.refetchExtra)
                    cycles += penalties.refetchExtra();
                chargeMispredict(stats, attr, B.startPc, 0, out.kind,
                                 cycles);
                if (out.kind == PenaltyKind::CondMispredict)
                    ++stats.condDirectionWrong;
                squashed = true;
            }
            trainer.train(idx1, B);
            ghr.shiftInBlock(dec.condOutcomes(bi), dec.numConds(bi));
            applyRasOp(ras, B);
            updateTargetArray(*ta, B.startPc, 0, B, line_size,
                              cfg_.nearBlock);
        }

        // Slots k = 1..: select-table predictions of the group's
        // (k-1)th block's exit (the kth block's address), all indexed
        // by idx1.
        for (std::size_t k = 1; k < g_count; ++k) {
            const std::size_t pi = g_first + k - 1;
            const FetchBlock prev = dec.block(pi);
            unsigned cap = dec.windowLen(pi);
            std::size_t idxk = pht.index(ghr, prev.startPc);
            const BitCode *codes = dec.windowCodes(pi, cfg_.nearBlock);
            ExitPrediction pred = predictExit(codes, cap, prev.startPc,
                                              cap, pht, idxk);
            Selector sel_true = pred.selector(line_size);
            GhrInfo ghr_true = pred.ghrInfo();
            unsigned tab = st.tableOf(prev.startPc);
            unsigned slot = static_cast<unsigned>(k - 1);
            const SelectEntry &e = st.read(tab, idx1, slot);

            if (!squashed) {
                if (e.sel != sel_true) {
                    chargeMispredict(
                        stats, attr, prev.startPc,
                        static_cast<unsigned>(k),
                        PenaltyKind::Misselect,
                        penalties.cycles(PenaltyKind::Misselect,
                                         static_cast<unsigned>(k)));
                } else if (e.ghr != ghr_true) {
                    chargeMispredict(
                        stats, attr, prev.startPc,
                        static_cast<unsigned>(k),
                        PenaltyKind::GhrMispredict,
                        penalties.cycles(PenaltyKind::GhrMispredict,
                                         static_cast<unsigned>(k)));
                }
                ResolvedTarget r = resolveAddress(
                    pred, prev.startPc, cap, image, ras, *ta,
                    B.startPc, static_cast<unsigned>(k), line_size);
                PredictOutcome out = compareWithActual(pred, r, prev);
                if (!out.correct) {
                    unsigned cycles = penalties.cycles(
                        out.kind, static_cast<unsigned>(k));
                    if (out.refetchExtra)
                        cycles += penalties.refetchExtra();
                    chargeMispredict(stats, attr, prev.startPc,
                                     static_cast<unsigned>(k),
                                     out.kind, cycles);
                    if (out.kind == PenaltyKind::CondMispredict)
                        ++stats.condDirectionWrong;
                    squashed = true;
                }
            }
            st.write(tab, idx1, slot,
                     { sel_true, ghr_true,
                       static_cast<uint8_t>(prev.nextPc % line_size),
                       true });
            updateTargetArray(*ta, B.startPc,
                              static_cast<unsigned>(k), prev,
                              line_size, cfg_.nearBlock);

            trainer.train(idxk, prev);
            ghr.shiftInBlock(dec.condOutcomes(pi), dec.numConds(pi));
            applyRasOp(ras, prev);
        }

        bw.endRequest(stats.instructions - insts0, g_count,
                      mispredictEvents(stats) != ev0);

        if (g_count < n)
            break;      // block index exhausted mid-group
        bi = g_first + g_count - 1;
        B = dec.block(bi);
    }

    stats.rasOverflows = ras.overflows();
    pht.obsFlush();
    bit.obsFlush();
    ras.obsFlush();
    st.obsFlush();
    attr.flush();
    bw.flush();
    obs::flushCounter("engine.multi.runs", 1);
    return stats;
}

} // namespace mbbp

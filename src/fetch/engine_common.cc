#include "fetch/engine_common.hh"

#include <limits>

#include "util/logging.hh"

namespace mbbp
{

ResolvedTarget
resolveAddress(const ExitPrediction &pred, Addr start,
               unsigned capacity, const StaticImage &image,
               const ReturnAddressStack &ras, const TargetArray &ta,
               Addr index_addr, unsigned which, unsigned line_size)
{
    switch (pred.src) {
      case SelSrc::FallThrough:
        return { start + capacity, true };
      case SelSrc::Ras:
        return { ras.top(), true };
      case SelSrc::Target: {
        TargetPrediction tp =
            ta.predict(index_addr, static_cast<unsigned>(
                           pred.pc % line_size), which);
        return { tp.hit ? tp.target : 0, tp.hit };
      }
      case SelSrc::LinePrev:
      case SelSrc::LineSame:
      case SelSrc::LineNext:
      case SelSrc::LineNext2: {
        // The line index comes from the BIT code, the offset from the
        // branch's own immediate: exact once the types are right.
        StaticInfo info = image.lookup(pred.pc);
        return { info.target, true };
      }
      default:
        mbbp_panic("bad selector source");
    }
}

PredictOutcome
compareWithActual(const ExitPrediction &pred,
                  const ResolvedTarget &resolved,
                  const FetchBlock &actual)
{
    constexpr unsigned no_exit = std::numeric_limits<unsigned>::max();
    unsigned actual_exit = actual.endsTaken()
        ? static_cast<unsigned>(actual.exitIdx) : no_exit;
    unsigned pred_exit = pred.found ? pred.offset : no_exit;

    if (pred_exit == no_exit && actual_exit == no_exit)
        return { true, PenaltyKind::CondMispredict, false };

    if (pred_exit < actual_exit) {
        // Predicted an exit where execution continued: a conditional
        // mispredicted taken. The remaining block instructions must
        // be re-fetched (the Table 3 footnote).
        return { false, PenaltyKind::CondMispredict, true };
    }
    if (pred_exit > actual_exit) {
        // Scanned past the actual taken exit: with true types the
        // only way is a conditional mispredicted not-taken.
        mbbp_assert(isCondBranch(actual.exitInst()->cls),
                    "prediction scanned past an unconditional exit");
        return { false, PenaltyKind::CondMispredict, false };
    }

    // Same exit position: the direction was right; check the target.
    const DynInst &e = *actual.exitInst();
    if (resolved.addr == actual.nextPc)
        return { true, PenaltyKind::CondMispredict, false };

    if (isReturn(e.cls))
        return { false, PenaltyKind::ReturnMispredict, false };
    if (isIndirect(e.cls))
        return { false, PenaltyKind::MisfetchIndirect, false };
    return { false, PenaltyKind::MisfetchImmediate, false };
}

void
trainBlockPht(BlockedPHT &pht, std::size_t idx, const FetchBlock &blk)
{
    for (const auto &inst : blk)
        if (isCondBranch(inst.cls))
            pht.updateAt(idx, inst.pc, inst.taken);
}

void
applyRasOp(ReturnAddressStack &ras, const FetchBlock &blk)
{
    const DynInst *e = blk.exitInst();
    if (!e)
        return;
    if (isCall(e->cls))
        ras.push(e->pc + 1);
    else if (isReturn(e->cls))
        ras.pop();
}

void
updateTargetArray(TargetArray &ta, Addr index_addr, unsigned which,
                  const FetchBlock &blk, unsigned line_size,
                  bool near_block)
{
    const DynInst *e = blk.exitInst();
    if (!e || isReturn(e->cls))
        return;
    if (near_block && isCondBranch(e->cls)) {
        BitCode c = computeBitCode(e->cls, e->pc, e->target, line_size,
                                   true);
        if (bitCodeIsNear(c))
            return;     // near targets are computed, never stored
    }
    ta.update(index_addr, static_cast<unsigned>(e->pc % line_size),
              which, e->target, isCall(e->cls));
}

void
touchICache(ICacheContents &contents, const ICacheModel &cache,
            const FetchBlock &blk, FetchStats &stats,
            unsigned miss_penalty)
{
    // Blocks touch a contiguous line range; iterate it directly
    // instead of materializing a per-block vector.
    unsigned len = blk.size() ? blk.size() : 1;
    Addr first = cache.lineOf(blk.startPc);
    Addr last = cache.lineOf(blk.startPc + len - 1);
    for (Addr line = first; line <= last; ++line) {
        ++stats.icacheAccesses;
        if (!contents.access(line)) {
            ++stats.icacheMisses;
            stats.icacheMissCycles += miss_penalty;
        }
    }
}

PhtTrainer::PhtTrainer(BlockedPHT &pht, bool delayed,
                       unsigned depth_requests)
    : pht_(pht), delayed_(delayed), depth_(depth_requests)
{
}

void
PhtTrainer::train(std::size_t idx, const FetchBlock &blk)
{
    if (!delayed_) {
        trainBlockPht(pht_, idx, blk);
        return;
    }
    if (pending_.empty())
        pending_.emplace_back();
    std::vector<Update> &batch = pending_.back();
    for (const auto &inst : blk)
        if (isCondBranch(inst.cls))
            batch.push_back({ idx, inst.pc, inst.taken });
}

void
PhtTrainer::tick()
{
    if (!delayed_)
        return;
    pending_.emplace_back();
    while (pending_.size() > depth_) {
        apply(pending_.front());
        pending_.pop_front();
    }
}

void
PhtTrainer::flush()
{
    while (!pending_.empty()) {
        apply(pending_.front());
        pending_.pop_front();
    }
}

void
PhtTrainer::apply(const std::vector<Update> &batch)
{
    for (const Update &u : batch)
        pht_.updateAt(u.idx, u.pc, u.taken);
}

BbrInflight::BbrInflight(BbrPool &pool, unsigned depth)
    : pool_(pool), depth_(depth), slots_(depth + 2)
{
}

std::vector<std::size_t> &
BbrInflight::beginBlock()
{
    mbbp_assert(live_ < slots_.size(), "inflight ring overrun");
    std::vector<std::size_t> &batch =
        slots_[(head_ + live_) % slots_.size()];
    batch.clear();
    return batch;
}

void
BbrInflight::commit()
{
    ++live_;
}

void
BbrInflight::expire()
{
    while (live_ > depth_) {
        for (std::size_t id : slots_[head_])
            pool_.release(id);
        head_ = (head_ + 1) % slots_.size();
        --live_;
    }
}

void
countBlockStats(FetchStats &stats, const FetchBlock &blk,
                unsigned line_size)
{
    stats.instructions += blk.size();
    stats.blocksFetched += 1;
    for (const auto &inst : blk) {
        if (!isControl(inst.cls))
            continue;
        ++stats.branchesExecuted;
        if (isCondBranch(inst.cls)) {
            ++stats.condExecuted;
            BitCode c = computeBitCode(inst.cls, inst.pc, inst.target,
                                       line_size, true);
            if (bitCodeIsNear(c))
                ++stats.nearBlockConds;
        }
    }
}

void
countBlockStats(FetchStats &stats, const DecodedTrace &dec,
                std::size_t block)
{
    stats.instructions += dec.numInsts(block);
    stats.blocksFetched += 1;
    stats.branchesExecuted += dec.numBranches(block);
    stats.condExecuted += dec.numConds(block);
    stats.nearBlockConds += dec.numNearConds(block);
}

} // namespace mbbp

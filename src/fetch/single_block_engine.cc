#include "fetch/single_block_engine.hh"

#include <memory>
#include <vector>

#include "obs/obs.hh"
#include "predict/bbr.hh"
#include "predict/btb.hh"
#include "predict/nls.hh"
#include "util/logging.hh"

namespace mbbp
{

SingleBlockEngine::SingleBlockEngine(const FetchEngineConfig &cfg)
    : cfg_(cfg)
{
    mbbp_assert(!cfg_.doubleSelect,
                "double selection needs the dual-block engine");
}

FetchStats
SingleBlockEngine::run(const InMemoryTrace &trace)
{
    return run(DecodedTrace::build(trace, cfg_.icache));
}

FetchStats
SingleBlockEngine::run(const DecodedTrace &dec)
{
    FetchStats stats;
    mbbp_assert(dec.geometryCompatible(cfg_.icache),
                "decoded trace was cut for another geometry");

    const StaticImage &image = dec.image();
    ICacheModel cache(cfg_.icache);
    const unsigned line_size = cache.lineSize();

    BlockedPHT pht({ cfg_.historyBits, cfg_.icache.blockWidth, 2,
                     cfg_.numPhts });
    GlobalHistory ghr(cfg_.historyBits);
    BitTable bit(cfg_.bitEntries, line_size);
    ReturnAddressStack ras(cfg_.rasEntries);
    PenaltyModel penalties(false);

    std::unique_ptr<TargetArray> ta;
    if (cfg_.targetKind == TargetKind::Nls) {
        ta = std::make_unique<NlsTargetArray>(cfg_.targetEntries,
                                              line_size, false);
    } else {
        ta = std::make_unique<Btb>(cfg_.targetEntries, cfg_.btbAssoc,
                                   line_size);
    }

    // Recovery entries live across the four-cycle resolution window.
    BbrPool bbr(cfg_.bbrCapacity);
    BbrInflight bbr_inflight(bbr, 4);
    BitVector stale;        //!< scratch for finite-BIT codes

    ICacheContents contents(cfg_.icacheLines, cfg_.icacheAssoc);
    PhtTrainer trainer(pht, cfg_.delayedPhtUpdate);

    obs::AttributionSink attr;
    FetchBandwidth bw("engine.single");

    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return stats;

    for (std::size_t b = 0; b < nblocks; ++b) {
        const FetchBlock cur = dec.block(b);

        ++stats.fetchRequests;
        const uint64_t ev0 = mispredictEvents(stats);
        const uint64_t insts0 = stats.instructions;
        trainer.tick();
        countBlockStats(stats, dec, b);
        touchICache(contents, cache, cur, stats,
                    cfg_.icacheMissPenalty);

        const unsigned capacity = dec.windowLen(b);
        std::size_t idx = pht.index(ghr, cur.startPc);

        // Prediction with (possibly stale) BIT codes, then with the
        // decoded truth; a divergence is the one-cycle BIT penalty.
        const BitCode *true_codes =
            dec.windowCodes(b, cfg_.nearBlock);
        ExitPrediction pred = predictExit(true_codes, capacity,
                                          cur.startPc, capacity, pht,
                                          idx);
        if (!bit.perfect()) {
            bitWindowCodesInto(bit, image, cur.startPc, capacity,
                               line_size, cfg_.nearBlock, stale);
            ExitPrediction pred_stale = predictExit(stale, cur.startPc,
                                                    capacity, pht, idx);
            if (pred_stale.selector(line_size) !=
                pred.selector(line_size)) {
                chargeMispredict(stats, attr, cur.startPc, 0,
                                 PenaltyKind::BitMispredict,
                                 penalties.cycles(
                                     PenaltyKind::BitMispredict, 0));
            }
            refreshBitEntries(bit, image, cur.startPc, capacity,
                              line_size, cfg_.nearBlock);
        }

        ResolvedTarget resolved =
            resolveAddress(pred, cur.startPc, capacity, image, ras,
                           *ta, cur.startPc, 0, line_size);
        PredictOutcome out = compareWithActual(pred, resolved, cur);
        if (!out.correct) {
            unsigned cycles = penalties.cycles(out.kind, 0);
            if (out.refetchExtra)
                cycles += penalties.refetchExtra();
            chargeMispredict(stats, attr, cur.startPc, 0, out.kind,
                             cycles);
            if (out.kind == PenaltyKind::CondMispredict)
                ++stats.condDirectionWrong;
        }

        // Allocate recovery entries for the block's conditionals
        // before training, so the stored prediction matches what was
        // actually predicted (Table 4).
        {
            std::vector<std::size_t> &ids = bbr_inflight.beginBlock();
            for (const auto &inst : cur) {
                if (!isCondBranch(inst.cls))
                    continue;
                const SatCounter &ctr =
                    pht.counterAt(idx, pht.position(inst.pc));
                BbrEntry entry;
                entry.predictedTaken = ctr.predictTaken();
                entry.secondChance = ctr.secondChance();
                entry.phtIndex = static_cast<uint32_t>(idx);
                entry.correctedGhr = ghr.value();
                entry.alternateTarget = entry.predictedTaken
                    ? inst.pc + 1 : inst.target;
                entry.replacementSelector =
                    Selector{ SelSrc::Target,
                              static_cast<uint8_t>(inst.pc %
                                                   line_size) };
                ids.push_back(bbr.allocate(entry));
            }
            bbr_inflight.commit();
            bbr_inflight.expire();
        }

        // Train with the actual block.
        trainer.train(idx, cur);
        ghr.shiftInBlock(dec.condOutcomes(b), dec.numConds(b));
        updateTargetArray(*ta, cur.startPc, 0, cur, line_size,
                          cfg_.nearBlock);
        applyRasOp(ras, cur);

        if (b + 1 < nblocks) {
            mbbp_assert(dec.startPc(b + 1) == cur.nextPc,
                        "block index out of sync");
        }

        bw.endRequest(stats.instructions - insts0, 1,
                      mispredictEvents(stats) != ev0);
    }

    stats.rasOverflows = ras.overflows();
    stats.bbrPeak = bbr.peakInFlight();
    pht.obsFlush();
    bit.obsFlush();
    ras.obsFlush();
    attr.flush();
    bw.flush();
    obs::flushCounter("engine.single.runs", 1);
    return stats;
}

} // namespace mbbp

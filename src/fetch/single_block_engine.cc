#include "fetch/single_block_engine.hh"

#include <deque>
#include <memory>
#include <vector>

#include "predict/bbr.hh"
#include "predict/btb.hh"
#include "predict/nls.hh"
#include "util/logging.hh"

namespace mbbp
{

SingleBlockEngine::SingleBlockEngine(const FetchEngineConfig &cfg)
    : cfg_(cfg)
{
    mbbp_assert(!cfg_.doubleSelect,
                "double selection needs the dual-block engine");
}

FetchStats
SingleBlockEngine::run(const InMemoryTrace &trace)
{
    FetchStats stats;

    StaticImage image = StaticImage::fromTrace(trace);
    ICacheModel cache(cfg_.icache);
    const unsigned line_size = cache.lineSize();

    BlockedPHT pht({ cfg_.historyBits, cfg_.icache.blockWidth, 2,
                     cfg_.numPhts });
    GlobalHistory ghr(cfg_.historyBits);
    BitTable bit(cfg_.bitEntries, line_size);
    ReturnAddressStack ras(cfg_.rasEntries);
    PenaltyModel penalties(false);

    std::unique_ptr<TargetArray> ta;
    if (cfg_.targetKind == TargetKind::Nls) {
        ta = std::make_unique<NlsTargetArray>(cfg_.targetEntries,
                                              line_size, false);
    } else {
        ta = std::make_unique<Btb>(cfg_.targetEntries, cfg_.btbAssoc,
                                   line_size);
    }

    // Recovery entries live across the four-cycle resolution window.
    BbrPool bbr(cfg_.bbrCapacity);
    std::deque<std::vector<std::size_t>> bbr_inflight;

    ICacheContents contents(cfg_.icacheLines, cfg_.icacheAssoc);
    PhtTrainer trainer(pht, cfg_.delayedPhtUpdate);

    TraceCursor cursor(trace);
    BlockStream stream(cursor, cache);

    FetchBlock cur;
    if (!stream.next(cur))
        return stats;

    for (;;) {
        ++stats.fetchRequests;
        trainer.tick();
        countBlockStats(stats, cur, line_size);
        touchICache(contents, cache, cur, stats,
                    cfg_.icacheMissPenalty);

        unsigned capacity = cache.capacityAt(cur.startPc);
        std::size_t idx = pht.index(ghr, cur.startPc);

        // Prediction with (possibly stale) BIT codes, then with the
        // decoded truth; a divergence is the one-cycle BIT penalty.
        BitVector true_codes = trueWindowCodes(image, cur.startPc,
                                               capacity, line_size,
                                               cfg_.nearBlock);
        ExitPrediction pred = predictExit(true_codes, cur.startPc,
                                          capacity, pht, idx);
        if (!bit.perfect()) {
            BitVector stale = bitWindowCodes(bit, image, cur.startPc,
                                             capacity, line_size,
                                             cfg_.nearBlock);
            ExitPrediction pred_stale = predictExit(stale, cur.startPc,
                                                    capacity, pht, idx);
            if (pred_stale.selector(line_size) !=
                pred.selector(line_size)) {
                stats.charge(PenaltyKind::BitMispredict,
                             penalties.cycles(
                                 PenaltyKind::BitMispredict, 0));
            }
            refreshBitEntries(bit, image, cur.startPc, capacity,
                              line_size, cfg_.nearBlock);
        }

        ResolvedTarget resolved =
            resolveAddress(pred, cur.startPc, capacity, image, ras,
                           *ta, cur.startPc, 0, line_size);
        PredictOutcome out = compareWithActual(pred, resolved, cur);
        if (!out.correct) {
            unsigned cycles = penalties.cycles(out.kind, 0);
            if (out.refetchExtra)
                cycles += penalties.refetchExtra();
            stats.charge(out.kind, cycles);
            if (out.kind == PenaltyKind::CondMispredict)
                ++stats.condDirectionWrong;
        }

        // Allocate recovery entries for the block's conditionals
        // before training, so the stored prediction matches what was
        // actually predicted (Table 4).
        {
            std::vector<std::size_t> ids;
            for (const auto &inst : cur.insts) {
                if (!isCondBranch(inst.cls))
                    continue;
                const SatCounter &ctr =
                    pht.counterAt(idx, pht.position(inst.pc));
                BbrEntry entry;
                entry.predictedTaken = ctr.predictTaken();
                entry.secondChance = ctr.secondChance();
                entry.phtIndex = static_cast<uint32_t>(idx);
                entry.correctedGhr = ghr.value();
                entry.alternateTarget = entry.predictedTaken
                    ? inst.pc + 1 : inst.target;
                entry.replacementSelector =
                    Selector{ SelSrc::Target,
                              static_cast<uint8_t>(inst.pc %
                                                   line_size) };
                ids.push_back(bbr.allocate(entry));
            }
            bbr_inflight.push_back(std::move(ids));
            while (bbr_inflight.size() > 4) {
                for (std::size_t id : bbr_inflight.front())
                    bbr.release(id);
                bbr_inflight.pop_front();
            }
        }

        // Train with the actual block.
        trainer.train(idx, cur);
        ghr.shiftInBlock(cur.condOutcomes(), cur.numConds());
        updateTargetArray(*ta, cur.startPc, 0, cur, line_size,
                          cfg_.nearBlock);
        applyRasOp(ras, cur);

        FetchBlock next;
        if (!stream.next(next))
            break;
        mbbp_assert(next.startPc == cur.nextPc,
                    "block stream out of sync");
        cur = std::move(next);
    }

    stats.rasOverflows = ras.overflows();
    stats.bbrPeak = bbr.peakInFlight();
    return stats;
}

} // namespace mbbp

/**
 * @file
 * Shared per-block replay context for the config-batched sweep
 * kernel (src/sweep/batch_replay).
 *
 * When N predictor configurations replay the same DecodedTrace in
 * lockstep, everything that depends only on (trace, geometry) --
 * which window positions hold branches, the block's conditional
 * list, the exit classification, the touched line range, the RAS
 * operation -- is identical across all N lanes. A BatchBlockCtx
 * hoists those facts out of the lane loop: it is built once per
 * block per tile and then consumed by every lane.
 *
 * The ctx-based helpers below mirror the reference implementations
 * in fetch/engine_common.{hh,cc} and fetch/exit_predict.cc
 * *operation for operation*: each predictor structure sees the same
 * sequence of lookups and updates (including the stat-counter
 * side effects behind obsFlush), so a batched lane produces
 * field-exact FetchStats and identical obs/attribution output
 * versus a solo engine run. Keep them in sync -- the
 * batch_replay_test equivalence suite is the enforcement.
 */

#ifndef MBBP_FETCH_BATCH_ENGINE_STATE_HH
#define MBBP_FETCH_BATCH_ENGINE_STATE_HH

#include <limits>
#include <vector>

#include "fetch/engine_common.hh"
#include "fetch/exit_predict.hh"
#include "trace/decoded_trace.hh"

namespace mbbp
{

/** A non-NonBranch window position, precomputed per block. */
struct BatchWindowBranch
{
    unsigned offset = 0;    //!< instruction offset from block start
    Addr pc = 0;
    BitCode codeNear = BitCode::NonBranch;
    BitCode codePlain = BitCode::NonBranch;
    /** Static target, resolved at decode time; only filled for
     *  near-block codes (the one case resolveAddress reads the
     *  static image). */
    Addr staticTarget = 0;
};

/** One executed conditional branch, precomputed per block. */
struct BatchCondInfo
{
    Addr pc = 0;
    Addr target = 0;
    bool taken = false;
};

/**
 * Lane-independent facts about one decoded block. The vectors are
 * reused across build() calls, so a kernel that keeps a few ctx
 * instances alive does no steady-state allocation.
 */
struct BatchBlockCtx
{
    static constexpr unsigned noExit =
        std::numeric_limits<unsigned>::max();

    FetchBlock blk;
    unsigned capacity = 0;              //!< windowLen
    const BitCode *codesNear = nullptr; //!< whole-window, 3-bit
    const BitCode *codesPlain = nullptr;//!< whole-window, 2-bit
    uint64_t condMask = 0;
    unsigned numConds = 0;

    // O(1) per-block statistics (countBlockStats inputs).
    unsigned numInsts = 0;
    unsigned numBranches = 0;
    unsigned numNearConds = 0;

    std::vector<BatchWindowBranch> wbranches;
    std::vector<BatchCondInfo> conds;

    // Exit classification (compareWithActual / applyRasOp /
    // updateTargetArray inputs).
    bool endsTaken = false;
    unsigned actualExit = noExit;   //!< exitIdx, or noExit
    bool exitIsCond = false;
    bool exitIsReturn = false;
    bool exitIsIndirect = false;
    bool exitIsCall = false;
    bool exitNearCond = false;  //!< near-block code of a cond exit
    Addr exitPc = 0;
    Addr exitTarget = 0;

    RasOp rasOp = RasOp::None;
    Addr rasPush = 0;           //!< exitPc + 1 when rasOp == Push

    // Contiguous i-cache line range the block touches.
    Addr firstLine = 0;
    Addr lastLine = 0;
    Addr lineAddr = 0;          //!< startPc / lineSize

    void build(const DecodedTrace &dec, std::size_t b,
               unsigned line_size)
    {
        blk = dec.block(b);
        capacity = dec.windowLen(b);
        codesNear = dec.windowCodes(b, true);
        codesPlain = dec.windowCodes(b, false);
        condMask = dec.condOutcomes(b);
        numConds = dec.numConds(b);
        numInsts = dec.numInsts(b);
        numBranches = dec.numBranches(b);
        numNearConds = dec.numNearConds(b);

        const StaticImage &image = dec.image();
        wbranches.clear();
        for (unsigned i = 0; i < capacity; ++i) {
            BitCode cn = codesNear[i];
            if (cn == BitCode::NonBranch)
                continue;
            BatchWindowBranch wb;
            wb.offset = i;
            wb.pc = blk.startPc + i;
            wb.codeNear = cn;
            wb.codePlain = codesPlain[i];
            wb.staticTarget =
                bitCodeIsNear(cn) ? image.lookup(wb.pc).target : 0;
            wbranches.push_back(wb);
        }

        conds.clear();
        for (const auto &inst : blk)
            if (isCondBranch(inst.cls))
                conds.push_back({ inst.pc, inst.target, inst.taken });

        endsTaken = blk.endsTaken();
        actualExit = endsTaken
            ? static_cast<unsigned>(blk.exitIdx) : noExit;
        exitIsCond = exitIsReturn = exitIsIndirect = exitIsCall =
            exitNearCond = false;
        exitPc = exitTarget = 0;
        if (const DynInst *e = blk.exitInst()) {
            exitIsCond = isCondBranch(e->cls);
            exitIsReturn = isReturn(e->cls);
            exitIsIndirect = isIndirect(e->cls);
            exitIsCall = isCall(e->cls);
            exitPc = e->pc;
            exitTarget = e->target;
            if (exitIsCond)
                exitNearCond = bitCodeIsNear(computeBitCode(
                    e->cls, e->pc, e->target, line_size, true));
        }
        rasOp = dec.rasOp(b);
        rasPush = exitPc + 1;

        unsigned len = blk.size() ? blk.size() : 1;
        firstLine = blk.startPc / line_size;
        lastLine = (blk.startPc + len - 1) / line_size;
        lineAddr = blk.startPc / line_size;
    }
};

/** predictExit result plus the precomputed near-block target. */
struct BatchPrediction
{
    ExitPrediction pred;
    Addr staticTarget = 0;  //!< valid when pred.src is a Line* source
};

/**
 * predictExit over the precomputed branch list: identical scan
 * order and PHT lookups (NonBranch positions have no side effects
 * in the reference loop, so skipping them is free).
 */
inline BatchPrediction
batchPredictExit(const BatchBlockCtx &ctx, bool near_block,
                 const BlockedPHT &pht, std::size_t pht_idx)
{
    BatchPrediction bp;
    ExitPrediction &p = bp.pred;
    for (const BatchWindowBranch &wb : ctx.wbranches) {
        BitCode c = near_block ? wb.codeNear : wb.codePlain;
        switch (c) {
          case BitCode::Return:
            p.found = true;
            p.src = SelSrc::Ras;
            break;
          case BitCode::OtherBranch:
            p.found = true;
            p.src = SelSrc::Target;
            break;
          default:
            if (!pht.predictAt(pht_idx, wb.pc)) {
                if (p.numNotTaken < 255)
                    ++p.numNotTaken;
                continue;
            }
            p.found = true;
            if (c == BitCode::CondLong) {
                p.src = SelSrc::Target;
            } else {
                switch (bitCodeNearDelta(c)) {
                  case -1: p.src = SelSrc::LinePrev; break;
                  case 0: p.src = SelSrc::LineSame; break;
                  case 1: p.src = SelSrc::LineNext; break;
                  default: p.src = SelSrc::LineNext2; break;
                }
            }
            break;
        }
        p.offset = wb.offset;
        p.pc = wb.pc;
        bp.staticTarget = wb.staticTarget;
        return bp;
    }
    return bp;
}

/**
 * resolveAddress against ctx: the Line* sources read the target
 * precomputed at ctx build instead of the StaticImage, every other
 * source performs the reference's exact probe (RAS peeks and
 * target-array reads have stat side effects, so they must happen
 * if and only if the reference performs them).
 */
inline ResolvedTarget
batchResolveAddress(const BatchPrediction &bp,
                    const BatchBlockCtx &ctx,
                    const ReturnAddressStack &ras,
                    const TargetArray &ta, Addr index_addr,
                    unsigned which, unsigned line_size)
{
    switch (bp.pred.src) {
      case SelSrc::FallThrough:
        return { ctx.blk.startPc + ctx.capacity, true };
      case SelSrc::Ras:
        return { ras.top(), true };
      case SelSrc::Target: {
        TargetPrediction tp =
            ta.predict(index_addr, static_cast<unsigned>(
                           bp.pred.pc % line_size), which);
        return { tp.hit ? tp.target : 0, tp.hit };
      }
      default:
        return { bp.staticTarget, true };
    }
}

/** compareWithActual against the precomputed exit facts. */
inline PredictOutcome
batchCompareWithActual(const ExitPrediction &pred,
                       const ResolvedTarget &resolved,
                       const BatchBlockCtx &ctx)
{
    unsigned pred_exit =
        pred.found ? pred.offset : BatchBlockCtx::noExit;

    if (pred_exit == BatchBlockCtx::noExit &&
        ctx.actualExit == BatchBlockCtx::noExit)
        return { true, PenaltyKind::CondMispredict, false };

    if (pred_exit < ctx.actualExit)
        return { false, PenaltyKind::CondMispredict, true };
    if (pred_exit > ctx.actualExit) {
        mbbp_assert(ctx.exitIsCond,
                    "prediction scanned past an unconditional exit");
        return { false, PenaltyKind::CondMispredict, false };
    }

    if (resolved.addr == ctx.blk.nextPc)
        return { true, PenaltyKind::CondMispredict, false };
    if (ctx.exitIsReturn)
        return { false, PenaltyKind::ReturnMispredict, false };
    if (ctx.exitIsIndirect)
        return { false, PenaltyKind::MisfetchIndirect, false };
    return { false, PenaltyKind::MisfetchImmediate, false };
}

/** trainBlockPht over the precomputed conditional list. */
inline void
batchTrainPht(BlockedPHT &pht, std::size_t idx,
              const BatchBlockCtx &ctx)
{
    for (const BatchCondInfo &c : ctx.conds)
        pht.updateAt(idx, c.pc, c.taken);
}

/** applyRasOp from the decoded RAS operation. */
inline void
batchApplyRasOp(ReturnAddressStack &ras, const BatchBlockCtx &ctx)
{
    switch (ctx.rasOp) {
      case RasOp::Push:
        ras.push(ctx.rasPush);
        break;
      case RasOp::Pop:
        ras.pop();
        break;
      case RasOp::None:
        break;
    }
}

/** updateTargetArray from the precomputed exit facts. */
inline void
batchUpdateTargetArray(TargetArray &ta, Addr index_addr,
                       unsigned which, const BatchBlockCtx &ctx,
                       unsigned line_size, bool near_block)
{
    if (!ctx.endsTaken || ctx.exitIsReturn)
        return;
    if (near_block && ctx.exitIsCond && ctx.exitNearCond)
        return;     // near targets are computed, never stored
    ta.update(index_addr,
              static_cast<unsigned>(ctx.exitPc % line_size), which,
              ctx.exitTarget, ctx.exitIsCall);
}

/**
 * touchICache over the precomputed line range. Perfect contents
 * cannot miss, so the access loop collapses to one add (hits are
 * not observable in FetchStats).
 */
inline void
batchTouchICache(ICacheContents &contents, const BatchBlockCtx &ctx,
                 FetchStats &stats, unsigned miss_penalty)
{
    if (contents.perfect()) {
        stats.icacheAccesses += ctx.lastLine - ctx.firstLine + 1;
        return;
    }
    for (Addr line = ctx.firstLine; line <= ctx.lastLine; ++line) {
        ++stats.icacheAccesses;
        if (!contents.access(line)) {
            ++stats.icacheMisses;
            stats.icacheMissCycles += miss_penalty;
        }
    }
}

/** countBlockStats from the precomputed per-block counts. */
inline void
batchCountBlockStats(FetchStats &stats, const BatchBlockCtx &ctx)
{
    stats.instructions += ctx.numInsts;
    stats.blocksFetched += 1;
    stats.branchesExecuted += ctx.numBranches;
    stats.condExecuted += ctx.numConds;
    stats.nearBlockConds += ctx.numNearConds;
}

/**
 * trueWindowCodes for one whole aligned i-cache line, written into a
 * caller-owned byte buffer (one byte per BitCode). This is the
 * refresh payload a finite BIT installs per touched line
 * (refreshBitEntries); the SoA kernels compute it once per near-flag
 * variant and scatter it into every finite-BIT lane's arena.
 */
inline void
batchTrueLineCodes(const StaticImage &image, Addr line_addr,
                   unsigned line_size, bool near_block, uint8_t *out)
{
    const Addr base = line_addr * line_size;
    for (unsigned i = 0; i < line_size; ++i) {
        StaticInfo info = image.lookup(base + i);
        out[i] = static_cast<uint8_t>(
            computeBitCode(info.cls, base + i, info.target,
                           line_size, near_block));
    }
}

/**
 * ICacheModel::bankConflict over two precomputed line ranges
 * (duplicate lines are free: one read serves both).
 */
inline bool
batchBankConflict(const BatchBlockCtx &a, const BatchBlockCtx &b,
                  unsigned num_banks)
{
    for (Addr la = a.firstLine; la <= a.lastLine; ++la)
        for (Addr lb = b.firstLine; lb <= b.lastLine; ++lb) {
            if (la == lb)
                continue;
            if (la % num_banks == lb % num_banks)
                return true;
        }
    return false;
}

} // namespace mbbp

#endif // MBBP_FETCH_BATCH_ENGINE_STATE_HH

/**
 * @file
 * Fetch-engine metrics, exactly the two the paper evaluates with
 * (Section 4, following Yeh & Patt):
 *
 *   BEP    branch execution penalty = penalty cycles per executed
 *          branch (all control-transfer instructions);
 *   IPC_f  effective instruction fetch rate = instructions per fetch
 *          cycle, where fetch cycles = fetch requests + penalty
 *          cycles (bank conflicts included).
 *
 * Plus IPB (instructions per block), the Table 6 statistic, and a
 * per-category penalty breakdown for Figure 9.
 */

#ifndef MBBP_FETCH_FETCH_STATS_HH
#define MBBP_FETCH_FETCH_STATS_HH

#include <array>
#include <cstdint>

#include "fetch/penalty_model.hh"

namespace mbbp
{

/** Aggregated results of one fetch-engine run. */
struct FetchStats
{
    uint64_t instructions = 0;
    uint64_t fetchRequests = 0;     //!< cycles spent issuing fetches
    uint64_t blocksFetched = 0;
    uint64_t branchesExecuted = 0;  //!< control instructions executed
    uint64_t condExecuted = 0;
    uint64_t condDirectionWrong = 0;    //!< charged direction errors
    uint64_t nearBlockConds = 0;    //!< executed conds w/ near target
    uint64_t rasOverflows = 0;
    uint64_t bbrPeak = 0;           //!< peak recovery entries in use

    // Finite i-cache contents (0 everywhere when perfect, the
    // paper's default). Miss stalls are kept out of the penalty
    // arrays so BEP keeps its branch-only meaning.
    uint64_t icacheAccesses = 0;
    uint64_t icacheMisses = 0;
    uint64_t icacheMissCycles = 0;

    std::array<uint64_t, numPenaltyKinds> penaltyCycles{};
    std::array<uint64_t, numPenaltyKinds> penaltyEvents{};

    /** Record one penalty occurrence. */
    void charge(PenaltyKind kind, unsigned cycles);

    uint64_t totalPenaltyCycles() const;
    uint64_t fetchCycles() const;

    /** Penalty cycles per executed branch. */
    double bep() const;

    /** BEP contribution of one category (Figure 9 stack segments). */
    double bepOf(PenaltyKind kind) const;

    /** Effective fetch rate: instructions / fetch cycles. */
    double ipcF() const;

    /** Instructions per fetched block. */
    double ipb() const;

    /** Fraction of executed conditionals with near-block targets. */
    double nearBlockFraction() const;

    /** Merge another run (suite averaging by totals). */
    void accumulate(const FetchStats &other);

    /** Field-exact comparison (replay-equivalence tests). */
    bool operator==(const FetchStats &other) const = default;
};

} // namespace mbbp

#endif // MBBP_FETCH_FETCH_STATS_HH

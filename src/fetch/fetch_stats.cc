#include "fetch/fetch_stats.hh"

#include <algorithm>

#include "util/stats.hh"

namespace mbbp
{

void
FetchStats::charge(PenaltyKind kind, unsigned cycles)
{
    auto i = static_cast<std::size_t>(kind);
    penaltyCycles[i] += cycles;
    penaltyEvents[i] += 1;
}

uint64_t
FetchStats::totalPenaltyCycles() const
{
    uint64_t total = 0;
    for (uint64_t c : penaltyCycles)
        total += c;
    return total;
}

uint64_t
FetchStats::fetchCycles() const
{
    return fetchRequests + totalPenaltyCycles() + icacheMissCycles;
}

double
FetchStats::bep() const
{
    return ratio(static_cast<double>(totalPenaltyCycles()),
                 static_cast<double>(branchesExecuted));
}

double
FetchStats::bepOf(PenaltyKind kind) const
{
    auto i = static_cast<std::size_t>(kind);
    return ratio(static_cast<double>(penaltyCycles[i]),
                 static_cast<double>(branchesExecuted));
}

double
FetchStats::ipcF() const
{
    return ratio(static_cast<double>(instructions),
                 static_cast<double>(fetchCycles()));
}

double
FetchStats::ipb() const
{
    return ratio(static_cast<double>(instructions),
                 static_cast<double>(blocksFetched));
}

double
FetchStats::nearBlockFraction() const
{
    return ratio(static_cast<double>(nearBlockConds),
                 static_cast<double>(condExecuted));
}

void
FetchStats::accumulate(const FetchStats &other)
{
    instructions += other.instructions;
    fetchRequests += other.fetchRequests;
    blocksFetched += other.blocksFetched;
    branchesExecuted += other.branchesExecuted;
    condExecuted += other.condExecuted;
    condDirectionWrong += other.condDirectionWrong;
    nearBlockConds += other.nearBlockConds;
    rasOverflows += other.rasOverflows;
    bbrPeak = std::max(bbrPeak, other.bbrPeak);
    icacheAccesses += other.icacheAccesses;
    icacheMisses += other.icacheMisses;
    icacheMissCycles += other.icacheMissCycles;
    for (std::size_t i = 0; i < numPenaltyKinds; ++i) {
        penaltyCycles[i] += other.penaltyCycles[i];
        penaltyEvents[i] += other.penaltyEvents[i];
    }
}

} // namespace mbbp

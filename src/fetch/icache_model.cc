#include "fetch/icache_model.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

const char *
cacheTypeName(CacheType t)
{
    switch (t) {
      case CacheType::Normal: return "normal";
      case CacheType::Extended: return "extend";
      case CacheType::SelfAligned: return "align";
      default: return "?";
    }
}

ICacheConfig
ICacheConfig::normal(unsigned b)
{
    return { CacheType::Normal, b, b, 8 };
}

ICacheConfig
ICacheConfig::extended(unsigned b)
{
    return { CacheType::Extended, b, 2 * b, 8 };
}

ICacheConfig
ICacheConfig::selfAligned(unsigned b)
{
    return { CacheType::SelfAligned, b, b, 16 };
}

ICacheContents::ICacheContents(std::size_t num_lines, unsigned assoc)
{
    if (num_lines == 0)
        return;     // perfect contents
    mbbp_assert(assoc >= 1 && num_lines % assoc == 0,
                "lines must be a multiple of the associativity");
    assoc_ = assoc;
    numSets_ = num_lines / assoc;
    mbbp_assert(isPowerOf2(numSets_),
                "i-cache set count must be a power of two");
    ways_.resize(num_lines);
}

bool
ICacheContents::access(Addr line)
{
    if (perfect()) {
        ++hits_;
        return true;
    }
    std::size_t set = line & (numSets_ - 1);
    Addr tag = line / numSets_;

    int victim = 0;
    uint64_t oldest = ~uint64_t{0};
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways_[set * assoc_ + w];
        if (way.valid && way.tag == tag) {
            way.lastUse = ++clock_;
            ++hits_;
            return true;
        }
        uint64_t age = way.valid ? way.lastUse : 0;
        if (age < oldest) {
            oldest = age;
            victim = static_cast<int>(w);
        }
    }
    Way &way = ways_[set * assoc_ + victim];
    way.tag = tag;
    way.valid = true;
    way.lastUse = ++clock_;
    ++misses_;
    return false;
}

ICacheModel::ICacheModel(const ICacheConfig &cfg)
    : cfg_(cfg)
{
    mbbp_assert(isPowerOf2(cfg_.blockWidth) && isPowerOf2(cfg_.lineSize),
                "block width and line size must be powers of two");
    mbbp_assert(cfg_.lineSize >= cfg_.blockWidth ||
                cfg_.type == CacheType::SelfAligned,
                "line must hold at least one block");
    mbbp_assert(cfg_.numBanks >= 1, "need at least one bank");
}

unsigned
ICacheModel::capacityAt(Addr pc) const
{
    unsigned offset = static_cast<unsigned>(pc % cfg_.lineSize);
    switch (cfg_.type) {
      case CacheType::Normal:
      case CacheType::Extended:
        return std::min(cfg_.blockWidth, cfg_.lineSize - offset);
      case CacheType::SelfAligned:
        return cfg_.blockWidth;    // two lines combine
      default:
        mbbp_panic("bad cache type");
    }
}

std::vector<Addr>
ICacheModel::linesTouched(Addr pc, unsigned len) const
{
    if (len == 0)
        len = 1;
    Addr first = lineOf(pc);
    Addr last = lineOf(pc + len - 1);
    std::vector<Addr> lines;
    for (Addr l = first; l <= last; ++l)
        lines.push_back(l);
    return lines;
}

bool
ICacheModel::bankConflict(Addr pc_a, unsigned len_a, Addr pc_b,
                          unsigned len_b) const
{
    auto a = linesTouched(pc_a, len_a);
    auto b = linesTouched(pc_b, len_b);
    for (Addr la : a) {
        for (Addr lb : b) {
            if (la == lb)
                continue;   // the same line is one read
            if (bankOf(la) == bankOf(lb))
                return true;
        }
    }
    return false;
}

} // namespace mbbp

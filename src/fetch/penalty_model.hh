/**
 * @file
 * The misprediction penalty model of the paper's Table 3, assuming a
 * four-cycle branch resolution after fetch.
 *
 *   Misprediction           Single Select   Double Select
 *                           blk1    blk2    blk1    blk2
 *   Conditional branch*      5       5       5       5
 *   Return                   4       5       4       5
 *   Misfetch indirect        4       5       4       5
 *   Misfetch immediate       1       2       1       2
 *   Misselect                n/a     1       1       2
 *   GHR                      n/a     1       1       2
 *   BIT                      1       1       n/a     n/a
 *   I-cache bank conflict    0       1       0       1
 *
 *   * plus one cycle if instructions remain in the block and must be
 *     re-fetched (a branch mispredicted taken).
 */

#ifndef MBBP_FETCH_PENALTY_MODEL_HH
#define MBBP_FETCH_PENALTY_MODEL_HH

#include <cstdint>

namespace mbbp
{

/** Categories of fetch mispredictions (Table 3 rows / Figure 9). */
enum class PenaltyKind : uint8_t
{
    CondMispredict = 0,
    ReturnMispredict,
    MisfetchIndirect,
    MisfetchImmediate,
    Misselect,
    GhrMispredict,
    BitMispredict,
    BankConflict,
    NumKinds
};

constexpr unsigned numPenaltyKinds =
    static_cast<unsigned>(PenaltyKind::NumKinds);

const char *penaltyKindName(PenaltyKind k);

/** Table 3, parameterized by the selection scheme. */
class PenaltyModel
{
  public:
    explicit PenaltyModel(bool double_select)
        : doubleSelect_(double_select)
    {
    }

    /**
     * Penalty cycles for a misprediction of @p kind detected on block
     * slot @p slot (0 = first block, 1 = second block of the pair; a
     * single-block engine always uses slot 0). Slots beyond 1 follow
     * the natural extrapolation of Table 3 -- each deeper slot is
     * verified one stage later, adding one cycle to every detection-
     * latency-based penalty -- supporting the Section 5 extension to
     * more than two blocks per cycle.
     */
    unsigned cycles(PenaltyKind kind, unsigned slot) const;

    /** The Table 3 footnote: re-fetch of remaining instructions. */
    unsigned refetchExtra() const { return 1; }

    bool doubleSelect() const { return doubleSelect_; }

  private:
    bool doubleSelect_;
};

} // namespace mbbp

#endif // MBBP_FETCH_PENALTY_MODEL_HH

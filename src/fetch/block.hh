/**
 * @file
 * Fetch-block segmentation: grouping the dynamic instruction stream
 * into the paper's fetch blocks -- "a group of sequential instructions
 * up to a predefined limit b, or up to the end of a line", ended early
 * by the first taken control transfer. Not-taken conditional branches
 * stay inside a block, which is exactly why multiple branch prediction
 * is needed.
 *
 * FetchBlock is a *non-owning view*: it points into instruction
 * storage held elsewhere -- the shared flat array of a DecodedTrace
 * replay artifact, or an OwnedBlock's vector. Engines pass these
 * views around with no per-block allocation.
 */

#ifndef MBBP_FETCH_BLOCK_HH
#define MBBP_FETCH_BLOCK_HH

#include <cstdint>
#include <vector>

#include "fetch/icache_model.hh"
#include "trace/trace.hh"

namespace mbbp
{

/** One dynamic fetch block: a borrowed span of the dynamic stream. */
struct FetchBlock
{
    Addr startPc = 0;
    const DynInst *data = nullptr;  //!< borrowed instruction storage
    unsigned count = 0;
    int exitIdx = -1;       //!< index of the taken transfer, or -1
    Addr nextPc = 0;        //!< actual start of the following block

    unsigned size() const { return count; }

    const DynInst *begin() const { return data; }
    const DynInst *end() const { return data + count; }
    const DynInst &operator[](unsigned i) const { return data[i]; }

    bool endsTaken() const { return exitIdx >= 0; }

    /** The taken control transfer that ends the block (if any). */
    const DynInst *exitInst() const
    {
        return endsTaken() ? data + exitIdx : nullptr;
    }

    /** Conditional branches executed in the block. */
    unsigned numConds() const;

    /** Not-taken conditional branches (GhrInfo numerator). */
    unsigned numNotTakenConds() const;

    /** Bit i = outcome of the i-th executed conditional branch. */
    uint64_t condOutcomes() const;
};

/**
 * A fetch block that owns its instruction storage. The building form
 * used by BlockStream, tests, and tools; view() borrows it as a
 * FetchBlock for the engine-facing helpers.
 */
struct OwnedBlock
{
    Addr startPc = 0;
    std::vector<DynInst> insts;
    int exitIdx = -1;
    Addr nextPc = 0;

    unsigned size() const
    {
        return static_cast<unsigned>(insts.size());
    }

    /** Borrow as a FetchBlock (valid while *this is unchanged). */
    FetchBlock view() const
    {
        return { startPc, insts.data(),
                 static_cast<unsigned>(insts.size()), exitIdx,
                 nextPc };
    }

    bool endsTaken() const { return exitIdx >= 0; }

    /** The taken control transfer that ends the block (if any). */
    const DynInst *exitInst() const
    {
        return endsTaken() ? insts.data() + exitIdx : nullptr;
    }

    unsigned numConds() const { return view().numConds(); }
    unsigned numNotTakenConds() const
    {
        return view().numNotTakenConds();
    }
    uint64_t condOutcomes() const { return view().condOutcomes(); }
};

/** Segments a trace into consecutive fetch blocks. */
class BlockStream
{
  public:
    /**
     * @param trace Source of the dynamic stream (reset by caller).
     * @param cache Geometry that bounds block capacity.
     */
    BlockStream(TraceSource &trace, const ICacheModel &cache);

    /**
     * Produce the next *complete* block (one whose successor address
     * is known). Returns false at end of stream.
     */
    bool next(OwnedBlock &blk);

    uint64_t blocksProduced() const { return produced_; }

  private:
    TraceSource &trace_;
    const ICacheModel &cache_;
    DynInst pending_;
    bool havePending_ = false;
    bool exhausted_ = false;
    uint64_t produced_ = 0;
};

} // namespace mbbp

#endif // MBBP_FETCH_BLOCK_HH

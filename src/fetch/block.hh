/**
 * @file
 * Fetch-block segmentation: grouping the dynamic instruction stream
 * into the paper's fetch blocks -- "a group of sequential instructions
 * up to a predefined limit b, or up to the end of a line", ended early
 * by the first taken control transfer. Not-taken conditional branches
 * stay inside a block, which is exactly why multiple branch prediction
 * is needed.
 */

#ifndef MBBP_FETCH_BLOCK_HH
#define MBBP_FETCH_BLOCK_HH

#include <cstdint>
#include <vector>

#include "fetch/icache_model.hh"
#include "trace/trace.hh"

namespace mbbp
{

/** One dynamic fetch block. */
struct FetchBlock
{
    Addr startPc = 0;
    std::vector<DynInst> insts;
    int exitIdx = -1;       //!< index of the taken transfer, or -1
    Addr nextPc = 0;        //!< actual start of the following block

    unsigned size() const
    {
        return static_cast<unsigned>(insts.size());
    }

    bool endsTaken() const { return exitIdx >= 0; }

    /** The taken control transfer that ends the block (if any). */
    const DynInst *exitInst() const
    {
        return endsTaken() ? &insts[exitIdx] : nullptr;
    }

    /** Conditional branches executed in the block. */
    unsigned numConds() const;

    /** Not-taken conditional branches (GhrInfo numerator). */
    unsigned numNotTakenConds() const;

    /** Bit i = outcome of the i-th executed conditional branch. */
    uint64_t condOutcomes() const;
};

/** Segments a trace into consecutive fetch blocks. */
class BlockStream
{
  public:
    /**
     * @param trace Source of the dynamic stream (reset by caller).
     * @param cache Geometry that bounds block capacity.
     */
    BlockStream(TraceSource &trace, const ICacheModel &cache);

    /**
     * Produce the next *complete* block (one whose successor address
     * is known). Returns false at end of stream.
     */
    bool next(FetchBlock &blk);

    uint64_t blocksProduced() const { return produced_; }

  private:
    TraceSource &trace_;
    const ICacheModel &cache_;
    DynInst pending_;
    bool havePending_ = false;
    bool exhausted_ = false;
    uint64_t produced_ = 0;
};

} // namespace mbbp

#endif // MBBP_FETCH_BLOCK_HH

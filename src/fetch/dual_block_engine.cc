#include "fetch/dual_block_engine.hh"

#include <memory>
#include <vector>

#include "obs/obs.hh"
#include "predict/bbr.hh"
#include "predict/btb.hh"
#include "predict/nls.hh"
#include "util/logging.hh"

namespace mbbp
{

namespace
{

/** Allocate a recovery entry per conditional branch in a block. */
void
allocBbrForBlock(BbrPool &pool, std::vector<std::size_t> &ids,
                 const FetchBlock &blk, bool block_two,
                 const BlockedPHT &pht, std::size_t pht_idx,
                 uint64_t ghr_value, unsigned line_size)
{
    for (const auto &inst : blk) {
        if (!isCondBranch(inst.cls))
            continue;
        const SatCounter &ctr =
            pht.counterAt(pht_idx, pht.position(inst.pc));
        BbrEntry e;
        e.blockTwo = block_two;
        e.predictedTaken = ctr.predictTaken();
        e.secondChance = ctr.secondChance();
        e.phtIndex = static_cast<uint32_t>(pht_idx);
        e.correctedGhr = ghr_value;
        // If predicted not taken, the alternate is the branch target;
        // if predicted taken, the fall-through path (Section 3.3).
        e.alternateTarget = e.predictedTaken ? inst.pc + 1
                                             : inst.target;
        e.replacementSelector =
            Selector{ SelSrc::Target,
                      static_cast<uint8_t>(inst.pc % line_size) };
        ids.push_back(pool.allocate(e));
    }
}

} // namespace

DualBlockEngine::DualBlockEngine(const FetchEngineConfig &cfg)
    : cfg_(cfg)
{
}

FetchStats
DualBlockEngine::run(const InMemoryTrace &trace)
{
    return run(DecodedTrace::build(trace, cfg_.icache));
}

FetchStats
DualBlockEngine::run(const DecodedTrace &dec)
{
    FetchStats stats;
    mbbp_assert(dec.geometryCompatible(cfg_.icache),
                "decoded trace was cut for another geometry");

    const StaticImage &image = dec.image();
    ICacheModel cache(cfg_.icache);
    const unsigned line_size = cache.lineSize();

    BlockedPHT pht({ cfg_.historyBits, cfg_.icache.blockWidth, 2,
                     cfg_.numPhts });
    GlobalHistory ghr(cfg_.historyBits);
    BitTable bit(cfg_.bitEntries, line_size);
    ReturnAddressStack ras(cfg_.rasEntries);
    PenaltyModel penalties(cfg_.doubleSelect);
    SelectTable st(cfg_.historyBits, cfg_.numSelectTables,
                   cfg_.doubleSelect);
    BbrPool bbr(cfg_.bbrCapacity);

    std::unique_ptr<TargetArray> ta;
    if (cfg_.targetKind == TargetKind::Nls) {
        ta = std::make_unique<NlsTargetArray>(cfg_.targetEntries,
                                              line_size, true);
    } else {
        ta = std::make_unique<Btb>(cfg_.targetEntries, cfg_.btbAssoc,
                                   line_size);
    }

    ICacheContents contents(cfg_.icacheLines, cfg_.icacheAssoc);
    PhtTrainer trainer(pht, cfg_.delayedPhtUpdate);
    BitVector stale;        //!< scratch for finite-BIT codes

    obs::AttributionSink attr;
    FetchBandwidth bw("engine.dual");

    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return stats;

    // B is the second block of the currently-fetching pair -- the one
    // whose information predicts the next pair. The very first block
    // is fetched alone to prime the pipeline (Figure 3's b0).
    std::size_t bi = 0;
    FetchBlock B = dec.block(bi);
    ++stats.fetchRequests;
    countBlockStats(stats, dec, bi);
    touchICache(contents, cache, B, stats, cfg_.icacheMissPenalty);
    bw.endRequest(stats.instructions, 1, false);

    // Recovery entries stay live for the 4-cycle resolution window
    // (two pair-fetch cycles).
    BbrInflight bbr_inflight(bbr, 4);

    for (;;) {
        const std::size_t ci = bi + 1;
        if (ci >= nblocks)
            break;
        const FetchBlock C = dec.block(ci);
        mbbp_assert(C.startPc == B.nextPc, "block index out of sync");
        const std::size_t di = ci + 1;
        const bool have_d = di < nblocks;
        const FetchBlock D = have_d ? dec.block(di) : FetchBlock{};
        if (have_d)
            mbbp_assert(D.startPc == C.nextPc,
                        "block index out of sync");

        ++stats.fetchRequests;
        const uint64_t ev0 = mispredictEvents(stats);
        const uint64_t insts0 = stats.instructions;
        trainer.tick();
        countBlockStats(stats, dec, ci);
        touchICache(contents, cache, C, stats,
                    cfg_.icacheMissPenalty);
        if (have_d) {
            countBlockStats(stats, dec, di);
            touchICache(contents, cache, D, stats,
                        cfg_.icacheMissPenalty);
            if (cache.bankConflict(C.startPc, C.size(), D.startPc,
                                   D.size())) {
                stats.charge(PenaltyKind::BankConflict,
                             penalties.cycles(
                                 PenaltyKind::BankConflict, 1));
            }
        }

        // ===== Block 1: B's exit prediction (the address of C). ====
        unsigned cap_b = dec.windowLen(bi);
        std::size_t idx1 = pht.index(ghr, B.startPc);
        const BitCode *true_b = dec.windowCodes(bi, cfg_.nearBlock);
        ExitPrediction pred_b = predictExit(true_b, cap_b, B.startPc,
                                            cap_b, pht, idx1);
        bool blk1_penalized = false;

        if (cfg_.doubleSelect) {
            // The first selector also comes from the (dual) select
            // table; verify it against the decoded types + PHT.
            unsigned tab_b = st.tableOf(B.startPc);
            const SelectEntry &e0 = st.read(tab_b, idx1, 0);
            Selector sel_true_b = pred_b.selector(line_size);
            if (e0.sel != sel_true_b) {
                chargeMispredict(stats, attr, B.startPc, 0,
                                 PenaltyKind::Misselect,
                                 penalties.cycles(
                                     PenaltyKind::Misselect, 0));
                blk1_penalized = true;
            } else if (e0.ghr != pred_b.ghrInfo()) {
                chargeMispredict(stats, attr, B.startPc, 0,
                                 PenaltyKind::GhrMispredict,
                                 penalties.cycles(
                                     PenaltyKind::GhrMispredict, 0));
                blk1_penalized = true;
            }
            st.write(tab_b, idx1, 0,
                     { sel_true_b, pred_b.ghrInfo(),
                       static_cast<uint8_t>(C.startPc % line_size),
                       true });
        } else if (!bit.perfect()) {
            bitWindowCodesInto(bit, image, B.startPc, cap_b,
                               line_size, cfg_.nearBlock, stale);
            ExitPrediction pred_stale =
                predictExit(stale, B.startPc, cap_b, pht, idx1);
            if (pred_stale.selector(line_size) !=
                pred_b.selector(line_size)) {
                chargeMispredict(stats, attr, B.startPc, 0,
                                 PenaltyKind::BitMispredict,
                                 penalties.cycles(
                                     PenaltyKind::BitMispredict, 0));
            }
            refreshBitEntries(bit, image, B.startPc, cap_b, line_size,
                              cfg_.nearBlock);
        }

        ResolvedTarget r1 =
            resolveAddress(pred_b, B.startPc, cap_b, image, ras, *ta,
                           B.startPc, 0, line_size);
        PredictOutcome out1 = compareWithActual(pred_b, r1, B);
        if (!out1.correct) {
            unsigned cycles = penalties.cycles(out1.kind, 0);
            if (out1.refetchExtra)
                cycles += penalties.refetchExtra();
            chargeMispredict(stats, attr, B.startPc, 0, out1.kind,
                             cycles);
            if (out1.kind == PenaltyKind::CondMispredict)
                ++stats.condDirectionWrong;
            blk1_penalized = true;
        }

        // Recovery entries for B's conditionals (before training so
        // the stored prediction matches what was predicted).
        allocBbrForBlock(bbr, bbr_inflight.beginBlock(), B, false,
                         pht, idx1, ghr.value(), line_size);
        bbr_inflight.commit();

        // Train with B's actual outcomes; the GHR now precedes C.
        trainer.train(idx1, B);
        ghr.shiftInBlock(dec.condOutcomes(bi), dec.numConds(bi));
        applyRasOp(ras, B);

        if (!have_d) {
            // C is the last complete block; its exit cannot be
            // scored. Finish bookkeeping and stop.
            updateTargetArray(*ta, B.startPc, 0, B, line_size,
                              cfg_.nearBlock);
            bw.endRequest(stats.instructions - insts0, 1,
                          mispredictEvents(stats) != ev0);
            break;
        }

        // ===== Block 2: C's exit prediction via the select table ===
        unsigned cap_c = dec.windowLen(ci);
        std::size_t idx2 = pht.index(ghr, C.startPc);
        const BitCode *true_c = dec.windowCodes(ci, cfg_.nearBlock);
        ExitPrediction pred_c = predictExit(true_c, cap_c, C.startPc,
                                            cap_c, pht, idx2);
        Selector sel_true = pred_c.selector(line_size);
        GhrInfo ghr_true = pred_c.ghrInfo();

        unsigned tab = st.tableOf(C.startPc);
        unsigned slot = cfg_.doubleSelect ? 1 : 0;
        const SelectEntry &e = st.read(tab, idx1, slot);

        if (!blk1_penalized) {
            if (e.sel != sel_true) {
                chargeMispredict(stats, attr, C.startPc, 1,
                                 PenaltyKind::Misselect,
                                 penalties.cycles(
                                     PenaltyKind::Misselect, 1));
            } else if (e.ghr != ghr_true) {
                chargeMispredict(stats, attr, C.startPc, 1,
                                 PenaltyKind::GhrMispredict,
                                 penalties.cycles(
                                     PenaltyKind::GhrMispredict, 1));
            } else if (cfg_.nearBlockStoredOffset &&
                       sel_true.src != SelSrc::Target &&
                       sel_true.src != SelSrc::FallThrough &&
                       sel_true.src != SelSrc::Ras &&
                       e.startOffset !=
                           static_cast<uint8_t>(D.startPc %
                                                line_size)) {
                // Near-block second-block target with stored offset
                // bits: the line index was right but the stale offset
                // fetched the wrong slot of it -- one more misselect
                // flavor (Section 3.1's trade-off).
                chargeMispredict(stats, attr, C.startPc, 1,
                                 PenaltyKind::Misselect,
                                 penalties.cycles(
                                     PenaltyKind::Misselect, 1));
            }
            // The verified (BIT+PHT) selection is what ultimately
            // fetches; compare its result against the actual D.
            ResolvedTarget r2 =
                resolveAddress(pred_c, C.startPc, cap_c, image, ras,
                               *ta, B.startPc, 1, line_size);
            PredictOutcome out2 = compareWithActual(pred_c, r2, C);
            if (!out2.correct) {
                unsigned cycles = penalties.cycles(out2.kind, 1);
                if (out2.refetchExtra)
                    cycles += penalties.refetchExtra();
                chargeMispredict(stats, attr, C.startPc, 1, out2.kind,
                                 cycles);
                if (out2.kind == PenaltyKind::CondMispredict)
                    ++stats.condDirectionWrong;
            }
        }

        // Replace the stored selection with the newest prediction.
        st.write(tab, idx1, slot,
                 { sel_true, ghr_true,
                   static_cast<uint8_t>(D.startPc % line_size),
                   true });

        // Target arrays are written at resolution, after the cycle's
        // reads: first-target with B's exit, second-target with C's,
        // both indexed by B (Section 3.1).
        updateTargetArray(*ta, B.startPc, 0, B, line_size,
                          cfg_.nearBlock);
        updateTargetArray(*ta, B.startPc, 1, C, line_size,
                          cfg_.nearBlock);

        allocBbrForBlock(bbr, bbr_inflight.beginBlock(), C, true,
                         pht, idx2, ghr.value(), line_size);
        bbr_inflight.commit();

        // Resolution frees recovery entries two pair-cycles later.
        bbr_inflight.expire();

        trainer.train(idx2, C);
        ghr.shiftInBlock(dec.condOutcomes(ci), dec.numConds(ci));
        applyRasOp(ras, C);

        bw.endRequest(stats.instructions - insts0, 2,
                      mispredictEvents(stats) != ev0);

        bi = di;
        B = D;
    }

    stats.rasOverflows = ras.overflows();
    stats.bbrPeak = bbr.peakInFlight();
    pht.obsFlush();
    bit.obsFlush();
    ras.obsFlush();
    st.obsFlush();
    attr.flush();
    bw.flush();
    obs::flushCounter("engine.dual.runs", 1);
    return stats;
}

} // namespace mbbp

#include "fetch/two_ahead_engine.hh"

#include <vector>

#include "obs/obs.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

TwoAheadEngine::TwoAheadEngine(const FetchEngineConfig &cfg)
    : cfg_(cfg)
{
    mbbp_assert(!cfg_.doubleSelect,
                "double selection is a select-table concept");
}

FetchStats
TwoAheadEngine::run(const InMemoryTrace &trace)
{
    return run(DecodedTrace::build(trace, cfg_.icache));
}

FetchStats
TwoAheadEngine::run(const DecodedTrace &dec)
{
    FetchStats stats;
    mbbp_assert(dec.geometryCompatible(cfg_.icache),
                "decoded trace was cut for another geometry");

    ICacheModel cache(cfg_.icache);
    const unsigned line_size = cache.lineSize();
    PenaltyModel penalties(false);
    GlobalHistory ghr(cfg_.historyBits);

    // The two-block-ahead table: predicted start address of the
    // block after next, indexed like the PHT/ST so storage is
    // comparable with the select-table design.
    struct Entry
    {
        Addr twoAhead = 0;
        bool valid = false;
    };
    std::vector<Entry> table(std::size_t{1} << cfg_.historyBits);

    // Predictions in flight: made at block i, scored at block i + 2.
    // Never more than two outstanding -- a fixed two-slot ring.
    struct Pending
    {
        std::size_t idx;    //!< table entry to retrain
        Addr predicted;
        bool valid;
    };
    Pending pending[2];
    std::size_t pcount = 0;
    std::size_t phead = 0;

    // The previous block, whose exit classifies a wrong prediction.
    FetchBlock prev;
    bool have_prev = false;
    uint64_t block_index = 0;
    FetchBlock stash;       // second block of the current pair
    bool have_stash = false;

    obs::AttributionSink attr;
    FetchBandwidth bw("engine.two_ahead");
    bool req_open = false;
    uint64_t req_ev0 = 0, req_insts0 = 0, req_blocks = 0;

    const std::size_t nblocks = dec.numBlocks();
    for (std::size_t b = 0; b < nblocks; ++b) {
        const FetchBlock blk = dec.block(b);

        // Fetch-cycle accounting: the first block primes the
        // pipeline alone, then one request covers two blocks.
        if (block_index == 0) {
            ++stats.fetchRequests;
            req_open = true;
            req_ev0 = mispredictEvents(stats);
            req_insts0 = stats.instructions;
            req_blocks = 0;
        } else if (block_index % 2 == 1) {
            bw.endRequest(stats.instructions - req_insts0,
                          req_blocks,
                          mispredictEvents(stats) != req_ev0);
            ++stats.fetchRequests;
            req_ev0 = mispredictEvents(stats);
            req_insts0 = stats.instructions;
            req_blocks = 0;
            have_stash = false;
        } else {
            // Second slot of the request: bank-conflict check.
            if (have_stash &&
                cache.bankConflict(stash.startPc, stash.size(),
                                   blk.startPc, blk.size())) {
                stats.charge(PenaltyKind::BankConflict,
                             penalties.cycles(
                                 PenaltyKind::BankConflict, 1));
            }
        }
        countBlockStats(stats, dec, b);
        ++req_blocks;

        // Score the prediction made two blocks ago.
        if (pcount == 2) {
            Pending p = pending[phead];
            phead ^= 1;
            --pcount;
            unsigned slot = block_index % 2 == 1 ? 0u : 1u;
            if (!p.valid || p.predicted != blk.startPc) {
                // Classify by the exit of the block this address
                // sprang from (the previous block).
                PenaltyKind kind = PenaltyKind::MisfetchImmediate;
                if (have_prev && prev.endsTaken()) {
                    const DynInst &e = *prev.exitInst();
                    if (isCondBranch(e.cls))
                        kind = PenaltyKind::CondMispredict;
                    else if (isReturn(e.cls))
                        kind = PenaltyKind::ReturnMispredict;
                    else if (isIndirect(e.cls))
                        kind = PenaltyKind::MisfetchIndirect;
                } else if (have_prev) {
                    // Fall-through mispredicted: direction error on
                    // one of the block's conditionals.
                    kind = prev.numConds() > 0
                        ? PenaltyKind::CondMispredict
                        : PenaltyKind::MisfetchImmediate;
                }
                // The offender is the block whose exit produced the
                // two-ahead address (the previous block).
                chargeMispredict(stats, attr, prev.startPc, slot,
                                 kind, penalties.cycles(kind, slot));
                if (kind == PenaltyKind::CondMispredict)
                    ++stats.condDirectionWrong;
            }
            table[p.idx] = { blk.startPc, true };
        }

        // Make this block's two-ahead prediction. Fold the whole
        // line address into the index so distinct blocks don't
        // collide through truncation.
        std::size_t idx =
            (ghr.value() ^
             xorFold(blk.startPc / line_size, cfg_.historyBits)) &
            mask(cfg_.historyBits);
        pending[(phead + pcount) % 2] =
            { idx, table[idx].twoAhead, table[idx].valid };
        ++pcount;

        ghr.shiftInBlock(dec.condOutcomes(b), dec.numConds(b));
        prev = blk;
        have_prev = true;
        if (block_index % 2 == 1) {
            stash = blk;
            have_stash = true;
        }
        ++block_index;
    }
    if (req_open)
        bw.endRequest(stats.instructions - req_insts0, req_blocks,
                      mispredictEvents(stats) != req_ev0);
    attr.flush();
    bw.flush();
    obs::flushCounter("engine.two_ahead.runs", 1);
    return stats;
}

} // namespace mbbp

/**
 * @file
 * The instruction-fetch control logic of Section 2: given a block's
 * type information (BIT codes) and its pattern-history entry, find
 * "the first unconditional branch or conditional branch predicted to
 * be taken", yielding the multiplexer selection for the next fetch
 * line. Shared by the single- and dual-block engines and by the
 * select-table verification stage.
 */

#ifndef MBBP_FETCH_EXIT_PREDICT_HH
#define MBBP_FETCH_EXIT_PREDICT_HH

#include <vector>

#include "fetch/icache_model.hh"
#include "predict/bit_table.hh"
#include "predict/blocked_pht.hh"
#include "predict/select_table.hh"
#include "trace/static_image.hh"

namespace mbbp
{

/** The outcome of scanning a block window. */
struct ExitPrediction
{
    bool found = false;     //!< an exit lies within the window
    unsigned offset = 0;    //!< instruction offset from block start
    Addr pc = 0;            //!< exit instruction address
    SelSrc src = SelSrc::FallThrough;
    uint8_t numNotTaken = 0;    //!< conds predicted not taken first

    /** The mux selection this prediction amounts to. */
    Selector selector(unsigned line_size) const;

    /** The GHR-update information it implies. */
    GhrInfo ghrInfo() const;
};

/**
 * True (pre-decoded) BIT codes for the window [start, start+len).
 */
BitVector trueWindowCodes(const StaticImage &image, Addr start,
                          unsigned len, unsigned line_size,
                          bool near_block);

/**
 * Codes as a finite BIT table reports them (possibly stale). In
 * perfect mode this equals trueWindowCodes.
 */
BitVector bitWindowCodes(const BitTable &bit, const StaticImage &image,
                         Addr start, unsigned len, unsigned line_size,
                         bool near_block);

/**
 * bitWindowCodes into a caller-owned buffer (resized to @p len), so a
 * fetch loop reuses one scratch vector instead of allocating per
 * block.
 */
void bitWindowCodesInto(const BitTable &bit, const StaticImage &image,
                        Addr start, unsigned len, unsigned line_size,
                        bool near_block, BitVector &out);

/** Refresh the BIT entries for every line the window touches. */
void refreshBitEntries(BitTable &bit, const StaticImage &image,
                       Addr start, unsigned len, unsigned line_size,
                       bool near_block);

/**
 * Scan the window for the predicted exit.
 *
 * @param codes Window-relative type codes (>= len entries).
 * @param ncodes Entries available at @p codes.
 * @param start First instruction address of the block.
 * @param len Window length (block capacity).
 * @param pht Blocked pattern history.
 * @param pht_idx Entry selected for this block.
 */
ExitPrediction predictExit(const BitCode *codes, std::size_t ncodes,
                           Addr start, unsigned len,
                           const BlockedPHT &pht,
                           std::size_t pht_idx);

/** predictExit over an owned code vector. */
inline ExitPrediction
predictExit(const BitVector &codes, Addr start, unsigned len,
            const BlockedPHT &pht, std::size_t pht_idx)
{
    return predictExit(codes.data(), codes.size(), start, len, pht,
                       pht_idx);
}

} // namespace mbbp

#endif // MBBP_FETCH_EXIT_PREDICT_HH

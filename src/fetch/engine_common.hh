/**
 * @file
 * Pieces shared by the single- and dual-block fetch engines: resolving
 * a predicted exit to a concrete fetch address, classifying a wrong
 * prediction into a Table 3 penalty category, and the per-block
 * predictor training/bookkeeping.
 */

#ifndef MBBP_FETCH_ENGINE_COMMON_HH
#define MBBP_FETCH_ENGINE_COMMON_HH

#include <cassert>
#include <deque>
#include <string>
#include <vector>

#include "fetch/block.hh"
#include "fetch/exit_predict.hh"
#include "fetch/fetch_stats.hh"
#include "obs/attribution.hh"
#include "obs/obs.hh"
#include "predict/bbr.hh"
#include "predict/ras.hh"
#include "predict/target_array.hh"
#include "trace/decoded_trace.hh"

namespace mbbp
{

/** A predicted next-fetch address. */
struct ResolvedTarget
{
    Addr addr = 0;
    bool taHit = true;      //!< target-array probe hit (BTB only)
};

/**
 * Turn an exit prediction into a fetch address.
 *
 * Near-block targets are computed exactly (line index from the BIT
 * code, offset from the branch's immediate via the small adder of
 * Section 2), so they read the static image rather than the target
 * array -- that is precisely their storage benefit.
 *
 * @param index_addr Address indexing the target array (the current
 *                   block for single-block fetching; the second
 *                   currently-fetching block for dual arrays).
 * @param which 0 = first-target array, 1 = second-target array.
 */
ResolvedTarget resolveAddress(const ExitPrediction &pred, Addr start,
                              unsigned capacity,
                              const StaticImage &image,
                              const ReturnAddressStack &ras,
                              const TargetArray &ta, Addr index_addr,
                              unsigned which, unsigned line_size);

/** Result of comparing a prediction against the actual block. */
struct PredictOutcome
{
    bool correct = true;
    PenaltyKind kind = PenaltyKind::CondMispredict;
    bool refetchExtra = false;  //!< Table 3 footnote applies
};

/**
 * Classify a (true-types) prediction against the actual fetch block.
 * Precondition: @p pred was computed from true BIT codes (stale-BIT
 * divergence is charged separately before calling this).
 */
PredictOutcome compareWithActual(const ExitPrediction &pred,
                                 const ResolvedTarget &resolved,
                                 const FetchBlock &actual);

/** Train the blocked PHT with every conditional in the block. */
void trainBlockPht(BlockedPHT &pht, std::size_t idx,
                   const FetchBlock &blk);

/** Apply the block's exit to the return address stack. */
void applyRasOp(ReturnAddressStack &ras, const FetchBlock &blk);

/**
 * Install the block's taken exit into a target array (skipping
 * returns, which the RAS covers, and -- when near-block encoding is
 * on -- near conditional targets, which are never stored).
 */
void updateTargetArray(TargetArray &ta, Addr index_addr,
                       unsigned which, const FetchBlock &blk,
                       unsigned line_size, bool near_block);

/**
 * The predictor component a Table 3 penalty category blames: this
 * mapping lives in the fetch layer (not obs) so obs stays below
 * fetch in the link order. BankConflict is a structural stall, not a
 * misprediction, and has no cause.
 */
inline obs::LossCause
lossCauseOf(PenaltyKind kind)
{
    switch (kind) {
    case PenaltyKind::CondMispredict:
        return obs::LossCause::PhtDirection;
    case PenaltyKind::ReturnMispredict:
        return obs::LossCause::Ras;
    case PenaltyKind::MisfetchIndirect:
    case PenaltyKind::MisfetchImmediate:
        return obs::LossCause::Target;
    case PenaltyKind::Misselect:
        return obs::LossCause::Select;
    case PenaltyKind::GhrMispredict:
        return obs::LossCause::Ghr;
    case PenaltyKind::BitMispredict:
        return obs::LossCause::BitType;
    case PenaltyKind::BankConflict:
    case PenaltyKind::NumKinds:
        break;
    }
    assert(false && "no loss cause for structural stalls");
    return obs::LossCause::PhtDirection;
}

/** Attributed mispredictions in @p s: every penalty event except
 *  bank conflicts. The attribution invariant is that the table's
 *  event total equals this, field-exact. */
inline uint64_t
mispredictEvents(const FetchStats &s)
{
    uint64_t n = 0;
    for (unsigned k = 0; k < numPenaltyKinds; ++k)
        if (static_cast<PenaltyKind>(k) != PenaltyKind::BankConflict)
            n += s.penaltyEvents[k];
    return n;
}

/**
 * The one charge path for real mispredictions: updates the aggregate
 * FetchStats AND the per-branch attribution table, so the two can
 * never drift apart. Bank conflicts keep calling stats.charge()
 * directly.
 */
inline void
chargeMispredict(FetchStats &stats, obs::AttributionSink &attr,
                 Addr block_pc, unsigned slot, PenaltyKind kind,
                 unsigned cycles)
{
    assert(kind != PenaltyKind::BankConflict);
    stats.charge(kind, cycles);
    attr.record(block_pc, slot, lossCauseOf(kind), cycles);
}

/**
 * Fetch-bandwidth distributions, one instance per engine run:
 * instructions and blocks delivered per fetch request (a request is
 * a cycle, so blocks/request is the paper's blocks-per-cycle), and
 * the length of each clean run of requests ended by a misprediction.
 * Accumulates unconditionally (same discipline as the predictors'
 * stat members) and publishes once via flush(); the trailing clean
 * run at end of trace is not a mispredict-terminated run and is
 * dropped.
 */
class FetchBandwidth
{
  public:
    /** @param prefix Histogram name prefix, e.g. "engine.single". */
    explicit FetchBandwidth(std::string prefix)
        : prefix_(std::move(prefix))
    {
    }

    /** One fetch request completed. */
    void endRequest(uint64_t insts, uint64_t blocks,
                    bool mispredicted)
    {
        insts_.record(insts);
        blocks_.record(blocks);
        if (mispredicted) {
            runs_.record(cleanRun_);
            cleanRun_ = 0;
        } else {
            ++cleanRun_;
        }
    }

    /** Publish the distributions (no-op while obs is disabled). */
    void flush()
    {
        obs::flushHistogram(prefix_ + ".insts_per_request", insts_);
        obs::flushHistogram(prefix_ + ".blocks_per_request",
                            blocks_);
        obs::flushHistogram(prefix_ + ".mispredict_run", runs_);
        insts_ = {};
        blocks_ = {};
        runs_ = {};
        cleanRun_ = 0;
    }

  private:
    std::string prefix_;
    obs::HistogramData insts_;
    obs::HistogramData blocks_;
    obs::HistogramData runs_;
    uint64_t cleanRun_ = 0;
};

/** Per-block instruction/branch counting. */
void countBlockStats(FetchStats &stats, const FetchBlock &blk,
                     unsigned line_size);

/**
 * Per-block counting from the precomputed index: O(1) adds, no
 * instruction rescan. Equivalent to the FetchBlock overload.
 */
void countBlockStats(FetchStats &stats, const DecodedTrace &dec,
                     std::size_t block);

/**
 * Touch every line a block reads in the (optional) finite i-cache
 * contents model; each miss stalls fetch for @p miss_penalty cycles.
 */
void touchICache(ICacheContents &contents, const ICacheModel &cache,
                 const FetchBlock &blk, FetchStats &stats,
                 unsigned miss_penalty);

/**
 * PHT training that optionally defers counter updates to branch
 * resolution (Section 3.3's read/modify/write discipline when the
 * BBR carries no PHT-block field). tick() advances one fetch cycle;
 * updates apply after the resolution depth.
 */
class PhtTrainer
{
  public:
    /**
     * @param pht Table to train.
     * @param delayed Defer updates when true.
     * @param depth_requests Fetch requests until resolution (~4
     *        cycles = 2 dual-block requests).
     */
    PhtTrainer(BlockedPHT &pht, bool delayed,
               unsigned depth_requests = 2);

    /** Record (or immediately apply) a block's outcomes. */
    void train(std::size_t idx, const FetchBlock &blk);

    /** One fetch request elapsed; apply due updates. */
    void tick();

    /** Apply everything still pending (end of run). */
    void flush();

  private:
    struct Update
    {
        std::size_t idx;
        Addr pc;
        bool taken;
    };

    void apply(const std::vector<Update> &batch);

    BlockedPHT &pht_;
    bool delayed_;
    unsigned depth_;
    std::deque<std::vector<Update>> pending_;
};

/**
 * The recovery-entry resolution window: BBR ids allocated per block
 * stay live for @p depth blocks, then release. A fixed ring of
 * reused id batches -- identical allocate/release order to the deque
 * the engines used to keep, with zero steady-state allocation.
 * Engines choose when to expire: the single-block engine expires
 * after every block, the dual-block engine once per block pair.
 */
class BbrInflight
{
  public:
    explicit BbrInflight(BbrPool &pool, unsigned depth = 4);

    /** A cleared batch to fill with this block's allocated ids. */
    std::vector<std::size_t> &beginBlock();

    /** Commit the batch started by beginBlock(). */
    void commit();

    /** Release batches older than the resolution window. */
    void expire();

  private:
    BbrPool &pool_;
    unsigned depth_;
    std::vector<std::vector<std::size_t>> slots_;
    std::size_t head_ = 0;      //!< oldest live batch
    std::size_t live_ = 0;
};

} // namespace mbbp

#endif // MBBP_FETCH_ENGINE_COMMON_HH

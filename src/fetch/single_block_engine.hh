/**
 * @file
 * Single-block fetch engine: the Figure 1 mechanism. One fetch block
 * per cycle; while the block is read, the BIT codes and the blocked
 * PHT entry pick the first unconditional or predicted-taken branch,
 * and the next line is selected among fall-through, RAS, target
 * array, and (with the 3-bit encoding) near-block lines. Used for
 * Figure 7's BIT sweep and the single-block columns of Table 6.
 */

#ifndef MBBP_FETCH_SINGLE_BLOCK_ENGINE_HH
#define MBBP_FETCH_SINGLE_BLOCK_ENGINE_HH

#include <memory>

#include "fetch/engine_common.hh"
#include "fetch/engine_config.hh"
#include "fetch/penalty_model.hh"
#include "predict/history.hh"

namespace mbbp
{

/** Trace-driven single-block fetch simulator. */
class SingleBlockEngine
{
  public:
    explicit SingleBlockEngine(const FetchEngineConfig &cfg);

    /**
     * Run the whole trace (correct-path; mispredictions charge the
     * Table 3 block-1 penalties) and return the metrics. Decodes a
     * throwaway replay artifact; use the DecodedTrace overload to
     * amortize the decode across runs.
     */
    FetchStats run(const InMemoryTrace &trace);

    /** Replay a precomputed artifact (byte-identical results). */
    FetchStats run(const DecodedTrace &dec);

    const FetchEngineConfig &config() const { return cfg_; }

  private:
    FetchEngineConfig cfg_;
};

} // namespace mbbp

#endif // MBBP_FETCH_SINGLE_BLOCK_ENGINE_HH

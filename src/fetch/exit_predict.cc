#include "fetch/exit_predict.hh"

#include "util/logging.hh"

namespace mbbp
{

Selector
ExitPrediction::selector(unsigned line_size) const
{
    Selector s;
    s.src = src;
    s.pos = found ? static_cast<uint8_t>(pc % line_size) : 0;
    return s;
}

GhrInfo
ExitPrediction::ghrInfo() const
{
    return { numNotTaken, found };
}

BitVector
trueWindowCodes(const StaticImage &image, Addr start, unsigned len,
                unsigned line_size, bool near_block)
{
    BitVector codes(len);
    for (unsigned i = 0; i < len; ++i) {
        StaticInfo info = image.lookup(start + i);
        codes[i] = computeBitCode(info.cls, start + i, info.target,
                                  line_size, near_block);
    }
    return codes;
}

BitVector
bitWindowCodes(const BitTable &bit, const StaticImage &image,
               Addr start, unsigned len, unsigned line_size,
               bool near_block)
{
    BitVector codes;
    bitWindowCodesInto(bit, image, start, len, line_size, near_block,
                       codes);
    return codes;
}

void
bitWindowCodesInto(const BitTable &bit, const StaticImage &image,
                   Addr start, unsigned len, unsigned line_size,
                   bool near_block, BitVector &out)
{
    if (bit.perfect()) {
        out = trueWindowCodes(image, start, len, line_size,
                              near_block);
        return;
    }
    out.resize(len);
    for (unsigned i = 0; i < len; ++i) {
        Addr pc = start + i;
        const BitVector *line = bit.lookup(pc / line_size);
        out[i] = (*line)[pc % line_size];
    }
}

void
refreshBitEntries(BitTable &bit, const StaticImage &image, Addr start,
                  unsigned len, unsigned line_size, bool near_block)
{
    if (bit.perfect())
        return;
    Addr first = start / line_size;
    Addr last = (start + (len ? len - 1 : 0)) / line_size;
    for (Addr line = first; line <= last; ++line) {
        Addr base = line * line_size;
        bit.update(line, trueWindowCodes(image, base, line_size,
                                         line_size, near_block));
    }
}

ExitPrediction
predictExit(const BitCode *codes, std::size_t ncodes, Addr start,
            unsigned len, const BlockedPHT &pht, std::size_t pht_idx)
{
    mbbp_assert(ncodes >= len, "window codes too short");

    ExitPrediction p;
    for (unsigned i = 0; i < len; ++i) {
        Addr pc = start + i;
        BitCode c = codes[i];
        switch (c) {
          case BitCode::NonBranch:
            continue;
          case BitCode::Return:
            p.found = true;
            p.src = SelSrc::Ras;
            break;
          case BitCode::OtherBranch:
            p.found = true;
            p.src = SelSrc::Target;
            break;
          default: {
            // Conditional branch (long or near): taken per pattern
            // history, else keep scanning.
            if (!pht.predictAt(pht_idx, pc)) {
                if (p.numNotTaken < 255)
                    ++p.numNotTaken;
                continue;
            }
            p.found = true;
            if (c == BitCode::CondLong) {
                p.src = SelSrc::Target;
            } else {
                switch (bitCodeNearDelta(c)) {
                  case -1: p.src = SelSrc::LinePrev; break;
                  case 0: p.src = SelSrc::LineSame; break;
                  case 1: p.src = SelSrc::LineNext; break;
                  default: p.src = SelSrc::LineNext2; break;
                }
            }
            break;
          }
        }
        if (p.found) {
            p.offset = i;
            p.pc = pc;
            return p;
        }
    }
    return p;   // fall-through
}

} // namespace mbbp

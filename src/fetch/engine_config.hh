/**
 * @file
 * Configuration shared by the fetch engines. Defaults reproduce the
 * paper's baseline evaluation setup (Section 4): block width 8, one
 * global blocked PHT with a 10-bit history, 256-entry NLS, 32-entry
 * RAS, 1024-entry select table, near-block prediction off, perfect
 * i-cache contents, BIT stored in the i-cache.
 */

#ifndef MBBP_FETCH_ENGINE_CONFIG_HH
#define MBBP_FETCH_ENGINE_CONFIG_HH

#include <cstdint>

#include "fetch/icache_model.hh"

namespace mbbp
{

/** Which structure backs the target arrays. */
enum class TargetKind : uint8_t
{
    Nls = 0,    //!< direct-mapped tag-less (the paper's default)
    Btb         //!< set-associative, LRU
};

/** Full fetch-engine configuration. */
struct FetchEngineConfig
{
    // Branch prediction
    unsigned historyBits = 10;
    unsigned numPhts = 1;

    // Cache geometry
    ICacheConfig icache = ICacheConfig::normal(8);

    // BIT
    std::size_t bitEntries = 0;     //!< 0 = BIT in i-cache (perfect)
    bool nearBlock = false;         //!< 3-bit near-block encoding

    /**
     * Section 3.1 gives two options for near-block targets of the
     * *second* block, whose line offset the selector alone cannot
     * supply: store log2(b) extra offset bits in the select table
     * (this flag), or "calculate the line offset after its source
     * block has been read" (default). With stored offsets, a stale
     * offset is one more way to misselect.
     */
    bool nearBlockStoredOffset = false;

    // Target array
    TargetKind targetKind = TargetKind::Nls;
    std::size_t targetEntries = 256;
    unsigned btbAssoc = 4;

    // RAS
    std::size_t rasEntries = 32;

    /**
     * Finite i-cache contents (0 = perfect, the paper's assumption:
     * "instruction cache misses were not simulated"). When non-zero,
     * each missing line stalls fetch for icacheMissPenalty cycles;
     * misses are reported separately from branch penalties so BEP
     * keeps the paper's meaning.
     */
    std::size_t icacheLines = 0;
    unsigned icacheAssoc = 2;
    unsigned icacheMissPenalty = 10;

    /**
     * Update PHT counters only at branch resolution (four cycles
     * after fetch) instead of immediately -- the read/modify/write
     * discipline Section 3.3 describes when the BBR's optional
     * PHT-block field is omitted. Slightly staler counters.
     */
    bool delayedPhtUpdate = false;

    // Dual-block specifics
    unsigned numSelectTables = 1;
    bool doubleSelect = false;
    std::size_t bbrCapacity = 8;
};

} // namespace mbbp

#endif // MBBP_FETCH_ENGINE_CONFIG_HH

/**
 * @file
 * A dual-block fetch engine built on Seznec, Jourdan, Sainrat &
 * Michaud's multiple-block-ahead principle (ASPLOS'96), the related
 * work the paper's select table competes with: "always use the
 * current instruction block information to predict the block
 * following the next instruction block."
 *
 * Where the paper's mechanism derives the first block from BIT+PHT
 * and replays a *selector* for the second, the two-block-ahead design
 * predicts both next-pair *addresses* directly from tables indexed by
 * the current pair's blocks: block B predicts the block after its
 * successor. Accuracy matches single-block prediction, but (as the
 * authors note) the second prediction's tag match is serialized
 * behind the first -- a cycle-time liability the select table
 * removes; the simulation charges the same Table 3 penalties so the
 * two engines' IPC_f are directly comparable.
 *
 * This is a deliberately *simplified* rendition (a tag-less address
 * table): the full ASPLOS'96 design integrates two-level direction
 * prediction and would close much of the measured gap on integer
 * codes. Treat the comparison as structural, not a faithful head-to-
 * head of the two papers.
 */

#ifndef MBBP_FETCH_TWO_AHEAD_ENGINE_HH
#define MBBP_FETCH_TWO_AHEAD_ENGINE_HH

#include "fetch/engine_common.hh"
#include "fetch/engine_config.hh"
#include "fetch/penalty_model.hh"
#include "predict/history.hh"

namespace mbbp
{

/** Trace-driven dual-block engine using two-block-ahead tables. */
class TwoAheadEngine
{
  public:
    explicit TwoAheadEngine(const FetchEngineConfig &cfg);

    /**
     * Run the whole trace and return the metrics. Decodes a
     * throwaway replay artifact; use the DecodedTrace overload to
     * amortize the decode across runs.
     */
    FetchStats run(const InMemoryTrace &trace);

    /** Replay a precomputed artifact (byte-identical results). */
    FetchStats run(const DecodedTrace &dec);

  private:
    FetchEngineConfig cfg_;
};

} // namespace mbbp

#endif // MBBP_FETCH_TWO_AHEAD_ENGINE_HH

/**
 * @file
 * The instruction-cache organizations of Section 4.5. Contents are
 * perfect (the paper's assumption); the model only determines
 *  - how many instructions a fetch starting at a given address can
 *    return (alignment-limited block capacity),
 *  - which lines (and banks) a block touches, for conflict checks.
 *
 * Types:
 *  - Normal: line size == block width; a block never crosses a line,
 *    so a misaligned entry point shortens it.
 *  - Extended: the line holds 2x the block width; at most blockWidth
 *    instructions are returned, and only entries in the last
 *    blockWidth-1 slots of the line are shortened.
 *  - SelfAligned: two consecutive lines are combined, so every block
 *    can reach full width; twice the banks offset the extra accesses.
 */

#ifndef MBBP_FETCH_ICACHE_MODEL_HH
#define MBBP_FETCH_ICACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"

namespace mbbp
{

/** Cache organization (Table 6 rows). */
enum class CacheType : uint8_t
{
    Normal = 0,
    Extended,
    SelfAligned
};

const char *cacheTypeName(CacheType t);

/** I-cache geometry. */
struct ICacheConfig
{
    CacheType type = CacheType::Normal;
    unsigned blockWidth = 8;    //!< instructions per fetch block (b)
    unsigned lineSize = 8;      //!< instructions per line (L)
    unsigned numBanks = 8;

    /** The paper's three Table 6 configurations for a given b. */
    static ICacheConfig normal(unsigned b = 8);
    static ICacheConfig extended(unsigned b = 8);
    static ICacheConfig selfAligned(unsigned b = 8);
};

/**
 * Optional finite i-cache *contents* model. The paper assumes perfect
 * contents ("instruction cache misses were not simulated"); this
 * set-associative LRU tag store lets the assumption be relaxed so the
 * cost of a real cache -- and the BIT-in-cache trade-off of Section
 * 4.2 -- can be quantified.
 */
class ICacheContents
{
  public:
    /**
     * @param num_lines Total lines (0 = perfect: every access hits).
     * @param assoc Ways per set.
     */
    ICacheContents(std::size_t num_lines, unsigned assoc);

    /** Is this the perfect-contents configuration? */
    bool perfect() const { return numSets_ == 0; }

    /** Access one line; returns true on hit and updates LRU/fill. */
    bool access(Addr line);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    unsigned assoc_ = 0;
    std::size_t numSets_ = 0;
    std::vector<Way> ways_;
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Capacity/banking model of the fetch path. */
class ICacheModel
{
  public:
    explicit ICacheModel(const ICacheConfig &cfg);

    const ICacheConfig &config() const { return cfg_; }
    unsigned blockWidth() const { return cfg_.blockWidth; }
    unsigned lineSize() const { return cfg_.lineSize; }

    /** Max instructions a block starting at @p pc can contain. */
    unsigned capacityAt(Addr pc) const;

    /** Line address (line number) containing @p pc. */
    Addr lineOf(Addr pc) const { return pc / cfg_.lineSize; }

    /** Bank servicing a given line. */
    unsigned bankOf(Addr line) const
    {
        return static_cast<unsigned>(line % cfg_.numBanks);
    }

    /** Lines a block [pc, pc+len) touches. */
    std::vector<Addr> linesTouched(Addr pc, unsigned len) const;

    /**
     * Would fetching both spans in one cycle conflict on a bank?
     * (Duplicate lines are free: one read serves both.)
     */
    bool bankConflict(Addr pc_a, unsigned len_a, Addr pc_b,
                      unsigned len_b) const;

  private:
    ICacheConfig cfg_;
};

} // namespace mbbp

#endif // MBBP_FETCH_ICACHE_MODEL_HH

/**
 * @file
 * N-block fetch engine: the Section 5 extension. "It is possible to
 * predict more than two blocks per cycle. In that case, the cost
 * grows proportionally to the number of blocks predicted. Another
 * block prediction basically requires another select table and
 * target array, and another read/write port to the PHT and BIT
 * tables."
 *
 * Generalizes the dual-block mechanism: per fetch group of N blocks,
 * the first block's address comes from the current last block's
 * BIT+PHT exit prediction; blocks 2..N replay selectors from N-1
 * select-table slots, all indexed by (GHR XOR last-block address),
 * resolved through N logical target arrays. Deeper slots verify one
 * pipeline stage later each, so their Table 3 penalties grow by one
 * cycle per slot (see PenaltyModel). Single selection only.
 */

#ifndef MBBP_FETCH_MULTI_BLOCK_ENGINE_HH
#define MBBP_FETCH_MULTI_BLOCK_ENGINE_HH

#include "fetch/engine_common.hh"
#include "fetch/engine_config.hh"
#include "fetch/penalty_model.hh"
#include "predict/history.hh"

namespace mbbp
{

/** Trace-driven N-block fetch simulator (N >= 1). */
class MultiBlockEngine
{
  public:
    /**
     * @param cfg Front-end configuration (doubleSelect unsupported).
     * @param num_blocks Blocks fetched per cycle (1..4).
     */
    MultiBlockEngine(const FetchEngineConfig &cfg, unsigned num_blocks);

    /**
     * Run the whole trace and return the metrics. Decodes a
     * throwaway replay artifact; use the DecodedTrace overload to
     * amortize the decode across runs.
     */
    FetchStats run(const InMemoryTrace &trace);

    /** Replay a precomputed artifact (byte-identical results). */
    FetchStats run(const DecodedTrace &dec);

    unsigned numBlocks() const { return numBlocks_; }

  private:
    FetchEngineConfig cfg_;
    unsigned numBlocks_;
};

} // namespace mbbp

#endif // MBBP_FETCH_MULTI_BLOCK_ENGINE_HH

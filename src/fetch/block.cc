#include "fetch/block.hh"

#include "util/logging.hh"

namespace mbbp
{

unsigned
FetchBlock::numConds() const
{
    unsigned n = 0;
    for (const auto &inst : *this)
        if (isCondBranch(inst.cls))
            ++n;
    return n;
}

unsigned
FetchBlock::numNotTakenConds() const
{
    unsigned n = 0;
    for (const auto &inst : *this)
        if (isCondBranch(inst.cls) && !inst.taken)
            ++n;
    return n;
}

uint64_t
FetchBlock::condOutcomes() const
{
    uint64_t bits_ = 0;
    unsigned n = 0;
    for (const auto &inst : *this) {
        if (isCondBranch(inst.cls) && n < 63) {
            bits_ |= static_cast<uint64_t>(inst.taken) << n;
            ++n;
        }
    }
    return bits_;
}

BlockStream::BlockStream(TraceSource &trace, const ICacheModel &cache)
    : trace_(trace), cache_(cache)
{
}

bool
BlockStream::next(OwnedBlock &blk)
{
    if (exhausted_)
        return false;
    if (!havePending_) {
        if (!trace_.next(pending_))
            return false;
        havePending_ = true;
    }

    blk.startPc = pending_.pc;
    blk.insts.clear();
    blk.exitIdx = -1;
    blk.nextPc = 0;

    unsigned capacity = cache_.capacityAt(blk.startPc);
    while (blk.size() < capacity) {
        blk.insts.push_back(pending_);
        bool ended = pending_.taken;
        if (!trace_.next(pending_)) {
            havePending_ = false;
            exhausted_ = true;
            // The successor of the final block is unknown; drop it so
            // every produced block can be scored.
            return false;
        }
        mbbp_assert(ended || pending_.pc ==
                        blk.insts.back().pc + 1,
                    "trace is not sequential within a block");
        if (ended) {
            blk.exitIdx = static_cast<int>(blk.size()) - 1;
            break;
        }
    }
    blk.nextPc = pending_.pc;
    ++produced_;
    return true;
}

} // namespace mbbp

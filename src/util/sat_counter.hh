/**
 * @file
 * An n-bit up/down saturating counter, the storage cell of every
 * pattern history table in the paper.
 *
 * For the canonical 2-bit counter the most significant bit is the
 * taken/not-taken prediction and the remaining state provides the
 * hysteresis the paper calls the "second chance": a counter at the
 * strong end that mispredicts once still makes the same prediction the
 * next time the branch is seen.
 */

#ifndef MBBP_UTIL_SAT_COUNTER_HH
#define MBBP_UTIL_SAT_COUNTER_HH

#include <cstdint>

#include "util/logging.hh"

namespace mbbp
{

/** An n-bit (1..8) up/down saturating counter. */
class SatCounter
{
  public:
    /**
     * @param nbits Counter width in bits (1..8).
     * @param initial Initial count; clamped to the legal range.
     */
    explicit SatCounter(unsigned nbits = 2, uint8_t initial = 0)
        : maxVal_(static_cast<uint8_t>((1u << nbits) - 1)),
          count_(initial > maxVal_ ? maxVal_ : initial)
    {
        mbbp_assert(nbits >= 1 && nbits <= 8,
                    "SatCounter width must be 1..8, got ", nbits);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (count_ < maxVal_)
            ++count_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (count_ > 0)
            --count_;
    }

    /** Update toward taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        taken ? increment() : decrement();
    }

    /** The taken/not-taken prediction: the counter's top half. */
    bool predictTaken() const { return count_ > maxVal_ / 2; }

    /**
     * The "second chance" property: true when a misprediction will not
     * flip the prediction (the counter sits at a strong end).
     */
    bool
    secondChance() const
    {
        return count_ == 0 || count_ == maxVal_;
    }

    uint8_t count() const { return count_; }
    uint8_t maxCount() const { return maxVal_; }

    /** Force the raw count (clamped); used by recovery paths. */
    void
    set(uint8_t value)
    {
        count_ = value > maxVal_ ? maxVal_ : value;
    }

    bool operator==(const SatCounter &other) const = default;

  private:
    uint8_t maxVal_;
    uint8_t count_;
};

} // namespace mbbp

#endif // MBBP_UTIL_SAT_COUNTER_HH

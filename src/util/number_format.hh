/**
 * @file
 * Locale-independent floating-point rendering for machine-readable
 * exports. The C and C++ standard formatting entry points
 * (ostringstream, snprintf, strtod) all honor LC_NUMERIC, so a
 * ","-decimal locale silently corrupts JSON/CSV documents;
 * std::to_chars / std::from_chars are defined to use '.' regardless
 * of locale, and the default to_chars form is the *shortest* string
 * that round-trips to the same double.
 */

#ifndef MBBP_UTIL_NUMBER_FORMAT_HH
#define MBBP_UTIL_NUMBER_FORMAT_HH

#include <charconv>
#include <string>
#include <system_error>

namespace mbbp
{

/** Shortest locale-independent form that parses back bit-exactly. */
inline std::string
formatDouble(double v)
{
    char buf[32];
    std::to_chars_result res =
        std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

/** printf "%.Pg"-equivalent, but locale-independent. */
inline std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::to_chars_result res =
        std::to_chars(buf, buf + sizeof buf, v,
                      std::chars_format::general, precision);
    return std::string(buf, res.ptr);
}

/**
 * Locale-independent strtod over exactly [first, last): parses what
 * the JSON grammar produces. Out-of-range magnitudes saturate to
 * +/-HUGE_VAL (matching strtod), so callers keep their semantics
 * under any locale.
 */
double parseDouble(const char *first, const char *last);

} // namespace mbbp

#endif // MBBP_UTIL_NUMBER_FORMAT_HH

/**
 * @file
 * Lightweight statistics primitives: named counters, ratios and
 * distributions, registered in a StatGroup so engines can dump a
 * uniform report. Loosely modeled on gem5's stats package, minus the
 * formula DSL.
 */

#ifndef MBBP_UTIL_STATS_HH
#define MBBP_UTIL_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mbbp
{

/** A named event counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void inc(uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    uint64_t value_ = 0;
};

/** Running distribution: count / sum / min / max / mean. */
class DistStat
{
  public:
    DistStat() = default;
    explicit DistStat(std::string name) : name_(std::move(name)) {}

    void sample(double v);
    void reset();

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram over [0, nbuckets); out-of-range clamps. */
class Histogram
{
  public:
    Histogram() = default;
    Histogram(std::string name, std::size_t nbuckets);

    void sample(std::size_t bucket, uint64_t n = 1);
    void reset();

    uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    uint64_t total() const { return total_; }
    double mean() const;
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<uint64_t> buckets_;
    uint64_t total_ = 0;
};

/** Helper: a safe ratio (0 when the denominator is 0). */
double ratio(double num, double den);

/** Helper: percentage form of ratio(). */
double percent(double num, double den);

} // namespace mbbp

#endif // MBBP_UTIL_STATS_HH

/**
 * @file
 * Small bit-manipulation helpers used throughout the predictors.
 */

#ifndef MBBP_UTIL_BITOPS_HH
#define MBBP_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

#include "util/logging.hh"

namespace mbbp
{

/** A mask with the low @p nbits bits set. @p nbits must be <= 64. */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~0ULL : ((1ULL << nbits) - 1);
}

/** Extract bits [first, first+nbits) of @p val. */
constexpr uint64_t
bits(uint64_t val, unsigned first, unsigned nbits)
{
    return (val >> first) & mask(nbits);
}

/** True iff @p val is a power of two (and non-zero). */
constexpr bool
isPowerOf2(uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** floor(log2(val)); @p val must be non-zero. */
constexpr unsigned
floorLog2(uint64_t val)
{
    return 63u - static_cast<unsigned>(std::countl_zero(val));
}

/** ceil(log2(val)); @p val must be non-zero. */
constexpr unsigned
ceilLog2(uint64_t val)
{
    return val <= 1 ? 0 : floorLog2(val - 1) + 1;
}

/** Round @p val down to a multiple of @p align (a power of two). */
constexpr uint64_t
alignDown(uint64_t val, uint64_t align)
{
    return val & ~(align - 1);
}

/** Round @p val up to a multiple of @p align (a power of two). */
constexpr uint64_t
alignUp(uint64_t val, uint64_t align)
{
    return (val + align - 1) & ~(align - 1);
}

/**
 * Fold @p val down to @p nbits bits by repeated XOR of nbits-wide
 * chunks. Used to hash wide addresses into table indexes.
 */
constexpr uint64_t
xorFold(uint64_t val, unsigned nbits)
{
    if (nbits == 0 || nbits >= 64)
        return val;
    uint64_t out = 0;
    while (val != 0) {
        out ^= val & mask(nbits);
        val >>= nbits;
    }
    return out;
}

} // namespace mbbp

#endif // MBBP_UTIL_BITOPS_HH

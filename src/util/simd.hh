/**
 * @file
 * Runtime SIMD dispatch for the structure-of-arrays replay kernels.
 *
 * The batched sweep kernel ships three instantiations of the same
 * lane-state code: a portable scalar build (the single source of
 * truth for semantics), an AVX2 build, and an AVX-512 build. Which
 * one runs is decided once per process from CPUID -- never at
 * compile time -- so one binary serves every x86-64 host and
 * non-x86 builds simply never leave Level::Scalar.
 *
 * setLevel() exists for the --no-simd escape hatch and for tests
 * that force each kernel variant; it clamps to what the host
 * actually supports, so forcing a wider level than the CPU has is a
 * safe no-op. The MBBP_SIMD environment variable (scalar|avx2|
 * avx512) applies the same override before main() reads any flags,
 * which is how the CI portable-fallback job pins the scalar path on
 * hardware that would otherwise dispatch wide.
 */

#ifndef MBBP_UTIL_SIMD_HH
#define MBBP_UTIL_SIMD_HH

#include <cstdint>

namespace mbbp::simd
{

/** Kernel variants, narrowest to widest. */
enum class Level : uint8_t
{
    Scalar = 0, //!< plain loops, any CPU
    Avx2,       //!< 4 x 64-bit lanes per vector
    Avx512      //!< 8 x 64-bit lanes per vector (F+BW+VL+DQ)
};

/** Widest level this host supports (cached CPUID probe). */
Level detect();

/** The level the kernels dispatch on: detect() unless overridden
 *  by setLevel() or the MBBP_SIMD environment variable. */
Level activeLevel();

/** Override the dispatch level, clamped to detect(). */
void setLevel(Level level);

/** Short name for logs/JSON: "scalar", "avx2", "avx512". */
const char *levelName(Level level);

/** 64-bit lanes per vector at @p level (1, 4 or 8) -- the value the
 *  sweep.simd_width gauge reports. */
unsigned vectorLanes(Level level);

} // namespace mbbp::simd

#endif // MBBP_UTIL_SIMD_HH

#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace mbbp
{

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    mbbp_assert(!header.empty(), "table header may not be empty");
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    mbbp_assert(row.size() == header_.size(),
                "row has ", row.size(), " cells, header has ",
                header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };

    emit(header_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 == widths.size() ? 0 : 2);
    os << std::string(rule, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::renderCsv() const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (char ch : cell) {
            if (ch == '"')
                quoted += '"';
            quoted += ch;
        }
        quoted += '"';
        return quoted;
    };

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << quote(cells[c])
               << (c + 1 == cells.size() ? "\n" : ",");
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::fmt(uint64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::fmt(int64_t v)
{
    return std::to_string(v);
}

} // namespace mbbp

#include "util/number_format.hh"

#include <cmath>

namespace mbbp
{

double
parseDouble(const char *first, const char *last)
{
    double d = 0.0;
    std::from_chars_result res = std::from_chars(first, last, d);
    if (res.ec == std::errc())
        return d;
    if (res.ec == std::errc::result_out_of_range) {
        // Mirror strtod's saturation: overflow gives +/-HUGE_VAL,
        // underflow flushes toward zero. from_chars leaves the value
        // unspecified, so classify by shape: a sub-range magnitude
        // either starts "0." or carries a negative exponent.
        const char *p = first;
        bool neg = p != last && *p == '-';
        if (neg)
            ++p;
        bool tiny = (last - p >= 2 && p[0] == '0' && p[1] == '.');
        for (const char *q = p; !tiny && q + 1 < last; ++q)
            if ((*q == 'e' || *q == 'E') && q[1] == '-')
                tiny = true;
        double mag = tiny ? 0.0 : HUGE_VAL;
        return neg ? -mag : mag;
    }
    // Malformed input; callers validate the grammar before calling.
    return 0.0;
}

} // namespace mbbp

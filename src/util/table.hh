/**
 * @file
 * Plain-text result tables. Every bench binary prints the rows the
 * paper's tables/figures report through this one formatter, so output
 * stays uniform and is easy to diff against EXPERIMENTS.md.
 */

#ifndef MBBP_UTIL_TABLE_HH
#define MBBP_UTIL_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mbbp
{

/** A column-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the column headers; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns and a rule under the header. */
    std::string render() const;

    /** Render as CSV (no title, header first). */
    std::string renderCsv() const;

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return header_.size(); }

    /** Format helpers for cells. */
    static std::string fmt(double v, int precision = 2);
    static std::string fmt(uint64_t v);
    static std::string fmt(int64_t v);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mbbp

#endif // MBBP_UTIL_TABLE_HH

#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace mbbp
{

Rng::Rng(uint64_t seed)
    : state_(seed ? seed : 0x9e3779b97f4a7c15ULL)
{
}

uint64_t
Rng::next()
{
    // xorshift64* (Vigna); period 2^64 - 1.
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    mbbp_assert(bound != 0, "uniformInt bound must be non-zero");
    // Modulo bias is negligible for the bounds used here (<< 2^32).
    return next() % bound;
}

int64_t
Rng::uniformRange(int64_t lo, int64_t hi)
{
    mbbp_assert(lo <= hi, "uniformRange requires lo <= hi");
    return lo + static_cast<int64_t>(
        uniformInt(static_cast<uint64_t>(hi - lo + 1)));
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    return uniformReal() < p;
}

std::size_t
Rng::weightedPick(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        mbbp_assert(w >= 0.0, "weights must be non-negative");
        total += w;
    }
    mbbp_assert(total > 0.0, "at least one weight must be positive");

    double r = uniformReal() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

uint64_t
Rng::geometric(double p, uint64_t cap)
{
    mbbp_assert(p > 0.0 && p <= 1.0, "geometric requires 0 < p <= 1");
    uint64_t n = 0;
    while (n < cap && !bernoulli(p))
        ++n;
    return n;
}

} // namespace mbbp

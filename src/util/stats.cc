#include "util/stats.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mbbp
{

void
DistStat::sample(double v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
DistStat::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

Histogram::Histogram(std::string name, std::size_t nbuckets)
    : name_(std::move(name)), buckets_(nbuckets, 0)
{
    mbbp_assert(nbuckets > 0, "Histogram needs at least one bucket");
}

void
Histogram::sample(std::size_t bucket, uint64_t n)
{
    if (bucket >= buckets_.size())
        bucket = buckets_.size() - 1;
    buckets_[bucket] += n;
    total_ += n;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double weighted = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        weighted += static_cast<double>(i) *
                    static_cast<double>(buckets_[i]);
    return weighted / static_cast<double>(total_);
}

double
ratio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

double
percent(double num, double den)
{
    return 100.0 * ratio(num, den);
}

} // namespace mbbp

/**
 * @file
 * A small, fast, seedable PRNG (xorshift64*) plus the sampling helpers
 * the synthetic workload generator needs. Deterministic across
 * platforms so generated traces are reproducible.
 */

#ifndef MBBP_UTIL_RANDOM_HH
#define MBBP_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace mbbp
{

/** xorshift64* generator; deterministic and seedable. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint64_t uniformInt(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial with probability @p p of true. */
    bool bernoulli(double p);

    /**
     * Sample an index according to non-negative @p weights.
     * At least one weight must be positive.
     */
    std::size_t weightedPick(const std::vector<double> &weights);

    /** Geometric-ish sample: number of failures before success(p),
     *  capped at @p cap. */
    uint64_t geometric(double p, uint64_t cap);

  private:
    uint64_t state_;
};

} // namespace mbbp

#endif // MBBP_UTIL_RANDOM_HH

/**
 * @file
 * Error and status reporting helpers in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  -- an internal invariant was violated (a simulator bug);
 *             aborts so a debugger or core dump can be used.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid argument); exits cleanly.
 * warn()   -- something may not behave as the user expects.
 * inform() -- plain status output.
 */

#ifndef MBBP_UTIL_LOGGING_HH
#define MBBP_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace mbbp
{

namespace logging_detail
{

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace logging_detail

/** Abort with a message; use for internal invariant violations. */
#define mbbp_panic(...) \
    ::mbbp::logging_detail::panicImpl(__FILE__, __LINE__, \
        ::mbbp::logging_detail::concat(__VA_ARGS__))

/** Exit with a message; use for user-caused errors. */
#define mbbp_fatal(...) \
    ::mbbp::logging_detail::fatalImpl(__FILE__, __LINE__, \
        ::mbbp::logging_detail::concat(__VA_ARGS__))

/** Warn the user but keep running. */
#define mbbp_warn(...) \
    ::mbbp::logging_detail::warnImpl( \
        ::mbbp::logging_detail::concat(__VA_ARGS__))

/** Plain status output. */
#define mbbp_inform(...) \
    ::mbbp::logging_detail::informImpl( \
        ::mbbp::logging_detail::concat(__VA_ARGS__))

/** panic() unless the given condition holds. */
#define mbbp_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::mbbp::logging_detail::panicImpl(__FILE__, __LINE__, \
                ::mbbp::logging_detail::concat("assertion '" #cond \
                    "' failed. " __VA_OPT__(,) __VA_ARGS__)); \
        } \
    } while (0)

} // namespace mbbp

#endif // MBBP_UTIL_LOGGING_HH

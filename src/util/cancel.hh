/**
 * @file
 * Cooperative cancellation: a CancelToken is a cheap, copyable handle
 * on one shared "stop requested" flag. Producers (a signal handler, a
 * service's cancel endpoint) call cancel(); long-running work checks
 * cancelled() at natural safe points -- between sweep jobs, between
 * per-program replays -- and unwinds by throwing CancelledError.
 *
 * request() is async-signal-safe (one relaxed atomic store on a
 * lock-free flag), so a SIGINT/SIGTERM handler may cancel the same
 * token the sweep runner is polling.
 */

#ifndef MBBP_UTIL_CANCEL_HH
#define MBBP_UTIL_CANCEL_HH

#include <atomic>
#include <memory>
#include <stdexcept>

namespace mbbp
{

/** Thrown by cancellation-aware work when its token fires. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Copyable handle on a shared cancellation flag (never null). */
class CancelToken
{
  public:
    CancelToken()
        : flag_(std::make_shared<std::atomic<bool>>(false))
    {
    }

    /** Request cancellation. Idempotent; async-signal-safe. */
    void request() const
    {
        flag_->store(true, std::memory_order_relaxed);
    }

    bool cancelled() const
    {
        return flag_->load(std::memory_order_relaxed);
    }

    /** Throw CancelledError(@p what) if cancellation was requested. */
    void throwIfCancelled(const char *what) const
    {
        if (cancelled())
            throw CancelledError(what);
    }

    /** Do @p a and @p b observe the same flag? */
    bool sameAs(const CancelToken &other) const
    {
        return flag_ == other.flag_;
    }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

} // namespace mbbp

#endif // MBBP_UTIL_CANCEL_HH

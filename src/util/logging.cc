#include "util/logging.hh"

#include <cstdlib>
#include <iostream>

namespace mbbp
{
namespace logging_detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace logging_detail
} // namespace mbbp

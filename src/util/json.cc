#include "util/json.hh"

#include <cctype>
#include <cmath>

#include "util/logging.hh"
#include "util/number_format.hh"

namespace mbbp
{

JsonWriter::JsonWriter() = default;

void
JsonWriter::comma()
{
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
}

void
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    needComma_.push_back(false);
}

void
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    out_ += '{';
    needComma_.push_back(false);
}

void
JsonWriter::endObject()
{
    mbbp_assert(!needComma_.empty(), "endObject with nothing open");
    out_ += '}';
    needComma_.pop_back();
}

void
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    needComma_.push_back(false);
}

void
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    out_ += '[';
    needComma_.push_back(false);
}

void
JsonWriter::endArray()
{
    mbbp_assert(!needComma_.empty(), "endArray with nothing open");
    out_ += ']';
    needComma_.pop_back();
}

void
JsonWriter::value(const std::string &k, const std::string &v)
{
    key(k);
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
}

void
JsonWriter::value(const std::string &k, const char *v)
{
    value(k, std::string(v));
}

void
JsonWriter::value(const std::string &k, double v)
{
    key(k);
    // Shortest round-trip form, '.'-decimal under any locale: the
    // stream/printf paths honor LC_NUMERIC and default to 6
    // significant digits, which loses data and can emit invalid
    // JSON under a ","-decimal locale.
    if (std::isfinite(v))
        out_ += formatDouble(v);
    else
        out_ += "null";
}

void
JsonWriter::value(const std::string &k, uint64_t v)
{
    key(k);
    out_ += std::to_string(v);
}

void
JsonWriter::value(const std::string &k, int64_t v)
{
    key(k);
    out_ += std::to_string(v);
}

void
JsonWriter::value(const std::string &k, bool v)
{
    key(k);
    out_ += v ? "true" : "false";
}

void
JsonWriter::element(const std::string &v)
{
    comma();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
}

void
JsonWriter::element(double v)
{
    comma();
    if (std::isfinite(v))
        out_ += formatDouble(v);
    else
        out_ += "null";
}

void
JsonWriter::element(uint64_t v)
{
    comma();
    out_ += std::to_string(v);
}

std::string
JsonWriter::str() const
{
    mbbp_assert(needComma_.empty(),
                "JSON document has unclosed containers");
    return out_;
}

JsonParseError::JsonParseError(const std::string &what,
                               std::size_t line, std::size_t column)
    : std::runtime_error("JSON parse error at line " +
                         std::to_string(line) + ", column " +
                         std::to_string(column) + ": " + what),
      line_(line), column_(column)
{
}

const char *
JsonValue::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Bool: return "boolean";
      case Kind::Number: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

namespace
{

[[noreturn]] void
wrongKind(const char *wanted, JsonValue::Kind got)
{
    throw std::logic_error(std::string("JSON value is ") +
                           JsonValue::kindName(got) + ", not " +
                           wanted);
}

} // namespace

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        wrongKind("boolean", kind_);
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        wrongKind("number", kind_);
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        wrongKind("string", kind_);
    return text_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        wrongKind("array", kind_);
    return items_;
}

const std::string &
JsonValue::keyAt(std::size_t i) const
{
    if (kind_ != Kind::Object)
        wrongKind("object", kind_);
    return keys_.at(i);
}

const JsonValue &
JsonValue::memberAt(std::size_t i) const
{
    if (kind_ != Kind::Object)
        wrongKind("object", kind_);
    return items_.at(i);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        wrongKind("object", kind_);
    for (std::size_t i = 0; i < keys_.size(); ++i)
        if (keys_[i] == key)
            return &items_[i];
    return nullptr;
}

std::string
JsonValue::scalarText() const
{
    switch (kind_) {
      case Kind::Null: return "null";
      case Kind::Bool: return bool_ ? "true" : "false";
      case Kind::Number: return text_;      // the source lexeme
      case Kind::String: return text_;
      default: wrongKind("scalar", kind_);
    }
}

/** Recursive-descent parser over the whole document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text)
        : text_(text)
    {
    }

    JsonValue parseDocument()
    {
        JsonValue v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw JsonParseError(what, line, col);
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skipWhitespace()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    void expect(char c)
    {
        if (atEnd() || peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume(char c)
    {
        if (!atEnd() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (atEnd() || peek() != *p)
                fail(std::string("invalid literal (expected \"") +
                     word + "\")");
            ++pos_;
        }
    }

    JsonValue parseValue()
    {
        skipWhitespace();
        if (atEnd())
            fail("unexpected end of input");
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': {
            literal("true");
            JsonValue v;
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = true;
            return v;
          }
          case 'f': {
            literal("false");
            JsonValue v;
            v.kind_ = JsonValue::Kind::Bool;
            return v;
          }
          case 'n':
            literal("null");
            return JsonValue();
          default:
            return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        skipWhitespace();
        if (consume('}'))
            return v;
        for (;;) {
            skipWhitespace();
            if (atEnd() || peek() != '"')
                fail("expected object key (a string)");
            std::string key = parseString().asString();
            if (v.find(key))
                fail("duplicate object key \"" + key + "\"");
            skipWhitespace();
            expect(':');
            v.keys_.push_back(std::move(key));
            v.items_.push_back(parseValue());
            skipWhitespace();
            if (consume('}'))
                return v;
            expect(',');
        }
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        skipWhitespace();
        if (consume(']'))
            return v;
        for (;;) {
            v.items_.push_back(parseValue());
            skipWhitespace();
            if (consume(']'))
                return v;
            expect(',');
        }
    }

    JsonValue parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (atEnd())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += parseUnicodeEscape(); break;
              default: fail("invalid escape sequence");
            }
        }
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        v.text_ = std::move(out);
        return v;
    }

    /** \uXXXX, encoded back to UTF-8 (surrogate pairs supported). */
    std::string parseUnicodeEscape()
    {
        uint32_t cp = parseHex4();
        if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: require the low half.
            if (!consume('\\') || !consume('u'))
                fail("unpaired surrogate escape");
            uint32_t lo = parseHex4();
            if (lo < 0xdc00 || lo > 0xdfff)
                fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
        } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate escape");
        }
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
        return out;
    }

    uint32_t parseHex4()
    {
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                fail("truncated \\u escape");
            char c = text_[pos_++];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<uint32_t>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return value;
    }

    JsonValue parseNumber()
    {
        std::size_t start = pos_;
        consume('-');
        if (atEnd() || !std::isdigit(
                           static_cast<unsigned char>(peek())))
            fail("invalid number");
        if (!consume('0'))
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        if (consume('.')) {
            if (atEnd() || !std::isdigit(
                               static_cast<unsigned char>(peek())))
                fail("digits required after decimal point");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (consume('e') || consume('E')) {
            if (!consume('+'))
                consume('-');
            if (atEnd() || !std::isdigit(
                               static_cast<unsigned char>(peek())))
                fail("digits required in exponent");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        v.text_ = text_.substr(start, pos_ - start);
        // Locale-independent strtod: under a ","-decimal locale,
        // strtod("0.25") would stop at the '.' and yield 0.
        v.number_ = parseDouble(v.text_.data(),
                                v.text_.data() + v.text_.size());
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace mbbp

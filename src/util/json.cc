#include "util/json.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace mbbp
{

JsonWriter::JsonWriter() = default;

void
JsonWriter::comma()
{
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
}

void
JsonWriter::key(const std::string &k)
{
    comma();
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
}

void
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    needComma_.push_back(false);
}

void
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    out_ += '{';
    needComma_.push_back(false);
}

void
JsonWriter::endObject()
{
    mbbp_assert(!needComma_.empty(), "endObject with nothing open");
    out_ += '}';
    needComma_.pop_back();
}

void
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    needComma_.push_back(false);
}

void
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    out_ += '[';
    needComma_.push_back(false);
}

void
JsonWriter::endArray()
{
    mbbp_assert(!needComma_.empty(), "endArray with nothing open");
    out_ += ']';
    needComma_.pop_back();
}

void
JsonWriter::value(const std::string &k, const std::string &v)
{
    key(k);
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
}

void
JsonWriter::value(const std::string &k, const char *v)
{
    value(k, std::string(v));
}

void
JsonWriter::value(const std::string &k, double v)
{
    key(k);
    if (std::isfinite(v)) {
        std::ostringstream os;
        os << v;
        out_ += os.str();
    } else {
        out_ += "null";
    }
}

void
JsonWriter::value(const std::string &k, uint64_t v)
{
    key(k);
    out_ += std::to_string(v);
}

void
JsonWriter::value(const std::string &k, int64_t v)
{
    key(k);
    out_ += std::to_string(v);
}

void
JsonWriter::value(const std::string &k, bool v)
{
    key(k);
    out_ += v ? "true" : "false";
}

void
JsonWriter::element(const std::string &v)
{
    comma();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
}

void
JsonWriter::element(double v)
{
    comma();
    if (std::isfinite(v)) {
        std::ostringstream os;
        os << v;
        out_ += os.str();
    } else {
        out_ += "null";
    }
}

void
JsonWriter::element(uint64_t v)
{
    comma();
    out_ += std::to_string(v);
}

std::string
JsonWriter::str() const
{
    mbbp_assert(needComma_.empty(),
                "JSON document has unclosed containers");
    return out_;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace mbbp

/**
 * @file
 * Minimal JSON support with no third-party dependency: a streaming
 * writer (objects, arrays, scalars, escaping) for exporting
 * simulation results, and a small recursive-descent parser
 * (JsonValue) for reading configuration such as sweep specifications.
 */

#ifndef MBBP_UTIL_JSON_HH
#define MBBP_UTIL_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mbbp
{

/** Streaming JSON document builder. */
class JsonWriter
{
  public:
    JsonWriter();

    /** @{ Structure. Keys apply inside objects only. */
    void beginObject();
    void beginObject(const std::string &key);
    void endObject();
    void beginArray();
    void beginArray(const std::string &key);
    void endArray();
    /** @} */

    /** @{ Scalars. */
    void value(const std::string &key, const std::string &v);
    void value(const std::string &key, const char *v);
    void value(const std::string &key, double v);
    void value(const std::string &key, uint64_t v);
    void value(const std::string &key, int64_t v);
    void value(const std::string &key, bool v);
    /** Array-element scalars (no key). */
    void element(const std::string &v);
    void element(double v);
    void element(uint64_t v);
    /** @} */

    /** The document; panics if containers are still open. */
    std::string str() const;

    /** Escape one string per RFC 8259. */
    static std::string escape(const std::string &s);

  private:
    void comma();
    void key(const std::string &k);

    std::string out_;
    std::vector<bool> needComma_;   //!< per open container
};

/** Parse failure, with 1-based source position. */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &what, std::size_t line,
                   std::size_t column);

    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }

  private:
    std::size_t line_;
    std::size_t column_;
};

/**
 * A parsed JSON document node.
 *
 * Objects preserve the member order of the source text, which gives
 * downstream consumers (e.g. sweep-grid expansion) a deterministic
 * iteration order that matches what the user wrote.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    JsonValue() = default;      //!< null

    /** Parse a complete document; throws JsonParseError. */
    static JsonValue parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Human-readable name of @p kind ("object", "number", ...). */
    static const char *kindName(Kind kind);

    /** @{ Scalar access; throws std::logic_error on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    /** @} */

    /** Array elements; throws unless isArray(). */
    const std::vector<JsonValue> &items() const;

    /** Number of members (object) or elements (array). */
    std::size_t size() const { return items_.size(); }

    /** Key of the i-th member in source order; requires isObject(). */
    const std::string &keyAt(std::size_t i) const;

    /** Value of the i-th member in source order. */
    const JsonValue &memberAt(std::size_t i) const;

    /** Member lookup; nullptr if absent. Throws unless isObject(). */
    const JsonValue *find(const std::string &key) const;

    /** The source text of a number ("0.25"), or a rendering of any
     *  scalar -- what sweep params print as. */
    std::string scalarText() const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string text_;          //!< string value, or number lexeme
    std::vector<std::string> keys_;     //!< object member keys
    std::vector<JsonValue> items_;      //!< elements / member values
};

} // namespace mbbp

#endif // MBBP_UTIL_JSON_HH

/**
 * @file
 * A minimal JSON writer (objects, arrays, scalars, escaping) so
 * simulation results can be exported to downstream tooling without a
 * third-party dependency. Write-only by design.
 */

#ifndef MBBP_UTIL_JSON_HH
#define MBBP_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mbbp
{

/** Streaming JSON document builder. */
class JsonWriter
{
  public:
    JsonWriter();

    /** @{ Structure. Keys apply inside objects only. */
    void beginObject();
    void beginObject(const std::string &key);
    void endObject();
    void beginArray();
    void beginArray(const std::string &key);
    void endArray();
    /** @} */

    /** @{ Scalars. */
    void value(const std::string &key, const std::string &v);
    void value(const std::string &key, const char *v);
    void value(const std::string &key, double v);
    void value(const std::string &key, uint64_t v);
    void value(const std::string &key, int64_t v);
    void value(const std::string &key, bool v);
    /** Array-element scalars (no key). */
    void element(const std::string &v);
    void element(double v);
    void element(uint64_t v);
    /** @} */

    /** The document; panics if containers are still open. */
    std::string str() const;

    /** Escape one string per RFC 8259. */
    static std::string escape(const std::string &s);

  private:
    void comma();
    void key(const std::string &k);

    std::string out_;
    std::vector<bool> needComma_;   //!< per open container
};

} // namespace mbbp

#endif // MBBP_UTIL_JSON_HH

#include "util/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mbbp::simd
{

namespace
{

Level
detectUncached()
{
#if defined(MBBP_SIMD_X86)
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512dq"))
        return Level::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
#endif
    return Level::Scalar;
}

Level
clampToDetected(Level level)
{
    return level <= detect() ? level : detect();
}

Level
initialLevel()
{
    if (const char *env = std::getenv("MBBP_SIMD")) {
        if (std::strcmp(env, "scalar") == 0)
            return Level::Scalar;
        if (std::strcmp(env, "avx2") == 0)
            return clampToDetected(Level::Avx2);
        if (std::strcmp(env, "avx512") == 0)
            return clampToDetected(Level::Avx512);
        // Unknown value: fall through to autodetection.
    }
    return detect();
}

std::atomic<Level> &
activeSlot()
{
    static std::atomic<Level> active{ initialLevel() };
    return active;
}

} // namespace

Level
detect()
{
    static const Level detected = detectUncached();
    return detected;
}

Level
activeLevel()
{
    return activeSlot().load(std::memory_order_relaxed);
}

void
setLevel(Level level)
{
    activeSlot().store(clampToDetected(level),
                       std::memory_order_relaxed);
}

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Scalar:
        return "scalar";
      case Level::Avx2:
        return "avx2";
      case Level::Avx512:
        return "avx512";
    }
    return "?";
}

unsigned
vectorLanes(Level level)
{
    switch (level) {
      case Level::Avx512:
        return 8;
      case Level::Avx2:
        return 4;
      case Level::Scalar:
        break;
    }
    return 1;
}

} // namespace mbbp::simd

/**
 * @file
 * NLS-style target array (Calder & Grunwald's Next Line Set concept,
 * expanded to whole blocks per Section 2).
 *
 * Direct-mapped and tag-less: a probe always returns whatever target
 * was last written at the index, so aliasing silently yields wrong
 * targets (misfetches) rather than detectable misses. Set prediction
 * is not modeled -- as the paper notes, the evaluated configuration
 * "is really a direct-mapped tag-less BTB" holding target addresses.
 *
 * One NLS block entry holds a target per block position for *both*
 * logical arrays (first and second target), matching Table 5's
 * accounting ("an NLS entry has two separate targets").
 */

#ifndef MBBP_PREDICT_NLS_HH
#define MBBP_PREDICT_NLS_HH

#include <vector>

#include "predict/target_array.hh"

namespace mbbp
{

/** Direct-mapped tag-less dual target array. */
class NlsTargetArray : public TargetArray
{
  public:
    /**
     * @param num_entries Block entries (power of two).
     * @param line_size Instructions per line (positions per entry).
     * @param dual Keep a second-target array too.
     */
    NlsTargetArray(std::size_t num_entries, unsigned line_size,
                   bool dual);

    /**
     * N logical target arrays, for predicting N blocks per cycle
     * (Section 5: each extra block needs another target array).
     */
    static NlsTargetArray withArrays(std::size_t num_entries,
                                     unsigned line_size,
                                     unsigned num_arrays);

    TargetPrediction predict(Addr block_addr, unsigned pos,
                             unsigned which) const override;
    void update(Addr block_addr, unsigned pos, unsigned which,
                Addr target, bool is_call) override;
    uint64_t storageBits(unsigned line_index_bits) const override;

    std::size_t numEntries() const { return numEntries_; }

  private:
    struct Slot
    {
        Addr target = 0;
        bool isCall = false;
        bool written = false;
    };

    std::size_t indexOf(Addr block_addr) const;
    std::size_t slotIndex(std::size_t idx, unsigned pos,
                          unsigned which) const;

    std::size_t numEntries_;
    unsigned lineSize_;
    unsigned numArrays_;
    std::vector<Slot> slots_;   //!< [(idx*arrays + which)*L + pos]
};

} // namespace mbbp

#endif // MBBP_PREDICT_NLS_HH

/**
 * @file
 * Set-associative Branch Target Buffer, block-organized per Section 2:
 * entries are indexed and tag-checked against the instruction *block*
 * address and hold a target per block position. For dual-block
 * prediction the tag additionally encodes the target number (first or
 * second), so one physical structure serves both logical arrays
 * (Table 5: "a BTB entry can be for the first or second target").
 *
 * Replacement is LRU within a set, as in the paper's Table 5 sweep.
 */

#ifndef MBBP_PREDICT_BTB_HH
#define MBBP_PREDICT_BTB_HH

#include <cstdint>
#include <vector>

#include "predict/target_array.hh"

namespace mbbp
{

/** 4-way (configurable) LRU block BTB. */
class Btb : public TargetArray
{
  public:
    /**
     * @param num_block_entries Total block entries (sets * ways).
     * @param assoc Ways per set.
     * @param line_size Instructions per line (positions per entry).
     */
    Btb(std::size_t num_block_entries, unsigned assoc,
        unsigned line_size);

    TargetPrediction predict(Addr block_addr, unsigned pos,
                             unsigned which) const override;
    void update(Addr block_addr, unsigned pos, unsigned which,
                Addr target, bool is_call) override;
    uint64_t storageBits(unsigned line_index_bits) const override;

    std::size_t numBlockEntries() const { return entries_.size(); }
    unsigned assoc() const { return assoc_; }

  private:
    struct Slot
    {
        Addr target = 0;
        bool isCall = false;
        bool valid = false;
    };

    struct Entry
    {
        uint64_t tag = 0;       //!< line address | target number
        bool valid = false;
        mutable uint64_t lastUse = 0;   //!< LRU stamp (probes touch it)
        std::vector<Slot> slots;
    };

    uint64_t tagOf(Addr block_addr, unsigned which) const;
    std::size_t setOf(Addr block_addr) const;

    /** Find the way holding the tag, or -1. */
    int findWay(std::size_t set, uint64_t tag) const;

    unsigned assoc_;
    unsigned lineSize_;
    std::size_t numSets_;
    std::vector<Entry> entries_;    //!< [set * assoc + way]
    mutable uint64_t useClock_ = 0;
};

} // namespace mbbp

#endif // MBBP_PREDICT_BTB_HH

#include "predict/branch_address_cache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace mbbp
{

double
BacStats::condAccuracy() const
{
    return condBranches == 0
        ? 1.0
        : 1.0 - static_cast<double>(condMispredicts) /
                static_cast<double>(condBranches);
}

double
BacStats::phtLookupsPerCycle() const
{
    return ratio(static_cast<double>(phtLookups),
                 static_cast<double>(cycles));
}

BranchAddressCache::BranchAddressCache(const BacConfig &cfg)
    : cfg_(cfg), history_(cfg.historyBits)
{
    mbbp_assert(isPowerOf2(cfg_.bacEntries),
                "BAC entries must be a power of two");
    mbbp_assert(cfg_.branchesPerCycle >= 1 &&
                cfg_.branchesPerCycle <= 4,
                "1..4 branch predictions per cycle supported");
    pht_.assign(std::size_t{1} << cfg_.historyBits,
                SatCounter(2, 2));
    bac_.resize(cfg_.bacEntries);
}

std::size_t
BranchAddressCache::indexOf(Addr pc) const
{
    return pc & (cfg_.bacEntries - 1);
}

uint64_t
BranchAddressCache::lookupsPerCycle(unsigned k)
{
    return (uint64_t{1} << k) - 1;
}

uint64_t
BranchAddressCache::storageBits(unsigned addr_bits) const
{
    // Each entry must provide the fan-out of 2^k possible basic-block
    // starting addresses for k predictions, plus a tag.
    uint64_t fanout = uint64_t{1} << cfg_.branchesPerCycle;
    uint64_t tag_bits = 30;
    return cfg_.bacEntries * (fanout * addr_bits + tag_bits);
}

BacStats
BranchAddressCache::simulate(const InMemoryTrace &trace)
{
    BacStats st;
    TraceCursor cursor(trace);

    // Segment the stream into basic blocks: a block ends at the first
    // control instruction (taken or not) or at the width cap.
    struct BasicBlock
    {
        Addr start = 0;
        Addr nextStart = 0;
        Addr branchPc = 0;
        Addr takenTarget = 0;
        bool hasBranch = false;
        bool isCond = false;
        bool taken = false;
    };

    DynInst inst;
    bool pending = cursor.next(inst);
    unsigned blocks_this_cycle = 0;

    while (pending) {
        BasicBlock bb;
        bb.start = inst.pc;
        unsigned len = 0;
        while (pending && len < cfg_.blockWidth) {
            ++len;
            bool control = isControl(inst.cls);
            if (control) {
                bb.hasBranch = true;
                bb.branchPc = inst.pc;
                bb.isCond = isCondBranch(inst.cls);
                bb.taken = inst.taken;
                bb.takenTarget = inst.target;
                pending = cursor.next(inst);
                break;
            }
            pending = cursor.next(inst);
        }
        if (!pending)
            break;      // cannot score the final partial block
        bb.nextStart = inst.pc;
        ++st.basicBlocks;

        if (++blocks_this_cycle == 1) {
            ++st.cycles;
            st.phtLookups += lookupsPerCycle(cfg_.branchesPerCycle);
        }
        if (blocks_this_cycle == cfg_.branchesPerCycle)
            blocks_this_cycle = 0;

        // Predict this block's successor from the BAC + PHT.
        BacEntry &e = bac_[indexOf(bb.start)];
        Addr predicted;
        bool predicted_dir = false;
        if (!e.valid || e.tag != bb.start) {
            ++st.bacMisses;
            predicted = 0;      // no address available
        } else if (e.isCond) {
            std::size_t idx = history_.index(e.branchPc, 0);
            predicted_dir = pht_[idx].predictTaken();
            predicted = predicted_dir ? e.takenTarget : e.fallThrough;
        } else {
            predicted = e.takenTarget;
        }

        if (bb.isCond) {
            ++st.condBranches;
            bool usable = e.valid && e.tag == bb.start && e.isCond;
            if (!usable || predicted_dir != bb.taken)
                ++st.condMispredicts;
            // Train the PHT with the actual outcome.
            std::size_t idx = history_.index(bb.branchPc, 0);
            pht_[idx].update(bb.taken);
            history_.shiftIn(bb.taken);
        }
        if (predicted != bb.nextStart)
            ++st.addrMispredicts;

        // Train the BAC.
        e.valid = true;
        e.tag = bb.start;
        e.branchPc = bb.branchPc;
        e.isCond = bb.isCond;
        if (bb.hasBranch) {
            if (bb.taken)
                e.takenTarget = bb.takenTarget;
            else if (!bb.isCond)
                e.takenTarget = bb.nextStart;
            if (!bb.taken || !bb.isCond)
                e.fallThrough = bb.isCond ? bb.nextStart
                                          : e.fallThrough;
            if (bb.isCond && bb.taken)
                e.takenTarget = bb.takenTarget;
        } else {
            e.takenTarget = bb.nextStart;   // sequential overflow
            e.isCond = false;
        }
        if (bb.isCond && !bb.taken)
            e.fallThrough = bb.nextStart;
        else if (bb.isCond && bb.taken)
            e.fallThrough = bb.branchPc + 1;
    }
    return st;
}

} // namespace mbbp

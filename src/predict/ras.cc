#include "predict/ras.hh"

#include "obs/obs.hh"
#include "util/logging.hh"

namespace mbbp
{

ReturnAddressStack::ReturnAddressStack(std::size_t capacity)
    : ring_(capacity, 0)
{
    mbbp_assert(capacity >= 1, "RAS capacity must be >= 1");
}

void
ReturnAddressStack::push(Addr ret_addr)
{
    ++statPushes_;
    ring_[topIdx_] = ret_addr;
    topIdx_ = (topIdx_ + 1) % ring_.size();
    if (depth_ == ring_.size())
        ++overflows_;       // overwrote the oldest live entry
    else
        ++depth_;
}

Addr
ReturnAddressStack::pop()
{
    ++statPops_;
    if (depth_ == 0) {
        ++underflows_;
        return 0;
    }
    topIdx_ = (topIdx_ + ring_.size() - 1) % ring_.size();
    --depth_;
    return ring_[topIdx_];
}

Addr
ReturnAddressStack::top() const
{
    ++statPeeks_;
    if (depth_ == 0) {
        ++peekUnderflows_;
        return 0;
    }
    return ring_[(topIdx_ + ring_.size() - 1) % ring_.size()];
}

Addr
ReturnAddressStack::second() const
{
    ++statPeeks_;
    if (depth_ < 2) {
        ++peekUnderflows_;
        return 0;
    }
    return ring_[(topIdx_ + ring_.size() - 2) % ring_.size()];
}

void
ReturnAddressStack::obsFlush()
{
    obs::flushCounter("predict.ras.push", statPushes_);
    obs::flushCounter("predict.ras.pop", statPops_);
    obs::flushCounter("predict.ras.bypass", statPeeks_);
    statPushes_ = 0;
    statPops_ = 0;
    statPeeks_ = 0;
}

} // namespace mbbp

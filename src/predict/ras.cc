#include "predict/ras.hh"

#include "util/logging.hh"

namespace mbbp
{

ReturnAddressStack::ReturnAddressStack(std::size_t capacity)
    : ring_(capacity, 0)
{
    mbbp_assert(capacity >= 1, "RAS capacity must be >= 1");
}

void
ReturnAddressStack::push(Addr ret_addr)
{
    ring_[topIdx_] = ret_addr;
    topIdx_ = (topIdx_ + 1) % ring_.size();
    if (depth_ == ring_.size())
        ++overflows_;       // overwrote the oldest live entry
    else
        ++depth_;
}

Addr
ReturnAddressStack::pop()
{
    if (depth_ == 0) {
        ++underflows_;
        return 0;
    }
    topIdx_ = (topIdx_ + ring_.size() - 1) % ring_.size();
    --depth_;
    return ring_[topIdx_];
}

Addr
ReturnAddressStack::top() const
{
    if (depth_ == 0) {
        ++underflows_;
        return 0;
    }
    return ring_[(topIdx_ + ring_.size() - 1) % ring_.size()];
}

Addr
ReturnAddressStack::second() const
{
    if (depth_ < 2) {
        ++underflows_;
        return 0;
    }
    return ring_[(topIdx_ + ring_.size() - 2) % ring_.size()];
}

} // namespace mbbp

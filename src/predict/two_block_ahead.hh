/**
 * @file
 * Seznec, Jourdan, Sainrat & Michaud's multiple-block-ahead predictor
 * (ASPLOS'96), the other related-work comparator: block n's
 * information predicts the block *following* block n+1, so two blocks
 * can be fetched per cycle. Accuracy matches single-block fetching,
 * but as the authors note the second prediction's tag match is
 * serialized behind the first; the paper's select table avoids that
 * dependency. The ablation bench compares second-block address
 * accuracy of the two schemes.
 */

#ifndef MBBP_PREDICT_TWO_BLOCK_AHEAD_HH
#define MBBP_PREDICT_TWO_BLOCK_AHEAD_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "predict/history.hh"
#include "trace/trace.hh"

namespace mbbp
{

/** Configuration for the two-block-ahead model. */
struct TwoBlockAheadConfig
{
    unsigned historyBits = 10;
    std::size_t tableEntries = 1024;    //!< two-block-ahead table
    unsigned blockWidth = 8;
};

/** Results of a trace run. */
struct TwoBlockAheadStats
{
    uint64_t blocks = 0;
    uint64_t secondPredictions = 0;
    uint64_t secondCorrect = 0;

    double secondAccuracy() const;
};

/** Functional two-block-ahead address predictor. */
class TwoBlockAhead
{
  public:
    explicit TwoBlockAhead(const TwoBlockAheadConfig &cfg);

    /**
     * Walk @p trace at fetch-block granularity (blocks end at taken
     * transfers or the width cap) and score predictions of block n+2
     * made from block n.
     */
    TwoBlockAheadStats simulate(const InMemoryTrace &trace);

  private:
    struct Entry
    {
        Addr twoAhead = 0;
        bool valid = false;
    };

    std::size_t indexOf(Addr block_start) const;

    TwoBlockAheadConfig cfg_;
    GlobalHistory history_;
    std::vector<Entry> table_;
};

} // namespace mbbp

#endif // MBBP_PREDICT_TWO_BLOCK_AHEAD_HH

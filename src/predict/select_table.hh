/**
 * @file
 * The select table (ST) -- the paper's key mechanism for predicting
 * two blocks in parallel (Section 3): "predict our prediction".
 *
 * The end product of a BIT+PHT block prediction is a multiplexer
 * selection. Because the BIT and PHT information for the second block
 * is not available in time, the mux selector from a previous
 * prediction is stored in the ST and replayed. An entry also stores
 * what the prediction implies for the GHR (how many not-taken
 * conditionals, and whether the block ended on a taken branch or fell
 * through), and optionally the start offset into the target line for
 * near-block targets.
 *
 * Indexing: GHR XOR current block address -- the same index as the
 * PHT lookup for the first-block prediction. With multiple STs, the
 * low bits of the block's starting address select the table, so
 * different entry positions into the same line learn different
 * selectors (Section 4.3).
 *
 * Double selection stores *two* selectors per entry (a dual ST) and
 * drives both multiplexers from it, removing the BIT requirement at
 * the cost of higher misselect penalties (Section 3.2).
 */

#ifndef MBBP_PREDICT_SELECT_TABLE_HH
#define MBBP_PREDICT_SELECT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"

namespace mbbp
{

/** Which multiplexer input a selector picks. */
enum class SelSrc : uint8_t
{
    FallThrough = 0,    //!< sequential next address
    Ras,                //!< return address stack
    Target,             //!< target array, exit position = pos
    LinePrev,           //!< near-block: current line - line size
    LineSame,           //!< near-block: current line
    LineNext,           //!< near-block: current line + line size
    LineNext2           //!< near-block: current line + 2 * line size
};

/** Short name for tracing/tests. */
const char *selSrcName(SelSrc s);

/** A multiplexer selection: the unit the ST stores and verifies. */
struct Selector
{
    SelSrc src = SelSrc::FallThrough;
    uint8_t pos = 0;    //!< exit position in the line (Target/near)

    bool operator==(const Selector &other) const = default;

    std::string toString() const;

    /** Encoding width: log2(b)+1 bits covers b target positions plus
     *  fall-through and RAS (4 bits for b=8, 3 for b=4, per §3). */
    static unsigned encodingBits(unsigned block_width);
};

/** The GHR-update information a select prediction must supply. */
struct GhrInfo
{
    uint8_t numNotTaken = 0;    //!< not-taken conditionals in block
    bool endedTaken = false;    //!< ended on a taken branch (vs fell
                                //!< through)

    bool operator==(const GhrInfo &other) const = default;
};

/**
 * One select-table entry. The paper's ST has no validity concept --
 * "the select value read from the select table is used to directly
 * control the multiplexer" -- so a never-written entry behaves as its
 * zero state: a fall-through selector with no conditional outcomes,
 * which is also what zeroed hardware would supply. The valid flag
 * only records whether the entry was ever trained (diagnostics).
 */
struct SelectEntry
{
    Selector sel;
    GhrInfo ghr;
    uint8_t startOffset = 0;    //!< offset into the target line
    bool valid = false;         //!< ever written (statistics only)
};

/** A (possibly dual, possibly replicated) select table. */
class SelectTable
{
  public:
    /**
     * @param history_bits Index width; 2^h entries per table.
     * @param num_tables Tables selected by start-address low bits.
     * @param dual Two selector slots per entry (double selection).
     */
    SelectTable(unsigned history_bits, unsigned num_tables, bool dual);

    /**
     * Arbitrary slot count, for predicting more than two blocks per
     * cycle (Section 5's scaling discussion: "another block
     * prediction basically requires another select table").
     */
    static SelectTable withSlots(unsigned history_bits,
                                 unsigned num_tables,
                                 unsigned num_slots);

    /** Table selected by a block starting address. */
    unsigned tableOf(Addr start_addr) const;

    /** Read slot @p slot (0, or 1 when dual) of an entry. */
    const SelectEntry &read(unsigned table, std::size_t idx,
                            unsigned slot) const;

    /** Replace an entry slot (misselect recovery / training). */
    void write(unsigned table, std::size_t idx, unsigned slot,
               const SelectEntry &entry);

    /**
     * Storage bits per Table 7: entries * (selector + GHR info),
     * times tables and slots. @p with_offset adds the near-block
     * start-offset bits.
     */
    uint64_t storageBits(unsigned block_width, bool with_offset) const;

    unsigned numTables() const { return numTables_; }
    unsigned slots() const { return slots_; }
    std::size_t entriesPerTable() const { return entries_; }

    /** Publish read/write counts (predict.select.*) and zero them;
     *  see BlockedPHT::obsFlush for the discipline. */
    void obsFlush();

  private:
    std::size_t flatIndex(unsigned table, std::size_t idx,
                          unsigned slot) const;

    unsigned historyBits_;
    unsigned numTables_;
    unsigned slots_;
    std::size_t entries_;
    std::vector<SelectEntry> store_;
    mutable uint64_t statReads_ = 0;
    uint64_t statWrites_ = 0;
};

} // namespace mbbp

#endif // MBBP_PREDICT_SELECT_TABLE_HH

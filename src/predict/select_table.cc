#include "predict/select_table.hh"

#include <sstream>

#include "obs/obs.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

const char *
selSrcName(SelSrc s)
{
    switch (s) {
      case SelSrc::FallThrough: return "fall";
      case SelSrc::Ras: return "ras";
      case SelSrc::Target: return "target";
      case SelSrc::LinePrev: return "line-";
      case SelSrc::LineSame: return "line";
      case SelSrc::LineNext: return "line+";
      case SelSrc::LineNext2: return "line+2";
      default: return "?";
    }
}

std::string
Selector::toString() const
{
    std::ostringstream os;
    os << selSrcName(src);
    if (src == SelSrc::Target || (src >= SelSrc::LinePrev &&
                                  src <= SelSrc::LineNext2)) {
        os << "(" << static_cast<int>(pos) << ")";
    }
    return os.str();
}

unsigned
Selector::encodingBits(unsigned block_width)
{
    return floorLog2(block_width) + 1;
}

SelectTable::SelectTable(unsigned history_bits, unsigned num_tables,
                         bool dual)
    : historyBits_(history_bits), numTables_(num_tables),
      slots_(dual ? 2 : 1),
      entries_(std::size_t{1} << history_bits)
{
    mbbp_assert(isPowerOf2(num_tables),
                "number of select tables must be a power of two");
    store_.resize(entries_ * numTables_ * slots_);
}

SelectTable
SelectTable::withSlots(unsigned history_bits, unsigned num_tables,
                       unsigned num_slots)
{
    mbbp_assert(num_slots >= 1, "need at least one selector slot");
    SelectTable st(history_bits, num_tables, false);
    st.slots_ = num_slots;
    st.store_.assign(st.entries_ * st.numTables_ * st.slots_,
                     SelectEntry{});
    return st;
}

unsigned
SelectTable::tableOf(Addr start_addr) const
{
    return static_cast<unsigned>(start_addr & (numTables_ - 1));
}

std::size_t
SelectTable::flatIndex(unsigned table, std::size_t idx,
                       unsigned slot) const
{
    mbbp_assert(table < numTables_, "select table out of range");
    mbbp_assert(idx < entries_, "select index out of range");
    mbbp_assert(slot < slots_, "select slot out of range");
    return (table * entries_ + idx) * slots_ + slot;
}

const SelectEntry &
SelectTable::read(unsigned table, std::size_t idx, unsigned slot) const
{
    ++statReads_;
    return store_[flatIndex(table, idx, slot)];
}

void
SelectTable::write(unsigned table, std::size_t idx, unsigned slot,
                   const SelectEntry &entry)
{
    ++statWrites_;
    store_[flatIndex(table, idx, slot)] = entry;
}

void
SelectTable::obsFlush()
{
    obs::flushCounter("predict.select.read", statReads_);
    obs::flushCounter("predict.select.write", statWrites_);
    statReads_ = 0;
    statWrites_ = 0;
}

uint64_t
SelectTable::storageBits(unsigned block_width, bool with_offset) const
{
    unsigned lb = floorLog2(block_width);
    // Selector + (#not-taken, taken/fall-through) GHR bits, plus the
    // optional near-block start offset.
    unsigned per_slot = Selector::encodingBits(block_width) + lb + 1 +
                        (with_offset ? lb : 0);
    return static_cast<uint64_t>(entries_) * numTables_ * slots_ *
           per_slot;
}

} // namespace mbbp

/**
 * @file
 * The target-array abstraction (Section 2): a structure indexed by the
 * instruction *block* address that predicts a target address for each
 * possible branch exit position in the block. Backed by either an
 * NLS-style tag-less array or a set-associative BTB; dual-block
 * prediction uses two logical arrays (target 1 = exit of the indexed
 * block, target 2 = exit of the block after it).
 */

#ifndef MBBP_PREDICT_TARGET_ARRAY_HH
#define MBBP_PREDICT_TARGET_ARRAY_HH

#include <cstdint>

#include "isa/inst.hh"

namespace mbbp
{

/** Outcome of a target-array probe. */
struct TargetPrediction
{
    bool hit = false;       //!< entry present (tag-less NLS: always)
    Addr target = 0;        //!< predicted target address
    bool isCallTarget = false;  //!< the stored branch was a call
};

/** Common interface of NLS and BTB target arrays. */
class TargetArray
{
  public:
    virtual ~TargetArray() = default;

    /**
     * Probe for the target of the branch at exit position @p pos of
     * the block at @p block_addr.
     * @param which 0 = first-target array, 1 = second-target array.
     */
    virtual TargetPrediction predict(Addr block_addr, unsigned pos,
                                     unsigned which) const = 0;

    /** Install/refresh the target for an exit position. */
    virtual void update(Addr block_addr, unsigned pos, unsigned which,
                        Addr target, bool is_call) = 0;

    /** Storage cost in bits under the paper's Table 7 assumptions. */
    virtual uint64_t storageBits(unsigned line_index_bits) const = 0;
};

} // namespace mbbp

#endif // MBBP_PREDICT_TARGET_ARRAY_HH

/**
 * @file
 * Global/branch history register (GHR/BHR) and the gshare-style index
 * computation shared by the PHT and select table.
 *
 * The paper's key departure from Yeh/Patt: the register is updated
 * once per *block* (shift in the outcomes of every conditional branch
 * the block executed), not once per branch. shiftInBlock() implements
 * that; shiftIn() is the scalar form used by the baseline.
 */

#ifndef MBBP_PREDICT_HISTORY_HH
#define MBBP_PREDICT_HISTORY_HH

#include <cstdint>

#include "isa/inst.hh"

namespace mbbp
{

/** A history register of 1..63 bits; bit 0 is the newest outcome. */
class GlobalHistory
{
  public:
    explicit GlobalHistory(unsigned nbits);

    /** Shift in one outcome (scalar two-level update). */
    void shiftIn(bool taken);

    /**
     * Shift in a whole block's outcomes at once (blocked update).
     * @param outcomes Bit i = outcome of the block's i-th conditional
     *                 branch (bit 0 = first executed).
     * @param count Number of conditional branches (0..63).
     */
    void shiftInBlock(uint64_t outcomes, unsigned count);

    /** Current register value (low @c width() bits). */
    uint64_t value() const { return value_; }

    /** Restore a recovered value (BBR corrected GHR). */
    void set(uint64_t v);

    unsigned width() const { return nbits_; }

    /** gshare index: history XOR (addr >> shift), folded to width. */
    uint64_t index(Addr addr, unsigned addr_shift) const;

  private:
    unsigned nbits_;
    uint64_t value_ = 0;
};

} // namespace mbbp

#endif // MBBP_PREDICT_HISTORY_HH

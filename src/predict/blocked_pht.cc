#include "predict/blocked_pht.hh"

#include "obs/obs.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

BlockedPHT::BlockedPHT(const BlockedPhtConfig &cfg)
    : cfg_(cfg)
{
    mbbp_assert(isPowerOf2(cfg_.blockWidth),
                "block width must be a power of two");
    mbbp_assert(cfg_.numPhts >= 1 && isPowerOf2(cfg_.numPhts),
                "numPhts must be a power of two");
    std::size_t entries = (std::size_t{1} << cfg_.historyBits) *
                          cfg_.numPhts;
    counters_.assign(entries * cfg_.blockWidth,
                     SatCounter(cfg_.counterBits,
                                static_cast<uint8_t>(
                                    1u << (cfg_.counterBits - 1))));
}

std::size_t
BlockedPHT::index(const GlobalHistory &ghr, Addr block_addr) const
{
    unsigned shift = floorLog2(cfg_.blockWidth);
    std::size_t idx = ghr.index(block_addr, shift) & mask(cfg_.historyBits);
    if (cfg_.numPhts > 1) {
        std::size_t table = (block_addr >> shift) & (cfg_.numPhts - 1);
        idx |= table << cfg_.historyBits;
    }
    return idx;
}

unsigned
BlockedPHT::position(Addr pc) const
{
    return static_cast<unsigned>(pc & (cfg_.blockWidth - 1));
}

bool
BlockedPHT::predictAt(std::size_t idx, Addr pc) const
{
    ++statLookups_;
    return counterAt(idx, position(pc)).predictTaken();
}

void
BlockedPHT::updateAt(std::size_t idx, Addr pc, bool taken)
{
    ++statUpdates_;
    counters_[idx * cfg_.blockWidth + position(pc)].update(taken);
}

void
BlockedPHT::obsFlush()
{
    obs::flushCounter("predict.pht.lookup", statLookups_);
    obs::flushCounter("predict.pht.update", statUpdates_);
    statLookups_ = 0;
    statUpdates_ = 0;
}

const SatCounter &
BlockedPHT::counterAt(std::size_t idx, unsigned pos) const
{
    mbbp_assert(pos < cfg_.blockWidth, "counter position out of range");
    return counters_[idx * cfg_.blockWidth + pos];
}

void
BlockedPHT::setCounterAt(std::size_t idx, unsigned pos,
                         const SatCounter &c)
{
    mbbp_assert(pos < cfg_.blockWidth, "counter position out of range");
    counters_[idx * cfg_.blockWidth + pos] = c;
}

uint64_t
BlockedPHT::storageBits() const
{
    return (uint64_t{1} << cfg_.historyBits) * cfg_.numPhts *
           cfg_.blockWidth * cfg_.counterBits;
}

} // namespace mbbp

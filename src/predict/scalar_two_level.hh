/**
 * @file
 * The scalar two-level adaptive branch predictor (Yeh & Patt), the
 * paper's Figure 6 baseline: a global history register indexing one or
 * more pattern history tables of 2-bit counters, one prediction per
 * branch per cycle.
 *
 * The paper's reference configuration is "a per-addr PHT with 8 PHTs"
 * sized to match the blocked PHT: the low bits of the branch address
 * select one of @c numPhts tables, the GHR indexes within it. A
 * gshare-style mode (GHR XOR address) is also provided.
 */

#ifndef MBBP_PREDICT_SCALAR_TWO_LEVEL_HH
#define MBBP_PREDICT_SCALAR_TWO_LEVEL_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "predict/history.hh"
#include "util/sat_counter.hh"

namespace mbbp
{

/** Configuration for ScalarTwoLevel. */
struct ScalarTwoLevelConfig
{
    unsigned historyBits = 10;  //!< GHR length; PHT has 2^h entries
    unsigned numPhts = 8;       //!< tables selected by address low bits
    unsigned counterBits = 2;
    bool gshare = false;        //!< XOR address into the index instead
                                //!< of selecting a table with it
};

/** One-branch-per-lookup two-level adaptive predictor. */
class ScalarTwoLevel
{
  public:
    explicit ScalarTwoLevel(const ScalarTwoLevelConfig &cfg);

    /** Predict the direction of the conditional branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Train with the actual outcome and advance the history (one
     * shift per branch, the scalar discipline).
     */
    void update(Addr pc, bool taken);

    /** Storage cost in bits (counters only, like the paper's Table 7). */
    uint64_t storageBits() const;

    const GlobalHistory &history() const { return history_; }

  private:
    std::size_t tableOf(Addr pc) const;
    std::size_t indexOf(Addr pc) const;

    ScalarTwoLevelConfig cfg_;
    GlobalHistory history_;
    std::vector<std::vector<SatCounter>> phts_;
};

} // namespace mbbp

#endif // MBBP_PREDICT_SCALAR_TWO_LEVEL_HH

#include "predict/bit_table.hh"

#include "obs/obs.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

bool
bitCodeIsCond(BitCode c)
{
    return c == BitCode::CondLong || bitCodeIsNear(c);
}

bool
bitCodeIsNear(BitCode c)
{
    switch (c) {
      case BitCode::CondPrevLine:
      case BitCode::CondSameLine:
      case BitCode::CondNextLine:
      case BitCode::CondNextLine2:
        return true;
      default:
        return false;
    }
}

int
bitCodeNearDelta(BitCode c)
{
    switch (c) {
      case BitCode::CondPrevLine: return -1;
      case BitCode::CondSameLine: return 0;
      case BitCode::CondNextLine: return 1;
      case BitCode::CondNextLine2: return 2;
      default:
        mbbp_panic("bitCodeNearDelta on non-near code");
    }
}

BitCode
computeBitCode(InstClass cls, Addr pc, Addr target, unsigned line_size,
               bool near_block)
{
    switch (cls) {
      case InstClass::NonBranch:
        return BitCode::NonBranch;
      case InstClass::Return:
        return BitCode::Return;
      case InstClass::Jump:
      case InstClass::Call:
      case InstClass::IndirectJump:
      case InstClass::IndirectCall:
        return BitCode::OtherBranch;
      case InstClass::CondBranch: {
        if (!near_block)
            return BitCode::CondLong;
        int64_t line = static_cast<int64_t>(pc / line_size);
        int64_t tline = static_cast<int64_t>(target / line_size);
        switch (tline - line) {
          case -1: return BitCode::CondPrevLine;
          case 0: return BitCode::CondSameLine;
          case 1: return BitCode::CondNextLine;
          case 2: return BitCode::CondNextLine2;
          default: return BitCode::CondLong;
        }
      }
      default:
        mbbp_panic("computeBitCode: bad class");
    }
}

BitTable::BitTable(std::size_t num_entries, unsigned line_size)
    : lineSize_(line_size)
{
    mbbp_assert(line_size >= 1, "line size must be positive");
    if (num_entries > 0) {
        mbbp_assert(isPowerOf2(num_entries),
                    "BIT entries must be a power of two");
        entries_.resize(num_entries);
        for (auto &e : entries_)
            e.codes.assign(lineSize_, BitCode::NonBranch);
    }
}

std::size_t
BitTable::indexOf(Addr line_addr) const
{
    return line_addr & (entries_.size() - 1);
}

const BitVector *
BitTable::lookup(Addr line_addr) const
{
    if (perfect())
        return nullptr;
    ++statProbes_;
    return &entries_[indexOf(line_addr)].codes;
}

bool
BitTable::entryMatches(Addr line_addr) const
{
    if (perfect())
        return true;
    return entries_[indexOf(line_addr)].writer == line_addr;
}

void
BitTable::update(Addr line_addr, const BitVector &codes)
{
    if (perfect())
        return;
    ++statUpdates_;
    mbbp_assert(codes.size() == lineSize_,
                "BIT update with wrong line width");
    Entry &e = entries_[indexOf(line_addr)];
    e.codes = codes;
    e.writer = line_addr;
}

void
BitTable::obsFlush()
{
    obs::flushCounter("predict.bit.probe", statProbes_);
    obs::flushCounter("predict.bit.update", statUpdates_);
    statProbes_ = 0;
    statUpdates_ = 0;
}

uint64_t
BitTable::storageBits() const
{
    return static_cast<uint64_t>(entries_.size()) * lineSize_ * 3;
}

} // namespace mbbp

#include "predict/bbr.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

uint64_t
BbrEntry::costBits(unsigned history_bits, unsigned block_width,
                   bool full_addr) const
{
    uint64_t bits_ = 0;
    bits_ += 1;                     // block 1 or 2
    bits_ += 1;                     // predicted taken / not taken
    bits_ += 1;                     // second chance
    bits_ += history_bits;          // PHT index
    if (!phtBlock.empty())
        bits_ += 2ull * block_width;    // optional PHT block field
    bits_ += history_bits;          // corrected GHR
    bits_ += Selector::encodingBits(block_width) +
             floorLog2(block_width);    // replacement selector + pos
    bits_ += full_addr ? 30 : 10;   // corrected index or full address
    return bits_;
}

BbrPool::BbrPool(std::size_t capacity)
    : capacity_(capacity)
{
}

std::size_t
BbrPool::allocate(const BbrEntry &entry)
{
    std::size_t id;
    if (!freeList_.empty()) {
        id = freeList_.back();
        freeList_.pop_back();
        entries_[id] = entry;
    } else {
        id = entries_.size();
        entries_.push_back(entry);
    }
    ++live_;
    peak_ = std::max(peak_, live_);
    if (live_ > capacity_)
        ++overCap_;
    return id;
}

void
BbrPool::release(std::size_t id)
{
    mbbp_assert(id < entries_.size(), "bad BBR id");
    mbbp_assert(live_ > 0, "BBR release with none in flight");
    freeList_.push_back(id);
    --live_;
}

const BbrEntry &
BbrPool::entry(std::size_t id) const
{
    mbbp_assert(id < entries_.size(), "bad BBR id");
    return entries_[id];
}

} // namespace mbbp

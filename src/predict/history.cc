#include "predict/history.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

GlobalHistory::GlobalHistory(unsigned nbits)
    : nbits_(nbits)
{
    mbbp_assert(nbits >= 1 && nbits <= 63,
                "history width must be 1..63, got ", nbits);
}

void
GlobalHistory::shiftIn(bool taken)
{
    value_ = ((value_ << 1) | (taken ? 1 : 0)) & mask(nbits_);
}

void
GlobalHistory::shiftInBlock(uint64_t outcomes, unsigned count)
{
    mbbp_assert(count <= 63, "too many outcomes in one block");
    if (count == 0)
        return;
    // The i-th executed branch must end up older than the (i+1)-th:
    // insert in execution order.
    for (unsigned i = 0; i < count; ++i)
        shiftIn((outcomes >> i) & 1);
}

void
GlobalHistory::set(uint64_t v)
{
    value_ = v & mask(nbits_);
}

uint64_t
GlobalHistory::index(Addr addr, unsigned addr_shift) const
{
    uint64_t a = addr >> addr_shift;
    return (value_ ^ a) & mask(nbits_);
}

} // namespace mbbp

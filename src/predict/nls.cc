#include "predict/nls.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

NlsTargetArray::NlsTargetArray(std::size_t num_entries,
                               unsigned line_size, bool dual)
    : numEntries_(num_entries), lineSize_(line_size),
      numArrays_(dual ? 2 : 1)
{
    mbbp_assert(isPowerOf2(num_entries),
                "NLS entries must be a power of two");
    slots_.resize(numEntries_ * numArrays_ * lineSize_);
}

NlsTargetArray
NlsTargetArray::withArrays(std::size_t num_entries, unsigned line_size,
                           unsigned num_arrays)
{
    mbbp_assert(num_arrays >= 1, "need at least one target array");
    NlsTargetArray nls(num_entries, line_size, false);
    nls.numArrays_ = num_arrays;
    nls.slots_.assign(num_entries * num_arrays * line_size, Slot{});
    return nls;
}

std::size_t
NlsTargetArray::indexOf(Addr block_addr) const
{
    // Index by the line address (drop the offset bits).
    return (block_addr / lineSize_) & (numEntries_ - 1);
}

std::size_t
NlsTargetArray::slotIndex(std::size_t idx, unsigned pos,
                          unsigned which) const
{
    mbbp_assert(pos < lineSize_, "NLS position out of range");
    mbbp_assert(which < numArrays_, "NLS array selector out of range");
    return (idx * numArrays_ + which) * lineSize_ + pos;
}

TargetPrediction
NlsTargetArray::predict(Addr block_addr, unsigned pos,
                        unsigned which) const
{
    const Slot &s = slots_[slotIndex(indexOf(block_addr), pos, which)];
    // Tag-less: there is no miss; an unwritten or aliased slot simply
    // yields a wrong target, discovered later as a misfetch.
    return { true, s.target, s.isCall };
}

void
NlsTargetArray::update(Addr block_addr, unsigned pos, unsigned which,
                       Addr target, bool is_call)
{
    Slot &s = slots_[slotIndex(indexOf(block_addr), pos, which)];
    s.target = target;
    s.isCall = is_call;
    s.written = true;
}

uint64_t
NlsTargetArray::storageBits(unsigned line_index_bits) const
{
    // Table 7: entries x positions x line-index bits, per array.
    return static_cast<uint64_t>(numEntries_) * numArrays_ *
           lineSize_ * line_index_bits;
}

} // namespace mbbp

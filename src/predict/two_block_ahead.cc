#include "predict/two_block_ahead.hh"

#include <deque>

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace mbbp
{

double
TwoBlockAheadStats::secondAccuracy() const
{
    return ratio(static_cast<double>(secondCorrect),
                 static_cast<double>(secondPredictions));
}

TwoBlockAhead::TwoBlockAhead(const TwoBlockAheadConfig &cfg)
    : cfg_(cfg), history_(cfg.historyBits)
{
    mbbp_assert(isPowerOf2(cfg_.tableEntries),
                "table entries must be a power of two");
    table_.resize(cfg_.tableEntries);
}

std::size_t
TwoBlockAhead::indexOf(Addr block_start) const
{
    return history_.index(block_start / cfg_.blockWidth, 0) &
           (cfg_.tableEntries - 1);
}

TwoBlockAheadStats
TwoBlockAhead::simulate(const InMemoryTrace &trace)
{
    TwoBlockAheadStats st;
    TraceCursor cursor(trace);

    // Pending predictions: (table index it was made from, predicted
    // address, valid). A prediction made at block n scores at n+2.
    struct Pending
    {
        std::size_t idx;
        Addr predicted;
        bool valid;
    };
    std::deque<Pending> pending;

    DynInst inst;
    bool more = cursor.next(inst);
    while (more) {
        // Build one fetch block.
        Addr start = inst.pc;
        unsigned len = 0;
        uint64_t outcomes = 0;
        unsigned nconds = 0;
        bool ended = false;
        while (more && len < cfg_.blockWidth && !ended) {
            ++len;
            if (isCondBranch(inst.cls) && nconds < 63) {
                outcomes |= static_cast<uint64_t>(inst.taken) << nconds;
                ++nconds;
            }
            ended = inst.taken;
            more = cursor.next(inst);
        }
        if (!more)
            break;
        ++st.blocks;

        // Score the prediction made two blocks ago, then retrain it
        // with the observed address.
        if (pending.size() == 2) {
            Pending p = pending.front();
            pending.pop_front();
            if (p.valid) {
                ++st.secondPredictions;
                if (p.predicted == start)
                    ++st.secondCorrect;
            }
            table_[p.idx] = { start, true };
        }

        // Make this block's two-ahead prediction.
        std::size_t idx = indexOf(start);
        const Entry &e = table_[idx];
        pending.push_back({ idx, e.twoAhead, e.valid });

        history_.shiftInBlock(outcomes, nconds);
    }
    return st;
}

} // namespace mbbp

/**
 * @file
 * Yeh, Marr & Patt's multiple branch prediction via a Branch Address
 * Cache (ICS'93) -- the related-work scheme the paper's Section 2
 * argues against: it retains scalar two-level accuracy, but predicting
 * k branches per cycle needs 2^k - 1 PHT reads and a BAC entry
 * fanning out 2^k basic-block addresses, so cost grows exponentially
 * in the prediction bandwidth.
 *
 * This model implements the scheme functionally (BAC + global PHT,
 * basic-block granularity) and reports the lookup/storage costs the
 * ablation bench compares against the blocked PHT's single read.
 */

#ifndef MBBP_PREDICT_BRANCH_ADDRESS_CACHE_HH
#define MBBP_PREDICT_BRANCH_ADDRESS_CACHE_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "predict/history.hh"
#include "trace/trace.hh"
#include "util/sat_counter.hh"

namespace mbbp
{

/** Configuration of the Yeh-style multi-branch predictor. */
struct BacConfig
{
    unsigned historyBits = 10;
    std::size_t bacEntries = 1024;  //!< direct-mapped BAC entries
    unsigned branchesPerCycle = 2;  //!< k simultaneous predictions
    unsigned blockWidth = 8;        //!< fetch width cap per block
};

/** Results of a trace run. */
struct BacStats
{
    uint64_t basicBlocks = 0;       //!< basic blocks walked
    uint64_t condBranches = 0;
    uint64_t condMispredicts = 0;
    uint64_t bacMisses = 0;         //!< address unavailable
    uint64_t addrMispredicts = 0;   //!< wrong next-block address
    uint64_t phtLookups = 0;        //!< total PHT entry reads
    uint64_t cycles = 0;            //!< prediction cycles consumed

    double condAccuracy() const;
    double phtLookupsPerCycle() const;
};

/** Functional Yeh BAC multi-branch predictor. */
class BranchAddressCache
{
  public:
    explicit BranchAddressCache(const BacConfig &cfg);

    /**
     * Walk @p trace at basic-block granularity predicting
     * cfg.branchesPerCycle branches per cycle, training as it goes.
     */
    BacStats simulate(const InMemoryTrace &trace);

    /** PHT reads needed per cycle for k predictions: 2^k - 1. */
    static uint64_t lookupsPerCycle(unsigned k);

    /**
     * BAC storage bits: every entry fans out 2^k block addresses of
     * @p addr_bits each, plus a tag.
     */
    uint64_t storageBits(unsigned addr_bits) const;

  private:
    struct BacEntry
    {
        Addr tag = ~Addr{0};
        Addr takenTarget = 0;       //!< target if the block's branch
                                    //!< is taken
        Addr fallThrough = 0;       //!< next block if not taken
        Addr branchPc = 0;
        bool isCond = false;
        bool valid = false;
    };

    std::size_t indexOf(Addr pc) const;

    BacConfig cfg_;
    GlobalHistory history_;
    std::vector<SatCounter> pht_;
    std::vector<BacEntry> bac_;
};

} // namespace mbbp

#endif // MBBP_PREDICT_BRANCH_ADDRESS_CACHE_HH

/**
 * @file
 * Bad Branch Recovery (BBR) entries, per the paper's Table 4. Every
 * in-flight conditional branch is assigned a recovery entry holding
 * everything needed to repair the front end when it resolves wrong:
 * the alternate target, a replacement selector, the corrected GHR,
 * the PHT index (and optionally the whole PHT block), and the
 * second-chance bit.
 *
 * The evaluation "assumed the processor would always have enough bad
 * branch recovery entries available"; BbrPool keeps that assumption
 * honest by recording occupancy so a finite allocation (Table 7 costs
 * 8 entries) can be sanity-checked.
 */

#ifndef MBBP_PREDICT_BBR_HH
#define MBBP_PREDICT_BBR_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "predict/select_table.hh"
#include "util/sat_counter.hh"

namespace mbbp
{

/** One recovery entry (Table 4). */
struct BbrEntry
{
    bool blockTwo = false;          //!< block 1 or 2
    bool predictedTaken = false;
    bool secondChance = false;      //!< counter was at a strong end
    uint32_t phtIndex = 0;
    std::vector<SatCounter> phtBlock;   //!< optional PHT block field
    uint64_t correctedGhr = 0;      //!< GHR if the prediction is wrong
    Selector replacementSelector;   //!< ST value if no second chance
    Addr alternateTarget = 0;       //!< corrected fetch address

    /**
     * Bit cost of this entry per Table 4 (with @p history_bits wide
     * GHR/PHT index, @p block_width counters, full-address target).
     * The optional PHT-block field is counted only when present.
     */
    uint64_t costBits(unsigned history_bits, unsigned block_width,
                      bool full_addr) const;
};

/** Fixed-capacity pool tracking occupancy. */
class BbrPool
{
  public:
    explicit BbrPool(std::size_t capacity = 8);

    /**
     * Allocate an entry; always succeeds (the paper's assumption) but
     * records when demand exceeded the nominal capacity.
     * @return entry id for release().
     */
    std::size_t allocate(const BbrEntry &entry);

    /** Release an entry at branch resolution. */
    void release(std::size_t id);

    const BbrEntry &entry(std::size_t id) const;

    std::size_t inFlight() const { return live_; }
    std::size_t peakInFlight() const { return peak_; }
    uint64_t overCapacityEvents() const { return overCap_; }
    std::size_t nominalCapacity() const { return capacity_; }

  private:
    std::size_t capacity_;
    std::vector<BbrEntry> entries_;
    std::vector<std::size_t> freeList_;
    std::size_t live_ = 0;
    std::size_t peak_ = 0;
    uint64_t overCap_ = 0;
};

} // namespace mbbp

#endif // MBBP_PREDICT_BBR_HH

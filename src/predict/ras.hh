/**
 * @file
 * Return Address Stack (Kaeli & Emma), 32 entries in the paper's
 * configuration. A fixed-size circular stack: pushing past capacity
 * silently overwrites the oldest entry, which is the hardware
 * behavior that makes deep recursion mispredict returns.
 *
 * Dual-block bypassing (Section 3.1) -- forwarding a just-pushed
 * return address to the second multiplexer, or handing it the second
 * stack entry when the first block returns -- is functionally
 * equivalent to keeping the stack up to date in program order, which
 * is what this model does; the engines document that equivalence.
 */

#ifndef MBBP_PREDICT_RAS_HH
#define MBBP_PREDICT_RAS_HH

#include <cstddef>
#include <vector>

#include "isa/inst.hh"

namespace mbbp
{

/** Fixed-capacity circular return-address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::size_t capacity = 32);

    /** Push a return address (a call executed). */
    void push(Addr ret_addr);

    /** Pop and return the top (a return executed). */
    Addr pop();

    /** Peek at the top without popping (first-mux RAS input). */
    Addr top() const;

    /** Peek at the second entry (second-mux input when the first
     *  block performs a return). */
    Addr second() const;

    /** Live entries (<= capacity). */
    std::size_t depth() const { return depth_; }
    std::size_t capacity() const { return ring_.size(); }
    bool empty() const { return depth_ == 0; }

    /** Times a push overwrote a live entry (overflow events). */
    uint64_t overflows() const { return overflows_; }

    /**
     * Times a pop() hit an empty stack (returns 0 then). Peeks do
     * not count here: a speculative top()/second() followed by the
     * architectural pop() is one underflow event, not two.
     */
    uint64_t underflows() const { return underflows_; }

    /** Times a top()/second() peek found too few live entries. */
    uint64_t peekUnderflows() const { return peekUnderflows_; }

    /** Publish push/pop/bypass-peek counts (predict.ras.*) and zero
     *  them; see BlockedPHT::obsFlush for the discipline. */
    void obsFlush();

  private:
    std::vector<Addr> ring_;
    std::size_t topIdx_ = 0;    //!< index of the next free slot
    std::size_t depth_ = 0;
    uint64_t overflows_ = 0;
    uint64_t underflows_ = 0;
    mutable uint64_t peekUnderflows_ = 0;
    uint64_t statPushes_ = 0;
    uint64_t statPops_ = 0;
    mutable uint64_t statPeeks_ = 0;
};

} // namespace mbbp

#endif // MBBP_PREDICT_RAS_HH

/**
 * @file
 * The blocked pattern history table -- the paper's core contribution
 * for multiple branch prediction (Section 2).
 *
 * Instead of one 2-bit counter per entry, each pattern-history entry
 * holds @c blockWidth counters, one per instruction position in a
 * fetch block. A single lookup therefore yields direction predictions
 * for *every* potential conditional branch in the block, replacing
 * Yeh's exponential multi-ported lookup with one scalable read. The
 * history register is updated once per block via
 * GlobalHistory::shiftInBlock().
 *
 * Indexing is gshare style (GHR XOR block address); for lines wider
 * than the block (extended/self-aligned caches) counter positions
 * wrap around the block, as Section 4.5 specifies.
 */

#ifndef MBBP_PREDICT_BLOCKED_PHT_HH
#define MBBP_PREDICT_BLOCKED_PHT_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "predict/history.hh"
#include "util/sat_counter.hh"

namespace mbbp
{

/** Configuration for BlockedPHT. */
struct BlockedPhtConfig
{
    unsigned historyBits = 10;  //!< GHR length; 2^h entries
    unsigned blockWidth = 8;    //!< counters per entry (b)
    unsigned counterBits = 2;
    unsigned numPhts = 1;       //!< the paper evaluates 1 global PHT
};

/** Per-block pattern history: 2^h entries x b counters. */
class BlockedPHT
{
  public:
    explicit BlockedPHT(const BlockedPhtConfig &cfg);

    BlockedPhtConfig config() const { return cfg_; }

    /**
     * Index for a block starting at @p block_addr under history
     * @p ghr: (GHR XOR (addr / blockWidth)) folded to h bits, plus
     * table selection when numPhts > 1.
     */
    std::size_t index(const GlobalHistory &ghr, Addr block_addr) const;

    /** Predict the direction of the branch at absolute @p pc. */
    bool predictAt(std::size_t idx, Addr pc) const;

    /** Counter position for @p pc (wraps around the block). */
    unsigned position(Addr pc) const;

    /** Train the counter for @p pc at entry @p idx. */
    void updateAt(std::size_t idx, Addr pc, bool taken);

    /** Raw counter access (tests, BBR PHT-block field). */
    const SatCounter &counterAt(std::size_t idx, unsigned pos) const;
    void setCounterAt(std::size_t idx, unsigned pos,
                      const SatCounter &c);

    /** Storage cost in bits: 2^h * b * counterBits * numPhts. */
    uint64_t storageBits() const;

    unsigned blockWidth() const { return cfg_.blockWidth; }

    /**
     * Publish the accumulated lookup/update event counts to the obs
     * registry (predict.pht.*) and zero them. Events accumulate in
     * plain members so the hot path stays free of atomics; engines
     * flush once per run.
     */
    void obsFlush();

  private:
    BlockedPhtConfig cfg_;
    std::vector<SatCounter> counters_;  //!< [entry * b + pos]
    mutable uint64_t statLookups_ = 0;
    uint64_t statUpdates_ = 0;
};

} // namespace mbbp

#endif // MBBP_PREDICT_BLOCKED_PHT_HH

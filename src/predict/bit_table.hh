/**
 * @file
 * Block Instruction Type (BIT) information -- the paper's Table 1.
 *
 * "In superscalar fetch prediction, knowing what type of instructions
 * are in a block is the most critical piece of information."
 *
 * Two encodings:
 *  - 2-bit: non-branch / return / other branch / conditional branch.
 *  - 3-bit: conditional branches additionally distinguish near-block
 *    targets (previous line, same line, next line, next line + 1),
 *    which the instruction fetch can compute with a small adder
 *    instead of a target-array entry.
 *
 * The BIT information can live in the i-cache (pre-decoded; never
 * stale with the paper's perfect i-cache) or in a separate, smaller
 * BitTable whose entries alias across lines -- Figure 7 sweeps that
 * table's size and charges a one-cycle penalty whenever stale type
 * bits change the prediction.
 */

#ifndef MBBP_PREDICT_BIT_TABLE_HH
#define MBBP_PREDICT_BIT_TABLE_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"

namespace mbbp
{

/** Table 1 codes. Values match the paper's 3-bit encoding. */
enum class BitCode : uint8_t
{
    NonBranch     = 0b000,  //!< fall-through
    Return        = 0b001,  //!< return stack
    OtherBranch   = 0b010,  //!< always use target array
    CondLong      = 0b011,  //!< target array or fall-through, per PHT
    CondPrevLine  = 0b100,  //!< current line - line size
    CondSameLine  = 0b101,  //!< current line
    CondNextLine  = 0b110,  //!< current line + line size
    CondNextLine2 = 0b111   //!< current line + 2 * line size
};

/** Is this code any flavor of conditional branch? */
bool bitCodeIsCond(BitCode c);

/** Is this code a near-block conditional? */
bool bitCodeIsNear(BitCode c);

/** Line delta (-1, 0, +1, +2) for a near-block code. */
int bitCodeNearDelta(BitCode c);

/**
 * Compute the code for one instruction.
 *
 * @param cls Instruction class.
 * @param pc Instruction address.
 * @param target Branch target (conditional branches carry their
 *               static target even in not-taken records).
 * @param line_size Instructions per i-cache line.
 * @param near_block Use the 3-bit near-block encoding; when false,
 *                   every conditional branch is CondLong (the paper's
 *                   default configuration).
 */
BitCode computeBitCode(InstClass cls, Addr pc, Addr target,
                       unsigned line_size, bool near_block);

/** The per-line type vector. */
using BitVector = std::vector<BitCode>;

/**
 * A finite, direct-mapped, tag-less BIT table. lookup() returns the
 * codes last written at the line's index -- possibly for a different
 * line (aliasing); the caller detects the damage by comparing the
 * prediction it computed against one from true types (the paper's
 * one-cycle BIT penalty).
 */
class BitTable
{
  public:
    /**
     * @param num_entries Entries (power of two). 0 = perfect (the
     *                    BIT-in-instruction-cache configuration).
     * @param line_size Instructions per line.
     */
    BitTable(std::size_t num_entries, unsigned line_size);

    /** Is this the perfect (in-cache) configuration? */
    bool perfect() const { return entries_.empty(); }

    /**
     * Read the stored codes for @p line_addr. In perfect mode returns
     * nullptr (caller should use true types).
     */
    const BitVector *lookup(Addr line_addr) const;

    /** True iff the stored entry was written for @p line_addr. */
    bool entryMatches(Addr line_addr) const;

    /** Install the true codes for @p line_addr. */
    void update(Addr line_addr, const BitVector &codes);

    /** Storage bits: entries * lineSize * 3 (the 3-bit encoding). */
    uint64_t storageBits() const;

    std::size_t numEntries() const { return entries_.size(); }
    unsigned lineSize() const { return lineSize_; }

    /** Publish probe/update counts (predict.bit.*) and zero them;
     *  see BlockedPHT::obsFlush for the discipline. */
    void obsFlush();

  private:
    struct Entry
    {
        BitVector codes;
        Addr writer = ~Addr{0};     //!< which line wrote this entry
    };

    std::size_t indexOf(Addr line_addr) const;

    unsigned lineSize_;
    std::vector<Entry> entries_;
    mutable uint64_t statProbes_ = 0;
    uint64_t statUpdates_ = 0;
};

} // namespace mbbp

#endif // MBBP_PREDICT_BIT_TABLE_HH

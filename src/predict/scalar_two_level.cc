#include "predict/scalar_two_level.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

ScalarTwoLevel::ScalarTwoLevel(const ScalarTwoLevelConfig &cfg)
    : cfg_(cfg), history_(cfg.historyBits)
{
    mbbp_assert(cfg_.numPhts >= 1 && isPowerOf2(cfg_.numPhts),
                "numPhts must be a power of two");
    std::size_t entries = std::size_t{1} << cfg_.historyBits;
    phts_.assign(cfg_.numPhts,
                 std::vector<SatCounter>(
                     entries, SatCounter(cfg_.counterBits,
                                         static_cast<uint8_t>(
                                             1u << (cfg_.counterBits - 1)))));
}

std::size_t
ScalarTwoLevel::tableOf(Addr pc) const
{
    return cfg_.gshare ? 0 : (pc & (cfg_.numPhts - 1));
}

std::size_t
ScalarTwoLevel::indexOf(Addr pc) const
{
    if (cfg_.gshare)
        return history_.index(pc, 0);
    return history_.value();
}

bool
ScalarTwoLevel::predict(Addr pc) const
{
    return phts_[tableOf(pc)][indexOf(pc)].predictTaken();
}

void
ScalarTwoLevel::update(Addr pc, bool taken)
{
    phts_[tableOf(pc)][indexOf(pc)].update(taken);
    history_.shiftIn(taken);
}

uint64_t
ScalarTwoLevel::storageBits() const
{
    uint64_t per_table = (uint64_t{1} << cfg_.historyBits) *
                         cfg_.counterBits;
    return (cfg_.gshare ? 1 : cfg_.numPhts) * per_table;
}

} // namespace mbbp

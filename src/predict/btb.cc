#include "predict/btb.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

Btb::Btb(std::size_t num_block_entries, unsigned assoc,
         unsigned line_size)
    : assoc_(assoc), lineSize_(line_size),
      numSets_(num_block_entries / assoc)
{
    mbbp_assert(assoc >= 1, "associativity must be >= 1");
    mbbp_assert(num_block_entries % assoc == 0,
                "entries must be a multiple of the associativity");
    mbbp_assert(numSets_ >= 1 && isPowerOf2(numSets_),
                "BTB set count must be a power of two");
    entries_.resize(num_block_entries);
    for (auto &e : entries_)
        e.slots.resize(lineSize_);
}

uint64_t
Btb::tagOf(Addr block_addr, unsigned which) const
{
    // Tag = full line address above the set index, plus the target
    // number (Section 3.1); two bits of target number allow up to
    // four logical arrays for multi-block extensions.
    mbbp_assert(which < 4, "BTB supports at most 4 target numbers");
    uint64_t line = block_addr / lineSize_;
    return ((line / numSets_) << 2) | which;
}

std::size_t
Btb::setOf(Addr block_addr) const
{
    return (block_addr / lineSize_) & (numSets_ - 1);
}

int
Btb::findWay(std::size_t set, uint64_t tag) const
{
    for (unsigned w = 0; w < assoc_; ++w) {
        const Entry &e = entries_[set * assoc_ + w];
        if (e.valid && e.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

TargetPrediction
Btb::predict(Addr block_addr, unsigned pos, unsigned which) const
{
    mbbp_assert(pos < lineSize_, "BTB position out of range");
    std::size_t set = setOf(block_addr);
    int way = findWay(set, tagOf(block_addr, which));
    if (way < 0)
        return { false, 0, false };

    const Entry &e = entries_[set * assoc_ + way];
    e.lastUse = ++useClock_;
    const Slot &s = e.slots[pos];
    if (!s.valid)
        return { false, 0, false };
    return { true, s.target, s.isCall };
}

void
Btb::update(Addr block_addr, unsigned pos, unsigned which, Addr target,
            bool is_call)
{
    mbbp_assert(pos < lineSize_, "BTB position out of range");
    std::size_t set = setOf(block_addr);
    uint64_t tag = tagOf(block_addr, which);
    int way = findWay(set, tag);

    if (way < 0) {
        // Allocate the LRU way and clear its per-position slots.
        way = 0;
        uint64_t best = entries_[set * assoc_].lastUse;
        for (unsigned w = 0; w < assoc_; ++w) {
            Entry &e = entries_[set * assoc_ + w];
            if (!e.valid) {
                way = static_cast<int>(w);
                break;
            }
            if (e.lastUse < best) {
                best = e.lastUse;
                way = static_cast<int>(w);
            }
        }
        Entry &e = entries_[set * assoc_ + way];
        e.tag = tag;
        e.valid = true;
        for (auto &s : e.slots)
            s = Slot{};
    }

    Entry &e = entries_[set * assoc_ + way];
    e.lastUse = ++useClock_;
    e.slots[pos] = { target, is_call, true };
}

uint64_t
Btb::storageBits(unsigned line_index_bits) const
{
    // Per Table 7's accounting style: targets plus tags. A BTB entry
    // stores full target addresses (line index + offset) and a tag.
    unsigned offset_bits = floorLog2(lineSize_);
    uint64_t target_bits = static_cast<uint64_t>(lineSize_) *
                           (line_index_bits + offset_bits);
    uint64_t tag_bits = 30 - floorLog2(numSets_ ? numSets_ : 1);
    return entries_.size() * (target_bits + tag_bits + 1);
}

} // namespace mbbp

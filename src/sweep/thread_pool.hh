/**
 * @file
 * A fixed-size work-stealing thread pool for design-space sweeps.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO (hot
 * caches) and steals FIFO from a sibling when empty (oldest work
 * first, the classic Chase-Lev discipline without the lock-free
 * machinery -- sweep jobs are milliseconds to seconds long, so a
 * per-deque mutex is invisible in profile). Tasks submitted from
 * outside the pool are distributed round-robin.
 *
 * The first exception a task throws is captured and rethrown from
 * wait(); remaining tasks still drain so the pool is reusable.
 */

#ifndef MBBP_SWEEP_THREAD_POOL_HH
#define MBBP_SWEEP_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mbbp
{

/** Fixed worker pool with per-worker deques and stealing. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 = defaultThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Safe from any thread, including workers. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow
     * the first captured task exception (if any). The pool stays
     * usable afterwards.
     */
    void wait();

    unsigned numWorkers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Hardware concurrency, with a sane floor of 1. */
    static unsigned defaultThreads();

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);
    bool takeTask(std::size_t self, std::function<void()> &task);

    std::vector<std::unique_ptr<Worker>> queues_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;              //!< state below
    std::condition_variable wake_;  //!< work available / shutdown
    std::condition_variable idle_;  //!< outstanding reached zero
    std::size_t outstanding_ = 0;   //!< submitted, not yet finished
    std::size_t pending_ = 0;       //!< submitted, not yet claimed
    std::size_t nextQueue_ = 0;     //!< round-robin submit target
    std::exception_ptr firstError_;
    bool stopping_ = false;
};

/**
 * A completion scope over a *shared* ThreadPool: tasks submitted
 * through a TaskGroup are tracked by the group, so wait() blocks only
 * on this group's tasks -- not on whatever else (other sweeps, other
 * service jobs) the pool is running. The first exception thrown by a
 * member task is captured per group and rethrown from wait(), which
 * keeps independent jobs' failures from cross-contaminating the
 * pool-wide error slot.
 *
 * This is what lets a long-running service multiplex many concurrent
 * sweeps onto one work-stealing pool: each job gets its own group,
 * its own wait, and its own error.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}

    /** wait() must have drained the group before destruction. */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Enqueue one task on the underlying pool, tracked here. */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted through this group finished,
     * then rethrow the group's first captured exception (if any).
     * The group is reusable afterwards.
     */
    void wait();

    ThreadPool &pool() { return pool_; }

  private:
    ThreadPool &pool_;
    std::mutex mutex_;
    std::condition_variable idle_;
    std::size_t outstanding_ = 0;
    std::exception_ptr firstError_;
};

/**
 * Run @p fn over every element of @p items on @p pool and collect
 * the results in input order -- the deterministic-aggregation
 * primitive the sweep runner builds on. @p fn receives (item, index).
 * Exceptions propagate out of the call (via ThreadPool::wait).
 */
template <typename T, typename Fn>
auto
parallelMap(ThreadPool &pool, const std::vector<T> &items, Fn fn)
    -> std::vector<decltype(fn(items.front(), std::size_t{0}))>
{
    using R = decltype(fn(items.front(), std::size_t{0}));
    std::vector<R> results(items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        pool.submit([&, i] { results[i] = fn(items[i], i); });
    pool.wait();
    return results;
}

} // namespace mbbp

#endif // MBBP_SWEEP_THREAD_POOL_HH

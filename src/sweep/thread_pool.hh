/**
 * @file
 * A fixed-size work-stealing thread pool for design-space sweeps.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO (hot
 * caches) and steals FIFO from a sibling when empty (oldest work
 * first, the classic Chase-Lev discipline without the lock-free
 * machinery -- sweep jobs are milliseconds to seconds long, so a
 * per-deque mutex is invisible in profile). Tasks submitted from
 * outside the pool are distributed round-robin.
 *
 * The first exception a task throws is captured and rethrown from
 * wait(); remaining tasks still drain so the pool is reusable.
 */

#ifndef MBBP_SWEEP_THREAD_POOL_HH
#define MBBP_SWEEP_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mbbp
{

/** Fixed worker pool with per-worker deques and stealing. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 = defaultThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Safe from any thread, including workers. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow
     * the first captured task exception (if any). The pool stays
     * usable afterwards.
     */
    void wait();

    unsigned numWorkers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Hardware concurrency, with a sane floor of 1. */
    static unsigned defaultThreads();

    /** TaskGroups currently holding unfinished work on this pool. */
    std::size_t activeGroupCount() const
    {
        return activeGroups_.load(std::memory_order_relaxed);
    }

  private:
    friend class TaskGroup;

    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);
    bool takeTask(std::size_t self, std::function<void()> &task);

    std::vector<std::unique_ptr<Worker>> queues_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;              //!< state below
    std::condition_variable wake_;  //!< work available / shutdown
    std::condition_variable idle_;  //!< outstanding reached zero
    std::size_t outstanding_ = 0;   //!< submitted, not yet finished
    std::size_t pending_ = 0;       //!< submitted, not yet claimed
    std::size_t nextQueue_ = 0;     //!< round-robin submit target
    std::exception_ptr firstError_;
    bool stopping_ = false;

    /**
     * Fair-share bookkeeping for TaskGroups. The sum of the weights
     * of groups with unfinished work; a group's share of the workers
     * is proportional to its weight. Atomics, not the pool mutex:
     * groups read these on every release decision.
     */
    std::atomic<std::size_t> activeWeight_{ 0 };
    std::atomic<std::size_t> activeGroups_{ 0 };
};

/**
 * A completion scope over a *shared* ThreadPool: tasks submitted
 * through a TaskGroup are tracked by the group, so wait() blocks only
 * on this group's tasks -- not on whatever else (other sweeps, other
 * service jobs) the pool is running. The first exception thrown by a
 * member task is captured per group and rethrown from wait(), which
 * keeps independent jobs' failures from cross-contaminating the
 * pool-wide error slot.
 *
 * Groups also enforce *fair pool sharing*: a group buffers its tasks
 * and releases at most its weighted share of the workers,
 * ceil(workers * weight / totalActiveWeight), into the pool at a
 * time (always at least one, so progress is guaranteed). Only groups
 * with unfinished work count toward the total, which makes the
 * discipline work-conserving: a lone group still gets the whole
 * pool, and when a competitor drains, the survivors grow back to the
 * full width as their own tasks complete. Nothing is preempted --
 * shares converge at task granularity.
 *
 * This is what lets a long-running service multiplex many concurrent
 * sweeps onto one work-stealing pool: each job gets its own group,
 * its own budget, its own wait, and its own error.
 */
class TaskGroup
{
  public:
    /** @param weight Relative share of the pool; 0 is clamped to 1. */
    explicit TaskGroup(ThreadPool &pool, unsigned weight = 1);

    /** wait() must have drained the group before destruction. */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /**
     * Enqueue one task, tracked by this group and released to the
     * pool when the group is within its fair share.
     */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted through this group finished,
     * then rethrow the group's first captured exception (if any).
     * The group is reusable afterwards.
     */
    void wait();

    ThreadPool &pool() { return pool_; }

    unsigned weight() const { return weight_; }

    /**
     * Largest number of this group's tasks ever simultaneously
     * released to the pool -- the observable face of the budget
     * (never exceeds the group's share while competitors are
     * active). Test/diagnostic introspection.
     */
    std::size_t peakReleased() const;

  private:
    /**
     * Heap-allocated so the completion callbacks of in-flight tasks
     * can outlive any individual stack frame; the group itself still
     * asserts it is drained before destruction.
     */
    struct State
    {
        ThreadPool &pool;
        const unsigned weight;
        std::mutex mutex;
        std::condition_variable idle;
        std::deque<std::function<void()>> held;  //!< not yet released
        std::size_t released = 0;    //!< on the pool, unfinished
        std::size_t peakReleased = 0;
        std::size_t outstanding = 0; //!< held + released
        bool active = false;         //!< counted in the pool totals
        std::exception_ptr firstError;

        State(ThreadPool &p, unsigned w) : pool(p), weight(w) {}
    };

    /** Release held tasks up to the fair share. Call locked. */
    static void pumpLocked(const std::shared_ptr<State> &st);
    static void runOne(const std::shared_ptr<State> &st,
                       std::function<void()> &task);

    ThreadPool &pool_;
    unsigned weight_;
    std::shared_ptr<State> st_;
};

/**
 * Run @p fn over every element of @p items on @p pool and collect
 * the results in input order -- the deterministic-aggregation
 * primitive the sweep runner builds on. @p fn receives (item, index).
 * Exceptions propagate out of the call (via ThreadPool::wait).
 */
template <typename T, typename Fn>
auto
parallelMap(ThreadPool &pool, const std::vector<T> &items, Fn fn)
    -> std::vector<decltype(fn(items.front(), std::size_t{0}))>
{
    using R = decltype(fn(items.front(), std::size_t{0}));
    std::vector<R> results(items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        pool.submit([&, i] { results[i] = fn(items[i], i); });
    pool.wait();
    return results;
}

} // namespace mbbp

#endif // MBBP_SWEEP_THREAD_POOL_HH

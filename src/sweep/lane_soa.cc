/**
 * @file
 * SoA tile construction, result folding, eligibility, and the
 * runtime kernel dispatch table (see lane_soa.hh).
 */

#include "sweep/lane_soa.hh"

#include <map>

#include "fetch/penalty_model.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

// Per-ISA kernel tables, instantiated from lane_soa_impl.hh.
namespace soa_scalar
{
const LaneSoaKernels &kernels();
}
#if defined(MBBP_SIMD_X86)
namespace soa_avx2
{
const LaneSoaKernels &kernels();
}
namespace soa_avx512
{
const LaneSoaKernels &kernels();
}
#endif

const char *
soaFallbackName(SoaFallback reason)
{
    switch (reason) {
      case SoaFallback::Eligible:
        return "eligible";
      case SoaFallback::FiniteICache:
        return "finite_icache";
      case SoaFallback::BtbTarget:
        return "btb_target";
      case SoaFallback::TargetGeometry:
        return "target_geometry";
      case SoaFallback::NoRas:
        return "no_ras";
      case SoaFallback::BlockWidth:
        return "block_width";
      case SoaFallback::SelectGeometry:
        return "select_geometry";
      case SoaFallback::DoubleSelect:
        return "double_select";
      case SoaFallback::BitGeometry:
        return "bit_geometry";
    }
    return "unknown";
}

SoaFallback
laneSoaFallback(BatchEngineKind kind, const FetchEngineConfig &cfg)
{
    // TwoAhead lanes carry only a GHR and the two-ahead address
    // table: none of the structures the other gates protect are
    // touched, so everything but doubleSelect (which the reference
    // engine asserts against) is columnar.
    if (kind == BatchEngineKind::TwoAhead)
        return cfg.doubleSelect ? SoaFallback::DoubleSelect
                                : SoaFallback::Eligible;
    // Double selection is a Dual-only mechanism; the reference
    // BatchLane asserts it away for Single and Multi.
    if (cfg.doubleSelect && kind != BatchEngineKind::Dual)
        return SoaFallback::DoubleSelect;
    // Finite i-cache contents keep per-lane, per-access LRU
    // replacement state: the only remaining scalar-fallback feature.
    if (cfg.icacheLines != 0)
        return SoaFallback::FiniteICache;
    if (cfg.targetKind != TargetKind::Nls)
        return SoaFallback::BtbTarget;
    if (cfg.targetEntries == 0 ||
        !isPowerOf2(cfg.targetEntries))
        return SoaFallback::TargetGeometry;
    if (cfg.rasEntries == 0)
        return SoaFallback::NoRas;
    if (!isPowerOf2(cfg.icache.blockWidth))
        return SoaFallback::BlockWidth;
    // The arena direct-maps lines with bitEntries - 1 as the mask.
    if (cfg.bitEntries != 0 && !isPowerOf2(cfg.bitEntries))
        return SoaFallback::BitGeometry;
    // Select-table kinds flat-index (table * entries + idx) * slots,
    // which requires the gshare index to stay inside one table.
    if ((kind == BatchEngineKind::Dual ||
         kind == BatchEngineKind::Multi) &&
        (cfg.numPhts != 1 || !isPowerOf2(cfg.numSelectTables)))
        return SoaFallback::SelectGeometry;
    return SoaFallback::Eligible;
}

bool
laneSoaEligible(BatchEngineKind kind, const FetchEngineConfig &cfg)
{
    return laneSoaFallback(kind, cfg) == SoaFallback::Eligible;
}

void
SoaTile::build(BatchEngineKind k, unsigned num_blocks,
               const std::vector<const FetchEngineConfig *> &cs,
               unsigned line_size)
{
    kind = k;
    n = static_cast<unsigned>(cs.size());
    mbbp_assert(n >= 1 && n <= 64, "SoA tiles carry 1..64 lanes");
    padN = (n + kPad - 1) / kPad * kPad;
    allMask = n == 64 ? ~uint64_t{ 0 } : (uint64_t{ 1 } << n) - 1;
    numBlocks = kind == BatchEngineKind::Multi ? num_blocks
        : kind == BatchEngineKind::Dual        ? 2
                                               : 1;
    lineSize = line_size;
    blockWidth = cs[0]->icache.blockWidth;
    shift = static_cast<unsigned>(floorLog2(blockWidth));
    numBanks = cs[0]->icache.numBanks;
    nlsArrays = kind == BatchEngineKind::Multi ? numBlocks
        : kind == BatchEngineKind::Dual        ? 2
                                               : 1;
    anyMultiPht = false;
    ran = false;
    nearMask = storedOffMask = 0;
    dsMask = delayedMask = bitMask = 0;

    phtBase.assign(padN, 0);
    ghr.assign(padN, 0);
    idxMask.assign(padN, 0);
    phtTabMask.assign(padN, 0);
    histBits.assign(padN, 0);
    stBase.assign(padN, 0);
    stTabMask.assign(padN, 0);
    stEntries.assign(padN, 0);
    stSlots.assign(padN, 0);
    nlsBase.assign(padN, 0);
    nlsIdxMask.assign(padN, 0);
    rasOf.assign(padN, 0);
    bitBase.assign(padN, 0);
    bitEntMask.assign(padN, 0);
    taBase.assign(padN, 0);
    rasPeeks.assign(n, 0);
    phtLookups.assign(n, 0);
    stats.assign(n, FetchStats{});
    bwRuns.assign(n, obs::HistogramData{});
    cleanRun.assign(n, 0);
    attr.clear();
    for (unsigned l = 0; l < n; ++l)
        attr.push_back(std::make_unique<obs::AttributionSink>());

    const PenaltyModel pm(false);
    const PenaltyModel pmds(true);
    for (unsigned pk = 0; pk < numPenaltyKinds; ++pk)
        for (unsigned slot = 0; slot < 4; ++slot) {
            pcycles[pk][slot] =
                pm.cycles(static_cast<PenaltyKind>(pk), slot);
            pcyclesDS[pk][slot] =
                pmds.cycles(static_cast<PenaltyKind>(pk), slot);
        }
    refetchExtra = pm.refetchExtra();

    for (SoaTile::Scan *s : { &scanB, &scanC }) {
        s->src.assign(padN, 0);
        s->off.assign(padN, 0);
        s->posByte.assign(padN, 0);
        s->nnt.assign(padN, 0);
        s->tgt.assign(padN, 0);
    }
    idx1.assign(padN, 0);
    idx2.assign(padN, 0);
    gatherOff.assign(padN, 0);
    gatherVal.assign(padN, 0);
    stOff.assign(padN, 0);
    stWord.assign(padN, 0);
    expWord.assign(padN, 0);

    if (kind == BatchEngineKind::TwoAhead) {
        // The two-ahead kind replaces every predictor structure
        // with one address table per lane; none of the PHT / ST /
        // NLS / RAS / BIT arenas below apply.
        std::size_t ta_words = 0;
        for (unsigned l = 0; l < n; ++l) {
            const FetchEngineConfig &c = *cs[l];
            mbbp_assert(laneSoaEligible(kind, c),
                        "ineligible lane in SoA tile");
            idxMask[l] = mask(c.historyBits);
            histBits[l] = c.historyBits;
            taBase[l] = ta_words;
            ta_words += std::size_t{ 1 } << c.historyBits;
        }
        taAddr.assign(ta_words, 0);
        taValid.assign(ta_words, 0);
        return;
    }

    const bool has_select = kind == BatchEngineKind::Dual ||
        kind == BatchEngineKind::Multi;
    std::size_t pht_words = 0, st_words = 0, nls_words = 0;
    std::size_t bit_words = 0;
    std::map<std::size_t, uint32_t> group_of;
    for (unsigned l = 0; l < n; ++l) {
        const FetchEngineConfig &c = *cs[l];
        mbbp_assert(laneSoaEligible(kind, c),
                    "ineligible lane in SoA tile");
        const uint64_t lane_bit = uint64_t{ 1 } << l;
        const std::size_t entries = std::size_t{ 1 }
            << c.historyBits;

        phtBase[l] = pht_words;
        pht_words += entries * c.numPhts * blockWidth;
        idxMask[l] = mask(c.historyBits);
        phtTabMask[l] = c.numPhts - 1;
        histBits[l] = c.historyBits;
        anyMultiPht = anyMultiPht || c.numPhts > 1;
        if (c.nearBlock)
            nearMask |= lane_bit;
        if (c.nearBlockStoredOffset)
            storedOffMask |= lane_bit;
        if (c.delayedPhtUpdate)
            delayedMask |= lane_bit;
        if (c.doubleSelect)
            dsMask |= lane_bit;

        // Double-select lanes never consult their BIT (the
        // reference's stale check is the *else* arm of the
        // double-select stage), so they need no arena.
        if (c.bitEntries != 0 && !c.doubleSelect) {
            mbbp_assert(isPowerOf2(c.bitEntries),
                        "BIT entries must be a power of two");
            bitBase[l] = bit_words;
            bit_words += c.bitEntries * lineSize;
            bitEntMask[l] = c.bitEntries - 1;
            bitMask |= lane_bit;
        }

        if (has_select) {
            const std::size_t slots =
                kind == BatchEngineKind::Dual
                ? (c.doubleSelect ? 2u : 1u)
                : (numBlocks > 1 ? numBlocks - 1 : 1u);
            stBase[l] = st_words;
            st_words += entries * c.numSelectTables * slots;
            stTabMask[l] = c.numSelectTables - 1;
            stEntries[l] = entries;
            stSlots[l] = slots;
        }

        nlsBase[l] = nls_words;
        nls_words += c.targetEntries * nlsArrays * lineSize;
        nlsIdxMask[l] = c.targetEntries - 1;

        auto [it, fresh] = group_of.try_emplace(
            c.rasEntries,
            static_cast<uint32_t>(rasGroups.size()));
        if (fresh)
            rasGroups.push_back(
                std::make_unique<SoaRasGroup>(c.rasEntries));
        rasOf[l] = it->second;
    }

    // Pad lanes alias dedicated scratch slots (their masks are zero,
    // so every pad-lane access lands inside the scratch region).
    for (std::size_t l = n; l < padN; ++l) {
        phtBase[l] = pht_words;
        stBase[l] = st_words;
        nlsBase[l] = nls_words;
    }
    // PHT arena: + blockWidth scratch bytes for the pad lanes, + 8
    // trailing bytes so the 8-byte vector gathers never read past
    // the allocation. Counters start at 2 (SatCounter(2, 2)).
    pht.assign(pht_words + blockWidth + 8, 2);
    // ST scratch: pad lanes have stSlots 0, so their word offset is
    // st_words + slot with slot <= 3.
    st.assign(has_select ? st_words + 4 : 0, 0);
    nls.assign(nls_words + nlsArrays * lineSize, 0);
    // BIT arenas are scalar-accessed (bitMask lanes only), so no
    // pad-lane scratch is needed. All-lines-NonBranch start state.
    bit.assign(bit_words, 0);
    bitLineNear.assign(lineSize, 0);
    bitLinePlain.assign(lineSize, 0);

    stagedHead = stagedCount = 0;
    for (StagedBatch &b : staged) {
        b.nblocks = 0;
        for (StagedBlock &blk : b.blocks) {
            blk.idx.assign(delayedMask ? padN : 0, 0);
            blk.conds.clear();
        }
    }
}

std::vector<FetchStats>
SoaTile::finish()
{
    std::vector<FetchStats> out(n);
    const bool two_ahead = kind == BatchEngineKind::TwoAhead;
    // The reference flushes nothing for an empty trace -- except the
    // two-ahead engine, whose teardown (attribution, bandwidth
    // histograms, runs counter) is unconditional.
    if (!ran && !two_ahead)
        return out;

    const std::string prefix =
        std::string("engine.") + batchEngineKindName(kind);
    const std::string insts_name = prefix + ".insts_per_request";
    const std::string blocks_name = prefix + ".blocks_per_request";
    const std::string runs_name = prefix + ".mispredict_run";
    const std::string runs_counter = prefix + ".runs";
    const auto bank =
        static_cast<std::size_t>(PenaltyKind::BankConflict);
    const bool has_select = kind == BatchEngineKind::Dual ||
        kind == BatchEngineKind::Multi;
    // Only the one- and two-block engines model BBR occupancy.
    const bool has_bbr = kind == BatchEngineKind::Single ||
        kind == BatchEngineKind::Dual;

    for (unsigned l = 0; l < n; ++l) {
        const uint64_t lane_bit = uint64_t{ 1 } << l;
        FetchStats &s = out[l];
        s = stats[l];
        s.instructions = uInstructions;
        s.fetchRequests = uFetchRequests;
        s.blocksFetched = uBlocks;
        s.branchesExecuted = uBranches;
        s.condExecuted = uConds;
        s.nearBlockConds = uNearConds;
        s.icacheAccesses = uIcacheAccesses;
        s.penaltyCycles[bank] += uBankCycles;
        s.penaltyEvents[bank] += uBankEvents;

        if (!two_ahead) {
            const SoaRasGroup &g = *rasGroups[rasOf[l]];
            s.rasOverflows = g.overflows;
            if (has_bbr)
                s.bbrPeak = bbrPeak;

            // The reference per-lane flush sequence (BatchLane
            // teardown in runSingleTile/runDualTile/runMultiTile).
            // Delayed-update lanes report only the applied batches;
            // the trailing two are never flushed, like PhtTrainer.
            obs::flushCounter("predict.pht.lookup", phtLookups[l]);
            obs::flushCounter("predict.pht.update",
                              (delayedMask & lane_bit)
                                  ? uPhtUpdatesDelayed
                                  : uPhtUpdates);
            if (bitMask & lane_bit) {
                obs::flushCounter("predict.bit.probe", uBitProbes);
                obs::flushCounter("predict.bit.update", uBitUpdates);
            }
            obs::flushCounter("predict.ras.push", g.pushes);
            obs::flushCounter("predict.ras.pop", g.pops);
            obs::flushCounter("predict.ras.bypass", rasPeeks[l]);
            if (has_select) {
                const bool ds = (dsMask & lane_bit) != 0;
                obs::flushCounter("predict.select.read",
                                  ds ? uSelReadsDS : uSelReads);
                obs::flushCounter("predict.select.write",
                                  ds ? uSelWritesDS : uSelWrites);
            }
        }
        attr[l]->flush();
        obs::flushHistogram(insts_name, bwInsts);
        obs::flushHistogram(blocks_name, bwBlocks);
        obs::flushHistogram(runs_name, bwRuns[l]);
        obs::flushCounter(runs_counter, 1);
    }
    return out;
}

const LaneSoaKernels &
laneSoaKernelsFor(simd::Level level)
{
#if defined(MBBP_SIMD_X86)
    switch (level) {
      case simd::Level::Avx512:
        return soa_avx512::kernels();
      case simd::Level::Avx2:
        return soa_avx2::kernels();
      case simd::Level::Scalar:
        break;
    }
#else
    (void)level;
#endif
    return soa_scalar::kernels();
}

} // namespace mbbp

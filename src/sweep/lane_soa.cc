/**
 * @file
 * SoA tile construction, result folding, eligibility, and the
 * runtime kernel dispatch table (see lane_soa.hh).
 */

#include "sweep/lane_soa.hh"

#include <map>

#include "fetch/penalty_model.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

// Per-ISA kernel tables, instantiated from lane_soa_impl.hh.
namespace soa_scalar
{
const LaneSoaKernels &kernels();
}
#if defined(MBBP_SIMD_X86)
namespace soa_avx2
{
const LaneSoaKernels &kernels();
}
namespace soa_avx512
{
const LaneSoaKernels &kernels();
}
#endif

bool
laneSoaEligible(BatchEngineKind kind, const FetchEngineConfig &cfg)
{
    if (kind != BatchEngineKind::Single &&
        kind != BatchEngineKind::Dual)
        return false;
    // Columnar lanes model the immediate-update, single-selection,
    // perfect-BIT, perfect-contents, NLS configuration space; every
    // other feature keeps per-lane structure (or per-probe stat side
    // effects) that would serialize the staged passes.
    if (cfg.delayedPhtUpdate || cfg.doubleSelect)
        return false;
    if (cfg.bitEntries != 0 || cfg.icacheLines != 0)
        return false;
    if (cfg.targetKind != TargetKind::Nls)
        return false;
    if (cfg.targetEntries == 0 ||
        !isPowerOf2(cfg.targetEntries))
        return false;
    if (cfg.rasEntries == 0)
        return false;
    if (!isPowerOf2(cfg.icache.blockWidth))
        return false;
    if (kind == BatchEngineKind::Dual &&
        (cfg.numPhts != 1 || !isPowerOf2(cfg.numSelectTables)))
        return false;
    return true;
}

void
SoaTile::build(BatchEngineKind k,
               const std::vector<const FetchEngineConfig *> &cs,
               unsigned line_size)
{
    kind = k;
    n = static_cast<unsigned>(cs.size());
    mbbp_assert(n >= 1 && n <= 64, "SoA tiles carry 1..64 lanes");
    padN = (n + kPad - 1) / kPad * kPad;
    allMask = n == 64 ? ~uint64_t{ 0 } : (uint64_t{ 1 } << n) - 1;
    lineSize = line_size;
    blockWidth = cs[0]->icache.blockWidth;
    shift = static_cast<unsigned>(floorLog2(blockWidth));
    numBanks = cs[0]->icache.numBanks;
    nlsArrays = kind == BatchEngineKind::Dual ? 2 : 1;

    phtBase.assign(padN, 0);
    ghr.assign(padN, 0);
    idxMask.assign(padN, 0);
    phtTabMask.assign(padN, 0);
    histBits.assign(padN, 0);
    stBase.assign(padN, 0);
    stTabMask.assign(padN, 0);
    stEntries.assign(padN, 0);
    nlsBase.assign(padN, 0);
    nlsIdxMask.assign(padN, 0);
    rasOf.assign(padN, 0);
    rasPeeks.assign(n, 0);
    phtLookups.assign(n, 0);
    stats.assign(n, FetchStats{});
    bwRuns.assign(n, obs::HistogramData{});
    cleanRun.assign(n, 0);
    attr.clear();
    for (unsigned l = 0; l < n; ++l)
        attr.push_back(std::make_unique<obs::AttributionSink>());

    std::size_t pht_words = 0, st_words = 0, nls_words = 0;
    std::map<std::size_t, uint32_t> group_of;
    for (unsigned l = 0; l < n; ++l) {
        const FetchEngineConfig &c = *cs[l];
        mbbp_assert(laneSoaEligible(kind, c),
                    "ineligible lane in SoA tile");
        const std::size_t entries = std::size_t{ 1 }
            << c.historyBits;

        phtBase[l] = pht_words;
        pht_words += entries * c.numPhts * blockWidth;
        idxMask[l] = mask(c.historyBits);
        phtTabMask[l] = c.numPhts - 1;
        histBits[l] = c.historyBits;
        anyMultiPht = anyMultiPht || c.numPhts > 1;
        if (c.nearBlock)
            nearMask |= uint64_t{ 1 } << l;
        if (c.nearBlockStoredOffset)
            storedOffMask |= uint64_t{ 1 } << l;

        if (kind == BatchEngineKind::Dual) {
            stBase[l] = st_words;
            st_words += entries * c.numSelectTables;
            stTabMask[l] = c.numSelectTables - 1;
            stEntries[l] = entries;
        }

        nlsBase[l] = nls_words;
        nls_words += c.targetEntries * nlsArrays * lineSize;
        nlsIdxMask[l] = c.targetEntries - 1;

        auto [it, fresh] = group_of.try_emplace(
            c.rasEntries,
            static_cast<uint32_t>(rasGroups.size()));
        if (fresh)
            rasGroups.push_back(
                std::make_unique<SoaRasGroup>(c.rasEntries));
        rasOf[l] = it->second;
    }

    // Pad lanes alias dedicated scratch slots (their masks are zero,
    // so every pad-lane access lands inside the scratch region).
    for (std::size_t l = n; l < padN; ++l) {
        phtBase[l] = pht_words;
        stBase[l] = st_words;
        nlsBase[l] = nls_words;
    }
    // PHT arena: + blockWidth scratch bytes for the pad lanes, + 8
    // trailing bytes so the 8-byte vector gathers never read past
    // the allocation. Counters start at 2 (SatCounter(2, 2)).
    pht.assign(pht_words + blockWidth + 8, 2);
    st.assign(kind == BatchEngineKind::Dual ? st_words + 1 : 0, 0);
    nls.assign(nls_words + nlsArrays * lineSize, 0);

    const PenaltyModel pm(false);
    for (unsigned pk = 0; pk < numPenaltyKinds; ++pk)
        for (unsigned slot = 0; slot < 2; ++slot)
            pcycles[pk][slot] =
                pm.cycles(static_cast<PenaltyKind>(pk), slot);
    refetchExtra = pm.refetchExtra();

    for (SoaTile::Scan *s : { &scanB, &scanC }) {
        s->src.assign(padN, 0);
        s->off.assign(padN, 0);
        s->posByte.assign(padN, 0);
        s->nnt.assign(padN, 0);
        s->tgt.assign(padN, 0);
    }
    idx1.assign(padN, 0);
    idx2.assign(padN, 0);
    gatherOff.assign(padN, 0);
    gatherVal.assign(padN, 0);
    stOff.assign(padN, 0);
    stWord.assign(padN, 0);
    expWord.assign(padN, 0);
}

std::vector<FetchStats>
SoaTile::finish()
{
    std::vector<FetchStats> out(n);
    if (!ran)
        return out;     // the reference flushes nothing for an
                        // empty trace

    const bool dual = kind == BatchEngineKind::Dual;
    const char *prefix = dual ? "engine.dual" : "engine.single";
    const std::string insts_name =
        std::string(prefix) + ".insts_per_request";
    const std::string blocks_name =
        std::string(prefix) + ".blocks_per_request";
    const std::string runs_name =
        std::string(prefix) + ".mispredict_run";
    const std::string runs_counter =
        std::string(prefix) + ".runs";
    const auto bank =
        static_cast<std::size_t>(PenaltyKind::BankConflict);

    for (unsigned l = 0; l < n; ++l) {
        FetchStats &s = out[l];
        s = stats[l];
        s.instructions = uInstructions;
        s.fetchRequests = uFetchRequests;
        s.blocksFetched = uBlocks;
        s.branchesExecuted = uBranches;
        s.condExecuted = uConds;
        s.nearBlockConds = uNearConds;
        s.icacheAccesses = uIcacheAccesses;
        s.penaltyCycles[bank] += uBankCycles;
        s.penaltyEvents[bank] += uBankEvents;
        const SoaRasGroup &g = *rasGroups[rasOf[l]];
        s.rasOverflows = g.overflows;
        s.bbrPeak = bbrPeak;

        // The reference per-lane flush sequence (BatchLane teardown
        // in runSingleTile/runDualTile).
        obs::flushCounter("predict.pht.lookup", phtLookups[l]);
        obs::flushCounter("predict.pht.update", uPhtUpdates);
        obs::flushCounter("predict.ras.push", g.pushes);
        obs::flushCounter("predict.ras.pop", g.pops);
        obs::flushCounter("predict.ras.bypass", rasPeeks[l]);
        if (dual) {
            obs::flushCounter("predict.select.read", uSelReads);
            obs::flushCounter("predict.select.write", uSelWrites);
        }
        attr[l]->flush();
        obs::flushHistogram(insts_name, bwInsts);
        obs::flushHistogram(blocks_name, bwBlocks);
        obs::flushHistogram(runs_name, bwRuns[l]);
        obs::flushCounter(runs_counter, 1);
    }
    return out;
}

const LaneSoaKernels &
laneSoaKernelsFor(simd::Level level)
{
#if defined(MBBP_SIMD_X86)
    switch (level) {
      case simd::Level::Avx512:
        return soa_avx512::kernels();
      case simd::Level::Avx2:
        return soa_avx2::kernels();
      case simd::Level::Scalar:
        break;
    }
#else
    (void)level;
#endif
    return soa_scalar::kernels();
}

} // namespace mbbp

/**
 * @file
 * Parallel sweep execution: expand a SweepSpec into jobs, run each
 * job's whole-suite simulation on a work-stealing thread pool with
 * shared read-only access to one TraceCache, and collect results in
 * deterministic (job-index) order, so the aggregate output of an
 * 8-thread run is byte-identical to the single-threaded one.
 */

#ifndef MBBP_SWEEP_SWEEP_RUNNER_HH
#define MBBP_SWEEP_SWEEP_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "core/suite_runner.hh"
#include "sweep/batch_replay.hh"
#include "sweep/sweep_spec.hh"
#include "util/cancel.hh"

namespace mbbp
{

class ThreadPool;

namespace obs
{
class Domain;
}

/** Completion notification for one job (serialized by the runner). */
struct SweepProgress
{
    std::size_t completed = 0;      //!< jobs finished so far
    std::size_t total = 0;
    const SweepJob *job = nullptr;  //!< the job that just finished
    double jobSeconds = 0.0;
};

/** Execution knobs. */
struct SweepOptions
{
    unsigned threads = 0;           //!< 0 = ThreadPool default

    /**
     * Replay the TraceCache's shared DecodedTrace artifacts (decode
     * once per (trace, geometry), share read-only across workers).
     * False decodes privately inside every job -- same results,
     * pre-artifact wall clock. Benchmarking knob; leave on.
     */
    bool sharedDecode = true;

    /**
     * Group compatible sweep points (same BatchKey: engine kind +
     * full i-cache geometry) and advance each group in lockstep
     * through one trace pass per cache-budgeted tile, instead of
     * replaying the trace once per job (see sweep/batch_replay.hh).
     * Results are field-exact versus the per-config path; jobs whose
     * key matches no other job fall back to that path automatically.
     */
    bool batchedReplay = false;

    /** Tile sizing when batchedReplay is on. */
    BatchTileOptions batchTile;

    /** Called after each job completes; never concurrently. */
    std::function<void(const SweepProgress &)> progress;

    /**
     * Run on this shared pool instead of constructing a private one
     * (`threads` is then ignored). The sweep's tasks join whatever
     * else the pool is running; completion is tracked per sweep via
     * a TaskGroup, so concurrent sweeps on one pool do not observe
     * each other. This is how the sweep service multiplexes jobs.
     */
    ThreadPool *pool = nullptr;

    /**
     * Relative fair-share weight of this sweep's TaskGroup on a
     * shared pool (see TaskGroup): with N concurrent sweeps of equal
     * weight each is released ceil(workers/N) tasks at a time.
     * Ignored (harmlessly) on a private pool. 0 is clamped to 1.
     */
    unsigned groupWeight = 1;

    /**
     * Cooperative cancellation. Checked before each job starts and
     * between per-program replays inside a job, so a cancel request
     * is honored within roughly one program replay's latency. A
     * cancelled sweep drains its in-flight tasks (freeing the pool
     * slots) and then throws CancelledError from runSweep*.
     */
    CancelToken cancel;

    /**
     * Record this sweep's metrics, spans and attribution into this
     * obs::Domain (installed via obs::ScopedDomain on the submitting
     * thread and inside every worker task). Null inherits the
     * caller's current domain -- the process default for CLIs, which
     * is the exact pre-domain behavior. Give the domain a parent
     * chain ending at obs::defaultDomain() to keep the process-wide
     * aggregates counting; the sweep service hands each job its own
     * domain this way. Purely an accounting knob: results are
     * byte-identical with or without it.
     */
    obs::Domain *domain = nullptr;
};

/** One job's configuration and measured suite results. */
struct SweepJobResult
{
    SweepJob job;
    SuiteResult result;
    double seconds = 0.0;           //!< this job's wall clock
};

/** All jobs of one sweep, in deterministic job order. */
struct SweepResult
{
    std::string name;
    std::vector<std::string> benchmarks;    //!< empty = whole suite
    unsigned threads = 0;
    std::vector<SweepJobResult> jobs;
    double wallSeconds = 0.0;
};

/**
 * Expand and execute @p spec. Traces come from @p traces (shared by
 * every worker; generated at most once each). Exceptions thrown by a
 * job -- including SweepError from late validation -- propagate to
 * the caller after in-flight jobs drain.
 */
SweepResult runSweep(const SweepSpec &spec, TraceCache &traces,
                     const SweepOptions &opts = {});

/**
 * Execute pre-expanded @p jobs over @p benchmarks (empty = whole
 * suite). The building block for benches that need custom job lists.
 */
SweepResult runSweepJobs(const std::vector<SweepJob> &jobs,
                         TraceCache &traces,
                         const std::vector<std::string> &benchmarks,
                         const SweepOptions &opts = {});

} // namespace mbbp

#endif // MBBP_SWEEP_SWEEP_RUNNER_HH

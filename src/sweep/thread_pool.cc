#include "sweep/thread_pool.hh"

#include "util/logging.hh"

namespace mbbp
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<Worker>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::submit(std::function<void()> task)
{
    mbbp_assert(task != nullptr, "empty task submitted");
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        mbbp_assert(!stopping_, "submit on a stopping pool");
        target = nextQueue_;
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
    }
    {
        Worker &q = *queues_[target];
        std::lock_guard<std::mutex> lock(q.mutex);
        q.tasks.push_back(std::move(task));
    }
    // Publish the task only after it is visible in a deque, so a
    // worker that observes pending_ > 0 is guaranteed to find it.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++outstanding_;
        ++pending_;
    }
    wake_.notify_one();
}

bool
ThreadPool::takeTask(std::size_t self, std::function<void()> &task)
{
    {
        // Own work first, newest first: best cache locality.
        Worker &q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            task = std::move(q.tasks.back());
            q.tasks.pop_back();
            return true;
        }
    }
    // Steal oldest-first from the siblings.
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        Worker &q = *queues_[(self + i) % queues_.size()];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            task = std::move(q.tasks.front());
            q.tasks.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || pending_ > 0;
            });
            if (pending_ == 0) {
                if (stopping_)
                    return;
                continue;
            }
            --pending_;     // claim one task; it exists in a deque
        }
        std::function<void()> task;
        while (!takeTask(self, task))
            std::this_thread::yield();  // racing claimant, rare
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--outstanding_ == 0)
                idle_.notify_all();
        }
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

} // namespace mbbp

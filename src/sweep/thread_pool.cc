#include "sweep/thread_pool.hh"

#include "obs/obs.hh"
#include "util/logging.hh"

namespace mbbp
{

namespace
{

/** Yields between takeTask() retries before giving the claim back. */
constexpr int kTakeSpins = 64;

obs::Counter &
submitCounter()
{
    static obs::Counter &c = obs::counter("sweep.pool.submit");
    return c;
}

obs::Counter &
stealCounter()
{
    static obs::Counter &c = obs::counter("sweep.pool.steal");
    return c;
}

obs::Counter &
idleWaitCounter()
{
    static obs::Counter &c = obs::counter("sweep.pool.idle_wait");
    return c;
}

obs::Counter &
takeRetryCounter()
{
    static obs::Counter &c = obs::counter("sweep.pool.take_retry");
    return c;
}

obs::Gauge &
queueDepthGauge()
{
    static obs::Gauge &g = obs::gauge("sweep.pool.queue_depth");
    return g;
}

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<Worker>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::submit(std::function<void()> task)
{
    mbbp_assert(task != nullptr, "empty task submitted");
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        mbbp_assert(!stopping_, "submit on a stopping pool");
        target = nextQueue_;
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
    }
    {
        Worker &q = *queues_[target];
        std::lock_guard<std::mutex> lock(q.mutex);
        q.tasks.push_back(std::move(task));
    }
    // Publish the task only after it is visible in a deque, so a
    // worker that observes pending_ > 0 is guaranteed to find it.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++outstanding_;
        ++pending_;
        queueDepthGauge().set(pending_);
    }
    submitCounter().add();
    wake_.notify_one();
}

bool
ThreadPool::takeTask(std::size_t self, std::function<void()> &task)
{
    {
        // Own work first, newest first: best cache locality.
        Worker &q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            task = std::move(q.tasks.back());
            q.tasks.pop_back();
            return true;
        }
    }
    // Steal oldest-first from the siblings.
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        Worker &q = *queues_[(self + i) % queues_.size()];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            task = std::move(q.tasks.front());
            q.tasks.pop_front();
            stealCounter().add();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!stopping_ && pending_ == 0)
                idleWaitCounter().add();
            wake_.wait(lock, [this] {
                return stopping_ || pending_ > 0;
            });
            if (pending_ == 0) {
                if (stopping_)
                    return;
                continue;
            }
            --pending_;     // claim one task; it exists in a deque
        }
        std::function<void()> task;
        bool got = takeTask(self, task);
        for (int spin = 0; !got && spin < kTakeSpins; ++spin) {
            // A racing claimant popped the task this claim mapped
            // to; its own task is still mid-publish. Rare and short.
            std::this_thread::yield();
            got = takeTask(self, task);
        }
        if (!got) {
            // Bounded spin exhausted: give the claim back and go
            // around through the condition variable, which re-checks
            // pending_/stopping_ under the lock instead of burning
            // the core until the racing submitter publishes.
            takeRetryCounter().add();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++pending_;
            }
            wake_.notify_one();
            continue;
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--outstanding_ == 0)
                idle_.notify_all();
        }
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return outstanding_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

namespace
{

obs::Gauge &
activeGroupsGauge()
{
    static obs::Gauge &g = obs::gauge("sweep.pool.active_groups");
    return g;
}

obs::Counter &
groupThrottledCounter()
{
    static obs::Counter &c =
        obs::counter("sweep.pool.group_throttled");
    return c;
}

} // namespace

TaskGroup::TaskGroup(ThreadPool &pool, unsigned weight)
    : pool_(pool), weight_(weight == 0 ? 1 : weight),
      st_(std::make_shared<State>(pool, weight == 0 ? 1 : weight))
{
}

TaskGroup::~TaskGroup()
{
    // A group abandoned with tasks in flight would complete into a
    // state nobody will ever wait on; that is a caller bug.
    std::lock_guard<std::mutex> lock(st_->mutex);
    mbbp_assert(st_->outstanding == 0,
                "TaskGroup destroyed with tasks in flight");
}

std::size_t
TaskGroup::peakReleased() const
{
    std::lock_guard<std::mutex> lock(st_->mutex);
    return st_->peakReleased;
}

void
TaskGroup::pumpLocked(const std::shared_ptr<State> &st)
{
    ThreadPool &pool = st->pool;
    while (!st->held.empty()) {
        // The share is re-read per release: competitors activating
        // or draining move it, and the ceiling keeps the split
        // work-conserving on worker counts that do not divide evenly
        // (3 workers / 2 groups = 2 each, never an idle worker while
        // both have work). The max() guarantees progress even when
        // more groups are active than there are workers.
        std::size_t total =
            pool.activeWeight_.load(std::memory_order_relaxed);
        if (total < st->weight)
            total = st->weight;     // racing activation; self counts
        std::size_t share = (pool.numWorkers() * st->weight +
                             total - 1) / total;
        if (share == 0)
            share = 1;
        if (st->released >= share) {
            groupThrottledCounter().add();
            return;
        }
        std::function<void()> task = std::move(st->held.front());
        st->held.pop_front();
        ++st->released;
        if (st->released > st->peakReleased)
            st->peakReleased = st->released;
        pool.submit([st, task = std::move(task)]() mutable {
            runOne(st, task);
        });
    }
}

void
TaskGroup::runOne(const std::shared_ptr<State> &st,
                  std::function<void()> &task)
{
    try {
        task();
    } catch (...) {
        std::lock_guard<std::mutex> lock(st->mutex);
        if (!st->firstError)
            st->firstError = std::current_exception();
    }
    bool idle = false;
    {
        std::lock_guard<std::mutex> lock(st->mutex);
        --st->released;
        --st->outstanding;
        if (st->outstanding == 0) {
            st->active = false;
            st->pool.activeWeight_.fetch_sub(
                st->weight, std::memory_order_relaxed);
            activeGroupsGauge().set(
                st->pool.activeGroups_.fetch_sub(
                    1, std::memory_order_relaxed) - 1);
            idle = true;
        } else {
            pumpLocked(st);
        }
    }
    if (idle)
        st->idle.notify_all();
}

void
TaskGroup::submit(std::function<void()> task)
{
    mbbp_assert(task != nullptr, "empty task submitted");
    std::lock_guard<std::mutex> lock(st_->mutex);
    ++st_->outstanding;
    st_->held.push_back(std::move(task));
    if (!st_->active) {
        st_->active = true;
        pool_.activeWeight_.fetch_add(st_->weight,
                                      std::memory_order_relaxed);
        activeGroupsGauge().set(
            pool_.activeGroups_.fetch_add(
                1, std::memory_order_relaxed) + 1);
    }
    pumpLocked(st_);
}

void
TaskGroup::wait()
{
    std::unique_lock<std::mutex> lock(st_->mutex);
    st_->idle.wait(lock, [this] { return st_->outstanding == 0; });
    if (st_->firstError) {
        std::exception_ptr err = st_->firstError;
        st_->firstError = nullptr;
        std::rethrow_exception(err);
    }
}

} // namespace mbbp

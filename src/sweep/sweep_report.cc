#include "sweep/sweep_report.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "core/report.hh"
#include "obs/attribution.hh"
#include "obs/metrics_json.hh"
#include "obs/obs.hh"
#include "util/json.hh"
#include "util/number_format.hh"

namespace mbbp
{

namespace
{

/** Swept field names, first-seen order across jobs. */
std::vector<std::string>
paramColumns(const SweepResult &result)
{
    std::vector<std::string> cols;
    for (const SweepJobResult &jr : result.jobs)
        for (const SweepParam &p : jr.job.params)
            if (std::find(cols.begin(), cols.end(), p.first) ==
                cols.end())
                cols.push_back(p.first);
    return cols;
}

const std::string *
paramValue(const SweepJob &job, const std::string &field)
{
    for (const SweepParam &p : job.params)
        if (p.first == field)
            return &p.second;
    return nullptr;
}

/** 9-significant-digit double, stable across platforms *and*
 *  locales (snprintf %g honors LC_NUMERIC; to_chars does not). */
std::string
fmtDouble(double v)
{
    return formatDouble(v, 9);
}

double
condMissRate(const FetchStats &s)
{
    return s.condExecuted == 0
               ? 0.0
               : static_cast<double>(s.condDirectionWrong) /
                     static_cast<double>(s.condExecuted);
}

/**
 * CSV scope label for a per-program row. Program names that collide
 * with the aggregate scopes (int/fp/all) are prefixed so the two row
 * kinds stay distinguishable; real suite names never collide, so
 * ordinary reports are unaffected.
 */
std::string
programScope(const std::string &name)
{
    if (name == "int" || name == "fp" || name == "all")
        return "program:" + name;
    return name;
}

void
csvCell(std::string &out, const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos) {
        out += cell;
        return;
    }
    out += '"';
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
}

void
csvStatsRow(std::string &out, const SweepJobResult &jr,
            const std::vector<std::string> &params,
            const std::string &scope, const FetchStats &s,
            const SweepReportOptions &opts)
{
    out += std::to_string(jr.job.index);
    for (const std::string &field : params) {
        out += ',';
        if (const std::string *v = paramValue(jr.job, field))
            csvCell(out, *v);
    }
    out += ',';
    csvCell(out, scope);
    out += ',' + std::to_string(s.instructions);
    out += ',' + std::to_string(s.fetchRequests);
    out += ',' + std::to_string(s.fetchCycles());
    out += ',' + std::to_string(s.blocksFetched);
    out += ',' + std::to_string(s.branchesExecuted);
    out += ',' + std::to_string(s.condExecuted);
    out += ',' + std::to_string(s.condDirectionWrong);
    out += ',' + fmtDouble(s.ipcF());
    out += ',' + fmtDouble(s.ipb());
    out += ',' + fmtDouble(s.bep());
    out += ',' + fmtDouble(condMissRate(s));
    if (opts.timings)
        out += ',' + fmtDouble(jr.seconds);
    out += '\n';
}

} // namespace

namespace
{

/** 0x-prefixed lower-case hex, the offender table's address form. */
std::string
fmtHex(uint64_t v)
{
    char buf[16 + 1];
    auto [end, ec] =
        std::to_chars(buf, buf + sizeof(buf), v, 16);
    (void)ec;       // 17 bytes always fit a 64-bit hex value
    return "0x" + std::string(buf, end);
}

/** The offender table as the report's opt-in "attribution" array. */
void
writeAttributionJson(JsonWriter &w, unsigned top_n)
{
    std::vector<obs::AttributionRow> rows =
        obs::attributionRows(top_n);
    w.beginArray("attribution");
    for (const obs::AttributionRow &r : rows) {
        w.beginObject();
        w.value("block", fmtHex(r.blockPc));
        w.value("slot", uint64_t{ r.slot });
        w.value("events", r.events);
        w.value("cycles", r.cycles);
        w.value("dominant", obs::lossCauseName(r.dominantCause()));
        w.beginObject("causes");
        for (std::size_t i = 0; i < obs::kNumLossCauses; ++i)
            if (r.byCause[i] != 0)
                w.value(obs::lossCauseName(
                            static_cast<obs::LossCause>(i)),
                        r.byCause[i]);
        w.endObject();
        w.endObject();
    }
    w.endArray();
}

} // namespace

std::string
sweepToJson(const SweepResult &result, const SweepReportOptions &opts)
{
    obs::ScopedTimer span("sweep.report.json");

    JsonWriter w;
    w.beginObject();
    w.value("name", result.name);
    w.beginArray("benchmarks");
    for (const std::string &b : result.benchmarks)
        w.element(b);
    w.endArray();
    if (opts.timings) {
        // Timing (and thread count) varies run to run, so it is
        // opt-in: the default document is byte-stable.
        w.value("threads", uint64_t{ result.threads });
        w.value("wall_seconds", result.wallSeconds);
    }
    w.beginArray("jobs");
    for (const SweepJobResult &jr : result.jobs) {
        w.beginObject();
        w.value("index", uint64_t{ jr.job.index });
        w.beginObject("params");
        for (const SweepParam &p : jr.job.params)
            w.value(p.first, p.second);
        w.endObject();
        w.beginObject("aggregates");
        w.beginObject("int");
        writeStatsJson(w, jr.result.intTotal);
        w.endObject();
        w.beginObject("fp");
        writeStatsJson(w, jr.result.fpTotal);
        w.endObject();
        w.beginObject("all");
        writeStatsJson(w, jr.result.allTotal);
        w.endObject();
        w.endObject();
        if (opts.perProgram) {
            w.beginObject("programs");
            for (const auto &[name, stats] : jr.result.perProgram) {
                w.beginObject(name);
                writeStatsJson(w, stats);
                w.endObject();
            }
            w.endObject();
        }
        if (opts.timings)
            w.value("seconds", jr.seconds);
        w.endObject();
    }
    w.endArray();
    if (opts.metrics)
        obs::writeMetricsJson(w);   // same bytes as the /metrics
                                    // endpoint, by construction
    if (opts.attributionTopN != 0)
        writeAttributionJson(w, opts.attributionTopN);
    w.endObject();
    return w.str();
}

std::string
sweepToCsv(const SweepResult &result, const SweepReportOptions &opts)
{
    obs::ScopedTimer span("sweep.report.csv");

    std::vector<std::string> params = paramColumns(result);

    std::string out = "job";
    for (const std::string &field : params) {
        out += ',';
        csvCell(out, field);
    }
    out += ",scope,instructions,fetch_requests,fetch_cycles,"
           "blocks_fetched,branches_executed,cond_executed,"
           "cond_direction_wrong,ipc_f,ipb,bep,cond_miss_rate";
    if (opts.timings)
        out += ",seconds";
    out += '\n';

    for (const SweepJobResult &jr : result.jobs) {
        csvStatsRow(out, jr, params, "int", jr.result.intTotal,
                    opts);
        csvStatsRow(out, jr, params, "fp", jr.result.fpTotal, opts);
        csvStatsRow(out, jr, params, "all", jr.result.allTotal,
                    opts);
        if (opts.perProgram)
            for (const auto &[name, stats] : jr.result.perProgram)
                csvStatsRow(out, jr, params, programScope(name),
                            stats, opts);
    }
    return out;
}

std::string
attributionToCsv(unsigned top_n)
{
    std::string out = "block,slot,events,cycles,dominant";
    for (std::size_t i = 0; i < obs::kNumLossCauses; ++i) {
        out += ',';
        out += obs::lossCauseName(static_cast<obs::LossCause>(i));
    }
    out += '\n';
    for (const obs::AttributionRow &r :
         obs::attributionRows(top_n)) {
        out += fmtHex(r.blockPc);
        out += ',' + std::to_string(r.slot);
        out += ',' + std::to_string(r.events);
        out += ',' + std::to_string(r.cycles);
        out += ',';
        out += obs::lossCauseName(r.dominantCause());
        for (std::size_t i = 0; i < obs::kNumLossCauses; ++i)
            out += ',' + std::to_string(r.byCause[i]);
        out += '\n';
    }
    return out;
}

void
writeTextFile(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::cout << content;
        return;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open for writing: " + path);
    out << content;
    if (!out.flush())
        throw std::runtime_error("write failed: " + path);
}

} // namespace mbbp

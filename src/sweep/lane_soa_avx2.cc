// AVX2 instantiation of the SoA replay kernels. This translation
// unit is compiled with -mavx2 (see src/CMakeLists.txt) and only
// ever entered after util/simd's CPUID dispatch confirms support.

#define MBBP_SOA_NS soa_avx2
#define MBBP_SOA_LEVEL 1
#include "sweep/lane_soa_impl.hh"

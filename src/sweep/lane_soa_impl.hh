/**
 * @file
 * The staged SoA replay kernels, compiled once per ISA level.
 *
 * Included (never installed as a normal header) by
 * lane_soa_scalar.cc / lane_soa_avx2.cc / lane_soa_avx512.cc with
 *
 *   MBBP_SOA_NS     the namespace to emit into (soa_scalar, ...)
 *   MBBP_SOA_LEVEL  0 scalar, 1 AVX2, 2 AVX-512
 *
 * defined. All three instantiations share this exact source; the only
 * level-specific code is the 8-lane gather primitive (vector gathers
 * are the one operation gcc will not autovectorize from the plain
 * loop form). Everything else is written as straight-line loops over
 * padN lanes so the per-TU -mavx2 / -mavx512* flags vectorize them.
 * The scalar instantiation is therefore the single source of truth
 * for semantics, and the SIMD builds must match it bit for bit.
 *
 * Exactness ground rules (see lane_soa.hh and batch_replay.cc's
 * reference kernels, which this file mirrors stage for stage):
 *
 *  - Per-block facts come from the same BatchBlockCtx the reference
 *    kernels use; stage order within a fetch request replicates the
 *    reference statement order wherever state interacts (PHT trained
 *    after the block's own lookup, GHR shifted between the pair's two
 *    index computations, RAS ops applied between the two resolves).
 *  - Stat side effects happen iff the reference performs them: PHT
 *    lookups per scanned conditional, RAS peeks only when a lane's
 *    own prediction selects the RAS (and, for the dual pair's second
 *    slot, only when slot 1 was not already penalized), select-table
 *    reads/writes once per pair.
 *  - Charges (FetchStats::charge + attribution) are per-lane scalar
 *    fixups driven by bitmasks -- mispredicting lanes are the rare
 *    case, so the vector path stays branch-free.
 */

#include <algorithm>
#include <bit>

#include "fetch/batch_engine_state.hh"
#include "sweep/lane_soa.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

#if MBBP_SOA_LEVEL >= 1
#include <immintrin.h>
#endif

namespace mbbp
{
namespace MBBP_SOA_NS
{

namespace
{

constexpr uint64_t kNoExit = ~uint64_t{ 0 };

/** out[j] = base[off[j]] for 8 lanes (byte elements, zero-extended).
 *  Vector forms load 8 bytes per lane and mask, so the byte arena
 *  must keep 8 trailing pad bytes (SoaTile::build guarantees it). */
inline void
gather8Bytes(const uint8_t *base, const uint64_t *off, uint64_t *out)
{
#if MBBP_SOA_LEVEL == 2
    // Masked form with an explicit zero source: the unmasked
    // intrinsic's undefined pass-through operand trips gcc's
    // -Wmaybe-uninitialized inside avx512fintrin.h.
    __m512i vidx = _mm512_loadu_si512(off);
    __m512i v = _mm512_mask_i64gather_epi64(
        _mm512_setzero_si512(), 0xff, vidx, base, 1);
    v = _mm512_and_si512(v, _mm512_set1_epi64(0xff));
    _mm512_storeu_si512(out, v);
#elif MBBP_SOA_LEVEL == 1
    const long long *b = reinterpret_cast<const long long *>(base);
    for (int half = 0; half < 2; ++half) {
        __m256i vidx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(off + 4 * half));
        __m256i v = _mm256_i64gather_epi64(b, vidx, 1);
        v = _mm256_and_si256(v, _mm256_set1_epi64x(0xff));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + 4 * half), v);
    }
#else
    for (unsigned j = 0; j < 8; ++j)
        out[j] = base[off[j]];
#endif
}

/** out[j] = base[off[j]] for 8 lanes (64-bit elements). */
inline void
gather8Words(const uint64_t *base, const uint64_t *off, uint64_t *out)
{
#if MBBP_SOA_LEVEL == 2
    __m512i vidx = _mm512_loadu_si512(off);
    __m512i v = _mm512_mask_i64gather_epi64(
        _mm512_setzero_si512(), 0xff, vidx, base, 8);
    _mm512_storeu_si512(out, v);
#elif MBBP_SOA_LEVEL == 1
    const long long *b = reinterpret_cast<const long long *>(base);
    for (int half = 0; half < 2; ++half) {
        __m256i vidx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(off + 4 * half));
        __m256i v = _mm256_i64gather_epi64(b, vidx, 8);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + 4 * half), v);
    }
#else
    for (unsigned j = 0; j < 8; ++j)
        out[j] = base[off[j]];
#endif
}

inline void
gatherBytes(const uint8_t *base, const uint64_t *off, uint64_t *out,
            std::size_t pad_n)
{
    for (std::size_t g = 0; g < pad_n; g += 8)
        gather8Bytes(base, off + g, out + g);
}

inline void
gatherWords(const uint64_t *base, const uint64_t *off, uint64_t *out,
            std::size_t pad_n)
{
    for (std::size_t g = 0; g < pad_n; g += 8)
        gather8Words(base, off + g, out + g);
}

/** Per-lane PHT entry index for block-address bits @p a
 *  (start address already shifted by floorLog2(blockWidth)):
 *  BlockedPHT::index in columnar form. */
inline void
phtIndexes(SoaTile &t, uint64_t a, std::vector<uint64_t> &idx)
{
    const std::size_t pad_n = t.padN;
    const uint64_t *g = t.ghr.data();
    const uint64_t *im = t.idxMask.data();
    uint64_t *out = idx.data();
    for (std::size_t l = 0; l < pad_n; ++l)
        out[l] = (g[l] ^ a) & im[l];
    if (t.anyMultiPht) {
        const uint64_t *tm = t.phtTabMask.data();
        const uint64_t *hb = t.histBits.data();
        for (std::size_t l = 0; l < pad_n; ++l)
            out[l] |= (a & tm[l]) << hb[l];
    }
}

/** SelSrc a near-block lane selects when a conditional at near code
 *  @p cn is predicted taken (the reference's predictExit switch). */
inline uint64_t
nearCondSrc(BitCode cn)
{
    if (cn == BitCode::CondLong)
        return static_cast<uint64_t>(SelSrc::Target);
    switch (bitCodeNearDelta(cn)) {
      case -1:
        return static_cast<uint64_t>(SelSrc::LinePrev);
      case 0:
        return static_cast<uint64_t>(SelSrc::LineSame);
      case 1:
        return static_cast<uint64_t>(SelSrc::LineNext);
      default:
        return static_cast<uint64_t>(SelSrc::LineNext2);
    }
}

/**
 * batchPredictExit for every lane at once: walk the block's branch
 * list; unconditional exits resolve all still-scanning lanes
 * (lane-independent: near and plain codes agree on Return/Other);
 * conditionals gather each scanning lane's own counter, split the
 * lanes into taken (exit found here) and not-taken (keep scanning,
 * numNotTaken += 1 saturating at 255), and stop when none remain.
 */
void
scanBlock(SoaTile &t, const BatchBlockCtx &ctx,
          const std::vector<uint64_t> &idx, SoaTile::Scan &s)
{
    const std::size_t pad_n = t.padN;
    std::fill_n(s.src.data(), pad_n, 0);
    std::fill_n(s.off.data(), pad_n, 0);
    std::fill_n(s.posByte.data(), pad_n, 0);
    std::fill_n(s.nnt.data(), pad_n, 0);
    std::fill_n(s.tgt.data(), pad_n, 0);
    s.found = 0;

    uint64_t active = t.allMask;
    const uint64_t bw = t.blockWidth;
    const uint8_t *pht = t.pht.data();
    const uint64_t *base = t.phtBase.data();
    const uint64_t *ix = idx.data();
    uint64_t *goff = t.gatherOff.data();
    uint64_t *gval = t.gatherVal.data();

    for (const BatchWindowBranch &wb : ctx.wbranches) {
        const BitCode cn = wb.codeNear;
        if (cn == BitCode::Return || cn == BitCode::OtherBranch) {
            const uint64_t src =
                cn == BitCode::Return
                    ? static_cast<uint64_t>(SelSrc::Ras)
                    : static_cast<uint64_t>(SelSrc::Target);
            const uint64_t pos_byte = wb.pc % t.lineSize;
            for (uint64_t m = active; m; m &= m - 1) {
                const unsigned l = static_cast<unsigned>(
                    std::countr_zero(m));
                s.src[l] = src;
                s.off[l] = wb.offset;
                s.posByte[l] = pos_byte;
                s.tgt[l] = wb.staticTarget;
            }
            s.found |= active;
            active = 0;
            break;
        }

        // Conditional: every scanning lane performs one PHT lookup.
        const uint64_t pos = wb.pc & (bw - 1);
        for (std::size_t l = 0; l < pad_n; ++l)
            goff[l] = base[l] + ix[l] * bw + pos;
        gatherBytes(pht, goff, gval, pad_n);
        for (uint64_t m = active; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            ++t.phtLookups[l];
        }

        uint64_t taken_m = 0;
        for (std::size_t l = 0; l < pad_n; ++l)
            taken_m |= static_cast<uint64_t>(gval[l] >= 2) << l;

        const uint64_t found_now = active & taken_m;
        const uint64_t not_taken = active & ~taken_m;
        for (uint64_t m = not_taken; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            if (s.nnt[l] < 255)
                ++s.nnt[l];
        }
        if (found_now) {
            const uint64_t src_near = nearCondSrc(cn);
            const uint64_t src_plain =
                static_cast<uint64_t>(SelSrc::Target);
            const uint64_t pos_byte = wb.pc % t.lineSize;
            for (uint64_t m = found_now; m; m &= m - 1) {
                const unsigned l = static_cast<unsigned>(
                    std::countr_zero(m));
                s.src[l] = (t.nearMask >> l) & 1 ? src_near
                                                 : src_plain;
                s.off[l] = wb.offset;
                s.posByte[l] = pos_byte;
                s.tgt[l] = wb.staticTarget;
            }
            s.found |= found_now;
        }
        active = not_taken;
        if (!active)
            break;
    }
}

/** The one charge path (laneCharge in columnar form). */
inline void
chargeLane(SoaTile &t, unsigned l, Addr block_pc, unsigned slot,
           PenaltyKind kind, unsigned cycles)
{
    t.stats[l].charge(kind, cycles);
    t.attr[l]->record(block_pc, slot, lossCauseOf(kind), cycles);
    t.reqMispred |= uint64_t{ 1 } << l;
}

/**
 * batchResolveAddress + batchCompareWithActual + the mispredict
 * charges for one scored block, over the lanes in @p gate_m (all
 * lanes for a single-block request and the pair's first slot;
 * the not-yet-penalized lanes for the pair's second slot, matching
 * the reference's blk1_penalized guard).
 *
 * @param index_addr Target-array index address (the scored pair's
 *                   first block for dual fetching).
 * @param which      NLS array selector (0 or 1).
 */
void
resolveAndCharge(SoaTile &t, const BatchBlockCtx &ctx,
                 const SoaTile::Scan &s, unsigned slot,
                 Addr index_addr, unsigned which, uint64_t gate_m)
{
    const std::size_t pad_n = t.padN;
    const uint64_t actual =
        ctx.endsTaken ? ctx.actualExit : kNoExit;

    // RAS peek side effects: the reference resolves every gated
    // lane's prediction before comparing, so a lane whose found exit
    // selects the RAS peeks exactly once regardless of the outcome.
    uint64_t ras_m = 0;
    const uint64_t found_gated = s.found & gate_m;
    for (uint64_t m = found_gated; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        if (s.src[l] == static_cast<uint64_t>(SelSrc::Ras)) {
            ++t.rasPeeks[l];
            ras_m |= uint64_t{ 1 } << l;
        }
    }

    uint64_t less_m = 0, greater_m = 0, equal_m = 0;
    for (uint64_t m = gate_m; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        const uint64_t pred =
            (s.found >> l) & 1 ? s.off[l] : kNoExit;
        if (pred < actual)
            less_m |= uint64_t{ 1 } << l;
        else if (pred > actual)
            greater_m |= uint64_t{ 1 } << l;
        else
            equal_m |= uint64_t{ 1 } << l;
    }

    if (less_m | greater_m) {
        mbbp_assert(greater_m == 0 || ctx.exitIsCond,
                    "prediction scanned past an unconditional exit");
        const unsigned cond_cycles =
            t.pcycles[static_cast<unsigned>(
                PenaltyKind::CondMispredict)][slot];
        for (uint64_t m = less_m; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            chargeLane(t, l, ctx.blk.startPc, slot,
                       PenaltyKind::CondMispredict,
                       cond_cycles + t.refetchExtra);
            ++t.stats[l].condDirectionWrong;
        }
        for (uint64_t m = greater_m; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            chargeLane(t, l, ctx.blk.startPc, slot,
                       PenaltyKind::CondMispredict, cond_cycles);
            ++t.stats[l].condDirectionWrong;
        }
    }

    // Equal-offset lanes: the resolved address decides. Lanes that
    // predicted no exit against a fall-through block are simply
    // correct (FallThrough resolves without side effects).
    const uint64_t check_m = equal_m & s.found;
    if (!check_m)
        return;

    // NLS probe for every lane at once (the probe is stat-free, so
    // over-gathering for non-Target lanes is unobservable).
    const uint64_t line_idx = index_addr / t.lineSize;
    const uint64_t arrays = t.nlsArrays;
    const uint64_t *nbase = t.nlsBase.data();
    const uint64_t *nmask = t.nlsIdxMask.data();
    uint64_t *goff = t.gatherOff.data();
    uint64_t *gval = t.gatherVal.data();
    for (std::size_t l = 0; l < pad_n; ++l)
        goff[l] = nbase[l] +
            ((line_idx & nmask[l]) * arrays + which) * t.lineSize +
            s.posByte[l];
    gatherWords(t.nls.data(), goff, gval, pad_n);

    // Cached per-group RAS tops (ring contents are group-uniform).
    Addr group_top[SoaTile::kPad * 8];
    if (ras_m & check_m) {
        for (std::size_t gi = 0; gi < t.rasGroups.size(); ++gi)
            group_top[gi] = t.rasGroups[gi]->top();
    }

    const Addr next_pc = ctx.blk.nextPc;
    PenaltyKind wrong_kind = PenaltyKind::MisfetchImmediate;
    if (ctx.exitIsReturn)
        wrong_kind = PenaltyKind::ReturnMispredict;
    else if (ctx.exitIsIndirect)
        wrong_kind = PenaltyKind::MisfetchIndirect;
    const unsigned wrong_cycles =
        t.pcycles[static_cast<unsigned>(wrong_kind)][slot];

    for (uint64_t m = check_m; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        Addr addr;
        const uint64_t src = s.src[l];
        if (src == static_cast<uint64_t>(SelSrc::Target))
            addr = gval[l];
        else if (src == static_cast<uint64_t>(SelSrc::Ras))
            addr = group_top[t.rasOf[l]];
        else
            addr = s.tgt[l];
        if (addr != next_pc)
            chargeLane(t, l, ctx.blk.startPc, slot, wrong_kind,
                       wrong_cycles);
    }
}

/** batchTrainPht: gather / saturate +-1 / scalar byte scatter, once
 *  per conditional (tile-uniform update counts accumulate in
 *  finish()). */
void
trainConds(SoaTile &t, const BatchBlockCtx &ctx,
           const std::vector<uint64_t> &idx)
{
    const std::size_t pad_n = t.padN;
    const uint64_t bw = t.blockWidth;
    const uint64_t *base = t.phtBase.data();
    const uint64_t *ix = idx.data();
    uint64_t *goff = t.gatherOff.data();
    uint64_t *gval = t.gatherVal.data();
    for (const BatchCondInfo &c : ctx.conds) {
        const uint64_t pos = c.pc & (bw - 1);
        for (std::size_t l = 0; l < pad_n; ++l)
            goff[l] = base[l] + ix[l] * bw + pos;
        gatherBytes(t.pht.data(), goff, gval, pad_n);
        if (c.taken) {
            for (std::size_t l = 0; l < pad_n; ++l)
                gval[l] += static_cast<uint64_t>(gval[l] < 3);
        } else {
            for (std::size_t l = 0; l < pad_n; ++l)
                gval[l] -= static_cast<uint64_t>(gval[l] > 0);
        }
        uint8_t *pht = t.pht.data();
        for (unsigned l = 0; l < t.n; ++l)
            pht[goff[l]] = static_cast<uint8_t>(gval[l]);
    }
}

/** GlobalHistory::shiftInBlock, closed form. @p ins carries the
 *  block's outcomes bit-reversed so the first executed conditional
 *  lands oldest, exactly as the reference's per-bit loop leaves
 *  them. */
inline void
ghrShift(SoaTile &t, uint64_t ins, unsigned count)
{
    if (count == 0)
        return;
    const std::size_t pad_n = t.padN;
    uint64_t *g = t.ghr.data();
    const uint64_t *im = t.idxMask.data();
    for (std::size_t l = 0; l < pad_n; ++l)
        g[l] = ((g[l] << count) | ins) & im[l];
}

/** The block's outcomes in insertion order (see ghrShift). */
inline uint64_t
ghrInsertBits(const BatchBlockCtx &ctx)
{
    uint64_t ins = 0;
    for (unsigned i = 0; i < ctx.numConds; ++i)
        ins |= ((ctx.condMask >> i) & 1)
            << (ctx.numConds - 1 - i);
    return ins;
}

/** batchUpdateTargetArray in columnar form. The skip conditions are
 *  block-uniform except the near-conditional-exit rule, which skips
 *  exactly the near-block lanes. */
void
nlsUpdate(SoaTile &t, const BatchBlockCtx &ctx, Addr index_addr,
          unsigned which)
{
    if (!ctx.endsTaken || ctx.exitIsReturn)
        return;
    uint64_t m = t.allMask;
    if (ctx.exitIsCond && ctx.exitNearCond)
        m &= ~t.nearMask;
    if (!m)
        return;
    const uint64_t line_idx = index_addr / t.lineSize;
    const uint64_t pos = ctx.exitPc % t.lineSize;
    const uint64_t arrays = t.nlsArrays;
    uint64_t *nls = t.nls.data();
    const uint64_t *nbase = t.nlsBase.data();
    const uint64_t *nmask = t.nlsIdxMask.data();
    for (; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        nls[nbase[l] +
            ((line_idx & nmask[l]) * arrays + which) * t.lineSize +
            pos] = ctx.exitTarget;
    }
}

/** batchApplyRasOp, once per shared RAS group. */
inline void
rasApply(SoaTile &t, const BatchBlockCtx &ctx)
{
    switch (ctx.rasOp) {
      case RasOp::Push:
        for (auto &g : t.rasGroups)
            g->push(ctx.rasPush);
        break;
      case RasOp::Pop:
        for (auto &g : t.rasGroups)
            g->pop();
        break;
      case RasOp::None:
        break;
    }
}

/** Tile-uniform per-block accounting (countBlockStats + perfect
 *  i-cache touches), folded per lane at finish(). */
inline void
countBlockUniform(SoaTile &t, const BatchBlockCtx &ctx)
{
    t.uInstructions += ctx.numInsts;
    t.uBlocks += 1;
    t.uBranches += ctx.numBranches;
    t.uConds += ctx.numConds;
    t.uNearConds += ctx.numNearConds;
    t.uIcacheAccesses += ctx.lastLine - ctx.firstLine + 1;
}

/** FetchBandwidth::endRequest: the insts/blocks distributions are
 *  request-uniform and shared; the mispredict-run distribution is
 *  per lane. */
inline void
endRequest(SoaTile &t, uint64_t insts, uint64_t blocks)
{
    t.bwInsts.record(insts);
    t.bwBlocks.record(blocks);
    for (unsigned l = 0; l < t.n; ++l) {
        if ((t.reqMispred >> l) & 1) {
            t.bwRuns[l].record(t.cleanRun[l]);
            t.cleanRun[l] = 0;
        } else {
            ++t.cleanRun[l];
        }
    }
}

/** runSingleTile over the SoA tile. */
void
runSingleImpl(SoaTile &t, const DecodedTrace &dec)
{
    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return;     // the reference returns before any flush
    t.ran = true;

    BbrOccupancy bbr(4);
    BatchBlockCtx ctx;
    for (std::size_t b = 0; b < nblocks; ++b) {
        ctx.build(dec, b, t.lineSize);
        if (b + 1 < nblocks) {
            mbbp_assert(dec.startPc(b + 1) == ctx.blk.nextPc,
                        "block index out of sync");
        }

        ++t.uFetchRequests;
        t.reqMispred = 0;
        countBlockUniform(t, ctx);
        t.uPhtUpdates += ctx.conds.size();

        phtIndexes(t, ctx.blk.startPc >> t.shift, t.idx1);
        scanBlock(t, ctx, t.idx1, t.scanB);
        resolveAndCharge(t, ctx, t.scanB, 0, ctx.blk.startPc, 0,
                         t.allMask);

        bbr.addBlock(ctx.conds.size());
        bbr.expire();

        trainConds(t, ctx, t.idx1);
        ghrShift(t, ghrInsertBits(ctx), ctx.numConds);
        nlsUpdate(t, ctx, ctx.blk.startPc, 0);
        rasApply(t, ctx);

        endRequest(t, ctx.numInsts, 1);
    }
    t.bbrPeak = bbr.peakInFlight();
}

/** runDualTile over the SoA tile (single selection only; the
 *  double-select configurations stay on the reference kernel). */
void
runDualImpl(SoaTile &t, const DecodedTrace &dec)
{
    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return;
    t.ran = true;

    BbrOccupancy bbr(4);
    BatchBlockCtx ctxB, ctxC, ctxD;
    std::size_t bi = 0;
    ctxB.build(dec, bi, t.lineSize);

    // Figure 3's b0 primes the pipeline alone.
    ++t.uFetchRequests;
    t.reqMispred = 0;
    countBlockUniform(t, ctxB);
    endRequest(t, ctxB.numInsts, 1);

    for (;;) {
        const std::size_t ci = bi + 1;
        if (ci >= nblocks)
            break;
        ctxC.build(dec, ci, t.lineSize);
        mbbp_assert(ctxC.blk.startPc == ctxB.blk.nextPc,
                    "block index out of sync");
        const std::size_t di = ci + 1;
        const bool have_d = di < nblocks;
        bool conflict_cd = false;
        uint64_t d_offset = 0;
        if (have_d) {
            ctxD.build(dec, di, t.lineSize);
            mbbp_assert(ctxD.blk.startPc == ctxC.blk.nextPc,
                        "block index out of sync");
            conflict_cd = batchBankConflict(ctxC, ctxD, t.numBanks);
            // The reference stores startOffset as uint8_t.
            d_offset = (ctxD.blk.startPc % t.lineSize) & 0xff;
        }

        ++t.uFetchRequests;
        t.reqMispred = 0;
        countBlockUniform(t, ctxC);
        uint64_t req_insts = ctxC.numInsts;
        if (have_d) {
            countBlockUniform(t, ctxD);
            req_insts += ctxD.numInsts;
            if (conflict_cd) {
                const unsigned cycles = t.pcycles[static_cast<
                    unsigned>(PenaltyKind::BankConflict)][1];
                ++t.uBankEvents;
                t.uBankCycles += cycles;
            }
        }

        // ===== Block 1: B's exit prediction (C's address). =====
        phtIndexes(t, ctxB.blk.startPc >> t.shift, t.idx1);
        scanBlock(t, ctxB, t.idx1, t.scanB);
        resolveAndCharge(t, ctxB, t.scanB, 0, ctxB.blk.startPc, 0,
                         t.allMask);
        const uint64_t pen1 = t.reqMispred;

        bbr.addBlock(ctxB.conds.size());
        t.uPhtUpdates += ctxB.conds.size();
        trainConds(t, ctxB, t.idx1);
        ghrShift(t, ghrInsertBits(ctxB), ctxB.numConds);
        rasApply(t, ctxB);

        if (!have_d) {
            // C is the last complete block; its exit cannot be
            // scored.
            nlsUpdate(t, ctxB, ctxB.blk.startPc, 0);
            endRequest(t, req_insts, 1);
            break;
        }

        // ===== Block 2: C's exit via the select table. =====
        phtIndexes(t, ctxC.blk.startPc >> t.shift, t.idx2);
        scanBlock(t, ctxC, t.idx2, t.scanC);

        // One ST read and one write per pair, for every lane
        // (tile-uniform counts); entries live at
        // (tableOf(C) * entries + idx1) in each lane's slab.
        ++t.uSelReads;
        ++t.uSelWrites;
        const uint64_t tab_addr = ctxC.blk.startPc;
        const std::size_t pad_n = t.padN;
        // Dedicated offset column: resolveAndCharge clobbers the
        // shared gather scratch before the write-back below.
        uint64_t *soff = t.stOff.data();
        for (std::size_t l = 0; l < pad_n; ++l)
            soff[l] = t.stBase[l] +
                (tab_addr & t.stTabMask[l]) * t.stEntries[l] +
                t.idx1[l];
        gatherWords(t.st.data(), soff, t.stWord.data(), pad_n);
        for (std::size_t l = 0; l < pad_n; ++l)
            t.expWord[l] = t.scanC.src[l] |
                ((t.scanC.posByte[l] & 0xff) << 8) |
                (t.scanC.nnt[l] << 16) |
                (((t.scanC.found >> l) & 1) << 24) |
                (d_offset << 32) | (uint64_t{ 1 } << 40);

        const unsigned missel_cycles = t.pcycles[static_cast<
            unsigned>(PenaltyKind::Misselect)][1];
        const unsigned ghr_cycles = t.pcycles[static_cast<unsigned>(
            PenaltyKind::GhrMispredict)][1];
        uint64_t resolve_m = t.allMask & ~pen1;
        for (uint64_t m = resolve_m; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            const uint64_t diff = t.stWord[l] ^ t.expWord[l];
            if (diff & 0xffff) {
                chargeLane(t, l, ctxC.blk.startPc, 1,
                           PenaltyKind::Misselect, missel_cycles);
            } else if (diff & 0xffff0000) {
                chargeLane(t, l, ctxC.blk.startPc, 1,
                           PenaltyKind::GhrMispredict, ghr_cycles);
            } else if (((t.storedOffMask >> l) & 1) &&
                       t.scanC.src[l] >=
                           static_cast<uint64_t>(SelSrc::LinePrev) &&
                       ((t.stWord[l] >> 32) & 0xff) != d_offset) {
                chargeLane(t, l, ctxC.blk.startPc, 1,
                           PenaltyKind::Misselect, missel_cycles);
            }
        }
        resolveAndCharge(t, ctxC, t.scanC, 1, ctxB.blk.startPc, 1,
                         resolve_m);
        uint64_t *st = t.st.data();
        for (unsigned l = 0; l < t.n; ++l)
            st[soff[l]] = t.expWord[l];

        nlsUpdate(t, ctxB, ctxB.blk.startPc, 0);
        nlsUpdate(t, ctxC, ctxB.blk.startPc, 1);

        bbr.addBlock(ctxC.conds.size());
        bbr.expire();

        t.uPhtUpdates += ctxC.conds.size();
        trainConds(t, ctxC, t.idx2);
        ghrShift(t, ghrInsertBits(ctxC), ctxC.numConds);
        rasApply(t, ctxC);

        endRequest(t, req_insts, 2);

        bi = di;
        std::swap(ctxB, ctxD);
    }
    t.bbrPeak = bbr.peakInFlight();
}

} // namespace

const LaneSoaKernels &
kernels()
{
    static const LaneSoaKernels k{ &runSingleImpl, &runDualImpl };
    return k;
}

} // namespace MBBP_SOA_NS
} // namespace mbbp

/**
 * @file
 * The staged SoA replay kernels, compiled once per ISA level.
 *
 * Included (never installed as a normal header) by
 * lane_soa_scalar.cc / lane_soa_avx2.cc / lane_soa_avx512.cc with
 *
 *   MBBP_SOA_NS     the namespace to emit into (soa_scalar, ...)
 *   MBBP_SOA_LEVEL  0 scalar, 1 AVX2, 2 AVX-512
 *
 * defined. All three instantiations share this exact source; the only
 * level-specific code is the 8-lane gather primitive (vector gathers
 * are the one operation gcc will not autovectorize from the plain
 * loop form). Everything else is written as straight-line loops over
 * padN lanes so the per-TU -mavx2 / -mavx512* flags vectorize them.
 * The scalar instantiation is therefore the single source of truth
 * for semantics, and the SIMD builds must match it bit for bit.
 *
 * Exactness ground rules (see lane_soa.hh and batch_replay.cc's
 * reference kernels, which this file mirrors stage for stage):
 *
 *  - Per-block facts come from the same BatchBlockCtx the reference
 *    kernels use; stage order within a fetch request replicates the
 *    reference statement order wherever state interacts (PHT trained
 *    after the block's own lookup, GHR shifted between the pair's two
 *    index computations, RAS ops applied between the two resolves).
 *  - Stat side effects happen iff the reference performs them: PHT
 *    lookups per scanned conditional, RAS peeks only when a lane's
 *    own prediction selects the RAS (and, for the dual pair's second
 *    slot, only when slot 1 was not already penalized), select-table
 *    reads/writes once per pair.
 *  - Charges (FetchStats::charge + attribution) are per-lane scalar
 *    fixups driven by bitmasks -- mispredicting lanes are the rare
 *    case, so the vector path stays branch-free.
 */

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "fetch/batch_engine_state.hh"
#include "sweep/lane_soa.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

#if MBBP_SOA_LEVEL >= 1
#include <immintrin.h>
#endif

namespace mbbp
{
namespace MBBP_SOA_NS
{

namespace
{

constexpr uint64_t kNoExit = ~uint64_t{ 0 };

/** out[j] = base[off[j]] for 8 lanes (byte elements, zero-extended).
 *  Vector forms load 8 bytes per lane and mask, so the byte arena
 *  must keep 8 trailing pad bytes (SoaTile::build guarantees it). */
inline void
gather8Bytes(const uint8_t *base, const uint64_t *off, uint64_t *out)
{
#if MBBP_SOA_LEVEL == 2
    // Masked form with an explicit zero source: the unmasked
    // intrinsic's undefined pass-through operand trips gcc's
    // -Wmaybe-uninitialized inside avx512fintrin.h.
    __m512i vidx = _mm512_loadu_si512(off);
    __m512i v = _mm512_mask_i64gather_epi64(
        _mm512_setzero_si512(), 0xff, vidx, base, 1);
    v = _mm512_and_si512(v, _mm512_set1_epi64(0xff));
    _mm512_storeu_si512(out, v);
#elif MBBP_SOA_LEVEL == 1
    const long long *b = reinterpret_cast<const long long *>(base);
    for (int half = 0; half < 2; ++half) {
        __m256i vidx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(off + 4 * half));
        __m256i v = _mm256_i64gather_epi64(b, vidx, 1);
        v = _mm256_and_si256(v, _mm256_set1_epi64x(0xff));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + 4 * half), v);
    }
#else
    for (unsigned j = 0; j < 8; ++j)
        out[j] = base[off[j]];
#endif
}

/** out[j] = base[off[j]] for 8 lanes (64-bit elements). */
inline void
gather8Words(const uint64_t *base, const uint64_t *off, uint64_t *out)
{
#if MBBP_SOA_LEVEL == 2
    __m512i vidx = _mm512_loadu_si512(off);
    __m512i v = _mm512_mask_i64gather_epi64(
        _mm512_setzero_si512(), 0xff, vidx, base, 8);
    _mm512_storeu_si512(out, v);
#elif MBBP_SOA_LEVEL == 1
    const long long *b = reinterpret_cast<const long long *>(base);
    for (int half = 0; half < 2; ++half) {
        __m256i vidx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(off + 4 * half));
        __m256i v = _mm256_i64gather_epi64(b, vidx, 8);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + 4 * half), v);
    }
#else
    for (unsigned j = 0; j < 8; ++j)
        out[j] = base[off[j]];
#endif
}

inline void
gatherBytes(const uint8_t *base, const uint64_t *off, uint64_t *out,
            std::size_t pad_n)
{
    for (std::size_t g = 0; g < pad_n; g += 8)
        gather8Bytes(base, off + g, out + g);
}

inline void
gatherWords(const uint64_t *base, const uint64_t *off, uint64_t *out,
            std::size_t pad_n)
{
    for (std::size_t g = 0; g < pad_n; g += 8)
        gather8Words(base, off + g, out + g);
}

/** Per-lane PHT entry index for block-address bits @p a
 *  (start address already shifted by floorLog2(blockWidth)):
 *  BlockedPHT::index in columnar form. */
inline void
phtIndexes(SoaTile &t, uint64_t a, std::vector<uint64_t> &idx)
{
    const std::size_t pad_n = t.padN;
    const uint64_t *g = t.ghr.data();
    const uint64_t *im = t.idxMask.data();
    uint64_t *out = idx.data();
    for (std::size_t l = 0; l < pad_n; ++l)
        out[l] = (g[l] ^ a) & im[l];
    if (t.anyMultiPht) {
        const uint64_t *tm = t.phtTabMask.data();
        const uint64_t *hb = t.histBits.data();
        for (std::size_t l = 0; l < pad_n; ++l)
            out[l] |= (a & tm[l]) << hb[l];
    }
}

/** SelSrc a near-block lane selects when a conditional at near code
 *  @p cn is predicted taken (the reference's predictExit switch). */
inline uint64_t
nearCondSrc(BitCode cn)
{
    if (cn == BitCode::CondLong)
        return static_cast<uint64_t>(SelSrc::Target);
    switch (bitCodeNearDelta(cn)) {
      case -1:
        return static_cast<uint64_t>(SelSrc::LinePrev);
      case 0:
        return static_cast<uint64_t>(SelSrc::LineSame);
      case 1:
        return static_cast<uint64_t>(SelSrc::LineNext);
      default:
        return static_cast<uint64_t>(SelSrc::LineNext2);
    }
}

/**
 * batchPredictExit for every lane at once: walk the block's branch
 * list; unconditional exits resolve all still-scanning lanes
 * (lane-independent: near and plain codes agree on Return/Other);
 * conditionals gather each scanning lane's own counter, split the
 * lanes into taken (exit found here) and not-taken (keep scanning,
 * numNotTaken += 1 saturating at 255), and stop when none remain.
 */
void
scanBlock(SoaTile &t, const BatchBlockCtx &ctx,
          const std::vector<uint64_t> &idx, SoaTile::Scan &s)
{
    const std::size_t pad_n = t.padN;
    std::fill_n(s.src.data(), pad_n, 0);
    std::fill_n(s.off.data(), pad_n, 0);
    std::fill_n(s.posByte.data(), pad_n, 0);
    std::fill_n(s.nnt.data(), pad_n, 0);
    std::fill_n(s.tgt.data(), pad_n, 0);
    s.found = 0;

    uint64_t active = t.allMask;
    const uint64_t bw = t.blockWidth;
    const uint8_t *pht = t.pht.data();
    const uint64_t *base = t.phtBase.data();
    const uint64_t *ix = idx.data();
    uint64_t *goff = t.gatherOff.data();
    uint64_t *gval = t.gatherVal.data();

    for (const BatchWindowBranch &wb : ctx.wbranches) {
        const BitCode cn = wb.codeNear;
        if (cn == BitCode::Return || cn == BitCode::OtherBranch) {
            const uint64_t src =
                cn == BitCode::Return
                    ? static_cast<uint64_t>(SelSrc::Ras)
                    : static_cast<uint64_t>(SelSrc::Target);
            const uint64_t pos_byte = wb.pc % t.lineSize;
            for (uint64_t m = active; m; m &= m - 1) {
                const unsigned l = static_cast<unsigned>(
                    std::countr_zero(m));
                s.src[l] = src;
                s.off[l] = wb.offset;
                s.posByte[l] = pos_byte;
                s.tgt[l] = wb.staticTarget;
            }
            s.found |= active;
            active = 0;
            break;
        }

        // Conditional: every scanning lane performs one PHT lookup.
        const uint64_t pos = wb.pc & (bw - 1);
        for (std::size_t l = 0; l < pad_n; ++l)
            goff[l] = base[l] + ix[l] * bw + pos;
        gatherBytes(pht, goff, gval, pad_n);
        for (uint64_t m = active; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            ++t.phtLookups[l];
        }

        uint64_t taken_m = 0;
        for (std::size_t l = 0; l < pad_n; ++l)
            taken_m |= static_cast<uint64_t>(gval[l] >= 2) << l;

        const uint64_t found_now = active & taken_m;
        const uint64_t not_taken = active & ~taken_m;
        for (uint64_t m = not_taken; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            if (s.nnt[l] < 255)
                ++s.nnt[l];
        }
        if (found_now) {
            const uint64_t src_near = nearCondSrc(cn);
            const uint64_t src_plain =
                static_cast<uint64_t>(SelSrc::Target);
            const uint64_t pos_byte = wb.pc % t.lineSize;
            for (uint64_t m = found_now; m; m &= m - 1) {
                const unsigned l = static_cast<unsigned>(
                    std::countr_zero(m));
                s.src[l] = (t.nearMask >> l) & 1 ? src_near
                                                 : src_plain;
                s.off[l] = wb.offset;
                s.posByte[l] = pos_byte;
                s.tgt[l] = wb.staticTarget;
            }
            s.found |= found_now;
        }
        active = not_taken;
        if (!active)
            break;
    }
}

/** The one charge path (laneCharge in columnar form). */
inline void
chargeLane(SoaTile &t, unsigned l, Addr block_pc, unsigned slot,
           PenaltyKind kind, unsigned cycles)
{
    t.stats[l].charge(kind, cycles);
    t.attr[l]->record(block_pc, slot, lossCauseOf(kind), cycles);
    t.reqMispred |= uint64_t{ 1 } << l;
}

/**
 * batchResolveAddress + batchCompareWithActual + the mispredict
 * charges for one scored block, over the lanes in @p gate_m (all
 * lanes for a single-block request and the pair's first slot;
 * the not-yet-penalized lanes for the pair's second slot, matching
 * the reference's blk1_penalized guard).
 *
 * @param index_addr Target-array index address (the scored pair's
 *                   first block for dual fetching).
 * @param which      NLS array selector (0 .. numBlocks-1).
 * @return The lanes charged here. Feeds the dual pair's
 *         blk1_penalized gate and the multi group's squash cascade;
 *         stale-BIT charges deliberately stay out of both (the
 *         reference's laneStaleBitCheck never sets either flag).
 */
uint64_t
resolveAndCharge(SoaTile &t, const BatchBlockCtx &ctx,
                 const SoaTile::Scan &s, unsigned slot,
                 Addr index_addr, unsigned which, uint64_t gate_m)
{
    const std::size_t pad_n = t.padN;
    uint64_t charged = 0;
    const uint64_t actual =
        ctx.endsTaken ? ctx.actualExit : kNoExit;

    // RAS peek side effects: the reference resolves every gated
    // lane's prediction before comparing, so a lane whose found exit
    // selects the RAS peeks exactly once regardless of the outcome.
    uint64_t ras_m = 0;
    const uint64_t found_gated = s.found & gate_m;
    for (uint64_t m = found_gated; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        if (s.src[l] == static_cast<uint64_t>(SelSrc::Ras)) {
            ++t.rasPeeks[l];
            ras_m |= uint64_t{ 1 } << l;
        }
    }

    uint64_t less_m = 0, greater_m = 0, equal_m = 0;
    for (uint64_t m = gate_m; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        const uint64_t pred =
            (s.found >> l) & 1 ? s.off[l] : kNoExit;
        if (pred < actual)
            less_m |= uint64_t{ 1 } << l;
        else if (pred > actual)
            greater_m |= uint64_t{ 1 } << l;
        else
            equal_m |= uint64_t{ 1 } << l;
    }

    if (less_m | greater_m) {
        mbbp_assert(greater_m == 0 || ctx.exitIsCond,
                    "prediction scanned past an unconditional exit");
        const unsigned cond_cycles =
            t.pcycles[static_cast<unsigned>(
                PenaltyKind::CondMispredict)][slot];
        for (uint64_t m = less_m; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            chargeLane(t, l, ctx.blk.startPc, slot,
                       PenaltyKind::CondMispredict,
                       cond_cycles + t.refetchExtra);
            ++t.stats[l].condDirectionWrong;
        }
        for (uint64_t m = greater_m; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            chargeLane(t, l, ctx.blk.startPc, slot,
                       PenaltyKind::CondMispredict, cond_cycles);
            ++t.stats[l].condDirectionWrong;
        }
        charged |= less_m | greater_m;
    }

    // Equal-offset lanes: the resolved address decides. Lanes that
    // predicted no exit against a fall-through block are simply
    // correct (FallThrough resolves without side effects).
    const uint64_t check_m = equal_m & s.found;
    if (!check_m)
        return charged;

    // NLS probe for every lane at once (the probe is stat-free, so
    // over-gathering for non-Target lanes is unobservable).
    const uint64_t line_idx = index_addr / t.lineSize;
    const uint64_t arrays = t.nlsArrays;
    const uint64_t *nbase = t.nlsBase.data();
    const uint64_t *nmask = t.nlsIdxMask.data();
    uint64_t *goff = t.gatherOff.data();
    uint64_t *gval = t.gatherVal.data();
    for (std::size_t l = 0; l < pad_n; ++l)
        goff[l] = nbase[l] +
            ((line_idx & nmask[l]) * arrays + which) * t.lineSize +
            s.posByte[l];
    gatherWords(t.nls.data(), goff, gval, pad_n);

    // Cached per-group RAS tops (ring contents are group-uniform).
    Addr group_top[SoaTile::kPad * 8];
    if (ras_m & check_m) {
        for (std::size_t gi = 0; gi < t.rasGroups.size(); ++gi)
            group_top[gi] = t.rasGroups[gi]->top();
    }

    const Addr next_pc = ctx.blk.nextPc;
    PenaltyKind wrong_kind = PenaltyKind::MisfetchImmediate;
    if (ctx.exitIsReturn)
        wrong_kind = PenaltyKind::ReturnMispredict;
    else if (ctx.exitIsIndirect)
        wrong_kind = PenaltyKind::MisfetchIndirect;
    const unsigned wrong_cycles =
        t.pcycles[static_cast<unsigned>(wrong_kind)][slot];

    for (uint64_t m = check_m; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        Addr addr;
        const uint64_t src = s.src[l];
        if (src == static_cast<uint64_t>(SelSrc::Target))
            addr = gval[l];
        else if (src == static_cast<uint64_t>(SelSrc::Ras))
            addr = group_top[t.rasOf[l]];
        else
            addr = s.tgt[l];
        if (addr != next_pc) {
            chargeLane(t, l, ctx.blk.startPc, slot, wrong_kind,
                       wrong_cycles);
            charged |= uint64_t{ 1 } << l;
        }
    }
    return charged;
}

/**
 * laneStaleBitCheck for the finite-BIT lanes: re-run the exit scan
 * over each lane's own (possibly aliased) BIT arena lines, charge
 * the one-cycle penalty when the stale selector disagrees with the
 * true-code scan in @p s, then refresh every touched line with true
 * codes. The stale walk is scalar per lane -- it is data-dependent
 * and short -- but the refresh payload is computed once per
 * near-flag variant and scattered into every finite lane's arena.
 */
void
bitStage(SoaTile &t, const BatchBlockCtx &ctx,
         const StaticImage &image, const std::vector<uint64_t> &idx,
         const SoaTile::Scan &s)
{
    if (!t.bitMask)
        return;
    const uint64_t ls = t.lineSize;
    const uint64_t bw = t.blockWidth;
    const unsigned cap = ctx.capacity;
    const Addr start = ctx.blk.startPc;
    // BitTable::lookup probes once per window instruction.
    t.uBitProbes += cap;

    const unsigned bit_cycles = t.pcycles[static_cast<unsigned>(
        PenaltyKind::BitMispredict)][0];
    const uint8_t *pht = t.pht.data();
    for (uint64_t m = t.bitMask; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        const uint8_t *arena = t.bit.data() + t.bitBase[l];
        const uint64_t ent_mask = t.bitEntMask[l];
        const uint64_t pht_off = t.phtBase[l] + idx[l] * bw;
        // predictExit over the stale codes: selector-relevant fields
        // only (src + line position; numNotTaken never reaches the
        // comparison).
        uint64_t src = 0, pos = 0;
        for (unsigned i = 0; i < cap; ++i) {
            const Addr pc = start + i;
            const BitCode code = static_cast<BitCode>(
                arena[((pc / ls) & ent_mask) * ls + pc % ls]);
            if (code == BitCode::NonBranch)
                continue;
            if (code == BitCode::Return) {
                src = static_cast<uint64_t>(SelSrc::Ras);
            } else if (code == BitCode::OtherBranch) {
                src = static_cast<uint64_t>(SelSrc::Target);
            } else {
                // Conditional: the stale scan consults the real PHT
                // counters (one counted lookup per probe).
                ++t.phtLookups[l];
                if (pht[pht_off + (pc & (bw - 1))] < 2)
                    continue;
                src = nearCondSrc(code);
            }
            pos = pc % ls;
            break;
        }
        if (src != s.src[l] || pos != s.posByte[l])
            chargeLane(t, l, start, 0, PenaltyKind::BitMispredict,
                       bit_cycles);
    }

    // refreshBitEntries: every touched line learns its true codes.
    const Addr first = start / ls;
    const Addr last = (start + (cap ? cap - 1 : 0)) / ls;
    t.uBitUpdates += last - first + 1;
    const bool want_near = (t.bitMask & t.nearMask) != 0;
    const bool want_plain = (t.bitMask & ~t.nearMask) != 0;
    for (Addr line = first; line <= last; ++line) {
        if (want_near)
            batchTrueLineCodes(image, line, t.lineSize, true,
                               t.bitLineNear.data());
        if (want_plain)
            batchTrueLineCodes(image, line, t.lineSize, false,
                               t.bitLinePlain.data());
        for (uint64_t m = t.bitMask; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            const uint8_t *codes = (t.nearMask >> l) & 1
                ? t.bitLineNear.data()
                : t.bitLinePlain.data();
            std::memcpy(t.bit.data() + t.bitBase[l] +
                            (line & t.bitEntMask[l]) * ls,
                        codes, ls);
        }
    }
}

/** Apply one staged block's conditionals to the delayed lanes' PHT
 *  counters (PhtTrainer's apply of a two-requests-old batch).
 *  Immediate lanes ride the gather/saturate for free; the scatter
 *  touches only delayedMask lanes. */
void
applyStagedBlock(SoaTile &t, const SoaTile::StagedBlock &blk)
{
    const std::size_t pad_n = t.padN;
    const uint64_t bw = t.blockWidth;
    const uint64_t *base = t.phtBase.data();
    const uint64_t *ix = blk.idx.data();
    uint64_t *goff = t.gatherOff.data();
    uint64_t *gval = t.gatherVal.data();
    uint8_t *pht = t.pht.data();
    for (const uint32_t packed : blk.conds) {
        const uint64_t pos = packed >> 1;
        for (std::size_t l = 0; l < pad_n; ++l)
            goff[l] = base[l] + ix[l] * bw + pos;
        gatherBytes(pht, goff, gval, pad_n);
        if (packed & 1) {
            for (std::size_t l = 0; l < pad_n; ++l)
                gval[l] += static_cast<uint64_t>(gval[l] < 3);
        } else {
            for (std::size_t l = 0; l < pad_n; ++l)
                gval[l] -= static_cast<uint64_t>(gval[l] > 0);
        }
        for (uint64_t m = t.delayedMask; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            pht[goff[l]] = static_cast<uint8_t>(gval[l]);
        }
        ++t.uPhtUpdatesDelayed;
    }
}

/** PhtTrainer::tick for the delayed lanes: open this request's
 *  batch, then apply the one staged two requests ago. Like the
 *  reference, the trailing <= 2 batches are simply never applied. */
void
delayedTick(SoaTile &t)
{
    if (!t.delayedMask)
        return;
    t.staged[(t.stagedHead + t.stagedCount) % 3].nblocks = 0;
    ++t.stagedCount;
    while (t.stagedCount > 2) {
        SoaTile::StagedBatch &batch = t.staged[t.stagedHead];
        for (unsigned b = 0; b < batch.nblocks; ++b)
            applyStagedBlock(t, batch.blocks[b]);
        t.stagedHead = (t.stagedHead + 1) % 3;
        --t.stagedCount;
    }
}

/** batchTrainPht: gather / saturate +-1 / scalar byte scatter, once
 *  per conditional (tile-uniform update counts accumulate in
 *  finish()). Delayed-update lanes stage the block instead (the
 *  per-lane index column is copied: the GHR moves on before the
 *  batch applies). */
void
trainConds(SoaTile &t, const BatchBlockCtx &ctx,
           const std::vector<uint64_t> &idx)
{
    if (t.delayedMask) {
        mbbp_assert(t.stagedCount > 0, "train before tick");
        SoaTile::StagedBatch &batch =
            t.staged[(t.stagedHead + t.stagedCount - 1) % 3];
        mbbp_assert(batch.nblocks < 4,
                    "more blocks staged than the group size allows");
        SoaTile::StagedBlock &blk = batch.blocks[batch.nblocks++];
        blk.idx.assign(idx.begin(), idx.end());
        blk.conds.clear();
        const uint64_t bw = t.blockWidth;
        for (const BatchCondInfo &c : ctx.conds)
            blk.conds.push_back(static_cast<uint32_t>(
                ((c.pc & (bw - 1)) << 1) |
                static_cast<uint64_t>(c.taken)));
        if (t.delayedMask == t.allMask)
            return;
    }
    const std::size_t pad_n = t.padN;
    const uint64_t bw = t.blockWidth;
    const uint64_t *base = t.phtBase.data();
    const uint64_t *ix = idx.data();
    uint64_t *goff = t.gatherOff.data();
    uint64_t *gval = t.gatherVal.data();
    for (const BatchCondInfo &c : ctx.conds) {
        const uint64_t pos = c.pc & (bw - 1);
        for (std::size_t l = 0; l < pad_n; ++l)
            goff[l] = base[l] + ix[l] * bw + pos;
        gatherBytes(t.pht.data(), goff, gval, pad_n);
        if (c.taken) {
            for (std::size_t l = 0; l < pad_n; ++l)
                gval[l] += static_cast<uint64_t>(gval[l] < 3);
        } else {
            for (std::size_t l = 0; l < pad_n; ++l)
                gval[l] -= static_cast<uint64_t>(gval[l] > 0);
        }
        uint8_t *pht = t.pht.data();
        if (!t.delayedMask) {
            for (unsigned l = 0; l < t.n; ++l)
                pht[goff[l]] = static_cast<uint8_t>(gval[l]);
        } else {
            const uint64_t imm = t.allMask & ~t.delayedMask;
            for (uint64_t m = imm; m; m &= m - 1) {
                const unsigned l = static_cast<unsigned>(
                    std::countr_zero(m));
                pht[goff[l]] = static_cast<uint8_t>(gval[l]);
            }
        }
    }
}

/** GlobalHistory::shiftInBlock, closed form. @p ins carries the
 *  block's outcomes bit-reversed so the first executed conditional
 *  lands oldest, exactly as the reference's per-bit loop leaves
 *  them. */
inline void
ghrShift(SoaTile &t, uint64_t ins, unsigned count)
{
    if (count == 0)
        return;
    const std::size_t pad_n = t.padN;
    uint64_t *g = t.ghr.data();
    const uint64_t *im = t.idxMask.data();
    for (std::size_t l = 0; l < pad_n; ++l)
        g[l] = ((g[l] << count) | ins) & im[l];
}

/** The block's outcomes in insertion order (see ghrShift). */
inline uint64_t
ghrInsertBits(const BatchBlockCtx &ctx)
{
    uint64_t ins = 0;
    for (unsigned i = 0; i < ctx.numConds; ++i)
        ins |= ((ctx.condMask >> i) & 1)
            << (ctx.numConds - 1 - i);
    return ins;
}

/** batchUpdateTargetArray in columnar form. The skip conditions are
 *  block-uniform except the near-conditional-exit rule, which skips
 *  exactly the near-block lanes. */
void
nlsUpdate(SoaTile &t, const BatchBlockCtx &ctx, Addr index_addr,
          unsigned which)
{
    if (!ctx.endsTaken || ctx.exitIsReturn)
        return;
    uint64_t m = t.allMask;
    if (ctx.exitIsCond && ctx.exitNearCond)
        m &= ~t.nearMask;
    if (!m)
        return;
    const uint64_t line_idx = index_addr / t.lineSize;
    const uint64_t pos = ctx.exitPc % t.lineSize;
    const uint64_t arrays = t.nlsArrays;
    uint64_t *nls = t.nls.data();
    const uint64_t *nbase = t.nlsBase.data();
    const uint64_t *nmask = t.nlsIdxMask.data();
    for (; m; m &= m - 1) {
        const unsigned l = static_cast<unsigned>(std::countr_zero(m));
        nls[nbase[l] +
            ((line_idx & nmask[l]) * arrays + which) * t.lineSize +
            pos] = ctx.exitTarget;
    }
}

/** batchApplyRasOp, once per shared RAS group. */
inline void
rasApply(SoaTile &t, const BatchBlockCtx &ctx)
{
    switch (ctx.rasOp) {
      case RasOp::Push:
        for (auto &g : t.rasGroups)
            g->push(ctx.rasPush);
        break;
      case RasOp::Pop:
        for (auto &g : t.rasGroups)
            g->pop();
        break;
      case RasOp::None:
        break;
    }
}

/** Tile-uniform per-block accounting (countBlockStats + perfect
 *  i-cache touches), folded per lane at finish(). */
inline void
countBlockUniform(SoaTile &t, const BatchBlockCtx &ctx)
{
    t.uInstructions += ctx.numInsts;
    t.uBlocks += 1;
    t.uBranches += ctx.numBranches;
    t.uConds += ctx.numConds;
    t.uNearConds += ctx.numNearConds;
    t.uIcacheAccesses += ctx.lastLine - ctx.firstLine + 1;
}

/** FetchBandwidth::endRequest: the insts/blocks distributions are
 *  request-uniform and shared; the mispredict-run distribution is
 *  per lane. */
inline void
endRequest(SoaTile &t, uint64_t insts, uint64_t blocks)
{
    t.bwInsts.record(insts);
    t.bwBlocks.record(blocks);
    for (unsigned l = 0; l < t.n; ++l) {
        if ((t.reqMispred >> l) & 1) {
            t.bwRuns[l].record(t.cleanRun[l]);
            t.cleanRun[l] = 0;
        } else {
            ++t.cleanRun[l];
        }
    }
}

/** runSingleTile over the SoA tile. */
void
runSingleImpl(SoaTile &t, const DecodedTrace &dec)
{
    const StaticImage &image = dec.image();
    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return;     // the reference returns before any flush
    t.ran = true;

    BbrOccupancy bbr(4);
    BatchBlockCtx ctx;
    for (std::size_t b = 0; b < nblocks; ++b) {
        ctx.build(dec, b, t.lineSize);
        if (b + 1 < nblocks) {
            mbbp_assert(dec.startPc(b + 1) == ctx.blk.nextPc,
                        "block index out of sync");
        }

        ++t.uFetchRequests;
        t.reqMispred = 0;
        delayedTick(t);
        countBlockUniform(t, ctx);
        t.uPhtUpdates += ctx.conds.size();

        phtIndexes(t, ctx.blk.startPc >> t.shift, t.idx1);
        scanBlock(t, ctx, t.idx1, t.scanB);
        bitStage(t, ctx, image, t.idx1, t.scanB);
        resolveAndCharge(t, ctx, t.scanB, 0, ctx.blk.startPc, 0,
                         t.allMask);

        bbr.addBlock(ctx.conds.size());
        bbr.expire();

        trainConds(t, ctx, t.idx1);
        ghrShift(t, ghrInsertBits(ctx), ctx.numConds);
        nlsUpdate(t, ctx, ctx.blk.startPc, 0);
        rasApply(t, ctx);

        endRequest(t, ctx.numInsts, 1);
    }
    t.bbrPeak = bbr.peakInFlight();
}

/** runDualTile over the SoA tile (double-selection lanes included:
 *  their extra slot-0 select stage and the wider two-slot entries
 *  ride the same columns, keyed by dsMask). */
void
runDualImpl(SoaTile &t, const DecodedTrace &dec)
{
    const StaticImage &image = dec.image();
    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return;
    t.ran = true;

    BbrOccupancy bbr(4);
    BatchBlockCtx ctxB, ctxC, ctxD;
    std::size_t bi = 0;
    ctxB.build(dec, bi, t.lineSize);

    // Figure 3's b0 primes the pipeline alone.
    ++t.uFetchRequests;
    t.reqMispred = 0;
    countBlockUniform(t, ctxB);
    endRequest(t, ctxB.numInsts, 1);

    for (;;) {
        const std::size_t ci = bi + 1;
        if (ci >= nblocks)
            break;
        ctxC.build(dec, ci, t.lineSize);
        mbbp_assert(ctxC.blk.startPc == ctxB.blk.nextPc,
                    "block index out of sync");
        const std::size_t di = ci + 1;
        const bool have_d = di < nblocks;
        bool conflict_cd = false;
        uint64_t d_offset = 0;
        if (have_d) {
            ctxD.build(dec, di, t.lineSize);
            mbbp_assert(ctxD.blk.startPc == ctxC.blk.nextPc,
                        "block index out of sync");
            conflict_cd = batchBankConflict(ctxC, ctxD, t.numBanks);
            // The reference stores startOffset as uint8_t.
            d_offset = (ctxD.blk.startPc % t.lineSize) & 0xff;
        }

        ++t.uFetchRequests;
        t.reqMispred = 0;
        delayedTick(t);
        countBlockUniform(t, ctxC);
        uint64_t req_insts = ctxC.numInsts;
        if (have_d) {
            countBlockUniform(t, ctxD);
            req_insts += ctxD.numInsts;
            if (conflict_cd) {
                const unsigned cycles = t.pcycles[static_cast<
                    unsigned>(PenaltyKind::BankConflict)][1];
                ++t.uBankEvents;
                t.uBankCycles += cycles;
            }
        }

        // ===== Block 1: B's exit prediction (C's address). =====
        phtIndexes(t, ctxB.blk.startPc >> t.shift, t.idx1);
        scanBlock(t, ctxB, t.idx1, t.scanB);

        uint64_t pen1 = 0;
        if (t.dsMask) {
            // Double selection's slot-0 stage: read the entry B's
            // address selects, compare selector then GHR info (never
            // the stored offset), and always write the truth back.
            // One read + one write per request, even the trailing
            // partial one.
            ++t.uSelReadsDS;
            ++t.uSelWritesDS;
            const uint64_t c_off =
                (ctxC.blk.startPc % t.lineSize) & 0xff;
            const unsigned missel0 = t.pcyclesDS[static_cast<
                unsigned>(PenaltyKind::Misselect)][0];
            const unsigned ghr0 = t.pcyclesDS[static_cast<unsigned>(
                PenaltyKind::GhrMispredict)][0];
            uint64_t *st = t.st.data();
            for (uint64_t m = t.dsMask; m; m &= m - 1) {
                const unsigned l = static_cast<unsigned>(
                    std::countr_zero(m));
                const uint64_t off = t.stBase[l] +
                    ((ctxB.blk.startPc & t.stTabMask[l]) *
                         t.stEntries[l] +
                     t.idx1[l]) *
                        t.stSlots[l];
                const uint64_t exp = t.scanB.src[l] |
                    ((t.scanB.posByte[l] & 0xff) << 8) |
                    (t.scanB.nnt[l] << 16) |
                    (((t.scanB.found >> l) & 1) << 24) |
                    (c_off << 32) | (uint64_t{ 1 } << 40);
                const uint64_t diff = st[off] ^ exp;
                if (diff & 0xffff) {
                    chargeLane(t, l, ctxB.blk.startPc, 0,
                               PenaltyKind::Misselect, missel0);
                    pen1 |= uint64_t{ 1 } << l;
                } else if (diff & 0xffff0000) {
                    chargeLane(t, l, ctxB.blk.startPc, 0,
                               PenaltyKind::GhrMispredict, ghr0);
                    pen1 |= uint64_t{ 1 } << l;
                }
                st[off] = exp;
            }
        }
        bitStage(t, ctxB, image, t.idx1, t.scanB);

        pen1 |= resolveAndCharge(t, ctxB, t.scanB, 0,
                                 ctxB.blk.startPc, 0, t.allMask);

        bbr.addBlock(ctxB.conds.size());
        t.uPhtUpdates += ctxB.conds.size();
        trainConds(t, ctxB, t.idx1);
        ghrShift(t, ghrInsertBits(ctxB), ctxB.numConds);
        rasApply(t, ctxB);

        if (!have_d) {
            // C is the last complete block; its exit cannot be
            // scored.
            nlsUpdate(t, ctxB, ctxB.blk.startPc, 0);
            endRequest(t, req_insts, 1);
            break;
        }

        // ===== Block 2: C's exit via the select table. =====
        phtIndexes(t, ctxC.blk.startPc >> t.shift, t.idx2);
        scanBlock(t, ctxC, t.idx2, t.scanC);

        // One ST read and one write per pair, for every lane
        // (tile-uniform counts; double-select lanes also counted
        // the slot-0 stage above); entries live at
        // ((tableOf(C) * entries + idx1) * slots + dsBit) in each
        // lane's slab.
        ++t.uSelReads;
        ++t.uSelWrites;
        if (t.dsMask) {
            ++t.uSelReadsDS;
            ++t.uSelWritesDS;
        }
        const uint64_t tab_addr = ctxC.blk.startPc;
        const std::size_t pad_n = t.padN;
        // Dedicated offset column: resolveAndCharge clobbers the
        // shared gather scratch before the write-back below.
        uint64_t *soff = t.stOff.data();
        for (std::size_t l = 0; l < pad_n; ++l)
            soff[l] = t.stBase[l] +
                ((tab_addr & t.stTabMask[l]) * t.stEntries[l] +
                 t.idx1[l]) *
                    t.stSlots[l] +
                ((t.dsMask >> l) & 1);
        gatherWords(t.st.data(), soff, t.stWord.data(), pad_n);
        for (std::size_t l = 0; l < pad_n; ++l)
            t.expWord[l] = t.scanC.src[l] |
                ((t.scanC.posByte[l] & 0xff) << 8) |
                (t.scanC.nnt[l] << 16) |
                (((t.scanC.found >> l) & 1) << 24) |
                (d_offset << 32) | (uint64_t{ 1 } << 40);

        // Slot-1 select penalties differ under double selection
        // (PenaltyModel(doubleSelect) is per lane).
        const unsigned missel_cycles = t.pcycles[static_cast<
            unsigned>(PenaltyKind::Misselect)][1];
        const unsigned ghr_cycles = t.pcycles[static_cast<unsigned>(
            PenaltyKind::GhrMispredict)][1];
        const unsigned missel_ds = t.pcyclesDS[static_cast<unsigned>(
            PenaltyKind::Misselect)][1];
        const unsigned ghr_ds = t.pcyclesDS[static_cast<unsigned>(
            PenaltyKind::GhrMispredict)][1];
        uint64_t resolve_m = t.allMask & ~pen1;
        for (uint64_t m = resolve_m; m; m &= m - 1) {
            const unsigned l = static_cast<unsigned>(
                std::countr_zero(m));
            const bool ds = (t.dsMask >> l) & 1;
            const uint64_t diff = t.stWord[l] ^ t.expWord[l];
            if (diff & 0xffff) {
                chargeLane(t, l, ctxC.blk.startPc, 1,
                           PenaltyKind::Misselect,
                           ds ? missel_ds : missel_cycles);
            } else if (diff & 0xffff0000) {
                chargeLane(t, l, ctxC.blk.startPc, 1,
                           PenaltyKind::GhrMispredict,
                           ds ? ghr_ds : ghr_cycles);
            } else if (((t.storedOffMask >> l) & 1) &&
                       t.scanC.src[l] >=
                           static_cast<uint64_t>(SelSrc::LinePrev) &&
                       ((t.stWord[l] >> 32) & 0xff) != d_offset) {
                chargeLane(t, l, ctxC.blk.startPc, 1,
                           PenaltyKind::Misselect,
                           ds ? missel_ds : missel_cycles);
            }
        }
        resolveAndCharge(t, ctxC, t.scanC, 1, ctxB.blk.startPc, 1,
                         resolve_m);
        uint64_t *st = t.st.data();
        for (unsigned l = 0; l < t.n; ++l)
            st[soff[l]] = t.expWord[l];

        nlsUpdate(t, ctxB, ctxB.blk.startPc, 0);
        nlsUpdate(t, ctxC, ctxB.blk.startPc, 1);

        bbr.addBlock(ctxC.conds.size());
        bbr.expire();

        t.uPhtUpdates += ctxC.conds.size();
        trainConds(t, ctxC, t.idx2);
        ghrShift(t, ghrInsertBits(ctxC), ctxC.numConds);
        rasApply(t, ctxC);

        endRequest(t, req_insts, 2);

        bi = di;
        std::swap(ctxB, ctxD);
    }
    t.bbrPeak = bbr.peakInFlight();
}

/** runMultiTile over the SoA tile. */
void
runMultiImpl(SoaTile &t, const DecodedTrace &dec)
{
    const StaticImage &image = dec.image();
    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return;
    t.ran = true;

    const unsigned nb = t.numBlocks;
    // ctxs[0]: last block of the currently fetching group; ctxs[1..]
    // the next group's blocks.
    std::vector<BatchBlockCtx> ctxs(nb + 1);
    std::array<bool, 4> conflict{};
    std::size_t bi = 0;
    ctxs[0].build(dec, bi, t.lineSize);

    // The first block primes the pipeline alone.
    ++t.uFetchRequests;
    t.reqMispred = 0;
    countBlockUniform(t, ctxs[0]);
    endRequest(t, ctxs[0].numInsts, 1);

    for (;;) {
        const std::size_t g_first = bi + 1;
        const std::size_t g_count = g_first < nblocks
            ? std::min<std::size_t>(nb, nblocks - g_first) : 0;
        if (g_count == 0)
            break;
        mbbp_assert(dec.startPc(g_first) == ctxs[0].blk.nextPc,
                    "block index out of sync");
        for (std::size_t j = 0; j < g_count; ++j)
            ctxs[j + 1].build(dec, g_first + j, t.lineSize);
        for (std::size_t j = 1; j < g_count; ++j) {
            bool c = false;
            for (std::size_t i = 0; i < j && !c; ++i)
                c = batchBankConflict(ctxs[i + 1], ctxs[j + 1],
                                      t.numBanks);
            conflict[j] = c;
        }

        ++t.uFetchRequests;
        t.reqMispred = 0;
        delayedTick(t);
        uint64_t req_insts = 0;
        for (std::size_t j = 0; j < g_count; ++j) {
            countBlockUniform(t, ctxs[j + 1]);
            req_insts += ctxs[j + 1].numInsts;
        }
        for (std::size_t j = 1; j < g_count; ++j) {
            if (conflict[j]) {
                ++t.uBankEvents;
                t.uBankCycles += t.pcycles[static_cast<unsigned>(
                    PenaltyKind::BankConflict)][j];
            }
        }

        // Slot 0: B's own exit via BIT+PHT.
        phtIndexes(t, ctxs[0].blk.startPc >> t.shift, t.idx1);
        scanBlock(t, ctxs[0], t.idx1, t.scanB);
        bitStage(t, ctxs[0], image, t.idx1, t.scanB);
        uint64_t squashed = resolveAndCharge(
            t, ctxs[0], t.scanB, 0, ctxs[0].blk.startPc, 0,
            t.allMask);
        t.uPhtUpdates += ctxs[0].conds.size();
        trainConds(t, ctxs[0], t.idx1);
        ghrShift(t, ghrInsertBits(ctxs[0]), ctxs[0].numConds);
        rasApply(t, ctxs[0]);
        nlsUpdate(t, ctxs[0], ctxs[0].blk.startPc, 0);

        // Slots k = 1..: select-table predictions, all indexed by
        // idx1; a charge at any earlier slot squashes the later
        // ones' penalties (but never their reads, writes, or
        // training).
        for (std::size_t k = 1; k < g_count; ++k) {
            const BatchBlockCtx &prev = ctxs[k];
            const unsigned ku = static_cast<unsigned>(k);
            phtIndexes(t, prev.blk.startPc >> t.shift, t.idx2);
            scanBlock(t, prev, t.idx2, t.scanC);

            ++t.uSelReads;
            ++t.uSelWrites;
            const uint64_t tab_addr = prev.blk.startPc;
            const uint64_t w_offset =
                (prev.blk.nextPc % t.lineSize) & 0xff;
            const std::size_t pad_n = t.padN;
            uint64_t *soff = t.stOff.data();
            for (std::size_t l = 0; l < pad_n; ++l)
                soff[l] = t.stBase[l] +
                    ((tab_addr & t.stTabMask[l]) * t.stEntries[l] +
                     t.idx1[l]) *
                        t.stSlots[l] +
                    (k - 1);
            gatherWords(t.st.data(), soff, t.stWord.data(), pad_n);
            for (std::size_t l = 0; l < pad_n; ++l)
                t.expWord[l] = t.scanC.src[l] |
                    ((t.scanC.posByte[l] & 0xff) << 8) |
                    (t.scanC.nnt[l] << 16) |
                    (((t.scanC.found >> l) & 1) << 24) |
                    (w_offset << 32) | (uint64_t{ 1 } << 40);

            const unsigned missel_cycles = t.pcycles[static_cast<
                unsigned>(PenaltyKind::Misselect)][ku];
            const unsigned ghr_cycles = t.pcycles[static_cast<
                unsigned>(PenaltyKind::GhrMispredict)][ku];
            const uint64_t gate = t.allMask & ~squashed;
            for (uint64_t m = gate; m; m &= m - 1) {
                const unsigned l = static_cast<unsigned>(
                    std::countr_zero(m));
                const uint64_t diff = t.stWord[l] ^ t.expWord[l];
                if (diff & 0xffff) {
                    chargeLane(t, l, prev.blk.startPc, ku,
                               PenaltyKind::Misselect,
                               missel_cycles);
                } else if (diff & 0xffff0000) {
                    chargeLane(t, l, prev.blk.startPc, ku,
                               PenaltyKind::GhrMispredict,
                               ghr_cycles);
                }
                // No stored-offset rule: the multi-block engine
                // models plain single selection.
            }
            squashed |= resolveAndCharge(t, prev, t.scanC, ku,
                                         ctxs[0].blk.startPc, ku,
                                         gate);
            uint64_t *st = t.st.data();
            for (unsigned l = 0; l < t.n; ++l)
                st[soff[l]] = t.expWord[l];

            nlsUpdate(t, prev, ctxs[0].blk.startPc, ku);
            t.uPhtUpdates += prev.conds.size();
            trainConds(t, prev, t.idx2);
            ghrShift(t, ghrInsertBits(prev), prev.numConds);
            rasApply(t, prev);
        }

        endRequest(t, req_insts, g_count);

        if (g_count < nb)
            break;      // block index exhausted mid-group
        bi = g_first + g_count - 1;
        std::swap(ctxs[0], ctxs[g_count]);
    }
}

/** runTwoAheadTile over the SoA tile: per-lane state is just the
 *  two-ahead address table plus a two-deep pending ring whose
 *  occupancy (pcount/phead) is block-stream-driven and therefore
 *  tile-uniform; only the ring's contents are per lane. */
void
runTwoAheadImpl(SoaTile &t, const DecodedTrace &dec)
{
    const std::size_t nblocks = dec.numBlocks();
    const std::size_t pad_n = t.padN;

    std::vector<uint64_t> pend_idx[2], pend_pred[2];
    pend_idx[0].assign(pad_n, 0);
    pend_idx[1].assign(pad_n, 0);
    pend_pred[0].assign(pad_n, 0);
    pend_pred[1].assign(pad_n, 0);
    uint64_t pend_valid[2] = { 0, 0 };
    unsigned pcount = 0, phead = 0;
    uint64_t req_insts0 = 0, req_blocks = 0;
    bool req_open = false;

    BatchBlockCtx cur, prevCtx;
    for (std::size_t b = 0; b < nblocks; ++b) {
        t.ran = true;
        cur.build(dec, b, t.lineSize);
        // Second slot of a request: stash (= block b-1) vs this one.
        const bool conflict = (b >= 2 && b % 2 == 0)
            ? batchBankConflict(prevCtx, cur, t.numBanks) : false;

        if (b == 0) {
            ++t.uFetchRequests;
            req_open = true;
            t.reqMispred = 0;
            req_insts0 = t.uInstructions;
            req_blocks = 0;
        } else if (b % 2 == 1) {
            endRequest(t, t.uInstructions - req_insts0, req_blocks);
            ++t.uFetchRequests;
            t.reqMispred = 0;
            req_insts0 = t.uInstructions;
            req_blocks = 0;
        } else if (conflict) {
            ++t.uBankEvents;
            t.uBankCycles += t.pcycles[static_cast<unsigned>(
                PenaltyKind::BankConflict)][1];
        }
        // batchCountBlockStats only: the two-ahead engine never
        // touches the i-cache model (countBlockUniform would).
        t.uInstructions += cur.numInsts;
        t.uBlocks += 1;
        t.uBranches += cur.numBranches;
        t.uConds += cur.numConds;
        t.uNearConds += cur.numNearConds;
        ++req_blocks;

        // Score the prediction made two blocks ago. The mispredict
        // kind and cycle count come from the previous block's
        // uniform facts; only the hit/miss split is per lane.
        if (pcount == 2) {
            const std::vector<uint64_t> &pidx = pend_idx[phead];
            const std::vector<uint64_t> &ppred = pend_pred[phead];
            const uint64_t pvalid = pend_valid[phead];
            phead ^= 1;
            --pcount;
            const unsigned slot = b % 2 == 1 ? 0u : 1u;
            PenaltyKind kind = PenaltyKind::MisfetchImmediate;
            if (prevCtx.endsTaken) {
                if (prevCtx.exitIsCond)
                    kind = PenaltyKind::CondMispredict;
                else if (prevCtx.exitIsReturn)
                    kind = PenaltyKind::ReturnMispredict;
                else if (prevCtx.exitIsIndirect)
                    kind = PenaltyKind::MisfetchIndirect;
            } else {
                kind = prevCtx.numConds > 0
                    ? PenaltyKind::CondMispredict
                    : PenaltyKind::MisfetchImmediate;
            }
            const unsigned cycles =
                t.pcycles[static_cast<unsigned>(kind)][slot];
            const bool is_cond =
                kind == PenaltyKind::CondMispredict;
            uint64_t wrong = ~pvalid & t.allMask;
            for (uint64_t m = pvalid & t.allMask; m; m &= m - 1) {
                const unsigned l = static_cast<unsigned>(
                    std::countr_zero(m));
                if (ppred[l] != cur.blk.startPc)
                    wrong |= uint64_t{ 1 } << l;
            }
            for (uint64_t m = wrong; m; m &= m - 1) {
                const unsigned l = static_cast<unsigned>(
                    std::countr_zero(m));
                chargeLane(t, l, prevCtx.blk.startPc, slot, kind,
                           cycles);
                if (is_cond)
                    ++t.stats[l].condDirectionWrong;
            }
            // The table learns the truth for every lane, before
            // this block's own prediction reads it (the reference
            // order).
            Addr *ta = t.taAddr.data();
            uint8_t *tv = t.taValid.data();
            for (unsigned l = 0; l < t.n; ++l) {
                const uint64_t e = t.taBase[l] + pidx[l];
                ta[e] = cur.blk.startPc;
                tv[e] = 1;
            }
        }

        // Make this block's two-ahead prediction.
        std::vector<uint64_t> &nidx = pend_idx[(phead + pcount) % 2];
        std::vector<uint64_t> &npred =
            pend_pred[(phead + pcount) % 2];
        uint64_t nvalid = 0;
        const uint64_t *g = t.ghr.data();
        const Addr *ta = t.taAddr.data();
        const uint8_t *tv = t.taValid.data();
        for (unsigned l = 0; l < t.n; ++l) {
            const uint64_t ix =
                (g[l] ^ xorFold(cur.lineAddr, static_cast<unsigned>(
                                    t.histBits[l]))) &
                t.idxMask[l];
            const uint64_t e = t.taBase[l] + ix;
            nidx[l] = ix;
            npred[l] = ta[e];
            nvalid |= static_cast<uint64_t>(tv[e] != 0) << l;
        }
        pend_valid[(phead + pcount) % 2] = nvalid;
        ++pcount;

        ghrShift(t, ghrInsertBits(cur), cur.numConds);

        std::swap(prevCtx, cur);
    }

    if (req_open)
        endRequest(t, t.uInstructions - req_insts0, req_blocks);
}

} // namespace

const LaneSoaKernels &
kernels()
{
    static const LaneSoaKernels k{ &runSingleImpl, &runDualImpl,
                                   &runMultiImpl, &runTwoAheadImpl };
    return k;
}

} // namespace MBBP_SOA_NS
} // namespace mbbp

/**
 * @file
 * Declarative design-space sweep specifications.
 *
 * A sweep spec names a set of SimConfig field assignments to explore:
 * a `base` configuration, a `grid` of axes expanded as a cartesian
 * product, and/or an explicit `points` list. Expansion is fully
 * deterministic: jobs are ordered grid-first (axes vary in
 * declaration order, last axis fastest, like a row-major array),
 * then explicit points, so results can be aggregated byte-identically
 * regardless of how many threads execute them.
 *
 * JSON form (all sections optional except at least one job source):
 * @code{.json}
 * {
 *   "name": "history-sweep",
 *   "benchmarks": ["gcc", "compress", "swim", "tomcatv"],
 *   "instructions": 200000,
 *   "base": { "numBlocks": 2 },
 *   "grid": { "historyBits": [6, 8, 10, 12],
 *             "numSelectTables": [1, 4] },
 *   "points": [ { "numBlocks": 1, "historyBits": 10 } ]
 * }
 * @endcode
 */

#ifndef MBBP_SWEEP_SWEEP_SPEC_HH
#define MBBP_SWEEP_SWEEP_SPEC_HH

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/fetch_simulator.hh"

namespace mbbp
{

/** Invalid spec: unknown field, bad value, malformed JSON, ... */
class SweepError : public std::runtime_error
{
  public:
    explicit SweepError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * The spec itself is well-formed but names a benchmark the suite
 * does not provide. Split from plain SweepError so tools can report
 * "your trace is missing" (exit 3 / HTTP unknown_benchmark)
 * distinctly from "your spec is malformed" (exit 2 / bad_spec).
 */
class UnknownBenchmarkError : public SweepError
{
  public:
    explicit UnknownBenchmarkError(const std::string &name)
        : SweepError("unknown benchmark \"" + name + "\""),
          benchmark_(name)
    {
    }

    const std::string &benchmark() const { return benchmark_; }

  private:
    std::string benchmark_;
};

/** One (field, printable value) assignment, e.g. historyBits=10. */
using SweepParam = std::pair<std::string, std::string>;

/** One expanded configuration to simulate. */
struct SweepJob
{
    std::size_t index = 0;      //!< position in deterministic order
    SimConfig config;
    std::vector<SweepParam> params;     //!< the varying assignments
};

/**
 * Set @p field (e.g. "historyBits", "targetKind") on @p cfg from its
 * textual @p value. Throws SweepError on unknown fields or
 * unparseable values, naming the field and the accepted form.
 */
void applyConfigField(SimConfig &cfg, const std::string &field,
                      const std::string &value);

/** Every field name applyConfigField accepts, sorted. */
const std::vector<std::string> &sweepFieldNames();

/** A parsed, validated sweep specification. */
class SweepSpec
{
  public:
    /** Parse the JSON text; throws SweepError with context. */
    static SweepSpec fromJson(const std::string &text);

    /** Read and parse @p path; throws SweepError. */
    static SweepSpec fromJsonFile(const std::string &path);

    /** @{ Programmatic construction (what the benches use). */
    void setName(const std::string &name) { name_ = name; }
    void setBenchmarks(std::vector<std::string> names);
    void setInstructions(std::size_t n) { instructions_ = n; }
    void setBase(const std::string &field, const std::string &value);
    void addAxis(const std::string &field,
                 std::vector<std::string> values);
    void addPoint(std::vector<SweepParam> assignments);
    /** @} */

    const std::string &name() const { return name_; }
    const std::vector<std::string> &benchmarks() const
    {
        return benchmarks_;
    }
    std::size_t instructions() const { return instructions_; }

    /** Jobs this spec expands to (validated on the way). */
    std::size_t jobCount() const;

    /**
     * Expand into the deterministic job list, validating every
     * assignment. Throws SweepError on empty axes, duplicate axis
     * fields, unknown fields, or bad values.
     */
    std::vector<SweepJob> expand() const;

    /**
     * Canonical text form of everything that determines this spec's
     * expanded jobs and report bytes: name, benchmarks,
     * instructions, base assignments, grid axes and points, each in
     * declaration order, joined with control-character separators so
     * distinct specs cannot collide by concatenation. Two JSON texts
     * differing only in whitespace or unrelated formatting produce
     * the same key -- the normalization under the sweep service's
     * spec-hash result cache.
     */
    std::string canonicalKey() const;

  private:
    struct Axis
    {
        std::string field;
        std::vector<std::string> values;
    };

    std::string name_ = "sweep";
    std::vector<std::string> benchmarks_;   //!< empty = whole suite
    std::size_t instructions_ = 0;          //!< 0 = cache default
    std::vector<SweepParam> base_;
    std::vector<Axis> axes_;
    std::vector<std::vector<SweepParam>> points_;
};

} // namespace mbbp

#endif // MBBP_SWEEP_SWEEP_SPEC_HH

/**
 * @file
 * Structure-of-arrays lane state for the config-batched replay
 * kernel (DESIGN.md section 5d).
 *
 * The original batched kernel (batch_replay.cc) keeps one BatchLane
 * object per configuration and walks a lane *loop* per block; every
 * predictor read/update is scalar and every lane re-derives the
 * block-uniform bookkeeping. This layer restructures a tile's lane
 * state as parallel columns -- PHT counters packed one byte per
 * counter in a lane-indexed arena, GHRs / index masks / select-table
 * words / NLS targets / BIT window codes / stat accumulators as flat
 * arrays -- so the per-block work becomes staged passes over N-lane
 * vectors:
 *
 *   index   idx[l]  = (ghr[l] ^ a) & mask[l]        (vector xor/and)
 *   scan    gather PHT counters at per-lane offsets, compare >= 2,
 *           mask-resolve the first predicted exit
 *   verify  branchless compare against the block's actual exit;
 *           rare mispredicting lanes peel off into scalar fixups
 *   train   gather, saturating +-1, scatter
 *   ghr     ghr[l] = ((ghr[l] << c) | ins) & mask[l]
 *
 * and everything that is identical across lanes (fetch requests,
 * instruction counts, bank conflicts, BBR occupancy, select-table
 * read/write counts, RAS push/pop streams) is computed once per
 * tile and folded into each lane's FetchStats at finish().
 *
 * The exactness discipline of PR 5 is unchanged: every lane's
 * FetchStats, obs counters/histograms, and attribution rows must be
 * field-exact versus a solo engine run. The scalar instantiation of
 * lane_soa_impl.hh is the single source of truth for semantics; the
 * AVX2/AVX-512 instantiations (dispatched at runtime via util/simd)
 * must produce bit-identical state, which batch_replay_test enforces
 * on every dispatch path the host supports.
 *
 * All four engine kinds (Single, Dual, Multi, TwoAhead) and the
 * delayed-update / double-selection / finite-BIT corners ride the
 * columnar path; only finite i-cache contents keep the reference
 * BatchLane kernel (the replacement state is per-lane and
 * per-access, so the stages would serialize). laneSoaFallback()
 * names the reason per lane; runTile splits a mixed tile so
 * eligible lanes still take the vector path and the rest keep the
 * reference kernel, and batchReplay publishes the eligible/total
 * ratio as the sweep.soa.lane_coverage gauge plus one
 * sweep.soa.fallback.<reason> counter per scalar lane.
 */

#ifndef MBBP_SWEEP_LANE_SOA_HH
#define MBBP_SWEEP_LANE_SOA_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "fetch/batch_engine_state.hh"
#include "fetch/engine_config.hh"
#include "obs/attribution.hh"
#include "obs/obs.hh"
#include "sweep/batch_replay.hh"
#include "util/simd.hh"

namespace mbbp
{

/**
 * Occupancy-only BBR model, shared by the whole tile: the allocate/
 * release sequence depends only on the block stream, so one instance
 * serves every lane (see BatchLane's bbr member for the per-lane
 * form this replaces). Same (depth + 2)-slot ring as BbrInflight.
 */
class BbrOccupancy
{
  public:
    explicit BbrOccupancy(unsigned depth)
        : depth_(depth), counts_(depth + 2, 0)
    {
    }

    /** beginBlock + one allocate per conditional + commit. */
    void addBlock(std::size_t nconds)
    {
        mbbp_assert(liveSlots_ < counts_.size(),
                    "inflight ring overrun");
        counts_[(head_ + liveSlots_) % counts_.size()] = nconds;
        ++liveSlots_;
        live_ += nconds;
        if (live_ > peak_)
            peak_ = live_;
    }

    /** Release batches older than the resolution window. */
    void expire()
    {
        while (liveSlots_ > depth_) {
            mbbp_assert(live_ >= counts_[head_],
                        "BBR release with none in flight");
            live_ -= counts_[head_];
            head_ = (head_ + 1) % counts_.size();
            --liveSlots_;
        }
    }

    std::size_t peakInFlight() const { return peak_; }

  private:
    unsigned depth_;
    std::vector<std::size_t> counts_;   //!< allocations per batch
    std::size_t head_ = 0;              //!< oldest live batch
    std::size_t liveSlots_ = 0;
    std::size_t live_ = 0;
    std::size_t peak_ = 0;
};

/**
 * One return-address stack shared by every lane with the same
 * capacity: the push/pop stream is block-driven, so the ring
 * contents and overflow counts evolve identically. Replicates
 * ReturnAddressStack's observable semantics exactly (including the
 * zero-filled ring and the peek-empty -> 0 rule); per-lane peek
 * counts stay in SoaTile because lanes peek only when their own
 * prediction selects the RAS.
 */
struct SoaRasGroup
{
    std::vector<Addr> ring;
    std::size_t topIdx = 0;
    std::size_t depth = 0;
    uint64_t overflows = 0;
    uint64_t pushes = 0;
    uint64_t pops = 0;
    uint64_t underflows = 0;

    explicit SoaRasGroup(std::size_t capacity) : ring(capacity, 0) {}

    void push(Addr ret_addr)
    {
        ++pushes;
        ring[topIdx] = ret_addr;
        topIdx = (topIdx + 1) % ring.size();
        if (depth == ring.size())
            ++overflows;
        else
            ++depth;
    }

    void pop()
    {
        ++pops;
        if (depth == 0) {
            ++underflows;
            return;
        }
        topIdx = (topIdx + ring.size() - 1) % ring.size();
        --depth;
    }

    Addr top() const
    {
        if (depth == 0)
            return 0;
        return ring[(topIdx + ring.size() - 1) % ring.size()];
    }
};

/**
 * A tile of eligible lanes in columnar layout. Columns are padded to
 * a multiple of 8 lanes (the widest vector) with inert entries --
 * zero masks and arena offset 0 -- so kernels never need tail loops;
 * only bits of allMask are live.
 */
struct SoaTile
{
    static constexpr std::size_t kPad = 8;

    BatchEngineKind kind = BatchEngineKind::Single;
    unsigned n = 0;             //!< live lanes (<= 64)
    std::size_t padN = 0;       //!< n rounded up to kPad
    uint64_t allMask = 0;       //!< low n bits set
    unsigned numBlocks = 1;     //!< group size (Multi), else 1/2
    unsigned lineSize = 0;
    unsigned blockWidth = 0;
    unsigned shift = 0;         //!< floorLog2(blockWidth)
    unsigned numBanks = 1;      //!< i-cache banks (dual conflicts)
    bool anyMultiPht = false;
    bool ran = false;           //!< a kernel processed >= 1 block
    uint64_t nearMask = 0;      //!< lanes with nearBlock
    uint64_t storedOffMask = 0; //!< lanes with nearBlockStoredOffset
    uint64_t dsMask = 0;        //!< lanes with doubleSelect (Dual)
    uint64_t delayedMask = 0;   //!< lanes with delayedPhtUpdate
    uint64_t bitMask = 0;       //!< lanes with a finite BIT that the
                                //!< stale check runs for (excludes
                                //!< double-select lanes, which never
                                //!< touch their BIT in the reference)

    // --- PHT: one byte per 2-bit counter, lane tables contiguous.
    // The arena carries 8 trailing pad bytes so 8-byte vector
    // gathers at any counter offset stay in bounds.
    std::vector<uint8_t> pht;
    std::vector<uint64_t> phtBase;      //!< byte offset per lane
    std::vector<uint64_t> ghr;
    std::vector<uint64_t> idxMask;      //!< mask(historyBits)
    std::vector<uint64_t> phtTabMask;   //!< numPhts - 1
    std::vector<uint64_t> histBits;     //!< historyBits (shift count)

    // --- Select table (Dual / Multi): one entry packed per u64 word
    // -- src | pos<<8 | numNotTaken<<16 | endedTaken<<24 |
    // startOffset<<32 | valid<<40. The zero word is exactly the
    // never-written entry. Entries hold stSlots consecutive words
    // (2 under double selection, numBlocks-1 for Multi).
    std::vector<uint64_t> st;
    std::vector<uint64_t> stBase;       //!< word offset per lane
    std::vector<uint64_t> stTabMask;    //!< numSelectTables - 1
    std::vector<uint64_t> stEntries;    //!< 1 << historyBits
    std::vector<uint64_t> stSlots;      //!< words per entry

    // --- NLS target arrays: targets only (isCall/written are never
    // observable through the batch resolve path).
    std::vector<uint64_t> nls;
    std::vector<uint64_t> nlsBase;
    std::vector<uint64_t> nlsIdxMask;   //!< targetEntries - 1
    unsigned nlsArrays = 1;             //!< 1 / 2 / numBlocks

    // --- RAS: shared per distinct capacity; peeks per lane.
    std::vector<std::unique_ptr<SoaRasGroup>> rasGroups;
    std::vector<uint32_t> rasOf;        //!< lane -> group index
    std::vector<uint64_t> rasPeeks;

    // --- BIT: finite lanes keep bitEntries direct-mapped lines of
    // lineSize window codes, one byte per code (the writer tag a
    // BitTable entry also stores is unobservable: lookup ignores
    // it). Perfect-BIT lanes own no arena slice.
    std::vector<uint8_t> bit;
    std::vector<uint64_t> bitBase;      //!< byte offset per lane
    std::vector<uint64_t> bitEntMask;   //!< bitEntries - 1
    std::vector<uint8_t> bitLineNear;   //!< true-code scratch, 1 line
    std::vector<uint8_t> bitLinePlain;

    // --- Delayed PHT training: mirrors PhtTrainer's two-deep
    // request pipeline. Each request's tick() opens a batch and
    // applies the one staged two requests ago; train() appends the
    // request's blocks (up to numBlocks) to the open batch. The
    // trailing <= 2 batches are never applied, exactly like the
    // reference (batch kernels never flush the trainer).
    struct StagedBlock
    {
        std::vector<uint64_t> idx;      //!< per-lane PHT index copy
        std::vector<uint32_t> conds;    //!< (pc & (bw-1))<<1 | taken
    };
    struct StagedBatch
    {
        std::array<StagedBlock, 4> blocks;
        unsigned nblocks = 0;
    };
    std::array<StagedBatch, 3> staged;
    unsigned stagedHead = 0;
    unsigned stagedCount = 0;

    // --- TwoAhead: per-lane two-block-ahead address tables
    // (1 << historyBits entries). Pending-prediction state is
    // kernel-local; only the arena persists here.
    std::vector<Addr> taAddr;
    std::vector<uint8_t> taValid;
    std::vector<uint64_t> taBase;       //!< entry offset per lane

    // --- Per-lane outputs.
    std::vector<uint64_t> phtLookups;
    std::vector<FetchStats> stats;      //!< penalties + cond-wrong
    std::vector<std::unique_ptr<obs::AttributionSink>> attr;
    std::vector<obs::HistogramData> bwRuns;
    std::vector<uint64_t> cleanRun;

    // --- Tile-uniform accounting, folded per lane at finish().
    uint64_t uInstructions = 0;
    uint64_t uFetchRequests = 0;
    uint64_t uBlocks = 0;
    uint64_t uBranches = 0;
    uint64_t uConds = 0;
    uint64_t uNearConds = 0;
    uint64_t uIcacheAccesses = 0;
    uint64_t uPhtUpdates = 0;           //!< immediate-update lanes
    uint64_t uPhtUpdatesDelayed = 0;    //!< applied-batch updates
    uint64_t uSelReads = 0;             //!< single-selection lanes
    uint64_t uSelWrites = 0;
    uint64_t uSelReadsDS = 0;           //!< double-selection lanes
    uint64_t uSelWritesDS = 0;
    uint64_t uBitProbes = 0;            //!< finite-BIT lanes
    uint64_t uBitUpdates = 0;
    uint64_t uBankEvents = 0;
    uint64_t uBankCycles = 0;
    obs::HistogramData bwInsts;
    obs::HistogramData bwBlocks;
    std::size_t bbrPeak = 0;

    // Penalty cycle tables [kind][slot] for both selection modes
    // (they differ only for Misselect/Ghr/Bit); Multi charges up to
    // slot numBlocks-1 <= 3.
    unsigned pcycles[numPenaltyKinds][4] = {};
    unsigned pcyclesDS[numPenaltyKinds][4] = {};
    unsigned refetchExtra = 1;

    // --- Per-block scratch (kernel-owned, allocation-free steady
    // state).
    struct Scan
    {
        std::vector<uint64_t> src;      //!< SelSrc as integer
        std::vector<uint64_t> off;      //!< predicted exit offset
        std::vector<uint64_t> posByte;  //!< pc % lineSize, 0 if !found
        std::vector<uint64_t> nnt;      //!< not-taken count (sat 255)
        std::vector<uint64_t> tgt;      //!< near-block static target
        uint64_t found = 0;             //!< lanes with a found exit
    };
    Scan scanB, scanC;
    std::vector<uint64_t> idx1, idx2;   //!< PHT indexes
    std::vector<uint64_t> gatherOff;    //!< gather offsets
    std::vector<uint64_t> gatherVal;    //!< gather results
    std::vector<uint64_t> stOff;        //!< ST word offsets
    std::vector<uint64_t> stWord;       //!< gathered ST words
    std::vector<uint64_t> expWord;      //!< expected ST words
    uint64_t reqMispred = 0;            //!< charged lanes, this req

    /** Lay out columns and arenas for @p cs (all laneSoaEligible).
     *  @p num_blocks is the Multi group size (ignored otherwise). */
    void build(BatchEngineKind k, unsigned num_blocks,
               const std::vector<const FetchEngineConfig *> &cs,
               unsigned line_size);

    /** Fold uniform accounting into each lane's FetchStats and
     *  replay the reference per-lane obs flush sequence. */
    std::vector<FetchStats> finish();
};

/**
 * Why a lane cannot take the columnar path (Eligible if it can).
 * The names feed the sweep.soa.fallback.<reason> counter family, so
 * keep them stable: they are part of the metrics surface.
 */
enum class SoaFallback : uint8_t
{
    Eligible = 0,
    FiniteICache,       //!< finite i-cache contents (per-lane LRU)
    BtbTarget,          //!< BTB target array instead of NLS
    TargetGeometry,     //!< targetEntries zero or not a power of two
    NoRas,              //!< rasEntries == 0
    BlockWidth,         //!< blockWidth not a power of two
    SelectGeometry,     //!< numPhts > 1 or non-pow2 numSelectTables
                        //!< on a select-table kind
    DoubleSelect,       //!< doubleSelect on a kind that forbids it
    BitGeometry,        //!< finite bitEntries not a power of two
};

/** One past the last SoaFallback value (for reason histograms). */
constexpr unsigned numSoaFallbackReasons = 9;

/** Stable metric-name suffix for @p reason ("finite_icache", ...). */
const char *soaFallbackName(SoaFallback reason);

/** Why (or that) @p cfg takes the path it does under @p kind. */
SoaFallback laneSoaFallback(BatchEngineKind kind,
                            const FetchEngineConfig &cfg);

/** Can @p cfg take the columnar path under @p kind? */
bool laneSoaEligible(BatchEngineKind kind,
                     const FetchEngineConfig &cfg);

/** Per-ISA kernel entry points (instantiated from
 *  lane_soa_impl.hh by the scalar/avx2/avx512 TUs). */
struct LaneSoaKernels
{
    void (*runSingle)(SoaTile &tile, const DecodedTrace &dec);
    void (*runDual)(SoaTile &tile, const DecodedTrace &dec);
    void (*runMulti)(SoaTile &tile, const DecodedTrace &dec);
    void (*runTwoAhead)(SoaTile &tile, const DecodedTrace &dec);
};

/** Kernel table for @p level, falling back to the widest available
 *  narrower build (Scalar is always present). */
const LaneSoaKernels &laneSoaKernelsFor(simd::Level level);

} // namespace mbbp

#endif // MBBP_SWEEP_LANE_SOA_HH

#include "sweep/sweep_spec.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/json.hh"
#include "workload/spec95.hh"

namespace mbbp
{

namespace
{

// ---------------------------------------------------------------
// Field registry: every SimConfig knob a sweep can set, with a
// textual setter so JSON scalars, CLI flags, and bench code all go
// through the same validation.
// ---------------------------------------------------------------

uint64_t
parseUnsigned(const std::string &field, const std::string &value,
              uint64_t min_value, uint64_t max_value)
{
    const char *begin = value.c_str();
    char *end = nullptr;
    uint64_t v = std::strtoull(begin, &end, 10);
    if (end == begin || *end != '\0' ||
        value.find('-') != std::string::npos)
        throw SweepError("field \"" + field +
                         "\" expects a non-negative integer, got \"" +
                         value + "\"");
    if (v < min_value || v > max_value)
        throw SweepError("field \"" + field + "\" must be in [" +
                         std::to_string(min_value) + ", " +
                         std::to_string(max_value) + "], got " +
                         value);
    return v;
}

bool
parseBool(const std::string &field, const std::string &value)
{
    if (value == "true" || value == "1")
        return true;
    if (value == "false" || value == "0")
        return false;
    throw SweepError("field \"" + field +
                     "\" expects true or false, got \"" + value +
                     "\"");
}

struct Field
{
    const char *name;
    void (*apply)(SimConfig &, const std::string &);
};

// Rebuilders for the i-cache geometry: blockWidth and cacheType each
// preserve the other, so assignment order does not matter.
void
rebuildICache(SimConfig &cfg, CacheType type, unsigned width)
{
    switch (type) {
      case CacheType::Normal:
        cfg.engine.icache = ICacheConfig::normal(width);
        break;
      case CacheType::Extended:
        cfg.engine.icache = ICacheConfig::extended(width);
        break;
      case CacheType::SelfAligned:
        cfg.engine.icache = ICacheConfig::selfAligned(width);
        break;
    }
}

const Field kFields[] = {
    { "numBlocks",
      [](SimConfig &c, const std::string &v) {
          c.numBlocks = static_cast<unsigned>(
              parseUnsigned("numBlocks", v, 1, 4));
      } },
    { "historyBits",
      [](SimConfig &c, const std::string &v) {
          c.engine.historyBits = static_cast<unsigned>(
              parseUnsigned("historyBits", v, 1, 30));
      } },
    { "numPhts",
      [](SimConfig &c, const std::string &v) {
          c.engine.numPhts = static_cast<unsigned>(
              parseUnsigned("numPhts", v, 1, 1u << 16));
      } },
    { "numSelectTables",
      [](SimConfig &c, const std::string &v) {
          c.engine.numSelectTables = static_cast<unsigned>(
              parseUnsigned("numSelectTables", v, 1, 1u << 16));
      } },
    { "doubleSelect",
      [](SimConfig &c, const std::string &v) {
          c.engine.doubleSelect = parseBool("doubleSelect", v);
      } },
    { "nearBlock",
      [](SimConfig &c, const std::string &v) {
          c.engine.nearBlock = parseBool("nearBlock", v);
      } },
    { "nearBlockStoredOffset",
      [](SimConfig &c, const std::string &v) {
          c.engine.nearBlockStoredOffset =
              parseBool("nearBlockStoredOffset", v);
      } },
    { "delayedPhtUpdate",
      [](SimConfig &c, const std::string &v) {
          c.engine.delayedPhtUpdate =
              parseBool("delayedPhtUpdate", v);
      } },
    { "targetKind",
      [](SimConfig &c, const std::string &v) {
          if (v == "nls")
              c.engine.targetKind = TargetKind::Nls;
          else if (v == "btb")
              c.engine.targetKind = TargetKind::Btb;
          else
              throw SweepError("field \"targetKind\" expects \"nls\" "
                               "or \"btb\", got \"" + v + "\"");
      } },
    { "targetEntries",
      [](SimConfig &c, const std::string &v) {
          c.engine.targetEntries = parseUnsigned(
              "targetEntries", v, 1, uint64_t{1} << 24);
      } },
    { "btbAssoc",
      [](SimConfig &c, const std::string &v) {
          c.engine.btbAssoc = static_cast<unsigned>(
              parseUnsigned("btbAssoc", v, 1, 64));
      } },
    { "rasEntries",
      [](SimConfig &c, const std::string &v) {
          c.engine.rasEntries = parseUnsigned(
              "rasEntries", v, 0, uint64_t{1} << 20);
      } },
    { "bitEntries",
      [](SimConfig &c, const std::string &v) {
          c.engine.bitEntries = parseUnsigned(
              "bitEntries", v, 0, uint64_t{1} << 24);
      } },
    { "bbrCapacity",
      [](SimConfig &c, const std::string &v) {
          c.engine.bbrCapacity = parseUnsigned(
              "bbrCapacity", v, 1, 1u << 12);
      } },
    { "blockWidth",
      [](SimConfig &c, const std::string &v) {
          unsigned width = static_cast<unsigned>(
              parseUnsigned("blockWidth", v, 1, 64));
          rebuildICache(c, c.engine.icache.type, width);
      } },
    { "cacheType",
      [](SimConfig &c, const std::string &v) {
          unsigned width = c.engine.icache.blockWidth;
          if (v == "normal")
              rebuildICache(c, CacheType::Normal, width);
          else if (v == "extend" || v == "extended")
              rebuildICache(c, CacheType::Extended, width);
          else if (v == "align" || v == "selfAligned")
              rebuildICache(c, CacheType::SelfAligned, width);
          else
              throw SweepError(
                  "field \"cacheType\" expects \"normal\", "
                  "\"extend\" or \"align\", got \"" + v + "\"");
      } },
    { "icacheLines",
      [](SimConfig &c, const std::string &v) {
          c.engine.icacheLines = parseUnsigned(
              "icacheLines", v, 0, uint64_t{1} << 24);
      } },
    { "icacheAssoc",
      [](SimConfig &c, const std::string &v) {
          c.engine.icacheAssoc = static_cast<unsigned>(
              parseUnsigned("icacheAssoc", v, 1, 64));
      } },
    { "icacheMissPenalty",
      [](SimConfig &c, const std::string &v) {
          c.engine.icacheMissPenalty = static_cast<unsigned>(
              parseUnsigned("icacheMissPenalty", v, 0, 1u << 12));
      } },
};

} // namespace

void
applyConfigField(SimConfig &cfg, const std::string &field,
                 const std::string &value)
{
    for (const Field &f : kFields) {
        if (field == f.name) {
            f.apply(cfg, value);
            return;
        }
    }
    std::string known;
    for (const std::string &name : sweepFieldNames())
        known += (known.empty() ? "" : ", ") + name;
    throw SweepError("unknown config field \"" + field +
                     "\" (known fields: " + known + ")");
}

const std::vector<std::string> &
sweepFieldNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const Field &f : kFields)
            v.push_back(f.name);
        std::sort(v.begin(), v.end());
        return v;
    }();
    return names;
}

// ---------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------

void
SweepSpec::setBenchmarks(std::vector<std::string> names)
{
    const auto &all = specAllNames();
    for (const std::string &name : names)
        if (std::find(all.begin(), all.end(), name) == all.end())
            throw UnknownBenchmarkError(name);
    benchmarks_ = std::move(names);
}

void
SweepSpec::setBase(const std::string &field, const std::string &value)
{
    base_.emplace_back(field, value);
}

void
SweepSpec::addAxis(const std::string &field,
                   std::vector<std::string> values)
{
    for (const Axis &axis : axes_)
        if (axis.field == field)
            throw SweepError("grid axis \"" + field +
                             "\" appears twice");
    axes_.push_back({ field, std::move(values) });
}

void
SweepSpec::addPoint(std::vector<SweepParam> assignments)
{
    points_.push_back(std::move(assignments));
}

std::size_t
SweepSpec::jobCount() const
{
    std::size_t grid = axes_.empty() && !points_.empty() ? 0 : 1;
    for (const Axis &axis : axes_)
        grid *= axis.values.size();
    return grid + points_.size();
}

std::vector<SweepJob>
SweepSpec::expand() const
{
    for (const Axis &axis : axes_)
        if (axis.values.empty())
            throw SweepError("grid axis \"" + axis.field +
                             "\" has no values");

    std::vector<SweepJob> jobs;
    jobs.reserve(jobCount());

    auto makeJob = [&](const std::vector<SweepParam> &assignments) {
        SweepJob job;
        job.index = jobs.size();
        for (const SweepParam &p : base_)
            applyConfigField(job.config, p.first, p.second);
        for (const SweepParam &p : assignments)
            applyConfigField(job.config, p.first, p.second);
        job.params = assignments;
        jobs.push_back(std::move(job));
    };

    // Grid: declaration order, last axis fastest (row-major), so the
    // job list reads like the nested loops it replaces.
    if (!axes_.empty() || points_.empty()) {
        std::vector<std::size_t> idx(axes_.size(), 0);
        for (;;) {
            std::vector<SweepParam> assignments;
            assignments.reserve(axes_.size());
            for (std::size_t a = 0; a < axes_.size(); ++a)
                assignments.emplace_back(axes_[a].field,
                                         axes_[a].values[idx[a]]);
            makeJob(assignments);
            // Advance the odometer; full wrap = done.
            std::size_t a = axes_.size();
            while (a > 0 &&
                   ++idx[a - 1] == axes_[a - 1].values.size()) {
                idx[a - 1] = 0;
                --a;
            }
            if (a == 0)
                break;
        }
    }

    for (const auto &point : points_)
        makeJob(point);

    return jobs;
}

std::string
SweepSpec::canonicalKey() const
{
    // \x1e separates sections, \x1f separates items within one,
    // \x1d separates points. Field values are scalar lexemes (no
    // control characters), so the encoding is unambiguous.
    std::string key;
    key += "name=";
    key += name_;
    key += "\x1e""benchmarks=";
    for (const std::string &b : benchmarks_) {
        key += b;
        key += '\x1f';
    }
    key += "\x1e""instructions=";
    key += std::to_string(instructions_);
    key += "\x1e""base=";
    for (const SweepParam &p : base_) {
        key += p.first;
        key += '=';
        key += p.second;
        key += '\x1f';
    }
    key += "\x1e""grid=";
    for (const Axis &axis : axes_) {
        key += axis.field;
        key += '=';
        for (const std::string &v : axis.values) {
            key += v;
            key += ',';
        }
        key += '\x1f';
    }
    key += "\x1e""points=";
    for (const auto &point : points_) {
        for (const SweepParam &p : point) {
            key += p.first;
            key += '=';
            key += p.second;
            key += '\x1f';
        }
        key += '\x1d';
    }
    return key;
}

// ---------------------------------------------------------------
// JSON front end
// ---------------------------------------------------------------

namespace
{

std::string
scalarOrThrow(const JsonValue &v, const std::string &where)
{
    if (v.isArray() || v.isObject())
        throw SweepError(where + " must be a scalar, got " +
                         JsonValue::kindName(v.kind()));
    return v.scalarText();
}

} // namespace

SweepSpec
SweepSpec::fromJson(const std::string &text)
{
    JsonValue doc;
    try {
        doc = JsonValue::parse(text);
    } catch (const JsonParseError &e) {
        throw SweepError(e.what());
    }
    if (!doc.isObject())
        throw SweepError("sweep spec must be a JSON object");

    SweepSpec spec;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const std::string &key = doc.keyAt(i);
        const JsonValue &v = doc.memberAt(i);
        if (key == "name") {
            if (!v.isString())
                throw SweepError("\"name\" must be a string");
            spec.setName(v.asString());
        } else if (key == "benchmarks") {
            if (!v.isArray())
                throw SweepError(
                    "\"benchmarks\" must be an array of names");
            std::vector<std::string> names;
            for (const JsonValue &b : v.items()) {
                if (!b.isString())
                    throw SweepError(
                        "\"benchmarks\" entries must be strings");
                names.push_back(b.asString());
            }
            spec.setBenchmarks(std::move(names));
        } else if (key == "instructions") {
            if (!v.isNumber() || v.asNumber() < 1 ||
                v.asNumber() != static_cast<double>(
                                    static_cast<uint64_t>(
                                        v.asNumber())))
                throw SweepError(
                    "\"instructions\" must be a positive integer");
            spec.setInstructions(
                static_cast<std::size_t>(v.asNumber()));
        } else if (key == "base") {
            if (!v.isObject())
                throw SweepError("\"base\" must be an object of "
                                 "field assignments");
            for (std::size_t m = 0; m < v.size(); ++m)
                spec.setBase(v.keyAt(m),
                             scalarOrThrow(v.memberAt(m),
                                           "base." + v.keyAt(m)));
        } else if (key == "grid") {
            if (!v.isObject())
                throw SweepError("\"grid\" must be an object mapping "
                                 "fields to value arrays");
            for (std::size_t m = 0; m < v.size(); ++m) {
                const JsonValue &vals = v.memberAt(m);
                if (!vals.isArray())
                    throw SweepError("grid axis \"" + v.keyAt(m) +
                                     "\" must be an array of values");
                std::vector<std::string> values;
                for (const JsonValue &e : vals.items())
                    values.push_back(scalarOrThrow(
                        e, "grid." + v.keyAt(m) + " entry"));
                spec.addAxis(v.keyAt(m), std::move(values));
            }
        } else if (key == "points") {
            if (!v.isArray())
                throw SweepError(
                    "\"points\" must be an array of objects");
            for (const JsonValue &pt : v.items()) {
                if (!pt.isObject())
                    throw SweepError(
                        "\"points\" entries must be objects");
                std::vector<SweepParam> assignments;
                for (std::size_t m = 0; m < pt.size(); ++m)
                    assignments.emplace_back(
                        pt.keyAt(m),
                        scalarOrThrow(pt.memberAt(m),
                                      "point field " + pt.keyAt(m)));
                spec.addPoint(std::move(assignments));
            }
        } else {
            throw SweepError(
                "unknown sweep spec key \"" + key +
                "\" (expected name, benchmarks, instructions, base, "
                "grid, points)");
        }
    }

    // Surface bad fields/values now, with the full spec context,
    // rather than from inside a worker thread mid-sweep.
    spec.expand();
    return spec;
}

SweepSpec
SweepSpec::fromJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SweepError("cannot open sweep spec file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        return fromJson(buffer.str());
    } catch (const UnknownBenchmarkError &) {
        throw;      // already self-describing; keep the subtype
    } catch (const SweepError &e) {
        throw SweepError(path + ": " + e.what());
    }
}

} // namespace mbbp

// Portable instantiation of the SoA replay kernels -- the single
// source of truth for semantics (see lane_soa_impl.hh).

#define MBBP_SOA_NS soa_scalar
#define MBBP_SOA_LEVEL 0
#include "sweep/lane_soa_impl.hh"

#include "sweep/batch_replay.hh"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <tuple>

#include "fetch/batch_engine_state.hh"
#include "obs/obs.hh"
#include "predict/btb.hh"
#include "predict/nls.hh"
#include "sweep/lane_soa.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace mbbp
{

namespace
{

// The occupancy-only BBR model (BbrOccupancy) moved to lane_soa.hh,
// shared with the structure-of-arrays kernels.

/**
 * One configuration's complete predictor state. Heap-allocated (the
 * trainer holds a reference into the lane, and AttributionSink is
 * non-copyable), constructed once per tile.
 *
 * `events` mirrors mispredictEvents(stats) incrementally: every
 * non-BankConflict charge goes through laneCharge, so the reference
 * engines' `mispredictEvents(stats) != ev0` request-level check
 * becomes a plain counter compare.
 */
struct BatchLane
{
    const FetchEngineConfig cfg;
    FetchStats stats;
    BlockedPHT pht;
    GlobalHistory ghr;
    BitTable bit;
    ReturnAddressStack ras;
    PenaltyModel penalties;
    std::optional<SelectTable> st;
    std::unique_ptr<TargetArray> ta;
    std::optional<BbrOccupancy> bbr;
    ICacheContents contents;
    PhtTrainer trainer;
    BitVector stale;        //!< scratch for finite-BIT codes
    obs::AttributionSink attr;
    FetchBandwidth bw;
    uint64_t events = 0;

    BatchLane(BatchEngineKind kind, const FetchEngineConfig &c,
              unsigned num_blocks, unsigned line_size)
        : cfg(c),
          pht({ c.historyBits, c.icache.blockWidth, 2, c.numPhts }),
          ghr(c.historyBits),
          bit(c.bitEntries, line_size),
          ras(c.rasEntries),
          penalties(kind == BatchEngineKind::Dual ? c.doubleSelect
                                                  : false),
          contents(c.icacheLines, c.icacheAssoc),
          trainer(pht, c.delayedPhtUpdate),
          bw(kind == BatchEngineKind::Single   ? "engine.single"
             : kind == BatchEngineKind::Dual   ? "engine.dual"
                                               : "engine.multi")
    {
        switch (kind) {
          case BatchEngineKind::Single:
            mbbp_assert(!cfg.doubleSelect,
                        "double selection needs the dual-block engine");
            break;
          case BatchEngineKind::Dual:
            st.emplace(cfg.historyBits, cfg.numSelectTables,
                       cfg.doubleSelect);
            break;
          case BatchEngineKind::Multi:
            mbbp_assert(num_blocks >= 1 && num_blocks <= 4,
                        "1..4 blocks per cycle supported");
            mbbp_assert(!cfg.doubleSelect,
                        "the multi-block engine models single "
                        "selection");
            st.emplace(SelectTable::withSlots(
                cfg.historyBits, cfg.numSelectTables,
                num_blocks > 1 ? num_blocks - 1 : 1));
            break;
          case BatchEngineKind::TwoAhead:
            mbbp_assert(false, "two-ahead lanes use TwoAheadLane");
            break;
        }

        if (cfg.targetKind == TargetKind::Nls) {
            if (kind == BatchEngineKind::Multi) {
                ta = std::make_unique<NlsTargetArray>(
                    NlsTargetArray::withArrays(cfg.targetEntries,
                                               line_size, num_blocks));
            } else {
                ta = std::make_unique<NlsTargetArray>(
                    cfg.targetEntries, line_size,
                    kind == BatchEngineKind::Dual);
            }
        } else {
            ta = std::make_unique<Btb>(cfg.targetEntries,
                                       cfg.btbAssoc, line_size);
        }

        if (kind == BatchEngineKind::Single ||
            kind == BatchEngineKind::Dual)
            bbr.emplace(4);
    }
};

/** The one charge path: aggregate stats + attribution + the
 *  incremental mispredict-event counter. */
inline void
laneCharge(FetchStats &stats, obs::AttributionSink &attr,
           uint64_t &events, Addr block_pc, unsigned slot,
           PenaltyKind kind, unsigned cycles)
{
    chargeMispredict(stats, attr, block_pc, slot, kind, cycles);
    ++events;
}

/** allocBbrForBlock, reduced to its observable effect: occupancy. */
inline void
batchAllocBbr(BatchLane &ln, const BatchBlockCtx &ctx)
{
    ln.bbr->addBlock(ctx.conds.size());
}

/** PhtTrainer::train without re-scanning the block when immediate. */
inline void
batchTrain(BatchLane &ln, std::size_t idx, const BatchBlockCtx &ctx)
{
    if (ln.cfg.delayedPhtUpdate)
        ln.trainer.train(idx, ctx.blk);
    else
        batchTrainPht(ln.pht, idx, ctx);
}

/** Stale-BIT verification of a finite-BIT lane's prediction. */
inline void
laneStaleBitCheck(BatchLane &ln, const BatchBlockCtx &ctx,
                  const StaticImage &image, const BatchPrediction &bp,
                  std::size_t idx, unsigned line_size)
{
    bitWindowCodesInto(ln.bit, image, ctx.blk.startPc, ctx.capacity,
                       line_size, ln.cfg.nearBlock, ln.stale);
    ExitPrediction pred_stale = predictExit(
        ln.stale, ctx.blk.startPc, ctx.capacity, ln.pht, idx);
    if (pred_stale.selector(line_size) !=
        bp.pred.selector(line_size)) {
        laneCharge(ln.stats, ln.attr, ln.events, ctx.blk.startPc, 0,
                   PenaltyKind::BitMispredict,
                   ln.penalties.cycles(PenaltyKind::BitMispredict,
                                       0));
    }
    refreshBitEntries(ln.bit, image, ctx.blk.startPc, ctx.capacity,
                      line_size, ln.cfg.nearBlock);
}

void
runSingleTile(const DecodedTrace &dec,
              std::vector<std::unique_ptr<BatchLane>> &lanes)
{
    const unsigned line_size = lanes[0]->cfg.icache.lineSize;
    const StaticImage &image = dec.image();
    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return;     // the reference returns before any flush

    BatchBlockCtx ctx;
    for (std::size_t b = 0; b < nblocks; ++b) {
        ctx.build(dec, b, line_size);
        if (b + 1 < nblocks) {
            mbbp_assert(dec.startPc(b + 1) == ctx.blk.nextPc,
                        "block index out of sync");
        }

        for (auto &lp : lanes) {
            BatchLane &ln = *lp;
            ++ln.stats.fetchRequests;
            const uint64_t ev0 = ln.events;
            const uint64_t insts0 = ln.stats.instructions;
            ln.trainer.tick();
            batchCountBlockStats(ln.stats, ctx);
            batchTouchICache(ln.contents, ctx, ln.stats,
                             ln.cfg.icacheMissPenalty);

            std::size_t idx = ln.pht.index(ln.ghr, ctx.blk.startPc);
            BatchPrediction bp =
                batchPredictExit(ctx, ln.cfg.nearBlock, ln.pht, idx);
            if (!ln.bit.perfect())
                laneStaleBitCheck(ln, ctx, image, bp, idx, line_size);

            ResolvedTarget resolved = batchResolveAddress(
                bp, ctx, ln.ras, *ln.ta, ctx.blk.startPc, 0,
                line_size);
            PredictOutcome out =
                batchCompareWithActual(bp.pred, resolved, ctx);
            if (!out.correct) {
                unsigned cycles = ln.penalties.cycles(out.kind, 0);
                if (out.refetchExtra)
                    cycles += ln.penalties.refetchExtra();
                laneCharge(ln.stats, ln.attr, ln.events,
                           ctx.blk.startPc, 0, out.kind, cycles);
                if (out.kind == PenaltyKind::CondMispredict)
                    ++ln.stats.condDirectionWrong;
            }

            batchAllocBbr(ln, ctx);
            ln.bbr->expire();

            batchTrain(ln, idx, ctx);
            ln.ghr.shiftInBlock(ctx.condMask, ctx.numConds);
            batchUpdateTargetArray(*ln.ta, ctx.blk.startPc, 0, ctx,
                                   line_size, ln.cfg.nearBlock);
            batchApplyRasOp(ln.ras, ctx);

            ln.bw.endRequest(ln.stats.instructions - insts0, 1,
                             ln.events != ev0);
        }
    }

    for (auto &lp : lanes) {
        BatchLane &ln = *lp;
        ln.stats.rasOverflows = ln.ras.overflows();
        ln.stats.bbrPeak = ln.bbr->peakInFlight();
        ln.pht.obsFlush();
        ln.bit.obsFlush();
        ln.ras.obsFlush();
        ln.attr.flush();
        ln.bw.flush();
        obs::flushCounter("engine.single.runs", 1);
    }
}

void
runDualTile(const DecodedTrace &dec,
            std::vector<std::unique_ptr<BatchLane>> &lanes)
{
    const unsigned line_size = lanes[0]->cfg.icache.lineSize;
    const unsigned num_banks = lanes[0]->cfg.icache.numBanks;
    const StaticImage &image = dec.image();
    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return;

    // ctxB: second block of the currently-fetching pair -- the one
    // whose information predicts the next pair (Figure 3's b0 primes
    // the pipeline alone).
    BatchBlockCtx ctxB, ctxC, ctxD;
    std::size_t bi = 0;
    ctxB.build(dec, bi, line_size);
    for (auto &lp : lanes) {
        BatchLane &ln = *lp;
        ++ln.stats.fetchRequests;
        batchCountBlockStats(ln.stats, ctxB);
        batchTouchICache(ln.contents, ctxB, ln.stats,
                         ln.cfg.icacheMissPenalty);
        ln.bw.endRequest(ln.stats.instructions, 1, false);
    }

    for (;;) {
        const std::size_t ci = bi + 1;
        if (ci >= nblocks)
            break;
        ctxC.build(dec, ci, line_size);
        mbbp_assert(ctxC.blk.startPc == ctxB.blk.nextPc,
                    "block index out of sync");
        const std::size_t di = ci + 1;
        const bool have_d = di < nblocks;
        bool conflict_cd = false;
        uint8_t d_offset = 0;
        if (have_d) {
            ctxD.build(dec, di, line_size);
            mbbp_assert(ctxD.blk.startPc == ctxC.blk.nextPc,
                        "block index out of sync");
            conflict_cd = batchBankConflict(ctxC, ctxD, num_banks);
            d_offset = static_cast<uint8_t>(ctxD.blk.startPc %
                                            line_size);
        }

        for (auto &lp : lanes) {
            BatchLane &ln = *lp;
            ++ln.stats.fetchRequests;
            const uint64_t ev0 = ln.events;
            const uint64_t insts0 = ln.stats.instructions;
            ln.trainer.tick();
            batchCountBlockStats(ln.stats, ctxC);
            batchTouchICache(ln.contents, ctxC, ln.stats,
                             ln.cfg.icacheMissPenalty);
            if (have_d) {
                batchCountBlockStats(ln.stats, ctxD);
                batchTouchICache(ln.contents, ctxD, ln.stats,
                                 ln.cfg.icacheMissPenalty);
                if (conflict_cd) {
                    ln.stats.charge(PenaltyKind::BankConflict,
                                    ln.penalties.cycles(
                                        PenaltyKind::BankConflict,
                                        1));
                }
            }

            // ===== Block 1: B's exit prediction (C's address). =====
            std::size_t idx1 = ln.pht.index(ln.ghr, ctxB.blk.startPc);
            BatchPrediction bp_b =
                batchPredictExit(ctxB, ln.cfg.nearBlock, ln.pht,
                                 idx1);
            bool blk1_penalized = false;

            if (ln.cfg.doubleSelect) {
                unsigned tab_b = ln.st->tableOf(ctxB.blk.startPc);
                const SelectEntry &e0 = ln.st->read(tab_b, idx1, 0);
                Selector sel_true_b = bp_b.pred.selector(line_size);
                if (e0.sel != sel_true_b) {
                    laneCharge(ln.stats, ln.attr, ln.events,
                               ctxB.blk.startPc, 0,
                               PenaltyKind::Misselect,
                               ln.penalties.cycles(
                                   PenaltyKind::Misselect, 0));
                    blk1_penalized = true;
                } else if (e0.ghr != bp_b.pred.ghrInfo()) {
                    laneCharge(ln.stats, ln.attr, ln.events,
                               ctxB.blk.startPc, 0,
                               PenaltyKind::GhrMispredict,
                               ln.penalties.cycles(
                                   PenaltyKind::GhrMispredict, 0));
                    blk1_penalized = true;
                }
                ln.st->write(tab_b, idx1, 0,
                             { sel_true_b, bp_b.pred.ghrInfo(),
                               static_cast<uint8_t>(
                                   ctxC.blk.startPc % line_size),
                               true });
            } else if (!ln.bit.perfect()) {
                laneStaleBitCheck(ln, ctxB, image, bp_b, idx1,
                                  line_size);
            }

            ResolvedTarget r1 = batchResolveAddress(
                bp_b, ctxB, ln.ras, *ln.ta, ctxB.blk.startPc, 0,
                line_size);
            PredictOutcome out1 =
                batchCompareWithActual(bp_b.pred, r1, ctxB);
            if (!out1.correct) {
                unsigned cycles = ln.penalties.cycles(out1.kind, 0);
                if (out1.refetchExtra)
                    cycles += ln.penalties.refetchExtra();
                laneCharge(ln.stats, ln.attr, ln.events,
                           ctxB.blk.startPc, 0, out1.kind, cycles);
                if (out1.kind == PenaltyKind::CondMispredict)
                    ++ln.stats.condDirectionWrong;
                blk1_penalized = true;
            }

            batchAllocBbr(ln, ctxB);

            batchTrain(ln, idx1, ctxB);
            ln.ghr.shiftInBlock(ctxB.condMask, ctxB.numConds);
            batchApplyRasOp(ln.ras, ctxB);

            if (!have_d) {
                // C is the last complete block; its exit cannot be
                // scored.
                batchUpdateTargetArray(*ln.ta, ctxB.blk.startPc, 0,
                                       ctxB, line_size,
                                       ln.cfg.nearBlock);
                ln.bw.endRequest(ln.stats.instructions - insts0, 1,
                                 ln.events != ev0);
                continue;
            }

            // ===== Block 2: C's exit via the select table. =====
            std::size_t idx2 = ln.pht.index(ln.ghr, ctxC.blk.startPc);
            BatchPrediction bp_c =
                batchPredictExit(ctxC, ln.cfg.nearBlock, ln.pht,
                                 idx2);
            Selector sel_true = bp_c.pred.selector(line_size);
            GhrInfo ghr_true = bp_c.pred.ghrInfo();

            unsigned tab = ln.st->tableOf(ctxC.blk.startPc);
            unsigned slot = ln.cfg.doubleSelect ? 1 : 0;
            const SelectEntry &e = ln.st->read(tab, idx1, slot);

            if (!blk1_penalized) {
                if (e.sel != sel_true) {
                    laneCharge(ln.stats, ln.attr, ln.events,
                               ctxC.blk.startPc, 1,
                               PenaltyKind::Misselect,
                               ln.penalties.cycles(
                                   PenaltyKind::Misselect, 1));
                } else if (e.ghr != ghr_true) {
                    laneCharge(ln.stats, ln.attr, ln.events,
                               ctxC.blk.startPc, 1,
                               PenaltyKind::GhrMispredict,
                               ln.penalties.cycles(
                                   PenaltyKind::GhrMispredict, 1));
                } else if (ln.cfg.nearBlockStoredOffset &&
                           sel_true.src != SelSrc::Target &&
                           sel_true.src != SelSrc::FallThrough &&
                           sel_true.src != SelSrc::Ras &&
                           e.startOffset != d_offset) {
                    laneCharge(ln.stats, ln.attr, ln.events,
                               ctxC.blk.startPc, 1,
                               PenaltyKind::Misselect,
                               ln.penalties.cycles(
                                   PenaltyKind::Misselect, 1));
                }
                ResolvedTarget r2 = batchResolveAddress(
                    bp_c, ctxC, ln.ras, *ln.ta, ctxB.blk.startPc, 1,
                    line_size);
                PredictOutcome out2 =
                    batchCompareWithActual(bp_c.pred, r2, ctxC);
                if (!out2.correct) {
                    unsigned cycles =
                        ln.penalties.cycles(out2.kind, 1);
                    if (out2.refetchExtra)
                        cycles += ln.penalties.refetchExtra();
                    laneCharge(ln.stats, ln.attr, ln.events,
                               ctxC.blk.startPc, 1, out2.kind,
                               cycles);
                    if (out2.kind == PenaltyKind::CondMispredict)
                        ++ln.stats.condDirectionWrong;
                }
            }
            ln.st->write(tab, idx1, slot,
                         { sel_true, ghr_true, d_offset, true });

            batchUpdateTargetArray(*ln.ta, ctxB.blk.startPc, 0, ctxB,
                                   line_size, ln.cfg.nearBlock);
            batchUpdateTargetArray(*ln.ta, ctxB.blk.startPc, 1, ctxC,
                                   line_size, ln.cfg.nearBlock);

            batchAllocBbr(ln, ctxC);
            ln.bbr->expire();

            batchTrain(ln, idx2, ctxC);
            ln.ghr.shiftInBlock(ctxC.condMask, ctxC.numConds);
            batchApplyRasOp(ln.ras, ctxC);

            ln.bw.endRequest(ln.stats.instructions - insts0, 2,
                             ln.events != ev0);
        }

        if (!have_d)
            break;
        bi = di;
        std::swap(ctxB, ctxD);
    }

    for (auto &lp : lanes) {
        BatchLane &ln = *lp;
        ln.stats.rasOverflows = ln.ras.overflows();
        ln.stats.bbrPeak = ln.bbr->peakInFlight();
        ln.pht.obsFlush();
        ln.bit.obsFlush();
        ln.ras.obsFlush();
        ln.st->obsFlush();
        ln.attr.flush();
        ln.bw.flush();
        obs::flushCounter("engine.dual.runs", 1);
    }
}

void
runMultiTile(const DecodedTrace &dec,
             std::vector<std::unique_ptr<BatchLane>> &lanes,
             unsigned n)
{
    const unsigned line_size = lanes[0]->cfg.icache.lineSize;
    const unsigned num_banks = lanes[0]->cfg.icache.numBanks;
    const StaticImage &image = dec.image();
    const std::size_t nblocks = dec.numBlocks();
    if (nblocks == 0)
        return;

    // ctxs[0]: last block of the currently fetching group; ctxs[1..]
    // the next group's blocks.
    std::vector<BatchBlockCtx> ctxs(n + 1);
    std::array<bool, 4> conflict{};
    std::size_t bi = 0;
    ctxs[0].build(dec, bi, line_size);
    for (auto &lp : lanes) {
        BatchLane &ln = *lp;
        ++ln.stats.fetchRequests;
        batchCountBlockStats(ln.stats, ctxs[0]);
        batchTouchICache(ln.contents, ctxs[0], ln.stats,
                         ln.cfg.icacheMissPenalty);
        ln.bw.endRequest(ln.stats.instructions, 1, false);
    }

    for (;;) {
        const std::size_t g_first = bi + 1;
        const std::size_t g_count =
            g_first < nblocks
                ? std::min<std::size_t>(n, nblocks - g_first) : 0;
        if (g_count == 0)
            break;
        mbbp_assert(dec.startPc(g_first) == ctxs[0].blk.nextPc,
                    "block index out of sync");
        for (std::size_t j = 0; j < g_count; ++j)
            ctxs[j + 1].build(dec, g_first + j, line_size);
        for (std::size_t j = 1; j < g_count; ++j) {
            bool c = false;
            for (std::size_t i = 0; i < j && !c; ++i)
                c = batchBankConflict(ctxs[i + 1], ctxs[j + 1],
                                      num_banks);
            conflict[j] = c;
        }

        for (auto &lp : lanes) {
            BatchLane &ln = *lp;
            ++ln.stats.fetchRequests;
            const uint64_t ev0 = ln.events;
            const uint64_t insts0 = ln.stats.instructions;
            ln.trainer.tick();
            for (std::size_t j = 0; j < g_count; ++j) {
                batchCountBlockStats(ln.stats, ctxs[j + 1]);
                batchTouchICache(ln.contents, ctxs[j + 1], ln.stats,
                                 ln.cfg.icacheMissPenalty);
            }
            for (std::size_t j = 1; j < g_count; ++j) {
                if (conflict[j]) {
                    ln.stats.charge(PenaltyKind::BankConflict,
                                    ln.penalties.cycles(
                                        PenaltyKind::BankConflict,
                                        static_cast<unsigned>(j)));
                }
            }

            // Slot 0: B's own exit via BIT+PHT.
            std::size_t idx1 =
                ln.pht.index(ln.ghr, ctxs[0].blk.startPc);
            bool squashed = false;
            {
                BatchPrediction bp = batchPredictExit(
                    ctxs[0], ln.cfg.nearBlock, ln.pht, idx1);
                if (!ln.bit.perfect())
                    laneStaleBitCheck(ln, ctxs[0], image, bp, idx1,
                                      line_size);
                ResolvedTarget r = batchResolveAddress(
                    bp, ctxs[0], ln.ras, *ln.ta,
                    ctxs[0].blk.startPc, 0, line_size);
                PredictOutcome out =
                    batchCompareWithActual(bp.pred, r, ctxs[0]);
                if (!out.correct) {
                    unsigned cycles = ln.penalties.cycles(out.kind,
                                                          0);
                    if (out.refetchExtra)
                        cycles += ln.penalties.refetchExtra();
                    laneCharge(ln.stats, ln.attr, ln.events,
                               ctxs[0].blk.startPc, 0, out.kind,
                               cycles);
                    if (out.kind == PenaltyKind::CondMispredict)
                        ++ln.stats.condDirectionWrong;
                    squashed = true;
                }
                batchTrain(ln, idx1, ctxs[0]);
                ln.ghr.shiftInBlock(ctxs[0].condMask,
                                    ctxs[0].numConds);
                batchApplyRasOp(ln.ras, ctxs[0]);
                batchUpdateTargetArray(*ln.ta, ctxs[0].blk.startPc,
                                       0, ctxs[0], line_size,
                                       ln.cfg.nearBlock);
            }

            // Slots k = 1..: select-table predictions, all indexed
            // by idx1.
            for (std::size_t k = 1; k < g_count; ++k) {
                const BatchBlockCtx &prev = ctxs[k];
                std::size_t idxk =
                    ln.pht.index(ln.ghr, prev.blk.startPc);
                BatchPrediction bp = batchPredictExit(
                    prev, ln.cfg.nearBlock, ln.pht, idxk);
                Selector sel_true = bp.pred.selector(line_size);
                GhrInfo ghr_true = bp.pred.ghrInfo();
                unsigned tab = ln.st->tableOf(prev.blk.startPc);
                unsigned slot = static_cast<unsigned>(k - 1);
                const SelectEntry &e = ln.st->read(tab, idx1, slot);

                if (!squashed) {
                    if (e.sel != sel_true) {
                        laneCharge(
                            ln.stats, ln.attr, ln.events,
                            prev.blk.startPc,
                            static_cast<unsigned>(k),
                            PenaltyKind::Misselect,
                            ln.penalties.cycles(
                                PenaltyKind::Misselect,
                                static_cast<unsigned>(k)));
                    } else if (e.ghr != ghr_true) {
                        laneCharge(
                            ln.stats, ln.attr, ln.events,
                            prev.blk.startPc,
                            static_cast<unsigned>(k),
                            PenaltyKind::GhrMispredict,
                            ln.penalties.cycles(
                                PenaltyKind::GhrMispredict,
                                static_cast<unsigned>(k)));
                    }
                    ResolvedTarget r = batchResolveAddress(
                        bp, prev, ln.ras, *ln.ta,
                        ctxs[0].blk.startPc,
                        static_cast<unsigned>(k), line_size);
                    PredictOutcome out =
                        batchCompareWithActual(bp.pred, r, prev);
                    if (!out.correct) {
                        unsigned cycles = ln.penalties.cycles(
                            out.kind, static_cast<unsigned>(k));
                        if (out.refetchExtra)
                            cycles += ln.penalties.refetchExtra();
                        laneCharge(ln.stats, ln.attr, ln.events,
                                   prev.blk.startPc,
                                   static_cast<unsigned>(k),
                                   out.kind, cycles);
                        if (out.kind == PenaltyKind::CondMispredict)
                            ++ln.stats.condDirectionWrong;
                        squashed = true;
                    }
                }
                ln.st->write(tab, idx1, slot,
                             { sel_true, ghr_true,
                               static_cast<uint8_t>(
                                   prev.blk.nextPc % line_size),
                               true });
                batchUpdateTargetArray(*ln.ta, ctxs[0].blk.startPc,
                                       static_cast<unsigned>(k),
                                       prev, line_size,
                                       ln.cfg.nearBlock);

                batchTrain(ln, idxk, prev);
                ln.ghr.shiftInBlock(prev.condMask, prev.numConds);
                batchApplyRasOp(ln.ras, prev);
            }

            ln.bw.endRequest(ln.stats.instructions - insts0, g_count,
                             ln.events != ev0);
        }

        if (g_count < n)
            break;      // block index exhausted mid-group
        bi = g_first + g_count - 1;
        std::swap(ctxs[0], ctxs[g_count]);
    }

    for (auto &lp : lanes) {
        BatchLane &ln = *lp;
        ln.stats.rasOverflows = ln.ras.overflows();
        ln.pht.obsFlush();
        ln.bit.obsFlush();
        ln.ras.obsFlush();
        ln.st->obsFlush();
        ln.attr.flush();
        ln.bw.flush();
        obs::flushCounter("engine.multi.runs", 1);
    }
}

/** Two-block-ahead lane: the table + pending ring are the whole
 *  predictor state. */
struct TwoAheadLane
{
    struct Entry
    {
        Addr twoAhead = 0;
        bool valid = false;
    };
    struct Pending
    {
        std::size_t idx = 0;
        Addr predicted = 0;
        bool valid = false;
    };

    const FetchEngineConfig cfg;
    FetchStats stats;
    GlobalHistory ghr;
    PenaltyModel penalties;
    std::vector<Entry> table;
    Pending pending[2];
    std::size_t pcount = 0;
    std::size_t phead = 0;
    obs::AttributionSink attr;
    FetchBandwidth bw;
    bool req_open = false;
    uint64_t req_ev0 = 0, req_insts0 = 0, req_blocks = 0;
    uint64_t events = 0;

    explicit TwoAheadLane(const FetchEngineConfig &c)
        : cfg(c), ghr(c.historyBits), penalties(false),
          table(std::size_t{ 1 } << c.historyBits),
          bw("engine.two_ahead")
    {
        mbbp_assert(!cfg.doubleSelect,
                    "double selection is a select-table concept");
    }
};

void
runTwoAheadTile(const DecodedTrace &dec,
                std::vector<std::unique_ptr<TwoAheadLane>> &lanes)
{
    const unsigned line_size = lanes[0]->cfg.icache.lineSize;
    const unsigned num_banks = lanes[0]->cfg.icache.numBanks;
    const std::size_t nblocks = dec.numBlocks();

    BatchBlockCtx cur, prevCtx;
    for (std::size_t b = 0; b < nblocks; ++b) {
        cur.build(dec, b, line_size);
        // Second slot of a request: stash (= block b-1) vs this one.
        const bool conflict =
            (b >= 2 && b % 2 == 0)
                ? batchBankConflict(prevCtx, cur, num_banks) : false;

        for (auto &lp : lanes) {
            TwoAheadLane &ln = *lp;
            if (b == 0) {
                ++ln.stats.fetchRequests;
                ln.req_open = true;
                ln.req_ev0 = ln.events;
                ln.req_insts0 = ln.stats.instructions;
                ln.req_blocks = 0;
            } else if (b % 2 == 1) {
                ln.bw.endRequest(ln.stats.instructions -
                                     ln.req_insts0,
                                 ln.req_blocks,
                                 ln.events != ln.req_ev0);
                ++ln.stats.fetchRequests;
                ln.req_ev0 = ln.events;
                ln.req_insts0 = ln.stats.instructions;
                ln.req_blocks = 0;
            } else if (conflict) {
                ln.stats.charge(PenaltyKind::BankConflict,
                                ln.penalties.cycles(
                                    PenaltyKind::BankConflict, 1));
            }
            batchCountBlockStats(ln.stats, cur);
            ++ln.req_blocks;

            // Score the prediction made two blocks ago.
            if (ln.pcount == 2) {
                TwoAheadLane::Pending p = ln.pending[ln.phead];
                ln.phead ^= 1;
                --ln.pcount;
                unsigned slot = b % 2 == 1 ? 0u : 1u;
                if (!p.valid || p.predicted != cur.blk.startPc) {
                    PenaltyKind kind =
                        PenaltyKind::MisfetchImmediate;
                    if (prevCtx.endsTaken) {
                        if (prevCtx.exitIsCond)
                            kind = PenaltyKind::CondMispredict;
                        else if (prevCtx.exitIsReturn)
                            kind = PenaltyKind::ReturnMispredict;
                        else if (prevCtx.exitIsIndirect)
                            kind = PenaltyKind::MisfetchIndirect;
                    } else {
                        kind = prevCtx.numConds > 0
                            ? PenaltyKind::CondMispredict
                            : PenaltyKind::MisfetchImmediate;
                    }
                    laneCharge(ln.stats, ln.attr, ln.events,
                               prevCtx.blk.startPc, slot, kind,
                               ln.penalties.cycles(kind, slot));
                    if (kind == PenaltyKind::CondMispredict)
                        ++ln.stats.condDirectionWrong;
                }
                ln.table[p.idx] = { cur.blk.startPc, true };
            }

            // Make this block's two-ahead prediction.
            std::size_t idx =
                (ln.ghr.value() ^
                 xorFold(cur.lineAddr, ln.cfg.historyBits)) &
                mask(ln.cfg.historyBits);
            ln.pending[(ln.phead + ln.pcount) % 2] =
                { idx, ln.table[idx].twoAhead, ln.table[idx].valid };
            ++ln.pcount;

            ln.ghr.shiftInBlock(cur.condMask, cur.numConds);
        }

        std::swap(prevCtx, cur);
    }

    for (auto &lp : lanes) {
        TwoAheadLane &ln = *lp;
        if (ln.req_open)
            ln.bw.endRequest(ln.stats.instructions - ln.req_insts0,
                             ln.req_blocks,
                             ln.events != ln.req_ev0);
        ln.attr.flush();
        ln.bw.flush();
        obs::flushCounter("engine.two_ahead.runs", 1);
    }
}

/** Greedy consecutive tiling under the footprint budget + lane cap.
 *  A single oversized lane still gets its own tile. */
template <typename FootprintFn>
std::vector<std::pair<std::size_t, std::size_t>>
greedyTiles(std::size_t n, const BatchTileOptions &opts,
            FootprintFn &&footprint)
{
    std::vector<std::pair<std::size_t, std::size_t>> tiles;
    std::size_t first = 0;
    while (first < n) {
        std::size_t count = 0;
        std::size_t bytes = 0;
        while (first + count < n && count < opts.maxLanes) {
            std::size_t fp = footprint(first + count);
            if (count > 0 && bytes + fp > opts.cacheBudgetBytes)
                break;
            bytes += fp;
            ++count;
        }
        tiles.emplace_back(first, count);
        first += count;
    }
    return tiles;
}

/** The reference (array-of-lane-objects) tile kernels. */
std::vector<FetchStats>
runReferenceTile(BatchEngineKind kind, unsigned num_blocks,
                 const std::vector<const FetchEngineConfig *> &cfgs,
                 const DecodedTrace &dec, unsigned line_size)
{
    std::vector<FetchStats> out;
    out.reserve(cfgs.size());
    if (kind == BatchEngineKind::TwoAhead) {
        std::vector<std::unique_ptr<TwoAheadLane>> lanes;
        lanes.reserve(cfgs.size());
        for (const FetchEngineConfig *c : cfgs)
            lanes.push_back(std::make_unique<TwoAheadLane>(*c));
        runTwoAheadTile(dec, lanes);
        for (auto &l : lanes)
            out.push_back(l->stats);
        return out;
    }
    std::vector<std::unique_ptr<BatchLane>> lanes;
    lanes.reserve(cfgs.size());
    for (const FetchEngineConfig *c : cfgs)
        lanes.push_back(std::make_unique<BatchLane>(kind, *c,
                                                    num_blocks,
                                                    line_size));
    switch (kind) {
      case BatchEngineKind::Single:
        runSingleTile(dec, lanes);
        break;
      case BatchEngineKind::Dual:
        runDualTile(dec, lanes);
        break;
      default:
        runMultiTile(dec, lanes, num_blocks);
        break;
    }
    for (auto &l : lanes)
        out.push_back(l->stats);
    return out;
}

std::vector<FetchStats>
runTile(BatchEngineKind kind, unsigned num_blocks,
        const std::vector<const FetchEngineConfig *> &cfgs,
        const DecodedTrace &dec)
{
    const unsigned line_size = cfgs[0]->icache.lineSize;

    // Split the tile between the structure-of-arrays kernels
    // (eligible lanes, in vector-width groups of <= 64) and the
    // reference kernels, then merge by original position. The
    // position map keeps report order deterministic even when the
    // eligible subset is non-contiguous.
    std::vector<std::size_t> soa_idx, ref_idx;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        if (laneSoaEligible(kind, *cfgs[i]))
            soa_idx.push_back(i);
        else
            ref_idx.push_back(i);
    }
    if (soa_idx.empty()) {
        return runReferenceTile(kind, num_blocks, cfgs, dec,
                                line_size);
    }

    std::vector<FetchStats> out(cfgs.size());
    const LaneSoaKernels &kern =
        laneSoaKernelsFor(simd::activeLevel());
    void (*run)(SoaTile &, const DecodedTrace &) =
        kind == BatchEngineKind::Single ? kern.runSingle
        : kind == BatchEngineKind::Dual ? kern.runDual
        : kind == BatchEngineKind::Multi ? kern.runMulti
                                         : kern.runTwoAhead;
    for (std::size_t first = 0; first < soa_idx.size();
         first += 64) {
        const std::size_t count =
            std::min<std::size_t>(64, soa_idx.size() - first);
        std::vector<const FetchEngineConfig *> sub;
        sub.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            sub.push_back(cfgs[soa_idx[first + i]]);
        SoaTile tile;
        tile.build(kind, num_blocks, sub, line_size);
        run(tile, dec);
        std::vector<FetchStats> part = tile.finish();
        for (std::size_t i = 0; i < count; ++i)
            out[soa_idx[first + i]] = part[i];
    }
    if (!ref_idx.empty()) {
        std::vector<const FetchEngineConfig *> sub;
        sub.reserve(ref_idx.size());
        for (std::size_t i : ref_idx)
            sub.push_back(cfgs[i]);
        std::vector<FetchStats> part = runReferenceTile(
            kind, num_blocks, sub, dec, line_size);
        for (std::size_t i = 0; i < ref_idx.size(); ++i)
            out[ref_idx[i]] = part[i];
    }
    return out;
}

/** Publish the eligible/total lane split and per-reason fallback
 *  counts for one batched run. The gauge is per-mille (1000 means
 *  every lane took the columnar path). */
void
recordSoaCoverage(BatchEngineKind kind,
                  const std::vector<const FetchEngineConfig *> &cfgs)
{
    uint64_t eligible = 0;
    uint64_t by_reason[numSoaFallbackReasons] = {};
    for (const FetchEngineConfig *c : cfgs) {
        const SoaFallback r = laneSoaFallback(kind, *c);
        if (r == SoaFallback::Eligible)
            ++eligible;
        else
            ++by_reason[static_cast<unsigned>(r)];
    }
    const uint64_t total = cfgs.size();
    obs::gauge("sweep.soa.lane_coverage")
        .set(total ? eligible * 1000 / total : 1000);
    obs::flushCounter("sweep.soa.lanes.total", total);
    obs::flushCounter("sweep.soa.lanes.eligible", eligible);
    for (unsigned r = 1; r < numSoaFallbackReasons; ++r) {
        if (by_reason[r] == 0)
            continue;
        obs::flushCounter(
            std::string("sweep.soa.fallback.") +
                soaFallbackName(static_cast<SoaFallback>(r)),
            by_reason[r]);
    }
}

} // namespace

const char *
batchEngineKindName(BatchEngineKind k)
{
    switch (k) {
      case BatchEngineKind::Single:
        return "single";
      case BatchEngineKind::Dual:
        return "dual";
      case BatchEngineKind::Multi:
        return "multi";
      case BatchEngineKind::TwoAhead:
        return "two_ahead";
    }
    return "?";
}

BatchKey
BatchKey::of(const SimConfig &cfg)
{
    BatchKey k;
    k.kind = cfg.numBlocks == 1 ? BatchEngineKind::Single
           : cfg.numBlocks == 2 ? BatchEngineKind::Dual
                                : BatchEngineKind::Multi;
    k.numBlocks = cfg.numBlocks;
    k.cacheType = cfg.engine.icache.type;
    k.blockWidth = cfg.engine.icache.blockWidth;
    k.lineSize = cfg.engine.icache.lineSize;
    k.numBanks = cfg.engine.icache.numBanks;
    return k;
}

bool
BatchKey::operator<(const BatchKey &o) const
{
    return std::make_tuple(kind, numBlocks, cacheType, blockWidth,
                           lineSize, numBanks) <
        std::make_tuple(o.kind, o.numBlocks, o.cacheType,
                        o.blockWidth, o.lineSize, o.numBanks);
}

std::size_t
batchLaneFootprintBytes(BatchEngineKind kind,
                        const FetchEngineConfig &cfg,
                        unsigned num_blocks)
{
    std::size_t bytes = 4096;   // lane object + scratch overhead
    const std::size_t entries = std::size_t{ 1 } << cfg.historyBits;
    if (kind == BatchEngineKind::TwoAhead)
        return bytes + entries * 16;

    bytes += entries * cfg.numPhts * cfg.icache.blockWidth *
        sizeof(SatCounter);
    bytes += cfg.bitEntries *
        (cfg.icache.lineSize * sizeof(BitCode) + 16);

    unsigned slots = 0;
    if (kind == BatchEngineKind::Dual)
        slots = cfg.doubleSelect ? 2 : 1;
    else if (kind == BatchEngineKind::Multi)
        slots = num_blocks > 1 ? num_blocks - 1 : 1;
    bytes += entries * cfg.numSelectTables * slots *
        sizeof(SelectEntry);

    const unsigned arrays =
        kind == BatchEngineKind::Multi ? num_blocks
        : kind == BatchEngineKind::Dual ? 2u : 1u;
    if (cfg.targetKind == TargetKind::Nls)
        bytes += cfg.targetEntries * arrays * 16;
    else
        bytes += cfg.targetEntries * 32;

    bytes += cfg.icacheLines * 24;
    bytes += cfg.rasEntries * sizeof(Addr);
    return bytes;
}

std::vector<std::pair<std::size_t, std::size_t>>
planBatchTiles(const std::vector<SimConfig> &configs,
               const BatchTileOptions &opts)
{
    if (configs.empty())
        return {};
    const BatchKey key = BatchKey::of(configs[0]);
    return greedyTiles(configs.size(), opts, [&](std::size_t i) {
        return batchLaneFootprintBytes(key.kind, configs[i].engine,
                                       configs[i].numBlocks);
    });
}

std::vector<FetchStats>
batchReplay(const std::vector<SimConfig> &configs,
            const DecodedTrace &dec, const BatchTileOptions &opts)
{
    std::vector<FetchStats> out(configs.size());
    if (configs.empty())
        return out;

    const BatchKey key = BatchKey::of(configs[0]);
    for (const SimConfig &c : configs)
        mbbp_assert(BatchKey::of(c) == key,
                    "batched configs must share one BatchKey");
    mbbp_assert(dec.geometryCompatible(configs[0].engine.icache),
                "decoded trace was cut for another geometry");

    obs::gauge("sweep.simd_width")
        .set(simd::vectorLanes(simd::activeLevel()));
    {
        std::vector<const FetchEngineConfig *> all;
        all.reserve(configs.size());
        for (const SimConfig &c : configs)
            all.push_back(&c.engine);
        recordSoaCoverage(key.kind, all);
    }

    for (auto [first, count] : planBatchTiles(configs, opts)) {
        std::vector<const FetchEngineConfig *> cfgs;
        cfgs.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            cfgs.push_back(&configs[first + i].engine);
        std::vector<FetchStats> tile =
            runTile(key.kind, key.numBlocks, cfgs, dec);
        for (std::size_t i = 0; i < count; ++i)
            out[first + i] = tile[i];
    }
    return out;
}

std::vector<FetchStats>
batchReplayKind(BatchEngineKind kind,
                const std::vector<FetchEngineConfig> &configs,
                unsigned num_blocks, const DecodedTrace &dec,
                const BatchTileOptions &opts)
{
    std::vector<FetchStats> out(configs.size());
    if (configs.empty())
        return out;

    const ICacheConfig &g = configs[0].icache;
    for (const FetchEngineConfig &c : configs)
        mbbp_assert(c.icache.type == g.type &&
                        c.icache.blockWidth == g.blockWidth &&
                        c.icache.lineSize == g.lineSize &&
                        c.icache.numBanks == g.numBanks,
                    "batched configs must share the i-cache "
                    "geometry");
    mbbp_assert(dec.geometryCompatible(g),
                "decoded trace was cut for another geometry");

    obs::gauge("sweep.simd_width")
        .set(simd::vectorLanes(simd::activeLevel()));
    {
        std::vector<const FetchEngineConfig *> all;
        all.reserve(configs.size());
        for (const FetchEngineConfig &c : configs)
            all.push_back(&c);
        recordSoaCoverage(kind, all);
    }

    auto tiles = greedyTiles(configs.size(), opts,
                             [&](std::size_t i) {
        return batchLaneFootprintBytes(kind, configs[i], num_blocks);
    });
    for (auto [first, count] : tiles) {
        std::vector<const FetchEngineConfig *> cfgs;
        cfgs.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            cfgs.push_back(&configs[first + i]);
        std::vector<FetchStats> tile =
            runTile(kind, num_blocks, cfgs, dec);
        for (std::size_t i = 0; i < count; ++i)
            out[first + i] = tile[i];
    }
    return out;
}

} // namespace mbbp

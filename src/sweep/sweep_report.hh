/**
 * @file
 * Sweep result export, keyed by the swept config fields, in the two
 * shapes plotting tooling wants:
 *
 *  - JSON: one object per job with its params, per-class aggregates
 *    and (optionally) per-program metrics -- the paper's figures are
 *    direct selections over this;
 *  - CSV: one row per (job, scope) where scope is int/fp/all plus
 *    each program, with one column per swept field.
 *
 * Both emitters visit jobs in deterministic job order and, by
 * default, exclude timing data, so the bytes a sweep produces are
 * identical regardless of thread count -- the property the
 * determinism tests and perf_sweep assert.
 */

#ifndef MBBP_SWEEP_SWEEP_REPORT_HH
#define MBBP_SWEEP_SWEEP_REPORT_HH

#include <string>

#include "sweep/sweep_runner.hh"

namespace mbbp
{

/** Emitter knobs. */
struct SweepReportOptions
{
    bool perProgram = true;     //!< include per-program rows/objects
    bool timings = false;       //!< include per-job + wall seconds

    /**
     * Append the obs registry snapshot (counters/gauges/timers/
     * histograms) as a "metrics" object (JSON only). Off by default:
     * values vary with thread count and host speed, and the
     * byte-stability guarantee covers the default document.
     */
    bool metrics = false;

    /**
     * Append the top-N misprediction offenders from the attribution
     * table as an "attribution" array (JSON only). 0 (the default)
     * omits the block entirely, keeping the document byte-identical
     * to pre-attribution reports. Rows are totally ordered (cycles
     * desc, events desc, address asc, slot asc), so the output is
     * thread-count-invariant.
     */
    unsigned attributionTopN = 0;
};

/** The whole sweep as a JSON document. */
std::string sweepToJson(const SweepResult &result,
                        const SweepReportOptions &opts = {});

/** The whole sweep as CSV (header + data rows). */
std::string sweepToCsv(const SweepResult &result,
                       const SweepReportOptions &opts = {});

/**
 * The attribution table's top @p top_n offenders (0 = all) as a
 * standalone CSV document: one row per (block, exit slot) with the
 * per-cause event split and the dominant cause. Deterministic order,
 * same as the JSON block.
 */
std::string attributionToCsv(unsigned top_n);

/**
 * Write @p content to @p path (or stdout when path is "-").
 * Throws std::runtime_error if the file cannot be written.
 */
void writeTextFile(const std::string &path,
                   const std::string &content);

} // namespace mbbp

#endif // MBBP_SWEEP_SWEEP_REPORT_HH

// AVX-512 instantiation of the SoA replay kernels. This translation
// unit is compiled with -mavx512f/bw/vl/dq (see src/CMakeLists.txt)
// and only ever entered after util/simd's CPUID dispatch confirms
// support for all four extensions.

#define MBBP_SOA_NS soa_avx512
#define MBBP_SOA_LEVEL 2
#include "sweep/lane_soa_impl.hh"

/**
 * @file
 * Config-batched replay: advance N predictor configurations in
 * lockstep through a single pass over a shared DecodedTrace.
 *
 * A design-space sweep replays the same trace once per sweep point;
 * after PR 2's decode-once artifacts the remaining cost is the
 * replay itself, which re-streams the block index -- and re-derives
 * every lane-independent per-block fact -- once per configuration.
 * The batched kernel reads each block exactly once per *tile* of
 * configurations (building one BatchBlockCtx), then steps every
 * lane's predictor state through it, so the trace walk and the
 * decode-adjacent work are amortized across the tile.
 *
 * Tiling: lanes are grouped so their aggregate predictor-table
 * footprint (PHT + select table + BIT + target array + RAS + cache
 * tags) fits a cache budget (default 1.5 MiB, sized for a small
 * L2), with a hard lane cap as a second bound. Oversized grids are
 * split into consecutive tiles; a single lane larger than the
 * budget still gets its own tile.
 *
 * Compatibility: lanes in one tile must share the trace, the engine
 * kind (numBlocks dispatch), and the full i-cache geometry
 * *including numBanks* -- geometry decides block segmentation and
 * window shape, and the bank count decides the shared bank-conflict
 * precomputation. Everything else (historyBits, numPhts, select
 * tables, doubleSelect, near-block flags, BIT size, target arrays,
 * RAS depth, finite i-cache contents, delayed PHT update) is lane
 * state and may vary freely within a tile. BatchKey captures the
 * shareable part; SweepRunner groups sweep points by it and falls
 * back to the per-config path for singleton groups.
 *
 * Every lane produces field-exact FetchStats -- and identical obs
 * counter/histogram and attribution output -- versus running the
 * corresponding engine alone (see fetch/batch_engine_state.hh for
 * the discipline, tests/sweep/batch_replay_test.cc for the proof).
 */

#ifndef MBBP_SWEEP_BATCH_REPLAY_HH
#define MBBP_SWEEP_BATCH_REPLAY_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "core/fetch_simulator.hh"
#include "trace/decoded_trace.hh"

namespace mbbp
{

/** Which lockstep kernel a configuration maps to. */
enum class BatchEngineKind : uint8_t
{
    Single = 0, //!< numBlocks == 1
    Dual,       //!< numBlocks == 2 (select table, double selection)
    Multi,      //!< numBlocks == 3..4 (Section 5 extension)
    TwoAhead    //!< the two-block-ahead alternative (bench/tests)
};

const char *batchEngineKindName(BatchEngineKind k);

/** The shareable part of a sweep point: lanes tile together iff
 *  their keys compare equal (trace identity is the caller's job). */
struct BatchKey
{
    BatchEngineKind kind = BatchEngineKind::Dual;
    unsigned numBlocks = 2;
    CacheType cacheType = CacheType::Normal;
    unsigned blockWidth = 8;
    unsigned lineSize = 8;
    unsigned numBanks = 8;

    static BatchKey of(const SimConfig &cfg);

    bool operator==(const BatchKey &other) const = default;
    bool operator<(const BatchKey &other) const;
};

/** Tile sizing knobs. */
struct BatchTileOptions
{
    /** Aggregate lane-footprint budget per tile (bytes). */
    std::size_t cacheBudgetBytes = 1536 * 1024;
    /** Hard cap on lanes per tile. */
    unsigned maxLanes = 16;
};

/**
 * Rough per-lane predictor-state footprint in bytes (tables only;
 * used solely for tiling, so precision beyond cache-pressure scale
 * is not needed).
 */
std::size_t batchLaneFootprintBytes(BatchEngineKind kind,
                                    const FetchEngineConfig &cfg,
                                    unsigned num_blocks);

/**
 * Split @p configs (all sharing one BatchKey) into consecutive
 * (first, count) tiles under the cache budget and lane cap.
 */
std::vector<std::pair<std::size_t, std::size_t>>
planBatchTiles(const std::vector<SimConfig> &configs,
               const BatchTileOptions &opts = {});

/**
 * Replay @p dec once per tile, stepping every configuration in
 * lockstep. All configs must share BatchKey::of and be compatible
 * with @p dec's geometry. Returns one FetchStats per config, in
 * input order -- field-exact versus FetchSimulator::run(dec).
 */
std::vector<FetchStats>
batchReplay(const std::vector<SimConfig> &configs,
            const DecodedTrace &dec,
            const BatchTileOptions &opts = {});

/**
 * Kernel-selecting variant for engines FetchSimulator does not
 * dispatch to (the two-block-ahead engine); @p num_blocks is only
 * meaningful for BatchEngineKind::Multi.
 */
std::vector<FetchStats>
batchReplayKind(BatchEngineKind kind,
                const std::vector<FetchEngineConfig> &configs,
                unsigned num_blocks, const DecodedTrace &dec,
                const BatchTileOptions &opts = {});

} // namespace mbbp

#endif // MBBP_SWEEP_BATCH_REPLAY_HH

#include "sweep/sweep_runner.hh"

#include <chrono>
#include <mutex>
#include <string>

#include "obs/obs.hh"
#include "sweep/thread_pool.hh"

namespace mbbp
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

} // namespace

SweepResult
runSweepJobs(const std::vector<SweepJob> &jobs, TraceCache &traces,
             const std::vector<std::string> &benchmarks,
             const SweepOptions &opts)
{
    SweepResult result;
    result.benchmarks = benchmarks;

    ThreadPool pool(opts.threads);
    result.threads = pool.numWorkers();

    static obs::Timer &sweep_t = obs::timer("sweep.run");
    obs::ScopedTimer sweep_span(sweep_t, "sweep run");
    static obs::Timer &job_t = obs::timer("sweep.job");

    Clock::time_point sweep_start = Clock::now();

    // Results land in their job's slot, so aggregation order is the
    // deterministic job order no matter which worker finishes first.
    result.jobs.resize(jobs.size());

    std::mutex progress_mutex;
    std::size_t completed = 0;

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool.submit([&, i] {
            obs::ScopedTimer job_span(
                job_t, "job " + std::to_string(i));
            Clock::time_point job_start = Clock::now();
            SweepJobResult &slot = result.jobs[i];
            slot.job = jobs[i];
            slot.result = runSuite(jobs[i].config, traces, benchmarks,
                                   opts.sharedDecode);
            slot.seconds = secondsSince(job_start);
            // Job-duration distribution: p99 vs p50 shows whether
            // stragglers limit the pool (wall-clock shaped, so the
            // bench gate ignores it).
            static obs::Histogram &job_h =
                obs::histogram("sweep.job_ns");
            job_h.record(static_cast<uint64_t>(
                slot.seconds * 1e9));
            if (opts.progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                ++completed;
                SweepProgress p;
                p.completed = completed;
                p.total = jobs.size();
                p.job = &slot.job;
                p.jobSeconds = slot.seconds;
                opts.progress(p);
            }
        });
    }
    pool.wait();

    result.wallSeconds = secondsSince(sweep_start);
    return result;
}

SweepResult
runSweep(const SweepSpec &spec, TraceCache &traces,
         const SweepOptions &opts)
{
    SweepResult result =
        runSweepJobs(spec.expand(), traces, spec.benchmarks(), opts);
    result.name = spec.name();
    return result;
}

} // namespace mbbp

#include "sweep/sweep_runner.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "obs/obs.hh"
#include "sweep/thread_pool.hh"
#include "workload/spec95.hh"

namespace mbbp
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Fold one program's stats into a job's SuiteResult, in the exact
 *  order runSuite does. */
void
accumulateProgram(SuiteResult &result, const std::string &name,
                  const FetchStats &s)
{
    result.perProgram[name] = s;
    result.allTotal.accumulate(s);
    if (specProfile(name).isFloat)
        result.fpTotal.accumulate(s);
    else
        result.intTotal.accumulate(s);
}

/**
 * One tile of the batched schedule: a run of compatible jobs that
 * replay together, with a (program -> per-lane stats) buffer filled
 * by one pool task per program.
 */
struct BatchedTile
{
    std::vector<std::size_t> jobIdx;    //!< lanes, ascending job index
    std::vector<SimConfig> configs;
    std::size_t remaining = 0;          //!< program tasks outstanding
    double seconds = 0.0;               //!< summed task wall clock
    std::map<std::string, std::vector<FetchStats>> stats;
};

} // namespace

SweepResult
runSweepJobs(const std::vector<SweepJob> &jobs, TraceCache &traces,
             const std::vector<std::string> &benchmarks,
             const SweepOptions &opts)
{
    SweepResult result;
    result.benchmarks = benchmarks;

    // Private pool unless the caller multiplexes us onto a shared
    // one; either way every task goes through the TaskGroup, so this
    // sweep waits on (and sees the errors of) its own tasks only.
    std::unique_ptr<ThreadPool> own_pool;
    if (!opts.pool)
        own_pool = std::make_unique<ThreadPool>(opts.threads);
    ThreadPool &pool = opts.pool ? *opts.pool : *own_pool;
    TaskGroup group(pool, opts.groupWeight);
    result.threads = pool.numWorkers();

    // The sweep's accounting domain: every task installs it before
    // touching an instrument, so a service running concurrent sweeps
    // on one pool keeps each job's counters/spans/attribution apart
    // (null = inherit, i.e. the process default for the CLIs). Tasks
    // run on pool worker threads, which is why each task re-installs
    // rather than relying on this stack frame's scope.
    obs::Domain *domain =
        opts.domain ? opts.domain : &obs::currentDomain();
    obs::ScopedDomain sweep_scope(domain);

    obs::ScopedTimer sweep_span("sweep.run", "sweep run");

    Clock::time_point sweep_start = Clock::now();

    // Results land in their job's slot, so aggregation order is the
    // deterministic job order no matter which worker finishes first.
    result.jobs.resize(jobs.size());

    std::mutex progress_mutex;
    std::size_t completed = 0;

    // Serialized job-completion bookkeeping (call under the mutex).
    auto finishJob = [&](std::size_t i, double seconds) {
        obs::HistogramData job_ns;
        job_ns.record(static_cast<uint64_t>(seconds * 1e9));
        obs::flushHistogram("sweep.job_ns", job_ns);
        if (opts.progress) {
            ++completed;
            SweepProgress p;
            p.completed = completed;
            p.total = jobs.size();
            p.job = &result.jobs[i].job;
            p.jobSeconds = seconds;
            opts.progress(p);
        }
    };

    auto submitPerConfig = [&](std::size_t i) {
        group.submit([&, i] {
            opts.cancel.throwIfCancelled("sweep cancelled");
            obs::ScopedDomain task_scope(domain);
            obs::ScopedTimer job_span(
                "sweep.job", "job " + std::to_string(i));
            Clock::time_point job_start = Clock::now();
            SweepJobResult &slot = result.jobs[i];
            slot.job = jobs[i];
            slot.result = runSuite(jobs[i].config, traces, benchmarks,
                                   opts.sharedDecode, &opts.cancel);
            slot.seconds = secondsSince(job_start);
            std::lock_guard<std::mutex> lock(progress_mutex);
            finishJob(i, slot.seconds);
        });
    };

    if (!opts.batchedReplay) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            submitPerConfig(i);
        group.wait();
        result.wallSeconds = secondsSince(sweep_start);
        return result;
    }

    // ===== Batched schedule =====
    // Group jobs by BatchKey, tile each group under the cache
    // budget, and replay every trace once per tile. A key shared by
    // no other job gains nothing from lockstep; those jobs keep the
    // per-config path (the "incompatible grid" fallback).
    const std::vector<std::string> run_names =
        benchmarks.empty() ? specAllNames() : benchmarks;

    std::map<BatchKey, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        groups[BatchKey::of(jobs[i].config)].push_back(i);

    std::vector<BatchedTile> planned;
    for (auto &[key, idxs] : groups) {
        if (idxs.size() < 2) {
            for (std::size_t i : idxs)
                submitPerConfig(i);
            continue;
        }
        std::vector<SimConfig> cfgs;
        cfgs.reserve(idxs.size());
        for (std::size_t i : idxs)
            cfgs.push_back(jobs[i].config);
        for (auto [first, count] :
             planBatchTiles(cfgs, opts.batchTile)) {
            BatchedTile t;
            for (std::size_t k = 0; k < count; ++k) {
                t.jobIdx.push_back(idxs[first + k]);
                t.configs.push_back(cfgs[first + k]);
            }
            planned.push_back(std::move(t));
        }
    }

    // A grid that collapses into few tiles (one BatchKey, small
    // program list) yields fewer tasks than workers, so a multi-
    // thread sweep degenerates toward single-thread wall clock.
    // Halve the widest tile until the task count covers the pool;
    // narrower tiles replay the trace more often, so split no
    // further than occupancy demands.
    const std::size_t per_tile_tasks = run_names.size();
    while (planned.size() * per_tile_tasks < pool.numWorkers()) {
        std::size_t widest = planned.size();
        std::size_t width = 1;
        for (std::size_t k = 0; k < planned.size(); ++k) {
            if (planned[k].jobIdx.size() > width) {
                width = planned[k].jobIdx.size();
                widest = k;
            }
        }
        if (widest == planned.size())
            break;      // nothing left to split
        BatchedTile &src = planned[widest];
        const std::size_t half = src.jobIdx.size() / 2;
        BatchedTile rest;
        rest.jobIdx.assign(src.jobIdx.begin() +
                               static_cast<std::ptrdiff_t>(half),
                           src.jobIdx.end());
        rest.configs.assign(src.configs.begin() +
                                static_cast<std::ptrdiff_t>(half),
                            src.configs.end());
        src.jobIdx.resize(half);
        src.configs.resize(half);
        planned.push_back(std::move(rest));
    }

    // Largest-first: the widest tile bounds the schedule's tail, so
    // it must never be the last task to start.
    std::stable_sort(planned.begin(), planned.end(),
                     [](const BatchedTile &a, const BatchedTile &b) {
        return a.jobIdx.size() > b.jobIdx.size();
    });

    std::deque<BatchedTile> tiles;      //!< stable addresses
    for (BatchedTile &t : planned) {
        t.remaining = per_tile_tasks;
        for (const std::string &name : run_names)
            t.stats[name].resize(t.jobIdx.size());
        tiles.push_back(std::move(t));
    }

    for (BatchedTile &tile : tiles) {
        for (const std::string &name : run_names) {
            group.submit([&, name] {
                opts.cancel.throwIfCancelled("sweep cancelled");
                obs::ScopedDomain task_scope(domain);
                obs::ScopedTimer job_span("sweep.job",
                                          "tile " + name);
                Clock::time_point t0 = Clock::now();
                const ICacheConfig &geom =
                    tile.configs[0].engine.icache;
                std::vector<FetchStats> lane_stats;
                if (opts.sharedDecode) {
                    lane_stats =
                        batchReplay(tile.configs,
                                    *traces.decoded(name, geom),
                                    opts.batchTile);
                } else {
                    DecodedTrace dec =
                        DecodedTrace::build(traces.get(name), geom);
                    lane_stats = batchReplay(tile.configs, dec,
                                             opts.batchTile);
                }
                double secs = secondsSince(t0);

                std::lock_guard<std::mutex> lock(progress_mutex);
                tile.stats[name] = std::move(lane_stats);
                tile.seconds += secs;
                if (--tile.remaining != 0)
                    return;
                // Last program of the tile: assemble every lane's
                // SuiteResult (we own the tile now) and complete its
                // jobs in deterministic lane order.
                double per_job = tile.seconds /
                    static_cast<double>(tile.jobIdx.size());
                for (std::size_t l = 0; l < tile.jobIdx.size();
                     ++l) {
                    std::size_t i = tile.jobIdx[l];
                    SweepJobResult &slot = result.jobs[i];
                    slot.job = jobs[i];
                    for (const std::string &nm : run_names)
                        accumulateProgram(slot.result, nm,
                                          tile.stats[nm][l]);
                    slot.seconds = per_job;
                    finishJob(i, per_job);
                }
            });
        }
    }
    group.wait();

    result.wallSeconds = secondsSince(sweep_start);
    return result;
}

SweepResult
runSweep(const SweepSpec &spec, TraceCache &traces,
         const SweepOptions &opts)
{
    SweepResult result =
        runSweepJobs(spec.expand(), traces, spec.benchmarks(), opts);
    result.name = spec.name();
    return result;
}

} // namespace mbbp

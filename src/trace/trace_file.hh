/**
 * @file
 * A simple versioned binary trace format so traces can be stored and
 * exchanged (e.g. converted from other simulators' formats).
 *
 * Layout: 16-byte header ("MBBPTRC1", u32 reserved, u32 flags), then
 * one record per instruction:
 *   u8  class
 *   u8  taken (0/1)
 *   u64 pc      (little-endian)
 *   u64 target  (only present for control instructions; conditional
 *                branches carry their static target even when not
 *                taken, so recovery paths can be modeled)
 */

#ifndef MBBP_TRACE_TRACE_FILE_HH
#define MBBP_TRACE_TRACE_FILE_HH

#include <fstream>
#include <string>

#include "trace/trace.hh"

namespace mbbp
{

/** Streams DynInsts to a binary trace file. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one instruction record. */
    void write(const DynInst &inst);

    /** Write an entire trace. */
    void writeAll(const InMemoryTrace &trace);

    /** Flush and close; also done by the destructor. */
    void close();

    uint64_t recordsWritten() const { return records_; }

  private:
    std::ofstream out_;
    uint64_t records_ = 0;
};

/** Reads a binary trace file as a TraceSource. */
class TraceFileReader : public TraceSource
{
  public:
    /** Open @p path; fatal() on open or header error. */
    explicit TraceFileReader(const std::string &path);

    bool next(DynInst &inst) override;
    void reset() override;

  private:
    void readHeader();

    std::string path_;
    std::ifstream in_;
};

} // namespace mbbp

#endif // MBBP_TRACE_TRACE_FILE_HH

/**
 * @file
 * Disk persistence for decoded replay artifacts: one DecodedTrace
 * (block index, window-code arenas, instruction stream, frozen
 * StaticImage) serialized into a flat, mmap-able file keyed by
 * (trace, instruction count, i-cache geometry).
 *
 * The file is a *cache*, not an interchange format: columns are
 * written in host layout so a loader can point the DecodedTrace
 * spans straight into a read-only mapping (zero copy for the bulk
 * arrays; only the small StaticImage is rehydrated). A header guards
 * everything that could make that unsafe -- magic, format version,
 * byte order, struct sizes, the key hash, and an FNV-1a hash of the
 * whole payload -- and *any* mismatch makes load() return null so
 * the caller rebuilds from scratch. Corrupt or hostile files must
 * never crash the service; they are rejected and overwritten.
 *
 * Writes go to a temp file renamed into place, so readers (including
 * concurrent server processes sharing one store directory) never
 * observe a torn file.
 */

#ifndef MBBP_TRACE_ARTIFACT_FILE_HH
#define MBBP_TRACE_ARTIFACT_FILE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "fetch/icache_model.hh"
#include "trace/decoded_trace.hh"

namespace mbbp
{

/**
 * Identity of one decoded artifact. Two artifacts share a file iff
 * every field here matches; numBanks is deliberately absent (banking
 * never affects the decode, same as TraceCache's memo key).
 */
struct ArtifactKey
{
    std::string trace;          //!< workload name
    uint64_t instructions = 0;  //!< dynamic instructions decoded
    uint8_t cacheType = 0;      //!< CacheType as stored in the memo key
    uint32_t blockWidth = 0;
    uint32_t lineSize = 0;

    static ArtifactKey of(const std::string &trace_name,
                          uint64_t instructions,
                          const ICacheConfig &geom);

    /** Stable 64-bit identity hash (salted with the format version). */
    uint64_t hash() const;

    /** "gcc-400000-<16 hex digits>.mbbpart". */
    std::string fileName() const;
};

/**
 * Serialize @p dec under @p key to @p path (atomic rename).
 * @return false (with a warning) if the file could not be written --
 * persistence is best-effort and never fails the simulation.
 */
bool saveDecodedArtifact(const std::string &path,
                         const ArtifactKey &key,
                         const DecodedTrace &dec);

/**
 * Map @p path and reconstruct its DecodedTrace with the bulk columns
 * borrowing the mapping. @p geom becomes the artifact's geometry (it
 * must match @p key's fields). Returns null -- never throws, never
 * crashes -- if the file is missing, truncated, version-skewed,
 * corrupt, or keyed differently; the caller then rebuilds.
 */
std::shared_ptr<const DecodedTrace>
loadDecodedArtifact(const std::string &path, const ArtifactKey &key,
                    const ICacheConfig &geom);

/**
 * A directory of artifact files. Thread-safe (stateless beyond the
 * directory path); safe to share between a TraceCache and the sweep
 * service. Counters: artifact.store.{hits,misses,rejects,saves,
 * save_failures}.
 */
class ArtifactStore
{
  public:
    /** Uses @p dir, creating it (and parents) if absent. */
    explicit ArtifactStore(std::string dir);

    const std::string &dir() const { return dir_; }

    std::string pathFor(const ArtifactKey &key) const;

    /** loadDecodedArtifact() at pathFor(key), with hit/miss counts. */
    std::shared_ptr<const DecodedTrace>
    load(const ArtifactKey &key, const ICacheConfig &geom) const;

    /** Best-effort saveDecodedArtifact() at pathFor(key). */
    void save(const ArtifactKey &key, const DecodedTrace &dec) const;

  private:
    std::string dir_;
};

} // namespace mbbp

#endif // MBBP_TRACE_ARTIFACT_FILE_HH

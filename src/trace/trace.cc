#include "trace/trace.hh"

#include "util/stats.hh"

namespace mbbp
{

InMemoryTrace::InMemoryTrace(std::vector<DynInst> insts)
    : insts_(std::move(insts))
{
}

bool
InMemoryTrace::next(DynInst &inst)
{
    if (pos_ >= insts_.size())
        return false;
    inst = insts_[pos_++];
    return true;
}

void
InMemoryTrace::reset()
{
    pos_ = 0;
}

double
InMemoryTrace::Summary::condDensity() const
{
    return ratio(static_cast<double>(condBranches),
                 static_cast<double>(instructions));
}

double
InMemoryTrace::Summary::takenRate() const
{
    return ratio(static_cast<double>(condTaken),
                 static_cast<double>(condBranches));
}

InMemoryTrace::Summary
InMemoryTrace::summarize() const
{
    Summary s;
    s.instructions = insts_.size();
    for (const auto &inst : insts_) {
        if (isCondBranch(inst.cls)) {
            ++s.condBranches;
            if (inst.taken)
                ++s.condTaken;
        }
        if (isCall(inst.cls))
            ++s.calls;
        if (isReturn(inst.cls))
            ++s.returns;
        if (isIndirect(inst.cls))
            ++s.indirect;
        if (inst.taken)
            ++s.controlTransfers;
    }
    return s;
}

InMemoryTrace
captureTrace(TraceSource &src, std::size_t limit)
{
    InMemoryTrace out;
    DynInst inst;
    while ((limit == 0 || out.size() < limit) && src.next(inst))
        out.append(inst);
    return out;
}

} // namespace mbbp

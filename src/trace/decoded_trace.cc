#include "trace/decoded_trace.hh"

#include "util/logging.hh"

namespace mbbp
{

DecodedTrace
DecodedTrace::build(const InMemoryTrace &trace,
                    const ICacheConfig &geom)
{
    DecodedTrace dec;
    dec.geom_ = geom;
    dec.insts_ = trace.insts();
    dec.image_ = StaticImage::fromTrace(trace);

    const ICacheModel cache(geom);
    const unsigned line_size = cache.lineSize();
    const std::vector<DynInst> &insts = dec.insts_;
    const std::size_t n = insts.size();

    // Segmentation, identical to BlockStream: consecutive slices of
    // the stream, cut at capacity or the first taken transfer; the
    // final block (successor unknown) is dropped.
    std::size_t i = 0;
    while (i < n) {
        const std::size_t first = i;
        const Addr start = insts[first].pc;
        const unsigned capacity = cache.capacityAt(start);

        unsigned cnt = 0;
        int exit_idx = -1;
        bool complete = false;
        while (cnt < capacity) {
            const bool ended = insts[i].taken;
            ++cnt;
            ++i;
            if (i >= n)
                break;      // successor unknown: drop this block
            mbbp_assert(ended || insts[i].pc == insts[i - 1].pc + 1,
                        "trace is not sequential within a block");
            if (ended) {
                exit_idx = static_cast<int>(cnt) - 1;
                complete = true;
                break;
            }
            if (cnt == capacity)
                complete = true;
        }
        if (!complete)
            break;

        // Per-block derived facts, computed once here so the engines
        // never rescan the instructions.
        uint64_t mask = 0;
        unsigned conds = 0, not_taken = 0, branches = 0, near = 0;
        for (unsigned j = 0; j < cnt; ++j) {
            const DynInst &inst = insts[first + j];
            if (!isControl(inst.cls))
                continue;
            ++branches;
            if (!isCondBranch(inst.cls))
                continue;
            if (conds < 63)
                mask |= static_cast<uint64_t>(inst.taken) << conds;
            ++conds;
            if (!inst.taken)
                ++not_taken;
            BitCode c = computeBitCode(inst.cls, inst.pc, inst.target,
                                       line_size, true);
            if (bitCodeIsNear(c))
                ++near;
        }

        RasOp ras_op = RasOp::None;
        if (exit_idx >= 0) {
            const DynInst &e = insts[first + exit_idx];
            if (isCall(e.cls))
                ras_op = RasOp::Push;
            else if (isReturn(e.cls))
                ras_op = RasOp::Pop;
        }

        // Window codes cover the whole capacity window, including the
        // static instructions past a taken exit.
        const uint32_t codes_off =
            static_cast<uint32_t>(dec.codesNear_.size());
        for (unsigned j = 0; j < capacity; ++j) {
            const Addr pc = start + j;
            const StaticInfo info = dec.image_.lookup(pc);
            const BitCode cn = computeBitCode(info.cls, pc, info.target,
                                              line_size, true);
            dec.codesNear_.push_back(cn);
            dec.codesPlain_.push_back(
                bitCodeIsCond(cn) ? BitCode::CondLong : cn);
        }

        dec.startPc_.push_back(start);
        dec.nextPc_.push_back(insts[first + cnt].pc);
        dec.firstInst_.push_back(static_cast<uint32_t>(first));
        dec.numInsts_.push_back(static_cast<uint16_t>(cnt));
        dec.exitIdx_.push_back(static_cast<int16_t>(exit_idx));
        dec.condMask_.push_back(mask);
        dec.numConds_.push_back(static_cast<uint16_t>(conds));
        dec.numNotTaken_.push_back(static_cast<uint16_t>(not_taken));
        dec.branches_.push_back(static_cast<uint16_t>(branches));
        dec.nearConds_.push_back(static_cast<uint16_t>(near));
        dec.rasOp_.push_back(static_cast<uint8_t>(ras_op));
        dec.windowLen_.push_back(static_cast<uint16_t>(capacity));
        dec.codesOffset_.push_back(codes_off);
    }
    return dec;
}

std::size_t
DecodedTrace::bytes() const
{
    auto vec = [](const auto &v) {
        return v.capacity() * sizeof(v[0]);
    };
    return vec(insts_) + image_.bytes() + vec(startPc_) +
           vec(nextPc_) + vec(firstInst_) + vec(numInsts_) +
           vec(exitIdx_) + vec(condMask_) + vec(numConds_) +
           vec(numNotTaken_) + vec(branches_) + vec(nearConds_) +
           vec(rasOp_) + vec(windowLen_) + vec(codesOffset_) +
           vec(codesNear_) + vec(codesPlain_);
}

bool
DecodedTrace::geometryCompatible(const ICacheConfig &other) const
{
    return geom_.type == other.type &&
           geom_.blockWidth == other.blockWidth &&
           geom_.lineSize == other.lineSize;
}

} // namespace mbbp

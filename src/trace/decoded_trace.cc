#include "trace/decoded_trace.hh"

#include <type_traits>

#include "util/logging.hh"

namespace mbbp
{

std::size_t
DecodedTrace::Arrays::bytes() const
{
    auto vec = [](const auto &v) {
        return v.capacity() * sizeof(v[0]);
    };
    return vec(insts) + vec(startPc) + vec(nextPc) + vec(firstInst) +
           vec(numInsts) + vec(exitIdx) + vec(condMask) +
           vec(numConds) + vec(numNotTaken) + vec(branches) +
           vec(nearConds) + vec(rasOp) + vec(windowLen) +
           vec(codesOffset) + vec(codesNear) + vec(codesPlain);
}

void
DecodedTrace::adopt(std::shared_ptr<const Arrays> arrays)
{
    const Arrays &a = *arrays;
    auto ref = [](const auto &v) {
        using T = std::remove_reference_t<decltype(v[0])>;
        return ColumnRef<std::remove_const_t<T>>(v.data(), v.size());
    };
    insts_ = ref(a.insts);
    startPc_ = ref(a.startPc);
    nextPc_ = ref(a.nextPc);
    firstInst_ = ref(a.firstInst);
    numInsts_ = ref(a.numInsts);
    exitIdx_ = ref(a.exitIdx);
    condMask_ = ref(a.condMask);
    numConds_ = ref(a.numConds);
    numNotTaken_ = ref(a.numNotTaken);
    branches_ = ref(a.branches);
    nearConds_ = ref(a.nearConds);
    rasOp_ = ref(a.rasOp);
    windowLen_ = ref(a.windowLen);
    codesOffset_ = ref(a.codesOffset);
    codesNear_ = ref(a.codesNear);
    codesPlain_ = ref(a.codesPlain);
    ownedBytes_ = a.bytes();
    mappedBytes_ = 0;
    storage_ = std::move(arrays);
}

DecodedTrace
DecodedTrace::build(const InMemoryTrace &trace,
                    const ICacheConfig &geom)
{
    DecodedTrace dec;
    dec.geom_ = geom;
    dec.image_ = StaticImage::fromTrace(trace);

    auto arrays = std::make_shared<Arrays>();
    Arrays &a = *arrays;
    a.insts = trace.insts();

    const ICacheModel cache(geom);
    const unsigned line_size = cache.lineSize();
    const std::vector<DynInst> &insts = a.insts;
    const std::size_t n = insts.size();

    // Segmentation, identical to BlockStream: consecutive slices of
    // the stream, cut at capacity or the first taken transfer; the
    // final block (successor unknown) is dropped.
    std::size_t i = 0;
    while (i < n) {
        const std::size_t first = i;
        const Addr start = insts[first].pc;
        const unsigned capacity = cache.capacityAt(start);

        unsigned cnt = 0;
        int exit_idx = -1;
        bool complete = false;
        while (cnt < capacity) {
            const bool ended = insts[i].taken;
            ++cnt;
            ++i;
            if (i >= n)
                break;      // successor unknown: drop this block
            mbbp_assert(ended || insts[i].pc == insts[i - 1].pc + 1,
                        "trace is not sequential within a block");
            if (ended) {
                exit_idx = static_cast<int>(cnt) - 1;
                complete = true;
                break;
            }
            if (cnt == capacity)
                complete = true;
        }
        if (!complete)
            break;

        // Per-block derived facts, computed once here so the engines
        // never rescan the instructions.
        uint64_t mask = 0;
        unsigned conds = 0, not_taken = 0, branches = 0, near = 0;
        for (unsigned j = 0; j < cnt; ++j) {
            const DynInst &inst = insts[first + j];
            if (!isControl(inst.cls))
                continue;
            ++branches;
            if (!isCondBranch(inst.cls))
                continue;
            if (conds < 63)
                mask |= static_cast<uint64_t>(inst.taken) << conds;
            ++conds;
            if (!inst.taken)
                ++not_taken;
            BitCode c = computeBitCode(inst.cls, inst.pc, inst.target,
                                       line_size, true);
            if (bitCodeIsNear(c))
                ++near;
        }

        RasOp ras_op = RasOp::None;
        if (exit_idx >= 0) {
            const DynInst &e = insts[first + exit_idx];
            if (isCall(e.cls))
                ras_op = RasOp::Push;
            else if (isReturn(e.cls))
                ras_op = RasOp::Pop;
        }

        // Window codes cover the whole capacity window, including the
        // static instructions past a taken exit.
        const uint32_t codes_off =
            static_cast<uint32_t>(a.codesNear.size());
        for (unsigned j = 0; j < capacity; ++j) {
            const Addr pc = start + j;
            const StaticInfo info = dec.image_.lookup(pc);
            const BitCode cn = computeBitCode(info.cls, pc, info.target,
                                              line_size, true);
            a.codesNear.push_back(cn);
            a.codesPlain.push_back(
                bitCodeIsCond(cn) ? BitCode::CondLong : cn);
        }

        a.startPc.push_back(start);
        a.nextPc.push_back(insts[first + cnt].pc);
        a.firstInst.push_back(static_cast<uint32_t>(first));
        a.numInsts.push_back(static_cast<uint16_t>(cnt));
        a.exitIdx.push_back(static_cast<int16_t>(exit_idx));
        a.condMask.push_back(mask);
        a.numConds.push_back(static_cast<uint16_t>(conds));
        a.numNotTaken.push_back(static_cast<uint16_t>(not_taken));
        a.branches.push_back(static_cast<uint16_t>(branches));
        a.nearConds.push_back(static_cast<uint16_t>(near));
        a.rasOp.push_back(static_cast<uint8_t>(ras_op));
        a.windowLen.push_back(static_cast<uint16_t>(capacity));
        a.codesOffset.push_back(codes_off);
    }
    dec.adopt(std::move(arrays));
    return dec;
}

std::size_t
DecodedTrace::bytes() const
{
    return (mapped() ? mappedBytes_ : ownedBytes_) + image_.bytes();
}

bool
DecodedTrace::geometryCompatible(const ICacheConfig &other) const
{
    return geom_.type == other.type &&
           geom_.blockWidth == other.blockWidth &&
           geom_.lineSize == other.lineSize;
}

} // namespace mbbp

#include "trace/trace_file.hh"

#include <array>
#include <cstring>

#include "util/logging.hh"

namespace mbbp
{

namespace
{

constexpr std::array<char, 8> traceMagic =
    { 'M', 'B', 'B', 'P', 'T', 'R', 'C', '1' };

void
putU64(std::ofstream &out, uint64_t v)
{
    std::array<char, 8> buf;
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out.write(buf.data(), buf.size());
}

bool
getU64(std::ifstream &in, uint64_t &v)
{
    std::array<char, 8> buf;
    if (!in.read(buf.data(), buf.size()))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[i]))
             << (8 * i);
    return true;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : out_(path, std::ios::binary)
{
    if (!out_)
        mbbp_fatal("cannot open trace file for writing: ", path);
    out_.write(traceMagic.data(), traceMagic.size());
    putU64(out_, 0); // reserved + flags
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::write(const DynInst &inst)
{
    char cls = static_cast<char>(inst.cls);
    char taken = inst.taken ? 1 : 0;
    out_.put(cls);
    out_.put(taken);
    putU64(out_, inst.pc);
    if (isControl(inst.cls))
        putU64(out_, inst.target);
    ++records_;
}

void
TraceFileWriter::writeAll(const InMemoryTrace &trace)
{
    for (const auto &inst : trace.insts())
        write(inst);
}

void
TraceFileWriter::close()
{
    if (out_.is_open()) {
        out_.flush();
        out_.close();
    }
}

TraceFileReader::TraceFileReader(const std::string &path)
    : path_(path), in_(path, std::ios::binary)
{
    if (!in_)
        mbbp_fatal("cannot open trace file for reading: ", path);
    readHeader();
}

void
TraceFileReader::readHeader()
{
    std::array<char, 8> magic;
    if (!in_.read(magic.data(), magic.size()) ||
        std::memcmp(magic.data(), traceMagic.data(), 8) != 0) {
        mbbp_fatal("bad trace magic in ", path_);
    }
    uint64_t reserved;
    if (!getU64(in_, reserved))
        mbbp_fatal("truncated trace header in ", path_);
}

bool
TraceFileReader::next(DynInst &inst)
{
    int cls = in_.get();
    if (cls == std::ifstream::traits_type::eof())
        return false;
    int taken = in_.get();
    if (taken == std::ifstream::traits_type::eof())
        mbbp_fatal("truncated record in ", path_);
    if (cls < 0 || cls >= static_cast<int>(InstClass::NumClasses))
        mbbp_fatal("corrupt instruction class in ", path_);

    inst.cls = static_cast<InstClass>(cls);
    inst.taken = taken != 0;
    if (!getU64(in_, inst.pc))
        mbbp_fatal("truncated record in ", path_);
    inst.target = 0;
    if (isControl(inst.cls) && !getU64(in_, inst.target))
        mbbp_fatal("truncated record in ", path_);
    return true;
}

void
TraceFileReader::reset()
{
    in_.clear();
    in_.seekg(0, std::ios::beg);
    readHeader();
}

} // namespace mbbp

/**
 * @file
 * The shared replay artifact: a trace decoded once per (trace,
 * i-cache geometry) pair into everything the fetch engines consume
 * per block, so a design-space sweep replays the same decode from
 * read-only memory instead of re-deriving it for every
 * configuration.
 *
 * A DecodedTrace holds
 *  - the flat dynamic instruction array (a self-contained copy),
 *  - a structure-of-arrays block index, exactly the segmentation
 *    BlockStream produces: per block the start/next PC, the borrowed
 *    instruction span, the exit index, the conditional-outcome
 *    bitmask and counts, the RAS operation of the exit, and the
 *    per-category branch counts the statistics need,
 *  - the per-instruction BIT window codes of every block window (both
 *    the 3-bit near-block encoding and the 2-bit long form), laid out
 *    in one arena, and
 *  - the frozen (sorted flat array) StaticImage.
 *
 * Everything here is a pure function of (trace, geometry): engines
 * that differ in history bits, select tables, target arrays, BIT
 * size, penalties, ... all iterate the same artifact read-only, which
 * also makes it safe to share across sweep worker threads. Replaying
 * through a DecodedTrace is byte-identical to decoding per run.
 *
 * Storage is column-oriented and *borrowable*: the accessors read
 * through spans whose backing memory is either heap vectors (the
 * build() path) or a read-only file mapping (the artifact-file path,
 * trace/artifact_file.hh). One shared_ptr keeps whichever backing
 * store alive, so a mapped artifact replays zero-copy straight out
 * of the page cache.
 */

#ifndef MBBP_TRACE_DECODED_TRACE_HH
#define MBBP_TRACE_DECODED_TRACE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "fetch/block.hh"
#include "fetch/icache_model.hh"
#include "predict/bit_table.hh"
#include "trace/static_image.hh"
#include "trace/trace.hh"

namespace mbbp
{

/** What a block's exit does to the return address stack. */
enum class RasOp : uint8_t
{
    None = 0,
    Push,       //!< exit is a call: push exit PC + 1
    Pop         //!< exit is a return
};

/** A trace decoded once for a given i-cache geometry. */
class DecodedTrace
{
  public:
    /** A borrowed read-only column (heap- or mmap-backed). */
    template <typename T>
    class ColumnRef
    {
      public:
        ColumnRef() = default;
        ColumnRef(const T *data, std::size_t size)
            : data_(data), size_(size)
        {
        }

        const T &operator[](std::size_t i) const { return data_[i]; }
        const T *data() const { return data_; }
        std::size_t size() const { return size_; }
        const T *begin() const { return data_; }
        const T *end() const { return data_ + size_; }

      private:
        const T *data_ = nullptr;
        std::size_t size_ = 0;
    };

    DecodedTrace() = default;

    /**
     * Decode @p trace for @p geom. The artifact is self-contained
     * (the instruction stream is copied), so it may outlive the
     * source trace.
     */
    static DecodedTrace build(const InMemoryTrace &trace,
                              const ICacheConfig &geom);

    /** The geometry the index was cut for. */
    const ICacheConfig &geometry() const { return geom_; }

    /**
     * Does @p other segment identically? Banking never affects the
     * decode, so artifacts are shared across bank counts.
     */
    bool geometryCompatible(const ICacheConfig &other) const;

    const ColumnRef<DynInst> &insts() const { return insts_; }
    const StaticImage &image() const { return image_; }

    /**
     * Approximate footprint a cache budget charges. Heap-backed
     * artifacts report their vector bytes; mapped artifacts report
     * the mapped file size (shared, evictable pages -- but they
     * occupy address space and, when hot, page-cache memory).
     */
    std::size_t bytes() const;

    /** Is this artifact backed by a read-only file mapping? */
    bool mapped() const { return mappedBytes_ != 0; }

    /** @{ The block index. */
    std::size_t numBlocks() const { return startPc_.size(); }

    /** Borrow block @p i as a view into the shared array. */
    FetchBlock block(std::size_t i) const
    {
        return { startPc_[i], insts_.data() + firstInst_[i],
                 numInsts_[i], exitIdx_[i], nextPc_[i] };
    }

    Addr startPc(std::size_t i) const { return startPc_[i]; }
    Addr nextPc(std::size_t i) const { return nextPc_[i]; }
    uint64_t condOutcomes(std::size_t i) const { return condMask_[i]; }
    unsigned numInsts(std::size_t i) const { return numInsts_[i]; }
    unsigned numConds(std::size_t i) const { return numConds_[i]; }

    unsigned numNotTakenConds(std::size_t i) const
    {
        return numNotTaken_[i];
    }

    /** Control-transfer instructions executed in block @p i. */
    unsigned numBranches(std::size_t i) const { return branches_[i]; }

    /** Executed conditionals with near-block targets in block @p i. */
    unsigned numNearConds(std::size_t i) const { return nearConds_[i]; }

    RasOp rasOp(std::size_t i) const
    {
        return static_cast<RasOp>(rasOp_[i]);
    }
    /** @} */

    /** @{ Precomputed BIT window codes. */

    /** Window length = block capacity at the block's start address. */
    unsigned windowLen(std::size_t i) const { return windowLen_[i]; }

    /**
     * The true (pre-decoded) codes of block @p i's whole window, in
     * the near-block encoding when @p near_block, else with every
     * conditional reported as CondLong. windowLen(i) entries.
     */
    const BitCode *windowCodes(std::size_t i, bool near_block) const
    {
        const ColumnRef<BitCode> &arena =
            near_block ? codesNear_ : codesPlain_;
        return arena.data() + codesOffset_[i];
    }
    /** @} */

  private:
    friend class ArtifactCodec;     //!< (de)serializer, artifact_file.cc

    /** Owned column storage, the build() path's backing store. */
    struct Arrays
    {
        std::vector<DynInst> insts;
        std::vector<Addr> startPc;
        std::vector<Addr> nextPc;
        std::vector<uint32_t> firstInst;    //!< offset into insts
        std::vector<uint16_t> numInsts;
        std::vector<int16_t> exitIdx;       //!< -1 = fall-through
        std::vector<uint64_t> condMask;
        std::vector<uint16_t> numConds;
        std::vector<uint16_t> numNotTaken;
        std::vector<uint16_t> branches;
        std::vector<uint16_t> nearConds;
        std::vector<uint8_t> rasOp;
        std::vector<uint16_t> windowLen;
        std::vector<uint32_t> codesOffset;  //!< offset into the arenas

        // Window-code arenas, indexed by codesOffset; both encodings
        // are materialized so no per-block translation happens at
        // replay.
        std::vector<BitCode> codesNear;
        std::vector<BitCode> codesPlain;

        std::size_t bytes() const;
    };

    /** Point the spans at @p arrays and take (shared) ownership. */
    void adopt(std::shared_ptr<const Arrays> arrays);

    ICacheConfig geom_;
    StaticImage image_;

    /** Keeps the span backing alive: Arrays or a file mapping. */
    std::shared_ptr<const void> storage_;
    std::size_t ownedBytes_ = 0;    //!< heap column bytes (build path)
    std::size_t mappedBytes_ = 0;   //!< file size (artifact path)

    ColumnRef<DynInst> insts_;
    ColumnRef<Addr> startPc_;
    ColumnRef<Addr> nextPc_;
    ColumnRef<uint32_t> firstInst_;
    ColumnRef<uint16_t> numInsts_;
    ColumnRef<int16_t> exitIdx_;
    ColumnRef<uint64_t> condMask_;
    ColumnRef<uint16_t> numConds_;
    ColumnRef<uint16_t> numNotTaken_;
    ColumnRef<uint16_t> branches_;
    ColumnRef<uint16_t> nearConds_;
    ColumnRef<uint8_t> rasOp_;
    ColumnRef<uint16_t> windowLen_;
    ColumnRef<uint32_t> codesOffset_;
    ColumnRef<BitCode> codesNear_;
    ColumnRef<BitCode> codesPlain_;
};

} // namespace mbbp

#endif // MBBP_TRACE_DECODED_TRACE_HH

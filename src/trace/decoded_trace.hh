/**
 * @file
 * The shared replay artifact: a trace decoded once per (trace,
 * i-cache geometry) pair into everything the fetch engines consume
 * per block, so a design-space sweep replays the same decode from
 * read-only memory instead of re-deriving it for every
 * configuration.
 *
 * A DecodedTrace holds
 *  - the flat dynamic instruction array (a self-contained copy),
 *  - a structure-of-arrays block index, exactly the segmentation
 *    BlockStream produces: per block the start/next PC, the borrowed
 *    instruction span, the exit index, the conditional-outcome
 *    bitmask and counts, the RAS operation of the exit, and the
 *    per-category branch counts the statistics need,
 *  - the per-instruction BIT window codes of every block window (both
 *    the 3-bit near-block encoding and the 2-bit long form), laid out
 *    in one arena, and
 *  - the frozen (sorted flat array) StaticImage.
 *
 * Everything here is a pure function of (trace, geometry): engines
 * that differ in history bits, select tables, target arrays, BIT
 * size, penalties, ... all iterate the same artifact read-only, which
 * also makes it safe to share across sweep worker threads. Replaying
 * through a DecodedTrace is byte-identical to decoding per run.
 */

#ifndef MBBP_TRACE_DECODED_TRACE_HH
#define MBBP_TRACE_DECODED_TRACE_HH

#include <cstdint>
#include <vector>

#include "fetch/block.hh"
#include "fetch/icache_model.hh"
#include "predict/bit_table.hh"
#include "trace/static_image.hh"
#include "trace/trace.hh"

namespace mbbp
{

/** What a block's exit does to the return address stack. */
enum class RasOp : uint8_t
{
    None = 0,
    Push,       //!< exit is a call: push exit PC + 1
    Pop         //!< exit is a return
};

/** A trace decoded once for a given i-cache geometry. */
class DecodedTrace
{
  public:
    DecodedTrace() = default;

    /**
     * Decode @p trace for @p geom. The artifact is self-contained
     * (the instruction stream is copied), so it may outlive the
     * source trace.
     */
    static DecodedTrace build(const InMemoryTrace &trace,
                              const ICacheConfig &geom);

    /** The geometry the index was cut for. */
    const ICacheConfig &geometry() const { return geom_; }

    /**
     * Does @p other segment identically? Banking never affects the
     * decode, so artifacts are shared across bank counts.
     */
    bool geometryCompatible(const ICacheConfig &other) const;

    const std::vector<DynInst> &insts() const { return insts_; }
    const StaticImage &image() const { return image_; }

    /** Approximate heap footprint -- what a cache budget charges. */
    std::size_t bytes() const;

    /** @{ The block index. */
    std::size_t numBlocks() const { return startPc_.size(); }

    /** Borrow block @p i as a view into the shared array. */
    FetchBlock block(std::size_t i) const
    {
        return { startPc_[i], insts_.data() + firstInst_[i],
                 numInsts_[i], exitIdx_[i], nextPc_[i] };
    }

    Addr startPc(std::size_t i) const { return startPc_[i]; }
    Addr nextPc(std::size_t i) const { return nextPc_[i]; }
    uint64_t condOutcomes(std::size_t i) const { return condMask_[i]; }
    unsigned numInsts(std::size_t i) const { return numInsts_[i]; }
    unsigned numConds(std::size_t i) const { return numConds_[i]; }

    unsigned numNotTakenConds(std::size_t i) const
    {
        return numNotTaken_[i];
    }

    /** Control-transfer instructions executed in block @p i. */
    unsigned numBranches(std::size_t i) const { return branches_[i]; }

    /** Executed conditionals with near-block targets in block @p i. */
    unsigned numNearConds(std::size_t i) const { return nearConds_[i]; }

    RasOp rasOp(std::size_t i) const
    {
        return static_cast<RasOp>(rasOp_[i]);
    }
    /** @} */

    /** @{ Precomputed BIT window codes. */

    /** Window length = block capacity at the block's start address. */
    unsigned windowLen(std::size_t i) const { return windowLen_[i]; }

    /**
     * The true (pre-decoded) codes of block @p i's whole window, in
     * the near-block encoding when @p near_block, else with every
     * conditional reported as CondLong. windowLen(i) entries.
     */
    const BitCode *windowCodes(std::size_t i, bool near_block) const
    {
        const std::vector<BitCode> &arena =
            near_block ? codesNear_ : codesPlain_;
        return arena.data() + codesOffset_[i];
    }
    /** @} */

  private:
    ICacheConfig geom_;
    std::vector<DynInst> insts_;
    StaticImage image_;

    // Block index, one SoA slot per block (BlockStream order).
    std::vector<Addr> startPc_;
    std::vector<Addr> nextPc_;
    std::vector<uint32_t> firstInst_;   //!< offset into insts_
    std::vector<uint16_t> numInsts_;
    std::vector<int16_t> exitIdx_;      //!< -1 = fall-through
    std::vector<uint64_t> condMask_;
    std::vector<uint16_t> numConds_;
    std::vector<uint16_t> numNotTaken_;
    std::vector<uint16_t> branches_;
    std::vector<uint16_t> nearConds_;
    std::vector<uint8_t> rasOp_;
    std::vector<uint16_t> windowLen_;
    std::vector<uint32_t> codesOffset_; //!< offset into the arenas

    // Window-code arenas, indexed by codesOffset_; both encodings are
    // materialized so no per-block translation happens at replay.
    std::vector<BitCode> codesNear_;
    std::vector<BitCode> codesPlain_;
};

} // namespace mbbp

#endif // MBBP_TRACE_DECODED_TRACE_HH

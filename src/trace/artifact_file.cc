#include "trace/artifact_file.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <type_traits>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/obs.hh"
#include "util/logging.hh"

namespace mbbp
{

namespace
{

/**
 * Bump when the file layout *or anything upstream of the decode*
 * (trace generator, segmentation rules) changes: the version salts
 * the key hash, so stale artifacts from older builds simply miss.
 */
constexpr uint32_t kFormatVersion = 1;

constexpr char kMagic[8] = { 'M', 'B', 'B', 'P',
                             'A', 'R', 'T', '1' };
constexpr uint32_t kByteOrder = 0x01020304;
constexpr std::size_t kSectionAlign = 64;

/** Section ids, also the fixed write order. */
enum SectionId : uint32_t
{
    kInsts = 1,
    kStartPc,
    kNextPc,
    kFirstInst,
    kNumInsts,
    kExitIdx,
    kCondMask,
    kNumConds,
    kNumNotTaken,
    kBranches,
    kNearConds,
    kRasOp,
    kWindowLen,
    kCodesOffset,
    kCodesNear,
    kCodesPlain,
    kImageKeys,
    kImageInfos,
    kNumSectionIds = kImageInfos
};

struct FileHeader
{
    char magic[8];
    uint32_t version;
    uint32_t byteOrder;
    uint64_t keyHash;
    uint64_t payloadBytes;      //!< bytes after the header block
    uint64_t payloadHash;       //!< FNV-1a of the payload
    uint64_t instructions;
    uint32_t blockWidth;
    uint32_t lineSize;
    uint32_t cacheType;
    uint32_t sizeofDynInst;
    uint32_t sizeofStaticInfo;
    uint32_t sizeofBitCode;
    uint32_t numSections;
    uint32_t reserved;
};
static_assert(sizeof(FileHeader) == 80,
              "header layout must be padding-free");

struct SectionEntry
{
    uint32_t id;
    uint32_t elemSize;
    uint64_t count;
    uint64_t offset;            //!< from file start; 64-aligned
};
static_assert(sizeof(SectionEntry) == 24,
              "section entry layout must be padding-free");

uint64_t
fnv1a(const void *data, std::size_t n,
      uint64_t h = 14695981039346656037ULL)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

std::size_t
alignUp(std::size_t v)
{
    return (v + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

/** A read-only whole-file mapping; unmapped on destruction. */
class MappedFile
{
  public:
    ~MappedFile()
    {
        if (data_ != MAP_FAILED)
            ::munmap(data_, size_);
    }

    static std::shared_ptr<MappedFile> open(const std::string &path)
    {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            return nullptr;
        struct stat st;
        if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
            ::close(fd);
            return nullptr;
        }
        auto mf = std::make_shared<MappedFile>();
        mf->size_ = static_cast<std::size_t>(st.st_size);
        mf->data_ = ::mmap(nullptr, mf->size_, PROT_READ,
                           MAP_PRIVATE, fd, 0);
        ::close(fd);    // the mapping holds its own reference
        if (mf->data_ == MAP_FAILED)
            return nullptr;
        return mf;
    }

    const unsigned char *data() const
    {
        return static_cast<const unsigned char *>(data_);
    }
    std::size_t size() const { return size_; }

  private:
    void *data_ = MAP_FAILED;
    std::size_t size_ = 0;
};

obs::Counter &
rejectCounter()
{
    static obs::Counter &c = obs::counter("artifact.store.rejects");
    return c;
}

} // namespace

ArtifactKey
ArtifactKey::of(const std::string &trace_name, uint64_t instructions,
                const ICacheConfig &geom)
{
    ArtifactKey key;
    key.trace = trace_name;
    key.instructions = instructions;
    key.cacheType = static_cast<uint8_t>(geom.type);
    key.blockWidth = geom.blockWidth;
    key.lineSize = geom.lineSize;
    return key;
}

uint64_t
ArtifactKey::hash() const
{
    uint64_t h = fnv1a(&kFormatVersion, sizeof(kFormatVersion));
    h = fnv1a(trace.data(), trace.size(), h);
    h = fnv1a(&instructions, sizeof(instructions), h);
    h = fnv1a(&cacheType, sizeof(cacheType), h);
    h = fnv1a(&blockWidth, sizeof(blockWidth), h);
    h = fnv1a(&lineSize, sizeof(lineSize), h);
    return h;
}

std::string
ArtifactKey::fileName() const
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "-%llu-%016llx.mbbpart",
                  static_cast<unsigned long long>(instructions),
                  static_cast<unsigned long long>(hash()));
    return trace + buf;
}

/**
 * Private-member bridge between DecodedTrace and the file layout;
 * the only code that sees the spans directly.
 */
class ArtifactCodec
{
  public:
    struct Column
    {
        uint32_t id;
        uint32_t elemSize;
        uint64_t count;
        const void *data;
    };

    /** Every column of @p dec in fixed section order. */
    static std::vector<Column> columns(const DecodedTrace &dec)
    {
        auto col = [](uint32_t id, const auto &span) {
            using T = std::remove_cvref_t<decltype(span[0])>;
            return Column{ id, sizeof(T), span.size(), span.data() };
        };
        const StaticImage &img = dec.image();
        mbbp_assert(img.frozen(),
                    "artifact requires a frozen StaticImage");
        return {
            col(kInsts, dec.insts_),
            col(kStartPc, dec.startPc_),
            col(kNextPc, dec.nextPc_),
            col(kFirstInst, dec.firstInst_),
            col(kNumInsts, dec.numInsts_),
            col(kExitIdx, dec.exitIdx_),
            col(kCondMask, dec.condMask_),
            col(kNumConds, dec.numConds_),
            col(kNumNotTaken, dec.numNotTaken_),
            col(kBranches, dec.branches_),
            col(kNearConds, dec.nearConds_),
            col(kRasOp, dec.rasOp_),
            col(kWindowLen, dec.windowLen_),
            col(kCodesOffset, dec.codesOffset_),
            col(kCodesNear, dec.codesNear_),
            col(kCodesPlain, dec.codesPlain_),
            Column{ kImageKeys, sizeof(Addr),
                    img.frozenKeys().size(),
                    img.frozenKeys().data() },
            Column{ kImageInfos, sizeof(StaticInfo),
                    img.frozenInfos().size(),
                    img.frozenInfos().data() },
        };
    }

    /**
     * Point @p dec's spans into the mapped sections (already
     * validated for size/alignment) and hand it shared ownership of
     * the mapping. Returns false if the cross-column invariants the
     * replay relies on do not hold.
     */
    static bool fromMapping(DecodedTrace &dec,
                            std::shared_ptr<MappedFile> map,
                            const SectionEntry sections[],
                            const ICacheConfig &geom)
    {
        const unsigned char *base = map->data();
        auto span = [&](SectionId id, auto &out) {
            using T = std::remove_cvref_t<decltype(out[0])>;
            const SectionEntry &s = sections[id - 1];
            out = DecodedTrace::ColumnRef<T>(
                reinterpret_cast<const T *>(base + s.offset),
                s.count);
        };
        span(kInsts, dec.insts_);
        span(kStartPc, dec.startPc_);
        span(kNextPc, dec.nextPc_);
        span(kFirstInst, dec.firstInst_);
        span(kNumInsts, dec.numInsts_);
        span(kExitIdx, dec.exitIdx_);
        span(kCondMask, dec.condMask_);
        span(kNumConds, dec.numConds_);
        span(kNumNotTaken, dec.numNotTaken_);
        span(kBranches, dec.branches_);
        span(kNearConds, dec.nearConds_);
        span(kRasOp, dec.rasOp_);
        span(kWindowLen, dec.windowLen_);
        span(kCodesOffset, dec.codesOffset_);
        span(kCodesNear, dec.codesNear_);
        span(kCodesPlain, dec.codesPlain_);

        // Every block column must agree on the block count, and the
        // per-block offsets must stay inside the shared arrays: a
        // forged-but-hash-consistent file must still not be able to
        // make the replay read out of bounds.
        const std::size_t blocks = dec.startPc_.size();
        if (dec.nextPc_.size() != blocks ||
            dec.firstInst_.size() != blocks ||
            dec.numInsts_.size() != blocks ||
            dec.exitIdx_.size() != blocks ||
            dec.condMask_.size() != blocks ||
            dec.numConds_.size() != blocks ||
            dec.numNotTaken_.size() != blocks ||
            dec.branches_.size() != blocks ||
            dec.nearConds_.size() != blocks ||
            dec.rasOp_.size() != blocks ||
            dec.windowLen_.size() != blocks ||
            dec.codesOffset_.size() != blocks)
            return false;
        if (dec.codesNear_.size() != dec.codesPlain_.size())
            return false;
        const std::size_t ninsts = dec.insts_.size();
        const std::size_t ncodes = dec.codesNear_.size();
        for (std::size_t i = 0; i < blocks; ++i) {
            const std::size_t cnt = dec.numInsts_[i];
            if (cnt == 0 || dec.firstInst_[i] + cnt > ninsts)
                return false;
            if (dec.exitIdx_[i] < -1 ||
                dec.exitIdx_[i] >= static_cast<int>(cnt))
                return false;
            if (static_cast<std::size_t>(dec.codesOffset_[i]) +
                    dec.windowLen_[i] > ncodes)
                return false;
            if (dec.windowLen_[i] < cnt)
                return false;
            if (dec.rasOp_[i] >
                static_cast<uint8_t>(RasOp::Pop))
                return false;
        }

        const SectionEntry &keys = sections[kImageKeys - 1];
        const SectionEntry &infos = sections[kImageInfos - 1];
        if (keys.count != infos.count)
            return false;
        std::vector<Addr> image_keys(
            reinterpret_cast<const Addr *>(base + keys.offset),
            reinterpret_cast<const Addr *>(base + keys.offset) +
                keys.count);
        std::vector<StaticInfo> image_infos(
            reinterpret_cast<const StaticInfo *>(base + infos.offset),
            reinterpret_cast<const StaticInfo *>(base +
                                                 infos.offset) +
                infos.count);
        dec.image_ = StaticImage::fromFlat(image_keys, image_infos);
        dec.geom_ = geom;
        dec.mappedBytes_ = map->size();
        dec.ownedBytes_ = 0;
        dec.storage_ = std::move(map);
        return true;
    }
};

bool
saveDecodedArtifact(const std::string &path, const ArtifactKey &key,
                    const DecodedTrace &dec)
{
    obs::ScopedTimer span("artifact.save", "save " + key.trace);

    std::vector<ArtifactCodec::Column> cols =
        ArtifactCodec::columns(dec);

    // Lay the sections out after the header block, 64-byte aligned.
    const std::size_t header_bytes = alignUp(
        sizeof(FileHeader) + cols.size() * sizeof(SectionEntry));
    std::vector<SectionEntry> table;
    table.reserve(cols.size());
    std::size_t offset = header_bytes;
    for (const auto &c : cols) {
        table.push_back({ c.id, c.elemSize, c.count, offset });
        offset = alignUp(offset + c.count * c.elemSize);
    }
    const std::size_t file_bytes = offset;

    // Assemble the payload in one buffer so it can be hashed and
    // written atomically (temp file + rename).
    std::vector<unsigned char> payload(file_bytes - header_bytes, 0);
    for (std::size_t i = 0; i < cols.size(); ++i)
        if (cols[i].count != 0)
            std::memcpy(payload.data() +
                            (table[i].offset - header_bytes),
                        cols[i].data,
                        cols[i].count * cols[i].elemSize);

    FileHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kFormatVersion;
    hdr.byteOrder = kByteOrder;
    hdr.keyHash = key.hash();
    hdr.payloadBytes = payload.size();
    hdr.payloadHash = fnv1a(payload.data(), payload.size());
    hdr.instructions = key.instructions;
    hdr.blockWidth = key.blockWidth;
    hdr.lineSize = key.lineSize;
    hdr.cacheType = key.cacheType;
    hdr.sizeofDynInst = sizeof(DynInst);
    hdr.sizeofStaticInfo = sizeof(StaticInfo);
    hdr.sizeofBitCode = sizeof(BitCode);
    hdr.numSections = static_cast<uint32_t>(cols.size());

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            mbbp_warn("artifact: cannot write ", tmp);
            return false;
        }
        out.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
        out.write(reinterpret_cast<const char *>(table.data()),
                  static_cast<std::streamsize>(
                      table.size() * sizeof(SectionEntry)));
        // Pad the header block out to the first section offset.
        std::vector<char> pad(
            header_bytes - sizeof(hdr) -
                table.size() * sizeof(SectionEntry),
            0);
        out.write(pad.data(),
                  static_cast<std::streamsize>(pad.size()));
        out.write(reinterpret_cast<const char *>(payload.data()),
                  static_cast<std::streamsize>(payload.size()));
        if (!out) {
            mbbp_warn("artifact: short write on ", tmp);
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        mbbp_warn("artifact: cannot rename ", tmp, " to ", path);
        std::remove(tmp.c_str());
        return false;
    }
    obs::flushCounter("artifact.store.saves", 1);
    return true;
}

std::shared_ptr<const DecodedTrace>
loadDecodedArtifact(const std::string &path, const ArtifactKey &key,
                    const ICacheConfig &geom)
{
    std::shared_ptr<MappedFile> map = MappedFile::open(path);
    if (!map)
        return nullptr;     // plain miss: no file to judge

    auto reject = [&](const char *why) {
        mbbp_warn("artifact: rejecting ", path, ": ", why);
        rejectCounter().add();
        return nullptr;
    };

    obs::ScopedTimer span("artifact.load", "load " + key.trace);

    if (map->size() < sizeof(FileHeader))
        return reject("truncated header");
    FileHeader hdr;
    std::memcpy(&hdr, map->data(), sizeof(hdr));
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        return reject("bad magic");
    if (hdr.version != kFormatVersion)
        return reject("format version mismatch");
    if (hdr.byteOrder != kByteOrder)
        return reject("byte order mismatch");
    if (hdr.sizeofDynInst != sizeof(DynInst) ||
        hdr.sizeofStaticInfo != sizeof(StaticInfo) ||
        hdr.sizeofBitCode != sizeof(BitCode))
        return reject("ABI layout mismatch");
    if (hdr.keyHash != key.hash() ||
        hdr.instructions != key.instructions ||
        hdr.blockWidth != key.blockWidth ||
        hdr.lineSize != key.lineSize ||
        hdr.cacheType != key.cacheType)
        return reject("key mismatch");
    if (hdr.numSections != kNumSectionIds)
        return reject("unexpected section count");

    const std::size_t header_bytes = alignUp(
        sizeof(FileHeader) + hdr.numSections * sizeof(SectionEntry));
    if (map->size() < header_bytes)
        return reject("truncated section table");
    if (hdr.payloadBytes != map->size() - header_bytes)
        return reject("payload size mismatch");
    if (fnv1a(map->data() + header_bytes, hdr.payloadBytes) !=
        hdr.payloadHash)
        return reject("payload hash mismatch");

    // The table must list every section once, in id order, with the
    // advertised element sizes, inside the file, and aligned.
    SectionEntry sections[kNumSectionIds];
    std::memcpy(sections, map->data() + sizeof(FileHeader),
                sizeof(sections));
    constexpr uint32_t elem_sizes[kNumSectionIds] = {
        sizeof(DynInst),  sizeof(Addr),     sizeof(Addr),
        sizeof(uint32_t), sizeof(uint16_t), sizeof(int16_t),
        sizeof(uint64_t), sizeof(uint16_t), sizeof(uint16_t),
        sizeof(uint16_t), sizeof(uint16_t), sizeof(uint8_t),
        sizeof(uint16_t), sizeof(uint32_t), sizeof(BitCode),
        sizeof(BitCode),  sizeof(Addr),     sizeof(StaticInfo),
    };
    for (uint32_t i = 0; i < kNumSectionIds; ++i) {
        const SectionEntry &s = sections[i];
        if (s.id != i + 1 || s.elemSize != elem_sizes[i])
            return reject("malformed section table");
        if (s.offset % kSectionAlign != 0 ||
            s.offset < header_bytes ||
            s.count > (map->size() - s.offset) / elem_sizes[i])
            return reject("section out of bounds");
    }

    auto dec = std::make_shared<DecodedTrace>();
    if (!ArtifactCodec::fromMapping(*dec, std::move(map), sections,
                                    geom))
        return reject("inconsistent block index");
    return dec;
}

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        mbbp_warn("artifact: cannot create store directory ", dir_,
                  ": ", ec.message());
}

std::string
ArtifactStore::pathFor(const ArtifactKey &key) const
{
    return dir_ + "/" + key.fileName();
}

std::shared_ptr<const DecodedTrace>
ArtifactStore::load(const ArtifactKey &key,
                    const ICacheConfig &geom) const
{
    std::shared_ptr<const DecodedTrace> dec =
        loadDecodedArtifact(pathFor(key), key, geom);
    obs::flushCounter(dec ? "artifact.store.hits"
                          : "artifact.store.misses",
                      1);
    return dec;
}

void
ArtifactStore::save(const ArtifactKey &key,
                    const DecodedTrace &dec) const
{
    if (!saveDecodedArtifact(pathFor(key), key, dec))
        obs::flushCounter("artifact.store.save_failures", 1);
}

} // namespace mbbp

/**
 * @file
 * A static view of the program text reconstructed from (or supplied
 * with) a trace: instruction class and static branch target per PC.
 *
 * The fetch predictors scan *cache lines*, so they need the types of
 * instructions that sit after a taken branch in the same line even
 * though the correct-path trace never executes them from there. The
 * pre-decoded BIT-in-cache configuration has exactly this static
 * knowledge; StaticImage provides it to the simulator. PCs never seen
 * report NonBranch, which matches what a pre-decoder would emit for
 * data or padding.
 *
 * Two representations share the class: a hash map while the image is
 * being built incrementally with add(), and -- after freeze() -- a
 * sorted flat (keys, infos) pair searched with a branchless binary
 * search. The frozen form is what the replay artifact ships to the
 * engines: lookup() in the fetch inner loop touches two small dense
 * arrays instead of chasing hash buckets.
 */

#ifndef MBBP_TRACE_STATIC_IMAGE_HH
#define MBBP_TRACE_STATIC_IMAGE_HH

#include <unordered_map>
#include <vector>

#include "trace/trace.hh"

namespace mbbp
{

/** Per-PC static instruction information. */
struct StaticInfo
{
    InstClass cls = InstClass::NonBranch;
    Addr target = 0;            //!< static target (direct branches)
    bool hasStaticTarget = false;
};

/** PC -> static info map. */
class StaticImage
{
  public:
    StaticImage() = default;

    /** Record one instruction (later records win for target info). */
    void add(const DynInst &inst);

    /** Scan a whole trace; the result is frozen. */
    static StaticImage fromTrace(const InMemoryTrace &trace);

    /**
     * Convert to the sorted flat representation. lookup() afterwards
     * is a branchless binary search; a subsequent add() falls back to
     * the map until freeze() is called again.
     */
    void freeze();

    /** Is the flat representation current? */
    bool frozen() const { return frozen_; }

    /** @{ Flat-form access for (de)serialization; require frozen(). */
    const std::vector<Addr> &frozenKeys() const { return keys_; }
    const std::vector<StaticInfo> &frozenInfos() const
    {
        return infos_;
    }

    /**
     * Rebuild a frozen image from parallel (keys, infos) arrays, the
     * inverse of frozenKeys()/frozenInfos(). The artifact-file loader
     * uses this; both representations are populated so a later add()
     * still behaves.
     */
    static StaticImage fromFlat(const std::vector<Addr> &keys,
                                const std::vector<StaticInfo> &infos);
    /** @} */

    /** Look up a PC; unknown PCs are NonBranch. */
    StaticInfo lookup(Addr pc) const;

    std::size_t size() const { return map_.size(); }

    /** Approximate heap footprint (both representations). */
    std::size_t bytes() const;

  private:
    std::unordered_map<Addr, StaticInfo> map_;
    std::vector<Addr> keys_;            //!< sorted PCs (frozen form)
    std::vector<StaticInfo> infos_;     //!< parallel to keys_
    bool frozen_ = false;
};

} // namespace mbbp

#endif // MBBP_TRACE_STATIC_IMAGE_HH

/**
 * @file
 * A static view of the program text reconstructed from (or supplied
 * with) a trace: instruction class and static branch target per PC.
 *
 * The fetch predictors scan *cache lines*, so they need the types of
 * instructions that sit after a taken branch in the same line even
 * though the correct-path trace never executes them from there. The
 * pre-decoded BIT-in-cache configuration has exactly this static
 * knowledge; StaticImage provides it to the simulator. PCs never seen
 * report NonBranch, which matches what a pre-decoder would emit for
 * data or padding.
 */

#ifndef MBBP_TRACE_STATIC_IMAGE_HH
#define MBBP_TRACE_STATIC_IMAGE_HH

#include <unordered_map>

#include "trace/trace.hh"

namespace mbbp
{

/** Per-PC static instruction information. */
struct StaticInfo
{
    InstClass cls = InstClass::NonBranch;
    Addr target = 0;            //!< static target (direct branches)
    bool hasStaticTarget = false;
};

/** PC -> static info map. */
class StaticImage
{
  public:
    StaticImage() = default;

    /** Record one instruction (later records win for target info). */
    void add(const DynInst &inst);

    /** Scan a whole trace. */
    static StaticImage fromTrace(const InMemoryTrace &trace);

    /** Look up a PC; unknown PCs are NonBranch. */
    StaticInfo lookup(Addr pc) const;

    std::size_t size() const { return map_.size(); }

  private:
    std::unordered_map<Addr, StaticInfo> map_;
};

} // namespace mbbp

#endif // MBBP_TRACE_STATIC_IMAGE_HH

#include "trace/static_image.hh"

namespace mbbp
{

void
StaticImage::add(const DynInst &inst)
{
    StaticInfo &info = map_[inst.pc];
    info.cls = inst.cls;
    if (isDirect(inst.cls)) {
        // Direct targets are instruction-encoded and thus static;
        // conditional records carry the target even when not taken.
        info.target = inst.target;
        info.hasStaticTarget = true;
    } else if (inst.taken) {
        // Remember the most recent dynamic target of an indirect
        // transfer; callers must not rely on it being static.
        info.target = inst.target;
    }
}

StaticImage
StaticImage::fromTrace(const InMemoryTrace &trace)
{
    StaticImage img;
    for (const auto &inst : trace.insts())
        img.add(inst);
    return img;
}

StaticInfo
StaticImage::lookup(Addr pc) const
{
    auto it = map_.find(pc);
    return it == map_.end() ? StaticInfo{} : it->second;
}

} // namespace mbbp

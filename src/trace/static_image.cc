#include "trace/static_image.hh"

#include <algorithm>

namespace mbbp
{

void
StaticImage::add(const DynInst &inst)
{
    StaticInfo &info = map_[inst.pc];
    info.cls = inst.cls;
    if (isDirect(inst.cls)) {
        // Direct targets are instruction-encoded and thus static;
        // conditional records carry the target even when not taken.
        info.target = inst.target;
        info.hasStaticTarget = true;
    } else if (inst.taken) {
        // Remember the most recent dynamic target of an indirect
        // transfer; callers must not rely on it being static.
        info.target = inst.target;
    }
    frozen_ = false;
}

StaticImage
StaticImage::fromTrace(const InMemoryTrace &trace)
{
    StaticImage img;
    for (const auto &inst : trace.insts())
        img.add(inst);
    img.freeze();
    return img;
}

void
StaticImage::freeze()
{
    keys_.clear();
    keys_.reserve(map_.size());
    for (const auto &kv : map_)
        keys_.push_back(kv.first);
    std::sort(keys_.begin(), keys_.end());
    infos_.clear();
    infos_.reserve(keys_.size());
    for (Addr pc : keys_)
        infos_.push_back(map_.find(pc)->second);
    frozen_ = true;
}

StaticImage
StaticImage::fromFlat(const std::vector<Addr> &keys,
                      const std::vector<StaticInfo> &infos)
{
    StaticImage img;
    for (std::size_t i = 0; i < keys.size(); ++i)
        img.map_.emplace(keys[i], infos[i]);
    img.freeze();
    return img;
}

std::size_t
StaticImage::bytes() const
{
    // The map's nodes carry bucket/next-pointer overhead the standard
    // does not expose; 2 pointers per node is a fair estimate.
    std::size_t map_bytes =
        map_.size() *
        (sizeof(Addr) + sizeof(StaticInfo) + 2 * sizeof(void *));
    return map_bytes + keys_.capacity() * sizeof(Addr) +
           infos_.capacity() * sizeof(StaticInfo);
}

StaticInfo
StaticImage::lookup(Addr pc) const
{
    if (!frozen_) {
        auto it = map_.find(pc);
        return it == map_.end() ? StaticInfo{} : it->second;
    }
    if (keys_.empty())
        return {};
    // Branchless lower bound: every iteration halves the range with a
    // conditional move, no unpredictable compare-and-jump.
    const Addr *base = keys_.data();
    std::size_t len = keys_.size();
    while (len > 1) {
        std::size_t half = len / 2;
        base += (base[half - 1] < pc) ? half : 0;
        len -= half;
    }
    std::size_t idx = static_cast<std::size_t>(base - keys_.data());
    return *base == pc ? infos_[idx] : StaticInfo{};
}

} // namespace mbbp

/**
 * @file
 * Trace abstraction: the fetch engines consume a TraceSource — a
 * forward iterator over the dynamic instruction stream — so they are
 * agnostic to whether instructions come from the CFG interpreter, an
 * in-memory vector, or a trace file.
 */

#ifndef MBBP_TRACE_TRACE_HH
#define MBBP_TRACE_TRACE_HH

#include <cstddef>
#include <vector>

#include "isa/inst.hh"

namespace mbbp
{

/** A forward-only producer of dynamic instructions. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction.
     * @param inst Filled in on success.
     * @retval true an instruction was produced.
     * @retval false the stream is exhausted.
     */
    virtual bool next(DynInst &inst) = 0;

    /** Restart the stream from the beginning, if supported. */
    virtual void reset() = 0;
};

/** A trace held entirely in memory; replayable. */
class InMemoryTrace : public TraceSource
{
  public:
    InMemoryTrace() = default;
    explicit InMemoryTrace(std::vector<DynInst> insts);

    bool next(DynInst &inst) override;
    void reset() override;

    void append(const DynInst &inst) { insts_.push_back(inst); }
    std::size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }
    const DynInst &at(std::size_t i) const { return insts_.at(i); }
    const std::vector<DynInst> &insts() const { return insts_; }

    /** Basic stream statistics, used by tests and workload tuning. */
    struct Summary
    {
        uint64_t instructions = 0;
        uint64_t condBranches = 0;
        uint64_t condTaken = 0;
        uint64_t calls = 0;
        uint64_t returns = 0;
        uint64_t indirect = 0;      //!< indirect jumps + calls
        uint64_t controlTransfers = 0;  //!< all taken transfers

        /** Fraction of instructions that are conditional branches. */
        double condDensity() const;
        /** Fraction of conditional branches taken. */
        double takenRate() const;
    };

    Summary summarize() const;

  private:
    std::vector<DynInst> insts_;
    std::size_t pos_ = 0;
};

/**
 * A private replay position over a shared, immutable InMemoryTrace.
 *
 * InMemoryTrace carries its own cursor (`pos_`), which makes replay a
 * mutating operation -- unusable when many simulations share one
 * cached trace across threads. A TraceCursor keeps the position in
 * the reader instead, so any number of cursors can walk the same
 * trace concurrently with no synchronization.
 */
class TraceCursor : public TraceSource
{
  public:
    explicit TraceCursor(const InMemoryTrace &trace)
        : insts_(&trace.insts())
    {
    }

    bool next(DynInst &inst) override
    {
        if (pos_ >= insts_->size())
            return false;
        inst = (*insts_)[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

  private:
    const std::vector<DynInst> *insts_;
    std::size_t pos_ = 0;
};

/**
 * Drain up to @p limit instructions of @p src into an InMemoryTrace
 * (limit 0 = drain everything).
 */
InMemoryTrace captureTrace(TraceSource &src, std::size_t limit = 0);

} // namespace mbbp

#endif // MBBP_TRACE_TRACE_HH

/**
 * @file
 * The hardware cost model of Section 5 / Table 7. With the paper's
 * reference parameters (b=8, 32KB direct-mapped i-cache => 10-bit
 * line index, h=10, 1 PHT, 1 ST, 256 NLS entries, 1024 BIT entries,
 * 8 BBR entries) the totals reproduce the paper's numbers:
 * single block 52 Kbits, dual/single-select 80 Kbits,
 * dual/double-select 72 Kbits.
 */

#ifndef MBBP_CORE_COST_MODEL_HH
#define MBBP_CORE_COST_MODEL_HH

#include <cstdint>

namespace mbbp
{

/** Table 7 symbols. */
struct CostParams
{
    unsigned blockWidth = 8;        //!< b
    unsigned historyBits = 10;      //!< h
    unsigned numPhts = 1;           //!< p
    unsigned numSelectTables = 1;   //!< s
    uint64_t nlsEntries = 256;      //!< e_N (block entries)
    unsigned lineIndexBits = 10;    //!< n (i-cache line index width)
    uint64_t bitEntries = 1024;     //!< e_B (block entries)
    uint64_t bbrEntries = 8;        //!< e_R
    bool nearBlockOffset = false;   //!< ST stores start-offset bits
};

/** Simplified storage estimates, in bits. */
class CostModel
{
  public:
    explicit CostModel(const CostParams &p) : p_(p) {}

    /** PHT: 2^h * b * 2 * p. */
    uint64_t phtBits() const;

    /** ST: 2^h * s * (selector + GHR-info bits), doubled when dual. */
    uint64_t stBits(bool dual) const;

    /** NLS: e_N * b * n per target array. */
    uint64_t nlsBits(bool dual) const;

    /** BIT: e_B * b * 2 (the 2-bit encoding). */
    uint64_t bitBits() const;

    /** BBR: e_R entries of Table 4 fields (no PHT-block option). */
    uint64_t bbrBits() const;

    /** Figure 1 mechanism: PHT + NLS + BIT + BBR. */
    uint64_t singleBlockTotal() const;

    /** Figure 2 mechanism: + ST, dual NLS. */
    uint64_t dualSingleSelectTotal() const;

    /** Figure 4 mechanism: dual ST, dual NLS, no BIT. */
    uint64_t dualDoubleSelectTotal() const;

    /** Convert to the paper's Kbits (1024 bits). */
    static double kbits(uint64_t bits_);

  private:
    CostParams p_;
};

} // namespace mbbp

#endif // MBBP_CORE_COST_MODEL_HH

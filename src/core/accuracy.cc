#include "core/accuracy.hh"

#include "fetch/block.hh"
#include "predict/blocked_pht.hh"
#include "predict/scalar_two_level.hh"
#include "util/stats.hh"

namespace mbbp
{

double
AccuracyResult::missRate() const
{
    return ratio(static_cast<double>(mispredicts),
                 static_cast<double>(condBranches));
}

double
AccuracyResult::accuracy() const
{
    return 1.0 - missRate();
}

void
AccuracyResult::accumulate(const AccuracyResult &other)
{
    condBranches += other.condBranches;
    mispredicts += other.mispredicts;
}

AccuracyResult
blockedPhtAccuracy(const InMemoryTrace &trace, unsigned history_bits,
                   const ICacheConfig &icache)
{
    AccuracyResult res;
    ICacheModel cache(icache);
    BlockedPHT pht({ history_bits, icache.blockWidth, 2, 1 });
    GlobalHistory ghr(history_bits);

    TraceCursor cursor(trace);
    BlockStream stream(cursor, cache);
    OwnedBlock blk;
    while (stream.next(blk)) {
        std::size_t idx = pht.index(ghr, blk.startPc);
        for (const auto &inst : blk.insts) {
            if (!isCondBranch(inst.cls))
                continue;
            ++res.condBranches;
            if (pht.predictAt(idx, inst.pc) != inst.taken)
                ++res.mispredicts;
            pht.updateAt(idx, inst.pc, inst.taken);
        }
        ghr.shiftInBlock(blk.condOutcomes(), blk.numConds());
    }
    return res;
}

AccuracyResult
scalarAccuracy(const InMemoryTrace &trace, unsigned history_bits,
               unsigned num_phts, bool gshare)
{
    AccuracyResult res;
    ScalarTwoLevel pred({ history_bits, num_phts, 2, gshare });

    TraceCursor cursor(trace);
    DynInst inst;
    while (cursor.next(inst)) {
        if (!isCondBranch(inst.cls))
            continue;
        ++res.condBranches;
        if (pred.predict(inst.pc) != inst.taken)
            ++res.mispredicts;
        pred.update(inst.pc, inst.taken);
    }
    return res;
}

} // namespace mbbp

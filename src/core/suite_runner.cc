#include "core/suite_runner.hh"

namespace mbbp
{

TraceCache::TraceCache(std::size_t instructions_per_program)
    : ninsts_(instructions_per_program)
{
}

InMemoryTrace &
TraceCache::get(const std::string &name)
{
    auto it = traces_.find(name);
    if (it == traces_.end())
        it = traces_.emplace(name, specTrace(name, ninsts_)).first;
    return it->second;
}

SuiteResult
runSuite(const SimConfig &cfg, TraceCache &traces,
         const std::vector<std::string> &names)
{
    SuiteResult result;
    FetchSimulator sim(cfg);

    const std::vector<std::string> &run_names =
        names.empty() ? specAllNames() : names;
    for (const auto &name : run_names) {
        FetchStats s = sim.run(traces.get(name));
        result.perProgram[name] = s;
        result.allTotal.accumulate(s);
        if (specProfile(name).isFloat)
            result.fpTotal.accumulate(s);
        else
            result.intTotal.accumulate(s);
    }
    return result;
}

} // namespace mbbp

#include "core/suite_runner.hh"

namespace mbbp
{

TraceCache::TraceCache(std::size_t instructions_per_program)
    : ninsts_(instructions_per_program)
{
}

const InMemoryTrace &
TraceCache::get(const std::string &name)
{
    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = traces_.find(name);
        if (it == traces_.end())
            it = traces_.emplace(name, std::make_unique<Entry>())
                     .first;
        entry = it->second.get();
    }
    // Generate outside the map lock so distinct traces can be built
    // concurrently; call_once serializes builders of the same trace.
    std::call_once(entry->once, [&] {
        entry->trace = specTrace(name, ninsts_);
    });
    return entry->trace;
}

SuiteResult
runSuite(const SimConfig &cfg, TraceCache &traces,
         const std::vector<std::string> &names)
{
    SuiteResult result;
    FetchSimulator sim(cfg);

    const std::vector<std::string> &run_names =
        names.empty() ? specAllNames() : names;
    for (const auto &name : run_names) {
        FetchStats s = sim.run(traces.get(name));
        result.perProgram[name] = s;
        result.allTotal.accumulate(s);
        if (specProfile(name).isFloat)
            result.fpTotal.accumulate(s);
        else
            result.intTotal.accumulate(s);
    }
    return result;
}

} // namespace mbbp

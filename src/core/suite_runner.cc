#include "core/suite_runner.hh"

#include "obs/obs.hh"

namespace mbbp
{

TraceCache::TraceCache(std::size_t instructions_per_program)
    : ninsts_(instructions_per_program)
{
}

const InMemoryTrace &
TraceCache::get(const std::string &name)
{
    obs::flushCounter("trace.cache.requests", 1);
    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = traces_.find(name);
        if (it == traces_.end())
            it = traces_.emplace(name, std::make_unique<Entry>())
                     .first;
        entry = it->second.get();
    }
    // Generate outside the map lock so distinct traces can be built
    // concurrently; call_once serializes builders of the same trace.
    std::call_once(entry->once, [&] {
        static obs::Timer &gen_t = obs::timer("trace.generate");
        obs::ScopedTimer span(gen_t, "generate " + name);
        entry->trace = specTrace(name, ninsts_);
        obs::flushCounter("trace.cache.builds", 1);
    });
    return entry->trace;
}

const DecodedTrace &
TraceCache::decoded(const std::string &name, const ICacheConfig &geom)
{
    obs::flushCounter("trace.cache.decoded_requests", 1);
    DecodedKey key{ name, static_cast<uint8_t>(geom.type),
                    geom.blockWidth, geom.lineSize };
    DecodedEntry *entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = decoded_.find(key);
        if (it == decoded_.end())
            it = decoded_
                     .emplace(std::move(key),
                              std::make_unique<DecodedEntry>())
                     .first;
        entry = it->second.get();
    }
    // get() is itself thread-safe, so decoding may trigger trace
    // generation; distinct artifacts decode concurrently.
    std::call_once(entry->once, [&] {
        static obs::Timer &dec_t = obs::timer("trace.decode");
        obs::ScopedTimer span(dec_t, "decode " + name);
        entry->dec = DecodedTrace::build(get(name), geom);
        obs::flushCounter("trace.cache.decoded_builds", 1);
    });
    return entry->dec;
}

SuiteResult
runSuite(const SimConfig &cfg, TraceCache &traces,
         const std::vector<std::string> &names, bool shared_decode)
{
    SuiteResult result;
    FetchSimulator sim(cfg);

    static obs::Timer &replay_t = obs::timer("suite.replay");
    const std::vector<std::string> &run_names =
        names.empty() ? specAllNames() : names;
    for (const auto &name : run_names) {
        FetchStats s;
        {
            obs::ScopedTimer span(replay_t);
            s = shared_decode
                ? sim.run(traces.decoded(name, cfg.engine.icache))
                : sim.run(traces.get(name));
        }
        result.perProgram[name] = s;
        result.allTotal.accumulate(s);
        if (specProfile(name).isFloat)
            result.fpTotal.accumulate(s);
        else
            result.intTotal.accumulate(s);
    }
    return result;
}

} // namespace mbbp

#include "core/suite_runner.hh"

#include <algorithm>

#include "obs/obs.hh"

namespace mbbp
{

// ---------------------------------------------------------------
// DecodedBudget
// ---------------------------------------------------------------

std::size_t
DecodedBudget::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resident_;
}

std::size_t
DecodedBudget::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

void
DecodedBudget::attach(TraceCache *cache)
{
    std::lock_guard<std::mutex> lock(mutex_);
    caches_.push_back(cache);
}

void
DecodedBudget::detach(TraceCache *cache, std::size_t resident_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    caches_.erase(std::remove(caches_.begin(), caches_.end(), cache),
                  caches_.end());
    resident_ -= resident_bytes;
    obs::gauge("trace.cache.resident_bytes").set(resident_);
}

void
DecodedBudget::onBuilt(const void *keep, std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    resident_ += bytes;
    while (budget_ != 0 && resident_ > budget_) {
        // Globally-LRU victim: the shared use clock makes stamps
        // comparable across member caches.
        TraceCache *victim = nullptr;
        uint64_t oldest = 0;
        for (TraceCache *c : caches_) {
            uint64_t stamp = 0;
            if (c->lruCandidate(keep, stamp) &&
                (victim == nullptr || stamp < oldest)) {
                victim = c;
                oldest = stamp;
            }
        }
        if (victim == nullptr)
            break;          // nothing evictable: stay over budget
        std::size_t freed = victim->evictOldest(keep);
        if (freed == 0)
            break;          // candidate raced away; do not spin
        resident_ -= freed;
        ++evictions_;
    }
    obs::gauge("trace.cache.resident_bytes").set(resident_);
}

// ---------------------------------------------------------------
// TraceCache
// ---------------------------------------------------------------

TraceCache::TraceCache(std::size_t instructions_per_program,
                       std::size_t decoded_budget_bytes,
                       std::shared_ptr<const ArtifactStore> artifacts)
    : TraceCache(instructions_per_program,
                 std::make_shared<DecodedBudget>(decoded_budget_bytes),
                 std::move(artifacts))
{
}

TraceCache::TraceCache(std::size_t instructions_per_program,
                       std::shared_ptr<DecodedBudget> budget,
                       std::shared_ptr<const ArtifactStore> artifacts)
    : ninsts_(instructions_per_program),
      budget_(budget ? std::move(budget)
                     : std::make_shared<DecodedBudget>(0)),
      artifacts_(std::move(artifacts))
{
    budget_->attach(this);
}

TraceCache::~TraceCache()
{
    // Hand the shared budget back this cache's resident bytes; no
    // cache lock needed, destruction implies exclusive access.
    budget_->detach(this, resident_);
}

const InMemoryTrace &
TraceCache::get(const std::string &name)
{
    obs::flushCounter("trace.cache.requests", 1);
    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = traces_.find(name);
        if (it == traces_.end())
            it = traces_.emplace(name, std::make_unique<Entry>())
                     .first;
        entry = it->second.get();
    }
    // Generate outside the map lock so distinct traces can be built
    // concurrently; call_once serializes builders of the same trace.
    std::call_once(entry->once, [&] {
        obs::ScopedTimer span("trace.generate",
                              "generate " + name);
        entry->trace = specTrace(name, ninsts_);
        obs::flushCounter("trace.cache.builds", 1);
    });
    return entry->trace;
}

std::shared_ptr<const DecodedTrace>
TraceCache::decoded(const std::string &name, const ICacheConfig &geom)
{
    obs::flushCounter("trace.cache.decoded_requests", 1);
    DecodedKey key{ name, static_cast<uint8_t>(geom.type),
                    geom.blockWidth, geom.lineSize };
    std::shared_ptr<DecodedEntry> entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = decoded_.find(key);
        if (it == decoded_.end())
            it = decoded_
                     .emplace(std::move(key),
                              std::make_shared<DecodedEntry>())
                     .first;
        entry = it->second;
        entry->lastUse = budget_->touch();
    }
    // get() is itself thread-safe, so decoding may trigger trace
    // generation; distinct artifacts decode concurrently. The entry
    // is held by shared_ptr: eviction only unlinks it from the map,
    // so a build racing an eviction still completes safely and its
    // caller replays the (now unlinked) artifact it was promised.
    std::call_once(entry->once, [&] {
        // Persistence first: a valid artifact file is mmapped
        // zero-copy and skips trace generation entirely (the cold-
        // start path); corrupt or stale files come back null and we
        // rebuild -- then write back so the next process hits.
        std::shared_ptr<const DecodedTrace> dec;
        ArtifactKey akey = ArtifactKey::of(name, ninsts_, geom);
        if (artifacts_)
            dec = artifacts_->load(akey, geom);
        if (!dec) {
            obs::ScopedTimer span("trace.decode",
                                  "decode " + name);
            dec = std::make_shared<const DecodedTrace>(
                DecodedTrace::build(get(name), geom));
            obs::flushCounter("trace.cache.decoded_builds", 1);
            if (artifacts_)
                artifacts_->save(akey, *dec);
        }
        std::size_t bytes = dec->bytes();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            entry->bytes = bytes;
            entry->dec = std::move(dec);
            resident_ += bytes;
        }
        // Account (and evict across the whole budget) without this
        // cache's mutex held: the budget locks itself first, member
        // caches second.
        budget_->onBuilt(entry.get(), bytes);
    });
    return entry->dec;
}

bool
TraceCache::lruCandidate(const void *keep, uint64_t &stamp) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    bool found = false;
    for (const auto &[key, e] : decoded_) {
        if (e->bytes == 0 || e.get() == keep)
            continue;       // still building, or the fresh artifact
        if (!found || e->lastUse < stamp) {
            stamp = e->lastUse;
            found = true;
        }
    }
    return found;
}

std::size_t
TraceCache::evictOldest(const void *keep)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto victim = decoded_.end();
    for (auto it = decoded_.begin(); it != decoded_.end(); ++it) {
        const DecodedEntry &e = *it->second;
        if (e.bytes == 0 || it->second.get() == keep)
            continue;
        if (victim == decoded_.end() ||
            e.lastUse < victim->second->lastUse)
            victim = it;
    }
    if (victim == decoded_.end())
        return 0;
    std::size_t freed = victim->second->bytes;
    resident_ -= freed;
    decoded_.erase(victim);
    ++evictions_;
    obs::flushCounter("trace.cache.evictions", 1);
    return freed;
}

std::size_t
TraceCache::decodedResidentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resident_;
}

std::size_t
TraceCache::decodedEvictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

SuiteResult
runSuite(const SimConfig &cfg, TraceCache &traces,
         const std::vector<std::string> &names, bool shared_decode,
         const CancelToken *cancel)
{
    SuiteResult result;
    FetchSimulator sim(cfg);

    const std::vector<std::string> &run_names =
        names.empty() ? specAllNames() : names;
    for (const auto &name : run_names) {
        if (cancel)
            cancel->throwIfCancelled("suite run cancelled");
        FetchStats s;
        {
            obs::ScopedTimer span("suite.replay",
                                  "replay " + name);
            s = shared_decode
                ? sim.run(*traces.decoded(name, cfg.engine.icache))
                : sim.run(traces.get(name));
        }
        result.perProgram[name] = s;
        result.allTotal.accumulate(s);
        if (specProfile(name).isFloat)
            result.fpTotal.accumulate(s);
        else
            result.intTotal.accumulate(s);
    }
    return result;
}

} // namespace mbbp

/**
 * @file
 * Umbrella header for the mbbp library -- everything a downstream
 * user needs to reproduce or extend the paper's experiments.
 */

#ifndef MBBP_CORE_MBBP_HH
#define MBBP_CORE_MBBP_HH

// Core API
#include "core/accuracy.hh"
#include "core/cost_model.hh"
#include "core/fetch_simulator.hh"
#include "core/suite_runner.hh"

// Predictors
#include "predict/bbr.hh"
#include "predict/bit_table.hh"
#include "predict/blocked_pht.hh"
#include "predict/branch_address_cache.hh"
#include "predict/btb.hh"
#include "predict/history.hh"
#include "predict/nls.hh"
#include "predict/ras.hh"
#include "predict/scalar_two_level.hh"
#include "predict/select_table.hh"
#include "predict/two_block_ahead.hh"

// Fetch path
#include "fetch/block.hh"
#include "fetch/icache_model.hh"
#include "fetch/multi_block_engine.hh"
#include "fetch/two_ahead_engine.hh"
#include "fetch/penalty_model.hh"

// Workloads and traces
#include "trace/decoded_trace.hh"
#include "trace/trace.hh"
#include "trace/trace_file.hh"
#include "workload/generator.hh"
#include "workload/spec95.hh"

// Design-space sweeps
#include "sweep/sweep_report.hh"
#include "sweep/sweep_runner.hh"
#include "sweep/sweep_spec.hh"
#include "sweep/thread_pool.hh"

// Reporting
#include "core/report.hh"
#include "util/stats.hh"
#include "util/table.hh"

#endif // MBBP_CORE_MBBP_HH

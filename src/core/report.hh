/**
 * @file
 * Result export: serialize fetch statistics and suite results to
 * JSON for downstream analysis (plotting the paper's figures, CI
 * dashboards, regression diffs).
 */

#ifndef MBBP_CORE_REPORT_HH
#define MBBP_CORE_REPORT_HH

#include <string>

#include "core/suite_runner.hh"
#include "fetch/fetch_stats.hh"

namespace mbbp
{

/** One run's metrics as a JSON object string. */
std::string statsToJson(const FetchStats &stats);

/** A whole suite run: per-program objects plus int/fp/all totals. */
std::string suiteResultToJson(const SuiteResult &result);

} // namespace mbbp

#endif // MBBP_CORE_REPORT_HH

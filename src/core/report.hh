/**
 * @file
 * Result export: serialize fetch statistics and suite results to
 * JSON for downstream analysis (plotting the paper's figures, CI
 * dashboards, regression diffs).
 */

#ifndef MBBP_CORE_REPORT_HH
#define MBBP_CORE_REPORT_HH

#include <string>

#include "core/suite_runner.hh"
#include "fetch/fetch_stats.hh"
#include "util/json.hh"

namespace mbbp
{

/** One run's metrics as a JSON object string. */
std::string statsToJson(const FetchStats &stats);

/**
 * Emit the metric fields of @p stats into the currently-open object
 * of @p w -- for embedding run metrics inside larger documents (the
 * sweep report uses this for every job/program pair).
 */
void writeStatsJson(JsonWriter &w, const FetchStats &stats);

/** A whole suite run: per-program objects plus int/fp/all totals. */
std::string suiteResultToJson(const SuiteResult &result);

} // namespace mbbp

#endif // MBBP_CORE_REPORT_HH

#include "core/cost_model.hh"

#include "predict/bbr.hh"
#include "util/bitops.hh"

namespace mbbp
{

uint64_t
CostModel::phtBits() const
{
    return (uint64_t{1} << p_.historyBits) * p_.blockWidth * 2 *
           p_.numPhts;
}

uint64_t
CostModel::stBits(bool dual) const
{
    unsigned lb = floorLog2(p_.blockWidth);
    unsigned per_slot = (lb + 1)        // selector
                        + lb + 1        // #not-taken + taken bit
                        + (p_.nearBlockOffset ? lb : 0);
    return (uint64_t{1} << p_.historyBits) * p_.numSelectTables *
           (dual ? 2 : 1) * per_slot;
}

uint64_t
CostModel::nlsBits(bool dual) const
{
    return p_.nlsEntries * p_.blockWidth * p_.lineIndexBits *
           (dual ? 2 : 1);
}

uint64_t
CostModel::bitBits() const
{
    return p_.bitEntries * p_.blockWidth * 2;
}

uint64_t
CostModel::bbrBits() const
{
    BbrEntry e;     // empty phtBlock: the optional field is omitted
    return p_.bbrEntries *
           e.costBits(p_.historyBits, p_.blockWidth, false);
}

uint64_t
CostModel::singleBlockTotal() const
{
    return phtBits() + nlsBits(false) + bitBits() + bbrBits();
}

uint64_t
CostModel::dualSingleSelectTotal() const
{
    return phtBits() + stBits(false) + nlsBits(true) + bitBits() +
           bbrBits();
}

uint64_t
CostModel::dualDoubleSelectTotal() const
{
    return phtBits() + stBits(true) + nlsBits(true) + bbrBits();
}

double
CostModel::kbits(uint64_t bits_)
{
    return static_cast<double>(bits_) / 1024.0;
}

} // namespace mbbp

#include "core/report.hh"

#include "util/json.hh"

namespace mbbp
{

void
writeStatsJson(JsonWriter &w, const FetchStats &s)
{
    w.value("instructions", s.instructions);
    w.value("fetch_requests", s.fetchRequests);
    w.value("fetch_cycles", s.fetchCycles());
    w.value("blocks_fetched", s.blocksFetched);
    w.value("branches_executed", s.branchesExecuted);
    w.value("cond_executed", s.condExecuted);
    w.value("cond_direction_wrong", s.condDirectionWrong);
    w.value("near_block_conds", s.nearBlockConds);
    w.value("ras_overflows", s.rasOverflows);
    w.value("bbr_peak", s.bbrPeak);
    w.value("icache_accesses", s.icacheAccesses);
    w.value("icache_misses", s.icacheMisses);
    w.value("icache_miss_cycles", s.icacheMissCycles);
    w.value("ipc_f", s.ipcF());
    w.value("ipb", s.ipb());
    w.value("bep", s.bep());
    w.beginObject("penalties");
    for (unsigned k = 0; k < numPenaltyKinds; ++k) {
        auto kind = static_cast<PenaltyKind>(k);
        w.beginObject(penaltyKindName(kind));
        w.value("cycles", s.penaltyCycles[k]);
        w.value("events", s.penaltyEvents[k]);
        w.endObject();
    }
    w.endObject();
}

std::string
statsToJson(const FetchStats &stats)
{
    JsonWriter w;
    w.beginObject();
    writeStatsJson(w, stats);
    w.endObject();
    return w.str();
}

std::string
suiteResultToJson(const SuiteResult &result)
{
    JsonWriter w;
    w.beginObject();
    w.beginObject("programs");
    for (const auto &[name, stats] : result.perProgram) {
        w.beginObject(name);
        writeStatsJson(w, stats);
        w.endObject();
    }
    w.endObject();
    w.beginObject("int_total");
    writeStatsJson(w, result.intTotal);
    w.endObject();
    w.beginObject("fp_total");
    writeStatsJson(w, result.fpTotal);
    w.endObject();
    w.beginObject("all_total");
    writeStatsJson(w, result.allTotal);
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace mbbp

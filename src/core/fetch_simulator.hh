/**
 * @file
 * The top-level public API: configure a multiple branch and block
 * prediction front end and run it over a trace.
 *
 * Quickstart:
 * @code
 *   SimConfig cfg;                          // paper defaults
 *   cfg.numBlocks = 2;                      // dual-block fetching
 *   FetchSimulator sim(cfg);
 *   InMemoryTrace trace = specTrace("gcc");
 *   FetchStats s = sim.run(trace);
 *   std::cout << s.ipcF() << " instructions/cycle\n";
 * @endcode
 */

#ifndef MBBP_CORE_FETCH_SIMULATOR_HH
#define MBBP_CORE_FETCH_SIMULATOR_HH

#include "fetch/dual_block_engine.hh"
#include "fetch/multi_block_engine.hh"
#include "fetch/single_block_engine.hh"

namespace mbbp
{

/** Complete simulator configuration. */
struct SimConfig
{
    FetchEngineConfig engine;
    unsigned numBlocks = 2;     //!< 1 = Figure 1, 2 = Figures 2-5,
                                //!< 3..4 = the Section 5 extension

    /** The paper's default evaluation setup (Section 4). */
    static SimConfig paperDefault();
};

/** Facade over the single- and dual-block engines. */
class FetchSimulator
{
  public:
    explicit FetchSimulator(const SimConfig &cfg);

    /**
     * Run the trace and return the fetch metrics. Decodes a
     * throwaway replay artifact; when simulating many configurations
     * over the same trace, build one DecodedTrace and use the other
     * overload to amortize the decode.
     */
    FetchStats run(const InMemoryTrace &trace) const;

    /** Replay a precomputed artifact (byte-identical results). */
    FetchStats run(const DecodedTrace &dec) const;

    const SimConfig &config() const { return cfg_; }

  private:
    SimConfig cfg_;
};

} // namespace mbbp

#endif // MBBP_CORE_FETCH_SIMULATOR_HH

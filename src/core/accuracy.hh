/**
 * @file
 * Conditional-branch accuracy simulators for Figure 6: the blocked
 * PHT (per-block history update) against a size-matched scalar
 * two-level predictor (per-branch update, 8 per-address PHTs).
 */

#ifndef MBBP_CORE_ACCURACY_HH
#define MBBP_CORE_ACCURACY_HH

#include "fetch/icache_model.hh"
#include "trace/trace.hh"

namespace mbbp
{

/** Direction-prediction accuracy over one trace. */
struct AccuracyResult
{
    uint64_t condBranches = 0;
    uint64_t mispredicts = 0;

    double missRate() const;        //!< fraction mispredicted
    double accuracy() const;        //!< 1 - missRate

    void accumulate(const AccuracyResult &other);
};

/**
 * Run the blocked PHT over @p trace: one entry of b counters per
 * lookup, GHR updated per block. Blocks are segmented with the given
 * cache geometry (the paper's default: normal, b = 8).
 */
AccuracyResult blockedPhtAccuracy(const InMemoryTrace &trace,
                                  unsigned history_bits,
                                  const ICacheConfig &icache);

/**
 * Run the scalar reference over @p trace: @p num_phts per-address
 * PHTs (address low bits select the table, the GHR indexes within),
 * history updated per branch. With num_phts = b the storage matches
 * the blocked PHT exactly. With @p gshare, a single table indexed by
 * GHR XOR address is used instead (McFarling).
 */
AccuracyResult scalarAccuracy(const InMemoryTrace &trace,
                              unsigned history_bits,
                              unsigned num_phts,
                              bool gshare = false);

} // namespace mbbp

#endif // MBBP_CORE_ACCURACY_HH

#include "core/fetch_simulator.hh"

#include "util/logging.hh"

namespace mbbp
{

SimConfig
SimConfig::paperDefault()
{
    SimConfig cfg;      // member defaults already match Section 4
    cfg.numBlocks = 2;
    return cfg;
}

FetchSimulator::FetchSimulator(const SimConfig &cfg)
    : cfg_(cfg)
{
    mbbp_assert(cfg_.numBlocks >= 1 && cfg_.numBlocks <= 4,
                "1 to 4 blocks per cycle supported");
    mbbp_assert(!(cfg_.numBlocks != 2 && cfg_.engine.doubleSelect),
                "double selection requires dual-block fetching");
}

FetchStats
FetchSimulator::run(const InMemoryTrace &trace) const
{
    return run(DecodedTrace::build(trace, cfg_.engine.icache));
}

FetchStats
FetchSimulator::run(const DecodedTrace &dec) const
{
    switch (cfg_.numBlocks) {
      case 1: {
        SingleBlockEngine engine(cfg_.engine);
        return engine.run(dec);
      }
      case 2: {
        DualBlockEngine engine(cfg_.engine);
        return engine.run(dec);
      }
      default: {
        MultiBlockEngine engine(cfg_.engine, cfg_.numBlocks);
        return engine.run(dec);
      }
    }
}

} // namespace mbbp

/**
 * @file
 * Suite plumbing for the benches: generate-and-cache the synthetic
 * SPEC95 traces and aggregate per-program fetch statistics into the
 * SPECint / SPECfp averages the paper reports.
 */

#ifndef MBBP_CORE_SUITE_RUNNER_HH
#define MBBP_CORE_SUITE_RUNNER_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/fetch_simulator.hh"
#include "workload/spec95.hh"

namespace mbbp
{

/**
 * Generates each benchmark trace once and replays it on demand, and
 * memoizes the DecodedTrace replay artifact per (trace, geometry).
 *
 * Safe for concurrent use: any number of threads may call get() or
 * decoded() -- each trace / artifact is built exactly once (distinct
 * entries build in parallel, callers of the same entry block until it
 * is ready), and the returned reference is const and stable for the
 * cache's lifetime, so replays need no further locking.
 */
class TraceCache
{
  public:
    explicit TraceCache(std::size_t instructions_per_program = 400000);

    /** The trace for @p name (generated on first use). */
    const InMemoryTrace &get(const std::string &name);

    /**
     * The replay artifact for @p name cut for @p geom (decoded on
     * first use). Artifacts are keyed by the geometry fields that
     * affect segmentation (type, block width, line size), so sweep
     * jobs differing only in predictor tables -- or bank counts --
     * share one artifact.
     */
    const DecodedTrace &decoded(const std::string &name,
                                const ICacheConfig &geom);

    std::size_t instructionsPerProgram() const { return ninsts_; }

  private:
    struct Entry
    {
        std::once_flag once;
        InMemoryTrace trace;
    };

    struct DecodedEntry
    {
        std::once_flag once;
        DecodedTrace dec;
    };

    /** (name, type, blockWidth, lineSize). */
    using DecodedKey = std::tuple<std::string, uint8_t, unsigned,
                                  unsigned>;

    std::size_t ninsts_;
    std::mutex mutex_;      //!< guards the maps, not the payloads
    std::map<std::string, std::unique_ptr<Entry>> traces_;
    std::map<DecodedKey, std::unique_ptr<DecodedEntry>> decoded_;
};

/** Per-program results plus int/fp/all aggregates. */
struct SuiteResult
{
    std::map<std::string, FetchStats> perProgram;
    FetchStats intTotal;
    FetchStats fpTotal;
    FetchStats allTotal;
};

/**
 * Run @p cfg over the whole suite (or a subset of names).
 *
 * With @p shared_decode (the default) each program replays the
 * cache's memoized DecodedTrace artifact; pass false to decode a
 * private artifact per run (the pre-artifact behavior -- results are
 * byte-identical either way, only the wall clock differs).
 */
SuiteResult runSuite(const SimConfig &cfg, TraceCache &traces,
                     const std::vector<std::string> &names = {},
                     bool shared_decode = true);

} // namespace mbbp

#endif // MBBP_CORE_SUITE_RUNNER_HH

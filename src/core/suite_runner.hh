/**
 * @file
 * Suite plumbing for the benches: generate-and-cache the synthetic
 * SPEC95 traces and aggregate per-program fetch statistics into the
 * SPECint / SPECfp averages the paper reports.
 */

#ifndef MBBP_CORE_SUITE_RUNNER_HH
#define MBBP_CORE_SUITE_RUNNER_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fetch_simulator.hh"
#include "workload/spec95.hh"

namespace mbbp
{

/**
 * Generates each benchmark trace once and replays it on demand.
 *
 * Safe for concurrent use: any number of threads may call get() --
 * each trace is generated exactly once (different traces generate in
 * parallel, callers of the same trace block until it is ready), and
 * the returned reference is const and stable for the cache's
 * lifetime, so replays need no further locking (use a TraceCursor).
 */
class TraceCache
{
  public:
    explicit TraceCache(std::size_t instructions_per_program = 400000);

    /** The trace for @p name (generated on first use). */
    const InMemoryTrace &get(const std::string &name);

    std::size_t instructionsPerProgram() const { return ninsts_; }

  private:
    struct Entry
    {
        std::once_flag once;
        InMemoryTrace trace;
    };

    std::size_t ninsts_;
    std::mutex mutex_;      //!< guards the map, not the traces
    std::map<std::string, std::unique_ptr<Entry>> traces_;
};

/** Per-program results plus int/fp/all aggregates. */
struct SuiteResult
{
    std::map<std::string, FetchStats> perProgram;
    FetchStats intTotal;
    FetchStats fpTotal;
    FetchStats allTotal;
};

/** Run @p cfg over the whole suite (or a subset of names). */
SuiteResult runSuite(const SimConfig &cfg, TraceCache &traces,
                     const std::vector<std::string> &names = {});

} // namespace mbbp

#endif // MBBP_CORE_SUITE_RUNNER_HH

/**
 * @file
 * Suite plumbing for the benches: generate-and-cache the synthetic
 * SPEC95 traces and aggregate per-program fetch statistics into the
 * SPECint / SPECfp averages the paper reports.
 */

#ifndef MBBP_CORE_SUITE_RUNNER_HH
#define MBBP_CORE_SUITE_RUNNER_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/fetch_simulator.hh"
#include "trace/artifact_file.hh"
#include "util/cancel.hh"
#include "workload/spec95.hh"

namespace mbbp
{

/**
 * Generates each benchmark trace once and replays it on demand, and
 * memoizes the DecodedTrace replay artifact per (trace, geometry).
 *
 * Safe for concurrent use: any number of threads may call get() or
 * decoded() -- each trace / artifact is built exactly once (distinct
 * entries build in parallel, callers of the same entry block until it
 * is ready). decoded() hands out shared ownership, so an artifact a
 * replay is iterating stays alive even if the cache evicts it.
 *
 * Artifacts can dominate memory on wide sweeps (one per trace and
 * geometry), so the cache takes an optional byte budget: when the
 * resident decoded set exceeds it, least-recently-used artifacts are
 * dropped (and rebuilt on demand if requested again). Budget 0 keeps
 * everything, the pre-budget behavior. The resident total is
 * published on the "trace.cache.resident_bytes" gauge and drops are
 * counted on "trace.cache.evictions".
 *
 * With an ArtifactStore attached the cache also persists: a decode
 * miss first tries to mmap the store's artifact file for the key
 * (zero-copy, skipping trace generation entirely), and freshly built
 * artifacts are written back best-effort. Corrupt or stale files are
 * rejected by the store and simply rebuilt. This is what lets the
 * sweep service restart without losing its warm decoded set.
 */
class TraceCache
{
  public:
    explicit TraceCache(std::size_t instructions_per_program = 400000,
                        std::size_t decoded_budget_bytes = 0,
                        std::shared_ptr<const ArtifactStore>
                            artifacts = nullptr);

    /** The trace for @p name (generated on first use). */
    const InMemoryTrace &get(const std::string &name);

    /**
     * The replay artifact for @p name cut for @p geom (decoded on
     * first use). Artifacts are keyed by the geometry fields that
     * affect segmentation (type, block width, line size), so sweep
     * jobs differing only in predictor tables -- or bank counts --
     * share one artifact. The returned pointer keeps the artifact
     * alive across eviction; hold it for the duration of the replay.
     */
    std::shared_ptr<const DecodedTrace>
    decoded(const std::string &name, const ICacheConfig &geom);

    std::size_t instructionsPerProgram() const { return ninsts_; }

    /** @{ Budget introspection (0 budget = unbounded). */
    std::size_t decodedBudgetBytes() const { return budget_; }
    std::size_t decodedResidentBytes() const;
    std::size_t decodedEvictions() const;
    /** @} */

    /** The attached persistence layer, if any. */
    const ArtifactStore *artifactStore() const
    {
        return artifacts_.get();
    }

  private:
    struct Entry
    {
        std::once_flag once;
        InMemoryTrace trace;
    };

    struct DecodedEntry
    {
        std::once_flag once;
        std::shared_ptr<const DecodedTrace> dec;
        std::size_t bytes = 0;      //!< 0 until the build completes
        uint64_t lastUse = 0;
    };

    /** (name, type, blockWidth, lineSize). */
    using DecodedKey = std::tuple<std::string, uint8_t, unsigned,
                                  unsigned>;

    /** Drop LRU artifacts (never @p keep) until within budget. */
    void evictLocked(const DecodedEntry *keep);

    std::size_t ninsts_;
    std::size_t budget_;
    std::shared_ptr<const ArtifactStore> artifacts_;
    mutable std::mutex mutex_;  //!< guards the maps, not the payloads
    std::map<std::string, std::unique_ptr<Entry>> traces_;
    std::map<DecodedKey, std::shared_ptr<DecodedEntry>> decoded_;
    std::size_t resident_ = 0;  //!< bytes of completed entries
    std::size_t evictions_ = 0;
    uint64_t useClock_ = 0;     //!< LRU stamp source
};

/** Per-program results plus int/fp/all aggregates. */
struct SuiteResult
{
    std::map<std::string, FetchStats> perProgram;
    FetchStats intTotal;
    FetchStats fpTotal;
    FetchStats allTotal;
};

/**
 * Run @p cfg over the whole suite (or a subset of names).
 *
 * With @p shared_decode (the default) each program replays the
 * cache's memoized DecodedTrace artifact; pass false to decode a
 * private artifact per run (the pre-artifact behavior -- results are
 * byte-identical either way, only the wall clock differs).
 *
 * If @p cancel is given it is polled between program replays;
 * cancellation throws CancelledError, bounding the abort latency of
 * a multi-program job to roughly one replay.
 */
SuiteResult runSuite(const SimConfig &cfg, TraceCache &traces,
                     const std::vector<std::string> &names = {},
                     bool shared_decode = true,
                     const CancelToken *cancel = nullptr);

} // namespace mbbp

#endif // MBBP_CORE_SUITE_RUNNER_HH

/**
 * @file
 * Suite plumbing for the benches: generate-and-cache the synthetic
 * SPEC95 traces and aggregate per-program fetch statistics into the
 * SPECint / SPECfp averages the paper reports.
 */

#ifndef MBBP_CORE_SUITE_RUNNER_HH
#define MBBP_CORE_SUITE_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/fetch_simulator.hh"
#include "trace/artifact_file.hh"
#include "util/cancel.hh"
#include "workload/spec95.hh"

namespace mbbp
{

class TraceCache;

/**
 * One decoded-artifact byte budget shared by any number of
 * TraceCaches. Each cache accounts its completed artifacts here;
 * when the *global* resident total exceeds the budget the
 * least-recently-used evictable artifact across *all* member caches
 * is dropped (LRU stamps come from one shared clock, so recency is
 * comparable across caches). This is what keeps a service that holds
 * one TraceCache per instruction count bounded by a single budget
 * instead of one budget per cache.
 *
 * Budget 0 = unbounded. The global resident total is published on
 * the "trace.cache.resident_bytes" gauge.
 */
class DecodedBudget
{
  public:
    explicit DecodedBudget(std::size_t budget_bytes)
        : budget_(budget_bytes)
    {
    }

    DecodedBudget(const DecodedBudget &) = delete;
    DecodedBudget &operator=(const DecodedBudget &) = delete;

    std::size_t budgetBytes() const { return budget_; }

    /** @{ Cross-cache totals (0 budget = unbounded). */
    std::size_t residentBytes() const;
    std::size_t evictions() const;
    /** @} */

  private:
    friend class TraceCache;

    void attach(TraceCache *cache);
    void detach(TraceCache *cache, std::size_t resident_bytes);

    /** Shared LRU stamp source (comparable across caches). */
    uint64_t touch()
    {
        return useClock_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /**
     * Account a freshly built artifact and evict globally-LRU
     * artifacts (never @p keep) until back within budget. Callers
     * must NOT hold any member cache's mutex (this locks the budget
     * first, member caches second).
     */
    void onBuilt(const void *keep, std::size_t bytes);

    const std::size_t budget_;
    mutable std::mutex mutex_;      //!< guards totals + members
    std::size_t resident_ = 0;
    std::size_t evictions_ = 0;
    std::atomic<uint64_t> useClock_{ 0 };
    std::vector<TraceCache *> caches_;
};

/**
 * Generates each benchmark trace once and replays it on demand, and
 * memoizes the DecodedTrace replay artifact per (trace, geometry).
 *
 * Safe for concurrent use: any number of threads may call get() or
 * decoded() -- each trace / artifact is built exactly once (distinct
 * entries build in parallel, callers of the same entry block until it
 * is ready). decoded() hands out shared ownership, so an artifact a
 * replay is iterating stays alive even if the cache evicts it.
 *
 * Artifacts can dominate memory on wide sweeps (one per trace and
 * geometry), so the cache takes a byte budget -- either its own
 * private one or a DecodedBudget *shared with other caches* (how the
 * sweep service bounds its per-instruction-count cache family with
 * one number): when the budget's resident decoded set exceeds it,
 * least-recently-used artifacts are dropped (and rebuilt on demand
 * if requested again). Budget 0 keeps everything, the pre-budget
 * behavior. The budget-wide resident total is published on the
 * "trace.cache.resident_bytes" gauge and drops are counted on
 * "trace.cache.evictions".
 *
 * With an ArtifactStore attached the cache also persists: a decode
 * miss first tries to mmap the store's artifact file for the key
 * (zero-copy, skipping trace generation entirely), and freshly built
 * artifacts are written back best-effort. Corrupt or stale files are
 * rejected by the store and simply rebuilt. This is what lets the
 * sweep service restart without losing its warm decoded set.
 */
class TraceCache
{
  public:
    explicit TraceCache(std::size_t instructions_per_program = 400000,
                        std::size_t decoded_budget_bytes = 0,
                        std::shared_ptr<const ArtifactStore>
                            artifacts = nullptr);

    /**
     * Join an existing (possibly shared) budget instead of owning a
     * private one; @p budget null falls back to a private unbounded
     * budget.
     */
    TraceCache(std::size_t instructions_per_program,
               std::shared_ptr<DecodedBudget> budget,
               std::shared_ptr<const ArtifactStore> artifacts =
                   nullptr);

    ~TraceCache();

    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /** The trace for @p name (generated on first use). */
    const InMemoryTrace &get(const std::string &name);

    /**
     * The replay artifact for @p name cut for @p geom (decoded on
     * first use). Artifacts are keyed by the geometry fields that
     * affect segmentation (type, block width, line size), so sweep
     * jobs differing only in predictor tables -- or bank counts --
     * share one artifact. The returned pointer keeps the artifact
     * alive across eviction; hold it for the duration of the replay.
     */
    std::shared_ptr<const DecodedTrace>
    decoded(const std::string &name, const ICacheConfig &geom);

    std::size_t instructionsPerProgram() const { return ninsts_; }

    /** @{ Budget introspection. Resident/eviction counts are *this
     *  cache's* share; the (possibly shared) budget tracks the
     *  cross-cache totals. 0 budget = unbounded. */
    std::size_t decodedBudgetBytes() const
    {
        return budget_->budgetBytes();
    }
    std::size_t decodedResidentBytes() const;
    std::size_t decodedEvictions() const;
    const std::shared_ptr<DecodedBudget> &decodedBudget() const
    {
        return budget_;
    }
    /** @} */

    /** The attached persistence layer, if any. */
    const ArtifactStore *artifactStore() const
    {
        return artifacts_.get();
    }

  private:
    struct Entry
    {
        std::once_flag once;
        InMemoryTrace trace;
    };

    struct DecodedEntry
    {
        std::once_flag once;
        std::shared_ptr<const DecodedTrace> dec;
        std::size_t bytes = 0;      //!< 0 until the build completes
        uint64_t lastUse = 0;
    };

    /** (name, type, blockWidth, lineSize). */
    using DecodedKey = std::tuple<std::string, uint8_t, unsigned,
                                  unsigned>;

    friend class DecodedBudget;

    /**
     * @{ Eviction hooks for the budget (which holds its own mutex
     * first; these take this cache's mutex second -- the one
     * sanctioned lock order). lruCandidate reports the oldest
     * evictable entry's stamp; evictOldest unlinks it and returns
     * the bytes freed (0 if nothing evictable).
     */
    bool lruCandidate(const void *keep, uint64_t &stamp) const;
    std::size_t evictOldest(const void *keep);
    /** @} */

    std::size_t ninsts_;
    std::shared_ptr<DecodedBudget> budget_;  //!< never null
    std::shared_ptr<const ArtifactStore> artifacts_;
    mutable std::mutex mutex_;  //!< guards the maps, not the payloads
    std::map<std::string, std::unique_ptr<Entry>> traces_;
    std::map<DecodedKey, std::shared_ptr<DecodedEntry>> decoded_;
    std::size_t resident_ = 0;  //!< bytes of completed entries
    std::size_t evictions_ = 0; //!< this cache's share
};

/** Per-program results plus int/fp/all aggregates. */
struct SuiteResult
{
    std::map<std::string, FetchStats> perProgram;
    FetchStats intTotal;
    FetchStats fpTotal;
    FetchStats allTotal;
};

/**
 * Run @p cfg over the whole suite (or a subset of names).
 *
 * With @p shared_decode (the default) each program replays the
 * cache's memoized DecodedTrace artifact; pass false to decode a
 * private artifact per run (the pre-artifact behavior -- results are
 * byte-identical either way, only the wall clock differs).
 *
 * If @p cancel is given it is polled between program replays;
 * cancellation throws CancelledError, bounding the abort latency of
 * a multi-program job to roughly one replay.
 */
SuiteResult runSuite(const SimConfig &cfg, TraceCache &traces,
                     const std::vector<std::string> &names = {},
                     bool shared_decode = true,
                     const CancelToken *cancel = nullptr);

} // namespace mbbp

#endif // MBBP_CORE_SUITE_RUNNER_HH

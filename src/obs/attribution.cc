#include "obs/attribution.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

namespace mbbp::obs
{

const char *
lossCauseName(LossCause c)
{
    switch (c) {
    case LossCause::PhtDirection:
        return "pht_direction";
    case LossCause::BitType:
        return "bit_type";
    case LossCause::Target:
        return "target";
    case LossCause::Ras:
        return "ras";
    case LossCause::Select:
        return "select";
    case LossCause::Ghr:
        return "ghr";
    case LossCause::NumCauses:
        break;
    }
    return "unknown";
}

LossCause
AttributionRow::dominantCause() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < kNumLossCauses; ++i)
        if (byCause[i] > byCause[best])
            best = i;
    return static_cast<LossCause>(best);
}

#ifndef MBBP_OBS_DISABLED

namespace
{

std::atomic<bool> g_attribution{ false };

struct Table
{
    std::mutex mutex;
    // Ordered by key so iteration (and therefore tie-free slices of
    // attributionRows) is deterministic regardless of insert order.
    std::map<uint64_t, AttributionRow> rows;
};

Table &
table()
{
    static Table t;
    return t;
}

} // namespace

bool
attributionEnabled()
{
    return g_attribution.load(std::memory_order_relaxed);
}

void
setAttributionEnabled(bool on)
{
    g_attribution.store(on, std::memory_order_relaxed);
}

AttributionSink::AttributionSink() : enabled_(attributionEnabled()) {}

AttributionSink::~AttributionSink()
{
    flush();
}

void
AttributionSink::flush()
{
    if (cells_.empty())
        return;
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mutex);
    for (const auto &[key, cell] : cells_) {
        AttributionRow &row = t.rows[key];
        row.blockPc = key >> 3;
        row.slot = static_cast<unsigned>(key & 7u);
        row.events += cell.events;
        row.cycles += cell.cycles;
        for (std::size_t i = 0; i < kNumLossCauses; ++i)
            row.byCause[i] += cell.byCause[i];
    }
    cells_.clear();
}

std::vector<AttributionRow>
attributionRows(std::size_t top_n)
{
    std::vector<AttributionRow> rows;
    {
        Table &t = table();
        std::lock_guard<std::mutex> lock(t.mutex);
        rows.reserve(t.rows.size());
        for (const auto &[key, row] : t.rows)
            rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const AttributionRow &a, const AttributionRow &b) {
                  if (a.cycles != b.cycles)
                      return a.cycles > b.cycles;
                  if (a.events != b.events)
                      return a.events > b.events;
                  if (a.blockPc != b.blockPc)
                      return a.blockPc < b.blockPc;
                  return a.slot < b.slot;
              });
    if (top_n != 0 && rows.size() > top_n)
        rows.resize(top_n);
    return rows;
}

void
resetAttribution()
{
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mutex);
    t.rows.clear();
}

uint64_t
attributedEvents()
{
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mutex);
    uint64_t n = 0;
    for (const auto &[key, row] : t.rows)
        n += row.events;
    return n;
}

std::array<uint64_t, kNumLossCauses>
attributedEventsByCause()
{
    Table &t = table();
    std::lock_guard<std::mutex> lock(t.mutex);
    std::array<uint64_t, kNumLossCauses> out{};
    for (const auto &[key, row] : t.rows)
        for (std::size_t i = 0; i < kNumLossCauses; ++i)
            out[i] += row.byCause[i];
    return out;
}

#endif // MBBP_OBS_DISABLED

} // namespace mbbp::obs
